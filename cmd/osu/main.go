// Command osu runs the OSU MPI micro-benchmarks (bandwidth and latency
// between two compute nodes) on a modelled platform.
//
// Usage:
//
//	osu -platform vayu|dcc|ec2 -bench bw|latency [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/osu"
	"repro/internal/platform"
)

func main() {
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	bench := flag.String("bench", "bw", "benchmark: bw or latency")
	seed := flag.Uint64("seed", 0, "jitter seed (repetition index)")
	flag.Parse()

	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	sizes := osu.DefaultSizes()
	switch *bench {
	case "bw":
		pts, err := osu.BandwidthSeeded(p, sizes, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# OSU MPI bandwidth on %s (%s)\n# %10s %14s\n", p.Name, p.Inter.Name, "bytes", "MB/s")
		for _, pt := range pts {
			fmt.Printf("  %10d %14.2f\n", pt.Bytes, pt.Value)
		}
	case "latency":
		pts, err := osu.LatencySeeded(p, sizes, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# OSU MPI latency on %s (%s)\n# %10s %14s\n", p.Name, p.Inter.Name, "bytes", "us")
		for _, pt := range pts {
			fmt.Printf("  %10d %14.2f\n", pt.Bytes, pt.Value*1e6)
		}
	default:
		fatal(fmt.Errorf("unknown benchmark %q (want bw or latency)", *bench))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osu:", err)
	os.Exit(1)
}
