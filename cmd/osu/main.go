// Command osu runs the OSU MPI micro-benchmarks (bandwidth and latency
// between two compute nodes) on a modelled platform. Platform and
// benchmark accept "all", in which case the sweep's curves run as jobs on
// the internal/sched worker pool — the same -j / result-cache machinery
// as cmd/repro, so a repeated sweep is served from the cache instead of
// re-simulated.
//
// Usage:
//
//	osu -platform vayu|dcc|ec2|all -bench bw|latency|all [-seed N]
//	    [-j N] [-cache DIR] [-trace t.json] [-manifest m.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/osu"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	platName := flag.String("platform", "vayu", "platform: vayu, dcc, ec2 or all")
	bench := flag.String("bench", "bw", "benchmark: bw, latency or all")
	seed := flag.Uint64("seed", 0, "jitter seed (repetition index)")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "number of benchmark jobs to run concurrently")
	cacheDir := flag.String("cache", "", "result cache directory (empty: no cache)")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	runtimeName := flag.String("runtime", "", "mpi runtime: goroutine (default) or pdes")
	sink := trace.AddFlag()
	flag.Parse()
	start := time.Now()

	rt, err := mpi.RuntimeByName(*runtimeName)
	if err != nil {
		fatal(err)
	}
	platforms, err := expandPlatforms(*platName)
	if err != nil {
		fatal(err)
	}
	benches, err := expandBenches(*bench)
	if err != nil {
		fatal(err)
	}
	cache := openCache(*cacheDir)
	if sink.Active() {
		// Tracing needs live, deterministically ordered runs: one worker,
		// no cache, and no cache keys so the recording always happens.
		*workers = 1
		cache = nil
	}
	reg := obs.NewRegistry()

	var jobs []sched.Job
	var virtual float64
	for _, p := range platforms {
		for _, b := range benches {
			p, b := p, b
			id := fmt.Sprintf("osu-%s-%s", b, p.Name)
			var key *sched.Key
			if !sink.Active() {
				params := fmt.Sprintf("platform=%s,sizes=default", p.Name)
				if rt != mpi.Goroutine {
					// Identical bytes either way, but keep cache entries
					// per-runtime so one engine never serves the other's.
					params += ",runtime=" + rt.String()
				}
				key = &sched.Key{
					Experiment:   "osu-" + b,
					Params:       params,
					Seed:         *seed,
					ModelVersion: core.ModelVersion,
				}
			}
			jobs = append(jobs, sched.Job{
				ID:  id,
				Key: key,
				Run: func(ctx *sched.Ctx) (map[string][]byte, error) {
					text, err := curve(p, b, osu.Opts{
						Seed: *seed, Tracer: sink.Tracer(2), Metrics: reg,
						Meter: ctx.Meter(), Runtime: rt,
					})
					if err != nil {
						return nil, err
					}
					return map[string][]byte{id + ".txt": []byte(text)}, nil
				},
			})
		}
	}

	results, runErr := sched.Run(jobs, sched.Options{
		Workers: *workers,
		Cache:   cache,
		Metrics: reg,
	})
	if results == nil {
		fatal(runErr)
	}
	for _, r := range results {
		virtual += r.Virtual
		if r.Status != sched.Done && r.Status != sched.Cached {
			continue
		}
		names := make([]string, 0, len(r.Files))
		for name := range r.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Print(string(r.Files[name]))
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	if err := obs.WriteManifest(*manifest, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "osu",
		ModelVersion: core.ModelVersion, Platform: *platName, Seed: *seed,
		Knobs:          map[string]string{"bench": *bench, "runtime": rt.String()},
		VirtualSeconds: virtual,
		WallSeconds:    time.Since(start).Seconds(),
		Metrics:        reg.Snapshot(true),
	}); err != nil {
		fatal(err)
	}
}

// curve renders one benchmark curve on one platform.
func curve(p *platform.Platform, bench string, o osu.Opts) (string, error) {
	sizes := osu.DefaultSizes()
	var sb strings.Builder
	switch bench {
	case "bw":
		pts, err := osu.BandwidthOpts(p, sizes, o)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "# OSU MPI bandwidth on %s (%s)\n# %10s %14s\n", p.Name, p.Inter.Name, "bytes", "MB/s")
		for _, pt := range pts {
			fmt.Fprintf(&sb, "  %10d %14.2f\n", pt.Bytes, pt.Value)
		}
	case "latency":
		pts, err := osu.LatencyOpts(p, sizes, o)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "# OSU MPI latency on %s (%s)\n# %10s %14s\n", p.Name, p.Inter.Name, "bytes", "us")
		for _, pt := range pts {
			fmt.Fprintf(&sb, "  %10d %14.2f\n", pt.Bytes, pt.Value*1e6)
		}
	default:
		return "", fmt.Errorf("unknown benchmark %q (want bw or latency)", bench)
	}
	return sb.String(), nil
}

func expandPlatforms(name string) ([]*platform.Platform, error) {
	if name == "all" {
		return []*platform.Platform{platform.Vayu(), platform.DCC(), platform.EC2()}, nil
	}
	p, err := platform.ByName(name)
	if err != nil {
		return nil, err
	}
	return []*platform.Platform{p}, nil
}

func expandBenches(name string) ([]string, error) {
	switch name {
	case "all":
		return []string{"bw", "latency"}, nil
	case "bw", "latency":
		return []string{name}, nil
	}
	return nil, fmt.Errorf("unknown benchmark %q (want bw, latency or all)", name)
}

func openCache(dir string) *sched.Cache {
	if dir == "" {
		return nil
	}
	cache, err := sched.OpenCache(dir)
	if err != nil {
		fatal(err)
	}
	return cache
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osu:", err)
	os.Exit(1)
}
