// Command arrive profiles the MetUM benchmark once (on Vayu) and prints
// ARRIVE-F-style platform recommendations: predicted runtimes on each
// platform, the workload classification, and whether it is a cloudburst
// candidate.
//
// Usage:
//
//	arrive [-np 32]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/arrive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
)

func main() {
	np := flag.Int("np", 32, "process count to profile and predict at")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	flag.Parse()
	start := time.Now()

	src := platform.Vayu()
	fmt.Printf("profiling MetUM at np=%d on %s...\n", *np, src.Name)
	prof, err := experiments.UMProfile(src, *np)
	if err != nil {
		fatal(err)
	}
	pl, err := cluster.Place(src, cluster.Spec{NP: *np})
	if err != nil {
		fatal(err)
	}
	w := arrive.FromProfile("metum", prof, src, pl.MaxRanksPerNode())

	fmt.Printf("classification: %s (cloud candidate within 1.5x: %v, predicted EC2 slowdown %.2fx)\n\n",
		w.Classify(), w.CloudFriendly(platform.EC2(), 1.5), w.Slowdown(platform.EC2()))
	fmt.Println("predicted runtimes:")
	for _, pred := range w.Recommend(platform.All()) {
		fmt.Println("  " + pred.String())
	}

	if err := obs.WriteManifest(*manifest, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "arrive",
		ModelVersion: core.ModelVersion, Platform: src.Name,
		Knobs:          map[string]string{"np": strconv.Itoa(*np)},
		VirtualSeconds: prof.Time(),
		WallSeconds:    time.Since(start).Seconds(),
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arrive:", err)
	os.Exit(1)
}
