// Command repro regenerates every table and figure of the paper's
// evaluation section into a results directory: Figures 1-7 and Tables
// II-III, plus the Chaste 32-core prose numbers.
//
// Artefacts run as jobs on the internal/sched worker pool (-j) backed by
// a content-addressed result cache, so re-running an unchanged artefact
// is a cache hit instead of a re-simulation. Every artefact is a pure
// function of (ID, sweep, seed, model version); parallel runs produce
// byte-identical output to -j 1.
//
// Usage:
//
//	repro [-out results] [-only fig1,fig4,table3] [-quick] [-j N]
//	      [-seed N] [-nocache] [-cache DIR] [-check] [-faults mtbf=600,ckpt=3]
//
// The fault1 artefact (E12) sweeps MetUM time-to-solution over MTBF and
// checkpoint-interval classes on all three platforms; -faults subjects
// every other artefact's NPB-skeleton and application runs to a
// deterministic fault plan instead (the two-rank OSU calibration
// microbenchmarks of fig1/fig2 always run fault-free).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/sched"
)

func main() {
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "comma-separated artefact subset (e.g. fig1,fig4,table3)")
	quick := flag.Bool("quick", false, "smaller sweeps (fewer sizes/process counts)")
	check := flag.Bool("check", false, "evaluate the paper's headline claims and report PASS/FAIL")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "number of artefact jobs to run concurrently")
	seed := flag.Uint64("seed", 0, "base seed for every experiment's random streams")
	nocache := flag.Bool("nocache", false, "ignore and do not update the result cache (force a cold rerun)")
	cacheDir := flag.String("cache", "", "result cache directory (default <out>/.cache)")
	faults := flag.String("faults", "",
		"inject faults into every kernel/application run, e.g. mtbf=600,ckpt=3 (keys: mtbf, straggle, slow, degrade, dlat, dbw, horizon, ckpt, seed); part of the cache key")
	flag.Parse()

	cache := openCache(*out, *cacheDir, *nocache)

	if *check {
		runChecks(*workers, cache)
		return
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	sweep := experiments.SweepFull
	if *quick {
		sweep = experiments.SweepQuick
	}
	fp, err := fault.ParseParams(*faults)
	if err != nil {
		fatal(err)
	}
	jobs, err := experiments.JobsFaults(sweep, *seed, fp, ids)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	results, runErr := sched.Run(jobs, sched.Options{
		Workers: *workers,
		Cache:   cache,
		OnEvent: progress,
	})
	if results == nil {
		fatal(runErr)
	}

	// Write and print completed artefacts in registry order (partial
	// results are still written when a later job failed).
	for _, r := range results {
		if r.Status != sched.Done && r.Status != sched.Cached {
			continue
		}
		for _, name := range sortedNames(r.Files) {
			if err := os.WriteFile(filepath.Join(*out, name), r.Files[name], 0o644); err != nil {
				fatal(err)
			}
			if strings.HasSuffix(name, ".txt") {
				fmt.Println(string(r.Files[name]))
			}
		}
	}

	fmt.Println(summary(results).Render())
	if runErr != nil {
		fatal(runErr)
	}
}

// openCache resolves the cache flags; nil disables caching.
func openCache(out, dir string, nocache bool) *sched.Cache {
	if nocache {
		return nil
	}
	if dir == "" {
		dir = filepath.Join(out, ".cache")
	}
	cache, err := sched.OpenCache(dir)
	if err != nil {
		fatal(err)
	}
	return cache
}

// progress prints one line per job transition (serialized by the scheduler).
func progress(e sched.Event) {
	switch e.Type {
	case sched.JobStarted:
		fmt.Printf("[%s] running...\n", e.ID)
	case sched.JobFinished:
		r := e.Result
		switch r.Status {
		case sched.Done:
			fmt.Printf("[%s] done in %s (simulated %ss)\n",
				r.ID, report.FormatDuration(r.Wall), report.FormatFloat(r.Virtual))
		case sched.Cached:
			fmt.Printf("[%s] cache hit (cold run simulated %ss)\n",
				r.ID, report.FormatFloat(r.Virtual))
		case sched.Failed:
			fmt.Printf("[%s] FAILED: %v\n", r.ID, r.Err)
		case sched.Skipped:
			fmt.Printf("[%s] skipped\n", r.ID)
		}
		if r.CacheErr != nil {
			fmt.Printf("[%s] warning: cache write failed: %v\n", r.ID, r.CacheErr)
		}
	}
}

// summary builds the per-job timing table.
func summary(results []sched.Result) *report.Table {
	t := &report.Table{
		Title:   "Job summary",
		Headers: []string{"job", "status", "wall", "simulated (s)", "files"},
	}
	var wall, virtual float64
	for _, r := range results {
		t.AddRow(r.ID, r.Status.String(), report.FormatDuration(r.Wall), r.Virtual, len(r.Files))
		wall += r.Wall.Seconds()
		virtual += r.Virtual
	}
	t.AddRow("total", "", report.FormatFloat(wall)+"s", virtual, "")
	return t
}

// runChecks evaluates the paper's claims through the scheduler.
func runChecks(workers int, cache *sched.Cache) {
	checks, err := experiments.RunChecksScheduled(sched.Options{
		Workers: workers,
		Cache:   cache,
	})
	if err != nil {
		fatal(err)
	}
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-4s %s\n       measured: %s\n", c.ID, status, c.Claim, c.Detail)
	}
	fmt.Printf("\n%d/%d claims reproduced\n", len(checks)-failed, len(checks))
	if failed > 0 {
		os.Exit(1)
	}
}

func sortedNames(files map[string][]byte) []string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
