// Command repro regenerates every table and figure of the paper's
// evaluation section into a results directory: Figures 1-7 and Tables
// II-III, plus the Chaste 32-core prose numbers.
//
// Usage:
//
//	repro [-out results] [-only fig1,fig4,table3] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/npb"
	"repro/internal/osu"
	"repro/internal/report"
)

func main() {
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "comma-separated subset: fig1,fig2,fig3,fig4,table2,fig5,fig6,table3,fig7,chaste32")
	quick := flag.Bool("quick", false, "smaller sweeps (fewer sizes/process counts)")
	check := flag.Bool("check", false, "evaluate the paper's headline claims and report PASS/FAIL")
	flag.Parse()

	if *check {
		checks, err := experiments.RunChecks()
		if err != nil {
			fatal(err)
		}
		failed := 0
		for _, c := range checks {
			status := "PASS"
			if !c.Passed {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] %-4s %s\n       measured: %s\n", c.ID, status, c.Claim, c.Detail)
		}
		fmt.Printf("\n%d/%d claims reproduced\n", len(checks)-failed, len(checks))
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	sizes := osu.DefaultSizes()
	if *quick {
		sizes = []int{1, 64, 4096, 1 << 18, 1 << 22}
	}

	run := func(name string, fn func() error) {
		if !sel(name) {
			return
		}
		start := time.Now()
		fmt.Printf("[%s] running...\n", name)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s] done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	writeFigure := func(base string, fig *report.Figure) error {
		if err := os.WriteFile(filepath.Join(*out, base+".csv"), []byte(fig.CSV()), 0o644); err != nil {
			return err
		}
		txt := fig.ASCII(64, 16)
		fmt.Println(txt)
		return os.WriteFile(filepath.Join(*out, base+".txt"), []byte(txt), 0o644)
	}
	writeTable := func(base string, t *report.Table) error {
		if err := os.WriteFile(filepath.Join(*out, base+".csv"), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		txt := t.Render()
		fmt.Println(txt)
		return os.WriteFile(filepath.Join(*out, base+".txt"), []byte(txt), 0o644)
	}

	run("fig1", func() error {
		fig, err := experiments.Fig1OSUBandwidth(sizes)
		if err != nil {
			return err
		}
		return writeFigure("fig1_osu_bandwidth", fig)
	})
	run("fig2", func() error {
		fig, err := experiments.Fig2OSULatency(sizes)
		if err != nil {
			return err
		}
		return writeFigure("fig2_osu_latency", fig)
	})
	run("fig3", func() error {
		t, err := experiments.Fig3NPBSerial()
		if err != nil {
			return err
		}
		return writeTable("fig3_npb_serial", t)
	})
	run("fig4", func() error {
		kernels := npb.Names()
		if *quick {
			kernels = []string{"ep", "cg", "ft", "is"}
		}
		for _, k := range kernels {
			fig, err := experiments.Fig4NPBScaling(k)
			if err != nil {
				return err
			}
			if err := writeFigure("fig4_"+k+"_scaling", fig); err != nil {
				return err
			}
		}
		return nil
	})
	run("table2", func() error {
		t, err := experiments.Table2CommPercent()
		if err != nil {
			return err
		}
		return writeTable("table2_comm_percent", t)
	})
	run("fig5", func() error {
		fig, err := experiments.Fig5Chaste()
		if err != nil {
			return err
		}
		return writeFigure("fig5_chaste_speedup", fig)
	})
	run("fig6", func() error {
		fig, err := experiments.Fig6MetUM()
		if err != nil {
			return err
		}
		return writeFigure("fig6_metum_speedup", fig)
	})
	run("table3", func() error {
		t, err := experiments.Table3MetUM()
		if err != nil {
			return err
		}
		return writeTable("table3_metum_32", t)
	})
	run("fig7", func() error {
		txt, err := experiments.Fig7Breakdown()
		if err != nil {
			return err
		}
		fmt.Println(txt)
		return os.WriteFile(filepath.Join(*out, "fig7_breakdown.txt"), []byte(txt), 0o644)
	})
	run("chaste32", func() error {
		t, err := experiments.Chaste32Prose()
		if err != nil {
			return err
		}
		return writeTable("chaste32_ipm", t)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
