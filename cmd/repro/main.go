// Command repro regenerates every table and figure of the paper's
// evaluation section into a results directory: Figures 1-7 and Tables
// II-III, plus the Chaste 32-core prose numbers.
//
// Artefacts run as jobs on the internal/sched worker pool (-j) backed by
// a content-addressed result cache, so re-running an unchanged artefact
// is a cache hit instead of a re-simulation. Every artefact is a pure
// function of (ID, sweep, seed, model version); parallel runs produce
// byte-identical output to -j 1.
//
// Usage:
//
//	repro [-out results] [-only fig1,fig4,table3] [-quick] [-j N]
//	      [-seed N] [-nocache] [-cache DIR] [-check] [-faults mtbf=600,ckpt=3]
//
// The fault1 artefact (E12) sweeps MetUM time-to-solution over MTBF and
// checkpoint-interval classes on all three platforms; -faults subjects
// every other artefact's NPB-skeleton and application runs to a
// deterministic fault plan instead (the two-rank OSU calibration
// microbenchmarks of fig1/fig2 always run fault-free).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "comma-separated artefact subset (e.g. fig1,fig4,table3)")
	quick := flag.Bool("quick", false, "smaller sweeps (fewer sizes/process counts)")
	check := flag.Bool("check", false, "evaluate the paper's headline claims and report PASS/FAIL")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "number of artefact jobs to run concurrently")
	seed := flag.Uint64("seed", 0, "base seed for every experiment's random streams")
	nocache := flag.Bool("nocache", false, "ignore and do not update the result cache (force a cold rerun)")
	cacheDir := flag.String("cache", "", "result cache directory (default <out>/.cache)")
	faults := flag.String("faults", "",
		"inject faults into every kernel/application run, e.g. mtbf=600,ckpt=3 (keys: mtbf, straggle, slow, degrade, dlat, dbw, horizon, ckpt, seed); part of the cache key")
	sweepName := flag.String("sweep", "",
		"explicit sweep resolution: full, quick or smoke (overrides -quick)")
	manifest := flag.String("manifest", "", "write a top-level run-manifest JSON to this file")
	sink := trace.AddFlag()
	flag.Parse()
	start := time.Now()

	cache := openCache(*out, *cacheDir, *nocache)

	if *check {
		runChecks(*workers, cache)
		return
	}

	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	sweep := experiments.SweepFull
	if *quick {
		sweep = experiments.SweepQuick
	}
	if *sweepName != "" {
		var err error
		if sweep, err = experiments.ParseSweep(*sweepName); err != nil {
			fatal(err)
		}
	}
	fp, err := fault.ParseParams(*faults)
	if err != nil {
		fatal(err)
	}
	var tracer func(np int) mpi.Tracer
	if sink.Active() {
		// A timeline is only meaningful for one live, sequentially executed
		// artefact: require -only with a single ID and force -j 1 (traced
		// jobs already bypass the cache).
		if len(ids) != 1 {
			fatal(fmt.Errorf("-trace needs -only with exactly one artefact"))
		}
		*workers = 1
		tracer = sink.Tracer
	}
	jobs, err := experiments.JobsTraced(sweep, *seed, fp, ids, tracer)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	results, runErr := sched.Run(jobs, sched.Options{
		Workers: *workers,
		Cache:   cache,
		OnEvent: progress,
		Metrics: reg,
	})
	if results == nil {
		fatal(runErr)
	}

	// Write and print completed artefacts in registry order (partial
	// results are still written when a later job failed).
	for _, r := range results {
		if r.Status != sched.Done && r.Status != sched.Cached {
			continue
		}
		for _, name := range sortedNames(r.Files) {
			if err := os.WriteFile(filepath.Join(*out, name), r.Files[name], 0o644); err != nil {
				fatal(err)
			}
			if strings.HasSuffix(name, ".txt") {
				fmt.Println(string(r.Files[name]))
			}
		}
	}

	fmt.Println(summary(results).Render())
	if runErr != nil {
		fatal(runErr)
	}
	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	if err := writeRunManifest(*manifest, sweep, *seed, *only, *faults, results, reg, start); err != nil {
		fatal(err)
	}
}

// writeRunManifest records the whole invocation: knobs, total virtual
// time, scheduler metrics (including volatile wall-clock series — this
// manifest describes one interactive run, not a golden artefact) and the
// hashes of every produced file. The per-artefact manifests written
// alongside the outputs stay the deterministic provenance records.
func writeRunManifest(path string, sweep experiments.Sweep, seed uint64,
	only, faults string, results []sched.Result, reg *obs.Registry, start time.Time) error {
	if path == "" {
		return nil
	}
	files := map[string][]byte{}
	var virtual float64
	for _, r := range results {
		virtual += r.Virtual
		for name, data := range r.Files {
			files[name] = data
		}
	}
	knobs := obs.EnvKnobs(obs.GitRev())
	knobs["sweep"] = string(sweep)
	if only != "" {
		knobs["only"] = only
	}
	return obs.WriteManifest(path, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "repro",
		ModelVersion: core.ModelVersion, Seed: seed,
		Knobs:          knobs,
		FaultSpec:      faults,
		VirtualSeconds: virtual,
		WallSeconds:    time.Since(start).Seconds(),
		Metrics:        reg.Snapshot(true),
		Artefacts:      obs.HashArtefacts(files),
	})
}

// openCache resolves the cache flags; nil disables caching.
func openCache(out, dir string, nocache bool) *sched.Cache {
	if nocache {
		return nil
	}
	if dir == "" {
		dir = filepath.Join(out, ".cache")
	}
	cache, err := sched.OpenCache(dir)
	if err != nil {
		fatal(err)
	}
	return cache
}

// progress prints one line per job transition (serialized by the scheduler).
func progress(e sched.Event) {
	switch e.Type {
	case sched.JobStarted:
		fmt.Printf("[%s] running...\n", e.ID)
	case sched.JobFinished:
		r := e.Result
		switch r.Status {
		case sched.Done:
			fmt.Printf("[%s] done in %s (simulated %ss)\n",
				r.ID, report.FormatDuration(r.Wall), report.FormatFloat(r.Virtual))
		case sched.Cached:
			fmt.Printf("[%s] cache hit (cold run simulated %ss)\n",
				r.ID, report.FormatFloat(r.Virtual))
		case sched.Failed:
			fmt.Printf("[%s] FAILED: %v\n", r.ID, r.Err)
		case sched.Skipped:
			fmt.Printf("[%s] skipped\n", r.ID)
		}
		if r.CacheErr != nil {
			fmt.Printf("[%s] warning: cache write failed: %v\n", r.ID, r.CacheErr)
		}
	}
}

// summary builds the per-job timing table.
func summary(results []sched.Result) *report.Table {
	t := &report.Table{
		Title:   "Job summary",
		Headers: []string{"job", "status", "wall", "simulated (s)", "files"},
	}
	var wall, virtual float64
	for _, r := range results {
		t.AddRow(r.ID, r.Status.String(), report.FormatDuration(r.Wall), r.Virtual, len(r.Files))
		wall += r.Wall.Seconds()
		virtual += r.Virtual
	}
	t.AddRow("total", "", report.FormatFloat(wall)+"s", virtual, "")
	return t
}

// runChecks evaluates the paper's claims through the scheduler.
func runChecks(workers int, cache *sched.Cache) {
	checks, err := experiments.RunChecksScheduled(sched.Options{
		Workers: workers,
		Cache:   cache,
	})
	if err != nil {
		fatal(err)
	}
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-4s %s\n       measured: %s\n", c.ID, status, c.Claim, c.Detail)
	}
	fmt.Printf("\n%d/%d claims reproduced\n", len(checks)-failed, len(checks))
	if failed > 0 {
		os.Exit(1)
	}
}

func sortedNames(files map[string][]byte) []string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
