// Command vmpack demonstrates the HPC-environment packaging workflow on
// the command line: build an application on the Vayu environment with the
// chosen compilation switches, package a VM image and validate it against
// each cloud target.
//
// Usage:
//
//	vmpack [-tuned] [-app um]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/hpcenv"
	"repro/internal/obs"
)

func main() {
	tuned := flag.Bool("tuned", false, "build with host-tuned flags (icc -xHost): fast but uses SSE4")
	app := flag.String("app", "um", "application name to build and package")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	flag.Parse()
	start := time.Now()

	vayu := hpcenv.VayuHost()
	for _, m := range hpcenv.StandardModules() {
		if err := vayu.Env.Install(m); err != nil {
			fatal(err)
		}
	}
	if err := vayu.Env.Load("um-deps"); err != nil {
		fatal(err)
	}

	cc := hpcenv.Compiler{Name: "ifort", Version: "11.1.072"}
	bin, err := cc.Build(*app, vayu, hpcenv.BuildOptions{
		HostTuned: *tuned,
		Modules:   []string{"um-deps"},
	})
	if err != nil {
		fatal(err)
	}
	mode := "portable"
	if *tuned {
		mode = "host-tuned"
	}
	fmt.Printf("built %s (%s) on %s; ISA needs: %d features\n", bin.App, mode, bin.BuiltOn, len(bin.Needs))

	img := hpcenv.Package("hpc-env", "CentOS 5.7", vayu, bin)
	fmt.Printf("packaged image %q with modules: %v\n\n", img.Name, img.Env.Loaded())

	ok := true
	for _, target := range []hpcenv.Host{hpcenv.VayuHost(), hpcenv.DCCHost(), hpcenv.EC2Host()} {
		if err := hpcenv.Deploy(img, target).Exec(*app); err != nil {
			fmt.Printf("  %-16s FAILED: %v\n", target.Name, err)
			ok = false
		} else {
			fmt.Printf("  %-16s ok\n", target.Name)
		}
	}
	if err := obs.WriteManifest(*manifest, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "vmpack",
		ModelVersion: core.ModelVersion,
		Knobs: map[string]string{
			"app": *app, "tuned": strconv.FormatBool(*tuned),
		},
		WallSeconds: time.Since(start).Seconds(),
	}); err != nil {
		fatal(err)
	}
	if !ok {
		fmt.Println("\nhint: rebuild without -tuned for a portable binary")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmpack:", err)
	os.Exit(1)
}
