// Command facility runs the multi-tenant virtual-time batch facility:
// a seeded synthetic workload (or a replayed job trace) scheduled with
// EASY backfill and decayed-usage fairshare across the paper's three
// platforms, optionally routed by a calibrated ARRIVE-F broker and
// subjected to a spot market on the EC2 pool.
//
// Usage:
//
//	facility [-jobs 2000] [-tenants 200] [-slots 256] [-seed 0]
//	         [-broker] [-spot] [-bid 0.60] [-trace jobs.txt]
//	         [-emit-trace jobs.txt] [-manifest run.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	jobs := flag.Int("jobs", 2000, "synthetic workload size (ignored with -trace)")
	tenants := flag.Int("tenants", 200, "synthetic tenant count (ignored with -trace)")
	slots := flag.Int("slots", 256, "HPC partition slots (cloud pools get half each)")
	seed := flag.Uint64("seed", 0, "base seed for workload and spot-market streams")
	broker := flag.Bool("broker", false, "calibrate an ARRIVE-F broker and route jobs across pools")
	spot := flag.Bool("spot", false, "run the EC2 pool on a simulated spot market (implies -broker)")
	bid := flag.Float64("bid", 0.60, "spot bid in $/hour")
	trace := flag.String("trace", "", "replay jobs from a trace file instead of generating")
	emit := flag.String("emit-trace", "", "write the workload as a replayable trace to this file and exit")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	flag.Parse()
	start := time.Now()

	var wl []facility.Job
	var err error
	if *trace != "" {
		data, rerr := os.ReadFile(*trace)
		if rerr != nil {
			fatal(rerr)
		}
		wl, err = facility.ParseTrace(data)
	} else {
		wl, err = facility.Generate(facility.WorkloadSpec{
			Seed: *seed, Jobs: *jobs, Tenants: *tenants, Slots: *slots,
		})
	}
	if err != nil {
		fatal(err)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, facility.FormatTrace(wl), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d jobs to %s\n", len(wl), *emit)
		return
	}

	meter := &sim.Meter{}
	reg := obs.NewRegistry()
	cfg := facility.Config{
		Slots:     [facility.NumPools]int{*slots, *slots / 2, *slots / 2},
		Backfill:  true,
		Fairshare: true,
		Prices:    [facility.NumPools]float64{0, 0.34, 0.68},
		Meter:     meter,
		Metrics:   reg,
	}
	if *broker || *spot {
		fmt.Println("calibrating broker from reference runs on vayu...")
		b, err := facility.CalibrateBroker(facility.CalibrateOpts{
			Seed: *seed, Meter: meter, Metrics: reg,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Broker = b
	}
	if *spot {
		sc, err := facility.MarketSpot(*seed, *bid, 24*28, 1<<28)
		if err != nil {
			fatal(err)
		}
		cfg.Spot = sc
	}

	f, err := facility.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := f.Run(wl)
	if err != nil {
		fatal(err)
	}
	s := facility.Summarize(res.Outcomes, 0)

	fmt.Printf("scheduled %d jobs (%d events, virtual makespan %.0fs)\n",
		s.Jobs, res.Events, s.Makespan)
	fmt.Printf("  completed %d, killed at limit %d\n", s.Completed, s.Killed)
	for p, n := range s.ByPool {
		fmt.Printf("  %-5s %6d jobs\n", facility.Pool(p), n)
	}
	fmt.Printf("  queue wait  p50 %.1fs  p90 %.1fs  p99 %.1fs  max %.1fs\n",
		s.WaitP50, s.WaitP90, s.WaitP99, s.MaxWait)
	fmt.Printf("  bounded slowdown  mean %.2f  p99 %.2f\n", s.SlowMean, s.SlowP99)
	if cfg.Spot != nil {
		fmt.Printf("  spot: %d interruptions, %.0fs lost work\n", s.Interruptions, s.LostWork)
	}
	fmt.Printf("  cloud share %.1f%%, cost $%.2f\n", 100*s.CloudShare, s.Cost)
	fmt.Printf("  digest %s\n", facility.Digest(res))

	if err := obs.WriteManifest(*manifest, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "facility",
		ModelVersion: core.ModelVersion, Seed: *seed,
		Knobs: map[string]string{
			"jobs":   strconv.Itoa(len(wl)),
			"slots":  strconv.Itoa(*slots),
			"broker": strconv.FormatBool(cfg.Broker != nil),
			"spot":   strconv.FormatBool(cfg.Spot != nil),
			"digest": facility.Digest(res),
		},
		Metrics:        reg.Snapshot(false),
		VirtualSeconds: meter.Total(),
		WallSeconds:    time.Since(start).Seconds(),
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facility:", err)
	os.Exit(1)
}
