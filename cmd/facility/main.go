// Command facility runs the multi-tenant virtual-time batch facility:
// a seeded synthetic workload (or a replayed job trace) scheduled with
// EASY backfill and decayed-usage fairshare across the paper's three
// platforms, optionally routed by a calibrated ARRIVE-F broker and
// subjected to a spot market on the EC2 pool.
//
// Usage:
//
//	facility [-jobs 2000] [-tenants 200] [-slots 256] [-seed 0]
//	         [-broker] [-spot] [-bid 0.60] [-trace jobs.txt]
//	         [-swf trace.swf] [-sched heap|sort] [-stream]
//	         [-emit-trace jobs.txt] [-manifest run.json]
//
// -swf replays a Standard Workload Format archive trace; records wider
// than the HPC partition are skipped (and counted). -stream switches to
// the streaming run path — per-job outcomes are folded into reservoir
// statistics as they complete instead of being collected, which is how
// million-job traces fit in bounded memory. -sched selects the
// incremental heap scheduler (default) or the sort-per-pass oracle it
// is validated against; both produce bit-identical schedules.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	jobs := flag.Int("jobs", 2000, "synthetic workload size (ignored with -trace)")
	tenants := flag.Int("tenants", 200, "synthetic tenant count (ignored with -trace)")
	slots := flag.Int("slots", 256, "HPC partition slots (cloud pools get half each)")
	seed := flag.Uint64("seed", 0, "base seed for workload and spot-market streams")
	broker := flag.Bool("broker", false, "calibrate an ARRIVE-F broker and route jobs across pools")
	spot := flag.Bool("spot", false, "run the EC2 pool on a simulated spot market (implies -broker)")
	bid := flag.Float64("bid", 0.60, "spot bid in $/hour")
	trace := flag.String("trace", "", "replay jobs from a trace file instead of generating")
	swf := flag.String("swf", "", "replay jobs from a Standard Workload Format trace")
	sched := flag.String("sched", "heap", "scheduler implementation: heap (incremental) or sort (oracle)")
	stream := flag.Bool("stream", false, "stream outcomes into reservoir statistics (bounded memory)")
	emit := flag.String("emit-trace", "", "write the workload as a replayable trace to this file and exit")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	flag.Parse()
	start := time.Now()

	var kind facility.SchedKind
	switch *sched {
	case "heap":
		kind = facility.SchedHeap
	case "sort":
		kind = facility.SchedSort
	default:
		fatal(fmt.Errorf("unknown -sched %q (want heap or sort)", *sched))
	}

	var wl []facility.Job
	var err error
	switch {
	case *swf != "":
		data, rerr := os.ReadFile(*swf)
		if rerr != nil {
			fatal(rerr)
		}
		wl, err = facility.ParseSWF(data)
		if err == nil {
			kept, skipped := wl[:0], 0
			for _, j := range wl {
				if j.NP > *slots {
					skipped++
					continue
				}
				kept = append(kept, j)
			}
			wl = kept
			fmt.Printf("loaded %d jobs from %s (%d skipped: wider than the %d-slot HPC partition)\n",
				len(wl), *swf, skipped, *slots)
		}
	case *trace != "":
		data, rerr := os.ReadFile(*trace)
		if rerr != nil {
			fatal(rerr)
		}
		wl, err = facility.ParseTrace(data)
	default:
		wl, err = facility.Generate(facility.WorkloadSpec{
			Seed: *seed, Jobs: *jobs, Tenants: *tenants, Slots: *slots,
		})
	}
	if err != nil {
		fatal(err)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, facility.FormatTrace(wl), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d jobs to %s\n", len(wl), *emit)
		return
	}

	meter := &sim.Meter{}
	reg := obs.NewRegistry()
	cfg := facility.Config{
		Slots:     [facility.NumPools]int{*slots, *slots / 2, *slots / 2},
		Backfill:  true,
		Fairshare: true,
		Sched:     kind,
		Prices:    [facility.NumPools]float64{0, 0.34, 0.68},
		Meter:     meter,
		Metrics:   reg,
	}
	if *broker || *spot {
		fmt.Println("calibrating broker from reference runs on vayu...")
		b, err := facility.CalibrateBroker(facility.CalibrateOpts{
			Seed: *seed, Meter: meter, Metrics: reg,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Broker = b
	}
	if *spot {
		sc, err := facility.MarketSpot(*seed, *bid, 24*28, 1<<28)
		if err != nil {
			fatal(err)
		}
		cfg.Spot = sc
	}

	f, err := facility.New(cfg)
	if err != nil {
		fatal(err)
	}
	var s facility.Summary
	var events int
	var digest string
	if *stream {
		ss := facility.NewStreamSummary(0, *seed)
		sd := facility.NewStreamDigest()
		sr, err := f.RunStream(wl, func(o facility.Outcome) {
			ss.Observe(o)
			sd.Observe(o)
		})
		if err != nil {
			fatal(err)
		}
		s, events, digest = ss.Summary(), sr.Events, sd.Sum(sr.Clock, sr.Events)
	} else {
		res, err := f.Run(wl)
		if err != nil {
			fatal(err)
		}
		s, events, digest = facility.Summarize(res.Outcomes, 0), res.Events, facility.Digest(res)
	}

	fmt.Printf("scheduled %d jobs (%d events, virtual makespan %.0fs)\n",
		s.Jobs, events, s.Makespan)
	fmt.Printf("  completed %d, killed at limit %d\n", s.Completed, s.Killed)
	for p, n := range s.ByPool {
		fmt.Printf("  %-5s %6d jobs\n", facility.Pool(p), n)
	}
	fmt.Printf("  queue wait  p50 %.1fs  p90 %.1fs  p99 %.1fs  max %.1fs\n",
		s.WaitP50, s.WaitP90, s.WaitP99, s.MaxWait)
	fmt.Printf("  bounded slowdown  mean %.2f  p99 %.2f\n", s.SlowMean, s.SlowP99)
	if cfg.Spot != nil {
		fmt.Printf("  spot: %d interruptions, %.0fs lost work\n", s.Interruptions, s.LostWork)
	}
	fmt.Printf("  cloud share %.1f%%, cost $%.2f\n", 100*s.CloudShare, s.Cost)
	if *stream {
		fmt.Printf("  stream digest %s\n", digest)
	} else {
		fmt.Printf("  digest %s\n", digest)
	}

	if err := obs.WriteManifest(*manifest, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "facility",
		ModelVersion: core.ModelVersion, Seed: *seed,
		Knobs: map[string]string{
			"jobs":   strconv.Itoa(len(wl)),
			"slots":  strconv.Itoa(*slots),
			"broker": strconv.FormatBool(cfg.Broker != nil),
			"spot":   strconv.FormatBool(cfg.Spot != nil),
			"sched":  cfg.Sched.String(),
			"stream": strconv.FormatBool(*stream),
			"digest": digest,
		},
		Metrics:        reg.Snapshot(false),
		VirtualSeconds: meter.Total(),
		WallSeconds:    time.Since(start).Seconds(),
	}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facility:", err)
	os.Exit(1)
}
