// Command npb runs one NAS Parallel Benchmark kernel on a modelled
// platform, either in full-math mode (verified numerics; EP, CG, FT, IS,
// MG at the small classes) or skeleton mode (pattern replay, any kernel,
// class B and beyond). -np accepts a comma-separated list of process
// counts; the sweep's runs execute as jobs on the internal/sched worker
// pool with the same -j / result-cache machinery as cmd/repro.
//
// Usage:
//
//	npb -bench cg -class B -np 16,32,64 -platform dcc -mode skeleton [-j N] [-cache DIR]
//	npb -bench ep -class S -np 4 -platform vayu -mode full [-trace t.json] [-manifest m.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "cg", "kernel: bt ep cg ft is lu mg sp")
	className := flag.String("class", "S", "problem class: S W A B C")
	npList := flag.String("np", "1", "process count, or comma-separated sweep (e.g. 16,32,64)")
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	mode := flag.String("mode", "skeleton", "full (verified math) or skeleton (pattern replay)")
	seed := flag.Uint64("seed", 0, "jitter seed (repetition index)")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "number of sweep jobs to run concurrently")
	cacheDir := flag.String("cache", "", "result cache directory (empty: no cache)")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	runtimeName := flag.String("runtime", "", "mpi runtime: goroutine (default) or pdes")
	sink := trace.AddFlag()
	flag.Parse()
	start := time.Now()

	rt, err := mpi.RuntimeByName(*runtimeName)
	if err != nil {
		fatal(err)
	}
	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	class, err := npb.ParseClass(*className)
	if err != nil {
		fatal(err)
	}
	nps, err := parseNPs(*npList)
	if err != nil {
		fatal(err)
	}
	for _, np := range nps {
		if !npb.ValidProcs(*bench, np) {
			fatal(fmt.Errorf("%s does not accept np=%d", *bench, np))
		}
	}
	if *mode != "skeleton" && *mode != "full" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *mode == "full" {
		if _, ok := suite.Fulls[*bench]; !ok {
			fatal(fmt.Errorf("kernel %s has no full-math implementation (EP, CG, FT, IS, MG do; LU/BT/SP are skeleton-only)", *bench))
		}
		// Establish self-goldens for the kernels with substituted problem
		// generators (a trusted serial run; see DESIGN.md). Registered once,
		// up front, so the sweep's parallel jobs only read the registry.
		if *bench == "cg" || *bench == "ft" || *bench == "mg" {
			if err := suite.RegisterGoldens(class); err != nil {
				fatal(err)
			}
		}
	}

	cache := openCache(*cacheDir)
	if sink.Active() {
		// Tracing needs live, deterministically ordered runs: one worker,
		// no cache, and no cache keys so the recording always happens.
		*workers = 1
		cache = nil
	}
	reg := obs.NewRegistry()

	var jobs []sched.Job
	for _, np := range nps {
		np := np
		id := fmt.Sprintf("npb-%s-%s-%d", *bench, class, np)
		var key *sched.Key
		if !sink.Active() {
			params := fmt.Sprintf("class=%s,np=%d,platform=%s", class, np, p.Name)
			if rt != mpi.Goroutine {
				// Both runtimes produce byte-identical artefacts (the parity
				// suite asserts it), but cache entries stay segregated so a
				// runtime regression can never be masked by the other
				// engine's cached bytes. Goroutine keys keep their pre-PDES
				// spelling.
				params += ",runtime=" + rt.String()
			}
			key = &sched.Key{
				Experiment:   "npb-" + *mode + "-" + *bench,
				Params:       params,
				Seed:         *seed,
				ModelVersion: core.ModelVersion,
			}
		}
		jobs = append(jobs, sched.Job{
			ID:  id,
			Key: key,
			Run: func(ctx *sched.Ctx) (map[string][]byte, error) {
				text, err := kernelRun(p, *bench, *mode, class, np, *seed, rt, ctx, sink.Tracer(np), reg)
				if err != nil {
					return nil, err
				}
				return map[string][]byte{id + ".txt": []byte(text)}, nil
			},
		})
	}

	results, runErr := sched.Run(jobs, sched.Options{
		Workers: *workers,
		Cache:   cache,
		Metrics: reg,
	})
	if results == nil {
		fatal(runErr)
	}
	var virtual float64
	for _, r := range results {
		virtual += r.Virtual
		if r.Status != sched.Done && r.Status != sched.Cached {
			continue
		}
		names := make([]string, 0, len(r.Files))
		for name := range r.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Print(string(r.Files[name]))
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	if err := obs.WriteManifest(*manifest, &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "npb",
		ModelVersion: core.ModelVersion, Platform: p.Name, Seed: *seed,
		Knobs: map[string]string{
			"bench": *bench, "class": string(class), "np": *npList, "mode": *mode,
			"runtime": rt.String(),
		},
		VirtualSeconds: virtual,
		WallSeconds:    time.Since(start).Seconds(),
		Metrics:        reg.Snapshot(true),
	}); err != nil {
		fatal(err)
	}
}

// kernelRun executes one (kernel, class, np) point and renders its
// summary line(s).
func kernelRun(p *platform.Platform, bench, mode string, class npb.Class, np int, seed uint64,
	rt mpi.Runtime, ctx *sched.Ctx, tracer mpi.Tracer, reg *obs.Registry) (string, error) {
	spec := core.RunSpec{Platform: p, NP: np, Seed: seed, Runtime: rt, Meter: ctx.Meter(),
		ExtraTracer: tracer, Metrics: reg}
	var sb strings.Builder
	switch mode {
	case "skeleton":
		fn, err := suite.Skeleton(bench)
		if err != nil {
			return "", err
		}
		out, err := core.Execute(spec, func(c *mpi.Comm) error {
			return fn(c, class)
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s.%s.%d on %s: %.2f s virtual walltime, %.1f%% comm\n",
			bench, class, np, p.Name, out.Time(), out.Profile.CommPercent())
	case "full":
		fn := suite.Fulls[bench]
		var result *suite.FullResult
		out, err := core.Execute(spec, func(c *mpi.Comm) error {
			r, err := fn(c, class)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				result = r
			}
			return nil
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s.%s.%d on %s: %.2f s virtual walltime, %.1f%% comm\n",
			bench, class, np, p.Name, out.Time(), out.Profile.CommPercent())
		fmt.Fprintf(&sb, "verification: %s\n", result.VerifyMsg)
	}
	return sb.String(), nil
}

// parseNPs parses a comma-separated process-count list.
func parseNPs(s string) ([]int, error) {
	var nps []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		np, err := strconv.Atoi(part)
		if err != nil || np < 1 {
			return nil, fmt.Errorf("bad process count %q", part)
		}
		nps = append(nps, np)
	}
	if len(nps) == 0 {
		return nil, fmt.Errorf("empty -np list")
	}
	return nps, nil
}

func openCache(dir string) *sched.Cache {
	if dir == "" {
		return nil
	}
	cache, err := sched.OpenCache(dir)
	if err != nil {
		fatal(err)
	}
	return cache
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npb:", err)
	os.Exit(1)
}
