// Command npb runs one NAS Parallel Benchmark kernel on a modelled
// platform, either in full-math mode (verified numerics; EP, CG, FT, IS,
// MG at the small classes) or skeleton mode (pattern replay, any kernel,
// class B and beyond).
//
// Usage:
//
//	npb -bench cg -class B -np 16 -platform dcc -mode skeleton
//	npb -bench ep -class S -np 4 -platform vayu -mode full
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/platform"
)

func main() {
	bench := flag.String("bench", "cg", "kernel: bt ep cg ft is lu mg sp")
	className := flag.String("class", "S", "problem class: S W A B C")
	np := flag.Int("np", 1, "process count")
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	mode := flag.String("mode", "skeleton", "full (verified math) or skeleton (pattern replay)")
	flag.Parse()

	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	class, err := npb.ParseClass(*className)
	if err != nil {
		fatal(err)
	}
	if !npb.ValidProcs(*bench, *np) {
		fatal(fmt.Errorf("%s does not accept np=%d", *bench, *np))
	}

	switch *mode {
	case "skeleton":
		fn, err := suite.Skeleton(*bench)
		if err != nil {
			fatal(err)
		}
		out, err := core.Execute(core.RunSpec{Platform: p, NP: *np}, func(c *mpi.Comm) error {
			return fn(c, class)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s.%s.%d on %s: %.2f s virtual walltime, %.1f%% comm\n",
			*bench, class, *np, p.Name, out.Time(), out.Profile.CommPercent())
	case "full":
		fn, ok := suite.Fulls[*bench]
		if !ok {
			fatal(fmt.Errorf("kernel %s has no full-math implementation (EP, CG, FT, IS, MG do; LU/BT/SP are skeleton-only)", *bench))
		}
		// Establish self-goldens for the kernels with substituted problem
		// generators (a trusted serial run; see DESIGN.md).
		if *bench == "cg" || *bench == "ft" || *bench == "mg" {
			if err := suite.RegisterGoldens(class); err != nil {
				fatal(err)
			}
		}
		var result *suite.FullResult
		out, err := core.Execute(core.RunSpec{Platform: p, NP: *np}, func(c *mpi.Comm) error {
			r, err := fn(c, class)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				result = r
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s.%s.%d on %s: %.2f s virtual walltime, %.1f%% comm\n",
			*bench, class, *np, p.Name, out.Time(), out.Profile.CommPercent())
		fmt.Printf("verification: %s\n", result.VerifyMsg)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npb:", err)
	os.Exit(1)
}
