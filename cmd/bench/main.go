// Command bench runs the perfbench suite: runtime microbenchmarks plus
// figure-regeneration benchmarks, with committed allocation budgets.
//
// Usage:
//
//	bench [-out BENCH_PR3.json] [-baseline BENCH_PR3.json] [-smoke] [-runs N]
//
// Full mode measures every benchmark with testing.Benchmark (ns/op, B/op,
// allocs/op), checks the allocation budgets with testing.AllocsPerRun and
// writes the JSON report, carrying the baseline's "before" numbers along.
// Smoke mode (-smoke) skips the timing measurements and only checks the
// budgets with a single run each — the cheap gate `make verify` uses.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfbench"
)

func main() {
	out := flag.String("out", "", "write the JSON report to this file")
	baseline := flag.String("baseline", "", "carry before-numbers from this prior report")
	smoke := flag.Bool("smoke", false, "allocation-budget check only (1 run each, no timing)")
	runs := flag.Int("runs", 3, "runs per testing.AllocsPerRun measurement")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	flag.Parse()
	start := time.Now()

	writeManifest := func() {
		if err := obs.WriteManifest(*manifest, &obs.Manifest{
			Schema: obs.ManifestSchema, Binary: "bench",
			ModelVersion: core.ModelVersion,
			Knobs: map[string]string{
				"smoke": strconv.FormatBool(*smoke), "runs": strconv.Itoa(*runs),
			},
			WallSeconds: time.Since(start).Seconds(),
		}); err != nil {
			fatal(err)
		}
	}

	suite := perfbench.Suite()

	if *smoke {
		measured, violations := perfbench.CheckBudgets(suite, 1)
		for _, b := range suite {
			if b.AllocBudget <= 0 {
				continue
			}
			fmt.Printf("%-24s %8.0f allocs/run (budget %.0f)\n", b.Name, measured[b.Name], b.AllocBudget)
		}
		writeManifest()
		fail(violations)
		fmt.Println("bench: all allocation budgets respected")
		return
	}

	prev, err := perfbench.ReadReport(*baseline)
	if err != nil {
		fatal(err)
	}

	entries := make([]perfbench.Entry, 0, len(suite))
	for _, b := range suite {
		fmt.Printf("%-24s ", b.Name)
		st := perfbench.Measure(b)
		fmt.Printf("%12.0f ns/op %10.0f B/op %8.0f allocs/op\n", st.NsPerOp, st.BytesPerOp, st.AllocsPerOp)
		entries = append(entries, perfbench.Entry{Name: b.Name, After: &st, AllocBudget: b.AllocBudget})
	}
	measured, violations := perfbench.CheckBudgets(suite, *runs)
	for i := range entries {
		if v, ok := measured[entries[i].Name]; ok {
			entries[i].AllocsPerRun = v
		}
	}

	report := perfbench.NewReport(core.ModelVersion, entries, prev)
	for _, e := range report.Benchmarks {
		if s := e.Speedup(func(s perfbench.Stats) float64 { return s.AllocsPerOp }); s > 0 {
			fmt.Printf("%-24s %6.1fx fewer allocs/op, %5.2fx ns/op vs baseline\n",
				e.Name, s, e.Speedup(func(s perfbench.Stats) float64 { return s.NsPerOp }))
		}
	}
	if *out != "" {
		if err := perfbench.WriteReport(*out, report); err != nil {
			fatal(err)
		}
		fmt.Printf("bench: report written to %s\n", *out)
	}
	writeManifest()
	fail(violations)
}

// fail reports budget violations and exits nonzero if any exist.
func fail(violations []perfbench.BudgetViolation) {
	if len(violations) == 0 {
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "bench:", v.Error())
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
