// Command bench runs the perfbench suite: runtime microbenchmarks plus
// figure-regeneration benchmarks, with committed allocation and ns/op
// budgets and an append-only measurement history.
//
// Usage:
//
//	bench [-out BENCH_PR3.json] [-baseline BENCH_PR3.json] [-history results/bench/history.jsonl]
//	bench -smoke
//	bench -report [-history FILE] [-fail-on-regression] [MANIFEST...]
//
// Full mode measures every benchmark with testing.Benchmark (ns/op, B/op,
// allocs/op), checks the allocation and timing budgets, writes the JSON
// report (carrying the baseline's "before" numbers along) and appends
// one environment-stamped snapshot to the history. Smoke mode (-smoke)
// skips the suite-wide timing measurements and only checks the budgets —
// the cheap gate `make verify` uses. Report mode (-report) renders the
// per-benchmark trend table from the history (delta vs previous and vs
// the oldest same-environment entry, with a statistical verdict) and,
// given run-manifest paths as arguments, their recorded metrics; with
// -fail-on-regression it exits nonzero when the latest snapshot
// regressed against its trailing window.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfbench"
	"repro/internal/report"
)

func main() {
	out := flag.String("out", "", "write the JSON report to this file")
	baseline := flag.String("baseline", "", "carry before-numbers from this prior report")
	smoke := flag.Bool("smoke", false, "budget checks only (no suite-wide timing, no history)")
	runs := flag.Int("runs", 3, "runs per testing.AllocsPerRun measurement")
	history := flag.String("history", "", "append-only bench history (JSONL) to append to / report from")
	reportMode := flag.Bool("report", false, "render the trend table from the history instead of measuring")
	failOnRegression := flag.Bool("fail-on-regression", false, "with -report: exit nonzero when the latest snapshot regressed")
	window := flag.Int("window", perfbench.DefaultDetector().Window, "trailing history window the change detector compares against")
	tolerance := flag.Float64("tolerance", perfbench.DefaultDetector().Tolerance, "relative noise floor of the change detector")
	nsTolerance := flag.Float64("ns-tolerance", 0.25, "relative tolerance on the committed ns/op budgets")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	lintBench := flag.Bool("lint-bench", false,
		"time the reprolint whole-module sweep against its committed wall-clock budget")
	flag.Parse()
	start := time.Now()

	detector := perfbench.Detector{Window: *window, Tolerance: *tolerance,
		Sigmas: perfbench.DefaultDetector().Sigmas}
	env := perfbench.Env{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GitRev:     obs.GitRev(),
	}

	if *reportMode {
		reportTrends(*history, detector, *failOnRegression, flag.Args())
		return
	}
	if *lintBench {
		runLintBench(*history, env, start)
		return
	}

	writeManifest := func() {
		knobs := obs.EnvKnobs(env.GitRev)
		knobs["smoke"] = strconv.FormatBool(*smoke)
		knobs["runs"] = strconv.Itoa(*runs)
		if err := obs.WriteManifest(*manifest, &obs.Manifest{
			Schema: obs.ManifestSchema, Binary: "bench",
			ModelVersion: core.ModelVersion,
			Knobs:        knobs,
			WallSeconds:  time.Since(start).Seconds(),
		}); err != nil {
			fatal(err)
		}
	}

	suite := perfbench.Suite()

	if *smoke {
		measured, violations := perfbench.CheckBudgets(suite, 1)
		for _, b := range suite {
			if b.AllocBudget <= 0 {
				continue
			}
			fmt.Printf("%-24s %8.0f allocs/run (budget %.0f)\n", b.Name, measured[b.Name], b.AllocBudget)
		}
		ns, nsViolations := perfbench.CheckNsBudgets(suite, *nsTolerance)
		for _, b := range suite {
			if b.NsBudget <= 0 {
				continue
			}
			fmt.Printf("%-24s %12.0f ns/op (budget %.0f, tolerance %.0f%%)\n",
				b.Name, ns[b.Name], b.NsBudget, 100**nsTolerance)
		}
		writeManifest()
		fail(violations, nsViolations)
		fmt.Println("bench: all allocation and ns/op budgets respected")
		return
	}

	prev, err := perfbench.ReadReport(*baseline)
	if err != nil {
		fatal(err)
	}

	entries := make([]perfbench.Entry, 0, len(suite))
	stats := make(map[string]perfbench.Stats, len(suite))
	var nsViolations []perfbench.NsViolation
	for _, b := range suite {
		fmt.Printf("%-24s ", b.Name)
		st := perfbench.Measure(b)
		fmt.Printf("%12.0f ns/op %10.0f B/op %8.0f allocs/op\n", st.NsPerOp, st.BytesPerOp, st.AllocsPerOp)
		stats[b.Name] = st
		entries = append(entries, perfbench.Entry{Name: b.Name, After: &st,
			AllocBudget: b.AllocBudget, NsBudget: b.NsBudget})
		if b.NsBudget > 0 && st.NsPerOp > b.NsBudget*(1+*nsTolerance) {
			nsViolations = append(nsViolations, perfbench.NsViolation{
				Name: b.Name, Measured: st.NsPerOp, Budget: b.NsBudget, Tolerance: *nsTolerance})
		}
	}
	measured, violations := perfbench.CheckBudgets(suite, *runs)
	for i := range entries {
		if v, ok := measured[entries[i].Name]; ok {
			entries[i].AllocsPerRun = v
		}
	}

	rep := perfbench.NewReport(core.ModelVersion, entries, prev)
	for _, e := range rep.Benchmarks {
		if s := e.Speedup(func(s perfbench.Stats) float64 { return s.AllocsPerOp }); s > 0 {
			fmt.Printf("%-24s %6.1fx fewer allocs/op, %5.2fx ns/op vs baseline\n",
				e.Name, s, e.Speedup(func(s perfbench.Stats) float64 { return s.NsPerOp }))
		}
	}
	if *out != "" {
		if err := perfbench.WriteReport(*out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("bench: report written to %s\n", *out)
	}
	if *history != "" {
		when := start.UTC().Format(time.RFC3339)
		snap := perfbench.SnapshotFromStats(core.ModelVersion, when, env, stats)
		if err := perfbench.AppendHistory(*history, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("bench: snapshot appended to %s (%s)\n", *history, env.Fingerprint())
	}
	writeManifest()
	fail(violations, nsViolations)
}

// reportTrends renders the continuous-evaluation view of the history:
// one row per benchmark of the latest snapshot, classified against its
// trailing same-environment window, plus the stable metrics of any run
// manifests given as arguments.
func reportTrends(path string, d perfbench.Detector, failOnRegression bool, manifests []string) {
	if path == "" {
		fatal(fmt.Errorf("-report needs -history FILE"))
	}
	history, err := perfbench.ReadHistory(path)
	if err != nil {
		fatal(err)
	}
	if len(history) == 0 {
		fmt.Printf("bench: %s is empty — run `make bench` to take the first snapshot\n", path)
		return
	}
	last := history[len(history)-1]
	fmt.Printf("bench history %s: %d snapshot(s), latest %s on %s\n",
		path, len(history), orDash(last.Time), last.Env.Fingerprint())

	trends := d.Trends(history)
	t := &report.Table{
		Title:   fmt.Sprintf("Benchmark trends (window %d, tolerance %.0f%%, %.0f-sigma)", d.Window, 100*d.Tolerance, d.Sigmas),
		Headers: []string{"benchmark", "runs", "base ns/op", "prev ns/op", "ns/op", "vs prev", "vs base", "verdict"},
	}
	for _, tr := range trends {
		t.AddRow(tr.Name, tr.Runs, tr.Base, tr.Prev, tr.Current,
			pct(tr.VsPrev()), pct(tr.VsBase()), string(tr.Verdict))
	}
	fmt.Println(t.Render())

	for _, mpath := range manifests {
		printManifestMetrics(mpath)
	}

	if regs := perfbench.Regressions(trends); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "bench: %s regressed: %.0f ns/op vs window (prev %.0f, base %.0f)\n",
				r.Name, r.Current, r.Prev, r.Base)
		}
		if failOnRegression {
			os.Exit(1)
		}
	} else {
		fmt.Println("bench: no statistically significant regression in the latest snapshot")
	}
}

// printManifestMetrics renders the metric values recorded in one run
// manifest, so a trend review can line benchmark deltas up against the
// observability counters of the runs that produced them.
func printManifestMetrics(path string) {
	m, err := obs.ReadManifest(path)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(m.Metrics))
	for name := range m.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	t := &report.Table{
		Title:   fmt.Sprintf("Metrics of %s (binary %s, model %s)", path, m.Binary, m.ModelVersion),
		Headers: []string{"metric", "kind", "value", "count", "sum"},
	}
	for _, name := range names {
		mm := m.Metrics[name]
		t.AddRow(name, mm.Kind, mm.Value, mm.Count, mm.Sum)
	}
	fmt.Println(t.Render())
}

// pct renders a relative delta as a signed percentage ("-" when absent).
func pct(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// fail reports budget violations and exits nonzero if any exist.
func fail(violations []perfbench.BudgetViolation, ns []perfbench.NsViolation) {
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "bench:", v.Error())
	}
	for _, v := range ns {
		fmt.Fprintln(os.Stderr, "bench:", v.Error())
	}
	if len(violations)+len(ns) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// runLintBench times one cold reprolint sweep of the whole module —
// load, type-check, interprocedural facts, every analyzer — in-process
// (the same work `make lint`'s reprolint step does, minus the go run
// compile), checks it against the committed wall-clock budget and
// appends a "lint/reprolint-sweep" point to the bench history.
func runLintBench(historyPath string, env perfbench.Env, start time.Time) {
	root, err := moduleRoot(".")
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	loader := analysis.NewModuleLoader(root, analysis.ModulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(analysis.All(), pkgs)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)
	if len(diags) > 0 {
		// A dirty tree would time the diagnostic path, not the gate.
		fatal(fmt.Errorf("lint-bench: tree not reprolint-clean (%d findings); run make lint", len(diags)))
	}

	fmt.Printf("%-24s %12.0f ns/sweep (%d packages, budget %.0f)\n",
		"lint/reprolint-sweep", float64(elapsed.Nanoseconds()), len(pkgs), float64(perfbench.LintSweepBudgetNs))
	if historyPath != "" {
		when := start.UTC().Format(time.RFC3339)
		snap := perfbench.SnapshotFromStats(core.ModelVersion, when, env, map[string]perfbench.Stats{
			"lint/reprolint-sweep": {N: 1, NsPerOp: float64(elapsed.Nanoseconds())},
		})
		if err := perfbench.AppendHistory(historyPath, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("bench: snapshot appended to %s (%s)\n", historyPath, env.Fingerprint())
	}
	if float64(elapsed.Nanoseconds()) > perfbench.LintSweepBudgetNs {
		fatal(fmt.Errorf("lint-bench: sweep took %v, budget %v — an analyzer has regressed",
			elapsed, time.Duration(perfbench.LintSweepBudgetNs)))
	}
	fmt.Println("bench: reprolint sweep inside its wall-clock budget")
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
