// Command reprolint runs the repository's determinism, MPI-hygiene and
// metrics-stability analyzers (internal/analysis) over module packages.
//
// Standalone:
//
//	reprolint ./...                 # whole module (the make lint gate)
//	reprolint ./internal/mpi        # one package
//	reprolint -only detwall ./...   # subset of analyzers
//	reprolint -list                 # describe the suite
//
// It also speaks enough of the `go vet -vettool` unitchecker protocol to
// run under the standard driver:
//
//	go vet -vettool=$(pwd)/reprolint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// go vet probes -V=full before anything else; answer before flag
	// parsing so the probe never trips over our own flags.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintln(stdout, "reprolint version repro-"+analysis.ModulePath)
		return 0
	}

	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	allow := fs.String("allow", "", "extra detwall allowlist file (pkgpath funcname # reason)")
	printFlags := fs.Bool("flags", false, "print flag metadata (vettool protocol)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (unitchecker shape under vet, a flat array standalone)")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *printFlags {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	if *allow != "" {
		content, err := os.ReadFile(*allow)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		if err := analysis.AddDetwallAllowlist(string(content)); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}

	// A single non-flag argument ending in .cfg is the unitchecker
	// protocol: go vet hands us one package per invocation.
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVettool(fs.Arg(0), analyzers, *jsonOut, stdout, stderr)
	}
	mode := modePlain
	switch {
	case *sarifOut:
		mode = modeSARIF
	case *jsonOut:
		mode = modeJSON
	}
	return runStandalone(fs.Args(), analyzers, mode, stdout, stderr)
}

type outputMode int

const (
	modePlain outputMode = iota
	modeJSON
	modeSARIF
)

func runStandalone(patterns []string, analyzers []*analysis.Analyzer, mode outputMode, stdout, stderr io.Writer) int {
	root, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	loader := analysis.NewModuleLoader(root, modPath)
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		got, err := resolvePattern(loader, root, modPath, pat)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		pkgs = append(pkgs, got...)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	relTo := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(name)
	}
	switch mode {
	case modeJSON:
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: relTo(d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	case modeSARIF:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(sarifLog(analyzers, diags, relTo)); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relTo(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// resolvePattern loads "./...", an import path, or a ./relative package
// directory.
func resolvePattern(loader *analysis.Loader, root, modPath, pat string) ([]*analysis.Package, error) {
	switch {
	case pat == "./..." || pat == modPath+"/...":
		return loader.LoadAll()
	case strings.HasPrefix(pat, "./"):
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
		path := modPath
		if rel != "." {
			path += "/" + rel
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		return []*analysis.Package{pkg}, nil
	default:
		pkg, err := loader.Load(pat)
		if err != nil {
			return nil, err
		}
		return []*analysis.Package{pkg}, nil
	}
}

// --- go vet -vettool unitchecker protocol -------------------------------

// vetConfig is the subset of the unitchecker .cfg schema reprolint needs.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string // dependency facts written by earlier invocations
	VetxOutput  string            // where this package's facts go
}

// runVettool analyzes the single package described by a unitchecker cfg
// file: sources are parsed from cfg.GoFiles and imports resolve through
// the export data the go command already compiled (PackageFile), so the
// vet path needs no network and no re-typechecking of dependencies.
func runVettool(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "reprolint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Test files are out of scope, matching the standalone loader:
		// the invariants guard shipped artefact paths, and tests routinely
		// read wall clocks for timeouts. Skipping them here also skips the
		// [pkg.test] variants vet schedules alongside each package.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tcfg := types.Config{Importer: imp}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analysis.Package{
		Path: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}
	// Seed the facts engine with the dependency summaries go vet has
	// already collected (the PackageVetx half of the unitchecker
	// protocol), then export this package's table for its importers.
	imported := &analysis.Facts{}
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		blob, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil || len(blob) == 0 {
			continue // dependency produced no facts; nothing to seed
		}
		dep := &analysis.Facts{}
		if err := dep.UnmarshalJSON(blob); err != nil {
			fmt.Fprintf(stderr, "reprolint: bad facts for %s: %v\n", p, err)
			return 2
		}
		imported.Merge(dep)
	}
	diags, facts, err := analysis.RunWithFacts(analyzers, []*analysis.Package{pkg}, imported)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		blob, err := facts.MarshalJSON()
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, blob, 0o666)
		}
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}
	if jsonOut {
		// The unitchecker JSON shape, parsed by the go vet driver:
		// {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Message: d.Message,
			})
		}
		out := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		return 0
	}
	// Plain mode: silent when clean, diagnostics to stderr otherwise
	// (mirrors unitchecker, which go vet invokes per package).
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
