package main

import (
	"repro/internal/analysis"
)

// SARIF 2.1.0 output for code-scanning backends: one run, one rule per
// analyzer, one result per diagnostic. Only the properties those
// backends actually read are emitted; paths are repo-relative with a
// %SRCROOT% base so the log is machine-independent.

type sarifLogT struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLog assembles the log; relTo maps an absolute filename to its
// repo-relative slash form.
func sarifLog(analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, relTo func(string) string) sarifLogT {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relTo(d.Pos.Filename), URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return sarifLogT{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "reprolint", Rules: rules}}, Results: results}},
	}
}
