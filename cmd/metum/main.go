// Command metum runs the MetUM global atmosphere proxy on a modelled
// platform and prints an IPM-style report.
//
// Usage:
//
//	metum -platform ec2 -np 32 -nodes 4 [-trace t.json] [-manifest m.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/apps/metum"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	np := flag.Int("np", 32, "process count")
	nodes := flag.Int("nodes", 0, "node count (0 = memory-driven minimum)")
	steps := flag.Int("steps", 0, "override timestep count (0 = paper's 18)")
	breakdown := flag.Bool("breakdown", false, "print the per-process ATM_STEP breakdown (Fig 7 style)")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	faults := flag.String("faults", "",
		"fault injection, e.g. mtbf=600,ckpt=3 (keys: mtbf, straggle, slow, degrade, dlat, dbw, horizon, ckpt, seed)")
	runtimeName := flag.String("runtime", "", "mpi runtime: goroutine (default) or pdes")
	sink := trace.AddFlag()
	flag.Parse()
	start := time.Now()

	rt, err := mpi.RuntimeByName(*runtimeName)
	if err != nil {
		fatal(err)
	}
	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	fp, err := fault.ParseParams(*faults)
	if err != nil {
		fatal(err)
	}
	cfg := metum.Default()
	if *steps > 0 {
		cfg.Steps = *steps
		if cfg.Warmup >= cfg.Steps {
			cfg.Warmup = 0
		}
	}
	cfg.CheckpointEvery = fp.CheckpointEvery
	reg := obs.NewRegistry()
	spec := core.RunSpec{
		Platform: p, NP: *np, Nodes: *nodes, MemPerRank: cfg.MemPerRank(*np),
		Runtime: rt, ExtraTracer: sink.Tracer(*np), Metrics: reg,
	}
	var plan *fault.Plan
	if fp.Enabled() {
		plan, err = fault.Generate(fp.Spec, p.Name, "metum", *np, p.Nodes, fp.Seed)
		if err != nil {
			fatal(err)
		}
		spec.Faults = plan
		spec.Resilient = true
	}
	var stats *metum.Stats
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		s, err := metum.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("MetUM N320L70 on %s, np=%d\n", p.Name, *np)
	fmt.Printf("  total   %8.1f s\n", stats.Total)
	fmt.Printf("  warmed  %8.1f s\n", stats.Warmed)
	fmt.Printf("  I/O     %8.1f s\n", stats.IO)
	fmt.Printf("  %%comm   %8.1f\n", out.Profile.CommPercent())
	fmt.Printf("  %%wait   %8.1f (of comm)\n", out.Profile.WaitPercent())
	fmt.Printf("  %%imbal  %8.1f\n", out.Profile.LoadImbalancePercent())
	if rs := out.Resilience; rs != nil && (rs.Restarts > 0 || rs.Checkpoints > 0) {
		fmt.Printf("  faults  %d restart(s), %d checkpoint(s), %.1f s lost, %.1f s restart cost\n",
			rs.Restarts, rs.Checkpoints, rs.LostWork, rs.RestartOverhead)
	}
	fmt.Println()
	fmt.Print(out.Profile.String())

	if *breakdown {
		comp, comm, _ := out.Profile.Region("ATM_STEP")
		fmt.Println()
		fmt.Print(report.BarBreakdown("ATM_STEP time by process", comp, comm, 60))
	}

	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	m := &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "metum",
		ModelVersion: core.ModelVersion, Platform: p.Name,
		Knobs: map[string]string{
			"np":      strconv.Itoa(*np),
			"nodes":   strconv.Itoa(*nodes),
			"steps":   strconv.Itoa(cfg.Steps),
			"runtime": rt.String(),
		},
		FaultSpec:      *faults,
		VirtualSeconds: out.Result.Time,
		WallSeconds:    time.Since(start).Seconds(),
		Metrics:        reg.Snapshot(true),
	}
	if plan != nil {
		m.FaultDigest = plan.Digest()
	}
	if err := obs.WriteManifest(*manifest, m); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metum:", err)
	os.Exit(1)
}
