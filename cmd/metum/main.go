// Command metum runs the MetUM global atmosphere proxy on a modelled
// platform and prints an IPM-style report.
//
// Usage:
//
//	metum -platform ec2 -np 32 -nodes 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/metum"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	np := flag.Int("np", 32, "process count")
	nodes := flag.Int("nodes", 0, "node count (0 = memory-driven minimum)")
	steps := flag.Int("steps", 0, "override timestep count (0 = paper's 18)")
	breakdown := flag.Bool("breakdown", false, "print the per-process ATM_STEP breakdown (Fig 7 style)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event timeline to this file")
	faults := flag.String("faults", "",
		"fault injection, e.g. mtbf=600,ckpt=3 (keys: mtbf, straggle, slow, degrade, dlat, dbw, horizon, ckpt, seed)")
	flag.Parse()

	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	fp, err := fault.ParseParams(*faults)
	if err != nil {
		fatal(err)
	}
	cfg := metum.Default()
	if *steps > 0 {
		cfg.Steps = *steps
		if cfg.Warmup >= cfg.Steps {
			cfg.Warmup = 0
		}
	}
	cfg.CheckpointEvery = fp.CheckpointEvery
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New(*np)
	}
	spec := core.RunSpec{
		Platform: p, NP: *np, Nodes: *nodes, MemPerRank: cfg.MemPerRank(*np),
		ExtraTracer: tracerOrNil(rec),
	}
	if fp.Enabled() {
		plan, err := fault.Generate(fp.Spec, p.Name, "metum", *np, p.Nodes, fp.Seed)
		if err != nil {
			fatal(err)
		}
		spec.Faults = plan
		spec.Resilient = true
	}
	var stats *metum.Stats
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		s, err := metum.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("MetUM N320L70 on %s, np=%d\n", p.Name, *np)
	fmt.Printf("  total   %8.1f s\n", stats.Total)
	fmt.Printf("  warmed  %8.1f s\n", stats.Warmed)
	fmt.Printf("  I/O     %8.1f s\n", stats.IO)
	fmt.Printf("  %%comm   %8.1f\n", out.Profile.CommPercent())
	fmt.Printf("  %%imbal  %8.1f\n", out.Profile.LoadImbalancePercent())
	if rs := out.Resilience; rs != nil && (rs.Restarts > 0 || rs.Checkpoints > 0) {
		fmt.Printf("  faults  %d restart(s), %d checkpoint(s), %.1f s lost, %.1f s restart cost\n",
			rs.Restarts, rs.Checkpoints, rs.LostWork, rs.RestartOverhead)
	}
	fmt.Println()
	fmt.Print(out.Profile.String())

	if *breakdown {
		comp, comm, _ := out.Profile.Region("ATM_STEP")
		fmt.Println()
		fmt.Print(report.BarBreakdown("ATM_STEP time by process", comp, comm, 60))
	}

	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rec.WriteChrome(f); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d timeline events to %s (open in chrome://tracing)\n", rec.Count(), *traceOut)
	}
}

// tracerOrNil avoids a typed-nil interface when tracing is off.
func tracerOrNil(rec *trace.Recorder) mpi.Tracer {
	if rec == nil {
		return nil
	}
	return rec
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metum:", err)
	os.Exit(1)
}
