// Command inspect analyses the observability artefacts the other
// binaries emit: Chrome trace-event timelines (-trace) and run
// manifests (-manifest / the sibling manifest of every repro artefact).
//
// Usage:
//
//	inspect trace FILE [-run N] [-breakdown REGION] [-flame FILE] [-path N]
//	inspect manifest FILE...
//	inspect diff [-fail-on-diff] [-tolerance T] A.manifest.json B.manifest.json
//
// `trace` prints the per-rank time breakdown (the paper's Figure 7 view),
// the Scalasca-style wait-state classification with straggler
// attribution, the per-region wait table and the cross-rank critical
// path; -flame writes folded stacks for flamegraph tools. `manifest`
// validates and summarises manifests. `diff` compares the deterministic
// fields of two manifests — metric deltas, artefact hashes, knobs — and
// with -fail-on-diff exits nonzero when anything differs. Float-valued
// fields (virtual time, metric totals) go through the shared
// relative-tolerance comparator (perfbench.Within): -tolerance 0.05
// accepts a 5% spread, the default 0 keeps the comparison exact.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/perfbench"
	"repro/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "trace":
		cmdTrace(os.Args[2:])
	case "manifest":
		cmdManifest(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  inspect trace FILE [-run N] [-breakdown REGION] [-flame FILE] [-path N]
  inspect manifest FILE...
  inspect diff [-fail-on-diff] [-tolerance T] A.manifest.json B.manifest.json`)
	os.Exit(2)
}

// cmdTrace analyses one recorded timeline.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("inspect trace", flag.ExitOnError)
	run := fs.Int("run", 0, "which recording (Chrome pid) to analyse")
	breakdown := fs.String("breakdown", "", "also print the Fig-7 per-process bar breakdown of this region (\"all\" = whole run)")
	flame := fs.String("flame", "", "write folded flamegraph stacks to this file")
	pathN := fs.Int("path", 12, "critical-path segments to print (0 = none)")
	var file string
	// Accept both `inspect trace file -flags` and `inspect trace -flags file`.
	rest := args
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		file, rest = rest[0], rest[1:]
	}
	fs.Parse(rest)
	if file == "" && fs.NArg() > 0 {
		file = fs.Arg(0)
	}
	if file == "" {
		usage()
	}

	f, err := os.Open(file)
	if err != nil {
		fatal(err)
	}
	runs, err := obs.ParseChromeTrace(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	if len(runs) == 0 {
		fatal(fmt.Errorf("%s contains no events", file))
	}
	if *run < 0 || *run >= len(runs) {
		fatal(fmt.Errorf("-run %d out of range: file has %d recording(s)", *run, len(runs)))
	}
	tl := runs[*run].Timeline
	a := obs.Analyze(tl)

	fmt.Printf("%s: recording %d/%d, %d ranks, run end %ss\n\n",
		file, *run, len(runs), a.NP, report.FormatFloat(a.End))
	printRanks(a)
	printWaits(a)
	printRegions(a)
	if *pathN > 0 {
		printPath(a, *pathN)
	}
	if *breakdown != "" {
		printBreakdown(tl, a, *breakdown)
	}
	if *flame != "" {
		if err := os.WriteFile(*flame, obs.FoldedStacks(tl), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote folded stacks to %s\n", *flame)
	}
}

// printRanks renders the per-rank time split, the Figure 7 table.
func printRanks(a *obs.Analysis) {
	t := &report.Table{
		Title:   "Per-rank breakdown (s)",
		Headers: []string{"rank", "comp", "comm", "io", "wait", "queued", "end"},
	}
	for _, rb := range a.Ranks {
		t.AddRow(rb.Rank, rb.Comp, rb.Comm, rb.IO, rb.Wait, rb.Queued, rb.End)
	}
	fmt.Println(t.Render())
}

// printWaits renders the wait-state classification and straggler ranking.
func printWaits(a *obs.Analysis) {
	w := a.Waits
	t := &report.Table{
		Title:   "Wait states (Scalasca classification)",
		Headers: []string{"class", "count", "seconds"},
	}
	t.AddRow("late sender (p2p)", w.LateSenderCount, w.LateSender)
	t.AddRow("late receiver (queued)", w.LateReceiverCount, w.LateReceiver)
	t.AddRow("collective straggler", w.CollectiveCount, w.CollectiveWait)
	fmt.Println(t.Render())

	if len(w.ByStraggler) > 0 {
		type rs struct {
			rank int
			wait float64
		}
		var rows []rs
		for r, v := range w.ByStraggler {
			rows = append(rows, rs{r, v})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].wait != rows[j].wait {
				return rows[i].wait > rows[j].wait
			}
			return rows[i].rank < rows[j].rank
		})
		if len(rows) > 8 {
			rows = rows[:8]
		}
		t := &report.Table{
			Title:   "Wait attributed to straggling rank",
			Headers: []string{"rank", "others waited (s)"},
		}
		for _, r := range rows {
			t.AddRow(r.rank, r.wait)
		}
		fmt.Println(t.Render())
	}
}

// printRegions renders the per-region wait table.
func printRegions(a *obs.Analysis) {
	if len(a.Regions) == 0 {
		return
	}
	t := &report.Table{
		Title:   "Per-region communication and wait (s)",
		Headers: []string{"region", "calls", "comm", "wait", "queued"},
	}
	for _, rw := range a.Regions {
		name := rw.Region
		if name == "" {
			name = "(main)"
		}
		t.AddRow(name, rw.Calls, rw.Comm, rw.Wait, rw.Queued)
	}
	fmt.Println(t.Render())
}

// printPath renders the critical path: headline plus the longest hops.
func printPath(a *obs.Analysis, n int) {
	pct := 0.0
	if a.End > 0 {
		pct = 100 * a.PathLength / a.End
	}
	fmt.Printf("Critical path: %d segment(s), %ss tracked (%.1f%% of run end)\n",
		len(a.Path), report.FormatFloat(a.PathLength), pct)
	segs := append([]obs.Segment(nil), a.Path...)
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Dur() > segs[j].Dur() })
	if len(segs) > n {
		segs = segs[:n]
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Longest %d path segments", len(segs)),
		Headers: []string{"rank", "activity", "kind", "start", "dur (s)"},
	}
	for _, s := range segs {
		t.AddRow(s.Rank, s.Name, s.Kind, s.Start, s.Dur())
	}
	fmt.Println(t.Render())
}

// printBreakdown renders the Fig-7 style per-process bar chart for one
// region ("all" selects every event).
func printBreakdown(tl obs.Timeline, a *obs.Analysis, region string) {
	comp := make([]float64, a.NP)
	comm := make([]float64, a.NP)
	for r, evs := range tl {
		for _, e := range evs {
			if region != "all" && e.Region != region {
				continue
			}
			if e.Kind == "comm" {
				comm[r] += e.Dur
			} else {
				comp[r] += e.Dur // compute and io both render as "work"
			}
		}
	}
	title := fmt.Sprintf("Time by process, region %s", region)
	fmt.Print(report.BarBreakdown(title, comp, comm, 60))
}

// cmdManifest validates and summarises manifests.
func cmdManifest(args []string) {
	if len(args) == 0 {
		usage()
	}
	bad := 0
	for _, path := range args {
		m, err := obs.ReadManifest(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspect: %v\n", err)
			bad++
			continue
		}
		fmt.Printf("%s: valid (%s)\n", path, m.Schema)
		fmt.Printf("  binary=%s artefact=%s model=%s platform=%s seed=%d\n",
			m.Binary, orDash(m.Artefact), m.ModelVersion, orDash(m.Platform), m.Seed)
		if len(m.Knobs) > 0 {
			fmt.Printf("  knobs: %s\n", renderKV(m.Knobs))
		}
		if m.FaultSpec != "" || m.FaultDigest != "" {
			fmt.Printf("  faults: spec=%s digest=%s\n", orDash(m.FaultSpec), orDash(short(m.FaultDigest)))
		}
		fmt.Printf("  virtual=%ss wall=%ss metrics=%d artefacts=%d\n",
			report.FormatFloat(m.VirtualSeconds), report.FormatFloat(m.WallSeconds),
			len(m.Metrics), len(m.Artefacts))
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// cmdDiff compares the deterministic fields of two manifests.
func cmdDiff(args []string) {
	fs := flag.NewFlagSet("inspect diff", flag.ExitOnError)
	failOnDiff := fs.Bool("fail-on-diff", false, "exit nonzero when the manifests differ")
	tolerance := fs.Float64("tolerance", 0, "relative tolerance for float-valued fields (0 = exact)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	a, err := obs.ReadManifest(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := obs.ReadManifest(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	diffs := diffManifests(os.Stdout, a, b, *tolerance)
	if diffs == 0 {
		fmt.Println("manifests match (wall time ignored)")
	} else {
		fmt.Printf("%d difference(s)\n", diffs)
		if *failOnDiff {
			os.Exit(1)
		}
	}
}

// diffManifests prints every difference between two manifests to w and
// returns the count. Identity fields (binary, seed, knobs, hashes)
// compare exactly; numeric fields — virtual time and metric totals — go
// through the shared relative-tolerance comparator, so a -fail-on-diff
// gate with a tolerance no longer trips on a sub-noise float delta.
func diffManifests(w io.Writer, a, b *obs.Manifest, tol float64) int {
	diffs := 0
	note := func(format string, args ...any) {
		diffs++
		fmt.Fprintf(w, format+"\n", args...)
	}

	if a.Binary != b.Binary {
		note("binary: %s vs %s", a.Binary, b.Binary)
	}
	if a.Artefact != b.Artefact {
		note("artefact: %s vs %s", orDash(a.Artefact), orDash(b.Artefact))
	}
	if a.ModelVersion != b.ModelVersion {
		note("model_version: %s vs %s", a.ModelVersion, b.ModelVersion)
	}
	if a.Seed != b.Seed {
		note("seed: %d vs %d", a.Seed, b.Seed)
	}
	if ka, kb := renderKV(a.Knobs), renderKV(b.Knobs); ka != kb {
		note("knobs: {%s} vs {%s}", ka, kb)
	}
	if a.FaultSpec != b.FaultSpec || a.FaultDigest != b.FaultDigest {
		note("faults: %s/%s vs %s/%s", orDash(a.FaultSpec), short(a.FaultDigest),
			orDash(b.FaultSpec), short(b.FaultDigest))
	}
	if !perfbench.Within(a.VirtualSeconds, b.VirtualSeconds, tol) {
		note("virtual_seconds: %s vs %s (delta %s)",
			report.FormatFloat(a.VirtualSeconds), report.FormatFloat(b.VirtualSeconds),
			report.FormatFloat(b.VirtualSeconds-a.VirtualSeconds))
	}
	diffs += diffMetrics(w, a.Metrics, b.Metrics, tol)
	diffs += diffArtefacts(w, a.Artefacts, b.Artefacts)
	return diffs
}

// metricsEqual compares the headline values of one metric within the
// relative tolerance (histograms on both count and sum).
func metricsEqual(a, b obs.Metric, tol float64) bool {
	if a.Kind == "histogram" || b.Kind == "histogram" {
		return a.Kind == b.Kind &&
			perfbench.Within(float64(a.Count), float64(b.Count), tol) &&
			perfbench.Within(float64(a.Sum), float64(b.Sum), tol)
	}
	return perfbench.Within(float64(a.Value), float64(b.Value), tol)
}

// diffMetrics prints per-metric deltas and returns the difference count.
func diffMetrics(w io.Writer, a, b map[string]obs.Metric, tol float64) int {
	names := unionKeys(a, b)
	diffs := 0
	for _, name := range names {
		ma, oka := a[name]
		mb, okb := b[name]
		switch {
		case !oka:
			diffs++
			fmt.Fprintf(w, "metric %s: only in B (%s)\n", name, metricValue(mb))
		case !okb:
			diffs++
			fmt.Fprintf(w, "metric %s: only in A (%s)\n", name, metricValue(ma))
		case !metricsEqual(ma, mb, tol):
			diffs++
			fmt.Fprintf(w, "metric %s: %s vs %s (delta %d)\n",
				name, metricValue(ma), metricValue(mb), metricDelta(ma, mb))
		}
	}
	return diffs
}

// metricValue renders the comparable value of a metric.
func metricValue(m obs.Metric) string {
	if m.Kind == "histogram" {
		return fmt.Sprintf("count=%d sum=%d", m.Count, m.Sum)
	}
	return fmt.Sprintf("%d", m.Value)
}

// metricDelta returns B-A of the headline value.
func metricDelta(a, b obs.Metric) int64 {
	if a.Kind == "histogram" {
		return b.Sum - a.Sum
	}
	return b.Value - a.Value
}

// diffArtefacts compares output hashes and returns the difference count.
func diffArtefacts(w io.Writer, a, b map[string]string) int {
	diffs := 0
	for _, name := range unionKeys(a, b) {
		ha, oka := a[name]
		hb, okb := b[name]
		switch {
		case !oka:
			diffs++
			fmt.Fprintf(w, "artefact %s: only in B\n", name)
		case !okb:
			diffs++
			fmt.Fprintf(w, "artefact %s: only in A\n", name)
		case ha != hb:
			diffs++
			fmt.Fprintf(w, "artefact %s: content differs (%s vs %s)\n", name, short(ha), short(hb))
		}
	}
	return diffs
}

func unionKeys[V any](a, b map[string]V) []string {
	set := map[string]bool{}
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderKV(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, " ")
}

func short(sum string) string {
	if len(sum) > 12 {
		return sum[:12]
	}
	return sum
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inspect:", err)
	os.Exit(1)
}
