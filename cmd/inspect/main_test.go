package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

func manifestWith(virtual float64, sends int64) *obs.Manifest {
	return &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "npb",
		ModelVersion:   "test-model",
		VirtualSeconds: virtual,
		Metrics: map[string]obs.Metric{
			"mpi_sends_total": {Kind: "counter", Value: sends},
		},
	}
}

// TestDiffToleranceFloatDelta is the regression test for the old
// -fail-on-diff behaviour, which counted ANY float delta — even one far
// below simulation noise — as a difference. Routed through the shared
// comparator, a sub-tolerance virtual-time delta no longer diffs.
func TestDiffToleranceFloatDelta(t *testing.T) {
	a := manifestWith(100.0, 4096)
	b := manifestWith(100.000001, 4096)

	if got := diffManifests(io.Discard, a, b, 0); got != 1 {
		t.Fatalf("exact diff count = %d, want 1 (virtual_seconds differs)", got)
	}
	if got := diffManifests(io.Discard, a, b, 0.01); got != 0 {
		t.Fatalf("tolerant diff count = %d, want 0", got)
	}
	// The tolerance must not mask a real change.
	c := manifestWith(150.0, 4096)
	if got := diffManifests(io.Discard, a, c, 0.01); got != 1 {
		t.Fatalf("real virtual-time change: diff count = %d, want 1", got)
	}
}

func TestDiffToleranceMetrics(t *testing.T) {
	a := manifestWith(100, 1000)
	b := manifestWith(100, 1009)
	if got := diffManifests(io.Discard, a, b, 0); got != 1 {
		t.Fatalf("exact metric diff count = %d, want 1", got)
	}
	if got := diffManifests(io.Discard, a, b, 0.02); got != 0 {
		t.Fatalf("tolerant metric diff count = %d, want 0", got)
	}
	b.Metrics["mpi_sends_total"] = obs.Metric{Kind: "counter", Value: 2000}
	if got := diffManifests(io.Discard, a, b, 0.02); got != 1 {
		t.Fatalf("doubled metric: diff count = %d, want 1", got)
	}
}

// Identity fields stay exact regardless of tolerance.
func TestDiffIdentityFieldsExact(t *testing.T) {
	a := manifestWith(100, 1000)
	b := manifestWith(100, 1000)
	b.Seed = 7
	var sb strings.Builder
	if got := diffManifests(&sb, a, b, 0.5); got != 1 {
		t.Fatalf("seed change under tolerance: diff count = %d, want 1", got)
	}
	if !strings.Contains(sb.String(), "seed") {
		t.Fatalf("diff output %q does not name the seed", sb.String())
	}
}

func TestDiffHistogramMetrics(t *testing.T) {
	h := func(count, sum int64) *obs.Manifest {
		return &obs.Manifest{
			Schema: obs.ManifestSchema, Binary: "npb", ModelVersion: "m",
			Metrics: map[string]obs.Metric{
				"lat_ns": {Kind: "histogram", Count: count, Sum: sum},
			},
		}
	}
	if got := diffManifests(io.Discard, h(100, 5000), h(100, 5040), 0.01); got != 0 {
		t.Fatalf("histogram within tolerance: diff count = %d, want 0", got)
	}
	if got := diffManifests(io.Discard, h(100, 5000), h(100, 9000), 0.01); got != 1 {
		t.Fatalf("histogram sum jump: diff count = %d, want 1", got)
	}
}
