// Command chaste runs the Chaste cardiac-simulation proxy on a modelled
// platform and prints per-section timings and an IPM-style report.
//
// Usage:
//
//	chaste -platform dcc -np 32 [-trace t.json] [-manifest m.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/apps/chaste"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/trace"
)

func main() {
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	np := flag.Int("np", 32, "process count")
	steps := flag.Int("steps", 0, "override timestep count (0 = paper's 250)")
	manifest := flag.String("manifest", "", "write a run-manifest JSON to this file")
	faults := flag.String("faults", "",
		"fault injection, e.g. mtbf=600,ckpt=25 (keys: mtbf, straggle, slow, degrade, dlat, dbw, horizon, ckpt, seed)")
	sink := trace.AddFlag()
	flag.Parse()
	start := time.Now()

	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	fp, err := fault.ParseParams(*faults)
	if err != nil {
		fatal(err)
	}
	cfg := chaste.Default()
	if *steps > 0 {
		cfg.Steps = *steps
	}
	cfg.CheckpointEvery = fp.CheckpointEvery
	reg := obs.NewRegistry()
	spec := core.RunSpec{
		Platform: p, NP: *np, MemPerRank: cfg.MemPerRank(*np),
		ExtraTracer: sink.Tracer(*np), Metrics: reg,
	}
	var plan *fault.Plan
	if fp.Enabled() {
		plan, err = fault.Generate(fp.Spec, p.Name, "chaste", *np, p.Nodes, fp.Seed)
		if err != nil {
			fatal(err)
		}
		spec.Faults = plan
		spec.Resilient = true
	}
	var stats *chaste.Stats
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		s, err := chaste.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Chaste rabbit heart (%d nodes, %d elements) on %s, np=%d\n",
		cfg.MeshNodes, cfg.MeshElements, p.Name, *np)
	fmt.Printf("  total   %8.1f s\n", stats.Total)
	fmt.Printf("  input   %8.1f s\n", stats.Input)
	fmt.Printf("  KSp     %8.1f s\n", stats.KSp)
	fmt.Printf("  output  %8.1f s\n", stats.Output)
	fmt.Printf("  %%comm   %8.1f\n", out.Profile.CommPercent())
	fmt.Printf("  %%wait   %8.1f (of comm)\n", out.Profile.WaitPercent())
	if rs := out.Resilience; rs != nil && (rs.Restarts > 0 || rs.Checkpoints > 0) {
		fmt.Printf("  faults  %d restart(s), %d checkpoint(s), %.1f s lost, %.1f s restart cost\n",
			rs.Restarts, rs.Checkpoints, rs.LostWork, rs.RestartOverhead)
	}
	fmt.Println()
	fmt.Print(out.Profile.String())

	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	m := &obs.Manifest{
		Schema: obs.ManifestSchema, Binary: "chaste",
		ModelVersion: core.ModelVersion, Platform: p.Name,
		Knobs: map[string]string{
			"np":    strconv.Itoa(*np),
			"steps": strconv.Itoa(cfg.Steps),
		},
		FaultSpec:      *faults,
		VirtualSeconds: out.Result.Time,
		WallSeconds:    time.Since(start).Seconds(),
		Metrics:        reg.Snapshot(true),
	}
	if plan != nil {
		m.FaultDigest = plan.Digest()
	}
	if err := obs.WriteManifest(*manifest, m); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaste:", err)
	os.Exit(1)
}
