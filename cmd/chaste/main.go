// Command chaste runs the Chaste cardiac-simulation proxy on a modelled
// platform and prints per-section timings and an IPM-style report.
//
// Usage:
//
//	chaste -platform dcc -np 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/chaste"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
)

func main() {
	platName := flag.String("platform", "vayu", "platform: vayu, dcc or ec2")
	np := flag.Int("np", 32, "process count")
	steps := flag.Int("steps", 0, "override timestep count (0 = paper's 250)")
	flag.Parse()

	p, err := platform.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	cfg := chaste.Default()
	if *steps > 0 {
		cfg.Steps = *steps
	}
	var stats *chaste.Stats
	out, err := core.Execute(core.RunSpec{
		Platform: p, NP: *np, MemPerRank: cfg.MemPerRank(*np),
	}, func(c *mpi.Comm) error {
		s, err := chaste.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Chaste rabbit heart (%d nodes, %d elements) on %s, np=%d\n",
		cfg.MeshNodes, cfg.MeshElements, p.Name, *np)
	fmt.Printf("  total   %8.1f s\n", stats.Total)
	fmt.Printf("  input   %8.1f s\n", stats.Input)
	fmt.Printf("  KSp     %8.1f s\n", stats.KSp)
	fmt.Printf("  output  %8.1f s\n", stats.Output)
	fmt.Printf("  %%comm   %8.1f\n", out.Profile.CommPercent())
	fmt.Println()
	fmt.Print(out.Profile.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaste:", err)
	os.Exit(1)
}
