//go:build race

package repro

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
