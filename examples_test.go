package repro

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesSmoke builds each example program once, executes it twice,
// and asserts a nonempty, run-to-run identical stdout digest: the
// examples are living documentation, so they must keep compiling,
// running, and — like everything else built on the simulator — producing
// deterministic output.
//
// Skipped in -short mode and under the race detector: the examples are
// separate main packages, so each costs a compile and runs without the
// detector's instrumentation anyway.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example builds skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("example builds skipped under the race detector")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	bindir := t.TempDir()
	for _, name := range []string{"quickstart", "scaling", "cloudburst", "spotpricing", "vmpackaging"} {
		name := name
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command(gobin, "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s: %v\n%s", name, err, out)
			}
			digest := func() string {
				var stdout, stderr bytes.Buffer
				cmd := exec.Command(bin)
				cmd.Stdout = &stdout
				cmd.Stderr = &stderr
				if err := cmd.Run(); err != nil {
					t.Fatalf("%s: %v\nstderr: %s", name, err, stderr.String())
				}
				if stdout.Len() == 0 {
					t.Fatalf("%s printed nothing to stdout", name)
				}
				sum := sha256.Sum256(stdout.Bytes())
				return hex.EncodeToString(sum[:])
			}
			first, second := digest(), digest()
			if first != second {
				t.Errorf("%s stdout differs between runs: %s vs %s", name, first, second)
			}
		})
	}
}
