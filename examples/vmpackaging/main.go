// VM packaging: the paper's workflow — build applications inside the HPC
// facility's module environment, package /apps and the binaries into a VM
// image, and deploy it to the private (DCC) and public (EC2) clouds —
// including the SSE4 portability failure the paper hit and its fix.
//
//	go run ./examples/vmpackaging
package main

import (
	"fmt"
	"log"

	"repro/internal/hpcenv"
)

func main() {
	// 1. Stand up the Vayu environment: install the module tree, load the
	//    application stacks.
	vayu := hpcenv.VayuHost()
	for _, m := range hpcenv.StandardModules() {
		if err := vayu.Env.Install(m); err != nil {
			log.Fatal(err)
		}
	}
	for _, m := range []string{"um-deps", "chaste-deps"} {
		if err := vayu.Env.Load(m); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("loaded on vayu:", vayu.Env.Loaded())

	// 2. Build the applications. The first attempt uses host-tuned flags
	//    (icc -xHost), as one naturally would on the HPC login node.
	ifort := hpcenv.Compiler{Name: "ifort", Version: "11.1.072"}
	icpc := hpcenv.Compiler{Name: "icpc", Version: "11.1.046"}
	umTuned, err := ifort.Build("um", vayu, hpcenv.BuildOptions{
		HostTuned: true, Modules: []string{"um-deps"},
	})
	if err != nil {
		log.Fatal(err)
	}
	chasteBin, err := icpc.Build("chaste", vayu, hpcenv.BuildOptions{
		Modules: []string{"chaste-deps"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Package the environment and binaries into a VM image (the rsync
	//    of /apps plus home/project binaries).
	img := hpcenv.Package("hpc-env-2012-02", "CentOS 5.7", vayu, umTuned, chasteBin)
	fmt.Printf("packaged image %s with %d binaries and the module tree\n", img.Name, len(img.Binaries))

	// 4. Deploy to the clouds. The tuned UM binary dies on the DCC guest:
	//    VMware's compatibility masking hides SSE4 from the virtual CPU.
	for _, target := range []hpcenv.Host{hpcenv.DCCHost(), hpcenv.EC2Host()} {
		dep := hpcenv.Deploy(img, target)
		for _, app := range []string{"um", "chaste"} {
			if err := dep.Exec(app); err != nil {
				fmt.Printf("  %-16s %-8s FAILED: %v\n", target.Name, app, err)
			} else {
				fmt.Printf("  %-16s %-8s ok\n", target.Name, app)
			}
		}
	}

	// 5. The fix the paper describes: "the selection of suitable
	//    compilation switches" — rebuild UM portably and re-package.
	umPortable, err := ifort.Build("um", vayu, hpcenv.BuildOptions{
		Modules: []string{"um-deps"},
	})
	if err != nil {
		log.Fatal(err)
	}
	img2 := hpcenv.Package("hpc-env-2012-02b", "CentOS 5.7", vayu, umPortable, chasteBin)
	fmt.Printf("\nrebuilt um with portable switches; image %s:\n", img2.Name)
	for _, target := range []hpcenv.Host{hpcenv.DCCHost(), hpcenv.EC2Host(), hpcenv.VayuHost()} {
		dep := hpcenv.Deploy(img2, target)
		if err := dep.Exec("um"); err != nil {
			fmt.Printf("  %-16s um FAILED: %v\n", target.Name, err)
		} else {
			fmt.Printf("  %-16s um ok\n", target.Name)
		}
	}
}
