// Scaling study: a what-if the library makes cheap — how would the MetUM
// climate model scale on the DCC private cloud if its GigE vNIC were
// replaced with the EC2-style 10GigE interconnect, or with real QDR
// InfiniBand? The paper's key finding is that the interconnect dominates;
// this example quantifies it on a custom platform.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/metum"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/platform"
	"repro/internal/report"
)

// dccWith returns a copy of the DCC platform with a different inter-node
// link.
func dccWith(name string, link netmodel.Link) *platform.Platform {
	p := platform.DCC()
	p.Name = name
	p.Inter = link
	return p
}

func main() {
	cfg := metum.Default()
	variants := []*platform.Platform{
		platform.DCC(),
		dccWith("dcc+10gige", netmodel.TenGigEXen()),
		dccWith("dcc+qdr-ib", netmodel.QDRInfiniBand()),
	}

	fig := &report.Figure{
		Title:  "MetUM warmed speedup on DCC with upgraded interconnects",
		XLabel: "# of cores", YLabel: "speedup over 8", LogX: true, LogY: true,
	}
	table := &report.Table{
		Title:   "MetUM warmed time (s)",
		Headers: []string{"platform", "np=8", "np=16", "np=32", "np=64", "speedup@64"},
	}

	for _, p := range variants {
		times := map[int]float64{}
		for _, np := range []int{8, 16, 32, 64} {
			var stats *metum.Stats
			_, err := core.Execute(core.RunSpec{
				Platform: p, NP: np, MemPerRank: cfg.MemPerRank(np),
			}, func(c *mpi.Comm) error {
				s, err := metum.Run(c, cfg)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					stats = s
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			times[np] = stats.Warmed
		}
		sp, err := core.Speedup(times, 8)
		if err != nil {
			log.Fatal(err)
		}
		s := &report.Series{Name: p.Name}
		for _, np := range []int{8, 16, 32, 64} {
			s.Add(float64(np), sp[np])
		}
		fig.Series = append(fig.Series, s)
		table.AddRow(p.Name, times[8], times[16], times[32], times[64], sp[64])
	}

	fmt.Print(table.Render())
	fmt.Println()
	fmt.Print(fig.ASCII(60, 14))
	fmt.Println("\nUpgrading only the NIC recovers most of the lost scalability —")
	fmt.Println("the paper's conclusion (a) quantified.")
}
