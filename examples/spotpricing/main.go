// Spot pricing: the paper's closing future-work item implemented —
// "integrate Amazon EC2 spot-pricing into our local ANUPBS scheduler, to
// avail of price competitive compute resources". Run a week-long MetUM
// campaign on EC2 spot instances with different bidding strategies and
// compare cost and completion against on-demand.
//
//	go run ./examples/spotpricing
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/metum"
	"repro/internal/arrive"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/report"
)

func main() {
	// 1. How long does one MetUM run take on EC2-4 (32 ranks, 4 nodes)?
	cfg := metum.Default()
	var stats *metum.Stats
	_, err := core.Execute(core.RunSpec{
		Platform: platform.EC2(), NP: 32, Nodes: 4, MemPerRank: cfg.MemPerRank(32),
	}, func(c *mpi.Comm) error {
		s, err := metum.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// A production campaign: 200 forecast cycles.
	const cycles = 200
	jobHours := stats.Total / 3600 * cycles
	const nodes = 4
	fmt.Printf("one MetUM run on ec2-4: %.0f s; campaign of %d cycles = %.1f node-hours x %d nodes\n\n",
		stats.Total, cycles, jobHours, nodes)

	// 2. Sweep bidding strategies on the spot market.
	market := arrive.NewSpotMarket(2012)
	table := &report.Table{
		Title: "MetUM campaign on EC2 spot (on-demand $1.60/node-hr)",
		Headers: []string{"strategy", "bid $", "done", "interrupts",
			"wall (h)", "cost $", "on-demand $", "savings"},
	}
	strategies := []struct {
		name string
		bid  float64
		ckpt float64
	}{
		{"floor bid, ckpt 1h", market.Floor + 0.02, 1},
		{"mean bid, ckpt 1h", market.Mean, 1},
		{"mean bid, no ckpt", market.Mean, 0},
		{"on-demand bid, ckpt 1h", market.OnDemand, 1},
		{"above spikes, ckpt 1h", market.OnDemand * 1.6, 1},
	}
	for _, s := range strategies {
		out, err := market.SpotRun(jobHours, nodes, s.bid, s.ckpt, 24*14)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(s.name, s.bid, fmt.Sprintf("%v", out.Completed), out.Interruptions,
			out.WallHours, out.Cost, out.OnDemandCost,
			fmt.Sprintf("%.0f%%", out.Savings*100))
	}
	fmt.Print(table.Render())

	// 3. Let the scheduler pick.
	bid, best, err := market.BestBid(jobHours, nodes, 1, 24*14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscheduler-selected bid: $%.2f -> cost $%.0f (%.0f%% below on-demand), %d interruptions\n",
		bid, best.Cost, best.Savings*100, best.Interruptions)
}
