// Cloudburst: the paper's motivating scenario end-to-end. Profile
// representative workloads once (ARRIVE-F style), predict their runtimes
// on the EC2 cloud, classify which are burst candidates, then simulate a
// saturated HPC queue with and without profile-guided cloudbursting.
//
//	go run ./examples/cloudburst
package main

import (
	"fmt"
	"log"

	"repro/internal/arrive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/platform"
	"repro/internal/report"
)

// profileKernel runs an NPB kernel on Vayu and extracts its workload
// profile.
func profileKernel(name string, np int) (*arrive.WorkloadProfile, error) {
	fn, err := suite.Skeleton(name)
	if err != nil {
		return nil, err
	}
	out, err := core.Execute(core.RunSpec{Platform: platform.Vayu(), NP: np}, func(c *mpi.Comm) error {
		return fn(c, npb.ClassB)
	})
	if err != nil {
		return nil, err
	}
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: np})
	if err != nil {
		return nil, err
	}
	w := arrive.FromProfile(name, out.Profile, platform.Vayu(), pl.MaxRanksPerNode())
	return w, nil
}

// profileSynthetic builds a compute-heavy profile (a parameter sweep,
// debugging runs — the jobs the paper says "do not require the
// supercomputing cluster").
func profileSynthetic(name string, np int, flops float64) (*arrive.WorkloadProfile, error) {
	out, err := core.Execute(core.RunSpec{Platform: platform.Vayu(), NP: np}, func(c *mpi.Comm) error {
		for i := 0; i < 10; i++ {
			c.Compute(cpumodel.Work{Flops: flops / 10 / float64(np)})
			c.AllreduceN(8)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: np})
	if err != nil {
		return nil, err
	}
	return arrive.FromProfile(name, out.Profile, platform.Vayu(), pl.MaxRanksPerNode()), nil
}

func main() {
	type candidate struct {
		w  *arrive.WorkloadProfile
		np int
	}
	var candidates []candidate
	for _, spec := range []struct {
		kernel string
		np     int
	}{{"ep", 32}, {"cg", 32}, {"is", 32}, {"lu", 16}} {
		w, err := profileKernel(spec.kernel, spec.np)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, candidate{w, spec.np})
	}
	sweep, err := profileSynthetic("param-sweep", 16, 5e13)
	if err != nil {
		log.Fatal(err)
	}
	candidates = append(candidates, candidate{sweep, 16})

	table := &report.Table{
		Title:   "ARRIVE-style platform advice (profiles taken on vayu)",
		Headers: []string{"workload", "class", "burst?", "t(vayu)", "t(ec2)", "slowdown"},
	}
	var jobs []arrive.Job
	for i, cand := range candidates {
		vayu := cand.w.Predict(platform.Vayu())
		ec2 := cand.w.Predict(platform.EC2())
		slow := cand.w.Slowdown(platform.EC2())
		table.AddRow(cand.w.Name, string(cand.w.Classify()),
			fmt.Sprintf("%v", cand.w.CloudFriendly(platform.EC2(), 1.6)), vayu.Total, ec2.Total, slow)
		// Queue scenario: 8 copies of each workload submitted a minute apart.
		for k := 0; k < 8; k++ {
			jobs = append(jobs, arrive.Job{
				ID:            fmt.Sprintf("%s-%d", cand.w.Name, k),
				NP:            cand.np,
				Runtime:       vayu.Total,
				Submit:        float64((i*8 + k) * 60),
				CloudSlowdown: slow,
			})
		}
	}
	fmt.Print(table.Render())

	const clusterSlots = 64 // a contended partition of the HPC facility
	base, err := arrive.SimulateQueue(jobs, clusterSlots, arrive.BurstPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	burst, err := arrive.SimulateQueue(jobs, clusterSlots, arrive.BurstPolicy{
		Enabled:      true,
		MaxSlowdown:  1.6,
		MinQueueWait: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := &report.Table{
		Title:   "Saturated queue: FCFS vs profile-guided cloudburst",
		Headers: []string{"policy", "avg wait (s)", "max wait (s)", "makespan (s)", "jobs burst", "cloud core-hours"},
	}
	q.AddRow("hpc only", base.AvgWait, base.MaxWait, base.Makespan, base.Burst, base.CloudSecs/3600)
	q.AddRow("cloudburst", burst.AvgWait, burst.MaxWait, burst.Makespan, burst.Burst, burst.CloudSecs/3600)
	fmt.Println()
	fmt.Print(q.Render())

	if base.AvgWait > 0 {
		fmt.Printf("\nAverage wait improved by %.0f%% — the ARRIVE-F paper reports up to 33%%.\n",
			100*(base.AvgWait-burst.AvgWait)/base.AvgWait)
	}
}
