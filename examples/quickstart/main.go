// Quickstart: run one NPB kernel on all three modelled platforms and
// compare them — the smallest end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/platform"
	"repro/internal/report"
)

func main() {
	const kernel = "cg"
	const np = 16

	fn, err := suite.Skeleton(kernel)
	if err != nil {
		log.Fatal(err)
	}

	table := &report.Table{
		Title:   fmt.Sprintf("NPB %s class B, np=%d", kernel, np),
		Headers: []string{"platform", "interconnect", "time (s)", "%comm", "speed vs dcc"},
	}
	times := map[string]float64{}
	profiles := map[string]float64{}
	for _, p := range platform.All() {
		out, err := core.Execute(core.RunSpec{Platform: p, NP: np}, func(c *mpi.Comm) error {
			return fn(c, npb.ClassB)
		})
		if err != nil {
			log.Fatal(err)
		}
		times[p.Name] = out.Time()
		profiles[p.Name] = out.Profile.CommPercent()
	}
	for _, p := range platform.All() {
		table.AddRow(p.Name, p.Inter.Name, times[p.Name], profiles[p.Name],
			times["dcc"]/times[p.Name])
	}
	fmt.Print(table.Render())

	fmt.Println("\nThe supercomputer's InfiniBand wins once communication matters;")
	fmt.Println("try np=1 to see the pure CPU-clock difference instead.")
}
