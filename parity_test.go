package repro

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/apps/metum"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/osu"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Oracle parity suite: the goroutine runtime is the correctness oracle
// for the PDES engine. Every workload family runs under three engine
// configurations — goroutine, PDES at the default worker count, and PDES
// serialised to one worker — and must produce bit-identical virtual
// results: rank clocks, IPM accounting, benchmark points, artefact
// bytes. Any divergence means the event engine changed what the
// simulation computes, not just how fast it computes it.

// engines lists the configurations every parity test sweeps.
var engines = []struct {
	name    string
	rt      mpi.Runtime
	workers int
}{
	{"goroutine", mpi.Goroutine, 0},
	{"pdes", mpi.PDES, 0},
	{"pdes-w1", mpi.PDES, 1},
}

// sameSeries fails the test unless a and b are bit-identical.
func sameSeries(t *testing.T, label string, a, b sim.Series) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: rank %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// sameOutcome fails the test unless both outcomes carry bit-identical
// virtual results and IPM profiles.
func sameOutcome(t *testing.T, label string, ref, got *core.Outcome) {
	t.Helper()
	if math.Float64bits(ref.Time()) != math.Float64bits(got.Time()) {
		t.Fatalf("%s: walltime %v vs %v", label, ref.Time(), got.Time())
	}
	sameSeries(t, label+": rank clocks", ref.Result.RankTimes, got.Result.RankTimes)
	sameSeries(t, label+": comm", ref.Result.CommTimes, got.Result.CommTimes)
	sameSeries(t, label+": compute", ref.Result.ComputeTimes, got.Result.ComputeTimes)
	sameSeries(t, label+": io", ref.Result.IOTimes, got.Result.IOTimes)
	sameSeries(t, label+": ipm wait", ref.Profile.Wait, got.Profile.Wait)
	sameSeries(t, label+": ipm queued", ref.Profile.Queued, got.Profile.Queued)
	if r, g := ref.Profile.String(), got.Profile.String(); r != g {
		t.Fatalf("%s: IPM profile rendering diverged:\n--- oracle ---\n%s\n--- got ---\n%s", label, r, g)
	}
}

// parityNPs returns the rank counts the suite cross-validates at. The
// race detector multiplies simulation cost; the instrumented run keeps
// the shape with the 64-rank point dropped.
func parityNPs() []int {
	if raceEnabled {
		return []int{4, 16}
	}
	return []int{4, 16, 64}
}

// TestParityNPBSkeletons cross-validates every NPB kernel skeleton.
func TestParityNPBSkeletons(t *testing.T) {
	class := npb.ClassA
	for _, kernel := range npb.Names() {
		fn, err := suite.Skeleton(kernel)
		if err != nil {
			t.Fatal(err)
		}
		for _, np := range parityNPs() {
			if !npb.ValidProcs(kernel, np) {
				continue
			}
			var ref *core.Outcome
			for _, eng := range engines {
				out, err := core.Execute(core.RunSpec{
					Platform: platform.Vayu(), NP: np,
					Runtime: eng.rt, EngineWorkers: eng.workers,
				}, func(c *mpi.Comm) error { return fn(c, class) })
				if err != nil {
					t.Fatalf("%s.%s.%d under %s: %v", kernel, class, np, eng.name, err)
				}
				if ref == nil {
					ref = out
					continue
				}
				sameOutcome(t, fmt.Sprintf("%s.%s.%d %s", kernel, class, np, eng.name), ref, out)
			}
		}
	}
}

// TestParityOSU cross-validates the OSU microbenchmark curves on all
// three platforms.
func TestParityOSU(t *testing.T) {
	sizes := []int{1, 4096, 1 << 16}
	for _, p := range platform.All() {
		for _, bench := range []string{"bw", "latency"} {
			var ref []osu.Point
			for _, eng := range engines {
				if eng.rt == mpi.PDES && eng.workers == 1 {
					continue // 2-rank worlds: pdes default already covers w=1 vs w=n
				}
				o := osu.Opts{Runtime: eng.rt}
				var pts []osu.Point
				var err error
				if bench == "bw" {
					pts, err = osu.BandwidthOpts(p, sizes, o)
				} else {
					pts, err = osu.LatencyOpts(p, sizes, o)
				}
				if err != nil {
					t.Fatalf("osu %s on %s under %s: %v", bench, p.Name, eng.name, err)
				}
				if ref == nil {
					ref = pts
					continue
				}
				for i := range ref {
					if math.Float64bits(ref[i].Value) != math.Float64bits(pts[i].Value) {
						t.Fatalf("osu %s on %s under %s at %d bytes: %v vs %v",
							bench, p.Name, eng.name, ref[i].Bytes, ref[i].Value, pts[i].Value)
					}
				}
			}
		}
	}
}

// TestParityMetUMResilient cross-validates the MetUM proxy under a
// firing fault plan with checkpoint/restart: the whole fault plane —
// kills, scoreboard aborts, incarnation worlds — must behave identically
// on both engines.
func TestParityMetUMResilient(t *testing.T) {
	np := 16
	plan, err := fault.Generate(fault.Spec{MTBF: 150, Horizon: 2000}, "ec2", "parity", np, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	var ref *core.Outcome
	for _, eng := range engines {
		out, err := core.Execute(core.RunSpec{
			Platform: platform.EC2(), NP: np,
			Runtime: eng.rt, EngineWorkers: eng.workers,
			Faults: plan, Resilient: true,
		}, metumSmokeJob())
		if err != nil {
			t.Fatalf("metum resilient under %s: %v", eng.name, err)
		}
		if out.Resilience == nil || out.Resilience.Restarts == 0 {
			t.Fatalf("metum resilient under %s: plan did not fire (stats %+v)", eng.name, out.Resilience)
		}
		if ref == nil {
			ref = out
			continue
		}
		sameOutcome(t, "metum resilient "+eng.name, ref, out)
		if fmt.Sprintf("%+v", ref.Resilience) != fmt.Sprintf("%+v", out.Resilience) {
			t.Fatalf("metum resilient %s: stats %+v vs %+v", eng.name, ref.Resilience, out.Resilience)
		}
	}
}

// TestParityFaultFailFast cross-validates the non-resilient fault path:
// a plan that kills a rank must fail the run with the same RankFailedError
// on both engines.
func TestParityFaultFailFast(t *testing.T) {
	np := 16
	fn, err := suite.Skeleton("cg")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Generate(fault.Spec{MTBF: 0.02, Horizon: 10}, "dcc", "parity-kill", np, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var ref *mpi.RankFailedError
	for _, eng := range engines {
		_, err := core.Execute(core.RunSpec{
			Platform: platform.DCC(), NP: np,
			Runtime: eng.rt, EngineWorkers: eng.workers, Faults: plan,
		}, func(c *mpi.Comm) error { return fn(c, npb.ClassA) })
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("under %s: want RankFailedError, got %v", eng.name, err)
		}
		if ref == nil {
			ref = rf
			continue
		}
		if ref.Rank != rf.Rank || ref.Node != rf.Node ||
			math.Float64bits(ref.At) != math.Float64bits(rf.At) {
			t.Fatalf("under %s: failure %+v vs oracle %+v", eng.name, rf, ref)
		}
	}
}

// TestParityArtefactBytes regenerates smoke-sweep artefacts under both
// engines and compares the generated bytes — the figure/table/manifest
// files users actually consume. pdes1 is included: at the smoke sweep its
// rank counts are small enough for the goroutine oracle to replay the
// PDES engine's own scaling artefact.
func TestParityArtefactBytes(t *testing.T) {
	ids := []string{"fig4", "table2", "pdes1", "fac1", "fac2"}
	if raceEnabled {
		ids = []string{"fig4", "pdes1", "fac1", "fac2"}
	}
	arts, err := experiments.Select(ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arts {
		var ref map[string][]byte
		for _, eng := range engines {
			x := &experiments.Ctx{Sweep: experiments.SweepSmoke, Runtime: eng.rt}
			files, err := a.Gen(x)
			if err != nil {
				t.Fatalf("artefact %s under %s: %v", a.ID, eng.name, err)
			}
			if ref == nil {
				ref = files
				continue
			}
			if len(files) != len(ref) {
				t.Fatalf("artefact %s under %s: %d files vs %d", a.ID, eng.name, len(files), len(ref))
			}
			for name, data := range files {
				if string(data) != string(ref[name]) {
					t.Fatalf("artefact %s under %s: %s diverged from the oracle's bytes",
						a.ID, eng.name, name)
				}
			}
		}
	}
}

// TestParityFacility cross-validates the batch facility's job-execution
// leg: broker calibration is built from real core.Execute reference runs,
// so the calibrated factors — and every facility decision downstream of
// them — must be bit-identical whichever engine performed those runs,
// and whichever scheduler implementation (incremental heap or sort-pass
// oracle) replays the calibrated schedule.
func TestParityFacility(t *testing.T) {
	jobs, err := facility.Generate(facility.WorkloadSpec{
		Seed: 7, Jobs: 120, Tenants: 15, Slots: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheds := []facility.SchedKind{facility.SchedHeap, facility.SchedSort}
	var refBroker *facility.Broker
	var refDigest string
	for _, eng := range engines {
		broker, err := facility.CalibrateBroker(facility.CalibrateOpts{
			Runtime: eng.rt, EngineWorkers: eng.workers,
		})
		if err != nil {
			t.Fatalf("calibration under %s: %v", eng.name, err)
		}
		for _, sched := range scheds {
			f, err := facility.New(facility.Config{
				Slots:     [facility.NumPools]int{64, 32, 32},
				Backfill:  true,
				Fairshare: true,
				Sched:     sched,
				Broker:    broker,
				Prices:    [facility.NumPools]float64{0, 0.34, 0.68},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(jobs)
			if err != nil {
				t.Fatalf("facility under %s/%s: %v", eng.name, sched, err)
			}
			digest := facility.Digest(res)
			if refDigest == "" {
				refBroker, refDigest = broker, digest
				continue
			}
			if digest != refDigest {
				t.Fatalf("facility digest under %s/%s diverged from the oracle's schedule",
					eng.name, sched)
			}
		}
		if refBroker != broker {
			for _, class := range facility.CalibratedClasses() {
				a, b := refBroker.Factors[class], broker.Factors[class]
				for p := range a {
					if math.Float64bits(a[p]) != math.Float64bits(b[p]) {
						t.Fatalf("class %s factor on %s under %s: %v vs oracle %v",
							class, facility.Pool(p), eng.name, b[p], a[p])
					}
				}
			}
		}
	}
}

// TestPDESDeadlockDiagnosis checks the engine's structural win over the
// oracle: a deadlocked world is detected the moment it quiesces — with
// the blocked ranks' wait predicates in the error — instead of timing
// out against the wall-clock watchdog.
func TestPDESDeadlockDiagnosis(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 4, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.RecvN(3, 99) // rank 3 never sends: deadlock once all others exit
		}
		return nil
	}, mpi.WithRuntime(mpi.PDES))
	if err == nil {
		t.Fatal("deadlocked world returned no error")
	}
	for _, want := range []string{"deadlock", "rank 0", "tag=99"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnosis %q missing %q", err, want)
		}
	}
}

// TestPDESClassB16kRanks is the scale acceptance check: the PDES engine
// completes a 16384-rank class-B EP skeleton world — beyond any stock
// platform's slot count — in ordinary test time. The instrumented run
// scales down but stays above the oracle's practical range.
func TestPDESClassB16kRanks(t *testing.T) {
	np := 16384
	if raceEnabled {
		np = 2048
	}
	fn, err := suite.Skeleton("ep")
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Scaled(platform.Vayu(), np)
	out, err := core.Execute(core.RunSpec{Platform: p, NP: np, Runtime: mpi.PDES},
		func(c *mpi.Comm) error { return fn(c, npb.ClassB) })
	if err != nil {
		t.Fatal(err)
	}
	if out.Time() <= 0 {
		t.Fatalf("walltime %v", out.Time())
	}
	if got := len(out.Result.RankTimes); got != np {
		t.Fatalf("ranks %d, want %d", got, np)
	}
}

// metumSmokeJob returns a short, checkpointing MetUM run suitable for
// repeated parity execution (the smoke-sweep configuration).
func metumSmokeJob() func(c *mpi.Comm) error {
	cfg := metum.Default()
	cfg.Steps = 6
	cfg.HaloSwapsPerStep = 20
	cfg.SolverItersPerStep = 15
	cfg.CheckpointEvery = 2
	return func(c *mpi.Comm) error {
		_, err := metum.Run(c, cfg)
		return err
	}
}
