# Stdlib-only Go module; every target uses only the toolchain.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build test race fmt vet fuzz bench bench-smoke verify results clean

all: build

build:
	$(GO) build ./...

# Formatting is enforced, not advisory: a nonempty gofmt -l fails the build.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short seeded-corpus fuzz passes over the fault plane and the spot-market
# simulator. Bounded by FUZZTIME so verify stays a fixed-cost gate; raise it
# (make fuzz FUZZTIME=5m) for a real fuzzing session.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzSpotRun -fuzztime $(FUZZTIME) ./internal/arrive

# Full microbenchmark run: measures the perfbench suite (ns/op, B/op,
# allocs/op), checks allocation budgets, and rewrites BENCH_PR3.json with
# the committed numbers as the before column.
bench: build
	$(GO) run ./cmd/bench -baseline BENCH_PR3.json -out BENCH_PR3.json

# Cheap regression gate: one AllocsPerRun pass per budgeted benchmark, no
# timing. Fails when the message plane regresses past a committed budget.
bench-smoke: build
	$(GO) run ./cmd/bench -smoke

# The full local gate: format, static checks, build, tests, race tests,
# a short fuzz pass, and the allocation-budget smoke. Mirrors what CI
# would run.
verify: fmt vet build test race fuzz bench-smoke
	@echo "verify: all gates passed"

# Regenerate the committed seed artefacts (full sweep, seed 0).
results: build
	$(GO) run ./cmd/repro -out results -j 4

clean:
	rm -rf results/.cache
