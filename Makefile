# Stdlib-only Go module; every target uses only the toolchain.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build test race fmt vet lint lint-bench lint-sarif fuzz bench bench-report bench-smoke obs-smoke pdes-smoke facility-smoke verify results clean

all: build

build:
	$(GO) build ./...

# Formatting is enforced, not advisory: a nonempty gofmt -l fails the build.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static-analysis gate: format, toolchain vet, a clean dependency surface
# (go.mod must stay tidy and verifiable in the hermetic build), and the
# reprolint suite (internal/analysis) proving the determinism, MPI-hygiene
# and metrics-stability invariants. Non-zero on any finding.
lint: fmt vet
	$(GO) mod tidy -diff
	$(GO) mod verify
	$(GO) run ./cmd/reprolint ./...

# Machine-readable lint log for code-scanning backends (CI uploads it).
lint-sarif: build
	$(GO) run ./cmd/reprolint -sarif ./... > reprolint.sarif

# The lint gate's own latency is a tracked performance surface: time one
# cold in-process reprolint sweep (load + type-check + facts + all
# analyzers) against the committed wall-clock budget and append a
# lint/reprolint-sweep point to the bench history.
lint-bench: build
	$(GO) run ./cmd/bench -lint-bench -history results/bench/history.jsonl

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short seeded-corpus fuzz passes over the fault plane and the spot-market
# simulator. Bounded by FUZZTIME so verify stays a fixed-cost gate; raise it
# (make fuzz FUZZTIME=5m) for a real fuzzing session.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzSpotRun -fuzztime $(FUZZTIME) ./internal/arrive
	$(GO) test -run '^$$' -fuzz FuzzEventQueue -fuzztime $(FUZZTIME) ./internal/pdes
	$(GO) test -run '^$$' -fuzz FuzzEngine -fuzztime $(FUZZTIME) ./internal/pdes
	$(GO) test -run '^$$' -fuzz FuzzWorkloadGen -fuzztime $(FUZZTIME) ./internal/facility
	$(GO) test -run '^$$' -fuzz FuzzFacility -fuzztime $(FUZZTIME) ./internal/facility
	$(GO) test -run '^$$' -fuzz FuzzParseSWF -fuzztime $(FUZZTIME) ./internal/facility

# Full microbenchmark run: measures the perfbench suite (ns/op, B/op,
# allocs/op), checks allocation and ns/op budgets, rewrites BENCH_PR3.json
# with the committed numbers as the before column, and appends a snapshot
# (with environment provenance) to the append-only bench history.
bench: build
	$(GO) run ./cmd/bench -baseline BENCH_PR3.json -out BENCH_PR3.json \
		-history results/bench/history.jsonl

# Trend report over the bench history: per-benchmark deltas vs the
# previous snapshot and the trailing-window baseline, with statistical
# verdicts (median + MAD). -fail-on-regression turns it into a gate; the
# detector only compares snapshots from the same environment fingerprint,
# so a fresh machine reads as "no-history", never a false regression.
bench-report: build
	$(GO) run ./cmd/bench -report -fail-on-regression \
		-history results/bench/history.jsonl

# Cheap regression gate: one AllocsPerRun pass per budgeted benchmark plus
# a timed ns/op pass per wall-time-budgeted benchmark. Fails when the
# message plane or the facility engine regresses past a committed budget.
bench-smoke: build
	$(GO) run ./cmd/bench -smoke

# Observability gate: run the smoke sweep cold at -j 1 and -j 8 with
# manifests on, validate every manifest (per-artefact and top-level)
# with cmd/inspect, and assert the two worker counts produced
# byte-identical artefacts AND metric snapshots — scheduling must not
# leak into the observability plane either.
obs-smoke: build
	@rm -rf .obs-smoke && mkdir -p .obs-smoke/j1 .obs-smoke/j8
	$(GO) run ./cmd/repro -sweep smoke -nocache -j 1 \
		-out .obs-smoke/j1 -manifest .obs-smoke/j1/run.manifest.json >/dev/null
	$(GO) run ./cmd/repro -sweep smoke -nocache -j 8 \
		-out .obs-smoke/j8 -manifest .obs-smoke/j8/run.manifest.json >/dev/null
	$(GO) run ./cmd/inspect manifest .obs-smoke/j1/*.manifest.json >/dev/null
	$(GO) run ./cmd/inspect manifest .obs-smoke/j8/*.manifest.json >/dev/null
	@for m in .obs-smoke/j1/*.manifest.json; do \
		case $$m in */run.manifest.json) continue;; esac; \
		cmp "$$m" ".obs-smoke/j8/$${m##*/}" \
			|| { echo "obs-smoke: $${m##*/} differs between -j 1 and -j 8"; exit 1; }; \
	done
	@for f in .obs-smoke/j1/*.csv .obs-smoke/j1/*.txt; do \
		[ -e "$$f" ] || continue; \
		cmp "$$f" ".obs-smoke/j8/$${f##*/}" \
			|| { echo "obs-smoke: $${f##*/} differs between -j 1 and -j 8"; exit 1; }; \
	done
	@rm -rf .obs-smoke
	@echo "obs-smoke: manifests valid and deterministic across -j 1 / -j 8"

# Runtime-parity gate: drive the npb CLI end-to-end under the race
# detector on both execution engines and require byte-identical stdout.
# The parity *test* suite already cross-validates the library layer; this
# gate covers the flag plumbing (cmd -> core -> mpi -> pdes) the tests
# cannot see.
pdes-smoke: build
	@g=$$($(GO) run -race ./cmd/npb -bench cg -class A -np 4,16 -runtime goroutine); \
	p=$$($(GO) run -race ./cmd/npb -bench cg -class A -np 4,16 -runtime pdes); \
	if [ "$$g" != "$$p" ]; then \
		echo "pdes-smoke: goroutine and pdes outputs differ:"; \
		echo "--- goroutine ---"; echo "$$g"; \
		echo "--- pdes ---"; echo "$$p"; exit 1; \
	fi
	@echo "pdes-smoke: cli output identical across runtimes (race-clean)"

# Batch-facility gate: a small seeded facility run (broker + spot, all
# scheduler features on) executed twice; the runs must print byte-identical
# reports — the digest line pins every outcome — and the manifest must
# validate. Covers the cmd/facility flag plumbing the package tests
# cannot see.
facility-smoke: build
	@rm -rf .facility-smoke && mkdir -p .facility-smoke
	@a=$$($(GO) run ./cmd/facility -jobs 400 -tenants 40 -slots 64 -broker -spot \
		-manifest .facility-smoke/a.manifest.json); \
	b=$$($(GO) run ./cmd/facility -jobs 400 -tenants 40 -slots 64 -broker -spot \
		-manifest .facility-smoke/b.manifest.json); \
	if [ "$$a" != "$$b" ]; then \
		echo "facility-smoke: two identical runs produced different reports:"; \
		echo "--- run a ---"; echo "$$a"; \
		echo "--- run b ---"; echo "$$b"; exit 1; \
	fi
	$(GO) run ./cmd/inspect manifest .facility-smoke/a.manifest.json >/dev/null
	@rm -rf .facility-smoke
	@echo "facility-smoke: run report deterministic and manifest valid"

# The full local gate: static analysis (format, vet, reprolint), build,
# tests, race tests, a short fuzz pass, the allocation/ns-budget smoke,
# the bench-history trend gate, the lint-latency budget, the
# observability smoke, the runtime-parity smoke and the batch-facility
# smoke. Mirrors what CI runs (.github/workflows/ci.yml). lint-bench
# runs after bench-report so the trend gate judges the committed
# history, not the point lint-bench just appended.
verify: lint build test race fuzz bench-smoke bench-report lint-bench obs-smoke pdes-smoke facility-smoke
	@echo "verify: all gates passed"

# Regenerate the committed seed artefacts (full sweep, seed 0).
results: build
	$(GO) run ./cmd/repro -out results -j 4

clean:
	rm -rf results/.cache .obs-smoke
