# Stdlib-only Go module; every target uses only the toolchain.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build test race fmt vet fuzz verify results clean

all: build

build:
	$(GO) build ./...

# Formatting is enforced, not advisory: a nonempty gofmt -l fails the build.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short seeded-corpus fuzz passes over the fault plane and the spot-market
# simulator. Bounded by FUZZTIME so verify stays a fixed-cost gate; raise it
# (make fuzz FUZZTIME=5m) for a real fuzzing session.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFaultPlan -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzSpotRun -fuzztime $(FUZZTIME) ./internal/arrive

# The full local gate: format, static checks, build, tests, race tests,
# and a short fuzz pass. Mirrors what CI would run.
verify: fmt vet build test race fuzz
	@echo "verify: all gates passed"

# Regenerate the committed seed artefacts (full sweep, seed 0).
results: build
	$(GO) run ./cmd/repro -out results -j 4

clean:
	rm -rf results/.cache
