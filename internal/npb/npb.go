// Package npb implements the NAS Parallel Benchmarks (NPB 3.3 MPI suite)
// for the mpi runtime, as used in Figures 3–4 and Table II of the paper.
//
// Five kernels (EP, CG, FT, IS, MG) have full-math implementations whose
// numerics are verified in tests; all eight (including the LU, BT and SP
// pseudo-applications) have pattern-faithful skeletons that replay the
// class-B communication structure with phantom messages and charge
// calibrated computational work — the form used to regenerate the paper's
// class-B results at up to 64 ranks.
package npb

import (
	"fmt"
	"sort"
)

// Class is an NPB problem class.
type Class byte

// Problem classes. S and W are the test classes; the paper's evaluation
// uses class B throughout.
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// String implements fmt.Stringer.
func (c Class) String() string { return string(c) }

// ParseClass converts a one-letter class name.
func ParseClass(s string) (Class, error) {
	if len(s) == 1 {
		switch Class(s[0]) {
		case ClassS, ClassW, ClassA, ClassB, ClassC:
			return Class(s[0]), nil
		}
	}
	return 0, fmt.Errorf("npb: unknown class %q (want S, W, A, B or C)", s)
}

// Classes lists all classes smallest first.
func Classes() []Class { return []Class{ClassS, ClassW, ClassA, ClassB, ClassC} }

// Names lists the eight benchmarks in the paper's Figure 3/4 order.
func Names() []string { return []string{"bt", "ep", "cg", "ft", "is", "lu", "mg", "sp"} }

// ValidProcs reports whether a kernel accepts np processes, mirroring the
// NPB rules: BT and SP need square counts; CG, FT, IS, LU and MG need
// powers of two; EP accepts anything.
func ValidProcs(name string, np int) bool {
	if np < 1 {
		return false
	}
	switch name {
	case "ep":
		return true
	case "bt", "sp":
		for k := 1; k*k <= np; k++ {
			if k*k == np {
				return true
			}
		}
		return false
	case "cg", "ft", "is", "lu", "mg":
		return np&(np-1) == 0
	}
	return false
}

// ProcCounts returns the paper's Figure 4 x-axis for a kernel, capped at
// max: 1,2,4,...,64 for power-of-two kernels and 1,4,9,16,25,36,49,64 for
// BT/SP (the paper plots BT.B.36 and SP.B.36).
func ProcCounts(name string, max int) []int {
	var out []int
	switch name {
	case "bt", "sp":
		for k := 1; k*k <= max; k++ {
			out = append(out, k*k)
		}
	default:
		for np := 1; np <= max; np <<= 1 {
			out = append(out, np)
		}
	}
	sort.Ints(out)
	return out
}
