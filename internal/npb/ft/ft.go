// Package ft implements the NPB FT kernel: the solution of a 3D diffusion
// equation by forward/inverse complex FFTs, with a slab (1D) domain
// decomposition whose global transposition is a single MPI_Alltoall per
// inverse transform — the collective whose shrinking per-pair block size
// the paper uses to explain FT's behaviour on the virtualised clusters.
//
// The grid is initialised with the exact NPB random stream (one jump-ahead
// per z-plane), evolved in spectral space with the diffusion factors and
// inverse-transformed each iteration; checksums over the canonical 1024
// sample points verify np-invariance.
package ft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/mpi"
	"repro/internal/npb"
)

const alpha = 1e-6 // NPB diffusion coefficient

// Result holds kernel outputs.
type Result struct {
	Class     npb.Class
	Checksums []complex128 // one per iteration
	Verified  bool
	VerifyMsg string
	Time      float64
}

// fft1d performs an in-place radix-2 complex FFT of a (power-of-two length)
// slice; sign is -1 for forward, +1 for inverse (unnormalised).
func fft1d(a []complex128, sign float64) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("ft: FFT length %d not a power of two", n))
	}
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := a[i+k]
				v := a[i+k+length/2] * w
				a[i+k] = u + v
				a[i+k+length/2] = u - v
				w *= wl
			}
		}
	}
}

// grid is one rank's slab state.
type grid struct {
	p      npb.FTParams
	np     int
	rank   int
	zLo    int // first owned z-plane (slab layout)
	zCnt   int
	yLo    int // first owned y-row (transposed layout)
	yCnt   int
	slab   []complex128 // [zCnt][ny][nx]
	trans  []complex128 // [yCnt][nz][nx]
	sendBf []complex128
	recvBf []complex128
	line   []complex128
}

func newGrid(p npb.FTParams, np, rank int) (*grid, error) {
	if p.NZ%np != 0 || p.NY%np != 0 {
		return nil, fmt.Errorf("ft: np=%d must divide ny=%d and nz=%d", np, p.NY, p.NZ)
	}
	g := &grid{p: p, np: np, rank: rank}
	g.zCnt = p.NZ / np
	g.zLo = rank * g.zCnt
	g.yCnt = p.NY / np
	g.yLo = rank * g.yCnt
	g.slab = make([]complex128, g.zCnt*p.NY*p.NX)
	g.trans = make([]complex128, g.yCnt*p.NZ*p.NX)
	g.sendBf = make([]complex128, g.zCnt*p.NY*p.NX)
	g.recvBf = make([]complex128, g.zCnt*p.NY*p.NX)
	n := p.NX
	if p.NY > n {
		n = p.NY
	}
	if p.NZ > n {
		n = p.NZ
	}
	g.line = make([]complex128, n)
	return g, nil
}

func (g *grid) slabAt(z, y, x int) int  { return (z*g.p.NY+y)*g.p.NX + x }
func (g *grid) transAt(y, z, x int) int { return (y*g.p.NZ+z)*g.p.NX + x }

// initialise fills the slab with the NPB random stream: the global array
// is defined plane-by-plane from seed 314159265, each (x,y) plane
// consuming 2*nx*ny variates, so any decomposition produces identical
// global data.
func (g *grid) initialise() {
	base := npb.NewLCG(314159265)
	vals := make([]float64, 2*g.p.NX*g.p.NY)
	for zl := 0; zl < g.zCnt; zl++ {
		z := g.zLo + zl
		stream := base.Jump(uint64(z) * uint64(2*g.p.NX*g.p.NY))
		stream.Fill(vals)
		for y := 0; y < g.p.NY; y++ {
			for x := 0; x < g.p.NX; x++ {
				k := 2 * (y*g.p.NX + x)
				g.slab[g.slabAt(zl, y, x)] = complex(vals[k], vals[k+1])
			}
		}
	}
}

// fftXY runs 1D FFTs along x then y for every local z-plane of the slab.
func (g *grid) fftXY(sign float64) {
	nx, ny := g.p.NX, g.p.NY
	for z := 0; z < g.zCnt; z++ {
		for y := 0; y < ny; y++ {
			row := g.slab[g.slabAt(z, y, 0) : g.slabAt(z, y, 0)+nx]
			fft1d(row, sign)
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				g.line[y] = g.slab[g.slabAt(z, y, x)]
			}
			fft1d(g.line[:ny], sign)
			for y := 0; y < ny; y++ {
				g.slab[g.slabAt(z, y, x)] = g.line[y]
			}
		}
	}
}

// fftZ runs 1D FFTs along z in the transposed layout.
func (g *grid) fftZ(sign float64) {
	nx, nz := g.p.NX, g.p.NZ
	for y := 0; y < g.yCnt; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				g.line[z] = g.trans[g.transAt(y, z, x)]
			}
			fft1d(g.line[:nz], sign)
			for z := 0; z < nz; z++ {
				g.trans[g.transAt(y, z, x)] = g.line[z]
			}
		}
	}
}

// toTransposed redistributes slab -> transposed via alltoall: rank r
// receives the y-rows in its range for every z-plane.
func (g *grid) toTransposed(c *mpi.Comm) {
	nx := g.p.NX
	blk := g.zCnt * g.yCnt * nx // per-destination block
	for dst := 0; dst < g.np; dst++ {
		off := dst * blk
		for z := 0; z < g.zCnt; z++ {
			for y := 0; y < g.yCnt; y++ {
				copy(g.sendBf[off:off+nx], g.slab[g.slabAt(z, dst*g.yCnt+y, 0):g.slabAt(z, dst*g.yCnt+y, 0)+nx])
				off += nx
			}
		}
	}
	c.AlltoallComplex(g.sendBf, g.recvBf)
	for src := 0; src < g.np; src++ {
		off := src * blk
		for z := 0; z < g.zCnt; z++ {
			for y := 0; y < g.yCnt; y++ {
				copy(g.trans[g.transAt(y, src*g.zCnt+z, 0):g.transAt(y, src*g.zCnt+z, 0)+nx], g.recvBf[off:off+nx])
				off += nx
			}
		}
	}
}

// toSlab is the inverse redistribution.
func (g *grid) toSlab(c *mpi.Comm) {
	nx := g.p.NX
	blk := g.zCnt * g.yCnt * nx
	for dst := 0; dst < g.np; dst++ {
		off := dst * blk
		for y := 0; y < g.yCnt; y++ {
			for z := 0; z < g.zCnt; z++ {
				copy(g.sendBf[off:off+nx], g.trans[g.transAt(y, dst*g.zCnt+z, 0):g.transAt(y, dst*g.zCnt+z, 0)+nx])
				off += nx
			}
		}
	}
	c.AlltoallComplex(g.sendBf, g.recvBf)
	for src := 0; src < g.np; src++ {
		off := src * blk
		for y := 0; y < g.yCnt; y++ {
			for z := 0; z < g.zCnt; z++ {
				copy(g.slab[g.slabAt(z, src*g.yCnt+y, 0):g.slabAt(z, src*g.yCnt+y, 0)+nx], g.recvBf[off:off+nx])
				off += nx
			}
		}
	}
}

// waveNumber maps an FFT index to its signed wavenumber.
func waveNumber(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// Run executes the FT benchmark. Every rank returns the same result.
func Run(c *mpi.Comm, class npb.Class) (*Result, error) {
	np := c.Size()
	if !npb.ValidProcs("ft", np) {
		return nil, fmt.Errorf("ft: %d processes (want a power of two)", np)
	}
	p := npb.FTParamsFor(class)
	g, err := newGrid(p, np, c.Rank())
	if err != nil {
		return nil, err
	}
	total, err := npb.TotalWork("ft", class)
	if err != nil {
		return nil, err
	}
	// One forward transform plus one inverse per iteration.
	perTransform := total.Scale(1 / float64(np) / float64(p.Niter+1))

	g.initialise()

	// Forward 3D FFT of u0: xy in slab form, transpose, z.
	g.fftXY(-1)
	g.toTransposed(c)
	g.fftZ(-1)
	c.Compute(perTransform)

	// Spectrum stays in g.trans; keep a copy as u1.
	u1 := append([]complex128(nil), g.trans...)

	// Precompute per-point decay exponents for the owned spectral block.
	expo := make([]float64, len(u1))
	for y := 0; y < g.yCnt; y++ {
		ky := waveNumber(g.yLo+y, p.NY)
		for z := 0; z < p.NZ; z++ {
			kz := waveNumber(z, p.NZ)
			for x := 0; x < p.NX; x++ {
				kx := waveNumber(x, p.NX)
				k2 := float64(kx*kx + ky*ky + kz*kz)
				expo[g.transAt(y, z, x)] = -4 * alpha * math.Pi * math.Pi * k2
			}
		}
	}

	res := &Result{Class: class}
	ntotal := float64(p.Total())
	for iter := 1; iter <= p.Niter; iter++ {
		// Evolve the spectrum to time t=iter and inverse transform.
		t := float64(iter)
		for i := range u1 {
			g.trans[i] = u1[i] * complex(math.Exp(expo[i]*t), 0)
		}
		g.fftZ(1)
		g.toSlab(c)
		g.fftXY(1)
		c.Compute(perTransform)

		// Checksum over the canonical 1024 points of the normalised field.
		var sum complex128
		for j := 1; j <= 1024; j++ {
			q := j % p.NX
			r := (3 * j) % p.NY
			s := (5 * j) % p.NZ
			if s >= g.zLo && s < g.zLo+g.zCnt {
				sum += g.slab[g.slabAt(s-g.zLo, r, q)]
			}
		}
		sum /= complex(ntotal, 0)
		parts := []float64{real(sum), imag(sum)}
		c.Allreduce(mpi.Sum, parts)
		res.Checksums = append(res.Checksums, complex(parts[0], parts[1]))
	}
	res.Time = c.Clock()

	refMu.RLock()
	refs, ok := checksumReference[class]
	refMu.RUnlock()
	if ok {
		res.Verified = true
		res.VerifyMsg = "VERIFICATION SUCCESSFUL"
		for i, want := range refs {
			if i >= len(res.Checksums) {
				break
			}
			if cmplx.Abs(res.Checksums[i]-want)/cmplx.Abs(want) > 1e-9 {
				res.Verified = false
				res.VerifyMsg = fmt.Sprintf("verification failed at iteration %d: %v, want %v",
					i+1, res.Checksums[i], want)
				break
			}
		}
	} else {
		res.VerifyMsg = "no reference checksums for class"
	}
	return res, nil
}

// checksumReference holds self-generated golden checksums (see package
// comment in cg for why the official NPB values do not apply to our
// substituted initialisation path: the spectral evolution here follows the
// plain diffusion factors rather than ft.f's index-shifted variant).
// refMu guards the map: goldens may be registered while concurrent
// simulations verify against them.
var (
	refMu             sync.RWMutex
	checksumReference = map[npb.Class][]complex128{}
)

// SetReference records golden checksums for a class.
func SetReference(class npb.Class, sums []complex128) {
	refMu.Lock()
	checksumReference[class] = append([]complex128(nil), sums...)
	refMu.Unlock()
}

// Skeleton replays FT's communication pattern: one alltoall per transform
// whose per-pair block is 16*ntotal/np^2 bytes, plus the checksum
// all-reduce, with calibrated per-transform work.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	if !npb.ValidProcs("ft", np) {
		return fmt.Errorf("ft: %d processes (want a power of two)", np)
	}
	p := npb.FTParamsFor(class)
	total, err := npb.TotalWork("ft", class)
	if err != nil {
		return err
	}
	perTransform := total.Scale(1 / float64(np) / float64(p.Niter+1))
	blockBytes := 16 * p.Total() / (np * np)

	c.Compute(perTransform)
	if np > 1 {
		c.AlltoallN(blockBytes)
	}
	for iter := 0; iter < p.Niter; iter++ {
		c.Compute(perTransform)
		if np > 1 {
			c.AlltoallN(blockBytes)
		}
		c.AllreduceN(16)
	}
	return nil
}
