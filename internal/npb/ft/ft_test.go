package ft

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func TestFFT1DKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is all ones; of [1,1,1,1] is [4,0,0,0].
	a := []complex128{1, 0, 0, 0}
	fft1d(a, -1)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta FFT[%d] = %v", i, v)
		}
	}
	b := []complex128{1, 1, 1, 1}
	fft1d(b, -1)
	if cmplx.Abs(b[0]-4) > 1e-12 || cmplx.Abs(b[1]) > 1e-12 {
		t.Fatalf("const FFT = %v", b)
	}
}

func TestFFT1DRoundtrip(t *testing.T) {
	g := npb.NewLCG(7)
	a := make([]complex128, 64)
	orig := make([]complex128, 64)
	for i := range a {
		a[i] = complex(g.Next(), g.Next())
		orig[i] = a[i]
	}
	fft1d(a, -1)
	fft1d(a, 1)
	for i := range a {
		if cmplx.Abs(a[i]/complex(64, 0)-orig[i]) > 1e-12 {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestFFT1DParseval(t *testing.T) {
	g := npb.NewLCG(9)
	n := 128
	a := make([]complex128, n)
	var sumT float64
	for i := range a {
		a[i] = complex(g.Next()-0.5, g.Next()-0.5)
		sumT += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	fft1d(a, -1)
	var sumF float64
	for _, v := range a {
		sumF += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(sumF/float64(n)-sumT) > 1e-9*sumT {
		t.Fatalf("Parseval violated: %v vs %v", sumF/float64(n), sumT)
	}
}

func runFT(t *testing.T, np int, class npb.Class) *Result {
	t.Helper()
	var out *Result
	_, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
		r, err := Run(c, class)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSerialChecksumsFinite(t *testing.T) {
	r := runFT(t, 1, npb.ClassS)
	if len(r.Checksums) != npb.FTParamsFor(npb.ClassS).Niter {
		t.Fatalf("got %d checksums", len(r.Checksums))
	}
	for i, cs := range r.Checksums {
		if cmplx.IsNaN(cs) || cmplx.IsInf(cs) || cmplx.Abs(cs) == 0 {
			t.Fatalf("checksum %d = %v", i, cs)
		}
	}
	// Diffusion decays the field: checksum magnitudes must not grow
	// unboundedly; successive sums stay the same order of magnitude.
	for i := 1; i < len(r.Checksums); i++ {
		ratio := cmplx.Abs(r.Checksums[i]) / cmplx.Abs(r.Checksums[i-1])
		if ratio > 2 || ratio < 0.2 {
			t.Fatalf("checksum jumped by %vx between iterations %d and %d", ratio, i, i+1)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial := runFT(t, 1, npb.ClassS)
	for _, np := range []int{2, 4, 8} {
		par := runFT(t, np, npb.ClassS)
		for i := range serial.Checksums {
			diff := cmplx.Abs(par.Checksums[i] - serial.Checksums[i])
			if diff > 1e-9*cmplx.Abs(serial.Checksums[i]) {
				t.Fatalf("np=%d iteration %d: %v != %v", np, i+1, par.Checksums[i], serial.Checksums[i])
			}
		}
	}
}

func TestGoldenVerification(t *testing.T) {
	serial := runFT(t, 1, npb.ClassS)
	SetReference(npb.ClassS, serial.Checksums)
	again := runFT(t, 4, npb.ClassS)
	if !again.Verified {
		t.Fatalf("golden verification failed: %s", again.VerifyMsg)
	}
	bad := append([]complex128(nil), serial.Checksums...)
	bad[0] *= 1.01
	SetReference(npb.ClassS, bad)
	if r := runFT(t, 2, npb.ClassS); r.Verified {
		t.Fatal("corrupted golden should fail")
	}
	delete(checksumReference, npb.ClassS)
}

func TestInvalidProcessCounts(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 3, func(c *mpi.Comm) error {
		_, err := Run(c, npb.ClassS)
		return err
	})
	if err == nil {
		t.Fatal("np=3 should be rejected")
	}
}

func TestSkeletonCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 280 || res.Time > 380 {
		t.Fatalf("FT.B.1 on DCC = %.1f s, want ~327.6", res.Time)
	}
}

func TestSkeletonVayuScalesWell(t *testing.T) {
	st := func(p *platform.Platform, np int) float64 {
		res, err := mpi.RunOn(p, np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	// Paper: "For the FT benchmark we see Vayu scaling almost linearly,
	// whereas DCC and EC2 do not scale as well."
	vSpeed := st(platform.Vayu(), 1) / st(platform.Vayu(), 64)
	dSpeed := st(platform.DCC(), 1) / st(platform.DCC(), 64)
	if vSpeed < 40 {
		t.Fatalf("Vayu FT speedup at 64 = %.1f, want near-linear", vSpeed)
	}
	if dSpeed >= vSpeed {
		t.Fatalf("DCC FT speedup %.1f should trail Vayu %.1f", dSpeed, vSpeed)
	}
}
