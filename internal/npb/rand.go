package npb

// The NPB pseudo-random number generator: the linear congruential scheme
// x_{k+1} = a * x_k (mod 2^46) with a = 5^13, returning x_k * 2^-46 in
// (0, 1). This is the exact generator of the reference Fortran suite
// (randlc/vranlc), including the power-method jump-ahead used by EP and IS
// to give each process an independent subsequence.

const (
	// LCGMultiplier is the NPB a = 5^13.
	LCGMultiplier = 1220703125
	// EPSeed is the EP/IS benchmark seed (271828183, from e).
	EPSeed = 271828183
	lcgMod = uint64(1) << 46
	lcgMsk = lcgMod - 1
	r46    = 1.0 / (1 << 23) / (1 << 23) // 2^-46
)

// LCG is the NPB random stream. The zero value is invalid; use NewLCG.
type LCG struct {
	x uint64 // current 46-bit state
	a uint64 // multiplier
}

// NewLCG returns a stream seeded with seed and the standard multiplier.
func NewLCG(seed uint64) *LCG {
	return &LCG{x: seed & lcgMsk, a: LCGMultiplier}
}

// Next returns the next variate in (0,1) — randlc.
func (g *LCG) Next() float64 {
	g.x = (g.a * g.x) & lcgMsk
	return float64(g.x) * r46
}

// Fill fills dst with consecutive variates — vranlc.
func (g *LCG) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// Seed returns the current 46-bit state.
func (g *LCG) Seed() uint64 { return g.x }

// PowMul returns a^n mod 2^46 for the standard multiplier — the jump-ahead
// factor that advances a stream by n steps when multiplied into the state.
func PowMul(n uint64) uint64 {
	result := uint64(1)
	base := uint64(LCGMultiplier)
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			result = (result * base) & lcgMsk
		}
		base = (base * base) & lcgMsk
	}
	return result
}

// Jump returns a new stream advanced n steps past g without disturbing g.
func (g *LCG) Jump(n uint64) *LCG {
	return &LCG{x: (PowMul(n) * g.x) & lcgMsk, a: g.a}
}
