package npb

import (
	"fmt"

	"repro/internal/cpumodel"
)

// Calibration. The skeletons charge per-rank computational work derived
// from the class-B serial walltimes the paper measured on DCC (the table
// in Figure 3): BT 1696.9 s, EP 141.5 s, CG 244.9 s, FT 327.6 s, IS 8.6 s,
// LU 1514.7 s, MG 72.0 s, SP 1936.1 s. On the DCC model a single rank
// sustains ~0.9988 Gflop/s and ~6.4 GB/s, so each kernel's class-B work is
// the measured time converted through whichever resource dominates it:
// EP/FT/LU/BT/SP are flop-dominated, CG/MG/IS memory-dominated (which is
// what exposes CG to the NUMA-masking penalty at 8 ranks per node, as the
// paper observed).
const (
	dccOverhead = 1.06                            // DCC virtualisation compute tax
	dccFlopRate = 2.27e9 * 4 * 0.11 / dccOverhead // DCC effective flop rate, flops/s
	dccMemRate  = 6.4e9 / dccOverhead             // DCC single-rank memory rate, B/s
)

// classBWork holds the calibrated class-B totals.
var classBWork = map[string]cpumodel.Work{
	"ep": {Flops: 141.5 * dccFlopRate, Bytes: 1e10},
	"cg": {Flops: 5.0e10, Bytes: 244.9 * dccMemRate},
	"ft": {Flops: 327.6 * dccFlopRate, Bytes: 1.0e12},
	"is": {Flops: 1e9, Bytes: 8.6 * dccMemRate},
	"mg": {Flops: 3.0e10, Bytes: 72.0 * dccMemRate},
	"lu": {Flops: 1514.7 * dccFlopRate, Bytes: 3.0e12},
	"bt": {Flops: 1696.9 * dccFlopRate, Bytes: 3.5e12},
	"sp": {Flops: 1936.1 * dccFlopRate, Bytes: 4.0e12},
}

// classScale gives each class's work relative to class B, from the NPB
// problem-size and iteration-count ratios.
var classScale = map[string]map[Class]float64{
	"ep": {ClassS: 1.0 / 64, ClassW: 1.0 / 32, ClassA: 0.25, ClassB: 1, ClassC: 4},
	"cg": {ClassS: 0.0020, ClassW: 0.0115, ClassA: 0.0316, ClassB: 1, ClassC: 2.31},
	"ft": {ClassS: 0.0017, ClassW: 0.0036, ClassA: 0.069, ClassB: 1, ClassC: 4.32},
	"is": {ClassS: 1.0 / 512, ClassW: 1.0 / 32, ClassA: 0.25, ClassB: 1, ClassC: 4},
	"mg": {ClassS: 3.9e-4, ClassW: 0.025, ClassA: 0.2, ClassB: 1, ClassC: 8},
	"lu": {ClassS: 3.3e-4, ClassW: 0.0412, ClassA: 0.247, ClassB: 1, ClassC: 4},
	"bt": {ClassS: 4.9e-4, ClassW: 0.013, ClassA: 0.247, ClassB: 1, ClassC: 4},
	"sp": {ClassS: 4.1e-4, ClassW: 0.0445, ClassA: 0.247, ClassB: 1, ClassC: 4},
}

// TotalWork returns the calibrated whole-job computational work for a
// kernel at a class.
func TotalWork(name string, class Class) (cpumodel.Work, error) {
	base, ok := classBWork[name]
	if !ok {
		return cpumodel.Work{}, fmt.Errorf("npb: unknown kernel %q", name)
	}
	scale, ok := classScale[name][class]
	if !ok {
		return cpumodel.Work{}, fmt.Errorf("npb: kernel %s has no class %s", name, class)
	}
	return base.Scale(scale), nil
}

// Problem geometry per class, used by the skeletons to size messages.

// CGParams holds the CG problem description.
type CGParams struct {
	NA     int // matrix order
	Nonzer int // nonzeros per row parameter
	Niter  int // outer iterations
	Shift  float64
}

// CGParamsFor returns the NPB CG parameters for a class.
func CGParamsFor(class Class) CGParams {
	switch class {
	case ClassS:
		return CGParams{NA: 1400, Nonzer: 7, Niter: 15, Shift: 10}
	case ClassW:
		return CGParams{NA: 7000, Nonzer: 8, Niter: 15, Shift: 12}
	case ClassA:
		return CGParams{NA: 14000, Nonzer: 11, Niter: 15, Shift: 20}
	case ClassB:
		return CGParams{NA: 75000, Nonzer: 13, Niter: 75, Shift: 60}
	default: // C
		return CGParams{NA: 150000, Nonzer: 15, Niter: 75, Shift: 110}
	}
}

// FTParams holds the FT grid and iteration count.
type FTParams struct {
	NX, NY, NZ int
	Niter      int
}

// Total returns the number of grid points.
func (p FTParams) Total() int { return p.NX * p.NY * p.NZ }

// FTParamsFor returns the NPB FT parameters for a class.
func FTParamsFor(class Class) FTParams {
	switch class {
	case ClassS:
		return FTParams{64, 64, 64, 6}
	case ClassW:
		return FTParams{128, 128, 32, 6}
	case ClassA:
		return FTParams{256, 256, 128, 6}
	case ClassB:
		return FTParams{512, 256, 256, 20}
	default:
		return FTParams{512, 512, 512, 20}
	}
}

// ISParams holds the IS key count and range.
type ISParams struct {
	TotalKeys int
	MaxKey    int
	Buckets   int
	Niter     int
}

// ISParamsFor returns the NPB IS parameters for a class.
func ISParamsFor(class Class) ISParams {
	switch class {
	case ClassS:
		return ISParams{1 << 16, 1 << 11, 1 << 10, 10}
	case ClassW:
		return ISParams{1 << 20, 1 << 16, 1 << 10, 10}
	case ClassA:
		return ISParams{1 << 23, 1 << 19, 1 << 10, 10}
	case ClassB:
		return ISParams{1 << 25, 1 << 21, 1 << 10, 10}
	default:
		return ISParams{1 << 27, 1 << 23, 1 << 10, 10}
	}
}

// GridParams describes the cubic-grid kernels (MG, LU, BT, SP).
type GridParams struct {
	N     int // grid edge (cells per dimension)
	Niter int
}

// MGParamsFor returns the NPB MG parameters for a class.
func MGParamsFor(class Class) GridParams {
	switch class {
	case ClassS:
		return GridParams{32, 4}
	case ClassW:
		return GridParams{128, 4}
	case ClassA:
		return GridParams{256, 4}
	case ClassB:
		return GridParams{256, 20}
	default:
		return GridParams{512, 20}
	}
}

// LUParamsFor returns the NPB LU parameters for a class.
func LUParamsFor(class Class) GridParams {
	switch class {
	case ClassS:
		return GridParams{12, 50}
	case ClassW:
		return GridParams{33, 300}
	case ClassA:
		return GridParams{64, 250}
	case ClassB:
		return GridParams{102, 250}
	default:
		return GridParams{162, 250}
	}
}

// BTParamsFor returns the NPB BT parameters for a class.
func BTParamsFor(class Class) GridParams {
	switch class {
	case ClassS:
		return GridParams{12, 60}
	case ClassW:
		return GridParams{24, 200}
	case ClassA:
		return GridParams{64, 200}
	case ClassB:
		return GridParams{102, 200}
	default:
		return GridParams{162, 200}
	}
}

// SPParamsFor returns the NPB SP parameters for a class.
func SPParamsFor(class Class) GridParams {
	switch class {
	case ClassS:
		return GridParams{12, 100}
	case ClassW:
		return GridParams{36, 400}
	case ClassA:
		return GridParams{64, 400}
	case ClassB:
		return GridParams{102, 400}
	default:
		return GridParams{162, 400}
	}
}

// EPParamsFor returns log2 of the EP pair count for a class.
func EPParamsFor(class Class) int {
	switch class {
	case ClassS:
		return 24
	case ClassW:
		return 25
	case ClassA:
		return 28
	case ClassB:
		return 30
	default:
		return 32
	}
}
