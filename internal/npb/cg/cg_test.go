package cg

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func runCG(t *testing.T, np int, class npb.Class) *Result {
	t.Helper()
	var out *Result
	_, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
		r, err := Run(c, class)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSerialConverges(t *testing.T) {
	r := runCG(t, 1, npb.ClassS)
	if math.IsNaN(r.Zeta) || math.IsInf(r.Zeta, 0) {
		t.Fatalf("zeta = %v", r.Zeta)
	}
	// zeta = shift + 1/(x.z): the power iteration drives x to the
	// smallest eigenvector of A, whose eigenvalue is ~shift+1 for our
	// diagonally dominant matrix, so zeta converges near 2*shift+1.
	p := npb.CGParamsFor(npb.ClassS)
	if r.Zeta < 2*p.Shift || r.Zeta > 2*p.Shift+2 {
		t.Fatalf("zeta = %v, want in [%v, %v]", r.Zeta, 2*p.Shift, 2*p.Shift+2)
	}
	// CG on an SPD system must have reduced the residual well below the
	// initial norm sqrt(na).
	if r.RNorm > math.Sqrt(float64(p.NA))*1e-6 {
		t.Fatalf("residual norm %v too large — CG not converging", r.RNorm)
	}
}

func TestParallelMatchesSerialZeta(t *testing.T) {
	serial := runCG(t, 1, npb.ClassS)
	for _, np := range []int{2, 4, 8} {
		par := runCG(t, np, npb.ClassS)
		if math.Abs(par.Zeta-serial.Zeta) > 1e-9*math.Abs(serial.Zeta) {
			t.Fatalf("np=%d: zeta %v != serial %v", np, par.Zeta, serial.Zeta)
		}
	}
}

func TestGoldenVerification(t *testing.T) {
	serial := runCG(t, 1, npb.ClassS)
	SetReference(npb.ClassS, serial.Zeta)
	again := runCG(t, 4, npb.ClassS)
	if !again.Verified {
		t.Fatalf("golden verification failed: %s", again.VerifyMsg)
	}
	SetReference(npb.ClassS, serial.Zeta*1.001)
	bad := runCG(t, 2, npb.ClassS)
	if bad.Verified {
		t.Fatal("corrupted golden should fail verification")
	}
	delete(zetaReference, npb.ClassS)
}

func TestRejectsNonPowerOfTwo(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 3, func(c *mpi.Comm) error {
		_, err := Run(c, npb.ClassS)
		return err
	})
	if err == nil {
		t.Fatal("np=3 should be rejected")
	}
}

func TestMatrixIsSymmetricAndDominant(t *testing.T) {
	p := npb.CGParamsFor(npb.ClassS)
	m := buildMatrix(p, 1, 0)
	// Collect entries into a dense map to check symmetry.
	entries := map[[2]int]float64{}
	for row := range m.cols {
		i := m.lo + row
		var diag, off float64
		for k, j := range m.cols[row] {
			entries[[2]int{i, int(j)}] += m.vals[row][k]
			if int(j) == i {
				diag += m.vals[row][k]
			} else {
				off += math.Abs(m.vals[row][k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: diag=%v off=%v", i, diag, off)
		}
	}
	for key, v := range entries {
		if key[0] == key[1] {
			continue
		}
		tv, ok := entries[[2]int{key[1], key[0]}]
		if !ok || math.Abs(tv-v) > 1e-12 {
			t.Fatalf("asymmetric entry (%d,%d)=%v vs (%d,%d)=%v", key[0], key[1], v, key[1], key[0], tv)
		}
	}
}

func TestRowRangePartition(t *testing.T) {
	// Row ranges must tile [0, na) exactly for any np.
	for _, na := range []int{10, 1400, 75000} {
		for _, np := range []int{1, 2, 4, 8, 16, 64} {
			if np > na {
				continue
			}
			next := 0
			for r := 0; r < np; r++ {
				lo, hi := rowRange(na, np, r)
				if lo != next || hi < lo {
					t.Fatalf("na=%d np=%d rank=%d: range [%d,%d), expected lo=%d", na, np, r, lo, hi, next)
				}
				next = hi
			}
			if next != na {
				t.Fatalf("na=%d np=%d: ranges cover %d rows", na, np, next)
			}
		}
	}
}

func TestSkeletonCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 210 || res.Time > 280 {
		t.Fatalf("CG.B.1 on DCC = %.1f s, want ~244.9", res.Time)
	}
}

func TestSkeletonDCCNUMADip(t *testing.T) {
	// The paper: CG speedup on DCC drops at 8 processes (NUMA masked).
	// Efficiency at np=8 on DCC must be clearly below Vayu's.
	eff := func(p *platform.Platform) float64 {
		t1 := skelTime(t, p, 1)
		t8 := skelTime(t, p, 8)
		return t1 / t8 / 8
	}
	dcc := eff(platform.DCC())
	vayu := eff(platform.Vayu())
	if dcc >= vayu-0.1 {
		t.Fatalf("CG 8-rank efficiency dcc=%.2f vayu=%.2f; want a visible DCC NUMA dip", dcc, vayu)
	}
}

func skelTime(t *testing.T, p *platform.Platform, np int) float64 {
	t.Helper()
	res, err := mpi.RunOn(p, np, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Time
}

func TestSkeletonVayuScalesBetterThanDCC(t *testing.T) {
	speedup := func(p *platform.Platform) float64 {
		return skelTime(t, p, 1) / skelTime(t, p, 32)
	}
	v, d := speedup(platform.Vayu()), speedup(platform.DCC())
	if v <= d {
		t.Fatalf("CG speedup at 32: vayu=%.1f dcc=%.1f; Vayu must scale better", v, d)
	}
}
