// Package cg implements the NPB CG kernel: a conjugate-gradient solve of
// an unstructured sparse symmetric positive-definite system, the
// memory-bound, small-all-reduce-dominated benchmark whose NUMA
// sensitivity the paper highlights.
//
// The full-math implementation uses a 1D row-block decomposition over a
// synthetic SPD matrix (a diagonally dominant band plus deterministic
// random symmetric links) — a documented substitution for NPB's makea
// routine that preserves row sparsity (2*nonzer+3 entries/row), SPD
// structure and the CG communication profile. The skeleton replays the
// reference 2D-decomposition pattern (row-wise partial-sum exchanges,
// transpose exchange and two 8-byte all-reduces per inner iteration).
package cg

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mpi"
	"repro/internal/npb"
)

// Result holds kernel outputs.
type Result struct {
	Class     npb.Class
	Zeta      float64 // final shifted-eigenvalue estimate
	RNorm     float64 // final CG residual norm
	Verified  bool
	VerifyMsg string
	Time      float64
}

// matrix is one rank's row block in CSR-ish form.
type matrix struct {
	na     int
	lo, hi int // owned rows [lo, hi)
	cols   [][]int32
	vals   [][]float64
}

// rowRange returns the block row range of a rank.
func rowRange(na, np, rank int) (lo, hi int) {
	base := na / np
	extra := na % np
	lo = rank*base + min(rank, extra)
	size := base
	if rank < extra {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// buildMatrix constructs the deterministic SPD test matrix for a class on
// one rank: a [-1, 4+shift-ish, -1] band plus `nonzer` random symmetric
// links per row with small positive weights, diagonally dominant.
func buildMatrix(p npb.CGParams, np, rank int) *matrix {
	na := p.NA
	lo, hi := rowRange(na, np, rank)
	m := &matrix{na: na, lo: lo, hi: hi,
		cols: make([][]int32, hi-lo), vals: make([][]float64, hi-lo)}

	type link struct {
		u, v int
		w    float64
	}
	// Deterministic global link list; every rank generates the same list
	// and keeps rows it owns. Link count na*nonzer/2 keeps ~nonzer random
	// entries per row.
	g := npb.NewLCG(314159265)
	nlinks := na * p.Nonzer / 2
	local := map[int][]link{}
	for t := 0; t < nlinks; t++ {
		u := int(g.Next() * float64(na))
		v := int(g.Next() * float64(na))
		w := 0.1 + 0.4*g.Next()
		if u == v {
			continue
		}
		if u >= lo && u < hi {
			local[u] = append(local[u], link{u, v, w})
		}
		if v >= lo && v < hi {
			local[v] = append(local[v], link{v, u, w})
		}
	}

	for i := lo; i < hi; i++ {
		row := i - lo
		var cols []int32
		var vals []float64
		var offdiag float64
		add := func(j int, w float64) {
			cols = append(cols, int32(j))
			vals = append(vals, -w)
			offdiag += w
		}
		if i > 0 {
			add(i-1, 1)
		}
		if i < na-1 {
			add(i+1, 1)
		}
		for _, l := range local[i] {
			add(l.v, l.w)
		}
		// Diagonal dominance plus the class shift keeps A SPD.
		cols = append(cols, int32(i))
		vals = append(vals, offdiag+p.Shift+1)
		m.cols[row] = cols
		m.vals[row] = vals
	}
	return m
}

// spmv computes w = A*x for the local row block; x is the full vector.
func (m *matrix) spmv(x, w []float64) {
	for row := range m.cols {
		var s float64
		cols, vals := m.cols[row], m.vals[row]
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		w[row] = s
	}
}

const innerIters = 25 // CG steps per outer iteration, as in cg.f

// Run executes the CG benchmark at a class. np must be a power of two (the
// NPB constraint); the 1D decomposition accepts any np <= na, but we keep
// the official rule. Every rank returns the same result.
func Run(c *mpi.Comm, class npb.Class) (*Result, error) {
	np := c.Size()
	if !npb.ValidProcs("cg", np) {
		return nil, fmt.Errorf("cg: %d processes (want a power of two)", np)
	}
	p := npb.CGParamsFor(class)
	if np > p.NA {
		return nil, fmt.Errorf("cg: %d ranks exceed %d rows", np, p.NA)
	}
	total, err := npb.TotalWork("cg", class)
	if err != nil {
		return nil, err
	}
	m := buildMatrix(p, np, c.Rank())
	myRows := m.hi - m.lo
	// Work per inner iteration, proportional to the owned row share.
	perIter := total.Scale(float64(myRows) / float64(p.NA) / float64(p.Niter*innerIters))

	// Gathered block sizes for the ring allgather of the search vector.
	blockLen := make([]int, np)
	for r := 0; r < np; r++ {
		rlo, rhi := rowRange(p.NA, np, r)
		blockLen[r] = rhi - rlo
	}
	maxBlock := 0
	for _, b := range blockLen {
		if b > maxBlock {
			maxBlock = b
		}
	}

	x := make([]float64, p.NA) // current eigenvector estimate (replicated)
	for i := range x {
		x[i] = 1
	}
	z := make([]float64, myRows)
	r := make([]float64, myRows)
	q := make([]float64, myRows)
	pvec := make([]float64, p.NA) // replicated search direction
	pLocal := make([]float64, maxBlock)
	gat := make([]float64, maxBlock*np)

	// allgatherLocal distributes each rank's local block into dst (full
	// vector), padding blocks to maxBlock for the equal-block allgather.
	allgather := func(local []float64, dst []float64) {
		copy(pLocal, local)
		for i := len(local); i < maxBlock; i++ {
			pLocal[i] = 0
		}
		c.Allgather(pLocal[:maxBlock], gat)
		off := 0
		for rr := 0; rr < np; rr++ {
			copy(dst[off:off+blockLen[rr]], gat[rr*maxBlock:rr*maxBlock+blockLen[rr]])
			off += blockLen[rr]
		}
	}

	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		buf := []float64{s}
		c.Allreduce(mpi.Sum, buf)
		return buf[0]
	}

	var zeta, rnorm float64
	for outer := 0; outer < p.Niter; outer++ {
		// Solve A z = x with `innerIters` CG steps.
		for i := range z {
			z[i] = 0
			r[i] = x[m.lo+i]
		}
		copy(pvec, x)
		rho := dot(r, r)
		for it := 0; it < innerIters; it++ {
			m.spmv(pvec, q)
			c.Compute(perIter)
			// d = p . A p using the local block of the replicated p.
			var dl float64
			for i := range q {
				dl += pvec[m.lo+i] * q[i]
			}
			dbuf := []float64{dl}
			c.Allreduce(mpi.Sum, dbuf)
			alpha := rho / dbuf[0]
			for i := range z {
				z[i] += alpha * pvec[m.lo+i]
				r[i] -= alpha * q[i]
			}
			rho0 := rho
			rho = dot(r, r)
			beta := rho / rho0
			// p = r + beta p, then re-replicate p.
			for i := range q {
				pLocal[i] = r[i] + beta*pvec[m.lo+i]
			}
			allgather(pLocal[:myRows], pvec)
		}
		rnorm = math.Sqrt(rho)
		// zeta = shift + 1 / (x . z); x = z / ||z||.
		var xzl, zzl float64
		for i := range z {
			xzl += x[m.lo+i] * z[i]
			zzl += z[i] * z[i]
		}
		buf := []float64{xzl, zzl}
		c.Allreduce(mpi.Sum, buf)
		zeta = p.Shift + 1/buf[0]
		inv := 1 / math.Sqrt(buf[1])
		for i := range z {
			pLocal[i] = z[i] * inv
		}
		allgather(pLocal[:myRows], x)
	}

	res := &Result{Class: class, Zeta: zeta, RNorm: rnorm, Time: c.Clock()}
	refMu.RLock()
	ref, ok := zetaReference[class]
	refMu.RUnlock()
	if ok {
		if math.Abs(res.Zeta-ref) <= 1e-8*math.Abs(ref) {
			res.Verified = true
			res.VerifyMsg = "VERIFICATION SUCCESSFUL"
		} else {
			res.VerifyMsg = fmt.Sprintf("verification failed: zeta=%v, want %v", res.Zeta, ref)
		}
	} else {
		res.VerifyMsg = "no reference zeta for class"
	}
	return res, nil
}

// zetaReference holds self-generated golden values for the synthetic
// matrix (our makea substitution makes NPB's official zetas inapplicable).
// They are deterministic across process counts up to floating-point
// reordering; see cg_test.go, which also cross-checks np-independence.
// refMu guards the map: goldens may be registered while concurrent
// simulations verify against them.
var (
	refMu         sync.RWMutex
	zetaReference = map[npb.Class]float64{}
)

// SetReference records a golden zeta for a class (used by tests and the
// harness after a trusted serial run).
func SetReference(class npb.Class, zeta float64) {
	refMu.Lock()
	zetaReference[class] = zeta
	refMu.Unlock()
}

// Skeleton replays the reference NPB CG communication pattern on a
// 2D process grid with phantom messages and calibrated work.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	if !npb.ValidProcs("cg", np) {
		return fmt.Errorf("cg: %d processes (want a power of two)", np)
	}
	p := npb.CGParamsFor(class)
	total, err := npb.TotalWork("cg", class)
	if err != nil {
		return err
	}
	perIter := total.Scale(1 / float64(np) / float64(p.Niter*innerIters))

	// Processor grid as in cg.f: npcols x nprows with npcols >= nprows.
	lg := 0
	for 1<<lg < np {
		lg++
	}
	npcols := 1 << ((lg + 1) / 2)
	nprows := np / npcols
	row := c.Rank() / npcols
	col := c.Rank() % npcols

	rowBytes := 8 * p.NA / max(nprows, 1) // partial-sum exchange length
	transBytes := 8 * p.NA / max(np, 1)   // transpose block
	// Transpose-exchange partner: (row, col) pairs with
	// (col mod nprows, row + nprows*(col/nprows)), an involution for both
	// square grids (npcols == nprows) and 2:1 grids (npcols == 2*nprows) —
	// a partner mapping that is not an involution would deadlock the
	// pairwise exchange.
	transposePartner := (col%nprows)*npcols + row + nprows*(col/nprows)

	for outer := 0; outer < p.Niter; outer++ {
		for it := 0; it < innerIters; it++ {
			c.Compute(perIter)
			// Partial-sum reduction across the processor row.
			for k := 1; k < npcols; k <<= 1 {
				partner := row*npcols + (col ^ k)
				c.SendrecvN(partner, 1, rowBytes, partner, 1)
			}
			// Transpose exchange of the updated vector block.
			if transposePartner != c.Rank() {
				c.SendrecvN(transposePartner, 2, transBytes, transposePartner, 2)
			}
			// Two scalar dot products.
			c.AllreduceN(8)
			c.AllreduceN(8)
		}
		c.AllreduceN(16) // zeta numerator/denominator
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
