package lu

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func TestGridOf(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2}, 16: {4, 4}, 32: {8, 4}, 64: {8, 8},
	}
	for np, want := range cases {
		px, py := gridOf(np)
		if px != want[0] || py != want[1] {
			t.Errorf("gridOf(%d) = %dx%d, want %dx%d", np, px, py, want[0], want[1])
		}
	}
}

func TestSerialCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 1400 || res.Time > 1650 {
		t.Fatalf("LU.B.1 on DCC = %.0f s, want ~1514.7", res.Time)
	}
}

func TestRejectsNonPowerOfTwo(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 3, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassS)
	})
	if err == nil {
		t.Fatal("np=3 should be rejected")
	}
}

func TestPipelineFillCostVisible(t *testing.T) {
	// The wavefront pipeline cannot be perfectly efficient: at 32 ranks
	// the fill/drain overhead keeps the speedup measurably below linear
	// even on Vayu, but far above half.
	st := func(np int) float64 {
		res, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	sp := st(1) / st(32)
	if sp >= 31 || sp < 16 {
		t.Fatalf("LU speedup at 32 on Vayu = %.1f, want between 16 and 31", sp)
	}
}

func TestDCCTrailsVayu(t *testing.T) {
	at := func(p *platform.Platform) float64 {
		res, err := mpi.RunOn(p, 64, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if at(platform.DCC()) <= at(platform.Vayu()) {
		t.Fatal("LU.B.64 must be slower on DCC than on Vayu")
	}
}
