// Package lu implements the communication skeleton of the NPB LU
// pseudo-application: an SSOR solver whose lower- and upper-triangular
// sweeps form software pipelines over a 2D process grid, exchanging small
// per-plane face messages — the latency-sensitive wavefront pattern that
// (per the paper) trails on the virtualised clusters like BT, MG and SP.
//
// LU, BT and SP are skeleton-only in this reproduction (the full ADI/SSOR
// solvers are thousands of lines of Fortran whose numerics do not affect
// the paper's measurements); the skeletons replay the sweep structure with
// phantom messages and calibrated work. See DESIGN.md.
package lu

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/npb"
)

const (
	tagEast  = 31
	tagSouth = 32
	tagWest  = 33
	tagNorth = 34
	tagHalo  = 35
)

// gridOf returns the 2D process grid for np ranks (NPB LU: power-of-two
// grid with xdim >= ydim).
func gridOf(np int) (px, py int) {
	px, py = 1, 1
	for px*py < np {
		if px <= py {
			px <<= 1
		} else {
			py <<= 1
		}
	}
	return px, py
}

// Skeleton replays LU's per-iteration structure: a pipelined lower sweep
// (west/north to east/south), a pipelined upper sweep (reversed), and a
// halo refresh, with norms reduced at start and end only (as in lu.f).
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	if !npb.ValidProcs("lu", np) {
		return fmt.Errorf("lu: %d processes (want a power of two)", np)
	}
	p := npb.LUParamsFor(class)
	total, err := npb.TotalWork("lu", class)
	if err != nil {
		return err
	}
	perIter := total.Scale(1 / float64(np) / float64(p.Niter))

	px, py := gridOf(np)
	rx, ry := c.Rank()%px, c.Rank()/px
	nx, ny, nz := p.N/px, p.N/py, p.N
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	eastB := 5 * 8 * ny  // pencil face along x per plane
	southB := 5 * 8 * nx // pencil face along y per plane

	// Charge the sweep work in plane-sized chunks so the pipeline fill
	// time is modelled; batch planes to keep the skeleton cheap.
	const planeBatch = 4 // planes advanced per pipeline stage (wavefront blocking)
	stages := (nz + planeBatch - 1) / planeBatch
	perStage := perIter.Scale(0.42 / float64(stages))

	c.AllreduceN(40) // initial residual norms (5 doubles)
	for iter := 0; iter < p.Niter; iter++ {
		// Lower-triangular sweep: dependencies flow from (0,0).
		for k := 0; k < stages; k++ {
			if rx > 0 {
				c.RecvN(c.Rank()-1, tagEast)
			}
			if ry > 0 {
				c.RecvN(c.Rank()-px, tagSouth)
			}
			c.Compute(perStage)
			if rx < px-1 {
				c.SendN(c.Rank()+1, tagEast, eastB*planeBatch)
			}
			if ry < py-1 {
				c.SendN(c.Rank()+px, tagSouth, southB*planeBatch)
			}
		}
		// Upper-triangular sweep: dependencies flow from (px-1,py-1).
		for k := 0; k < stages; k++ {
			if rx < px-1 {
				c.RecvN(c.Rank()+1, tagWest)
			}
			if ry < py-1 {
				c.RecvN(c.Rank()+px, tagNorth)
			}
			c.Compute(perStage)
			if rx > 0 {
				c.SendN(c.Rank()-1, tagWest, eastB*planeBatch)
			}
			if ry > 0 {
				c.SendN(c.Rank()-px, tagNorth, southB*planeBatch)
			}
		}
		// RHS halo refresh: full faces in both grid dimensions.
		if px > 1 {
			east := ry*px + (rx+1)%px
			west := ry*px + (rx-1+px)%px
			c.SendrecvN(east, tagHalo, 5*8*ny*nz, west, tagHalo)
			c.SendrecvN(west, tagHalo+1, 5*8*ny*nz, east, tagHalo+1)
		}
		if py > 1 {
			south := ((ry+1)%py)*px + rx
			north := ((ry-1+py)%py)*px + rx
			c.SendrecvN(south, tagHalo+2, 5*8*nx*nz, north, tagHalo+2)
			c.SendrecvN(north, tagHalo+3, 5*8*nx*nz, south, tagHalo+3)
		}
		c.Compute(perIter.Scale(0.16))
	}
	c.AllreduceN(40) // final norms
	return nil
}
