// Package is implements the NPB IS kernel: a parallel integer bucket sort
// of keys drawn from the NPB random stream, dominated by an all-reduce of
// bucket counts and an all-to-all-v key exchange per iteration — the most
// communication-intensive benchmark in the suite ("does not scale well on
// any of the clusters", per the paper).
package is

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/npb"
)

// Result holds kernel outputs.
type Result struct {
	Class     npb.Class
	KeySum    int64 // conserved checksum of all keys
	Verified  bool
	VerifyMsg string
	Time      float64
}

const (
	tagCounts = 11
	tagKeys   = 12
	tagBound  = 13
)

// generateKeys produces this rank's contiguous chunk of the global key
// sequence: key = floor(MaxKey/4 * (r1+r2+r3+r4)), four variates per key,
// using jump-ahead so the global sequence is np-invariant.
func generateKeys(p npb.ISParams, np, rank int) []int {
	per := p.TotalKeys / np
	lo := rank * per
	hi := lo + per
	if rank == np-1 {
		hi = p.TotalKeys
	}
	g := npb.NewLCG(314159265).Jump(uint64(4 * lo))
	keys := make([]int, hi-lo)
	k := float64(p.MaxKey) / 4
	for i := range keys {
		x := g.Next() + g.Next() + g.Next() + g.Next()
		keys[i] = int(k * x)
		if keys[i] >= p.MaxKey {
			keys[i] = p.MaxKey - 1
		}
	}
	return keys
}

// Run executes the IS benchmark. Every rank returns the same result.
func Run(c *mpi.Comm, class npb.Class) (*Result, error) {
	np := c.Size()
	if !npb.ValidProcs("is", np) {
		return nil, fmt.Errorf("is: %d processes (want a power of two)", np)
	}
	p := npb.ISParamsFor(class)
	if np > p.Buckets {
		return nil, fmt.Errorf("is: %d ranks exceed %d buckets", np, p.Buckets)
	}
	total, err := npb.TotalWork("is", class)
	if err != nil {
		return nil, err
	}
	perIter := total.Scale(1 / float64(np) / float64(p.Niter))

	keys := generateKeys(p, np, c.Rank())
	var localSum int64
	for _, k := range keys {
		localSum += int64(k)
	}
	sumBuf := []float64{float64(localSum), float64(len(keys))}
	c.Allreduce(mpi.Sum, sumBuf)
	wantSum, wantCnt := int64(sumBuf[0]), int64(sumBuf[1])

	shift := 0
	for 1<<shift < p.MaxKey/p.Buckets {
		shift++
	}

	counts := make([]int, p.Buckets)
	sendCnt := make([]int, np)
	recvCnt := make([]int, np)
	var sorted []int

	for iter := 0; iter < p.Niter; iter++ {
		// Bucket histogram and global count reduction.
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			counts[k>>shift]++
		}
		global := append([]int(nil), counts...)
		c.AllreduceInts(mpi.Sum, global)
		c.Compute(perIter.Scale(0.3))

		// Assign contiguous bucket ranges to ranks, balancing key counts.
		bucketOwner := make([]int, p.Buckets)
		targetPer := (wantCnt + int64(np) - 1) / int64(np)
		owner, acc := 0, int64(0)
		for b := 0; b < p.Buckets; b++ {
			bucketOwner[b] = owner
			acc += int64(global[b])
			if acc >= targetPer && owner < np-1 {
				owner++
				acc = 0
			}
		}

		// Pack keys per destination and exchange counts, then keys.
		parts := make([][]int, np)
		for _, k := range keys {
			d := bucketOwner[k>>shift]
			parts[d] = append(parts[d], k)
		}
		for d := 0; d < np; d++ {
			sendCnt[d] = len(parts[d])
		}
		// Count exchange (the small alltoall preceding the v-exchange).
		for s := 1; s < np; s++ {
			dst := (c.Rank() + s) % np
			src := (c.Rank() - s + np) % np
			c.SendInts(dst, tagCounts, sendCnt[dst:dst+1])
			one := make([]int, 1)
			c.RecvInts(src, tagCounts, one)
			recvCnt[src] = one[0]
		}
		recvCnt[c.Rank()] = sendCnt[c.Rank()]

		// Key exchange (alltoallv): pairwise, skipping empty transfers.
		recvd := parts[c.Rank()]
		for s := 1; s < np; s++ {
			dst := (c.Rank() + s) % np
			src := (c.Rank() - s + np) % np
			c.SendInts(dst, tagKeys, parts[dst])
			buf := make([]int, recvCnt[src])
			c.RecvInts(src, tagKeys, buf)
			recvd = append(recvd, buf...)
		}

		// Local counting sort over the owned key range.
		sort.Ints(recvd)
		sorted = recvd
		c.Compute(perIter.Scale(0.7))
	}

	// Full verification: local order (already sorted), boundary order with
	// the neighbour, and conservation of count and sum.
	vmsg := ""
	ok := true
	var mySum int64
	for _, k := range sorted {
		mySum += int64(k)
	}
	myMin, myMax := 0, 0
	if len(sorted) > 0 {
		myMin, myMax = sorted[0], sorted[len(sorted)-1]
	}
	if c.Rank() < np-1 {
		c.SendInts(c.Rank()+1, tagBound, []int{myMax, len(sorted)})
	}
	if c.Rank() > 0 {
		b := make([]int, 2)
		c.RecvInts(c.Rank()-1, tagBound, b)
		if len(sorted) > 0 && b[1] > 0 && b[0] > myMin {
			ok = false
			vmsg = fmt.Sprintf("boundary violation: left max %d > my min %d", b[0], myMin)
		}
	}
	tot := []float64{float64(mySum), float64(len(sorted))}
	c.Allreduce(mpi.Sum, tot)
	if int64(tot[0]) != wantSum || int64(tot[1]) != wantCnt {
		ok = false
		vmsg = fmt.Sprintf("conservation violated: sum %v/%v count %v/%v",
			int64(tot[0]), wantSum, int64(tot[1]), wantCnt)
	}
	flag := []float64{1}
	if !ok {
		flag[0] = 0
	}
	c.Allreduce(mpi.Min, flag)

	res := &Result{Class: class, KeySum: wantSum, Verified: flag[0] == 1, Time: c.Clock()}
	if res.Verified {
		res.VerifyMsg = "VERIFICATION SUCCESSFUL"
	} else {
		res.VerifyMsg = "verification failed: " + vmsg
	}
	return res, nil
}

// Skeleton replays the IS communication pattern with phantom messages: a
// bucket-count all-reduce and a uniform all-to-all of key payloads per
// iteration.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	if !npb.ValidProcs("is", np) {
		return fmt.Errorf("is: %d processes (want a power of two)", np)
	}
	p := npb.ISParamsFor(class)
	total, err := npb.TotalWork("is", class)
	if err != nil {
		return err
	}
	perIter := total.Scale(1 / float64(np) / float64(p.Niter))
	keyBlock := 4 * p.TotalKeys / (np * np) // int keys to each peer

	for iter := 0; iter < p.Niter; iter++ {
		c.Compute(perIter.Scale(0.3))
		c.AllreduceN(4 * p.Buckets)
		if np > 1 {
			c.AlltoallN(keyBlock)
		}
		c.Compute(perIter.Scale(0.7))
	}
	c.AllreduceN(16) // final verification reduction
	return nil
}
