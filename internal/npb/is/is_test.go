package is

import (
	"sort"
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func runIS(t *testing.T, np int, class npb.Class) *Result {
	t.Helper()
	var out *Result
	_, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
		r, err := Run(c, class)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSerialVerifies(t *testing.T) {
	r := runIS(t, 1, npb.ClassS)
	if !r.Verified {
		t.Fatalf("serial IS failed: %s", r.VerifyMsg)
	}
}

func TestParallelVerifiesAndMatchesChecksum(t *testing.T) {
	serial := runIS(t, 1, npb.ClassS)
	for _, np := range []int{2, 4, 8, 16} {
		par := runIS(t, np, npb.ClassS)
		if !par.Verified {
			t.Fatalf("np=%d failed: %s", np, par.VerifyMsg)
		}
		if par.KeySum != serial.KeySum {
			t.Fatalf("np=%d key checksum %d != serial %d", np, par.KeySum, serial.KeySum)
		}
	}
}

func TestKeyGenerationDeterministicAndPartitioned(t *testing.T) {
	p := npb.ISParamsFor(npb.ClassS)
	whole := generateKeys(p, 1, 0)
	if len(whole) != p.TotalKeys {
		t.Fatalf("generated %d keys, want %d", len(whole), p.TotalKeys)
	}
	// The 4-rank chunks must concatenate to the serial sequence.
	var cat []int
	for r := 0; r < 4; r++ {
		cat = append(cat, generateKeys(p, 4, r)...)
	}
	if len(cat) != len(whole) {
		t.Fatalf("chunks give %d keys", len(cat))
	}
	for i := range whole {
		if cat[i] != whole[i] {
			t.Fatalf("key %d differs: %d vs %d", i, cat[i], whole[i])
		}
	}
	for i, k := range whole {
		if k < 0 || k >= p.MaxKey {
			t.Fatalf("key %d = %d out of range", i, k)
		}
	}
}

func TestKeyDistributionCentered(t *testing.T) {
	// Sum of four uniforms: mean MaxKey/2, concentrated middle.
	p := npb.ISParamsFor(npb.ClassS)
	keys := generateKeys(p, 1, 0)
	var sum float64
	for _, k := range keys {
		sum += float64(k)
	}
	mean := sum / float64(len(keys))
	mid := float64(p.MaxKey) / 2
	if mean < 0.95*mid || mean > 1.05*mid {
		t.Fatalf("key mean = %v, want ~%v", mean, mid)
	}
	sort.Ints(keys)
	if keys[len(keys)/2] < int(0.9*mid) || keys[len(keys)/2] > int(1.1*mid) {
		t.Fatalf("median %d far from %v", keys[len(keys)/2], mid)
	}
}

func TestRejectsNonPowerOfTwo(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 3, func(c *mpi.Comm) error {
		_, err := Run(c, npb.ClassS)
		return err
	})
	if err == nil {
		t.Fatal("np=3 should be rejected")
	}
}

func TestSkeletonCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 7 || res.Time > 10.5 {
		t.Fatalf("IS.B.1 on DCC = %.2f s, want ~8.6", res.Time)
	}
}

func TestSkeletonScalesPoorlyEverywhere(t *testing.T) {
	// The paper: "The IS benchmark is communication intensive and does not
	// scale well on any of the clusters."
	st := func(p *platform.Platform, np int) float64 {
		res, err := mpi.RunOn(p, np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	for _, p := range platform.All() {
		speedup := st(p, 1) / st(p, 64)
		if speedup > 40 {
			t.Errorf("%s: IS speedup at 64 = %.1f, expected far from linear", p.Name, speedup)
		}
		if speedup <= 0 {
			t.Errorf("%s: nonsensical speedup %v", p.Name, speedup)
		}
	}
}

func TestSkeletonDCCCommDominatesAt64(t *testing.T) {
	// Table II: IS on DCC at np=64 spends ~98% of walltime communicating.
	res, err := mpi.RunOn(platform.DCC(), 64, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := res.CommTimes.Sum() / res.RankTimes.Sum()
	if frac < 0.6 {
		t.Fatalf("IS.B.64 DCC comm fraction = %.2f, want dominant (>0.6)", frac)
	}
}
