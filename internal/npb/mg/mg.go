// Package mg implements the NPB MG kernel: V-cycle multigrid on a 3D
// periodic grid with a 3D domain decomposition and six-face halo
// exchanges at every level — the benchmark whose shrinking messages at
// coarse levels make it latency-sensitive on the virtualised clusters.
//
// The full-math version solves the discrete Poisson problem with a
// weighted-Jacobi smoother, full-weighting restriction and trilinear
// interpolation (a documented simplification of NPB's 4-coefficient
// stencils that preserves grid traversal, level structure and the comm3
// halo-exchange pattern). The right-hand side follows zran3: +1 at the 10
// globally largest and -1 at the 10 smallest points of the NPB random
// field, located with a global merge.
package mg

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/mpi"
	"repro/internal/npb"
)

// Result holds kernel outputs.
type Result struct {
	Class     npb.Class
	RNorm     float64 // final residual L2 norm
	InitNorm  float64 // pre-cycle residual norm
	Verified  bool
	VerifyMsg string
	Time      float64
}

const (
	tagFace = 21
	omega   = 2.0 / 3.0 // weighted-Jacobi factor
)

// decomp is the 3D process grid and this rank's coordinates.
type decomp struct {
	px, py, pz int
	rx, ry, rz int
}

// factor3 splits a power-of-two np into near-equal power-of-two factors.
func factor3(np int) (int, int, int) {
	px, py, pz := 1, 1, 1
	for np > 1 {
		switch {
		case px <= py && px <= pz:
			px <<= 1
		case py <= pz:
			py <<= 1
		default:
			pz <<= 1
		}
		np >>= 1
	}
	return px, py, pz
}

func newDecomp(np, rank int) decomp {
	px, py, pz := factor3(np)
	return decomp{
		px: px, py: py, pz: pz,
		rx: rank % px,
		ry: (rank / px) % py,
		rz: rank / (px * py),
	}
}

func (d decomp) rankAt(x, y, z int) int {
	x = (x + d.px) % d.px
	y = (y + d.py) % d.py
	z = (z + d.pz) % d.pz
	return (z*d.py+y)*d.px + x
}

// level is one multigrid level's local block with 1-deep halos.
type level struct {
	n          int // global edge
	lx, ly, lz int // local interior dims
	u, v, r    []float64
}

func (l *level) idx(x, y, z int) int {
	return (z*(l.ly+2)+y)*(l.lx+2) + x
}

// grid is one rank's full multigrid hierarchy.
type grid struct {
	d      decomp
	levels []*level
}

func newGrid(p npb.GridParams, np, rank int) (*grid, error) {
	d := newDecomp(np, rank)
	g := &grid{d: d}
	for n := p.N; n >= 4; n >>= 1 {
		lx, ly, lz := n/d.px, n/d.py, n/d.pz
		if lx < 2 || ly < 2 || lz < 2 {
			break
		}
		l := &level{n: n, lx: lx, ly: ly, lz: lz}
		sz := (lx + 2) * (ly + 2) * (lz + 2)
		l.u = make([]float64, sz)
		l.v = make([]float64, sz)
		l.r = make([]float64, sz)
		g.levels = append(g.levels, l)
	}
	if len(g.levels) == 0 {
		return nil, fmt.Errorf("mg: np=%d too large for %d^3 grid", np, p.N)
	}
	return g, nil
}

// exchange updates the six halo faces of field f at level l, axis by axis
// so edge/corner values propagate (comm3). Periodic boundaries.
func (g *grid) exchange(c *mpi.Comm, l *level, f []float64) {
	axes := []struct {
		pdim  int
		minus int // neighbour rank in -axis
		plus  int
	}{
		{g.d.px, g.d.rankAt(g.d.rx-1, g.d.ry, g.d.rz), g.d.rankAt(g.d.rx+1, g.d.ry, g.d.rz)},
		{g.d.py, g.d.rankAt(g.d.rx, g.d.ry-1, g.d.rz), g.d.rankAt(g.d.rx, g.d.ry+1, g.d.rz)},
		{g.d.pz, g.d.rankAt(g.d.rx, g.d.ry, g.d.rz-1), g.d.rankAt(g.d.rx, g.d.ry, g.d.rz+1)},
	}
	for axis, a := range axes {
		lo, hi := g.facePack(l, f, axis, true), g.facePack(l, f, axis, false)
		if a.pdim == 1 {
			// Periodic wrap within the rank: copy own faces across.
			g.faceUnpack(l, f, axis, false, lo)
			g.faceUnpack(l, f, axis, true, hi)
			continue
		}
		// Send low face to -neighbour, receive its high face, then the
		// reverse; pairwise Sendrecv avoids deadlock.
		recvLo := make([]float64, len(lo))
		recvHi := make([]float64, len(hi))
		c.Sendrecv(a.minus, tagFace+2*axis, lo, a.plus, tagFace+2*axis, recvHi)
		c.Sendrecv(a.plus, tagFace+2*axis+1, hi, a.minus, tagFace+2*axis+1, recvLo)
		g.faceUnpack(l, f, axis, true, recvLo)  // halo below interior
		g.faceUnpack(l, f, axis, false, recvHi) // halo above interior
	}
}

// facePack extracts the interior boundary plane (low=true: first interior
// plane) perpendicular to axis, including halos of other axes.
func (g *grid) facePack(l *level, f []float64, axis int, low bool) []float64 {
	var out []float64
	switch axis {
	case 0:
		x := l.lx
		if low {
			x = 1
		}
		out = make([]float64, 0, (l.ly+2)*(l.lz+2))
		for z := 0; z < l.lz+2; z++ {
			for y := 0; y < l.ly+2; y++ {
				out = append(out, f[l.idx(x, y, z)])
			}
		}
	case 1:
		y := l.ly
		if low {
			y = 1
		}
		out = make([]float64, 0, (l.lx+2)*(l.lz+2))
		for z := 0; z < l.lz+2; z++ {
			for x := 0; x < l.lx+2; x++ {
				out = append(out, f[l.idx(x, y, z)])
			}
		}
	default:
		z := l.lz
		if low {
			z = 1
		}
		out = make([]float64, 0, (l.lx+2)*(l.ly+2))
		for y := 0; y < l.ly+2; y++ {
			for x := 0; x < l.lx+2; x++ {
				out = append(out, f[l.idx(x, y, z)])
			}
		}
	}
	return out
}

// faceUnpack writes a received plane into the halo layer (low=true: halo
// plane 0; low=false: halo plane dim+1).
func (g *grid) faceUnpack(l *level, f []float64, axis int, low bool, data []float64) {
	k := 0
	switch axis {
	case 0:
		x := l.lx + 1
		if low {
			x = 0
		}
		for z := 0; z < l.lz+2; z++ {
			for y := 0; y < l.ly+2; y++ {
				f[l.idx(x, y, z)] = data[k]
				k++
			}
		}
	case 1:
		y := l.ly + 1
		if low {
			y = 0
		}
		for z := 0; z < l.lz+2; z++ {
			for x := 0; x < l.lx+2; x++ {
				f[l.idx(x, y, z)] = data[k]
				k++
			}
		}
	default:
		z := l.lz + 1
		if low {
			z = 0
		}
		for y := 0; y < l.ly+2; y++ {
			for x := 0; x < l.lx+2; x++ {
				f[l.idx(x, y, z)] = data[k]
				k++
			}
		}
	}
}

// applyA computes out = A*in on the interior (7-point Laplacian: 6u - sum
// of neighbours). Halos of `in` must be current.
func applyA(l *level, in, out []float64) {
	for z := 1; z <= l.lz; z++ {
		for y := 1; y <= l.ly; y++ {
			for x := 1; x <= l.lx; x++ {
				i := l.idx(x, y, z)
				out[i] = 6*in[i] - in[i-1] - in[i+1] -
					in[i-(l.lx+2)] - in[i+(l.lx+2)] -
					in[i-(l.lx+2)*(l.ly+2)] - in[i+(l.lx+2)*(l.ly+2)]
			}
		}
	}
}

// smooth performs one weighted-Jacobi sweep of A u = rhs in place.
func (g *grid) smooth(c *mpi.Comm, l *level, u, rhs []float64) {
	g.exchange(c, l, u)
	tmp := make([]float64, len(u))
	applyA(l, u, tmp)
	for z := 1; z <= l.lz; z++ {
		for y := 1; y <= l.ly; y++ {
			for x := 1; x <= l.lx; x++ {
				i := l.idx(x, y, z)
				u[i] += omega / 6 * (rhs[i] - tmp[i])
			}
		}
	}
}

// residual computes r = rhs - A u (halos of u refreshed).
func (g *grid) residual(c *mpi.Comm, l *level, u, rhs, r []float64) {
	g.exchange(c, l, u)
	applyA(l, u, r)
	for z := 1; z <= l.lz; z++ {
		for y := 1; y <= l.ly; y++ {
			for x := 1; x <= l.lx; x++ {
				i := l.idx(x, y, z)
				r[i] = rhs[i] - r[i]
			}
		}
	}
}

// restrictTo projects fine.r onto coarse.v by averaging 2x2x2 blocks.
func restrictTo(fine, coarse *level) {
	for z := 1; z <= coarse.lz; z++ {
		for y := 1; y <= coarse.ly; y++ {
			for x := 1; x <= coarse.lx; x++ {
				var s float64
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							s += fine.r[fine.idx(2*x-1+dx, 2*y-1+dy, 2*z-1+dz)]
						}
					}
				}
				coarse.v[coarse.idx(x, y, z)] = s / 2 // restriction with 4x operator rescale
			}
		}
	}
}

// prolongAdd adds the piecewise-constant prolongation of coarse.u into
// fine.u.
func prolongAdd(coarse, fine *level) {
	for z := 1; z <= coarse.lz; z++ {
		for y := 1; y <= coarse.ly; y++ {
			for x := 1; x <= coarse.lx; x++ {
				v := coarse.u[coarse.idx(x, y, z)]
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							fine.u[fine.idx(2*x-1+dx, 2*y-1+dy, 2*z-1+dz)] += v
						}
					}
				}
			}
		}
	}
}

// vcycle runs one V-cycle starting at level k (0 = finest), solving
// A u_k = v_k.
func (g *grid) vcycle(c *mpi.Comm, k int) {
	l := g.levels[k]
	if k == len(g.levels)-1 {
		for s := 0; s < 4; s++ {
			g.smooth(c, l, l.u, l.v)
		}
		return
	}
	g.smooth(c, l, l.u, l.v)
	g.smooth(c, l, l.u, l.v)
	g.residual(c, l, l.u, l.v, l.r)
	coarse := g.levels[k+1]
	restrictTo(l, coarse)
	for i := range coarse.u {
		coarse.u[i] = 0
	}
	g.vcycle(c, k+1)
	prolongAdd(coarse, l)
	g.smooth(c, l, l.u, l.v)
	g.smooth(c, l, l.u, l.v)
}

// norm2 returns the global L2 norm of the interior of f at level l.
func (g *grid) norm2(c *mpi.Comm, l *level, f []float64) float64 {
	var s float64
	for z := 1; z <= l.lz; z++ {
		for y := 1; y <= l.ly; y++ {
			for x := 1; x <= l.lx; x++ {
				v := f[l.idx(x, y, z)]
				s += v * v
			}
		}
	}
	buf := []float64{s}
	c.Allreduce(mpi.Sum, buf)
	n := float64(l.n)
	return math.Sqrt(buf[0] / (n * n * n))
}

// chargePoint is a point-value pair used in the zran3-style charge search.
type chargePoint struct {
	val        float64
	gx, gy, gz int
}

// setRHS fills the finest-level v following zran3: the NPB random field
// (plane-seeded for np-invariance) with +1 at its 10 largest and -1 at its
// 10 smallest points, 0 elsewhere.
func (g *grid) setRHS(c *mpi.Comm) {
	l := g.levels[0]
	n := l.n
	base := npb.NewLCG(314159265)
	var tops, bots []chargePoint
	vals := make([]float64, n) // one x-line at a time
	for zl := 1; zl <= l.lz; zl++ {
		gz := g.d.rz*l.lz + zl - 1
		for yl := 1; yl <= l.ly; yl++ {
			gy := g.d.ry*l.ly + yl - 1
			// Line (gz, gy) starts at offset (gz*n + gy)*n in the stream.
			stream := base.Jump(uint64(gz)*uint64(n)*uint64(n) + uint64(gy)*uint64(n))
			stream.Fill(vals)
			for xl := 1; xl <= l.lx; xl++ {
				gx := g.d.rx*l.lx + xl - 1
				v := vals[gx]
				tops = append(tops, chargePoint{v, gx, gy, gz})
				bots = append(bots, chargePoint{v, gx, gy, gz})
			}
			// Keep candidate lists short.
			if len(tops) > 1024 {
				tops = topK(tops, 10, true)
				bots = topK(bots, 10, false)
			}
		}
	}
	tops = topK(tops, 10, true)
	bots = topK(bots, 10, false)

	// Merge candidates globally: allgather 10 (val, x, y, z) quadruples.
	pack := func(pts []chargePoint) []float64 {
		out := make([]float64, 40)
		for i := 0; i < 10; i++ {
			if i < len(pts) {
				out[4*i] = pts[i].val
				out[4*i+1] = float64(pts[i].gx)
				out[4*i+2] = float64(pts[i].gy)
				out[4*i+3] = float64(pts[i].gz)
			} else {
				out[4*i] = math.NaN()
			}
		}
		return out
	}
	unpackAll := func(all []float64) []chargePoint {
		var pts []chargePoint
		for i := 0; i+3 < len(all); i += 4 {
			if math.IsNaN(all[i]) {
				continue
			}
			pts = append(pts, chargePoint{all[i], int(all[i+1]), int(all[i+2]), int(all[i+3])})
		}
		return pts
	}
	allTop := make([]float64, 40*c.Size())
	c.Allgather(pack(tops), allTop)
	allBot := make([]float64, 40*c.Size())
	c.Allgather(pack(bots), allBot)
	gTop := topK(unpackAll(allTop), 10, true)
	gBot := topK(unpackAll(allBot), 10, false)

	place := func(pts []chargePoint, val float64) {
		for _, p := range pts {
			if p.gx/l.lx == g.d.rx && p.gy/l.ly == g.d.ry && p.gz/l.lz == g.d.rz {
				l.v[l.idx(p.gx%l.lx+1, p.gy%l.ly+1, p.gz%l.lz+1)] = val
			}
		}
	}
	place(gTop, 1)
	place(gBot, -1)
}

// topK returns the k best points (largest when top, smallest otherwise),
// with deterministic position tie-breaking.
func topK(pts []chargePoint, k int, top bool) []chargePoint {
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.val != b.val {
			if top {
				return a.val > b.val
			}
			return a.val < b.val
		}
		if a.gz != b.gz {
			return a.gz < b.gz
		}
		if a.gy != b.gy {
			return a.gy < b.gy
		}
		return a.gx < b.gx
	})
	if len(pts) > k {
		pts = pts[:k]
	}
	return append([]chargePoint(nil), pts...)
}

// Run executes the MG benchmark. Every rank returns the same result.
func Run(c *mpi.Comm, class npb.Class) (*Result, error) {
	np := c.Size()
	if !npb.ValidProcs("mg", np) {
		return nil, fmt.Errorf("mg: %d processes (want a power of two)", np)
	}
	p := npb.MGParamsFor(class)
	g, err := newGrid(p, np, c.Rank())
	if err != nil {
		return nil, err
	}
	total, err := npb.TotalWork("mg", class)
	if err != nil {
		return nil, err
	}
	perCycle := total.Scale(1 / float64(np) / float64(p.Niter))

	g.setRHS(c)
	fine := g.levels[0]
	res := &Result{Class: class}
	res.InitNorm = g.norm2(c, fine, fine.v)

	for iter := 0; iter < p.Niter; iter++ {
		g.vcycle(c, 0)
		c.Compute(perCycle)
	}
	g.residual(c, fine, fine.u, fine.v, fine.r)
	res.RNorm = g.norm2(c, fine, fine.r)
	res.Time = c.Clock()

	refMu.RLock()
	ref, ok := rnormReference[class]
	refMu.RUnlock()
	if ok {
		if math.Abs(res.RNorm-ref) <= 1e-8*math.Abs(ref) {
			res.Verified = true
			res.VerifyMsg = "VERIFICATION SUCCESSFUL"
		} else {
			res.VerifyMsg = fmt.Sprintf("verification failed: rnorm=%v, want %v", res.RNorm, ref)
		}
	} else {
		res.VerifyMsg = "no reference norm for class"
	}
	return res, nil
}

// rnormReference holds self-generated golden residual norms. refMu
// guards the map: goldens may be registered while concurrent simulations
// verify against them.
var (
	refMu          sync.RWMutex
	rnormReference = map[npb.Class]float64{}
)

// SetReference records a golden residual norm for a class.
func SetReference(class npb.Class, rnorm float64) {
	refMu.Lock()
	rnormReference[class] = rnorm
	refMu.Unlock()
}

// Skeleton replays MG's communication pattern: per V-cycle, face
// exchanges at every level (message sizes shrinking 4x per level) and the
// norm all-reduce, with calibrated work.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	if !npb.ValidProcs("mg", np) {
		return fmt.Errorf("mg: %d processes (want a power of two)", np)
	}
	p := npb.MGParamsFor(class)
	total, err := npb.TotalWork("mg", class)
	if err != nil {
		return err
	}
	perCycle := total.Scale(1 / float64(np) / float64(p.Niter))
	d := newDecomp(np, c.Rank())

	type lvl struct{ n int }
	var levels []lvl
	for n := p.N; n >= 4; n >>= 1 {
		if n/d.px < 2 || n/d.py < 2 || n/d.pz < 2 {
			break
		}
		levels = append(levels, lvl{n})
	}

	exchangeLevel := func(n int) {
		faces := []struct {
			pdim, minus, plus, bytes int
		}{
			{d.px, d.rankAt(d.rx-1, d.ry, d.rz), d.rankAt(d.rx+1, d.ry, d.rz), 8 * (n / d.py) * (n / d.pz)},
			{d.py, d.rankAt(d.rx, d.ry-1, d.rz), d.rankAt(d.rx, d.ry+1, d.rz), 8 * (n / d.px) * (n / d.pz)},
			{d.pz, d.rankAt(d.rx, d.ry, d.rz-1), d.rankAt(d.rx, d.ry, d.rz+1), 8 * (n / d.px) * (n / d.py)},
		}
		for axis, f := range faces {
			if f.pdim == 1 {
				continue
			}
			c.SendrecvN(f.minus, tagFace+2*axis, f.bytes, f.plus, tagFace+2*axis)
			c.SendrecvN(f.plus, tagFace+2*axis+1, f.bytes, f.minus, tagFace+2*axis+1)
		}
	}

	for iter := 0; iter < p.Niter; iter++ {
		// Down sweep: every smoothing, residual and transfer operator
		// refreshes halos (comm3 after each stencil application in mg.f),
		// ~5 exchanges per level each way. 2*L+3 work shares per cycle.
		share := perCycle.Scale(1 / float64(2*len(levels)+3))
		for _, l := range levels {
			for e := 0; e < 5; e++ {
				exchangeLevel(l.n)
			}
			c.Compute(share)
		}
		for i := len(levels) - 1; i >= 0; i-- {
			for e := 0; e < 5; e++ {
				exchangeLevel(levels[i].n)
			}
			c.Compute(share)
		}
		c.Compute(share.Scale(3))
	}
	c.AllreduceN(8) // final norm
	return nil
}
