package mg

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func runMG(t *testing.T, np int, class npb.Class) *Result {
	t.Helper()
	var out *Result
	_, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
		r, err := Run(c, class)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		16: {4, 2, 2},
		32: {4, 4, 2},
		64: {4, 4, 4},
	}
	for np, want := range cases {
		px, py, pz := factor3(np)
		if px*py*pz != np {
			t.Fatalf("np=%d: %d*%d*%d != np", np, px, py, pz)
		}
		got := [3]int{px, py, pz}
		if got != want {
			t.Fatalf("np=%d: factors %v, want %v", np, got, want)
		}
	}
}

func TestResidualDecreases(t *testing.T) {
	r := runMG(t, 1, npb.ClassS)
	if r.InitNorm <= 0 {
		t.Fatalf("initial norm = %v", r.InitNorm)
	}
	if r.RNorm >= r.InitNorm {
		t.Fatalf("V-cycles did not reduce the residual: %v -> %v", r.InitNorm, r.RNorm)
	}
	if r.RNorm > 0.2*r.InitNorm {
		t.Fatalf("poor multigrid convergence: %v -> %v after %d cycles",
			r.InitNorm, r.RNorm, npb.MGParamsFor(npb.ClassS).Niter)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial := runMG(t, 1, npb.ClassS)
	for _, np := range []int{2, 4, 8} {
		par := runMG(t, np, npb.ClassS)
		if math.Abs(par.RNorm-serial.RNorm) > 1e-9*serial.InitNorm {
			t.Fatalf("np=%d: residual %v != serial %v", np, par.RNorm, serial.RNorm)
		}
		if math.Abs(par.InitNorm-serial.InitNorm) > 1e-9*serial.InitNorm {
			t.Fatalf("np=%d: initial norm %v != serial %v", np, par.InitNorm, serial.InitNorm)
		}
	}
}

func TestGoldenVerification(t *testing.T) {
	serial := runMG(t, 1, npb.ClassS)
	SetReference(npb.ClassS, serial.RNorm)
	again := runMG(t, 8, npb.ClassS)
	if !again.Verified {
		t.Fatalf("golden verification failed: %s", again.VerifyMsg)
	}
	delete(rnormReference, npb.ClassS)
}

func TestRejectsBadNP(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 6, func(c *mpi.Comm) error {
		_, err := Run(c, npb.ClassS)
		return err
	})
	if err == nil {
		t.Fatal("np=6 should be rejected")
	}
}

func TestSkeletonCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 60 || res.Time > 85 {
		t.Fatalf("MG.B.1 on DCC = %.1f s, want ~72", res.Time)
	}
}

func TestSkeletonVayuScalesBest(t *testing.T) {
	st := func(p *platform.Platform, np int) float64 {
		res, err := mpi.RunOn(p, np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	v := st(platform.Vayu(), 1) / st(platform.Vayu(), 64)
	d := st(platform.DCC(), 1) / st(platform.DCC(), 64)
	if v <= d {
		t.Fatalf("MG speedup at 64: vayu=%.1f dcc=%.1f; Vayu must lead", v, d)
	}
	if v < 20 {
		t.Fatalf("Vayu MG speedup at 64 = %.1f, want strong scaling", v)
	}
}
