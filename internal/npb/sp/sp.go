// Package sp implements the communication skeleton of the NPB SP
// pseudo-application: an ADI scheme with scalar-pentadiagonal line solves
// along each dimension per timestep over a square process grid. SP runs
// twice as many timesteps as BT with leaner per-stage messages, making it
// the longest-running class-B benchmark and relatively more
// latency-sensitive.
//
// SP is skeleton-only in this reproduction; see DESIGN.md and package lu.
package sp

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/bt"
)

const (
	tagFwd  = 51
	tagHalo = 58
)

// Skeleton replays SP's per-timestep structure: an RHS halo refresh and
// three pentadiagonal sweeps with pipelined substitution chains.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	q, err := bt.SquareSide(np)
	if err != nil {
		return fmt.Errorf("sp: %w", err)
	}
	p := npb.SPParamsFor(class)
	total, werr := npb.TotalWork("sp", class)
	if werr != nil {
		return werr
	}
	perIter := total.Scale(1 / float64(np) / float64(p.Niter))

	rx, ry := c.Rank()%q, c.Rank()/q
	cell := p.N / q
	if cell < 1 {
		cell = 1
	}
	// Pentadiagonal line solves pass two scalar planes per face.
	faceBytes := 2 * 8 * cell * cell
	haloBytes := 5 * 8 * cell * cell

	rowPrev := ry*q + (rx-1+q)%q
	rowNext := ry*q + (rx+1)%q
	colPrev := ((ry-1+q)%q)*q + rx
	colNext := ((ry+1)%q)*q + rx

	rhsWork := perIter.Scale(0.25)
	sweepWork := perIter.Scale(0.75 / 3)

	for iter := 0; iter < p.Niter; iter++ {
		east := ry*q + (rx+1)%q
		west := ry*q + (rx-1+q)%q
		south := ((ry+1)%q)*q + rx
		north := ((ry-1+q)%q)*q + rx
		if q > 1 {
			c.SendrecvN(east, tagHalo, haloBytes, west, tagHalo)
			c.SendrecvN(west, tagHalo+1, haloBytes, east, tagHalo+1)
			c.SendrecvN(south, tagHalo+2, haloBytes, north, tagHalo+2)
			c.SendrecvN(north, tagHalo+3, haloBytes, south, tagHalo+3)
		}
		c.Compute(rhsWork)

		bt.SweepChain(c, tagFwd, q, rowPrev, rowNext, faceBytes, sweepWork)
		bt.SweepChain(c, tagFwd+10, q, colPrev, colNext, faceBytes, sweepWork)
		bt.SweepChain(c, tagFwd+20, q, rowPrev, rowNext, faceBytes, sweepWork)
	}
	c.AllreduceN(40)
	return nil
}
