package sp

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func TestSerialCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 1790 || res.Time > 2110 {
		t.Fatalf("SP.B.1 on DCC = %.0f s, want ~1936.1", res.Time)
	}
}

func TestRejectsNonSquare(t *testing.T) {
	_, err := mpi.RunOn(platform.Vayu(), 8, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassS)
	})
	if err == nil {
		t.Fatal("np=8 should be rejected (square counts only)")
	}
}

func TestSPMoreLatencySensitiveThanBT(t *testing.T) {
	// SP runs twice as many timesteps with leaner messages: on the
	// high-latency DCC network it should spend a larger *fraction* of its
	// time communicating per unit of work than... at minimum it must
	// remain slower than BT relative to its serial time at scale.
	st := func(class npb.Class, np int) float64 {
		res, err := mpi.RunOn(platform.DCC(), np, func(c *mpi.Comm) error {
			return Skeleton(c, class)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1 := st(npb.ClassB, 1)
	t36 := st(npb.ClassB, 36)
	eff := t1 / t36 / 36
	if eff > 0.85 {
		t.Fatalf("SP.B.36 efficiency on DCC = %.2f, should be visibly degraded", eff)
	}
	if eff < 0.1 {
		t.Fatalf("SP.B.36 efficiency on DCC = %.2f, implausibly low", eff)
	}
}

func TestVayuBeatsDCCAt64(t *testing.T) {
	at := func(p *platform.Platform) float64 {
		res, err := mpi.RunOn(p, 64, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if at(platform.Vayu()) >= at(platform.DCC()) {
		t.Fatal("SP.B.64 must be faster on Vayu")
	}
}
