package npb

import (
	"testing"
	"testing/quick"
)

func TestLCGMatchesDefinition(t *testing.T) {
	// First few states of x_{k+1} = 5^13 x_k mod 2^46 from x_0 = 314159265.
	g := NewLCG(314159265)
	x := uint64(314159265)
	for i := 0; i < 100; i++ {
		x = (x * LCGMultiplier) & (1<<46 - 1)
		v := g.Next()
		if g.Seed() != x {
			t.Fatalf("state diverged at step %d: %d vs %d", i, g.Seed(), x)
		}
		if v <= 0 || v >= 1 {
			t.Fatalf("variate %v out of (0,1)", v)
		}
	}
}

func TestJumpEquivalence(t *testing.T) {
	// Jump(n) must equal n sequential steps.
	prop := func(nRaw uint16, seedRaw uint32) bool {
		n := uint64(nRaw % 5000)
		seed := uint64(seedRaw) | 1
		a := NewLCG(seed)
		for i := uint64(0); i < n; i++ {
			a.Next()
		}
		b := NewLCG(seed).Jump(n)
		return a.Seed() == b.Seed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJumpComposition(t *testing.T) {
	g := NewLCG(EPSeed)
	if g.Jump(1000).Jump(234).Seed() != g.Jump(1234).Seed() {
		t.Fatal("jumps do not compose")
	}
}

func TestPowMulIdentity(t *testing.T) {
	if PowMul(0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if PowMul(1) != LCGMultiplier {
		t.Fatal("a^1 != a")
	}
}

func TestLCGUniformity(t *testing.T) {
	g := NewLCG(EPSeed)
	var sum float64
	const n = 1 << 20
	for i := 0; i < n; i++ {
		sum += g.Next()
	}
	mean := sum / n
	if mean < 0.498 || mean > 0.502 {
		t.Fatalf("LCG mean = %v, want ~0.5", mean)
	}
}

func TestParseClass(t *testing.T) {
	for _, s := range []string{"S", "W", "A", "B", "C"} {
		c, err := ParseClass(s)
		if err != nil || c.String() != s {
			t.Fatalf("ParseClass(%q) = %v, %v", s, c, err)
		}
	}
	for _, s := range []string{"", "D", "sb", "b"} {
		if _, err := ParseClass(s); err == nil {
			t.Fatalf("ParseClass(%q) should fail", s)
		}
	}
}

func TestValidProcs(t *testing.T) {
	cases := []struct {
		name string
		np   int
		ok   bool
	}{
		{"ep", 3, true}, {"ep", 64, true},
		{"cg", 2, true}, {"cg", 3, false}, {"cg", 64, true},
		{"ft", 16, true}, {"ft", 24, false},
		{"bt", 1, true}, {"bt", 4, true}, {"bt", 36, true}, {"bt", 8, false},
		{"sp", 49, true}, {"sp", 50, false},
		{"lu", 32, true}, {"lu", 0, false},
		{"nosuch", 4, false},
	}
	for _, c := range cases {
		if got := ValidProcs(c.name, c.np); got != c.ok {
			t.Errorf("ValidProcs(%s, %d) = %v, want %v", c.name, c.np, got, c.ok)
		}
	}
}

func TestProcCounts(t *testing.T) {
	got := ProcCounts("bt", 64)
	want := []int{1, 4, 9, 16, 25, 36, 49, 64}
	if len(got) != len(want) {
		t.Fatalf("bt counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bt counts = %v, want %v", got, want)
		}
	}
	cg := ProcCounts("cg", 64)
	if len(cg) != 7 || cg[0] != 1 || cg[6] != 64 {
		t.Fatalf("cg counts = %v", cg)
	}
}

func TestTotalWorkCalibration(t *testing.T) {
	// Class B work divided by the DCC serial rates must reproduce the
	// paper's Figure 3 DCC walltimes within a few percent.
	wants := map[string]float64{
		"bt": 1696.9, "ep": 141.5, "cg": 244.9, "ft": 327.6,
		"is": 8.6, "lu": 1514.7, "mg": 72.0, "sp": 1936.1,
	}
	for name, want := range wants {
		w, err := TotalWork(name, ClassB)
		if err != nil {
			t.Fatal(err)
		}
		tFlop := w.Flops / dccFlopRate
		tMem := w.Bytes / dccMemRate
		got := tFlop
		if tMem > got {
			got = tMem
		}
		if got < 0.95*want || got > 1.05*want {
			t.Errorf("%s: modelled DCC serial time %.1f s, want ~%.1f", name, got, want)
		}
	}
}

func TestTotalWorkErrors(t *testing.T) {
	if _, err := TotalWork("zz", ClassB); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestClassScalesMonotone(t *testing.T) {
	for _, name := range Names() {
		var prev float64
		for i, class := range Classes() {
			w, err := TotalWork(name, class)
			if err != nil {
				t.Fatal(err)
			}
			cur := w.Flops + w.Bytes
			if i > 0 && cur <= prev {
				t.Errorf("%s: work not increasing from class %s", name, class)
			}
			prev = cur
		}
	}
}

func TestParamsTables(t *testing.T) {
	if CGParamsFor(ClassB).NA != 75000 {
		t.Error("CG.B na wrong")
	}
	if p := FTParamsFor(ClassB); p.NX != 512 || p.NY != 256 || p.NZ != 256 || p.Niter != 20 {
		t.Errorf("FT.B params = %+v", p)
	}
	if ISParamsFor(ClassB).TotalKeys != 1<<25 {
		t.Error("IS.B keys wrong")
	}
	if MGParamsFor(ClassB).N != 256 {
		t.Error("MG.B grid wrong")
	}
	if LUParamsFor(ClassB).N != 102 || BTParamsFor(ClassB).N != 102 || SPParamsFor(ClassB).N != 102 {
		t.Error("LU/BT/SP.B grids wrong")
	}
	if EPParamsFor(ClassB) != 30 {
		t.Error("EP.B m wrong")
	}
}
