package ep

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func runEP(t *testing.T, np int, class npb.Class) *Result {
	t.Helper()
	var out *Result
	_, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
		r, err := Run(c, class)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestClassSVerifies(t *testing.T) {
	r := runEP(t, 1, npb.ClassS)
	if !r.Verified {
		t.Fatalf("class S failed verification: %s", r.VerifyMsg)
	}
}

func TestClassWVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("class W in -short mode")
	}
	r := runEP(t, 2, npb.ClassW)
	if !r.Verified {
		t.Fatalf("class W failed verification: %s", r.VerifyMsg)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial := runEP(t, 1, npb.ClassS)
	for _, np := range []int{2, 4, 8} {
		par := runEP(t, np, npb.ClassS)
		if !par.Verified {
			t.Fatalf("np=%d failed verification: %s", np, par.VerifyMsg)
		}
		// Counts are integers: must agree exactly regardless of summation
		// order.
		if par.Counts != serial.Counts {
			t.Fatalf("np=%d annulus counts differ: %v vs %v", np, par.Counts, serial.Counts)
		}
		if par.Pairs != serial.Pairs {
			t.Fatalf("np=%d accepted pairs %v != %v", np, par.Pairs, serial.Pairs)
		}
	}
}

func TestGaussianAcceptanceRate(t *testing.T) {
	// The polar method accepts pi/4 of pairs.
	r := runEP(t, 1, npb.ClassS)
	total := float64(int(1) << npb.EPParamsFor(npb.ClassS))
	rate := r.Pairs / total
	if rate < 0.77 || rate > 0.80 {
		t.Fatalf("acceptance rate = %v, want ~0.785", rate)
	}
}

func TestTooManyRanks(t *testing.T) {
	// Class S has 2^8 batches; 512 ranks must be rejected (detected before
	// any communication, on every rank).
	_, err := mpi.RunOn(platform.Vayu(), 4, func(c *mpi.Comm) error {
		_, err := Run(c, npb.ClassS)
		return err
	})
	if err != nil {
		t.Fatalf("4 ranks should be fine: %v", err)
	}
}

func TestSkeletonRuns(t *testing.T) {
	for _, np := range []int{1, 2, 8, 16} {
		res, err := mpi.RunOn(platform.DCC(), np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if res.Time <= 0 {
			t.Fatalf("np=%d: zero virtual time", np)
		}
	}
}

func TestSkeletonSerialTimeMatchesCalibration(t *testing.T) {
	// Class B serial on DCC should land near the measured 141.5 s.
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 120 || res.Time > 165 {
		t.Fatalf("EP.B.1 on DCC = %.1f s, want ~141.5", res.Time)
	}
}

func TestSkeletonScalesNearLinearly(t *testing.T) {
	timeAt := func(np int) float64 {
		res, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1 := timeAt(1)
	t32 := timeAt(32)
	speedup := t1 / t32
	if speedup < 24 {
		t.Fatalf("EP speedup at 32 ranks = %.1f, want near-linear (>24)", speedup)
	}
}
