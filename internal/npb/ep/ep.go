// Package ep implements the NPB EP (embarrassingly parallel) kernel: 2^M
// pairs of Gaussian deviates generated with the Marsaglia polar method
// from the NPB linear congruential stream, with per-annulus counts and the
// coordinate sums verified against the reference values of the Fortran
// suite.
package ep

import (
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/npb"
)

const (
	mk = 16      // log2 of pairs per batch
	nk = 1 << mk // pairs per batch
	nq = 10      // annulus count bins
)

// Result holds the kernel outputs.
type Result struct {
	Class     npb.Class
	Sx, Sy    float64
	Counts    [nq]float64 // Gaussian pairs per annulus
	Pairs     float64     // accepted pairs
	Verified  bool
	VerifyMsg string
	Time      float64 // virtual seconds (job wall at the final rank)
}

// reference sums from the NPB 3.3 verification tables.
var reference = map[npb.Class][2]float64{
	npb.ClassS: {-3.247834652034740e3, -6.958407078382297e3},
	npb.ClassW: {-2.863319731645753e3, -6.320053679109499e3},
	npb.ClassA: {-4.295875165629892e3, -1.580732573678431e4},
	npb.ClassB: {4.033815542441498e4, -2.660669192809235e4},
	npb.ClassC: {4.764367927995374e4, -8.084072988043731e4},
}

// Run executes EP at the given class on the communicator. Every rank
// returns the same verified result.
func Run(c *mpi.Comm, class npb.Class) (*Result, error) {
	m := npb.EPParamsFor(class)
	if m <= mk {
		return nil, fmt.Errorf("ep: class %s too small for batched run", class)
	}
	nn := 1 << (m - mk) // batches
	np := c.Size()
	if np > nn {
		return nil, fmt.Errorf("ep: %d ranks exceed %d batches for class %s", np, nn, class)
	}

	total, err := npb.TotalWork("ep", class)
	if err != nil {
		return nil, err
	}
	perBatch := total.Scale(1 / float64(nn))

	var sx, sy, pairs float64
	var q [nq]float64
	x := make([]float64, 2*nk)

	base := npb.NewLCG(npb.EPSeed)
	for g := c.Rank(); g < nn; g += np {
		// Jump the stream to this batch's subsequence and generate it.
		stream := base.Jump(uint64(g) * 2 * nk)
		stream.Fill(x)
		for i := 0; i < nk; i++ {
			x1 := 2*x[2*i] - 1
			x2 := 2*x[2*i+1] - 1
			t := x1*x1 + x2*x2
			if t <= 1 {
				f := math.Sqrt(-2 * math.Log(t) / t)
				t3 := x1 * f
				t4 := x2 * f
				l := int(math.Max(math.Abs(t3), math.Abs(t4)))
				if l < nq {
					q[l]++
				}
				sx += t3
				sy += t4
				pairs++
			}
		}
		c.Compute(perBatch)
	}

	// Combine: two sums, the annulus counts and the accepted-pair count —
	// the same three all-reduces as ep.f.
	sums := []float64{sx, sy}
	c.Allreduce(mpi.Sum, sums)
	counts := append([]float64(nil), q[:]...)
	c.Allreduce(mpi.Sum, counts)
	cnt := []float64{pairs}
	c.Allreduce(mpi.Sum, cnt)

	res := &Result{Class: class, Sx: sums[0], Sy: sums[1], Pairs: cnt[0], Time: c.Clock()}
	copy(res.Counts[:], counts)
	ref, ok := reference[class]
	if !ok {
		res.VerifyMsg = "no reference values for class"
		return res, nil
	}
	errX := math.Abs((res.Sx - ref[0]) / ref[0])
	errY := math.Abs((res.Sy - ref[1]) / ref[1])
	if errX <= 1e-8 && errY <= 1e-8 {
		res.Verified = true
		res.VerifyMsg = "VERIFICATION SUCCESSFUL"
	} else {
		res.VerifyMsg = fmt.Sprintf("verification failed: sx=%v (want %v), sy=%v (want %v)",
			res.Sx, ref[0], res.Sy, ref[1])
	}
	return res, nil
}

// Skeleton replays EP's communication pattern (three small all-reduces
// after an embarrassingly parallel phase) and charges the calibrated
// class work without generating numbers. The compute phase is charged in
// batch-sized chunks so platform jitter accumulates realistically.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	m := npb.EPParamsFor(class)
	nn := 1 << (m - mk)
	np := c.Size()
	total, err := npb.TotalWork("ep", class)
	if err != nil {
		return err
	}
	perBatch := total.Scale(1 / float64(nn))
	myBatches := 0
	for g := c.Rank(); g < nn; g += np {
		myBatches++
	}
	// Charge in at most 64 chunks to keep skeletons cheap at class B.
	chunks := myBatches
	if chunks > 64 {
		chunks = 64
	}
	if chunks > 0 {
		per := perBatch.Scale(float64(myBatches) / float64(chunks))
		for i := 0; i < chunks; i++ {
			c.Compute(per)
		}
	}
	c.AllreduceN(16)     // sx, sy
	c.AllreduceN(8 * nq) // annulus counts
	c.AllreduceN(8)      // accepted pairs
	return nil
}
