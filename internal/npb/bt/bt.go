// Package bt implements the communication skeleton of the NPB BT
// pseudo-application: an ADI scheme solving block-tridiagonal systems
// along each spatial dimension per timestep over a square process grid,
// with forward-substitution and back-substitution chains that pipeline
// face-sized messages — the heaviest benchmark in the suite (the longest
// class-B serial runtime after SP).
//
// BT is skeleton-only in this reproduction; see DESIGN.md and package lu.
package bt

import (
	"fmt"
	"math"

	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/npb"
)

const (
	tagFwd  = 41
	tagBack = 44
	tagHalo = 47
)

// SquareSide returns q for np = q*q, or an error.
func SquareSide(np int) (int, error) {
	q := int(math.Round(math.Sqrt(float64(np))))
	if q*q != np {
		return 0, fmt.Errorf("need a square process count, got %d", np)
	}
	return q, nil
}

// SweepChain runs one forward+backward substitution sweep along a ring of
// q ranks, the multipartition schedule of bt.f: each rank owns one cell on
// every diagonal, so during each of the q phases every rank computes a
// cell's share and passes a face to the next rank — no rank idles waiting
// for a pipeline to fill. `work` is the whole per-direction compute
// charge, split across phases. Shared with package sp.
func SweepChain(c *mpi.Comm, tag, q, prevRing, nextRing, msgBytes int, work cpumodel.Work) {
	perPhase := work.Scale(1 / float64(2*q))
	// Forward substitution phases.
	for ph := 0; ph < q; ph++ {
		c.Compute(perPhase)
		if q > 1 {
			c.SendN(nextRing, tag, msgBytes)
			c.RecvN(prevRing, tag)
		}
	}
	// Back substitution phases (messages flow the other way).
	for ph := 0; ph < q; ph++ {
		c.Compute(perPhase)
		if q > 1 {
			c.SendN(prevRing, tag+1, msgBytes)
			c.RecvN(nextRing, tag+1)
		}
	}
}

// Skeleton replays BT's per-timestep structure: an RHS halo refresh and
// three ADI sweeps (x, y, z) with pipelined substitution chains.
func Skeleton(c *mpi.Comm, class npb.Class) error {
	np := c.Size()
	q, err := SquareSide(np)
	if err != nil {
		return fmt.Errorf("bt: %w", err)
	}
	p := npb.BTParamsFor(class)
	total, werr := npb.TotalWork("bt", class)
	if werr != nil {
		return werr
	}
	perIter := total.Scale(1 / float64(np) / float64(p.Niter))

	rx, ry := c.Rank()%q, c.Rank()/q
	cell := p.N / q
	if cell < 1 {
		cell = 1
	}
	faceBytes := 5 * 8 * cell * cell // 5 solution components per face cell

	// Ring neighbours along the grid row and column (the multipartition's
	// cell hand-off order).
	rowPrev := ry*q + (rx-1+q)%q
	rowNext := ry*q + (rx+1)%q
	colPrev := ((ry-1+q)%q)*q + rx
	colNext := ((ry+1)%q)*q + rx

	// Per-iteration budget: 20% RHS, 80% split over three sweeps.
	rhsWork := perIter.Scale(0.2)
	sweepWork := perIter.Scale(0.8 / 3)

	for iter := 0; iter < p.Niter; iter++ {
		// RHS halo exchange with all four neighbours (periodic in the
		// multipartition layout).
		east := ry*q + (rx+1)%q
		west := ry*q + (rx-1+q)%q
		south := ((ry+1)%q)*q + rx
		north := ((ry-1+q)%q)*q + rx
		if q > 1 {
			c.SendrecvN(east, tagHalo, faceBytes, west, tagHalo)
			c.SendrecvN(west, tagHalo+1, faceBytes, east, tagHalo+1)
			c.SendrecvN(south, tagHalo+2, faceBytes, north, tagHalo+2)
			c.SendrecvN(north, tagHalo+3, faceBytes, south, tagHalo+3)
		}
		c.Compute(rhsWork)

		// x-solve along grid rows, y-solve along columns, z-solve along
		// rows again (the multipartition's diagonal wrap).
		SweepChain(c, tagFwd, q, rowPrev, rowNext, faceBytes, sweepWork)
		SweepChain(c, tagFwd+10, q, colPrev, colNext, faceBytes, sweepWork)
		SweepChain(c, tagFwd+20, q, rowPrev, rowNext, faceBytes, sweepWork)
	}
	c.AllreduceN(40) // final residual norms
	return nil
}
