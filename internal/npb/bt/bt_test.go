package bt

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func TestSquareSide(t *testing.T) {
	for np, q := range map[int]int{1: 1, 4: 2, 9: 3, 16: 4, 25: 5, 36: 6, 49: 7, 64: 8} {
		got, err := SquareSide(np)
		if err != nil || got != q {
			t.Errorf("SquareSide(%d) = %d, %v; want %d", np, got, err, q)
		}
	}
	for _, np := range []int{2, 8, 32, 50} {
		if _, err := SquareSide(np); err == nil {
			t.Errorf("SquareSide(%d) should fail", np)
		}
	}
}

func TestSerialCalibration(t *testing.T) {
	res, err := mpi.RunOn(platform.DCC(), 1, func(c *mpi.Comm) error {
		return Skeleton(c, npb.ClassB)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 1570 || res.Time > 1850 {
		t.Fatalf("BT.B.1 on DCC = %.0f s, want ~1696.9", res.Time)
	}
}

func TestMultipartitionKeepsRanksBusy(t *testing.T) {
	// Unlike a naive pipeline, the multipartition schedule should scale
	// well on the low-latency platform: BT.B.36 on Vayu above 70%
	// efficiency.
	st := func(np int) float64 {
		res, err := mpi.RunOn(platform.Vayu(), np, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	eff := st(1) / st(36) / 36
	if eff < 0.7 {
		t.Fatalf("BT.B.36 efficiency on Vayu = %.2f, want >= 0.7", eff)
	}
}

func TestLatencySensitiveOnDCC(t *testing.T) {
	st := func(p *platform.Platform) (time, comm float64) {
		res, err := mpi.RunOn(p, 36, func(c *mpi.Comm) error {
			return Skeleton(c, npb.ClassB)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time, res.CommTimes.Sum() / res.RankTimes.Sum()
	}
	_, dccComm := st(platform.DCC())
	_, vayuComm := st(platform.Vayu())
	if dccComm < 5*vayuComm {
		t.Fatalf("BT comm fraction on DCC (%.3f) should dwarf Vayu's (%.3f)", dccComm, vayuComm)
	}
}
