package suite

import (
	"fmt"
	"sync"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/cg"
	"repro/internal/npb/ft"
	"repro/internal/npb/mg"
	"repro/internal/platform"
)

// Self-golden management. EP verifies against the official NPB reference
// sums and IS against intrinsic invariants (order, conservation); CG, FT
// and MG use substituted problem generators (see DESIGN.md), so their
// references are trusted serial runs of this implementation. A parallel
// run then verifies bit-for-bit decomposition independence against the
// serial result.

var goldensMu sync.Mutex
var goldensDone = map[npb.Class]bool{}

// RegisterGoldens runs CG, FT and MG serially at the given class on the
// noise-free reference platform and records their outputs as verification
// references. Idempotent per class. Classes A and above take real compute
// time; S and W are near-instant.
func RegisterGoldens(class npb.Class) error {
	goldensMu.Lock()
	defer goldensMu.Unlock()
	if goldensDone[class] {
		return nil
	}
	p := platform.Vayu()

	// CG.
	if _, err := mpi.RunOn(p, 1, func(c *mpi.Comm) error {
		r, err := cg.Run(c, class)
		if err != nil {
			return err
		}
		cg.SetReference(class, r.Zeta)
		return nil
	}); err != nil {
		return fmt.Errorf("suite: cg golden: %w", err)
	}

	// FT.
	if _, err := mpi.RunOn(p, 1, func(c *mpi.Comm) error {
		r, err := ft.Run(c, class)
		if err != nil {
			return err
		}
		ft.SetReference(class, r.Checksums)
		return nil
	}); err != nil {
		return fmt.Errorf("suite: ft golden: %w", err)
	}

	// MG.
	if _, err := mpi.RunOn(p, 1, func(c *mpi.Comm) error {
		r, err := mg.Run(c, class)
		if err != nil {
			return err
		}
		mg.SetReference(class, r.RNorm)
		return nil
	}); err != nil {
		return fmt.Errorf("suite: mg golden: %w", err)
	}

	goldensDone[class] = true
	return nil
}
