package suite

import (
	"repro/internal/cluster"
	"testing"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
)

func skelTime(t *testing.T, name string, p *platform.Platform, np int, class npb.Class) float64 {
	t.Helper()
	fn, err := Skeleton(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.RunOn(p, np, func(c *mpi.Comm) error { return fn(c, class) })
	if err != nil {
		t.Fatalf("%s np=%d on %s: %v", name, np, p.Name, err)
	}
	return res.Time
}

func TestAllSkeletonsRunAt64(t *testing.T) {
	for _, name := range npb.Names() {
		counts := npb.ProcCounts(name, 64)
		np := counts[len(counts)-1]
		for _, p := range platform.All() {
			if d := skelTime(t, name, p, np, npb.ClassB); d <= 0 {
				t.Errorf("%s.B.%d on %s: non-positive time %v", name, np, p.Name, d)
			}
		}
	}
}

func TestSerialCalibrationAllKernels(t *testing.T) {
	// Figure 3: class-B serial DCC walltimes.
	wants := map[string]float64{
		"bt": 1696.9, "ep": 141.5, "cg": 244.9, "ft": 327.6,
		"is": 8.6, "lu": 1514.7, "mg": 72.0, "sp": 1936.1,
	}
	for name, want := range wants {
		got := skelTime(t, name, platform.DCC(), 1, npb.ClassB)
		if got < 0.85*want || got > 1.20*want {
			t.Errorf("%s.B.1 on DCC = %.1f s, want ~%.1f", name, got, want)
		}
	}
}

func TestFig3NormalisationShape(t *testing.T) {
	// Figure 3: Vayu and EC2 serial times normalised to DCC sit well below
	// 1 (faster CPU), around the 2.27/2.93 clock ratio.
	for _, name := range npb.Names() {
		d := skelTime(t, name, platform.DCC(), 1, npb.ClassB)
		v := skelTime(t, name, platform.Vayu(), 1, npb.ClassB)
		e := skelTime(t, name, platform.EC2(), 1, npb.ClassB)
		if rv := v / d; rv < 0.6 || rv > 0.95 {
			t.Errorf("%s: Vayu/DCC serial ratio = %.2f, want ~0.77", name, rv)
		}
		if re := e / d; re < 0.6 || re > 1.0 {
			t.Errorf("%s: EC2/DCC serial ratio = %.2f, want ~0.8", name, re)
		}
	}
}

func TestLUPipelineScalesOnVayu(t *testing.T) {
	t1 := skelTime(t, "lu", platform.Vayu(), 1, npb.ClassB)
	t32 := skelTime(t, "lu", platform.Vayu(), 32, npb.ClassB)
	if sp := t1 / t32; sp < 16 {
		t.Fatalf("LU speedup at 32 on Vayu = %.1f, want decent pipeline scaling", sp)
	}
}

func TestBTSPSquareCountsOnly(t *testing.T) {
	for _, name := range []string{"bt", "sp"} {
		fn, err := Skeleton(name)
		if err != nil {
			t.Fatal(err)
		}
		_, err = mpi.RunOn(platform.Vayu(), 8, func(c *mpi.Comm) error { return fn(c, npb.ClassS) })
		if err == nil {
			t.Errorf("%s with np=8 should fail (square counts only)", name)
		}
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := Skeleton("zz"); err == nil {
		t.Fatal("unknown kernel should error")
	}
}

func TestFullRunnersVerify(t *testing.T) {
	for name, fn := range Fulls {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			var out *FullResult
			_, err := mpi.RunOn(platform.Vayu(), 4, func(c *mpi.Comm) error {
				r, err := fn(c, npb.ClassS)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					out = r
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// EP has official references and must verify; the others carry
			// self-goldens that are registered by the harness — here they
			// must at least produce a result and a message.
			if name == "ep" && !out.Verified {
				t.Fatalf("EP class S must verify: %s", out.VerifyMsg)
			}
			if out.VerifyMsg == "" || out.Time <= 0 {
				t.Fatalf("incomplete result: %+v", out)
			}
		})
	}
}

func TestDCCDipAt16MatchesPaper(t *testing.T) {
	// The paper: "Particularly for DCC, we see performance dropping from 8
	// processes to 16 processes" (first inter-node step) for the
	// communication-heavy kernels. Efficiency must drop sharply at 16.
	for _, name := range []string{"ft", "mg", "is"} {
		t8 := skelTime(t, name, platform.DCC(), 8, npb.ClassB)
		t16 := skelTime(t, name, platform.DCC(), 16, npb.ClassB)
		if t16 < t8*0.75 {
			t.Errorf("%s on DCC: t16=%.1f vs t8=%.1f — expected little or negative gain crossing nodes", name, t16, t8)
		}
	}
}

func TestEC2DipAt16MatchesPaper(t *testing.T) {
	// "the EC2 cluster drops in performance at 16 cores rather than the
	// expected 32" — HyperThreading oversubscription on one node.
	for _, name := range []string{"ft", "cg"} {
		t8 := skelTime(t, name, platform.EC2(), 8, npb.ClassB)
		t16 := skelTime(t, name, platform.EC2(), 16, npb.ClassB)
		eff := t8 / t16 / 2 // efficiency of the 8->16 doubling
		if eff > 0.75 {
			t.Errorf("%s on EC2: 8->16 scaling efficiency %.2f, want depressed (<0.75)", name, eff)
		}
	}
}

// TestNoLeakedMessages verifies the conservation invariant: after every
// kernel's skeleton completes, no sent message remains unmatched.
func TestNoLeakedMessages(t *testing.T) {
	for _, name := range npb.Names() {
		counts := npb.ProcCounts(name, 16)
		np := counts[len(counts)-1]
		fn, err := Skeleton(name)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cluster.Place(platform.DCC(), cluster.Spec{NP: np})
		if err != nil {
			t.Fatal(err)
		}
		w, err := mpi.NewWorld(platform.DCC(), pl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(func(c *mpi.Comm) error { return fn(c, npb.ClassA) }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p := w.Pending(); p != 0 {
			t.Errorf("%s.%d: %d unmatched messages leaked", name, np, p)
		}
	}
}

// TestSkeletonsDeterministic verifies bit-reproducibility across repeated
// runs for every kernel.
func TestSkeletonsDeterministic(t *testing.T) {
	for _, name := range npb.Names() {
		counts := npb.ProcCounts(name, 16)
		np := counts[len(counts)-1]
		a := skelTime(t, name, platform.EC2(), np, npb.ClassA)
		b := skelTime(t, name, platform.EC2(), np, npb.ClassA)
		if a != b {
			t.Errorf("%s.%d: run times differ across identical runs: %v vs %v", name, np, a, b)
		}
	}
}

func TestRegisterGoldensEnablesVerification(t *testing.T) {
	if err := RegisterGoldens(npb.ClassS); err != nil {
		t.Fatal(err)
	}
	// Parallel runs of the golden-verified kernels must now verify.
	for _, name := range []string{"cg", "ft", "mg"} {
		fn := Fulls[name]
		var out *FullResult
		_, err := mpi.RunOn(platform.Vayu(), 4, func(c *mpi.Comm) error {
			r, err := fn(c, npb.ClassS)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = r
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Verified {
			t.Errorf("%s class S should verify against its serial golden: %s", name, out.VerifyMsg)
		}
	}
	// Idempotent.
	if err := RegisterGoldens(npb.ClassS); err != nil {
		t.Fatal(err)
	}
}
