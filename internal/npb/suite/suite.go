// Package suite provides a registry over the eight NPB kernels so the
// benchmark harness can run any of them uniformly: skeleton runners for
// all eight (used at class B) and full-math runners for the five
// implemented kernels (used for verification at the small classes).
package suite

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/bt"
	"repro/internal/npb/cg"
	"repro/internal/npb/ep"
	"repro/internal/npb/ft"
	"repro/internal/npb/is"
	"repro/internal/npb/lu"
	"repro/internal/npb/mg"
	"repro/internal/npb/sp"
)

// SkeletonFunc replays a kernel's class communication pattern.
type SkeletonFunc func(c *mpi.Comm, class npb.Class) error

// Skeletons maps kernel names to their pattern replays.
var Skeletons = map[string]SkeletonFunc{
	"ep": ep.Skeleton,
	"cg": cg.Skeleton,
	"ft": ft.Skeleton,
	"is": is.Skeleton,
	"mg": mg.Skeleton,
	"lu": lu.Skeleton,
	"bt": bt.Skeleton,
	"sp": sp.Skeleton,
}

// FullResult is the common view of a full-math kernel run.
type FullResult struct {
	Kernel    string
	Class     npb.Class
	Verified  bool
	VerifyMsg string
	Time      float64
}

// FullFunc runs a kernel's full-math implementation.
type FullFunc func(c *mpi.Comm, class npb.Class) (*FullResult, error)

// Fulls maps kernel names to full-math runners (EP, CG, FT, IS, MG; the
// pseudo-applications LU/BT/SP are skeleton-only — see DESIGN.md).
var Fulls = map[string]FullFunc{
	"ep": func(c *mpi.Comm, class npb.Class) (*FullResult, error) {
		r, err := ep.Run(c, class)
		if err != nil {
			return nil, err
		}
		return &FullResult{"ep", class, r.Verified, r.VerifyMsg, r.Time}, nil
	},
	"cg": func(c *mpi.Comm, class npb.Class) (*FullResult, error) {
		r, err := cg.Run(c, class)
		if err != nil {
			return nil, err
		}
		return &FullResult{"cg", class, r.Verified, r.VerifyMsg, r.Time}, nil
	},
	"ft": func(c *mpi.Comm, class npb.Class) (*FullResult, error) {
		r, err := ft.Run(c, class)
		if err != nil {
			return nil, err
		}
		return &FullResult{"ft", class, r.Verified, r.VerifyMsg, r.Time}, nil
	},
	"is": func(c *mpi.Comm, class npb.Class) (*FullResult, error) {
		r, err := is.Run(c, class)
		if err != nil {
			return nil, err
		}
		return &FullResult{"is", class, r.Verified, r.VerifyMsg, r.Time}, nil
	},
	"mg": func(c *mpi.Comm, class npb.Class) (*FullResult, error) {
		r, err := mg.Run(c, class)
		if err != nil {
			return nil, err
		}
		return &FullResult{"mg", class, r.Verified, r.VerifyMsg, r.Time}, nil
	},
}

// Skeleton returns the pattern replay for a kernel name.
func Skeleton(name string) (SkeletonFunc, error) {
	fn, ok := Skeletons[name]
	if !ok {
		return nil, fmt.Errorf("suite: unknown kernel %q", name)
	}
	return fn, nil
}
