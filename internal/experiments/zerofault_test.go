package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestZeroFaultResilientMatchesSeedArtefacts regenerates fig5 (Chaste
// speedup) and fig6 (MetUM speedup) at the full sweep with every run
// forced through the checkpoint/restart machinery — but with no fault
// plan — and byte-compares the output against the committed seed
// artefacts in results/. This is the repo-level statement of the
// zero-fault identity: wrapping an execution in mpi.RunResilient is
// observationally free until a fault actually fires.
//
// The full Chaste sweep dominates the ~35 s runtime, so the test is
// skipped in -short mode and under the race detector (the runtime-level
// identity stays covered there by mpi's TestRunResilientZeroFaultBitIdentical).
func TestZeroFaultResilientMatchesSeedArtefacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-sweep regeneration skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full-sweep regeneration skipped under the race detector")
	}
	for _, id := range []string{"fig5", "fig6"} {
		sel, err := Select([]string{id})
		if err != nil {
			t.Fatal(err)
		}
		files, err := sel[0].Gen(&Ctx{Sweep: SweepFull, ForceResilient: true})
		if err != nil {
			t.Fatalf("%s under forced resilience: %v", id, err)
		}
		if len(files) == 0 {
			t.Fatalf("%s produced no files", id)
		}
		for name, got := range files {
			want, err := os.ReadFile(filepath.Join("..", "..", "results", name))
			if err != nil {
				t.Fatalf("seed artefact for %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: zero-fault resilient regeneration differs from the seed artefact", name)
			}
		}
	}
}
