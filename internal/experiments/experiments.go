// Package experiments regenerates every table and figure of the paper's
// evaluation section from the modelled platforms. Each function returns a
// renderable artefact; cmd/repro writes them to disk and bench_test.go
// exercises one per benchmark.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/chaste"
	"repro/internal/apps/metum"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ipm"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/osu"
	"repro/internal/platform"
	"repro/internal/report"
)

// Fig1OSUBandwidth reproduces Figure 1: OSU point-to-point bandwidth
// between two compute nodes on the three platforms.
func Fig1OSUBandwidth(sizes []int) (*report.Figure, error) {
	if sizes == nil {
		sizes = osu.DefaultSizes()
	}
	fig := &report.Figure{
		Title:  "Fig 1: OSU MPI bandwidth (MB/s) vs message size",
		XLabel: "message bytes", YLabel: "MB/s", LogX: true, LogY: true,
	}
	for _, p := range platform.All() {
		pts, err := osu.Bandwidth(p, sizes)
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: p.Name + " " + p.Inter.Name}
		for _, pt := range pts {
			s.Add(float64(pt.Bytes), pt.Value)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig2OSULatency reproduces Figure 2: OSU latency in microseconds.
func Fig2OSULatency(sizes []int) (*report.Figure, error) {
	if sizes == nil {
		sizes = osu.DefaultSizes()
	}
	fig := &report.Figure{
		Title:  "Fig 2: OSU MPI latency (microseconds) vs message size",
		XLabel: "message bytes", YLabel: "us", LogX: true, LogY: true,
	}
	for _, p := range platform.All() {
		pts, err := osu.Latency(p, sizes)
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: p.Name + " " + p.Inter.Name}
		for _, pt := range pts {
			s.Add(float64(pt.Bytes), pt.Value*1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// runSkeleton executes one NPB skeleton and returns its virtual wall time.
func runSkeleton(name string, p *platform.Platform, np int, class npb.Class) (float64, error) {
	fn, err := suite.Skeleton(name)
	if err != nil {
		return 0, err
	}
	out, err := core.Execute(core.RunSpec{Platform: p, NP: np}, func(c *mpi.Comm) error {
		return fn(c, class)
	})
	if err != nil {
		return 0, fmt.Errorf("%s.%s.%d on %s: %w", name, class, np, p.Name, err)
	}
	return out.Time(), nil
}

// Fig3NPBSerial reproduces Figure 3: single-process class-B walltimes
// normalised to DCC, with absolute DCC seconds.
func Fig3NPBSerial() (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig 3: NPB class B serial times, normalised to DCC",
		Headers: []string{"bench", "dcc (s)", "ec2 (norm)", "vayu (norm)"},
	}
	for _, name := range npb.Names() {
		times := map[string]float64{}
		for _, p := range platform.All() {
			d, err := runSkeleton(name, p, 1, npb.ClassB)
			if err != nil {
				return nil, err
			}
			times[p.Name] = d
		}
		norm, err := core.Normalise(times, "dcc")
		if err != nil {
			return nil, err
		}
		t.AddRow(strings.ToUpper(name)+".B.1", times["dcc"], norm["ec2"], norm["vayu"])
	}
	return t, nil
}

// Fig4NPBScaling reproduces one panel of Figure 4: the speedup curve of a
// kernel at class B on the three platforms, np up to 64.
func Fig4NPBScaling(kernel string) (*report.Figure, error) {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Fig 4 (%s): class B speedup", strings.ToUpper(kernel)),
		XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true,
	}
	counts := npb.ProcCounts(kernel, 64)
	for _, p := range platform.All() {
		times := map[int]float64{}
		for _, np := range counts {
			d, err := runSkeleton(kernel, p, np, npb.ClassB)
			if err != nil {
				return nil, err
			}
			times[np] = d
		}
		sp, err := core.Speedup(times, counts[0])
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: p.Name}
		for _, np := range counts {
			s.Add(float64(np), sp[np])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Table2CommPercent reproduces Table II: IPM %comm for CG, FT and IS at
// np = 2..64 on the three platforms.
func Table2CommPercent() (*report.Table, error) {
	t := &report.Table{
		Title: "Table II: IPM % walltime in communication (class B)",
		Headers: []string{"np",
			"CG dcc", "CG ec2", "CG vayu",
			"FT dcc", "FT ec2", "FT vayu",
			"IS dcc", "IS ec2", "IS vayu"},
	}
	kernels := []string{"cg", "ft", "is"}
	for _, np := range []int{2, 4, 8, 16, 32, 64} {
		row := []any{np}
		for _, k := range kernels {
			for _, p := range platform.All() {
				fn, err := suite.Skeleton(k)
				if err != nil {
					return nil, err
				}
				out, err := core.Execute(core.RunSpec{Platform: p, NP: np}, func(c *mpi.Comm) error {
					return fn(c, npb.ClassB)
				})
				if err != nil {
					return nil, err
				}
				row = append(row, out.Profile.CommPercent())
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// chasteRun executes the Chaste proxy and returns stats plus the profile.
func chasteRun(p *platform.Platform, np int) (*chaste.Stats, *core.Outcome, error) {
	cfg := chaste.Default()
	var stats *chaste.Stats
	out, err := core.Execute(core.RunSpec{
		Platform: p, NP: np, MemPerRank: cfg.MemPerRank(np),
	}, func(c *mpi.Comm) error {
		s, err := chaste.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, out, nil
}

// Fig5Chaste reproduces Figure 5: Chaste total and KSp-section speedups
// over 8 cores on Vayu and DCC.
func Fig5Chaste() (*report.Figure, error) {
	fig := &report.Figure{
		Title:  "Fig 5: Chaste speedup over 8 cores (total and KSp)",
		XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true,
	}
	for _, p := range []*platform.Platform{platform.Vayu(), platform.DCC()} {
		total := map[int]float64{}
		ksp := map[int]float64{}
		for _, np := range []int{8, 16, 32, 48, 64} {
			s, _, err := chasteRun(p, np)
			if err != nil {
				return nil, err
			}
			total[np], ksp[np] = s.Total, s.KSp
		}
		for _, series := range []struct {
			name  string
			times map[int]float64
		}{
			{p.Name + " total (t8=" + report.FormatFloat(total[8]) + ")", total},
			{p.Name + " KSp (t8=" + report.FormatFloat(ksp[8]) + ")", ksp},
		} {
			sp, err := core.Speedup(series.times, 8)
			if err != nil {
				return nil, err
			}
			s := &report.Series{Name: series.name}
			for _, np := range []int{8, 16, 32, 48, 64} {
				s.Add(float64(np), sp[np])
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// umRun executes the MetUM proxy on p with an explicit node count (0 =
// memory-driven minimum).
func umRun(p *platform.Platform, np, nodes int) (*metum.Stats, *core.Outcome, error) {
	cfg := metum.Default()
	var stats *metum.Stats
	out, err := core.Execute(core.RunSpec{
		Platform: p, NP: np, Nodes: nodes, MemPerRank: cfg.MemPerRank(np),
	}, func(c *mpi.Comm) error {
		s, err := metum.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, out, nil
}

// Fig6MetUM reproduces Figure 6: MetUM warmed-time speedups over 8 cores
// on Vayu, DCC, EC2 (default placement) and EC2-4 (four nodes).
func Fig6MetUM() (*report.Figure, error) {
	fig := &report.Figure{
		Title:  "Fig 6: MetUM warmed speedup over 8 cores",
		XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true,
	}
	nps := []int{8, 16, 24, 32, 48, 64}
	type variant struct {
		name  string
		p     *platform.Platform
		nodes func(np int) int
	}
	variants := []variant{
		{"vayu", platform.Vayu(), func(int) int { return 0 }},
		{"dcc", platform.DCC(), func(int) int { return 0 }},
		{"ec2", platform.EC2(), func(int) int { return 0 }},
		{"ec2-4", platform.EC2(), func(int) int { return 4 }},
	}
	for _, v := range variants {
		times := map[int]float64{}
		for _, np := range nps {
			s, _, err := umRun(v.p, np, v.nodes(np))
			if err != nil {
				return nil, err
			}
			times[np] = s.Warmed
		}
		sp, err := core.Speedup(times, 8)
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: v.name + " (t8=" + report.FormatFloat(times[8]) + ")"}
		for _, np := range nps {
			s.Add(float64(np), sp[np])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Table3MetUM reproduces Table III: MetUM statistics at 32 cores.
func Table3MetUM() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table III: MetUM at 32 cores",
		Headers: []string{"metric", "vayu", "dcc", "ec2", "ec2-4"},
	}
	type row struct {
		stats *metum.Stats
		out   *core.Outcome
	}
	var rows []row
	configs := []struct {
		p     *platform.Platform
		nodes int
	}{
		{platform.Vayu(), 0}, {platform.DCC(), 0}, {platform.EC2(), 2}, {platform.EC2(), 4},
	}
	for _, cse := range configs {
		s, o, err := umRun(cse.p, 32, cse.nodes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{s, o})
	}
	vayu := rows[0]
	add := func(metric string, f func(r row) float64) {
		t.AddRow(metric, f(rows[0]), f(rows[1]), f(rows[2]), f(rows[3]))
	}
	add("time(s)", func(r row) float64 { return r.stats.Total })
	add("rcomp", func(r row) float64 { return r.out.Profile.Comp.Sum() / vayu.out.Profile.Comp.Sum() })
	add("rcomm", func(r row) float64 { return r.out.Profile.Comm.Sum() / vayu.out.Profile.Comm.Sum() })
	add("%comm", func(r row) float64 { return r.out.Profile.CommPercent() })
	add("%imbal", func(r row) float64 { return r.out.Profile.LoadImbalancePercent() })
	add("I/O (s)", func(r row) float64 { return r.stats.IO })
	return t, nil
}

// Fig7Breakdown reproduces Figure 7: the per-process computation vs
// communication breakdown of the UM ATM_STEP section at 32 cores on Vayu
// and DCC.
func Fig7Breakdown() (string, error) {
	var b strings.Builder
	for _, p := range []*platform.Platform{platform.Vayu(), platform.DCC()} {
		_, out, err := umRun(p, 32, 0)
		if err != nil {
			return "", err
		}
		comp, comm, _ := out.Profile.Region("ATM_STEP")
		b.WriteString(report.BarBreakdown(
			fmt.Sprintf("Fig 7 (%s): UM ATM_STEP time by process, 32 cores", p.Name),
			comp, comm, 60))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Chaste32Prose reproduces the 32-core IPM analysis quoted in Section
// V.C.1: %comm per platform, the computation ratio and the KSp
// communication ratio.
func Chaste32Prose() (*report.Table, error) {
	t := &report.Table{
		Title:   "Chaste at 32 cores (paper prose: 48% comm DCC, 11% Vayu, comp ratio 1.5, KSp comm ratio ~13x)",
		Headers: []string{"metric", "vayu", "dcc"},
	}
	_, vo, err := chasteRun(platform.Vayu(), 32)
	if err != nil {
		return nil, err
	}
	_, do, err := chasteRun(platform.DCC(), 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("%comm", vo.Profile.CommPercent(), do.Profile.CommPercent())
	t.AddRow("computation ratio (vs vayu)", 1.0, do.Profile.Comp.Sum()/vo.Profile.Comp.Sum())
	_, vksp, _ := vo.Profile.Region("KSp")
	_, dksp, _ := do.Profile.Region("KSp")
	t.AddRow("KSp comm ratio (vs vayu)", 1.0, dksp.Sum()/vksp.Sum())
	return t, nil
}

// Profiles exposes the IPM profile of one UM run for downstream analysis
// (used by the cloudburst example and the arrive package tests).
func UMProfile(p *platform.Platform, np int) (*ipm.Profile, error) {
	_, out, err := umRun(p, np, 0)
	if err != nil {
		return nil, err
	}
	return out.Profile, nil
}

// Placement echoes the cluster decision for documentation purposes.
func Placement(p *platform.Platform, np int, memPerRank int64) (string, error) {
	nodes, err := cluster.MinNodesFor(p, np, memPerRank)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d ranks on %d %s nodes", np, nodes, p.Name), nil
}
