// Package experiments regenerates every table and figure of the paper's
// evaluation section from the modelled platforms. Artefacts are declared
// in a registry (registry.go) whose generators run through the
// internal/sched job scheduler; the Ctx type threads the sweep resolution
// and per-job virtual-time meter through every platform run. The public
// FigN/TableN functions remain as thin full-sweep wrappers for direct
// library use (benchmarks, examples).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/chaste"
	"repro/internal/apps/metum"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ipm"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/obs"
	"repro/internal/osu"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sim"
)

// Sweep selects how much of each artefact's parameter space is explored.
type Sweep string

const (
	// SweepFull is the paper's complete parameter space (the default).
	SweepFull Sweep = "full"
	// SweepQuick reduces message-size and kernel sweeps (cmd/repro -quick).
	SweepQuick Sweep = "quick"
	// SweepSmoke shrinks every dimension — fewer sizes, fewer process
	// counts, shortened application runs — so the whole artefact set
	// regenerates in seconds. Used by the determinism golden tests and the
	// scheduler benchmarks; the artefacts keep their shape but not their
	// paper-calibrated values.
	SweepSmoke Sweep = "smoke"
)

// ParseSweep validates a sweep name ("" means full).
func ParseSweep(s string) (Sweep, error) {
	switch Sweep(s) {
	case "", SweepFull:
		return SweepFull, nil
	case SweepQuick:
		return SweepQuick, nil
	case SweepSmoke:
		return SweepSmoke, nil
	}
	return "", fmt.Errorf("experiments: unknown sweep %q (full, quick, smoke)", s)
}

// Ctx carries one job's execution context: the sweep resolution and the
// virtual-time meter every platform run reports into. The zero value is a
// full sweep with no metering.
type Ctx struct {
	Sweep Sweep
	Meter *sim.Meter
	// Seed offsets every platform run's random streams (core.RunSpec.Seed);
	// the paper's artefacts use 0. It is part of the scheduler cache key.
	Seed uint64
	// Faults, when enabled, subjects every platform run to a
	// deterministically generated fault plan and executes it resiliently
	// (the -faults flag). Part of the cache key; the zero value leaves
	// all artefacts bit-identical to the fault-free baselines.
	Faults fault.Params
	// ForceResilient routes every platform run through the
	// checkpoint/restart machinery (mpi.RunResilient) even when no fault
	// plan is configured. An empty plan never fires, so artefacts must
	// stay bit-identical to plain execution — the zero-fault identity
	// test regenerates seed artefacts under this knob to prove it.
	ForceResilient bool
	// Runtime selects the mpi execution engine for every platform run
	// (mpi.Goroutine, the default, or mpi.PDES). Artefact bytes are
	// identical either way — the parity tests regenerate artefacts under
	// both engines and compare — so the knob is deliberately NOT part of
	// the scheduler cache key.
	Runtime mpi.Runtime
	// Metrics, when set, accumulates mpi runtime counters across every
	// platform run of the job; the registry's stable snapshot lands in
	// the artefact's run manifest.
	Metrics *obs.Registry
	// Tracer, when set, supplies an extra event observer for each
	// platform run (cmd/repro -trace hands out trace recorders here); np
	// is the run's rank count. A nil return attaches nothing.
	Tracer func(np int) mpi.Tracer
}

// tracer resolves the Ctx's tracer hook for one run.
func (x *Ctx) tracer(np int) mpi.Tracer {
	if x.Tracer == nil {
		return nil
	}
	return x.Tracer(np)
}

// sizes returns the OSU message-size sweep.
func (x *Ctx) sizes() []int {
	switch x.Sweep {
	case SweepQuick:
		return []int{1, 64, 4096, 1 << 18, 1 << 22}
	case SweepSmoke:
		return []int{1, 4096, 1 << 16}
	}
	return osu.DefaultSizes()
}

// fig4Kernels returns the kernels plotted as Figure 4 panels.
func (x *Ctx) fig4Kernels() []string {
	switch x.Sweep {
	case SweepQuick:
		return []string{"ep", "cg", "ft", "is"}
	case SweepSmoke:
		return []string{"ep", "cg"}
	}
	return npb.Names()
}

// maxNP returns the largest process count swept in scaling artefacts.
func (x *Ctx) maxNP() int {
	if x.Sweep == SweepSmoke {
		return 16
	}
	return 64
}

// table2NPs returns the Table II process counts.
func (x *Ctx) table2NPs() []int {
	if x.Sweep == SweepSmoke {
		return []int{2, 16}
	}
	return []int{2, 4, 8, 16, 32, 64}
}

// chasteNPs returns the Figure 5 process counts.
func (x *Ctx) chasteNPs() []int {
	if x.Sweep == SweepSmoke {
		return []int{8, 16}
	}
	return []int{8, 16, 32, 48, 64}
}

// metumNPs returns the Figure 6 process counts.
func (x *Ctx) metumNPs() []int {
	if x.Sweep == SweepSmoke {
		return []int{8, 16}
	}
	return []int{8, 16, 24, 32, 48, 64}
}

// chasteConfig returns the Chaste configuration for the sweep; smoke runs
// cut the timestep and solver-iteration counts so a run costs milliseconds.
func (x *Ctx) chasteConfig() chaste.Config {
	cfg := chaste.Default()
	if x.Sweep == SweepSmoke {
		cfg.Steps = 25
		cfg.KSpItersPerStep = 10
	}
	cfg.CheckpointEvery = x.Faults.CheckpointEvery
	return cfg
}

// metumConfig returns the MetUM configuration for the sweep.
func (x *Ctx) metumConfig() metum.Config {
	cfg := metum.Default()
	if x.Sweep == SweepSmoke {
		cfg.Steps = 6
		cfg.HaloSwapsPerStep = 20
		cfg.SolverItersPerStep = 15
	}
	cfg.CheckpointEvery = x.Faults.CheckpointEvery
	return cfg
}

// runSkeleton executes one NPB skeleton and returns its virtual wall time.
func (x *Ctx) runSkeleton(name string, p *platform.Platform, np int, class npb.Class) (float64, error) {
	fn, err := suite.Skeleton(name)
	if err != nil {
		return 0, err
	}
	spec := core.RunSpec{Platform: p, NP: np, Seed: x.Seed, Runtime: x.Runtime, Meter: x.Meter,
		Metrics: x.Metrics, ExtraTracer: x.tracer(np)}
	if err := x.applyFaults(&spec, p, name, np); err != nil {
		return 0, err
	}
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		return fn(c, class)
	})
	if err != nil {
		return 0, fmt.Errorf("%s.%s.%d on %s: %w", name, class, np, p.Name, err)
	}
	return out.Time(), nil
}

// osuOpts bundles the Ctx's seed and metrics for an OSU run.
func (x *Ctx) osuOpts() osu.Opts {
	return osu.Opts{Seed: x.Seed, Metrics: x.Metrics, Tracer: x.tracer(2), Meter: x.Meter,
		Runtime: x.Runtime}
}

// bandwidthAt returns the OSU bandwidth (MB/s) at one message size.
func (x *Ctx) bandwidthAt(p *platform.Platform, size int) (float64, error) {
	pts, err := osu.BandwidthOpts(p, []int{size}, x.osuOpts())
	if err != nil {
		return 0, err
	}
	return pts[0].Value, nil
}

// latencyAt returns the OSU latency in microseconds at one message size.
func (x *Ctx) latencyAt(p *platform.Platform, size int) (float64, error) {
	pts, err := osu.LatencyOpts(p, []int{size}, x.osuOpts())
	if err != nil {
		return 0, err
	}
	return pts[0].Value * 1e6, nil
}

// speedupAt returns one kernel's class-B speedup at np over np=1.
func (x *Ctx) speedupAt(kernel string, p *platform.Platform, np int) (float64, error) {
	t1, err := x.runSkeleton(kernel, p, 1, npb.ClassB)
	if err != nil {
		return 0, err
	}
	tn, err := x.runSkeleton(kernel, p, np, npb.ClassB)
	if err != nil {
		return 0, err
	}
	return t1 / tn, nil
}

// Fig1OSUBandwidth reproduces Figure 1: OSU point-to-point bandwidth
// between two compute nodes on the three platforms.
func (x *Ctx) Fig1OSUBandwidth(sizes []int) (*report.Figure, error) {
	if sizes == nil {
		sizes = x.sizes()
	}
	fig := &report.Figure{
		Title:  "Fig 1: OSU MPI bandwidth (MB/s) vs message size",
		XLabel: "message bytes", YLabel: "MB/s", LogX: true, LogY: true,
	}
	for _, p := range platform.All() {
		pts, err := osu.BandwidthOpts(p, sizes, x.osuOpts())
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: p.Name + " " + p.Inter.Name}
		for _, pt := range pts {
			s.Add(float64(pt.Bytes), pt.Value)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig2OSULatency reproduces Figure 2: OSU latency in microseconds.
func (x *Ctx) Fig2OSULatency(sizes []int) (*report.Figure, error) {
	if sizes == nil {
		sizes = x.sizes()
	}
	fig := &report.Figure{
		Title:  "Fig 2: OSU MPI latency (microseconds) vs message size",
		XLabel: "message bytes", YLabel: "us", LogX: true, LogY: true,
	}
	for _, p := range platform.All() {
		pts, err := osu.LatencyOpts(p, sizes, x.osuOpts())
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: p.Name + " " + p.Inter.Name}
		for _, pt := range pts {
			s.Add(float64(pt.Bytes), pt.Value*1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig3NPBSerial reproduces Figure 3: single-process class-B walltimes
// normalised to DCC, with absolute DCC seconds.
func (x *Ctx) Fig3NPBSerial() (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig 3: NPB class B serial times, normalised to DCC",
		Headers: []string{"bench", "dcc (s)", "ec2 (norm)", "vayu (norm)"},
	}
	for _, name := range npb.Names() {
		times := map[string]float64{}
		for _, p := range platform.All() {
			d, err := x.runSkeleton(name, p, 1, npb.ClassB)
			if err != nil {
				return nil, err
			}
			times[p.Name] = d
		}
		norm, err := core.Normalise(times, "dcc")
		if err != nil {
			return nil, err
		}
		t.AddRow(strings.ToUpper(name)+".B.1", times["dcc"], norm["ec2"], norm["vayu"])
	}
	return t, nil
}

// Fig4NPBScaling reproduces one panel of Figure 4: the speedup curve of a
// kernel at class B on the three platforms, np up to the sweep's maximum.
func (x *Ctx) Fig4NPBScaling(kernel string) (*report.Figure, error) {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Fig 4 (%s): class B speedup", strings.ToUpper(kernel)),
		XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true,
	}
	counts := npb.ProcCounts(kernel, x.maxNP())
	for _, p := range platform.All() {
		times := map[int]float64{}
		for _, np := range counts {
			d, err := x.runSkeleton(kernel, p, np, npb.ClassB)
			if err != nil {
				return nil, err
			}
			times[np] = d
		}
		sp, err := core.Speedup(times, counts[0])
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: p.Name}
		for _, np := range counts {
			s.Add(float64(np), sp[np])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Table2CommPercent reproduces Table II: IPM %comm for CG, FT and IS on
// the three platforms.
func (x *Ctx) Table2CommPercent() (*report.Table, error) {
	t := &report.Table{
		Title: "Table II: IPM % walltime in communication (class B)",
		Headers: []string{"np",
			"CG dcc", "CG ec2", "CG vayu",
			"FT dcc", "FT ec2", "FT vayu",
			"IS dcc", "IS ec2", "IS vayu"},
	}
	kernels := []string{"cg", "ft", "is"}
	for _, np := range x.table2NPs() {
		row := []any{np}
		for _, k := range kernels {
			for _, p := range platform.All() {
				pct, err := x.commAt(k, p, np)
				if err != nil {
					return nil, err
				}
				row = append(row, pct)
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// commAt returns one kernel's IPM %comm at np on p.
func (x *Ctx) commAt(kernel string, p *platform.Platform, np int) (float64, error) {
	fn, err := suite.Skeleton(kernel)
	if err != nil {
		return 0, err
	}
	spec := core.RunSpec{Platform: p, NP: np, Seed: x.Seed, Runtime: x.Runtime, Meter: x.Meter,
		Metrics: x.Metrics, ExtraTracer: x.tracer(np)}
	if err := x.applyFaults(&spec, p, kernel, np); err != nil {
		return 0, err
	}
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		return fn(c, npb.ClassB)
	})
	if err != nil {
		return 0, err
	}
	return out.Profile.CommPercent(), nil
}

// chasteRun executes the Chaste proxy and returns stats plus the profile.
func (x *Ctx) chasteRun(p *platform.Platform, np int) (*chaste.Stats, *core.Outcome, error) {
	cfg := x.chasteConfig()
	var stats *chaste.Stats
	spec := core.RunSpec{
		Platform: p, NP: np, MemPerRank: cfg.MemPerRank(np), Seed: x.Seed, Runtime: x.Runtime,
		Meter: x.Meter, Metrics: x.Metrics, ExtraTracer: x.tracer(np),
	}
	if err := x.applyFaults(&spec, p, "chaste", np); err != nil {
		return nil, nil, err
	}
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		s, err := chaste.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, out, nil
}

// Fig5Chaste reproduces Figure 5: Chaste total and KSp-section speedups
// over 8 cores on Vayu and DCC.
func (x *Ctx) Fig5Chaste() (*report.Figure, error) {
	fig := &report.Figure{
		Title:  "Fig 5: Chaste speedup over 8 cores (total and KSp)",
		XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true,
	}
	nps := x.chasteNPs()
	for _, p := range []*platform.Platform{platform.Vayu(), platform.DCC()} {
		total := map[int]float64{}
		ksp := map[int]float64{}
		for _, np := range nps {
			s, _, err := x.chasteRun(p, np)
			if err != nil {
				return nil, err
			}
			total[np], ksp[np] = s.Total, s.KSp
		}
		for _, series := range []struct {
			name  string
			times map[int]float64
		}{
			{p.Name + " total (t8=" + report.FormatFloat(total[8]) + ")", total},
			{p.Name + " KSp (t8=" + report.FormatFloat(ksp[8]) + ")", ksp},
		} {
			sp, err := core.Speedup(series.times, 8)
			if err != nil {
				return nil, err
			}
			s := &report.Series{Name: series.name}
			for _, np := range nps {
				s.Add(float64(np), sp[np])
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// umRun executes the MetUM proxy on p with an explicit node count (0 =
// memory-driven minimum).
func (x *Ctx) umRun(p *platform.Platform, np, nodes int) (*metum.Stats, *core.Outcome, error) {
	cfg := x.metumConfig()
	var stats *metum.Stats
	spec := core.RunSpec{
		Platform: p, NP: np, Nodes: nodes, MemPerRank: cfg.MemPerRank(np), Seed: x.Seed,
		Runtime: x.Runtime, Meter: x.Meter, Metrics: x.Metrics, ExtraTracer: x.tracer(np),
	}
	if err := x.applyFaults(&spec, p, "metum", np); err != nil {
		return nil, nil, err
	}
	out, err := core.Execute(spec, func(c *mpi.Comm) error {
		s, err := metum.Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, out, nil
}

// Fig6MetUM reproduces Figure 6: MetUM warmed-time speedups over 8 cores
// on Vayu, DCC, EC2 (default placement) and EC2-4 (four nodes).
func (x *Ctx) Fig6MetUM() (*report.Figure, error) {
	fig := &report.Figure{
		Title:  "Fig 6: MetUM warmed speedup over 8 cores",
		XLabel: "# of cores", YLabel: "speedup", LogX: true, LogY: true,
	}
	nps := x.metumNPs()
	type variant struct {
		name  string
		p     *platform.Platform
		nodes func(np int) int
	}
	variants := []variant{
		{"vayu", platform.Vayu(), func(int) int { return 0 }},
		{"dcc", platform.DCC(), func(int) int { return 0 }},
		{"ec2", platform.EC2(), func(int) int { return 0 }},
		{"ec2-4", platform.EC2(), func(int) int { return 4 }},
	}
	for _, v := range variants {
		times := map[int]float64{}
		for _, np := range nps {
			s, _, err := x.umRun(v.p, np, v.nodes(np))
			if err != nil {
				return nil, err
			}
			times[np] = s.Warmed
		}
		sp, err := core.Speedup(times, 8)
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: v.name + " (t8=" + report.FormatFloat(times[8]) + ")"}
		for _, np := range nps {
			s.Add(float64(np), sp[np])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Table3MetUM reproduces Table III: MetUM statistics at 32 cores.
func (x *Ctx) Table3MetUM() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table III: MetUM at 32 cores",
		Headers: []string{"metric", "vayu", "dcc", "ec2", "ec2-4"},
	}
	type row struct {
		stats *metum.Stats
		out   *core.Outcome
	}
	var rows []row
	configs := []struct {
		p     *platform.Platform
		nodes int
	}{
		{platform.Vayu(), 0}, {platform.DCC(), 0}, {platform.EC2(), 2}, {platform.EC2(), 4},
	}
	for _, cse := range configs {
		s, o, err := x.umRun(cse.p, 32, cse.nodes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{s, o})
	}
	vayu := rows[0]
	add := func(metric string, f func(r row) float64) {
		t.AddRow(metric, f(rows[0]), f(rows[1]), f(rows[2]), f(rows[3]))
	}
	add("time(s)", func(r row) float64 { return r.stats.Total })
	add("rcomp", func(r row) float64 { return r.out.Profile.Comp.Sum() / vayu.out.Profile.Comp.Sum() })
	add("rcomm", func(r row) float64 { return r.out.Profile.Comm.Sum() / vayu.out.Profile.Comm.Sum() })
	add("%comm", func(r row) float64 { return r.out.Profile.CommPercent() })
	add("%imbal", func(r row) float64 { return r.out.Profile.LoadImbalancePercent() })
	add("I/O (s)", func(r row) float64 { return r.stats.IO })
	return t, nil
}

// Fig7Breakdown reproduces Figure 7: the per-process computation vs
// communication breakdown of the UM ATM_STEP section at 32 cores on Vayu
// and DCC.
func (x *Ctx) Fig7Breakdown() (string, error) {
	var b strings.Builder
	for _, p := range []*platform.Platform{platform.Vayu(), platform.DCC()} {
		_, out, err := x.umRun(p, 32, 0)
		if err != nil {
			return "", err
		}
		comp, comm, _ := out.Profile.Region("ATM_STEP")
		b.WriteString(report.BarBreakdown(
			fmt.Sprintf("Fig 7 (%s): UM ATM_STEP time by process, 32 cores", p.Name),
			comp, comm, 60))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Chaste32Prose reproduces the 32-core IPM analysis quoted in Section
// V.C.1: %comm per platform, the computation ratio and the KSp
// communication ratio.
func (x *Ctx) Chaste32Prose() (*report.Table, error) {
	t := &report.Table{
		Title:   "Chaste at 32 cores (paper prose: 48% comm DCC, 11% Vayu, comp ratio 1.5, KSp comm ratio ~13x)",
		Headers: []string{"metric", "vayu", "dcc"},
	}
	_, vo, err := x.chasteRun(platform.Vayu(), 32)
	if err != nil {
		return nil, err
	}
	_, do, err := x.chasteRun(platform.DCC(), 32)
	if err != nil {
		return nil, err
	}
	t.AddRow("%comm", vo.Profile.CommPercent(), do.Profile.CommPercent())
	t.AddRow("computation ratio (vs vayu)", 1.0, do.Profile.Comp.Sum()/vo.Profile.Comp.Sum())
	_, vksp, _ := vo.Profile.Region("KSp")
	_, dksp, _ := do.Profile.Region("KSp")
	t.AddRow("KSp comm ratio (vs vayu)", 1.0, dksp.Sum()/vksp.Sum())
	return t, nil
}

// Compatibility wrappers: the original one-function-per-artefact API,
// evaluated at the full sweep with no metering.

// Fig1OSUBandwidth reproduces Figure 1 (full sweep when sizes is nil).
func Fig1OSUBandwidth(sizes []int) (*report.Figure, error) {
	return (&Ctx{}).Fig1OSUBandwidth(sizes)
}

// Fig2OSULatency reproduces Figure 2 (full sweep when sizes is nil).
func Fig2OSULatency(sizes []int) (*report.Figure, error) {
	return (&Ctx{}).Fig2OSULatency(sizes)
}

// Fig3NPBSerial reproduces Figure 3.
func Fig3NPBSerial() (*report.Table, error) { return (&Ctx{}).Fig3NPBSerial() }

// Fig4NPBScaling reproduces one Figure 4 panel at the full sweep.
func Fig4NPBScaling(kernel string) (*report.Figure, error) {
	return (&Ctx{}).Fig4NPBScaling(kernel)
}

// Table2CommPercent reproduces Table II at the full sweep.
func Table2CommPercent() (*report.Table, error) { return (&Ctx{}).Table2CommPercent() }

// Fig5Chaste reproduces Figure 5.
func Fig5Chaste() (*report.Figure, error) { return (&Ctx{}).Fig5Chaste() }

// Fig6MetUM reproduces Figure 6.
func Fig6MetUM() (*report.Figure, error) { return (&Ctx{}).Fig6MetUM() }

// Table3MetUM reproduces Table III.
func Table3MetUM() (*report.Table, error) { return (&Ctx{}).Table3MetUM() }

// Fig7Breakdown reproduces Figure 7.
func Fig7Breakdown() (string, error) { return (&Ctx{}).Fig7Breakdown() }

// Chaste32Prose reproduces the Section V.C.1 Chaste IPM numbers.
func Chaste32Prose() (*report.Table, error) { return (&Ctx{}).Chaste32Prose() }

// UMProfile exposes the IPM profile of one UM run for downstream analysis
// (used by the cloudburst example and the arrive package tests).
func UMProfile(p *platform.Platform, np int) (*ipm.Profile, error) {
	_, out, err := (&Ctx{}).umRun(p, np, 0)
	if err != nil {
		return nil, err
	}
	return out.Profile, nil
}

// Placement echoes the cluster decision for documentation purposes.
func Placement(p *platform.Platform, np int, memPerRank int64) (string, error) {
	nodes, err := cluster.MinNodesFor(p, np, memPerRank)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d ranks on %d %s nodes", np, nodes, p.Name), nil
}
