package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/apps/metum"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/report"
)

// applyFaults decorates a RunSpec with the Ctx's -faults parameters: a
// plan generated deterministically from (spec, platform, experiment
// label, np, seed) and the resilient execution mode. A disabled Params
// leaves the spec alone (keeping fault-free artefacts bit-identical to
// the seed baselines) unless ForceResilient asks for the restart
// machinery anyway. E12 (TableE12Faults) ignores the Ctx params and
// sweeps its own fault space.
func (x *Ctx) applyFaults(spec *core.RunSpec, p *platform.Platform, experiment string, np int) error {
	if x.ForceResilient {
		spec.Resilient = true
	}
	if !x.Faults.Enabled() {
		return nil
	}
	plan, err := fault.Generate(x.Faults.Spec, p.Name, experiment, np, p.Nodes, x.Faults.Seed)
	if err != nil {
		return err
	}
	spec.Faults = plan
	spec.Resilient = true
	return nil
}

// e12Nodes pins the E12 job to an explicit four-node footprint on every
// platform (feasible even on EC2's four instances). The fault plan is
// generated over the same four nodes, so the table's MTBF axis is the
// MTBF *of the job* — the quantity Young's approximation expects — not a
// cluster-wide rate diluted by however many idle nodes a platform has.
const e12Nodes = 4

// e12Run executes one resilient MetUM run for the E12 table. A nil plan
// is the zero-fault baseline. The boolean reports "did not finish": the
// restart budget was exhausted before the job completed — a legitimate,
// deterministic outcome for aggressive MTBFs without checkpointing.
func (x *Ctx) e12Run(p *platform.Platform, np, ckptEvery int, plan *fault.Plan) (*core.Outcome, bool, error) {
	cfg := x.metumConfig()
	cfg.CheckpointEvery = ckptEvery
	out, err := core.Execute(core.RunSpec{
		Platform: p, NP: np, Nodes: e12Nodes, MemPerRank: cfg.MemPerRank(np),
		Seed: x.Seed, Meter: x.Meter, Metrics: x.Metrics,
		Faults: plan, Resilient: plan != nil, MaxRestarts: 40,
	}, func(c *mpi.Comm) error {
		_, err := metum.Run(c, cfg)
		return err
	})
	if err != nil {
		if errors.Is(err, mpi.ErrRankFailed) {
			return nil, true, nil
		}
		return nil, false, fmt.Errorf("e12 on %s: %w", p.Name, err)
	}
	return out, false, nil
}

// TableE12Faults produces the E12 artefact: MetUM time-to-solution at 16
// ranks under node preemptions, swept over MTBF classes (scaled from each
// platform's zero-fault baseline T) and checkpoint policies. Policies:
//
//   - none:  no checkpoints, every failure restarts from the input dump;
//   - fixed: a dump every Steps/6 timesteps;
//   - young: the interval from Young's approximation tau = sqrt(2*delta*MTBF),
//     where delta is the platform's modelled checkpoint write time — so the
//     optimal interval differs between Lustre (Vayu) and NFS (DCC/EC2).
//
// The checkpoint cost flows through iomodel.CheckpointSeconds, whose
// durability commit serialises on NFS: the same policy is visibly more
// expensive on the cloud platforms, and EC2's slower effective I/O plus
// its compute tax make it the worst time-to-solution at every MTBF.
func (x *Ctx) TableE12Faults() (*report.Table, error) {
	const np = 16
	t := &report.Table{
		Title: "E12: MetUM time-to-solution under node preemptions, np=16 (MTBF x checkpoint policy)",
		Headers: []string{"platform", "mtbf(s)", "policy", "ckpt every",
			"time(s)", "xT", "restarts", "ckpts", "lost(s)", "dump(s)"},
	}
	cfg := x.metumConfig()
	for _, p := range platform.All() {
		base, _, err := x.e12Run(p, np, 0, nil)
		if err != nil {
			return nil, err
		}
		T := base.Result.Time
		// delta: one rank's shard write plus the shared durability commit.
		delta := p.FS.CheckpointSeconds(cfg.DumpBytes/int64(np), np)
		stepTime := T / float64(cfg.Steps)
		for _, scale := range []float64{0.5, 1, 4} {
			mtbf := scale * T
			// The MTBF class is part of the stream label so each class
			// draws independent arrival times (otherwise every class would
			// see the same pattern, merely rescaled).
			plan, err := fault.Generate(fault.Spec{MTBF: mtbf, Horizon: 60 * T},
				p.Name, fmt.Sprintf("e12/x%g", scale), np, e12Nodes, x.Seed)
			if err != nil {
				return nil, err
			}
			for _, pol := range []struct {
				name  string
				every int
			}{
				{"none", 0},
				{"fixed", maxi(1, cfg.Steps/6)},
				{"young", clampi(int(math.Round(math.Sqrt(2*delta*mtbf)/stepTime)), 1, cfg.Steps-1)},
			} {
				out, dnf, err := x.e12Run(p, np, pol.every, plan)
				if err != nil {
					return nil, err
				}
				if dnf {
					t.AddRow(p.Name, mtbf, pol.name, pol.every, "dnf", "-", 40, "-", "-", delta)
					continue
				}
				rs := out.Resilience
				t.AddRow(p.Name, mtbf, pol.name, pol.every,
					out.Result.Time, out.Result.Time/T,
					rs.Restarts, rs.Checkpoints, rs.LostWork, delta)
			}
		}
	}
	return t, nil
}

// TableE12Faults is the full-sweep compatibility wrapper.
func TableE12Faults() (*report.Table, error) { return (&Ctx{}).TableE12Faults() }

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
