package experiments

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/platform"
	"repro/internal/report"
)

// This file extends the paper's evaluation beyond its machines: the PDES
// engine (internal/pdes) makes worlds of 10k+ virtual ranks practical,
// so the class-B skeleton scaling study of Figure 4 can be continued past
// Vayu's 11936 physical slots on a what-if scaled platform
// (platform.Scaled). The artefact is registered as "pdes1".

// pdesEPNPs returns the EP rank counts of the large-scale sweep.
func (x *Ctx) pdesEPNPs() []int {
	switch x.Sweep {
	case SweepSmoke:
		// The smoke sweep regenerates under the race detector in the
		// golden tests; stay small while keeping the doubling shape.
		return []int{64, 128, 256}
	case SweepQuick:
		return []int{1024, 4096, 16384}
	}
	return []int{1024, 2048, 4096, 8192, 16384}
}

// pdesMGNPs returns the MG rank counts. The communication-heavy kernels
// cost real wall time per sweep point at these sizes (MG's V-cycle moves
// ~1k messages per rank; CG's solver several times that), so MG carries
// the communicating-kernel curve and stops at 2048 ranks — EP carries it
// to 16384.
func (x *Ctx) pdesMGNPs() []int {
	switch x.Sweep {
	case SweepSmoke:
		return []int{64, 256}
	case SweepQuick:
		return []int{1024}
	}
	return []int{1024, 2048}
}

// FigE13PDESScale produces the extension figure: NPB class-B skeleton
// virtual walltimes at 1024-16384 ranks under the PDES engine, on a
// Vayu scaled out to host each rank count. The goroutine oracle cannot
// reach these sizes; cross-engine parity at np <= 256 (parity_test.go)
// is what certifies the engine the curve is computed with.
func (x *Ctx) FigE13PDESScale() (*report.Figure, error) {
	fig := &report.Figure{
		Title:  "Fig E13: NPB class B skeleton walltime at 1k-16k ranks (PDES engine, scaled vayu)",
		XLabel: "# of ranks", YLabel: "seconds", LogX: true, LogY: true,
	}
	kernels := []struct {
		name string
		nps  []int
	}{
		{"ep", x.pdesEPNPs()},
		{"mg", x.pdesMGNPs()},
	}
	px := *x
	px.Runtime = mpi.PDES
	for _, k := range kernels {
		s := &report.Series{Name: k.name}
		for _, np := range k.nps {
			if !npb.ValidProcs(k.name, np) {
				return nil, fmt.Errorf("experiments: %s does not accept np=%d", k.name, np)
			}
			p := platform.Scaled(platform.Vayu(), np)
			d, err := px.runSkeleton(k.name, p, np, npb.ClassB)
			if err != nil {
				return nil, err
			}
			s.Add(float64(np), d)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
