package experiments

import (
	"fmt"

	"repro/internal/facility"
	"repro/internal/report"
)

// This file extends the paper's evaluation with the batch-facility study
// (internal/facility): the same multi-tenant workload scheduled four ways
// — static HPC-only placement, ARRIVE-F brokered placement across the
// three platforms, and brokered placement under a spot market with and
// without checkpointing. The artefact is registered as "fac1" (table E14).

// facWorkload returns the E14 workload dimensions at each sweep.
func (x *Ctx) facWorkload() (jobs, tenants, hpcSlots int) {
	switch x.Sweep {
	case SweepSmoke:
		return 320, 48, 64
	case SweepQuick:
		return 3000, 350, 256
	}
	return 12000, 1200, 512
}

// facScenario is one E14 row: a facility configuration applied to the
// shared workload.
type facScenario struct {
	name   string
	broker bool
	spot   bool
	ckpt   bool
}

func facScenarios() []facScenario {
	return []facScenario{
		{name: "static"},
		{name: "broker", broker: true},
		{name: "broker+spot", broker: true, spot: true, ckpt: true},
		{name: "broker+spot-nockpt", broker: true, spot: true},
	}
}

// facRun executes one scenario over the shared workload and broker.
func (x *Ctx) facRun(sc facScenario, jobs []facility.Job, broker *facility.Broker,
	hpcSlots int) (*facility.Result, error) {
	cfg := facility.Config{
		Slots:     [facility.NumPools]int{hpcSlots, hpcSlots / 2, hpcSlots / 2},
		Backfill:  true,
		Fairshare: true,
		Prices:    [facility.NumPools]float64{0, 0.34, 0.68},
		Meter:     x.Meter,
		Metrics:   x.Metrics,
	}
	if sc.broker {
		cfg.Broker = broker
	}
	if sc.spot {
		spot, err := facility.MarketSpot(x.Seed, 0.60, 24*28, 1<<28)
		if err != nil {
			return nil, err
		}
		if !sc.ckpt {
			spot.CheckpointInterval = 0
		}
		cfg.Spot = spot
	}
	f, err := facility.New(cfg)
	if err != nil {
		return nil, err
	}
	return f.Run(jobs)
}

// TableE14Facility produces the E14 artefact: queue-wait and
// bounded-slowdown distributions, cloud offload share, interruption
// accounting and cost-to-solution for each scheduling scenario, plus the
// per-job win rate of brokered placement over the static baseline. The
// broker is calibrated from real reference runs under the Ctx's engine
// (facility.CalibrateBroker); runtime parity of those runs is what keeps
// this table bit-identical across engines.
func (x *Ctx) TableE14Facility() (*report.Table, error) {
	nJobs, tenants, hpcSlots := x.facWorkload()
	jobs, err := facility.Generate(facility.WorkloadSpec{
		Seed: x.Seed, Jobs: nJobs, Tenants: tenants, Slots: hpcSlots,
	})
	if err != nil {
		return nil, err
	}
	broker, err := facility.CalibrateBroker(facility.CalibrateOpts{
		Seed: x.Seed, Runtime: x.Runtime,
		Meter: x.Meter, Metrics: x.Metrics,
	})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: fmt.Sprintf("E14: multi-tenant facility, %d jobs / %d tenants / %d HPC slots (scenario x outcome)",
			nJobs, tenants, hpcSlots),
		Headers: []string{"scenario", "done", "killed", "cloud%",
			"wait p50", "wait p90", "wait p99", "bslow", "bslow p99",
			"intr", "lost(s)", "cost($)", "win% vs static"},
	}
	var static *facility.Result
	for _, sc := range facScenarios() {
		res, err := x.facRun(sc, jobs, broker, hpcSlots)
		if err != nil {
			return nil, fmt.Errorf("e14 scenario %s: %w", sc.name, err)
		}
		if static == nil {
			static = res
		}
		s := facility.Summarize(res.Outcomes, 0)
		t.AddRow(sc.name, s.Completed, s.Killed, 100*s.CloudShare,
			s.WaitP50, s.WaitP90, s.WaitP99, s.SlowMean, s.SlowP99,
			s.Interruptions, s.LostWork, s.Cost, facWinRate(static, res))
	}
	return t, nil
}

// facWinRate returns the percentage of jobs that waited strictly less in
// res than in the static baseline. Outcomes are in submission order in
// both runs, so index i is the same job.
func facWinRate(static, res *facility.Result) float64 {
	if static == res {
		return 0
	}
	wins := 0
	for i := range res.Outcomes {
		if res.Outcomes[i].Wait < static.Outcomes[i].Wait {
			wins++
		}
	}
	return 100 * float64(wins) / float64(len(res.Outcomes))
}

// TableE14Facility is the full-sweep compatibility wrapper.
func TableE14Facility() (*report.Table, error) { return (&Ctx{}).TableE14Facility() }
