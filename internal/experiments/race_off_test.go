//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// see race_on_test.go. Heavier golden sweeps are skipped under the
// detector, whose ~10x slowdown would dominate `go test -race ./...`.
const raceEnabled = false
