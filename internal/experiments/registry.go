package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Kind classifies an artefact's rendering.
type Kind string

const (
	// KindFigure renders as CSV plus an ASCII log-log plot.
	KindFigure Kind = "figure"
	// KindTable renders as CSV plus an aligned text table.
	KindTable Kind = "table"
	// KindText renders as plain text only.
	KindText Kind = "text"
)

// Artefact declares one regenerable output of the paper's evaluation
// section: its identity, kind and a generator that produces the rendered
// files (base name -> bytes) for a given Ctx.
type Artefact struct {
	ID   string
	Kind Kind
	Desc string
	Gen  func(x *Ctx) (map[string][]byte, error)
}

// figureFiles renders a figure artefact's standard file pair.
func figureFiles(base string, fig *report.Figure, err error) (map[string][]byte, error) {
	if err != nil {
		return nil, err
	}
	return map[string][]byte{
		base + ".csv": []byte(fig.CSV()),
		base + ".txt": []byte(fig.ASCII(64, 16)),
	}, nil
}

// tableFiles renders a table artefact's standard file pair.
func tableFiles(base string, t *report.Table, err error) (map[string][]byte, error) {
	if err != nil {
		return nil, err
	}
	return map[string][]byte{
		base + ".csv": []byte(t.CSV()),
		base + ".txt": []byte(t.Render()),
	}, nil
}

// Registry returns the paper's artefacts in presentation order.
func Registry() []Artefact {
	return []Artefact{
		{ID: "fig1", Kind: KindFigure, Desc: "OSU point-to-point bandwidth",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				fig, err := x.Fig1OSUBandwidth(nil)
				return figureFiles("fig1_osu_bandwidth", fig, err)
			}},
		{ID: "fig2", Kind: KindFigure, Desc: "OSU point-to-point latency",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				fig, err := x.Fig2OSULatency(nil)
				return figureFiles("fig2_osu_latency", fig, err)
			}},
		{ID: "fig3", Kind: KindTable, Desc: "NPB class B serial times",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.Fig3NPBSerial()
				return tableFiles("fig3_npb_serial", t, err)
			}},
		{ID: "fig4", Kind: KindFigure, Desc: "NPB class B speedup panels",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				files := map[string][]byte{}
				for _, k := range x.fig4Kernels() {
					fig, ferr := x.Fig4NPBScaling(k)
					panel, err := figureFiles("fig4_"+k+"_scaling", fig, ferr)
					if err != nil {
						return nil, err
					}
					for name, data := range panel {
						files[name] = data
					}
				}
				return files, nil
			}},
		{ID: "table2", Kind: KindTable, Desc: "IPM %comm for CG/FT/IS",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.Table2CommPercent()
				return tableFiles("table2_comm_percent", t, err)
			}},
		{ID: "fig5", Kind: KindFigure, Desc: "Chaste speedup over 8 cores",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				fig, err := x.Fig5Chaste()
				return figureFiles("fig5_chaste_speedup", fig, err)
			}},
		{ID: "fig6", Kind: KindFigure, Desc: "MetUM warmed speedup",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				fig, err := x.Fig6MetUM()
				return figureFiles("fig6_metum_speedup", fig, err)
			}},
		{ID: "table3", Kind: KindTable, Desc: "MetUM statistics at 32 cores",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.Table3MetUM()
				return tableFiles("table3_metum_32", t, err)
			}},
		{ID: "fig7", Kind: KindText, Desc: "UM ATM_STEP per-process breakdown",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				txt, err := x.Fig7Breakdown()
				if err != nil {
					return nil, err
				}
				return map[string][]byte{"fig7_breakdown.txt": []byte(txt)}, nil
			}},
		{ID: "chaste32", Kind: KindTable, Desc: "Chaste 32-core IPM prose numbers",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.Chaste32Prose()
				return tableFiles("chaste32_ipm", t, err)
			}},
		{ID: "fault1", Kind: KindTable, Desc: "MetUM time-to-solution vs MTBF x checkpoint policy",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.TableE12Faults()
				return tableFiles("fault1_e12_resilience", t, err)
			}},
		{ID: "pdes1", Kind: KindFigure, Desc: "NPB class B skeletons at 1k-16k ranks (PDES engine)",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				fig, err := x.FigE13PDESScale()
				return figureFiles("pdes1_e13_scale", fig, err)
			}},
		{ID: "fac1", Kind: KindTable, Desc: "multi-tenant facility: scheduling scenario outcomes",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.TableE14Facility()
				return tableFiles("fac1_e14_facility", t, err)
			}},
		{ID: "fac2", Kind: KindTable, Desc: "facility scale ladder: streaming statistics to 10^6 jobs",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				t, err := x.TableE15FacilityScale()
				return tableFiles("fac2_e15_facility_scale", t, err)
			}},
		{ID: "drift1", Kind: KindFigure, Desc: "weekly platform drift of the OSU/NPB probe set",
			Gen: func(x *Ctx) (map[string][]byte, error) {
				fig, err := x.FigE16Drift()
				return figureFiles("drift1_e16_drift", fig, err)
			}},
	}
}

// KnownIDs returns every registered artefact ID in presentation order.
func KnownIDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, a := range reg {
		ids[i] = a.ID
	}
	return ids
}

// Select resolves a subset of artefact IDs (nil or empty selects all) in
// registry order, rejecting unknown keys with the known-key list — so a
// typo like "fig9" errors out instead of silently running nothing.
func Select(ids []string) ([]Artefact, error) {
	reg := Registry()
	if len(ids) == 0 {
		return reg, nil
	}
	byID := make(map[string]Artefact, len(reg))
	for _, a := range reg {
		byID[a.ID] = a
	}
	want := map[string]bool{}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, ok := byID[id]; !ok {
			known := KnownIDs()
			sort.Strings(known)
			return nil, fmt.Errorf("experiments: unknown artefact %q (known: %s)",
				id, strings.Join(known, ", "))
		}
		want[id] = true
	}
	var sel []Artefact
	for _, a := range reg {
		if want[a.ID] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}

// cacheKey builds the content-address of one artefact computation. The
// faults fragment is included only when fault injection is configured,
// so pre-existing fault-free cache entries stay valid. The manifest
// fragment versions the sibling manifest file each job now emits:
// changing the manifest layout invalidates cached file sets (which
// embed the manifest) without bumping ModelVersion, so the artefact
// bytes themselves are unaffected.
func cacheKey(id string, sweep Sweep, seed uint64, faults fault.Params) *sched.Key {
	params := "sweep=" + string(sweep)
	if f := faults.String(); f != "" {
		params += ",faults={" + f + "}"
	}
	params += ",manifest=v1"
	return &sched.Key{
		Experiment:   id,
		Params:       params,
		Seed:         seed,
		ModelVersion: core.ModelVersion,
	}
}

// Jobs converts the selected artefacts (nil = all) into scheduler jobs at
// the given sweep. Seed offsets every experiment's random streams and is
// part of the cache key; the paper's artefacts use seed 0.
func Jobs(sweep Sweep, seed uint64, ids []string) ([]sched.Job, error) {
	return JobsFaults(sweep, seed, fault.Params{}, ids)
}

// JobsFaults is Jobs with a fault-injection configuration (cmd/repro
// -faults): every NPB-skeleton and application run inside each artefact
// is subjected to the deterministically generated plan and executed
// resiliently (the two-rank OSU calibration microbenchmarks stay
// fault-free). The params are part of each job's cache key.
func JobsFaults(sweep Sweep, seed uint64, faults fault.Params, ids []string) ([]sched.Job, error) {
	return JobsTraced(sweep, seed, faults, ids, nil)
}

// JobsTraced is JobsFaults with a per-run tracer hook (cmd/repro -trace).
// Traced jobs carry no cache key: a timeline only exists when the
// simulation actually runs, so tracing always forces a cold run without
// touching the cache.
func JobsTraced(sweep Sweep, seed uint64, faults fault.Params, ids []string,
	tracer func(np int) mpi.Tracer) ([]sched.Job, error) {
	if sweep == "" {
		sweep = SweepFull
	}
	sel, err := Select(ids)
	if err != nil {
		return nil, err
	}
	jobs := make([]sched.Job, 0, len(sel))
	for _, a := range sel {
		a := a
		key := cacheKey(a.ID, sweep, seed, faults)
		if tracer != nil {
			key = nil
		}
		jobs = append(jobs, sched.Job{
			ID:  a.ID,
			Key: key,
			Run: func(ctx *sched.Ctx) (map[string][]byte, error) {
				reg := obs.NewRegistry()
				x := &Ctx{Sweep: sweep, Seed: seed, Faults: faults,
					Meter: ctx.Meter(), Metrics: reg, Tracer: tracer}
				files, err := a.Gen(x)
				if err != nil {
					return nil, err
				}
				man, err := artefactManifest(a.ID, sweep, seed, faults, ctx.Meter(), reg, files)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s manifest: %w", a.ID, err)
				}
				files[a.ID+".manifest.json"] = man
				return files, nil
			},
		})
	}
	return jobs, nil
}

// artefactManifest builds the provenance record emitted next to one
// artefact's files. It is deterministic: the metrics snapshot excludes
// volatile (scheduling-dependent) series, WallSeconds stays zero, and
// the artefact hashes are pure functions of the generated bytes — so
// regenerating an artefact regenerates its manifest byte-identically.
func artefactManifest(id string, sweep Sweep, seed uint64, faults fault.Params,
	meter *sim.Meter, reg *obs.Registry, files map[string][]byte) ([]byte, error) {
	m := &obs.Manifest{
		Schema:       obs.ManifestSchema,
		Binary:       "repro",
		Artefact:     id,
		ModelVersion: core.ModelVersion,
		Seed:         seed,
		Knobs:        map[string]string{"sweep": string(sweep)},
		FaultSpec:    faults.String(),
		Metrics:      reg.Snapshot(false),
		Artefacts:    obs.HashArtefacts(files),
	}
	if meter != nil {
		m.VirtualSeconds = meter.Total()
	}
	return m.Encode()
}
