package experiments

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestFig1Shape(t *testing.T) {
	fig, err := Fig1OSUBandwidth([]int{64, 1 << 18, 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 platform curves, got %d", len(fig.Series))
	}
	// Vayu must dominate at every size (Figure 1's headline).
	var vayu, dcc *int
	for i, s := range fig.Series {
		i := i
		if strings.Contains(s.Name, "vayu") {
			vayu = &i
		}
		if strings.Contains(s.Name, "dcc") {
			dcc = &i
		}
	}
	if vayu == nil || dcc == nil {
		t.Fatal("missing series")
	}
	for k := range fig.Series[*vayu].Y {
		if fig.Series[*vayu].Y[k] <= fig.Series[*dcc].Y[k] {
			t.Fatalf("vayu bandwidth not above dcc at point %d", k)
		}
	}
	if csv := fig.CSV(); !strings.HasPrefix(csv, "x,") {
		t.Fatal("figure CSV malformed")
	}
}

func TestFig2Shape(t *testing.T) {
	fig, err := Fig2OSULatency([]int{1, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if strings.Contains(s.Name, "vayu") && s.Y[0] > 5 {
			t.Fatalf("vayu 1-byte latency %v us, want a few", s.Y[0])
		}
		if strings.Contains(s.Name, "dcc") && s.Y[0] < 40 {
			t.Fatalf("dcc 1-byte latency %v us, want tens", s.Y[0])
		}
	}
}

func TestFig3TableShape(t *testing.T) {
	tbl, err := Fig3NPBSerial()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("want 8 kernels, got %d rows", len(tbl.Rows))
	}
	render := tbl.Render()
	for _, k := range []string{"BT.B.1", "EP.B.1", "SP.B.1"} {
		if !strings.Contains(render, k) {
			t.Fatalf("missing %s in:\n%s", k, render)
		}
	}
}

func TestFig4PanelShape(t *testing.T) {
	fig, err := Fig4NPBScaling("is")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 curves, got %d", len(fig.Series))
	}
	// Speedup at np=1 must be exactly 1 for every platform.
	for _, s := range fig.Series {
		if s.Y[0] != 1 {
			t.Fatalf("%s speedup at base = %v", s.Name, s.Y[0])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tbl, err := Table3MetUM()
	if err != nil {
		t.Fatal(err)
	}
	render := tbl.Render()
	for _, metric := range []string{"time(s)", "rcomp", "rcomm", "%comm", "%imbal", "I/O (s)"} {
		if !strings.Contains(render, metric) {
			t.Fatalf("missing %s in:\n%s", metric, render)
		}
	}
	// rcomp row: vayu column must be 1.
	for _, row := range tbl.Rows {
		if row[0] == "rcomp" && row[1] != "1" {
			t.Fatalf("vayu rcomp = %s, want 1", row[1])
		}
	}
}

func TestFig7Breakdown(t *testing.T) {
	txt, err := Fig7Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "vayu") || !strings.Contains(txt, "dcc") {
		t.Fatalf("breakdown missing platforms:\n%s", txt)
	}
	if !strings.Contains(txt, "p31") {
		t.Fatalf("breakdown should cover 32 processes:\n%s", txt)
	}
}

func TestUMProfileExtraction(t *testing.T) {
	pr, err := UMProfile(platform.Vayu(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NP != 16 || pr.Time() <= 0 {
		t.Fatalf("bad profile: np=%d time=%v", pr.NP, pr.Time())
	}
	if pr.Calls["Allreduce"].Count == 0 {
		t.Fatal("UM profile should include the Helmholtz all-reduces")
	}
}
