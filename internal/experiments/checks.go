package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/osu"
	"repro/internal/platform"
)

// Check is one machine-verifiable claim from the paper.
type Check struct {
	ID     string // experiment id, e.g. "E1"
	Claim  string // the paper's statement being tested
	Passed bool
	Detail string // measured values
}

// ratio helpers for readable detail strings.
func between(v, lo, hi float64) bool { return v >= lo && v <= hi }

// RunChecks evaluates the reproduction's headline claims against the
// paper and returns one result per claim. It is the programmatic core of
// `cmd/repro -check`.
func RunChecks() ([]Check, error) {
	var checks []Check
	add := func(id, claim string, passed bool, detail string, args ...any) {
		checks = append(checks, Check{ID: id, Claim: claim, Passed: passed,
			Detail: fmt.Sprintf(detail, args...)})
	}

	// E1: bandwidth peaks and ordering.
	bw := map[string]float64{}
	for _, p := range platform.All() {
		pts, err := osu.Bandwidth(p, []int{4 << 20})
		if err != nil {
			return nil, err
		}
		bw[p.Name] = pts[0].Value
	}
	add("E1", "OSU peak bandwidth ~3200/560/190 MB/s (vayu/ec2/dcc)",
		between(bw["vayu"], 2900, 3500) && between(bw["ec2"], 500, 620) && between(bw["dcc"], 170, 210),
		"vayu=%.0f ec2=%.0f dcc=%.0f MB/s", bw["vayu"], bw["ec2"], bw["dcc"])

	// E2: latency ordering and DCC fluctuation.
	lat := map[string]float64{}
	for _, p := range platform.All() {
		pts, err := osu.Latency(p, []int{1})
		if err != nil {
			return nil, err
		}
		lat[p.Name] = pts[0].Value * 1e6
	}
	add("E2", "1-byte latency: vayu microseconds << ec2 << dcc",
		lat["vayu"] < 5 && lat["vayu"] < lat["ec2"] && lat["ec2"] < lat["dcc"],
		"vayu=%.1f ec2=%.1f dcc=%.1f us", lat["vayu"], lat["ec2"], lat["dcc"])

	// E3: serial calibration against Figure 3's DCC walltimes.
	fig3 := map[string]float64{"bt": 1696.9, "ep": 141.5, "cg": 244.9, "ft": 327.6,
		"is": 8.6, "lu": 1514.7, "mg": 72.0, "sp": 1936.1}
	worst := 0.0
	for name, want := range fig3 {
		got, err := runSkeleton(name, platform.DCC(), 1, npb.ClassB)
		if err != nil {
			return nil, err
		}
		rel := got/want - 1
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
	}
	add("E3", "NPB class B serial DCC walltimes within 10% of Figure 3",
		worst < 0.10, "worst relative error %.1f%%", worst*100)

	// E4: scaling crossovers.
	epVayu64, err := speedupAt("ep", platform.Vayu(), 64)
	if err != nil {
		return nil, err
	}
	add("E4a", "EP near-linear on vayu", epVayu64 > 50, "speedup@64 = %.1f", epVayu64)
	ftDCC64, err := speedupAt("ft", platform.DCC(), 64)
	if err != nil {
		return nil, err
	}
	ftVayu64, err := speedupAt("ft", platform.Vayu(), 64)
	if err != nil {
		return nil, err
	}
	add("E4b", "FT: vayu almost linear, dcc poor", ftVayu64 > 40 && ftDCC64 < 10,
		"vayu=%.1f dcc=%.1f", ftVayu64, ftDCC64)
	isBest := 0.0
	for _, p := range platform.All() {
		s, err := speedupAt("is", p, 64)
		if err != nil {
			return nil, err
		}
		if s > isBest {
			isBest = s
		}
	}
	add("E4c", "IS does not scale well on any cluster", isBest < 32, "best speedup@64 = %.1f", isBest)
	cgD8, err := speedupAt("cg", platform.DCC(), 8)
	if err != nil {
		return nil, err
	}
	cgV8, err := speedupAt("cg", platform.Vayu(), 8)
	if err != nil {
		return nil, err
	}
	add("E4d", "CG speedup dips at 8 on DCC (NUMA masking)", cgD8 < 0.8*cgV8,
		"dcc=%.1f vayu=%.1f at np=8", cgD8, cgV8)

	// E5: Table II %comm at np=64.
	commAt := func(kernel string, p *platform.Platform) (float64, error) {
		fn, err := suite.Skeleton(kernel)
		if err != nil {
			return 0, err
		}
		out, err := core.Execute(core.RunSpec{Platform: p, NP: 64}, func(c *mpi.Comm) error {
			return fn(c, npb.ClassB)
		})
		if err != nil {
			return 0, err
		}
		return out.Profile.CommPercent(), nil
	}
	isDCC, err := commAt("is", platform.DCC())
	if err != nil {
		return nil, err
	}
	cgVayu, err := commAt("cg", platform.Vayu())
	if err != nil {
		return nil, err
	}
	add("E5", "Table II: IS on DCC spends almost all walltime in comm at 64; vayu CG stays moderate",
		isDCC > 85 && cgVayu < 30, "IS dcc=%.1f%% CG vayu=%.1f%%", isDCC, cgVayu)

	// E7/E8: MetUM Table III ratios.
	_, vo, err := umRun(platform.Vayu(), 32, 0)
	if err != nil {
		return nil, err
	}
	_, do, err := umRun(platform.DCC(), 32, 0)
	if err != nil {
		return nil, err
	}
	_, eo, err := umRun(platform.EC2(), 32, 2)
	if err != nil {
		return nil, err
	}
	_, fo, err := umRun(platform.EC2(), 32, 4)
	if err != nil {
		return nil, err
	}
	rcompD := do.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	rcommD := do.Profile.Comm.Sum() / vo.Profile.Comm.Sum()
	rcompE := eo.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	rcompF := fo.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	add("E8a", "Table III rcomp ~1.37 (dcc), ~2.39 (ec2), ~1.17 (ec2-4)",
		between(rcompD, 1.25, 1.5) && between(rcompE, 2.1, 2.6) && between(rcompF, 1.1, 1.3),
		"dcc=%.2f ec2=%.2f ec2-4=%.2f", rcompD, rcompE, rcompF)
	add("E8b", "Table III rcomm ~6.7 (dcc)", between(rcommD, 5, 8.5), "rcomm=%.2f", rcommD)
	add("E8c", "EC2-4 nearly twice as fast as EC2 at 32 cores",
		between(eo.Time()/fo.Time(), 1.6, 2.4), "ratio=%.2f", eo.Time()/fo.Time())

	// E10: Chaste 32-core prose.
	_, cvo, err := chasteRun(platform.Vayu(), 32)
	if err != nil {
		return nil, err
	}
	_, cdo, err := chasteRun(platform.DCC(), 32)
	if err != nil {
		return nil, err
	}
	add("E10", "Chaste at 32: ~48% comm on DCC, ~11% on Vayu",
		between(cdo.Profile.CommPercent(), 38, 58) && cvo.Profile.CommPercent() < 20,
		"dcc=%.1f%% vayu=%.1f%%", cdo.Profile.CommPercent(), cvo.Profile.CommPercent())

	return checks, nil
}

// speedupAt returns one kernel's class-B speedup at np over np=1.
func speedupAt(kernel string, p *platform.Platform, np int) (float64, error) {
	t1, err := runSkeleton(kernel, p, 1, npb.ClassB)
	if err != nil {
		return 0, err
	}
	tn, err := runSkeleton(kernel, p, np, npb.ClassB)
	if err != nil {
		return 0, err
	}
	return t1 / tn, nil
}
