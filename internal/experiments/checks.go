package experiments

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/npb"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Check is one machine-verifiable claim from the paper.
type Check struct {
	ID     string // experiment id, e.g. "E1"
	Claim  string // the paper's statement being tested
	Passed bool
	Detail string // measured values
}

// ratio helpers for readable detail strings.
func between(v, lo, hi float64) bool { return v >= lo && v <= hi }

// checkGroup is one independently schedulable batch of claims; each group
// is a pure function of the model, so groups run in parallel.
type checkGroup struct {
	ID  string
	Run func(x *Ctx) ([]Check, error)
}

// checkAdder collects claims with formatted detail strings.
type checkAdder struct{ checks []Check }

func (a *checkAdder) add(id, claim string, passed bool, detail string, args ...any) {
	a.checks = append(a.checks, Check{ID: id, Claim: claim, Passed: passed,
		Detail: fmt.Sprintf(detail, args...)})
}

// checkGroups returns the paper's headline claims, grouped by the
// measurements they share, in report order.
func checkGroups() []checkGroup {
	return []checkGroup{
		{ID: "E1", Run: checkE1Bandwidth},
		{ID: "E2", Run: checkE2Latency},
		{ID: "E3", Run: checkE3SerialCalibration},
		{ID: "E4", Run: checkE4Scaling},
		{ID: "E5", Run: checkE5CommPercent},
		{ID: "E8", Run: checkE8MetUM},
		{ID: "E10", Run: checkE10Chaste},
	}
}

// checkE1Bandwidth: bandwidth peaks and ordering (Figure 1).
func checkE1Bandwidth(x *Ctx) ([]Check, error) {
	var a checkAdder
	bw := map[string]float64{}
	for _, p := range platform.All() {
		v, err := x.bandwidthAt(p, 4<<20)
		if err != nil {
			return nil, err
		}
		bw[p.Name] = v
	}
	a.add("E1", "OSU peak bandwidth ~3200/560/190 MB/s (vayu/ec2/dcc)",
		between(bw["vayu"], 2900, 3500) && between(bw["ec2"], 500, 620) && between(bw["dcc"], 170, 210),
		"vayu=%.0f ec2=%.0f dcc=%.0f MB/s", bw["vayu"], bw["ec2"], bw["dcc"])
	return a.checks, nil
}

// checkE2Latency: latency ordering and DCC fluctuation (Figure 2).
func checkE2Latency(x *Ctx) ([]Check, error) {
	var a checkAdder
	lat := map[string]float64{}
	for _, p := range platform.All() {
		us, err := x.latencyAt(p, 1)
		if err != nil {
			return nil, err
		}
		lat[p.Name] = us
	}
	a.add("E2", "1-byte latency: vayu microseconds << ec2 << dcc",
		lat["vayu"] < 5 && lat["vayu"] < lat["ec2"] && lat["ec2"] < lat["dcc"],
		"vayu=%.1f ec2=%.1f dcc=%.1f us", lat["vayu"], lat["ec2"], lat["dcc"])
	return a.checks, nil
}

// checkE3SerialCalibration: serial walltimes against Figure 3's DCC column.
func checkE3SerialCalibration(x *Ctx) ([]Check, error) {
	var a checkAdder
	fig3 := map[string]float64{"bt": 1696.9, "ep": 141.5, "cg": 244.9, "ft": 327.6,
		"is": 8.6, "lu": 1514.7, "mg": 72.0, "sp": 1936.1}
	kernels := make([]string, 0, len(fig3))
	for name := range fig3 {
		kernels = append(kernels, name)
	}
	sort.Strings(kernels)
	worst := 0.0
	for _, name := range kernels {
		want := fig3[name]
		got, err := x.runSkeleton(name, platform.DCC(), 1, npb.ClassB)
		if err != nil {
			return nil, err
		}
		rel := got/want - 1
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
	}
	a.add("E3", "NPB class B serial DCC walltimes within 10% of Figure 3",
		worst < 0.10, "worst relative error %.1f%%", worst*100)
	return a.checks, nil
}

// checkE4Scaling: the Figure 4 scaling crossovers.
func checkE4Scaling(x *Ctx) ([]Check, error) {
	var a checkAdder
	epVayu64, err := x.speedupAt("ep", platform.Vayu(), 64)
	if err != nil {
		return nil, err
	}
	a.add("E4a", "EP near-linear on vayu", epVayu64 > 50, "speedup@64 = %.1f", epVayu64)
	ftDCC64, err := x.speedupAt("ft", platform.DCC(), 64)
	if err != nil {
		return nil, err
	}
	ftVayu64, err := x.speedupAt("ft", platform.Vayu(), 64)
	if err != nil {
		return nil, err
	}
	a.add("E4b", "FT: vayu almost linear, dcc poor", ftVayu64 > 40 && ftDCC64 < 10,
		"vayu=%.1f dcc=%.1f", ftVayu64, ftDCC64)
	isBest := 0.0
	for _, p := range platform.All() {
		s, err := x.speedupAt("is", p, 64)
		if err != nil {
			return nil, err
		}
		if s > isBest {
			isBest = s
		}
	}
	a.add("E4c", "IS does not scale well on any cluster", isBest < 32, "best speedup@64 = %.1f", isBest)
	cgD8, err := x.speedupAt("cg", platform.DCC(), 8)
	if err != nil {
		return nil, err
	}
	cgV8, err := x.speedupAt("cg", platform.Vayu(), 8)
	if err != nil {
		return nil, err
	}
	a.add("E4d", "CG speedup dips at 8 on DCC (NUMA masking)", cgD8 < 0.8*cgV8,
		"dcc=%.1f vayu=%.1f at np=8", cgD8, cgV8)
	return a.checks, nil
}

// checkE5CommPercent: Table II %comm at np=64.
func checkE5CommPercent(x *Ctx) ([]Check, error) {
	var a checkAdder
	isDCC, err := x.commAt("is", platform.DCC(), 64)
	if err != nil {
		return nil, err
	}
	cgVayu, err := x.commAt("cg", platform.Vayu(), 64)
	if err != nil {
		return nil, err
	}
	a.add("E5", "Table II: IS on DCC spends almost all walltime in comm at 64; vayu CG stays moderate",
		isDCC > 85 && cgVayu < 30, "IS dcc=%.1f%% CG vayu=%.1f%%", isDCC, cgVayu)
	return a.checks, nil
}

// checkE8MetUM: the Table III ratios.
func checkE8MetUM(x *Ctx) ([]Check, error) {
	var a checkAdder
	_, vo, err := x.umRun(platform.Vayu(), 32, 0)
	if err != nil {
		return nil, err
	}
	_, do, err := x.umRun(platform.DCC(), 32, 0)
	if err != nil {
		return nil, err
	}
	_, eo, err := x.umRun(platform.EC2(), 32, 2)
	if err != nil {
		return nil, err
	}
	_, fo, err := x.umRun(platform.EC2(), 32, 4)
	if err != nil {
		return nil, err
	}
	rcompD := do.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	rcommD := do.Profile.Comm.Sum() / vo.Profile.Comm.Sum()
	rcompE := eo.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	rcompF := fo.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	a.add("E8a", "Table III rcomp ~1.37 (dcc), ~2.39 (ec2), ~1.17 (ec2-4)",
		between(rcompD, 1.25, 1.5) && between(rcompE, 2.1, 2.6) && between(rcompF, 1.1, 1.3),
		"dcc=%.2f ec2=%.2f ec2-4=%.2f", rcompD, rcompE, rcompF)
	a.add("E8b", "Table III rcomm ~6.7 (dcc)", between(rcommD, 5, 8.5), "rcomm=%.2f", rcommD)
	a.add("E8c", "EC2-4 nearly twice as fast as EC2 at 32 cores",
		between(eo.Time()/fo.Time(), 1.6, 2.4), "ratio=%.2f", eo.Time()/fo.Time())
	return a.checks, nil
}

// checkE10Chaste: the Chaste 32-core prose numbers.
func checkE10Chaste(x *Ctx) ([]Check, error) {
	var a checkAdder
	_, cvo, err := x.chasteRun(platform.Vayu(), 32)
	if err != nil {
		return nil, err
	}
	_, cdo, err := x.chasteRun(platform.DCC(), 32)
	if err != nil {
		return nil, err
	}
	a.add("E10", "Chaste at 32: ~48% comm on DCC, ~11% on Vayu",
		between(cdo.Profile.CommPercent(), 38, 58) && cvo.Profile.CommPercent() < 20,
		"dcc=%.1f%% vayu=%.1f%%", cdo.Profile.CommPercent(), cvo.Profile.CommPercent())
	return a.checks, nil
}

// checksFile is the single artefact file a check job produces.
const checksFile = "checks.json"

// CheckJobs converts every claim group into a scheduler job whose output
// file is the group's JSON-encoded []Check. Claims always evaluate at the
// full sweep (their thresholds are calibrated against the paper's full
// parameter space).
func CheckJobs() []sched.Job {
	groups := checkGroups()
	jobs := make([]sched.Job, 0, len(groups))
	for _, g := range groups {
		g := g
		jobs = append(jobs, sched.Job{
			ID:  g.ID,
			Key: cacheKey("check:"+g.ID, SweepFull, 0, fault.Params{}),
			Run: func(ctx *sched.Ctx) (map[string][]byte, error) {
				checks, err := g.Run(&Ctx{Sweep: SweepFull, Meter: ctx.Meter()})
				if err != nil {
					return nil, err
				}
				raw, err := json.Marshal(checks)
				if err != nil {
					return nil, err
				}
				return map[string][]byte{checksFile: raw}, nil
			},
		})
	}
	return jobs
}

// DecodeChecks extracts the claims from one check job's output files.
func DecodeChecks(files map[string][]byte) ([]Check, error) {
	raw, ok := files[checksFile]
	if !ok {
		return nil, fmt.Errorf("experiments: check result missing %s", checksFile)
	}
	var checks []Check
	if err := json.Unmarshal(raw, &checks); err != nil {
		return nil, fmt.Errorf("experiments: decode checks: %w", err)
	}
	return checks, nil
}

// RunChecks evaluates the reproduction's headline claims against the
// paper and returns one result per claim, in report order. It is the
// programmatic core of `cmd/repro -check`; the claim groups execute
// concurrently on the scheduler's default worker pool.
func RunChecks() ([]Check, error) {
	return RunChecksScheduled(sched.Options{})
}

// RunChecksScheduled is RunChecks with explicit scheduler options
// (worker-pool size, result cache). Claim order in the returned slice is
// deterministic regardless of scheduling.
func RunChecksScheduled(opt sched.Options) ([]Check, error) {
	results, err := sched.Run(CheckJobs(), opt)
	if err != nil {
		return nil, err
	}
	var all []Check
	for _, r := range results {
		checks, err := DecodeChecks(r.Files)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.ID, err)
		}
		all = append(all, checks...)
	}
	return all, nil
}
