package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// runArtefacts regenerates a set of artefacts at a sweep with the given
// worker count (no cache) and returns the flattened file map.
func runArtefacts(t *testing.T, sweep Sweep, workers int, ids []string) map[string][]byte {
	t.Helper()
	jobs, err := Jobs(sweep, 0, ids)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sched.Run(jobs, sched.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	for _, r := range results {
		if r.Status != sched.Done {
			t.Fatalf("job %s status %s, want done", r.ID, r.Status)
		}
		for name, data := range r.Files {
			if _, dup := files[name]; dup {
				t.Fatalf("two artefacts produce file %s", name)
			}
			files[name] = data
		}
	}
	return files
}

// compareRuns asserts two regenerations produced byte-identical files.
func compareRuns(t *testing.T, seq, par map[string][]byte) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("file count differs: %d sequential vs %d parallel", len(seq), len(par))
	}
	for name, want := range seq {
		got, ok := par[name]
		if !ok {
			t.Errorf("parallel run missing %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between -j 1 and -j 8", name)
		}
	}
}

// TestGoldenDeterminismSmoke regenerates every artefact at the smoke
// sweep sequentially and with 8 workers and asserts byte-identical
// output: scheduling must not leak into results.
func TestGoldenDeterminismSmoke(t *testing.T) {
	seq := runArtefacts(t, SweepSmoke, 1, nil)
	par := runArtefacts(t, SweepSmoke, 8, nil)
	if len(seq) == 0 {
		t.Fatal("smoke run produced no files")
	}
	compareRuns(t, seq, par)
}

// TestGoldenDeterminismQuick is the same property at the quick sweep —
// the artefact set `cmd/repro -quick` ships — minus fig5, whose Chaste
// sweep dominates the runtime. Skipped in -short mode and under the race
// detector (TestGoldenDeterminismSmoke still covers every generator
// there).
func TestGoldenDeterminismQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-sweep golden run skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("quick-sweep golden run skipped under the race detector")
	}
	ids := []string{"fig1", "fig2", "fig3", "fig4", "table2", "fig6", "table3", "fig7", "chaste32"}
	seq := runArtefacts(t, SweepQuick, 1, ids)
	par := runArtefacts(t, SweepQuick, 8, ids)
	compareRuns(t, seq, par)
}

// TestArtefactManifests: every artefact job emits a sibling
// <id>.manifest.json that validates, hashes exactly its sibling files,
// and contains only deterministic content (no wall time, no volatile
// metrics) — the provenance record make verify checks on results/.
func TestArtefactManifests(t *testing.T) {
	jobs, err := Jobs(SweepSmoke, 7, []string{"fig1", "fig7"})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sched.Run(jobs, sched.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		data, ok := r.Files[r.ID+".manifest.json"]
		if !ok {
			t.Fatalf("%s: no sibling manifest in %d files", r.ID, len(r.Files))
		}
		m, err := obs.DecodeManifest(data)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if m.Binary != "repro" || m.Artefact != r.ID || m.Seed != 7 ||
			m.Knobs["sweep"] != string(SweepSmoke) {
			t.Fatalf("%s: manifest header %+v", r.ID, m)
		}
		if m.WallSeconds != 0 {
			t.Fatalf("%s: wall time %v leaked into a deterministic manifest", r.ID, m.WallSeconds)
		}
		if m.VirtualSeconds <= 0 {
			t.Fatalf("%s: no virtual time recorded", r.ID)
		}
		for name, met := range m.Metrics {
			if met.Volatile {
				t.Fatalf("%s: volatile metric %s in stable snapshot", r.ID, name)
			}
		}
		if len(m.Artefacts) != len(r.Files)-1 {
			t.Fatalf("%s: manifest hashes %d files, want %d", r.ID, len(m.Artefacts), len(r.Files)-1)
		}
		for name, want := range m.Artefacts {
			content, ok := r.Files[name]
			if !ok {
				t.Fatalf("%s: manifest lists unknown file %s", r.ID, name)
			}
			sum := sha256.Sum256(content)
			if hex.EncodeToString(sum[:]) != want {
				t.Fatalf("%s: hash mismatch for %s", r.ID, name)
			}
		}
	}
}

// TestSelectUnknownArtefact pins the -only bugfix: an unknown key errors
// with the known-key list instead of silently selecting nothing.
func TestSelectUnknownArtefact(t *testing.T) {
	if _, err := Jobs(SweepSmoke, 0, []string{"fig9"}); err == nil {
		t.Fatal("want error for unknown artefact fig9")
	} else if want := "unknown artefact"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("err = %v, want mention of %q", err, want)
	} else if !bytes.Contains([]byte(err.Error()), []byte("fig4")) {
		t.Fatalf("err = %v, want known-key list", err)
	}
	sel, err := Select(nil)
	if err != nil || len(sel) != len(Registry()) {
		t.Fatalf("Select(nil) = %d artefacts, err %v; want all", len(sel), err)
	}
}

// TestChecksScheduledMatchesOrder: the scheduled check run returns claims
// in stable report order regardless of worker count.
func TestChecksScheduledMatchesOrder(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-sweep check run skipped in -short mode and under the race detector")
	}
	checks, err := RunChecksScheduled(sched.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"E1", "E2", "E3", "E4a", "E4b", "E4c", "E4d", "E5", "E8a", "E8b", "E8c", "E10"}
	if len(checks) != len(wantOrder) {
		t.Fatalf("got %d checks, want %d", len(checks), len(wantOrder))
	}
	for i, c := range checks {
		if c.ID != wantOrder[i] {
			t.Errorf("check %d = %s, want %s", i, c.ID, wantOrder[i])
		}
		if !c.Passed {
			t.Errorf("check %s failed: %s (%s)", c.ID, c.Claim, c.Detail)
		}
	}
}
