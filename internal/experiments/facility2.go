package experiments

import (
	"fmt"

	"repro/internal/facility"
	"repro/internal/report"
)

// This file is the batch-facility scale study (artefact "fac2", table
// E15): the fully-featured facility — EASY backfill, decayed-usage
// fairshare, calibrated ARRIVE-F broker, checkpointed spot market —
// driven up a workload ladder that ends at a million jobs from a
// hundred thousand tenants. Each rung runs through RunStream with
// reservoir statistics, so memory stays bounded by the in-flight job
// set and the rung's cost is dominated by the event loop the
// incremental scheduler keeps near O(log n) per event. The per-rung
// stream digest pins the entire outcome stream bit-for-bit.

// fac2Rung is one scale-ladder rung of the E15 streaming study.
type fac2Rung struct {
	jobs, tenants, hpcSlots int
}

// fac2Ladder returns the E15 workload ladder at each sweep. The full
// sweep's top rung is the million-job acceptance run.
func (x *Ctx) fac2Ladder() []fac2Rung {
	switch x.Sweep {
	case SweepSmoke:
		return []fac2Rung{{800, 80, 128}, {1600, 160, 128}}
	case SweepQuick:
		return []fac2Rung{{10000, 1000, 512}, {40000, 4000, 512}}
	}
	return []fac2Rung{
		{10000, 1000, 1024},
		{100000, 10000, 1024},
		{1000000, 100000, 1024},
	}
}

// TableE15FacilityScale produces the E15 artefact: outcome statistics
// at each rung of the scale ladder under the brokered, spot-backed
// configuration. Counters (events, killed, cloud share, cost) are
// exact; wait and slowdown percentiles come from the seeded reservoir,
// so every cell — including the truncated stream digest — is a
// deterministic function of the seed.
func (x *Ctx) TableE15FacilityScale() (*report.Table, error) {
	broker, err := facility.CalibrateBroker(facility.CalibrateOpts{
		Seed: x.Seed, Runtime: x.Runtime,
		Meter: x.Meter, Metrics: x.Metrics,
	})
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "E15: facility scale ladder, streaming statistics (broker+spot, incremental scheduler)",
		Headers: []string{"jobs", "tenants", "slots", "events", "makespan(s)",
			"wait p50", "wait p90", "wait p99", "bslow p99", "killed",
			"cloud%", "cost($)", "digest"},
	}
	for _, r := range x.fac2Ladder() {
		jobs, err := facility.Generate(facility.WorkloadSpec{
			Seed: x.Seed, Jobs: r.jobs, Tenants: r.tenants, Slots: r.hpcSlots,
		})
		if err != nil {
			return nil, err
		}
		spot, err := facility.MarketSpot(x.Seed, 0.60, 24*28, 1<<28)
		if err != nil {
			return nil, err
		}
		cfg := facility.Config{
			Slots:     [facility.NumPools]int{r.hpcSlots, r.hpcSlots / 2, r.hpcSlots / 2},
			Backfill:  true,
			Fairshare: true,
			Broker:    broker,
			Spot:      spot,
			Prices:    [facility.NumPools]float64{0, 0.34, 0.68},
			Meter:     x.Meter,
			Metrics:   x.Metrics,
		}
		f, err := facility.New(cfg)
		if err != nil {
			return nil, err
		}
		ss := facility.NewStreamSummary(0, x.Seed)
		sd := facility.NewStreamDigest()
		sr, err := f.RunStream(jobs, func(o facility.Outcome) {
			ss.Observe(o)
			sd.Observe(o)
		})
		if err != nil {
			return nil, fmt.Errorf("e15 rung %d jobs: %w", r.jobs, err)
		}
		s := ss.Summary()
		if s.Completed+s.Killed != r.jobs {
			return nil, fmt.Errorf("e15 rung %d jobs: conservation: %d+%d",
				r.jobs, s.Completed, s.Killed)
		}
		t.AddRow(r.jobs, r.tenants, r.hpcSlots, sr.Events, s.Makespan,
			s.WaitP50, s.WaitP90, s.WaitP99, s.SlowP99, s.Killed,
			100*s.CloudShare, s.Cost, sd.Sum(sr.Clock, sr.Events)[:12])
	}
	return t, nil
}
