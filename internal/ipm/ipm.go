// Package ipm implements an IPM-style performance profiler for the mpi
// runtime: per-rank and per-region accounting of communication,
// computation and I/O time, per-call statistics, message-size histograms,
// communication percentage and load-imbalance metrics — the numbers the
// paper reports in Tables II/III and Figure 7.
package ipm

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// DefaultRegion is the region label used before the first Comm.Region call.
const DefaultRegion = "(main)"

// CallStats aggregates one MPI call type.
type CallStats struct {
	Count int
	Time  float64
	Bytes int64
}

// RegionStats aggregates activity inside one profiling region on one rank.
type RegionStats struct {
	Comm    float64
	Compute float64
	IO      float64
	Wait    float64 // of Comm: blocked waiting for peers (late sender / straggler)
	Queued  float64 // messages for this rank sat unmatched this long
	Calls   map[string]*CallStats
}

// Wall returns the accounted virtual time in the region.
func (r *RegionStats) Wall() float64 { return r.Comm + r.Compute + r.IO }

// rankCollector gathers events for one rank. All events for a rank arrive
// from that rank's goroutine, so no locking is needed.
type rankCollector struct {
	region   string
	comm     float64
	compute  float64
	io       float64
	wait     float64
	queued   float64
	calls    map[string]*CallStats
	regions  map[string]*RegionStats
	sizeHist map[int]int // log2 bucket -> message count
}

func newRankCollector() *rankCollector {
	rc := &rankCollector{
		region:   DefaultRegion,
		calls:    map[string]*CallStats{},
		regions:  map[string]*RegionStats{},
		sizeHist: map[int]int{},
	}
	rc.regions[DefaultRegion] = &RegionStats{Calls: map[string]*CallStats{}}
	return rc
}

func (rc *rankCollector) regionStats() *RegionStats {
	rs, ok := rc.regions[rc.region]
	if !ok {
		rs = &RegionStats{Calls: map[string]*CallStats{}}
		rc.regions[rc.region] = rs
	}
	return rs
}

// Profiler implements mpi.Tracer.
type Profiler struct {
	ranks []*rankCollector
}

var _ mpi.Tracer = (*Profiler)(nil)

// New creates a profiler for np ranks.
func New(np int) *Profiler {
	p := &Profiler{ranks: make([]*rankCollector, np)}
	for i := range p.ranks {
		p.ranks[i] = newRankCollector()
	}
	return p
}

// Call implements mpi.Tracer.
func (p *Profiler) Call(rank int, rec mpi.CallRecord) {
	rc := p.ranks[rank]
	rc.comm += rec.Dur
	rc.wait += rec.Wait
	rc.queued += rec.Queued
	upd := func(m map[string]*CallStats) {
		cs, ok := m[rec.Name]
		if !ok {
			cs = &CallStats{}
			m[rec.Name] = cs
		}
		cs.Count++
		cs.Time += rec.Dur
		cs.Bytes += int64(rec.Bytes)
	}
	upd(rc.calls)
	rs := rc.regionStats()
	rs.Comm += rec.Dur
	rs.Wait += rec.Wait
	rs.Queued += rec.Queued
	upd(rs.Calls)
	rc.sizeHist[sizeBucket(rec.Bytes)]++
}

// Advance implements mpi.Tracer.
func (p *Profiler) Advance(rank int, kind string, start, dur float64) {
	rc := p.ranks[rank]
	rs := rc.regionStats()
	switch kind {
	case "compute":
		rc.compute += dur
		rs.Compute += dur
	case "io":
		rc.io += dur
		rs.IO += dur
	}
}

// Region implements mpi.Tracer.
func (p *Profiler) Region(rank int, name string, at float64) {
	if name == "" {
		name = DefaultRegion
	}
	p.ranks[rank].region = name
}

// sizeBucket returns the log2 bucket index for a message size (0 bytes
// maps to bucket 0).
func sizeBucket(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// BucketBytes returns the upper bound of a histogram bucket.
func BucketBytes(bucket int) int { return 1 << bucket }

// Profile is an immutable snapshot of a finished run.
type Profile struct {
	NP     int
	Wall   sim.Series // per-rank final clocks
	Comm   sim.Series
	Comp   sim.Series
	IO     sim.Series
	Wait   sim.Series           // of Comm: per-rank blocked time (Scalasca wait states)
	Queued sim.Series           // per-rank late-receiver time
	Calls  map[string]CallStats // aggregated over ranks

	// Resilience accounting, populated (via SetResilience) for runs under
	// the fault plane with checkpoint/restart. For such runs the per-rank
	// identity comp + comm + io + LostWork + RestartOverhead <= wall
	// holds: discarded incarnations occupy disjoint virtual intervals.
	Restarts        int     // incarnations discarded by failures
	Checkpoints     int     // durable checkpoints committed
	LostWork        float64 // virtual seconds of discarded progress per rank
	RestartOverhead float64 // virtual seconds spent restarting per rank

	regions  []map[string]*RegionStats // per rank
	sizeHist map[int]int               // aggregated
}

// SetResilience attaches checkpoint/restart accounting to the profile.
func (pr *Profile) SetResilience(restarts, checkpoints int, lostWork, restartOverhead float64) {
	pr.Restarts = restarts
	pr.Checkpoints = checkpoints
	pr.LostWork = lostWork
	pr.RestartOverhead = restartOverhead
}

// LostWorkPercent returns lost (discarded plus restart) time as a
// percentage of total walltime.
func (pr *Profile) LostWorkPercent() float64 {
	wall := pr.Wall.Sum()
	if wall == 0 {
		return 0
	}
	return 100 * float64(pr.NP) * (pr.LostWork + pr.RestartOverhead) / wall
}

// Snapshot combines the collected events with the run result into a
// profile. It must be called after mpi's Run returns.
func (p *Profiler) Snapshot(res *mpi.Result) *Profile {
	np := len(p.ranks)
	pr := &Profile{
		NP:       np,
		Wall:     append(sim.Series(nil), res.RankTimes...),
		Comm:     make(sim.Series, np),
		Comp:     make(sim.Series, np),
		IO:       make(sim.Series, np),
		Wait:     make(sim.Series, np),
		Queued:   make(sim.Series, np),
		Calls:    map[string]CallStats{},
		regions:  make([]map[string]*RegionStats, np),
		sizeHist: map[int]int{},
	}
	for r, rc := range p.ranks {
		pr.Comm[r] = rc.comm
		pr.Comp[r] = rc.compute
		pr.IO[r] = rc.io
		pr.Wait[r] = rc.wait
		pr.Queued[r] = rc.queued
		pr.regions[r] = rc.regions
		for name, cs := range rc.calls {
			agg := pr.Calls[name]
			agg.Count += cs.Count
			agg.Time += cs.Time
			agg.Bytes += cs.Bytes
			pr.Calls[name] = agg
		}
		for b, c := range rc.sizeHist {
			pr.sizeHist[b] += c
		}
	}
	return pr
}

// CommPercent returns the percentage of total walltime spent in
// communication — IPM's "%comm", the statistic of Table II.
func (pr *Profile) CommPercent() float64 {
	wall := pr.Wall.Sum()
	if wall == 0 {
		return 0
	}
	return 100 * pr.Comm.Sum() / wall
}

// WaitPercent returns blocked (wait-state) time as a percentage of
// communication time: how much of IPM's "%comm" is peers being late
// rather than wires being slow.
func (pr *Profile) WaitPercent() float64 {
	comm := pr.Comm.Sum()
	if comm == 0 {
		return 0
	}
	return 100 * pr.Wait.Sum() / comm
}

// RegionWait returns the per-rank wait and queued series for one region.
func (pr *Profile) RegionWait(name string) (wait, queued sim.Series) {
	wait = make(sim.Series, pr.NP)
	queued = make(sim.Series, pr.NP)
	for r, m := range pr.regions {
		if rs, ok := m[name]; ok {
			wait[r] = rs.Wait
			queued[r] = rs.Queued
		}
	}
	return wait, queued
}

// IOPercent returns the percentage of total walltime spent in file I/O.
func (pr *Profile) IOPercent() float64 {
	wall := pr.Wall.Sum()
	if wall == 0 {
		return 0
	}
	return 100 * pr.IO.Sum() / wall
}

// LoadImbalancePercent returns 100*(max-mean)/max of per-rank computation
// time — the paper's "%imbal".
func (pr *Profile) LoadImbalancePercent() float64 {
	return 100 * pr.Comp.Imbalance()
}

// Time returns the job's virtual wall time.
func (pr *Profile) Time() float64 { return pr.Wall.Max() }

// RegionNames returns all region labels seen, sorted.
func (pr *Profile) RegionNames() []string {
	set := map[string]bool{}
	for _, m := range pr.regions {
		for name := range m {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Region returns the aggregated per-rank series for one region:
// computation, communication and I/O time per rank. Ranks that never
// entered the region contribute zeros.
func (pr *Profile) Region(name string) (comp, comm, io sim.Series) {
	comp = make(sim.Series, pr.NP)
	comm = make(sim.Series, pr.NP)
	io = make(sim.Series, pr.NP)
	for r, m := range pr.regions {
		if rs, ok := m[name]; ok {
			comp[r] = rs.Compute
			comm[r] = rs.Comm
			io[r] = rs.IO
		}
	}
	return comp, comm, io
}

// RegionCommPercent returns %comm within one region.
func (pr *Profile) RegionCommPercent(name string) float64 {
	comp, comm, io := pr.Region(name)
	total := comp.Sum() + comm.Sum() + io.Sum()
	if total == 0 {
		return 0
	}
	return 100 * comm.Sum() / total
}

// RegionCalls aggregates call statistics across ranks for one region.
func (pr *Profile) RegionCalls(name string) map[string]CallStats {
	out := map[string]CallStats{}
	for _, m := range pr.regions {
		rs, ok := m[name]
		if !ok {
			continue
		}
		for cn, cs := range rs.Calls {
			agg := out[cn]
			agg.Count += cs.Count
			agg.Time += cs.Time
			agg.Bytes += cs.Bytes
			out[cn] = agg
		}
	}
	return out
}

// SizeHistogram returns (bucketUpperBytes, count) pairs sorted by size.
func (pr *Profile) SizeHistogram() ([]int, []int) {
	buckets := make([]int, 0, len(pr.sizeHist))
	for b := range pr.sizeHist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	sizes := make([]int, len(buckets))
	counts := make([]int, len(buckets))
	for i, b := range buckets {
		sizes[i] = BucketBytes(b)
		counts[i] = pr.sizeHist[b]
	}
	return sizes, counts
}

// AvgMessageBytes returns the mean message size over all recorded calls,
// or 0 when nothing was sent.
func (pr *Profile) AvgMessageBytes() float64 {
	var n int
	var bytes int64
	for _, cs := range pr.Calls {
		n += cs.Count
		bytes += cs.Bytes
	}
	if n == 0 {
		return 0
	}
	return float64(bytes) / float64(n)
}

// String renders a compact IPM-like summary.
func (pr *Profile) String() string {
	s := fmt.Sprintf("ranks=%d wall=%.3fs comm=%.1f%% io=%.1f%% imbal=%.1f%%\n",
		pr.NP, pr.Time(), pr.CommPercent(), pr.IOPercent(), pr.LoadImbalancePercent())
	names := make([]string, 0, len(pr.Calls))
	for n := range pr.Calls {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cs := pr.Calls[n]
		s += fmt.Sprintf("  %-12s count=%-8d time=%.4fs bytes=%d\n", n, cs.Count, cs.Time, cs.Bytes)
	}
	return s
}
