package ipm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report writes an IPM-style job summary banner: the familiar
// "##IPMv0.98####..." block with per-region and per-call tables that the
// paper's methodology is built on.
func (pr *Profile) Report(w io.Writer, jobname string) error {
	var b strings.Builder
	bar := strings.Repeat("#", 70)
	fmt.Fprintf(&b, "%s\n", bar)
	fmt.Fprintf(&b, "# IPM-style summary: %s\n", jobname)
	fmt.Fprintf(&b, "# tasks: %d\n", pr.NP)
	fmt.Fprintf(&b, "# wallclock (max): %12.4f s\n", pr.Time())
	fmt.Fprintf(&b, "# wallclock (avg): %12.4f s\n", pr.Wall.Mean())
	fmt.Fprintf(&b, "# %%comm:           %12.2f\n", pr.CommPercent())
	fmt.Fprintf(&b, "# %%io:             %12.2f\n", pr.IOPercent())
	fmt.Fprintf(&b, "# %%load imbalance: %12.2f\n", pr.LoadImbalancePercent())
	if pr.Restarts > 0 || pr.Checkpoints > 0 {
		fmt.Fprintf(&b, "# restarts:        %12d\n", pr.Restarts)
		fmt.Fprintf(&b, "# checkpoints:     %12d\n", pr.Checkpoints)
		fmt.Fprintf(&b, "# lost work:       %12.4f s\n", pr.LostWork)
		fmt.Fprintf(&b, "# restart cost:    %12.4f s\n", pr.RestartOverhead)
		fmt.Fprintf(&b, "# %%lost:           %12.2f\n", pr.LostWorkPercent())
	}
	fmt.Fprintf(&b, "%s\n", bar)

	fmt.Fprintf(&b, "# regions%s\n", strings.Repeat(" ", 20))
	fmt.Fprintf(&b, "#   %-14s %12s %12s %12s %8s\n", "region", "comp(s)", "comm(s)", "io(s)", "%comm")
	for _, name := range pr.RegionNames() {
		comp, comm, ioT := pr.Region(name)
		fmt.Fprintf(&b, "#   %-14s %12.3f %12.3f %12.3f %8.1f\n",
			name, comp.Sum(), comm.Sum(), ioT.Sum(), pr.RegionCommPercent(name))
	}
	fmt.Fprintf(&b, "%s\n", bar)

	fmt.Fprintf(&b, "#   %-14s %10s %14s %16s\n", "call", "count", "time(s)", "bytes")
	names := make([]string, 0, len(pr.Calls))
	for n := range pr.Calls {
		names = append(names, n)
	}
	// Largest time first, the IPM convention.
	sort.Slice(names, func(i, j int) bool { return pr.Calls[names[i]].Time > pr.Calls[names[j]].Time })
	for _, n := range names {
		cs := pr.Calls[n]
		fmt.Fprintf(&b, "#   %-14s %10d %14.4f %16d\n", n, cs.Count, cs.Time, cs.Bytes)
	}

	sizes, counts := pr.SizeHistogram()
	if len(sizes) > 0 {
		fmt.Fprintf(&b, "%s\n# message size histogram (bucket upper bound -> messages)\n", bar)
		for i := range sizes {
			fmt.Fprintf(&b, "#   %10d B %10d\n", sizes[i], counts[i])
		}
	}
	fmt.Fprintf(&b, "%s\n", bar)
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonProfile is the serialised form of a Profile.
type jsonProfile struct {
	NP       int                   `json:"np"`
	Wall     []float64             `json:"wall_seconds"`
	Comm     []float64             `json:"comm_seconds"`
	Comp     []float64             `json:"compute_seconds"`
	IO       []float64             `json:"io_seconds"`
	Calls    map[string]CallStats  `json:"calls"`
	Regions  map[string]jsonRegion `json:"regions"`
	HistSize []int                 `json:"msg_hist_bytes"`
	HistCnt  []int                 `json:"msg_hist_count"`

	Restarts        int     `json:"restarts,omitempty"`
	Checkpoints     int     `json:"checkpoints,omitempty"`
	LostWork        float64 `json:"lost_work_seconds,omitempty"`
	RestartOverhead float64 `json:"restart_overhead_seconds,omitempty"`
}

type jsonRegion struct {
	Comp float64 `json:"compute_seconds"`
	Comm float64 `json:"comm_seconds"`
	IO   float64 `json:"io_seconds"`
}

// MarshalJSON serialises the profile for external tooling.
func (pr *Profile) MarshalJSON() ([]byte, error) {
	jp := jsonProfile{
		NP:      pr.NP,
		Wall:    pr.Wall,
		Comm:    pr.Comm,
		Comp:    pr.Comp,
		IO:      pr.IO,
		Calls:   map[string]CallStats{},
		Regions: map[string]jsonRegion{},
	}
	for k, v := range pr.Calls {
		jp.Calls[k] = v
	}
	for _, name := range pr.RegionNames() {
		comp, comm, ioT := pr.Region(name)
		jp.Regions[name] = jsonRegion{Comp: comp.Sum(), Comm: comm.Sum(), IO: ioT.Sum()}
	}
	jp.HistSize, jp.HistCnt = pr.SizeHistogram()
	jp.Restarts = pr.Restarts
	jp.Checkpoints = pr.Checkpoints
	jp.LostWork = pr.LostWork
	jp.RestartOverhead = pr.RestartOverhead
	return json.Marshal(jp)
}

// WriteJSON writes the profile as JSON.
func (pr *Profile) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(pr, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
