package ipm

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// profiled runs fn on np ranks of p with a profiler attached.
func profiled(t *testing.T, p *platform.Platform, np int, fn func(c *mpi.Comm) error) *Profile {
	t.Helper()
	pl, err := cluster.Place(p, cluster.Spec{NP: np})
	if err != nil {
		t.Fatal(err)
	}
	prof := New(np)
	w, err := mpi.NewWorld(p, pl, mpi.WithTracer(prof))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return prof.Snapshot(res)
}

func TestCallAggregation(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 4, func(c *mpi.Comm) error {
		for i := 0; i < 3; i++ {
			c.AllreduceN(8)
		}
		c.Barrier()
		return nil
	})
	ar := pr.Calls["Allreduce"]
	if ar.Count != 12 { // 3 calls x 4 ranks
		t.Fatalf("Allreduce count = %d, want 12", ar.Count)
	}
	if ar.Bytes != 12*8 {
		t.Fatalf("Allreduce bytes = %d, want 96", ar.Bytes)
	}
	if pr.Calls["Barrier"].Count != 4 {
		t.Fatalf("Barrier count = %d, want 4", pr.Calls["Barrier"].Count)
	}
	if ar.Time <= 0 {
		t.Fatal("Allreduce time should be positive")
	}
}

func TestCommPercentBounds(t *testing.T) {
	pr := profiled(t, platform.DCC(), 16, func(c *mpi.Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e8})
		for i := 0; i < 20; i++ {
			c.AllreduceN(8)
		}
		return nil
	})
	pc := pr.CommPercent()
	if pc <= 0 || pc >= 100 {
		t.Fatalf("%%comm = %v, want in (0,100)", pc)
	}
}

func TestCommPercentGrowsWithCommunication(t *testing.T) {
	mk := func(collectives int) float64 {
		pr := profiled(t, platform.DCC(), 16, func(c *mpi.Comm) error {
			c.Compute(cpumodel.Work{Flops: 1e8})
			for i := 0; i < collectives; i++ {
				c.AllreduceN(8)
			}
			return nil
		})
		return pr.CommPercent()
	}
	if mk(50) <= mk(5) {
		t.Fatal("more collectives should raise comm percentage")
	}
}

func TestRegionAccounting(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 4, func(c *mpi.Comm) error {
		c.Region("input")
		c.ReadShared(1<<20, 4)
		c.Region("solve")
		c.Compute(cpumodel.Work{Flops: 1e7})
		c.AllreduceN(8)
		c.Region("output")
		c.WriteShared(1<<20, 4)
		return nil
	})
	names := pr.RegionNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"input", "solve", "output"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("regions = %v, missing %q", names, want)
		}
	}
	comp, comm, io := pr.Region("solve")
	if comp.Sum() <= 0 || comm.Sum() <= 0 {
		t.Fatalf("solve region comp=%v comm=%v, want both positive", comp.Sum(), comm.Sum())
	}
	if io.Sum() != 0 {
		t.Fatalf("solve region should have no I/O, got %v", io.Sum())
	}
	_, _, ioIn := pr.Region("input")
	if ioIn.Sum() <= 0 {
		t.Fatal("input region should show I/O time")
	}
	if pr.RegionCommPercent("solve") <= 0 {
		t.Fatal("solve comm percentage should be positive")
	}
	rc := pr.RegionCalls("solve")
	if rc["Allreduce"].Count != 4 {
		t.Fatalf("solve Allreduce count = %d, want 4", rc["Allreduce"].Count)
	}
}

func TestLoadImbalanceDetectsStraggler(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 8, func(c *mpi.Comm) error {
		w := cpumodel.Work{Flops: 1e8}
		if c.Rank() == 0 {
			w = cpumodel.Work{Flops: 4e8}
		}
		c.Compute(w)
		return nil
	})
	if pr.LoadImbalancePercent() < 20 {
		t.Fatalf("imbalance = %v%%, want substantial with a 4x straggler", pr.LoadImbalancePercent())
	}
	balanced := profiled(t, platform.Vayu(), 8, func(c *mpi.Comm) error {
		c.Compute(cpumodel.Work{Flops: 1e8})
		return nil
	})
	if balanced.LoadImbalancePercent() > 10 {
		t.Fatalf("balanced imbalance = %v%%, want small", balanced.LoadImbalancePercent())
	}
}

func TestSizeHistogram(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.SendN(1, 0, 4)
			c.SendN(1, 0, 1024)
			c.SendN(1, 0, 1<<20)
		} else {
			c.RecvN(0, 0)
			c.RecvN(0, 0)
			c.RecvN(0, 0)
		}
		return nil
	})
	sizes, counts := pr.SizeHistogram()
	if len(sizes) == 0 {
		t.Fatal("empty histogram")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 6 { // 3 sends + 3 recvs
		t.Fatalf("histogram total = %d, want 6", total)
	}
	if pr.AvgMessageBytes() <= 0 {
		t.Fatal("average message size should be positive")
	}
}

func TestSizeBucketProperty(t *testing.T) {
	// Every size lands in a bucket whose bound is >= the size and whose
	// previous bound is < the size.
	f := func(raw uint32) bool {
		n := int(raw % (1 << 26))
		b := sizeBucket(n)
		upper := BucketBytes(b)
		if n <= 1 {
			return b == 0
		}
		return upper >= n && BucketBytes(b-1) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccountingIdentity(t *testing.T) {
	// comm + comp + io <= wall per rank (wait time inside calls is part of
	// comm; clocks only move forward).
	pr := profiled(t, platform.EC2(), 16, func(c *mpi.Comm) error {
		c.Region("work")
		c.ReadShared(1<<24, 16)
		for i := 0; i < 10; i++ {
			c.Compute(cpumodel.Work{Flops: 1e7, Bytes: 1e7})
			c.AllreduceN(8)
		}
		return nil
	})
	for r := 0; r < pr.NP; r++ {
		sum := pr.Comm[r] + pr.Comp[r] + pr.IO[r]
		if sum > pr.Wall[r]*(1+1e-9) {
			t.Fatalf("rank %d: comm+comp+io %v > wall %v", r, sum, pr.Wall[r])
		}
	}
	if pr.Time() != pr.Wall.Max() {
		t.Fatal("Time() must be the max rank wall")
	}
}

func TestStringRendering(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 2, func(c *mpi.Comm) error {
		c.AllreduceN(8)
		return nil
	})
	s := pr.String()
	for _, want := range []string{"ranks=2", "Allreduce", "comm="} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestEmptyProfile(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 2, func(c *mpi.Comm) error { return nil })
	if pr.CommPercent() != 0 || pr.IOPercent() != 0 {
		t.Fatal("no activity should give zero percentages")
	}
	if pr.AvgMessageBytes() != 0 {
		t.Fatal("no messages should give zero average size")
	}
}

func TestReportRendering(t *testing.T) {
	pr := profiled(t, platform.DCC(), 8, func(c *mpi.Comm) error {
		c.Region("solve")
		c.ReadShared(1<<20, 8)
		c.Compute(cpumodel.Work{Flops: 1e8})
		c.AllreduceN(8)
		c.SendrecvN((c.Rank()+1)%8, 1, 4096, (c.Rank()-1+8)%8, 1)
		return nil
	})
	var buf strings.Builder
	if err := pr.Report(&buf, "testjob"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"testjob", "tasks: 8", "wallclock", "%comm", "solve",
		"Allreduce", "Sendrecv", "message size histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pr := profiled(t, platform.Vayu(), 4, func(c *mpi.Comm) error {
		c.Region("phase1")
		c.Compute(cpumodel.Work{Flops: 1e7})
		c.AllreduceN(16)
		return nil
	})
	var buf strings.Builder
	if err := pr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["np"].(float64) != 4 {
		t.Fatalf("np = %v", decoded["np"])
	}
	calls, ok := decoded["calls"].(map[string]any)
	if !ok || calls["Allreduce"] == nil {
		t.Fatalf("calls missing: %v", decoded["calls"])
	}
	regions := decoded["regions"].(map[string]any)
	if regions["phase1"] == nil {
		t.Fatalf("regions missing phase1: %v", regions)
	}
}
