package metum

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// runUM executes the default benchmark on a platform with the given
// placement and returns the stats and profile.
func runUM(t *testing.T, p *platform.Platform, np, nodes int) (*Stats, *core.Outcome) {
	t.Helper()
	cfg := Default()
	var stats *Stats
	out, err := core.Execute(core.RunSpec{
		Platform: p, NP: np, Nodes: nodes, Policy: cluster.Block,
		MemPerRank: cfg.MemPerRank(np),
	}, func(c *mpi.Comm) error {
		s, err := Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, out
}

func TestGridFactorisation(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 8: {4, 2}, 16: {4, 4}, 24: {6, 4}, 32: {8, 4}, 64: {8, 8},
	}
	for np, want := range cases {
		px, py := Grid(np)
		if px*py != np || px != want[0] || py != want[1] {
			t.Errorf("Grid(%d) = %dx%d, want %dx%d", np, px, py, want[0], want[1])
		}
	}
}

func TestMemoryConstraintMatchesPaper(t *testing.T) {
	// "memory constraints meant that it could not be run on fewer than 2
	// nodes" on EC2's 20 GB instances.
	cfg := Default()
	p := platform.EC2()
	if _, err := cluster.Place(p, cluster.Spec{NP: 8, Nodes: 1, MemPerRank: cfg.MemPerRank(8)}); err == nil {
		t.Fatal("8 ranks on one EC2 node should exceed memory")
	}
	n, err := cluster.MinNodesFor(p, 8, cfg.MemPerRank(8))
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("min nodes for 8 ranks = %d, want >= 2", n)
	}
	// DCC's 40 GB nodes hold the model on one node.
	nd, err := cluster.MinNodesFor(platform.DCC(), 8, cfg.MemPerRank(8))
	if err != nil {
		t.Fatal(err)
	}
	if nd != 1 {
		t.Fatalf("DCC min nodes for 8 ranks = %d, want 1", nd)
	}
}

func TestImbalancePeaksMidLatitude(t *testing.T) {
	// py=4: rows 1 and 2 (processes 8..23 of 32) must be the heavy ones,
	// reproducing Figure 7's band pattern.
	inner := imbalance(0.15, 1, 4) + imbalance(0.15, 2, 4)
	outer := imbalance(0.15, 0, 4) + imbalance(0.15, 3, 4)
	if inner <= outer {
		t.Fatalf("mid-latitude rows (%.3f) should outweigh polar rows (%.3f)", inner, outer)
	}
	if imbalance(0.15, 0, 1) != 1 {
		t.Fatal("single row should have no imbalance")
	}
}

func TestVayu32MatchesTableIII(t *testing.T) {
	stats, out := runUM(t, platform.Vayu(), 32, 0)
	t.Logf("vayu np=32: total=%.0f warmed=%.0f io=%.1f comm%%=%.1f imbal%%=%.1f",
		stats.Total, stats.Warmed, stats.IO, out.Profile.CommPercent(), out.Profile.LoadImbalancePercent())
	// Table III: time 303 s, %comm 13, %imbal 13, I/O 4.5 s.
	if stats.Total < 240 || stats.Total > 380 {
		t.Errorf("total = %.0f s, want ~303", stats.Total)
	}
	if io := stats.IO; io < 3 || io > 7 {
		t.Errorf("I/O = %.1f s, want ~4.5", io)
	}
	if pc := out.Profile.CommPercent(); pc < 6 || pc > 22 {
		t.Errorf("%%comm = %.1f, want ~13", pc)
	}
	if im := out.Profile.LoadImbalancePercent(); im < 5 || im > 25 {
		t.Errorf("%%imbal = %.1f, want ~13", im)
	}
}

func TestDCC32MatchesTableIII(t *testing.T) {
	vs, vo := runUM(t, platform.Vayu(), 32, 0)
	ds, do := runUM(t, platform.DCC(), 32, 0)
	t.Logf("dcc np=32: total=%.0f io=%.1f comm%%=%.1f", ds.Total, ds.IO, do.Profile.CommPercent())
	// Table III: DCC time 624 s, rcomp 1.37, rcomm 6.71, %comm 42, I/O 37.8.
	if ds.Total < 480 || ds.Total > 800 {
		t.Errorf("DCC total = %.0f s, want ~624", ds.Total)
	}
	if ds.IO < 30 || ds.IO > 46 {
		t.Errorf("DCC I/O = %.1f s, want ~37.8", ds.IO)
	}
	rcomp := do.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	if rcomp < 1.2 || rcomp > 1.6 {
		t.Errorf("rcomp DCC/Vayu = %.2f, want ~1.37", rcomp)
	}
	rcomm := do.Profile.Comm.Sum() / vo.Profile.Comm.Sum()
	t.Logf("rcomp=%.2f rcomm=%.2f", rcomp, rcomm)
	if rcomm < 3 || rcomm > 12 {
		t.Errorf("rcomm DCC/Vayu = %.2f, want ~6.7", rcomm)
	}
	if pc := do.Profile.CommPercent(); pc < 28 || pc > 55 {
		t.Errorf("DCC %%comm = %.1f, want ~42", pc)
	}
	_ = vs
}

func TestEC232OversubscriptionMatchesTableIII(t *testing.T) {
	vs, vo := runUM(t, platform.Vayu(), 32, 0)
	// EC2 at 32 on 2 nodes (16/node, HyperThreading oversubscribed).
	es, eo := runUM(t, platform.EC2(), 32, 2)
	// EC2-4: same job spread over 4 nodes (8/node).
	fs, fo := runUM(t, platform.EC2(), 32, 4)
	t.Logf("ec2 np=32/2n: total=%.0f comm%%=%.1f io=%.1f", es.Total, eo.Profile.CommPercent(), es.IO)
	t.Logf("ec2-4 np=32/4n: total=%.0f comm%%=%.1f io=%.1f", fs.Total, fo.Profile.CommPercent(), fs.IO)

	// Table III: EC2 770 s (rcomp 2.39), EC2-4 380 s (rcomp 1.17);
	// "using 4 nodes versus two is almost twice as fast".
	if es.Total < 600 || es.Total > 950 {
		t.Errorf("EC2 total = %.0f s, want ~770", es.Total)
	}
	if fs.Total < 300 || fs.Total > 480 {
		t.Errorf("EC2-4 total = %.0f s, want ~380", fs.Total)
	}
	if ratio := es.Total / fs.Total; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("EC2/EC2-4 ratio = %.2f, want ~2", ratio)
	}
	rcompPacked := eo.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	rcompSpread := fo.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	t.Logf("rcomp packed=%.2f spread=%.2f", rcompPacked, rcompSpread)
	if rcompPacked < 2.0 || rcompPacked > 2.8 {
		t.Errorf("EC2 rcomp = %.2f, want ~2.39", rcompPacked)
	}
	if rcompSpread < 1.05 || rcompSpread > 1.35 {
		t.Errorf("EC2-4 rcomp = %.2f, want ~1.17", rcompSpread)
	}
	_ = vs
}

func TestFig6ScalingShape(t *testing.T) {
	// Speedups over 8 cores: Vayu near-linear, DCC lower, EC2 poor.
	speedup := func(p *platform.Platform, nodes64 func(np int) int) map[int]float64 {
		times := map[int]float64{}
		for _, np := range []int{8, 16, 32, 64} {
			s, _ := runUM(t, p, np, nodes64(np))
			times[np] = s.Warmed
		}
		sp, err := core.Speedup(times, 8)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	auto := func(int) int { return 0 }
	v := speedup(platform.Vayu(), auto)
	d := speedup(platform.DCC(), auto)
	e := speedup(platform.EC2(), auto)
	t.Logf("speedup@64: vayu=%.1f dcc=%.1f ec2=%.1f", v[64], d[64], e[64])
	if v[64] < 5.5 {
		t.Errorf("Vayu speedup at 64 = %.1f, want near-linear (~8)", v[64])
	}
	if d[64] >= v[64] {
		t.Errorf("DCC speedup %.1f should trail Vayu %.1f", d[64], v[64])
	}
	if e[32] >= v[32] {
		t.Errorf("EC2 speedup %.1f at 32 should trail Vayu %.1f", e[32], v[32])
	}
}

func TestWarmupExcluded(t *testing.T) {
	s, _ := runUM(t, platform.Vayu(), 16, 0)
	if s.Warmed >= s.Total {
		t.Fatalf("warmed time %.0f should be below total %.0f", s.Warmed, s.Total)
	}
	if s.Warmed < 0.5*s.Total {
		t.Fatalf("warmed time %.0f implausibly small vs total %.0f", s.Warmed, s.Total)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := Default()
	cfg.Warmup = cfg.Steps
	_, err := mpi.RunOn(platform.Vayu(), 4, func(c *mpi.Comm) error {
		_, err := Run(c, cfg)
		return err
	})
	if err == nil {
		t.Fatal("warmup >= steps should fail")
	}
}
