// Package metum implements a performance proxy of the UK Met Office
// Unified Model (MetUM) global atmosphere benchmark used in the paper: an
// N320L70 (640x481x70) grid, 2D lon/lat domain decomposition, 18
// timesteps of dynamics+physics with wide halo exchanges, a semi-implicit
// Helmholtz solver dominated by tiny all-reduces, polar-row collectives, a
// 1.6 GB dump read at start and no output (the paper's configuration).
//
// The proxy's computational weights are calibrated against Table III and
// Figure 6 of the paper (see EXPERIMENTS.md); its load imbalance is
// latitude-dependent (physics does more work in mid-latitude storm
// tracks), which reproduces the band pattern of Figure 7 where processes
// 8-23 of 32 run heavy.
package metum

import (
	"fmt"
	"math"

	"repro/internal/cpumodel"
	"repro/internal/mpi"
)

// Config describes a MetUM run.
type Config struct {
	NX, NY, NZ int // grid: longitudes, latitudes, levels
	Steps      int // timesteps
	Warmup     int // leading timesteps excluded from the "warmed" time

	DumpBytes int64 // initial dump read (rank 0 reads, then distributes)

	HaloSwapsPerStep   int     // halo-exchange groups per step
	HaloWidth          int     // halo depth in grid points
	FieldsPerSwap      float64 // average fields exchanged per swap
	SolverItersPerStep int     // Helmholtz iterations (one 8-byte all-reduce each)

	FlopsPerStep float64 // whole-model flops per timestep
	BytesPerStep float64 // whole-model memory traffic per timestep

	ImbalanceAmp float64 // peak extra physics work in mid-latitudes (0.15 = +15%)

	MemTotal        int64 // model memory footprint, split across ranks
	MemPerRankFixed int64 // per-rank fixed overhead (runtime, halos)

	// CheckpointEvery writes a restart dump after every N timesteps
	// (0 = no checkpointing, the paper's configuration). Under a
	// resilient run a failure resumes from the last durable dump.
	CheckpointEvery int
	// CheckpointBytes is the restart dump size (0 = DumpBytes: the
	// restart dump matches the input dump).
	CheckpointBytes int64
}

// Default returns the paper's N320L70 benchmark configuration.
func Default() Config {
	return Config{
		NX: 640, NY: 481, NZ: 70,
		Steps:  18, // a 2.5-hour simulation at the operational timestep
		Warmup: 2,

		DumpBytes: gigabytes(1.6),

		HaloSwapsPerStep:   80,
		HaloWidth:          2,
		FieldsPerSwap:      1.5,
		SolverItersPerStep: 60,

		FlopsPerStep: 510e9,
		BytesPerStep: 1.1e12,

		ImbalanceAmp: 0.45,

		MemTotal:        gigabytes(38.5),
		MemPerRankFixed: 32 << 20,
	}
}

// MemPerRank returns the per-rank memory requirement at np ranks, used for
// placement feasibility (the paper's EC2 runs needed at least two 20 GB
// nodes).
func (cfg Config) MemPerRank(np int) int64 {
	return cfg.MemPerRankFixed + cfg.MemTotal/int64(np)
}

// Grid returns the lon x lat process decomposition for np ranks: the most
// square px*py = np factorisation with px >= py (more segments along the
// longer longitude axis).
func Grid(np int) (px, py int) {
	py = 1
	for f := 1; f*f <= np; f++ {
		if np%f == 0 {
			py = f
		}
	}
	return np / py, py
}

// Stats summarises one run (identical on every rank).
type Stats struct {
	Total  float64 // final virtual wall time including I/O
	Warmed float64 // time of the post-warmup timesteps ("warmed" in Fig 6)
	IO     float64 // input-dump read+distribute time
}

// imbalance returns the latitude-dependent physics multiplier for a
// process row: a raised-cosine bump peaking in mid-latitude bands.
func imbalance(amp float64, ry, py int) float64 {
	if py == 1 {
		return 1
	}
	// Row centre in [0,1]; heavy around 0.35 and 0.65 (storm tracks).
	pos := (float64(ry) + 0.5) / float64(py)
	d1 := pos - 0.35
	d2 := pos - 0.65
	w := math.Exp(-d1*d1/0.02) + math.Exp(-d2*d2/0.02)
	return 1 + amp*w/1.2
}

// Run executes the MetUM proxy on the communicator. Regions INPUT,
// ATM_STEP, HELMHOLTZ and POLAR are reported to any attached profiler.
func Run(c *mpi.Comm, cfg Config) (*Stats, error) {
	np := c.Size()
	if cfg.Steps <= 0 || cfg.Warmup < 0 || cfg.Warmup >= cfg.Steps {
		return nil, fmt.Errorf("metum: invalid steps/warmup %d/%d", cfg.Steps, cfg.Warmup)
	}
	px, py := Grid(np)
	if cfg.NX/px < cfg.HaloWidth || cfg.NY/py < cfg.HaloWidth {
		return nil, fmt.Errorf("metum: %d ranks over-decompose the %dx%d grid", np, cfg.NX, cfg.NY)
	}
	rx, ry := c.Rank()%px, c.Rank()/px

	ckptBytes := cfg.CheckpointBytes
	if ckptBytes == 0 {
		ckptBytes = cfg.DumpBytes
	}
	resume := c.ResumeStep()
	inputStart := c.Clock()
	c.Region("INPUT")
	var ioRead float64
	if resume == 0 {
		// INPUT: rank 0 reads the dump sequentially and distributes each
		// rank's share, the UM read-on-PE0 startup pattern.
		const tagDump = 71
		share := int(cfg.DumpBytes / int64(np))
		c.SetSolo(true) // startup: only rank 0 transmits, no NIC contention
		if c.Rank() == 0 {
			c.ReadShared(cfg.DumpBytes, 1)
			ioRead = c.Clock() - inputStart
			for r := 1; r < np; r++ {
				c.SendN(r, tagDump, share)
			}
		} else {
			c.RecvN(0, tagDump)
		}
		c.SetSolo(false)
	} else {
		// Restart: every rank reads its own shard of the restart dump
		// concurrently (rank-level checkpointing, no redistribution).
		c.ReadShared(ckptBytes/int64(np), np)
		ioRead = c.Clock() - inputStart
	}
	c.Barrier()

	// Row communicator for the polar filter (all ranks split; only the
	// polar rows communicate each step).
	rowComm := c.Split(ry, rx)
	polar := ry == 0 || ry == py-1

	// Per-step work: this rank's grid share with the latitude multiplier
	// on the flop (physics) component; memory traffic is uniform.
	phi := imbalance(cfg.ImbalanceAmp, ry, py)
	stepWork := cpumodel.Work{
		Flops: cfg.FlopsPerStep / float64(np) * phi,
		Bytes: cfg.BytesPerStep / float64(np),
	}

	// Halo faces: east-west and north-south, HaloWidth deep, scaled by the
	// average number of fields exchanged per swap group.
	ewBytes := int(8 * float64(cfg.NZ*(cfg.NY/py)*cfg.HaloWidth) * cfg.FieldsPerSwap)
	nsBytes := int(8 * float64(cfg.NZ*(cfg.NX/px)*cfg.HaloWidth) * cfg.FieldsPerSwap)
	east := ry*px + (rx+1)%px
	west := ry*px + (rx-1+px)%px
	var north, south int = -1, -1
	if ry > 0 {
		north = (ry-1)*px + rx
	}
	if ry < py-1 {
		south = (ry+1)*px + rx
	}

	const (
		tagEW = 72
		tagNS = 74
	)
	haloSwap := func() {
		if px > 1 {
			c.SendrecvN(east, tagEW, ewBytes, west, tagEW)
			c.SendrecvN(west, tagEW+1, ewBytes, east, tagEW+1)
		}
		if south >= 0 {
			c.SendN(south, tagNS, nsBytes)
		}
		if north >= 0 {
			c.SendN(north, tagNS+1, nsBytes)
		}
		if north >= 0 {
			c.RecvN(north, tagNS)
		}
		if south >= 0 {
			c.RecvN(south, tagNS+1)
		}
	}

	var warmedStart float64
	if resume > cfg.Warmup {
		// A restart beyond the warmup steps: "warmed" time starts at the
		// restore point (the pre-failure warmup is not re-run).
		warmedStart = c.Clock()
	}
	for step := resume; step < cfg.Steps; step++ {
		if step == cfg.Warmup {
			warmedStart = c.Clock()
		}
		// The first (warmup) steps carry extra setup cost, as in the real
		// model; Figure 6 plots the "warmed" time that excludes them.
		w := stepWork
		if step < cfg.Warmup {
			w = w.Scale(1.3)
		}

		// ATM_STEP: dynamics and physics interleaved with halo groups.
		c.Region("ATM_STEP")
		const chunks = 4
		swapsPerChunk := cfg.HaloSwapsPerStep / chunks
		for ch := 0; ch < chunks; ch++ {
			c.Compute(w.Scale(0.75 / chunks))
			for s := 0; s < swapsPerChunk; s++ {
				haloSwap()
			}
		}

		// HELMHOLTZ: the semi-implicit solver — many tiny all-reduces.
		c.Region("HELMHOLTZ")
		solverWork := w.Scale(0.22 / float64(cfg.SolverItersPerStep))
		for it := 0; it < cfg.SolverItersPerStep; it++ {
			c.Compute(solverWork)
			c.AllreduceN(8)
		}

		// POLAR: Fourier filtering of the polar rows — a row-wide gather
		// on the top and bottom process rows only.
		c.Region("POLAR")
		if polar && px > 1 {
			rowComm.AllgatherN(8 * cfg.NZ * (cfg.NX / px) / 4)
		}
		c.Compute(w.Scale(0.03))

		// CKPT: periodic restart dump (skipped after the final step — the
		// run is about to complete anyway).
		if cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 && step+1 < cfg.Steps {
			c.Region("CKPT")
			c.Checkpoint(step+1, ckptBytes)
		}
	}
	c.Region("END")
	// Final synchronisation (the model's end-of-run reduction).
	c.AllreduceN(8)

	total := c.Clock()
	// Agree on job-wide numbers: the slowest rank defines the times.
	buf := []float64{total, total - warmedStart, ioRead}
	c.Allreduce(mpi.Max, buf)
	return &Stats{Total: buf[0], Warmed: buf[1], IO: buf[2]}, nil
}

// gigabytes converts a GB count to bytes.
func gigabytes(g float64) int64 { return int64(g * float64(int64(1)<<30)) }
