// Package chaste implements a performance proxy of the Chaste cardiac
// simulation benchmark used in the paper: a high-resolution rabbit-heart
// monodomain simulation (~4 million mesh nodes, 24 million elements, 250
// timesteps of 8 µs), whose runtime is dominated by the "KSp"
// conjugate-gradient linear solve — a section whose communication is
// "entirely 4-byte all-reduce operations" plus partition-boundary halo
// exchanges. The remaining sections are per-step assembly, the mesh read
// (1.4 GB plus a largely serial partition/build phase) and the HDF5-style
// collective output whose write-lock contention made it scale inversely
// on the Lustre-backed runs while staying constant on DCC's NFS.
//
// Weights are calibrated against Figure 5 and the 32-core IPM prose of
// the paper (48% comm on DCC vs 11% on Vayu; computation ratio 1.5; KSp
// communication ratio ~13x). See EXPERIMENTS.md, including the note on
// the apparent Vayu/DCC t8 label swap in the published figure.
package chaste

import (
	"fmt"
	"math"

	"repro/internal/cpumodel"
	"repro/internal/mpi"
)

// Config describes a Chaste monodomain run.
type Config struct {
	MeshNodes    int // ~4e6 for the rabbit heart
	MeshElements int // ~24e6
	Steps        int // timesteps (250 = 2.0 ms at 8 µs)

	MeshBytes   int64 // mesh file size (1.4 GB)
	OutputBytes int64 // collective solution output volume

	KSpItersPerStep int // CG iterations per linear solve
	Neighbours      int // partition neighbours exchanged with per iteration

	// Per-timestep whole-job work, split between the KSp solve and the
	// assembly/ODE sections.
	KSpFlopsPerStep      float64
	KSpBytesPerStep      float64
	AssemblyFlopsPerStep float64
	AssemblyBytesPerStep float64

	// Mesh build phase: a serial portion plus a parallel portion (the
	// paper's input section only sped up 1.25x from 8 to 64 cores).
	BuildSerialFlops   float64
	BuildParallelFlops float64

	ImbalanceAmp float64 // mesh-partition load imbalance amplitude

	MemTotal        int64
	MemPerRankFixed int64

	// CheckpointEvery writes a state checkpoint after every N timesteps
	// (0 = off). Under a resilient run a failure resumes from the last
	// durable checkpoint instead of re-reading and re-building the mesh.
	CheckpointEvery int
	// CheckpointBytes is the checkpoint volume (0 = MeshBytes).
	CheckpointBytes int64
}

// Default returns the paper's rabbit-heart benchmark configuration.
func Default() Config {
	return Config{
		MeshNodes:    4_000_000,
		MeshElements: 24_000_000,
		Steps:        250,

		MeshBytes:   gigabytes(1.4),
		OutputBytes: gigabytes(3.5),

		KSpItersPerStep: 50,
		Neighbours:      6,

		KSpFlopsPerStep:      23.9e9,
		KSpBytesPerStep:      52.1e9,
		AssemblyFlopsPerStep: 14.7e9,
		AssemblyBytesPerStep: 30e9,

		BuildSerialFlops:   52e9,
		BuildParallelFlops: 160e9,

		ImbalanceAmp: 0.14,

		MemTotal:        gigabytes(39.5), // "slightly greater than MetUM"
		MemPerRankFixed: 48 << 20,
	}
}

// MemPerRank returns the per-rank memory requirement at np ranks.
func (cfg Config) MemPerRank(np int) int64 {
	return cfg.MemPerRankFixed + cfg.MemTotal/int64(np)
}

// Stats summarises one run (identical on every rank).
type Stats struct {
	Total  float64 // total virtual wall time
	Input  float64 // mesh read + partition/build section
	KSp    float64 // cumulative linear-solver section time
	Output float64 // output section time
}

// boundaryNodes estimates a rank's partition surface (nodes shared with
// neighbours) for an unstructured volume mesh.
func boundaryNodes(meshNodes, np int) int {
	local := float64(meshNodes) / float64(np)
	return int(4 * math.Pow(local, 2.0/3.0))
}

// Run executes the Chaste proxy. Regions INPUT, ASSEMBLE, KSp and OUTPUT
// are reported to any attached profiler.
func Run(c *mpi.Comm, cfg Config) (*Stats, error) {
	np := c.Size()
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("chaste: invalid step count %d", cfg.Steps)
	}
	if np > cfg.MeshNodes {
		return nil, fmt.Errorf("chaste: %d ranks exceed mesh nodes", np)
	}

	// Partition imbalance: deterministic per-rank multiplier from the mesh
	// partitioner's uneven element counts.
	phi := 1 + cfg.ImbalanceAmp*(c.RNG().Derive(0xC4A57E).Float64()-0.3)

	ckptBytes := cfg.CheckpointBytes
	if ckptBytes == 0 {
		ckptBytes = cfg.MeshBytes
	}
	resume := c.ResumeStep()
	inputStart := c.Clock()
	c.Region("INPUT")
	if resume == 0 {
		// INPUT: rank 0 streams the mesh file and scatters chunks; every
		// rank then runs the partly-serial partition/build phase.
		const tagMesh = 81
		share := int(cfg.MeshBytes / int64(np))
		c.SetSolo(true) // startup scatter: only rank 0 transmits
		if c.Rank() == 0 {
			c.ReadShared(cfg.MeshBytes, 1)
			for r := 1; r < np; r++ {
				c.SendN(r, tagMesh, share)
			}
		} else {
			c.RecvN(0, tagMesh)
		}
		c.SetSolo(false)
		c.Compute(cpumodel.Work{Flops: cfg.BuildSerialFlops})
		c.Compute(cpumodel.Work{Flops: cfg.BuildParallelFlops / float64(np)})
	} else {
		// Restart: each rank reads its checkpoint shard (the partition is
		// stored with it, so the serial mesh build is not repeated).
		c.ReadShared(ckptBytes/int64(np), np)
	}
	c.Barrier()
	inputDone := c.Clock() - inputStart

	// Per-step work shares.
	kspWork := cpumodel.Work{
		Flops: cfg.KSpFlopsPerStep / float64(np) * phi,
		Bytes: cfg.KSpBytesPerStep / float64(np),
	}
	asmWork := cpumodel.Work{
		Flops: cfg.AssemblyFlopsPerStep / float64(np) * phi,
		Bytes: cfg.AssemblyBytesPerStep / float64(np),
	}

	haloBytes := 8 * boundaryNodes(cfg.MeshNodes, np) / cfg.Neighbours
	// Neighbour ring: exchange with the nearest ranks on both sides, the
	// typical locality of a good mesh partition. Exchanges proceed in
	// distance phases: at phase k every rank first posts its sends to
	// rank±k and only then receives, so phase k's receives depend solely
	// on phase k sends — a deadlock-free schedule.
	pairs := cfg.Neighbours / 2

	const tagHalo = 82
	var kspTime float64
	for step := resume; step < cfg.Steps; step++ {
		// ASSEMBLE: per-element matrix/RHS assembly and cell-model ODEs.
		c.Region("ASSEMBLE")
		c.Compute(asmWork)

		// KSp: the conjugate-gradient solve.
		c.Region("KSp")
		kspStart := c.Clock()
		perIter := kspWork.Scale(1 / float64(cfg.KSpItersPerStep))
		for it := 0; it < cfg.KSpItersPerStep; it++ {
			c.Compute(perIter)
			// SpMV boundary exchange with each mesh neighbour.
			for k := 1; k <= pairs && np > 1; k++ {
				up := (c.Rank() + k) % np
				down := (c.Rank() - k + np) % np
				if up == c.Rank() {
					continue
				}
				c.SendN(up, tagHalo, haloBytes)
				if down != up {
					c.SendN(down, tagHalo, haloBytes)
				}
				c.RecvN(down, tagHalo)
				if up != down {
					c.RecvN(up, tagHalo)
				}
			}
			// Two scalar dot products — the 4-byte all-reduces of the
			// paper's IPM analysis.
			c.AllreduceN(4)
			c.AllreduceN(4)
		}
		kspTime += c.Clock() - kspStart

		// CKPT: periodic state checkpoint (skipped after the final step).
		if cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 && step+1 < cfg.Steps {
			c.Region("CKPT")
			c.Checkpoint(step+1, ckptBytes)
		}
	}

	// OUTPUT: collective write; lock contention grows with writer count
	// (the inverse scaling the paper saw on Lustre).
	c.Region("OUTPUT")
	outStart := c.Clock()
	c.WriteShared(cfg.OutputBytes/int64(np), np)
	c.Barrier()
	outTime := c.Clock() - outStart

	buf := []float64{c.Clock(), inputDone, kspTime, outTime}
	c.Allreduce(mpi.Max, buf)
	return &Stats{Total: buf[0], Input: buf[1], KSp: buf[2], Output: buf[3]}, nil
}

// gigabytes converts a GB count to bytes.
func gigabytes(g float64) int64 { return int64(g * float64(int64(1)<<30)) }
