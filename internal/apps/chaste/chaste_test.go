package chaste

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// runChaste simulates one (platform, np) point. Runs are deterministic,
// and the tests below revisit the same points (the 8- and 64-core runs
// appear in four tests each), so results are memoized: each point
// simulates once per `go test` invocation. This matters most under
// -race, where a full Chaste run costs tens of wall seconds.
var chasteMemo sync.Map // "platform/np" -> chasteResult

type chasteResult struct {
	stats *Stats
	out   *core.Outcome
	err   error
}

func runChaste(t *testing.T, p *platform.Platform, np int) (*Stats, *core.Outcome) {
	t.Helper()
	key := fmt.Sprintf("%s/%d", p.Name, np)
	if r, ok := chasteMemo.Load(key); ok {
		res := r.(chasteResult)
		if res.err != nil {
			t.Fatal(res.err)
		}
		return res.stats, res.out
	}
	cfg := Default()
	var stats *Stats
	out, err := core.Execute(core.RunSpec{
		Platform: p, NP: np, Policy: cluster.Block,
		MemPerRank: cfg.MemPerRank(np),
	}, func(c *mpi.Comm) error {
		s, err := Run(c, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			stats = s
		}
		return nil
	})
	chasteMemo.Store(key, chasteResult{stats: stats, out: out, err: err})
	if err != nil {
		t.Fatal(err)
	}
	return stats, out
}

func TestBoundaryShrinksWithRanks(t *testing.T) {
	b8 := boundaryNodes(4_000_000, 8)
	b64 := boundaryNodes(4_000_000, 64)
	if b64 >= b8 {
		t.Fatalf("boundary at 64 (%d) should be below 8 (%d)", b64, b8)
	}
	if b8 <= 0 {
		t.Fatal("boundary must be positive")
	}
}

func TestFig5Calibration(t *testing.T) {
	// Figure 5 (with the t8 label swap documented in DESIGN.md):
	// Vayu t8 ~1017 s with KSp ~579 s; DCC t8 ~1599 s with KSp ~938 s.
	vs, _ := runChaste(t, platform.Vayu(), 8)
	ds, _ := runChaste(t, platform.DCC(), 8)
	t.Logf("vayu t8: total=%.0f ksp=%.0f input=%.0f output=%.0f", vs.Total, vs.KSp, vs.Input, vs.Output)
	t.Logf("dcc  t8: total=%.0f ksp=%.0f input=%.0f output=%.0f", ds.Total, ds.KSp, ds.Input, ds.Output)
	if vs.Total < 850 || vs.Total > 1250 {
		t.Errorf("Vayu t8 = %.0f, want ~1017", vs.Total)
	}
	if vs.KSp < 480 || vs.KSp > 700 {
		t.Errorf("Vayu KSp t8 = %.0f, want ~579", vs.KSp)
	}
	if ds.Total < 1300 || ds.Total > 1950 {
		t.Errorf("DCC t8 = %.0f, want ~1599", ds.Total)
	}
	if ds.KSp < 780 || ds.KSp > 1150 {
		t.Errorf("DCC KSp t8 = %.0f, want ~938", ds.KSp)
	}
}

func TestIPM32CoreProse(t *testing.T) {
	// "the benchmark spent 48% of its time in communication on DCC, and
	// only 11% on Vayu"; computation ratio ~1.5; KSp comm ratio ~13x.
	_, vo := runChaste(t, platform.Vayu(), 32)
	_, do := runChaste(t, platform.DCC(), 32)
	vp, dp := vo.Profile.CommPercent(), do.Profile.CommPercent()
	t.Logf("comm%%: vayu=%.1f dcc=%.1f", vp, dp)
	if vp > 20 {
		t.Errorf("Vayu %%comm = %.1f, want ~11", vp)
	}
	if dp < 30 || dp > 65 {
		t.Errorf("DCC %%comm = %.1f, want ~48", dp)
	}
	rcomp := do.Profile.Comp.Sum() / vo.Profile.Comp.Sum()
	t.Logf("rcomp=%.2f", rcomp)
	if rcomp < 1.25 || rcomp > 1.8 {
		t.Errorf("computation ratio = %.2f, want ~1.5", rcomp)
	}
	_, vKSpComm, _ := vo.Profile.Region("KSp")
	_, dKSpComm, _ := do.Profile.Region("KSp")
	kspRatio := dKSpComm.Sum() / vKSpComm.Sum()
	t.Logf("KSp comm ratio=%.1f", kspRatio)
	if kspRatio < 5 || kspRatio > 25 {
		t.Errorf("KSp communication ratio = %.1f, want ~13", kspRatio)
	}
}

func TestFig5ScalingShape(t *testing.T) {
	// Vayu scales much better than DCC; KSp drives the total's trend.
	times := func(p *platform.Platform) (total, ksp map[int]float64) {
		total, ksp = map[int]float64{}, map[int]float64{}
		for _, np := range []int{8, 16, 32, 64} {
			s, _ := runChaste(t, p, np)
			total[np], ksp[np] = s.Total, s.KSp
		}
		return
	}
	vt, vk := times(platform.Vayu())
	dt, dk := times(platform.DCC())
	vsp, _ := core.Speedup(vt, 8)
	dsp, _ := core.Speedup(dt, 8)
	vksp, _ := core.Speedup(vk, 8)
	dksp, _ := core.Speedup(dk, 8)
	t.Logf("total speedup@64: vayu=%.2f dcc=%.2f; KSp: vayu=%.2f dcc=%.2f",
		vsp[64], dsp[64], vksp[64], dksp[64])
	if vsp[64] < 2.5 {
		t.Errorf("Vayu total speedup at 64 = %.2f, want > 2.5", vsp[64])
	}
	if dsp[64] >= vsp[64]*0.8 {
		t.Errorf("DCC speedup %.2f should clearly trail Vayu %.2f", dsp[64], vsp[64])
	}
	if vksp[64] < vsp[64] {
		t.Errorf("KSp speedup %.2f should lead the total %.2f on Vayu", vksp[64], vsp[64])
	}
}

func TestOutputScalesInverselyOnVayuOnly(t *testing.T) {
	// "At 8 cores, the output routine was 2.6 times faster on Vayu;
	// surprisingly however its performance remained constant on DCC, but
	// scaled inversely on Vayu."
	v8, _ := runChaste(t, platform.Vayu(), 8)
	v64, _ := runChaste(t, platform.Vayu(), 64)
	d8, _ := runChaste(t, platform.DCC(), 8)
	d64, _ := runChaste(t, platform.DCC(), 64)
	t.Logf("output: vayu 8->64 %.1f->%.1f; dcc %.1f->%.1f", v8.Output, v64.Output, d8.Output, d64.Output)
	if v64.Output <= v8.Output {
		t.Errorf("Vayu output should scale inversely: %.1f -> %.1f", v8.Output, v64.Output)
	}
	if rel := d64.Output / d8.Output; rel < 0.7 || rel > 1.3 {
		t.Errorf("DCC output should stay ~constant: %.1f -> %.1f", d8.Output, d64.Output)
	}
	if ratio := d8.Output / v8.Output; ratio < 1.8 || ratio > 4 {
		t.Errorf("output at 8 cores: DCC/Vayu = %.1f, want ~2.6", ratio)
	}
}

func TestInputSectionMostlySerial(t *testing.T) {
	// "The input mesh section ... scaled identically on both systems (1.25
	// speedup at 64 cores over 8)" and was 1.37x faster on Vayu.
	v8, _ := runChaste(t, platform.Vayu(), 8)
	v64, _ := runChaste(t, platform.Vayu(), 64)
	sp := v8.Input / v64.Input
	t.Logf("input: vayu 8=%.1f 64=%.1f speedup=%.2f", v8.Input, v64.Input, sp)
	if sp < 1.05 || sp > 1.6 {
		t.Errorf("input speedup 8->64 = %.2f, want ~1.25", sp)
	}
	d8, _ := runChaste(t, platform.DCC(), 8)
	if ratio := d8.Input / v8.Input; ratio < 1.15 || ratio > 1.9 {
		t.Errorf("input DCC/Vayu at 8 = %.2f, want ~1.4", ratio)
	}
}

func TestEC2ExtensionRuns(t *testing.T) {
	// The paper could not install Chaste on EC2 in time; our model can run
	// it — an extension experiment (see EXPERIMENTS.md).
	s, _ := runChaste(t, platform.EC2(), 16)
	if s.Total <= 0 {
		t.Fatal("EC2 Chaste run produced no time")
	}
}

func TestRejectsBadConfig(t *testing.T) {
	cfg := Default()
	cfg.Steps = 0
	_, err := mpi.RunOn(platform.Vayu(), 2, func(c *mpi.Comm) error {
		_, err := Run(c, cfg)
		return err
	})
	if err == nil {
		t.Fatal("zero steps should fail")
	}
}
