package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", 1.2345)
	tb.AddRow("b", 1234.5)
	out := tb.Render()
	for _, want := range []string{"== demo ==", "name", "alpha", "1.234", "1234"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(1, 2)
	csv := tb.CSV()
	if csv != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234.56: "1235",
		12.34:   "12.3",
		1.2345:  "1.234",
		0.00123: "0.00123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureCSVUnionOfX(t *testing.T) {
	f := &Figure{Title: "t"}
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := &Series{Name: "b"}
	b.Add(2, 200)
	b.Add(4, 400)
	f.Series = []*Series{a, b}
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // x = 1, 2, 4
		t.Fatalf("got %d lines: %q", len(lines), csv)
	}
	if !strings.HasPrefix(lines[1], "1,10,") {
		t.Fatalf("row1 = %q (b should be blank)", lines[1])
	}
	if lines[2] != "2,20,200" {
		t.Fatalf("row2 = %q", lines[2])
	}
}

func TestASCIIPlot(t *testing.T) {
	f := &Figure{Title: "plot", XLabel: "np", YLabel: "speedup", LogX: true, LogY: true}
	s := &Series{Name: "vayu"}
	for _, np := range []float64{1, 2, 4, 8, 16, 32, 64} {
		s.Add(np, np*0.9)
	}
	f.Series = []*Series{s}
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "vayu") {
		t.Fatalf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("no data points plotted:\n%s", out)
	}
	// A log-log linear relation should put marks on an ascending diagonal:
	// the first grid row (top) must contain the max-x point.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("top row should hold the largest point:\n%s", out)
	}
}

func TestASCIIEmpty(t *testing.T) {
	f := &Figure{}
	if out := f.ASCII(30, 8); !strings.Contains(out, "empty") {
		t.Fatalf("empty figure should say so, got %q", out)
	}
}

func TestBarBreakdown(t *testing.T) {
	out := BarBreakdown("ATM_STEP", []float64{3, 4}, []float64{1, 0.5}, 40)
	if !strings.Contains(out, "p00") || !strings.Contains(out, "p01") {
		t.Fatalf("missing process rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "~") {
		t.Fatalf("missing bar glyphs:\n%s", out)
	}
	// Rank 1 computes more: its bar must have more '#'.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestBarBreakdownZero(t *testing.T) {
	out := BarBreakdown("empty", []float64{0}, []float64{0}, 40)
	if !strings.Contains(out, "p00") {
		t.Fatal("should render a row even with zero time")
	}
}
