// Package report renders the reproduction's figures and tables as aligned
// text tables, CSV series (gnuplot-ready) and quick ASCII log-log plots.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant-ish digits that
// keep both 0.0123 and 1234.5 readable.
func FormatFloat(v float64) string {
	switch a := math.Abs(v); {
	case v == 0:
		return "0"
	case v == math.Trunc(v) && a < 1e15:
		return fmt.Sprintf("%.0f", v)
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	case a >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// FormatDuration renders a wall-clock duration compactly for timing
// tables: millisecond precision below 10 s, centisecond above.
func FormatDuration(d time.Duration) string {
	if d < 10*time.Second {
		return d.Round(time.Millisecond).String()
	}
	return d.Round(10 * time.Millisecond).String()
}

// Render returns the aligned text table.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", width[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (quotes omitted: the
// reproduction's cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.Headers) > 0 {
		b.WriteString(strings.Join(t.Headers, ","))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Series is one named curve of (x, y) samples.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of curves sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []*Series
}

// CSV renders the figure as columns x,<series...> over the union of the
// x values (missing samples are blank).
func (f *Figure) CSV() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	for _, x := range sorted {
		b.WriteString(FormatFloat(x))
		for _, s := range f.Series {
			val := ""
			for i, sx := range s.X {
				if sx == x {
					val = FormatFloat(s.Y[i])
					break
				}
			}
			b.WriteString("," + val)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// markers cycles through plot glyphs per series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCII renders a rough terminal plot of the figure (width x height
// character cells), legend included.
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	tx := func(v float64) float64 {
		if f.LogX && v > 0 {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if f.LogY && v > 0 {
			return math.Log10(v)
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return "(empty figure)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((tx(s.X[i]) - minX) / (maxX - minX) * float64(width-1))
			cy := int((ty(s.Y[i]) - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = m
		}
	}

	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " x: %s [%s..%s]  y: %s [%s..%s]\n",
		f.XLabel, FormatFloat(invLog(minX, f.LogX)), FormatFloat(invLog(maxX, f.LogX)),
		f.YLabel, FormatFloat(invLog(minY, f.LogY)), FormatFloat(invLog(maxY, f.LogY)))
	for si, s := range f.Series {
		fmt.Fprintf(&b, " %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func invLog(v float64, logged bool) float64 {
	if logged {
		return math.Pow(10, v)
	}
	return v
}

// BarBreakdown renders a Figure-7-style per-process stacked text chart of
// computation vs communication time.
func BarBreakdown(title string, comp, comm []float64, width int) string {
	if width < 20 {
		width = 60
	}
	var mx float64
	for i := range comp {
		if t := comp[i] + comm[i]; t > mx {
			mx = t
		}
	}
	if mx == 0 {
		mx = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (#=compute, ~=comm; full bar = %.1fs)\n", title, mx)
	for i := range comp {
		nc := int(comp[i] / mx * float64(width))
		nm := int(comm[i] / mx * float64(width))
		fmt.Fprintf(&b, "p%02d |%s%s\n", i, strings.Repeat("#", nc), strings.Repeat("~", nm))
	}
	return b.String()
}
