package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Key identifies one artefact computation for caching. Two computations
// with the same Key must produce byte-identical output: every generator is
// a pure function of (experiment, params, seed) under a fixed model, and
// ModelVersion is bumped whenever any calibrated model changes, which
// invalidates every previously cached artefact at once.
type Key struct {
	Experiment   string // artefact or check ID, e.g. "fig4"
	Params       string // canonical parameter string, e.g. "sweep=quick"
	Seed         uint64 // base seed of the experiment's random streams
	ModelVersion string // see core.ModelVersion
}

// Hash returns the content address: a SHA-256 over the length-prefixed
// fields (length prefixes keep distinct field splits from colliding).
func (k Key) Hash() string {
	h := sha256.New()
	writeField := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeField(k.Experiment)
	writeField(k.Params)
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], k.Seed)
	h.Write(seed[:])
	writeField(k.ModelVersion)
	return hex.EncodeToString(h.Sum(nil))
}

// entry is the on-disk cache envelope. Files are base64-encoded by
// encoding/json; map keys are marshalled in sorted order, so the envelope
// itself is deterministic.
type entry struct {
	Key     Key               `json:"key"`
	Virtual float64           `json:"virtual_seconds"`
	Files   map[string][]byte `json:"files"`
}

// Cache is a content-addressed on-disk store of artefact outputs. Entries
// live at <dir>/<hh>/<hash>.json where hh is the first hash byte, hash the
// full Key.Hash. It is safe for concurrent use by multiple workers: writes
// go through a temp file + rename, and a torn or corrupt entry reads as a
// miss, never as bad data.
type Cache struct {
	dir string
}

// OpenCache creates (if necessary) and returns the cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sched: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: create cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(k Key) string {
	h := k.Hash()
	return filepath.Join(c.dir, h[:2], h+".json")
}

// Get returns the cached files and recorded virtual seconds for k, or
// ok=false on a miss. A stored entry whose full key does not match k
// (hash collision or tampering) is treated as a miss.
func (c *Cache) Get(k Key) (files map[string][]byte, virtual float64, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	raw, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, 0, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil || e.Key != k {
		return nil, 0, false
	}
	return e.Files, e.Virtual, true
}

// Put stores the files produced for k along with the virtual seconds the
// computation simulated.
func (c *Cache) Put(k Key, files map[string][]byte, virtual float64) error {
	if c == nil {
		return nil
	}
	raw, err := json.Marshal(entry{Key: k, Virtual: virtual, Files: files})
	if err != nil {
		return fmt.Errorf("sched: encode cache entry: %w", err)
	}
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sched: cache shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("sched: cache temp: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sched: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sched: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sched: cache rename: %w", err)
	}
	return nil
}
