package sched

import "repro/internal/obs"

// schedMetrics holds the scheduler's observability handles. The zero
// value (no registry) is all nil handles, which every obs method treats
// as a no-op. Job counts by status and per-job virtual time are
// deterministic; anything tied to wall clocks, worker count or queue
// occupancy depends on real scheduling and registers volatile.
type schedMetrics struct {
	done, cached, failed, skipped *obs.Counter
	cacheHits, cacheMisses        *obs.Counter
	virtualNS                     *obs.Counter
	jobVirtual                    *obs.Histogram

	workers    *obs.Gauge     // volatile
	queueDepth *obs.Histogram // volatile
	jobWall    *obs.Histogram // volatile
	busyNS     *obs.Counter   // volatile
}

func newSchedMetrics(r *obs.Registry) schedMetrics {
	return schedMetrics{
		done:    r.Counter("sched_jobs_done_total", "jobs that ran to completion"),
		cached:  r.Counter("sched_jobs_cached_total", "jobs served from the result cache"),
		failed:  r.Counter("sched_jobs_failed_total", "jobs that returned an error or panicked"),
		skipped: r.Counter("sched_jobs_skipped_total", "jobs skipped after failures"),
		cacheHits: r.Counter("sched_cache_hits_total",
			"cache lookups that returned stored files"),
		cacheMisses: r.Counter("sched_cache_misses_total",
			"cache lookups that fell through to a run"),
		virtualNS: r.Counter("sched_virtual_ns_total",
			"simulated virtual ns attributed to executed jobs"),
		jobVirtual: r.Histogram("sched_job_virtual_ns", "per-job virtual latency"),
		workers:    r.VolatileGauge("sched_workers", "configured worker-pool size"),
		queueDepth: r.VolatileHistogram("sched_queue_depth",
			"ready-queue length observed at each job claim"),
		jobWall: r.VolatileHistogram("sched_job_wall_ns", "per-job wall-clock latency"),
		busyNS: r.VolatileCounter("sched_worker_busy_ns_total",
			"wall-clock ns workers spent occupied by jobs (utilization numerator)"),
	}
}
