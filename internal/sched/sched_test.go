package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// dag is a randomly generated scheduling scenario: n jobs whose edges only
// point from lower to higher submission index, so it is acyclic by
// construction, plus a worker bound.
type dag struct {
	N       int
	Workers int
	Edges   [][]int // Edges[i] lists dependency indices (< i) of job i
}

// Generate implements quick.Generator: up to 24 jobs, up to 8 workers,
// each job depending on a random subset of its predecessors.
func (dag) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(24)
	d := dag{N: n, Workers: 1 + r.Intn(8), Edges: make([][]int, n)}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if r.Intn(4) == 0 {
				d.Edges[i] = append(d.Edges[i], j)
			}
		}
	}
	return reflect.ValueOf(d)
}

func (d dag) jobs(run func(i int) error) []Job {
	jobs := make([]Job, d.N)
	for i := 0; i < d.N; i++ {
		i := i
		var after []string
		for _, j := range d.Edges[i] {
			after = append(after, fmt.Sprintf("j%d", j))
		}
		jobs[i] = Job{
			ID:    fmt.Sprintf("j%d", i),
			After: after,
			Run: func(*Ctx) (map[string][]byte, error) {
				if err := run(i); err != nil {
					return nil, err
				}
				return map[string][]byte{"out": []byte(fmt.Sprintf("j%d", i))}, nil
			},
		}
	}
	return jobs
}

// TestPropertyEveryJobRunsOnce: on random DAGs, every job's Run executes
// exactly once, all results are Done in submission order, and the number
// of concurrently running jobs never exceeds the worker bound.
func TestPropertyEveryJobRunsOnce(t *testing.T) {
	prop := func(d dag) bool {
		runs := make([]atomic.Int32, d.N)
		var inflight, peak atomic.Int32
		jobs := d.jobs(func(i int) error {
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			runs[i].Add(1)
			inflight.Add(-1)
			return nil
		})
		results, err := Run(jobs, Options{Workers: d.Workers})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		for i := range runs {
			if got := runs[i].Load(); got != 1 {
				t.Logf("job %d ran %d times", i, got)
				return false
			}
			if results[i].ID != jobs[i].ID || results[i].Status != Done {
				t.Logf("result %d = %s/%s, want %s/done", i, results[i].ID, results[i].Status, jobs[i].ID)
				return false
			}
		}
		if p := int(peak.Load()); p > d.Workers {
			t.Logf("observed %d concurrent jobs, worker bound %d", p, d.Workers)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDependencyOrder: on random DAGs, a job never starts before
// every one of its dependencies has finished.
func TestPropertyDependencyOrder(t *testing.T) {
	prop := func(d dag) bool {
		finished := make([]atomic.Bool, d.N)
		violation := atomic.Bool{}
		jobs := d.jobs(func(i int) error {
			for _, dep := range d.Edges[i] {
				if !finished[dep].Load() {
					violation.Store(true)
				}
			}
			finished[i].Store(true)
			return nil
		})
		if _, err := Run(jobs, Options{Workers: d.Workers}); err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		if violation.Load() {
			t.Log("a job started before one of its dependencies finished")
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCachedRunIdentical: with a cache, a warm Run returns byte
// by byte the files of the cold run, with every job reported Cached.
func TestPropertyCachedRunIdentical(t *testing.T) {
	prop := func(d dag) bool {
		cache, err := OpenCache(t.TempDir())
		if err != nil {
			t.Logf("open cache: %v", err)
			return false
		}
		jobs := d.jobs(func(int) error { return nil })
		for i := range jobs {
			jobs[i].Key = &Key{Experiment: jobs[i].ID, Params: "p", ModelVersion: "test"}
		}
		cold, err := Run(jobs, Options{Workers: d.Workers, Cache: cache})
		if err != nil {
			t.Logf("cold run: %v", err)
			return false
		}
		warm, err := Run(jobs, Options{Workers: d.Workers, Cache: cache})
		if err != nil {
			t.Logf("warm run: %v", err)
			return false
		}
		for i := range warm {
			if warm[i].Status != Cached {
				t.Logf("job %s warm status %s, want cached", warm[i].ID, warm[i].Status)
				return false
			}
			if !reflect.DeepEqual(cold[i].Files, warm[i].Files) {
				t.Logf("job %s warm files differ from cold run", warm[i].ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestFailFast: a failing job aborts jobs not yet started and skips its
// dependents; results still come back for every job and Run reports the
// failed job by name.
func TestFailFast(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	jobs := []Job{
		{ID: "ok", Run: func(*Ctx) (map[string][]byte, error) {
			<-release
			return nil, nil
		}},
		{ID: "bad", Run: func(*Ctx) (map[string][]byte, error) {
			close(started)
			return nil, boom
		}},
		{ID: "child", After: []string{"bad"}, Run: func(*Ctx) (map[string][]byte, error) {
			return nil, nil
		}},
		{ID: "grandchild", After: []string{"child"}, Run: func(*Ctx) (map[string][]byte, error) {
			return nil, nil
		}},
	}
	go func() {
		<-started
		close(release)
	}()
	results, err := Run(jobs, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "job bad failed") {
		t.Fatalf("err = %v, want job bad failure", err)
	}
	want := map[string]Status{"ok": Done, "bad": Failed, "child": Skipped, "grandchild": Skipped}
	for _, r := range results {
		if r.Status != want[r.ID] {
			t.Errorf("job %s status %s, want %s", r.ID, r.Status, want[r.ID])
		}
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("bad job error = %v, want %v", results[1].Err, boom)
	}
}

// TestKeepGoing: with KeepGoing, independent jobs still run after a
// failure; only dependents of the failed job are skipped.
func TestKeepGoing(t *testing.T) {
	jobs := []Job{
		{ID: "bad", Run: func(*Ctx) (map[string][]byte, error) {
			return nil, errors.New("boom")
		}},
		{ID: "child", After: []string{"bad"}, Run: func(*Ctx) (map[string][]byte, error) {
			return nil, nil
		}},
		{ID: "indep", After: []string{}, Run: func(*Ctx) (map[string][]byte, error) {
			return map[string][]byte{"f": []byte("x")}, nil
		}},
	}
	results, err := Run(jobs, Options{Workers: 1, KeepGoing: true})
	if err == nil {
		t.Fatal("want error for failed job")
	}
	want := map[string]Status{"bad": Failed, "child": Skipped, "indep": Done}
	for _, r := range results {
		if r.Status != want[r.ID] {
			t.Errorf("job %s status %s, want %s", r.ID, r.Status, want[r.ID])
		}
	}
}

// TestPanicRecovered: a panicking generator fails its own job only.
func TestPanicRecovered(t *testing.T) {
	jobs := []Job{{ID: "p", Run: func(*Ctx) (map[string][]byte, error) {
		panic("kaboom")
	}}}
	results, err := Run(jobs, Options{})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
	if results[0].Status != Failed {
		t.Fatalf("status = %s, want failed", results[0].Status)
	}
}

// TestGraphValidation: malformed graphs are rejected up front.
func TestGraphValidation(t *testing.T) {
	ok := func(*Ctx) (map[string][]byte, error) { return nil, nil }
	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"empty id", []Job{{ID: "", Run: ok}}, "empty ID"},
		{"dup id", []Job{{ID: "a", Run: ok}, {ID: "a", Run: ok}}, "duplicate"},
		{"nil run", []Job{{ID: "a"}}, "no Run"},
		{"unknown dep", []Job{{ID: "a", After: []string{"z"}, Run: ok}}, "unknown job"},
		{"self dep", []Job{{ID: "a", After: []string{"a"}, Run: ok}}, "depends on itself"},
		{"cycle", []Job{
			{ID: "a", After: []string{"b"}, Run: ok},
			{ID: "b", After: []string{"a"}, Run: ok},
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, err := Run(tc.jobs, Options{})
			if results != nil {
				t.Error("want nil results for invalid graph")
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestEventsSerialized: OnEvent callbacks never overlap and report one
// started and one finished event per executed job.
func TestEventsSerialized(t *testing.T) {
	d := dag{N: 12, Workers: 4, Edges: make([][]int, 12)}
	var inCallback atomic.Int32
	var mu sync.Mutex
	counts := map[string]int{}
	opt := Options{Workers: d.Workers, OnEvent: func(e Event) {
		if inCallback.Add(1) != 1 {
			t.Error("overlapping OnEvent callbacks")
		}
		mu.Lock()
		switch e.Type {
		case JobStarted:
			counts["started:"+e.ID]++
		case JobFinished:
			counts["finished:"+e.ID]++
		}
		mu.Unlock()
		inCallback.Add(-1)
	}}
	if _, err := Run(d.jobs(func(int) error { return nil }), opt); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.N; i++ {
		id := fmt.Sprintf("j%d", i)
		if counts["started:"+id] != 1 || counts["finished:"+id] != 1 {
			t.Errorf("job %s events: started=%d finished=%d, want 1/1",
				id, counts["started:"+id], counts["finished:"+id])
		}
	}
}

// TestVirtualTimeAttribution: simulated seconds added through the job's
// meter surface in its Result.
func TestVirtualTimeAttribution(t *testing.T) {
	jobs := []Job{{ID: "m", Run: func(ctx *Ctx) (map[string][]byte, error) {
		ctx.Meter().Add(2.5)
		ctx.Meter().Add(1.5)
		return map[string][]byte{"f": []byte("x")}, nil
	}}}
	results, err := Run(jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Virtual != 4.0 {
		t.Fatalf("virtual = %v, want 4.0", results[0].Virtual)
	}
}
