// Package sched runs artefact-regeneration jobs on a bounded worker pool
// with dependency ordering, fail-fast error handling, per-job wall-clock
// and virtual-time accounting, and a content-addressed on-disk result
// cache. Every paper artefact is a pure function of (experiment ID,
// params, seed, model version), so regenerations are embarrassingly
// parallel and an unchanged artefact can be served from the cache instead
// of re-simulated. The experiments registry builds Jobs; cmd/repro and
// experiments.RunChecks execute them through Run.
package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Ctx is the per-job execution context handed to a Job's Run function.
type Ctx struct {
	meter *sim.Meter
}

// Meter returns the job's virtual-time accumulator. Generators thread it
// into core.RunSpec so every simulated second is attributed to the job.
func (c *Ctx) Meter() *sim.Meter { return c.meter }

// Job is one schedulable unit of work producing named output files.
type Job struct {
	ID    string
	After []string // IDs that must complete successfully first
	// Key, when non-nil, makes the job's output cacheable under that key.
	Key *Key
	// Run computes the job's output files (name -> content). It must be a
	// pure function of the job's identity: two invocations return
	// byte-identical maps regardless of scheduling.
	Run func(ctx *Ctx) (map[string][]byte, error)
}

// Status classifies a job's outcome.
type Status int

const (
	// Done: the job ran and produced its files.
	Done Status = iota
	// Cached: the files were served from the result cache; no simulation ran.
	Cached
	// Failed: the job's Run returned an error or panicked.
	Failed
	// Skipped: the job never ran — a dependency failed or the scheduler
	// aborted after an earlier failure (fail-fast).
	Skipped
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case Done:
		return "done"
	case Cached:
		return "cached"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Result reports one job's outcome.
type Result struct {
	ID     string
	Status Status
	Files  map[string][]byte
	Err    error // non-nil iff Failed, or the skip reason for Skipped
	// Wall is the real time the job occupied a worker (≈0 for Skipped).
	Wall time.Duration
	// Virtual is the simulated seconds attributed to the job via its
	// meter; for Cached results it is the value recorded by the cold run.
	Virtual float64
	// CacheErr records a best-effort cache write that failed; the job
	// itself still counts as Done.
	CacheErr error
}

// EventType distinguishes scheduler notifications.
type EventType int

const (
	// JobStarted fires when a worker picks the job up.
	JobStarted EventType = iota
	// JobFinished fires with the job's Result (any status, including Skipped).
	JobFinished
)

// Event is one scheduler notification, delivered serially.
type Event struct {
	Type   EventType
	ID     string
	Result *Result // set for JobFinished
}

// Options configures a Run.
type Options struct {
	// Workers bounds the number of jobs executing concurrently;
	// 0 or negative means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, serves and stores results for jobs with a Key.
	Cache *Cache
	// KeepGoing disables fail-fast: after a failure, independent jobs
	// still run (dependents of the failed job are skipped regardless).
	KeepGoing bool
	// OnEvent, when non-nil, receives serialized progress notifications.
	OnEvent func(Event)
	// Metrics, when non-nil, receives scheduler instrumentation: job
	// counts by status, cache hit/miss, per-job wall and virtual
	// latency, queue depth and worker utilization.
	Metrics *obs.Registry
}

// Run executes the jobs respecting dependencies and returns one Result
// per job in submission order. It returns an error if the job graph is
// invalid (nil results) or if any job failed (alongside the full partial
// results, so callers can report what did complete).
func Run(jobs []Job, opt Options) ([]Result, error) {
	n := len(jobs)
	index := make(map[string]int, n)
	for i, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("sched: job %d has an empty ID", i)
		}
		if _, dup := index[j.ID]; dup {
			return nil, fmt.Errorf("sched: duplicate job ID %q", j.ID)
		}
		if j.Run == nil {
			return nil, fmt.Errorf("sched: job %q has no Run function", j.ID)
		}
		index[j.ID] = i
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, j := range jobs {
		for _, dep := range j.After {
			di, ok := index[dep]
			if !ok {
				return nil, fmt.Errorf("sched: job %q depends on unknown job %q", j.ID, dep)
			}
			if di == i {
				return nil, fmt.Errorf("sched: job %q depends on itself", j.ID)
			}
			indeg[i]++
			dependents[di] = append(dependents[di], i)
		}
	}
	if err := checkAcyclic(jobs, index); err != nil {
		return nil, err
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	s := &state{
		jobs:       jobs,
		indeg:      indeg,
		dependents: dependents,
		results:    make([]Result, n),
		settled:    make([]bool, n),
		opt:        opt,
	}
	if opt.Metrics != nil {
		s.met = newSchedMetrics(opt.Metrics)
		s.met.workers.Set(int64(workers))
	}
	s.cond = sync.NewCond(&s.mu)
	for i, d := range indeg {
		if d == 0 {
			s.ready = append(s.ready, i)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s.work()
		}()
	}
	wg.Wait()

	var firstFail *Result
	for i := range s.results {
		if s.results[i].Status == Failed && firstFail == nil {
			firstFail = &s.results[i]
		}
	}
	if firstFail != nil {
		return s.results, fmt.Errorf("sched: job %s failed: %w", firstFail.ID, firstFail.Err)
	}
	return s.results, nil
}

// state is the shared coordination structure of one Run.
type state struct {
	jobs       []Job
	dependents [][]int

	mu       sync.Mutex
	cond     *sync.Cond
	indeg    []int
	ready    []int // indices ready to execute, in submission order
	settled  []bool
	nsettled int
	aborting bool // a job failed and KeepGoing is off: stop launching

	eventMu sync.Mutex
	results []Result
	opt     Options
	met     schedMetrics
}

// work is one worker's loop: claim a ready job, execute it, settle it.
func (s *state) work() {
	for {
		s.mu.Lock()
		for len(s.ready) == 0 && s.nsettled < len(s.jobs) {
			s.cond.Wait()
		}
		if len(s.ready) == 0 {
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		i := s.ready[0]
		s.ready = s.ready[1:]
		aborting := s.aborting
		s.met.queueDepth.Observe(int64(len(s.ready)))
		s.mu.Unlock()

		var res Result
		if aborting {
			res = Result{ID: s.jobs[i].ID, Status: Skipped,
				Err: fmt.Errorf("sched: skipped after earlier failure")}
		} else {
			s.emit(Event{Type: JobStarted, ID: s.jobs[i].ID})
			res = s.execute(&s.jobs[i])
		}
		s.settle(i, res)
	}
}

// execute runs one job: cache lookup, Run with panic recovery, cache store.
func (s *state) execute(j *Job) Result {
	start := time.Now()
	if j.Key != nil && s.opt.Cache != nil {
		if files, virtual, ok := s.opt.Cache.Get(*j.Key); ok {
			s.met.cacheHits.Inc()
			return Result{ID: j.ID, Status: Cached, Files: files,
				Wall: time.Since(start), Virtual: virtual}
		}
		s.met.cacheMisses.Inc()
	}
	ctx := &Ctx{meter: &sim.Meter{}}
	files, err := runRecovered(j, ctx)
	res := Result{ID: j.ID, Wall: time.Since(start), Virtual: ctx.meter.Total()}
	s.met.jobWall.Observe(res.Wall.Nanoseconds())
	s.met.busyNS.Add(res.Wall.Nanoseconds())
	s.met.jobVirtual.ObserveSeconds(res.Virtual)
	s.met.virtualNS.AddSeconds(res.Virtual)
	if err != nil {
		res.Status = Failed
		res.Err = err
		return res
	}
	res.Status = Done
	res.Files = files
	if j.Key != nil && s.opt.Cache != nil {
		res.CacheErr = s.opt.Cache.Put(*j.Key, files, res.Virtual)
	}
	return res
}

// runRecovered invokes j.Run, converting a panic into an error so one
// broken generator fails its job instead of the whole process.
func runRecovered(j *Job, ctx *Ctx) (files map[string][]byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sched: job %s panicked: %v", j.ID, p)
		}
	}()
	return j.Run(ctx)
}

// settle records a result, releases or skips dependents and wakes workers.
func (s *state) settle(i int, res Result) {
	switch res.Status {
	case Done:
		s.met.done.Inc()
	case Cached:
		s.met.cached.Inc()
	case Failed:
		s.met.failed.Inc()
	case Skipped:
		s.met.skipped.Inc()
	}
	s.mu.Lock()
	s.results[i] = res
	s.settled[i] = true
	s.nsettled++
	ok := res.Status == Done || res.Status == Cached
	if res.Status == Failed && !s.opt.KeepGoing {
		s.aborting = true
	}
	var skipped []int
	if ok {
		var freed []int
		for _, d := range s.dependents[i] {
			s.indeg[d]--
			if s.indeg[d] == 0 {
				freed = append(freed, d)
			}
		}
		sort.Ints(freed)
		s.ready = append(s.ready, freed...)
	} else {
		skipped = s.skipDependents(i, res.ID, nil)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.emit(Event{Type: JobFinished, ID: res.ID, Result: &res})
	for _, d := range skipped {
		r := s.results[d] // settled: no concurrent writer
		s.emit(Event{Type: JobFinished, ID: r.ID, Result: &r})
	}
}

// skipDependents transitively settles every dependent of i as Skipped and
// returns their indices. Caller holds s.mu.
func (s *state) skipDependents(i int, cause string, acc []int) []int {
	for _, d := range s.dependents[i] {
		if s.settled[d] {
			continue
		}
		s.results[d] = Result{ID: s.jobs[d].ID, Status: Skipped,
			Err: fmt.Errorf("sched: dependency %s did not complete", cause)}
		s.met.skipped.Inc()
		s.settled[d] = true
		s.nsettled++
		acc = append(acc, d)
		acc = s.skipDependents(d, cause, acc)
	}
	return acc
}

// emit delivers one event; events are serialized so OnEvent needs no
// locking of its own.
func (s *state) emit(e Event) {
	if s.opt.OnEvent == nil {
		return
	}
	s.eventMu.Lock()
	defer s.eventMu.Unlock()
	s.opt.OnEvent(e)
}

// checkAcyclic rejects dependency cycles with a readable path.
func checkAcyclic(jobs []Job, index map[string]int) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(jobs))
	var path []string
	var visit func(i int) error
	visit = func(i int) error {
		color[i] = grey
		path = append(path, jobs[i].ID)
		for _, dep := range jobs[i].After {
			di := index[dep]
			switch color[di] {
			case grey:
				return fmt.Errorf("sched: dependency cycle: %v -> %s", path, dep)
			case white:
				if err := visit(di); err != nil {
					return err
				}
			}
		}
		path = path[:len(path)-1]
		color[i] = black
		return nil
	}
	for i := range jobs {
		if color[i] == white {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}
