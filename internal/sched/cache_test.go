package sched

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// TestCacheRoundTrip: Put then Get returns the exact bytes and virtual
// seconds stored.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Experiment: "fig4", Params: "sweep=quick", Seed: 7, ModelVersion: "v1"}
	files := map[string][]byte{
		"a.csv": []byte("x,y\n1,2\n"),
		"a.txt": {0, 1, 2, 0xff}, // binary survives the envelope
	}
	if err := c.Put(k, files, 123.5); err != nil {
		t.Fatal(err)
	}
	got, virtual, ok := c.Get(k)
	if !ok {
		t.Fatal("want cache hit")
	}
	if virtual != 123.5 {
		t.Errorf("virtual = %v, want 123.5", virtual)
	}
	if !reflect.DeepEqual(got, files) {
		t.Errorf("files = %v, want %v", got, files)
	}
}

// TestCacheKeyMismatchIsMiss: any single differing key field misses.
func TestCacheKeyMismatchIsMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Experiment: "e", Params: "p", Seed: 1, ModelVersion: "v1"}
	if err := c.Put(k, map[string][]byte{"f": []byte("x")}, 0); err != nil {
		t.Fatal(err)
	}
	for _, other := range []Key{
		{Experiment: "e2", Params: "p", Seed: 1, ModelVersion: "v1"},
		{Experiment: "e", Params: "p2", Seed: 1, ModelVersion: "v1"},
		{Experiment: "e", Params: "p", Seed: 2, ModelVersion: "v1"},
		{Experiment: "e", Params: "p", Seed: 1, ModelVersion: "v2"},
	} {
		if _, _, ok := c.Get(other); ok {
			t.Errorf("key %+v unexpectedly hit", other)
		}
	}
}

// TestCacheCorruptEntryIsMiss: a truncated or garbage entry file reads as
// a miss rather than bad data.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Experiment: "e", Params: "p", ModelVersion: "v1"}
	if err := c.Put(k, map[string][]byte{"f": []byte("x")}, 0); err != nil {
		t.Fatal(err)
	}
	h := k.Hash()
	path := filepath.Join(dir, h[:2], h+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(k); ok {
		t.Fatal("corrupt entry should miss")
	}
}

// TestNilCacheIsNoop: a nil *Cache (the -nocache path) misses and
// swallows writes without panicking.
func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	if _, _, ok := c.Get(Key{}); ok {
		t.Fatal("nil cache should miss")
	}
	if err := c.Put(Key{}, nil, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKeyHash: hashing is deterministic, collision-free across
// distinct keys (including field-boundary shifts) and hex-addressable.
func TestPropertyKeyHash(t *testing.T) {
	prop := func(a, b Key) bool {
		if a.Hash() != a.Hash() {
			return false
		}
		if a == b {
			return a.Hash() == b.Hash()
		}
		return a.Hash() != b.Hash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Field boundaries must not collide: ("ab","c") vs ("a","bc").
	k1 := Key{Experiment: "ab", Params: "c"}
	k2 := Key{Experiment: "a", Params: "bc"}
	if k1.Hash() == k2.Hash() {
		t.Fatal("field-boundary collision")
	}
}

// TestPropertyCacheRoundTrip: arbitrary file maps survive the envelope.
func TestPropertyCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var seed uint64
	prop := func(name string, data []byte, virtual float64) bool {
		seed++
		if math.IsNaN(virtual) || math.IsInf(virtual, 0) {
			virtual = 0 // JSON cannot encode these; Put reports, not stores
		}
		k := Key{Experiment: "prop", Seed: seed, ModelVersion: "v1"}
		if err := c.Put(k, map[string][]byte{name: data}, virtual); err != nil {
			t.Logf("put: %v", err)
			return false
		}
		files, v, ok := c.Get(k)
		if !ok || v != virtual {
			t.Logf("get: ok=%v virtual=%v", ok, v)
			return false
		}
		got, present := files[name]
		// encoding/json decodes an empty base64 string to nil bytes.
		return present && (bytes.Equal(got, data) || (len(got) == 0 && len(data) == 0))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
