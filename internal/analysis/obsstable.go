package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

const obsPkg = ModulePath + "/internal/obs"

// Obsstable cross-checks the observability plane's stable-snapshot
// contract (PR 4): a metric registered through the stable constructors
// (Registry.Counter/Gauge/Histogram) is byte-compared between -j 1 and
// -j 8 runs, so it must never be fed from wall-clock durations or
// scheduling-dependent pool traffic. Those sources belong in
// Volatile{Counter,Gauge,Histogram} series, which the stable snapshot
// excludes. The analyzer resolves, package-locally, which variables and
// struct fields hold stable metrics, then inspects every value fed into
// them.
var Obsstable = &Analyzer{
	Name: "obsstable",
	Doc: "metrics registered without the Volatile marker must not be fed " +
		"wall-clock or pool-hit values (stable snapshots are byte-compared " +
		"across worker counts)",
	Run: runObsstable,
}

var (
	stableCtors = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}
	feedMethods = map[string]bool{
		"Add": true, "AddSeconds": true, "Inc": true,
		"Set": true, "SetMax": true,
		"Observe": true, "ObserveSeconds": true,
	}
	// volatileNameRe spots wall-clock-ish sources syntactically: the
	// repository's naming discipline makes wall/pool data self-identifying
	// (Result.Wall, poolLease, time.Since, Duration.Nanoseconds on a wall
	// interval all surface one of these tokens).
	volatileNameRe = regexp.MustCompile(`(?i)wall|pool(hit|miss|lease)`)
)

func runObsstable(pass *Pass) error {
	stable := stableMetricObjects(pass)
	if len(stable) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, typ, method, okM := methodInfo(pass.Info, call)
			if !okM || pkg != obsPkg || !feedMethods[method] {
				return true
			}
			if typ != "Counter" && typ != "Gauge" && typ != "Histogram" {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvObj := metricObjOf(pass, sel.X)
			name, isStable := stable[recvObj]
			if recvObj == nil || !isStable {
				return true
			}
			if why := volatileSource(pass, call); why != "" {
				pass.Reportf(call.Pos(),
					"stable metric %q fed from %s; register it with the "+
						"Volatile%s constructor or feed it virtual-time data "+
						"(stable snapshots must be -j invariant)", name, why, typ)
			}
			return true
		})
	}
	return nil
}

// stableMetricObjects maps variables and struct-field objects to the
// metric name they were registered under via a *stable* constructor.
// Resolution is package-local and flow-insensitive: any assignment or
// composite-literal field whose RHS is Registry.Counter/Gauge/Histogram.
func stableMetricObjects(pass *Pass) map[types.Object]string {
	out := map[types.Object]string{}
	record := func(lhs ast.Expr, call *ast.CallExpr) {
		pkg, typ, method, ok := methodInfo(pass.Info, call)
		if !ok || pkg != obsPkg || typ != "Registry" || !stableCtors[method] {
			return
		}
		name := "?"
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
				name = strings.Trim(lit.Value, `"`)
			}
		}
		if obj := metricObjOf(pass, lhs); obj != nil {
			out[obj] = name
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && i < len(v.Lhs) {
						record(v.Lhs[i], call)
					}
				}
			case *ast.CompositeLit:
				for _, el := range v.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if call, ok := ast.Unparen(kv.Value).(*ast.CallExpr); ok {
						record(kv.Key, call)
					}
				}
			}
			return true
		})
	}
	return out
}

// metricObjOf resolves the object a metric expression refers to: a plain
// variable, or the struct field of a selector chain (s.met.jobWall →
// field jobWall). Field objects are shared across the package, which is
// what lets registration in one function inform uses in another.
func metricObjOf(pass *Pass, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pass.Info.Defs[v]; o != nil {
			return o
		}
		return pass.Info.Uses[v]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[v]; ok {
			return sel.Obj()
		}
		return pass.Info.Uses[v.Sel]
	}
	return nil
}

// volatileSource describes why a feed call's arguments look
// scheduling-dependent ("" when they look deterministic).
func volatileSource(pass *Pass, call *ast.CallExpr) string {
	var why string
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if why != "" {
				return false
			}
			switch v := n.(type) {
			case *ast.CallExpr:
				if fn := calleeObj(pass.Info, v); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && detwallForbidden[fn.Name()] {
					why = "time." + fn.Name()
					return false
				}
			case *ast.Ident:
				if volatileNameRe.MatchString(v.Name) {
					why = "wall/pool-derived value " + v.Name
					return false
				}
			case *ast.SelectorExpr:
				if volatileNameRe.MatchString(v.Sel.Name) {
					why = "wall/pool-derived value " + v.Sel.Name
					return false
				}
			}
			return true
		})
		if why != "" {
			break
		}
	}
	return why
}
