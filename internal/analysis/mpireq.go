package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

const mpiPkg = ModulePath + "/internal/mpi"

// Mpireq enforces two MPI-hygiene rules outside the runtime itself:
//
//  1. Every *mpi.Request produced by Isend*/Irecv* must reach a
//     Wait/Waitall. The check is flow-insensitive by design: a request is
//     satisfied when its destination variable (or the slice it is stored
//     into) later appears as an argument to any call or in a return —
//     discarding the result, or binding it to a variable that is never
//     handed anywhere, is the bug that leaks a posted receive and stalls
//     the matching rank's virtual clock.
//
//  2. A *mpi.Comm must not be captured by a goroutine: each Comm is the
//     per-rank endpoint whose clock advances only on its own rank's
//     goroutine (Requests are documented "not safe for concurrent use").
//     Cross-goroutine captures introduce real races that -race only
//     catches when the schedule cooperates; the analyzer catches them
//     always.
var Mpireq = &Analyzer{
	Name: "mpireq",
	Doc: "require Isend/Irecv results to reach Wait/Waitall and forbid " +
		"capturing *mpi.Comm in goroutines (outside internal/mpi)",
	Run: runMpireq,
}

func runMpireq(pass *Pass) error {
	if pass.Pkg.Path() == mpiPkg {
		return nil // the runtime hands requests/comms across by design
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRequests(pass, fd.Body)
		}
		checkGoCaptures(pass, f)
	}
	return nil
}

// isNonblockingPost reports whether call is Comm.Isend*/Irecv*.
func isNonblockingPost(pass *Pass, call *ast.CallExpr) bool {
	pkg, typ, method, ok := methodInfo(pass.Info, call)
	if !ok || pkg != mpiPkg || typ != "Comm" {
		return false
	}
	return strings.HasPrefix(method, "Isend") || strings.HasPrefix(method, "Irecv")
}

// checkRequests applies rule 1 inside one function body (function
// literals are scanned as part of the enclosing body: the scope of a
// request variable is what matters, not the syntactic nesting).
func checkRequests(pass *Pass, body *ast.BlockStmt) {
	// First pass: find every posted request and where its value lands.
	type post struct {
		call *ast.CallExpr
		obj  types.Object // destination variable (slice or request), nil = discarded
	}
	var posts []post
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok && isNonblockingPost(pass, call) {
				posts = append(posts, post{call: call})
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isNonblockingPost(pass, call) || i >= len(v.Lhs) {
					continue
				}
				posts = append(posts, post{call: call, obj: destObj(pass, v.Lhs[i])})
			}
		}
		return true
	})
	if len(posts) == 0 {
		return
	}

	// Second pass: record every object that escapes into a call argument
	// or a return statement — any of those count as "reached a Wait"
	// (the callee may wait on the caller's behalf).
	escaped := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			for _, arg := range v.Args {
				markObjs(pass, arg, escaped)
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				markObjs(pass, r, escaped)
			}
		}
		return true
	})

	for _, p := range posts {
		method := ""
		if _, _, m, ok := methodInfo(pass.Info, p.call); ok {
			method = m
		}
		switch {
		case p.obj == nil:
			pass.Reportf(p.call.Pos(),
				"%s result discarded: the request never reaches Wait/Waitall, "+
					"so the posted operation can never complete", method)
		case !escaped[p.obj]:
			pass.Reportf(p.call.Pos(),
				"%s result stored in %q but %q never reaches a Wait/Waitall "+
					"(or any call that could wait on it)", method, p.obj.Name(), p.obj.Name())
		}
	}
}

// destObj resolves the variable a request is stored into: the identifier
// itself, or the base identifier for index expressions (reqs[i] = ...).
// nil means the blank identifier or an untrackable destination.
func destObj(pass *Pass, lhs ast.Expr) types.Object {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return nil
		}
		if o := pass.Info.Defs[v]; o != nil {
			return o
		}
		return pass.Info.Uses[v]
	case *ast.IndexExpr:
		return destObj(pass, v.X)
	case *ast.SelectorExpr:
		// Stored into a struct field: assume a longer-lived protocol
		// object that waits elsewhere; out of scope for a local check.
		return pass.Info.Uses[v.Sel]
	}
	return nil
}

// markObjs records every identifier (including selector fields and index
// bases) mentioned in an argument/return expression.
func markObjs(pass *Pass, e ast.Expr, into map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := pass.Info.Uses[id]; o != nil {
				into[o] = true
			}
			if o := pass.Info.Defs[id]; o != nil {
				into[o] = true
			}
		}
		return true
	})
}

// checkGoCaptures applies rule 2: a `go` statement whose function (or
// any of its arguments) references a *mpi.Comm from the enclosing scope.
func checkGoCaptures(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(gs.Call, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, isVar := pass.Info.Uses[id].(*types.Var)
			if !isVar || !isNamedType(obj.Type(), mpiPkg, "Comm") {
				return true
			}
			// Only free variables count: a Comm-typed parameter of the
			// goroutine's own literal was already reported where it was
			// passed in.
			if gs.Pos() <= obj.Pos() && obj.Pos() <= gs.End() {
				return true
			}
			pass.Reportf(id.Pos(),
				"*mpi.Comm %q captured by a goroutine: a Comm advances its own "+
					"rank's virtual clock and must stay on the rank's goroutine", id.Name)
			return true
		})
		return true
	})
}
