package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural facts engine. Where the original six analyzers
// judge one package's syntax in isolation, the engine computes
// per-function summaries — *facts* — that cross package boundaries the
// way golang.org/x/tools analyzer facts do: a deterministic bottom-up
// walk of the module call graph (condensed into strongly connected
// components so recursion converges in one pass) decides, for every
// function, whether it
//
//   - transitively allocates (Allocates),
//   - transitively reads the host wall clock (ReadsClock),
//   - transitively draws from the runtime-seeded global math/rand
//     source (GlobalRand), or
//   - may spawn a goroutine (Spawns),
//
// and the analyzers built on top (allochot, detflow) consume those
// summaries instead of re-deriving them per call site. The walk is
// order-invariant: nodes, edges and SCC members are processed in sorted
// key order, so the same module produces bit-identical facts no matter
// what order its packages were loaded in (a testing/quick property pins
// this down).
//
// Under the standalone driver the whole module is loaded at once and
// the graph spans every package. Under `go vet -vettool` the driver
// hands us one package per invocation plus the serialized facts of its
// dependencies (the unitchecker PackageVetx/VetxOutput protocol);
// ComputeFacts seeds the walk with the imported facts and the
// per-package result is exported for the packages that import it — the
// same shape x/tools uses, minus the gob encoding.

// FuncFacts is the interprocedural summary of one function. The *Why
// fields carry a one-hop witness: either a concrete source description
// ("append grows ... at file:line") or "calls <key>", which WhyChain
// follows to reconstruct the full call path for diagnostics.
type FuncFacts struct {
	Allocates bool   `json:"allocates,omitempty"`
	AllocWhy  string `json:"alloc_why,omitempty"`

	ReadsClock bool   `json:"reads_clock,omitempty"`
	ClockWhy   string `json:"clock_why,omitempty"`

	GlobalRand bool   `json:"global_rand,omitempty"`
	RandWhy    string `json:"rand_why,omitempty"`

	Spawns   bool   `json:"spawns,omitempty"`
	SpawnWhy string `json:"spawn_why,omitempty"`
}

// Facts maps canonical function keys (FuncKey) to their computed
// summaries. The zero value is empty but usable for lookups.
type Facts struct {
	m map[string]*FuncFacts
}

// Of returns the facts for a canonical function key. Unknown keys —
// functions outside the analyzed set — return the zero summary, which
// callers must treat as "nothing proven", not "proven clean";
// classifyCall is the place that decides what unknown callees mean.
func (f *Facts) Of(key string) FuncFacts {
	if f == nil || f.m == nil {
		return FuncFacts{}
	}
	if ff, ok := f.m[key]; ok {
		return *ff
	}
	return FuncFacts{}
}

// Has reports whether the key was part of the analyzed function set.
func (f *Facts) Has(key string) bool {
	if f == nil || f.m == nil {
		return false
	}
	_, ok := f.m[key]
	return ok
}

// Keys returns every analyzed function key in sorted order.
func (f *Facts) Keys() []string {
	if f == nil {
		return nil
	}
	keys := make([]string, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MarshalJSON serializes the fact table deterministically (sorted keys)
// — the vettool export format written to VetxOutput.
func (f *Facts) MarshalJSON() ([]byte, error) {
	ordered := make(map[string]*FuncFacts, len(f.m))
	for k, v := range f.m {
		ordered[k] = v
	}
	return json.Marshal(ordered) // encoding/json sorts map keys
}

// UnmarshalJSON loads a fact table exported by a dependency package.
func (f *Facts) UnmarshalJSON(data []byte) error {
	f.m = map[string]*FuncFacts{}
	return json.Unmarshal(data, &f.m)
}

// Merge copies every entry of other into f (other wins on conflicts —
// dependencies are final by the time their importers are analyzed).
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	if f.m == nil {
		f.m = map[string]*FuncFacts{}
	}
	for k, v := range other.m {
		cp := *v
		f.m[k] = &cp
	}
}

// FuncKey renders a function object's canonical key: "pkgpath.Name" for
// package functions, "pkgpath.Type.Name" for methods (pointer receivers
// drop the star) — the same naming the detwall allowlist already uses,
// so one grammar covers both tables.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	prefix := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return prefix + named.Obj().Name() + "." + fn.Name()
		}
		return "" // interface method or unnamed receiver: no stable key
	}
	return prefix + fn.Name()
}

// DeclKey returns the canonical key of a function declaration in pkg,
// or "" for declarations go/types could not resolve.
func DeclKey(pkg *Package, fd *ast.FuncDecl) string {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return FuncKey(obj)
}

// funcNode is one call-graph node under construction: a declared
// function body plus everything the direct-effects scan found in it.
type funcNode struct {
	key   string
	fd    *ast.FuncDecl
	pkg   *Package
	calls []string // canonical keys of module-local callees (sorted, deduped)
	facts FuncFacts
}

// ComputeFacts builds the call graph over the module packages in pkgs,
// seeds it with imported facts (dependency summaries under the vettool
// protocol; nil when the whole module is loaded at once) and returns
// the completed fact table covering imported plus local functions.
func ComputeFacts(pkgs []*Package, imported *Facts) *Facts {
	nodes := map[string]*funcNode{}
	for _, pkg := range pkgs {
		if !InModule(pkg.Path) {
			continue
		}
		sup, _ := collectSuppressions(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := DeclKey(pkg, fd)
				if key == "" {
					continue
				}
				n := &funcNode{key: key, fd: fd, pkg: pkg}
				scanDirectEffects(n, sup)
				nodes[key] = n
			}
		}
	}

	out := &Facts{m: map[string]*FuncFacts{}}
	out.Merge(imported)

	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Tarjan's SCC over the local nodes. Cross-package edges into
	// already-summarized dependencies are not graph edges — their facts
	// were folded into the node during scanning (classifyCall) or are
	// resolved below from `out`. SCCs pop in reverse topological order
	// (callees before callers), which is exactly the bottom-up order the
	// fixed point needs: by the time an SCC is condensed, every callee
	// outside it already has final facts.
	t := &tarjan{
		nodes: nodes,
		index: map[string]int{},
		low:   map[string]int{},
		on:    map[string]bool{},
	}
	for _, k := range keys {
		if _, seen := t.index[k]; !seen {
			t.strongconnect(k)
		}
	}

	for _, scc := range t.sccs {
		sort.Strings(scc)
		// Union the members' direct facts, then fold in callee facts
		// from outside the SCC. Within the SCC every member reaches
		// every other, so the union applies to all of them.
		var u FuncFacts
		inSCC := map[string]bool{}
		for _, k := range scc {
			inSCC[k] = true
		}
		for _, k := range scc {
			mergeFacts(&u, nodes[k].facts)
			for _, callee := range nodes[k].calls {
				if inSCC[callee] {
					continue
				}
				var cf FuncFacts
				if ff, ok := out.m[callee]; ok {
					cf = *ff
				} else if cn, ok := nodes[callee]; ok {
					// A callee whose SCC has not popped yet can only
					// happen for forward edges into the same SCC run;
					// Tarjan's pop order makes this unreachable, but
					// degrade soundly rather than panic.
					cf = cn.facts
				}
				via := "calls " + callee
				mergeFacts(&u, liftCallee(cf, via))
			}
		}
		for _, k := range scc {
			ff := u
			out.m[k] = &ff
		}
	}
	return out
}

// liftCallee converts a callee's facts into the caller's view: the
// bits survive, the witness becomes the call edge.
func liftCallee(cf FuncFacts, via string) FuncFacts {
	var out FuncFacts
	if cf.Allocates {
		out.Allocates, out.AllocWhy = true, via
	}
	if cf.ReadsClock {
		out.ReadsClock, out.ClockWhy = true, via
	}
	if cf.GlobalRand {
		out.GlobalRand, out.RandWhy = true, via
	}
	if cf.Spawns {
		out.Spawns, out.SpawnWhy = true, via
	}
	return out
}

// mergeFacts ORs src into dst, keeping dst's earlier witnesses (the
// first-found witness in sorted order, so chains are deterministic).
func mergeFacts(dst *FuncFacts, src FuncFacts) {
	if src.Allocates && !dst.Allocates {
		dst.Allocates, dst.AllocWhy = true, src.AllocWhy
	}
	if src.ReadsClock && !dst.ReadsClock {
		dst.ReadsClock, dst.ClockWhy = true, src.ClockWhy
	}
	if src.GlobalRand && !dst.GlobalRand {
		dst.GlobalRand, dst.RandWhy = true, src.RandWhy
	}
	if src.Spawns && !dst.Spawns {
		dst.Spawns, dst.SpawnWhy = true, src.SpawnWhy
	}
}

// WhyChain reconstructs the witness path behind one fact bit: starting
// from key, it follows "calls <next>" links through the fact table and
// returns the hops joined with " -> ", ending at the concrete source
// description. pick selects which fact's witness to follow.
func (f *Facts) WhyChain(key string, pick func(FuncFacts) string) string {
	var hops []string
	seen := map[string]bool{}
	for key != "" && !seen[key] {
		seen[key] = true
		hops = append(hops, key)
		why := pick(f.Of(key))
		next, ok := strings.CutPrefix(why, "calls ")
		if !ok {
			if why != "" {
				hops = append(hops, why)
			}
			break
		}
		key = next
	}
	return strings.Join(hops, " -> ")
}

// tarjan is the classic iterative-enough (recursion depth = call-graph
// depth, fine for a module of this size) SCC computation.
type tarjan struct {
	nodes map[string]*funcNode
	index map[string]int
	low   map[string]int
	on    map[string]bool
	stack []string
	next  int
	sccs  [][]string
}

func (t *tarjan) strongconnect(v string) {
	t.index[v] = t.next
	t.low[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.on[v] = true

	for _, w := range t.nodes[v].calls {
		if _, local := t.nodes[w]; !local {
			continue // summarized dependency, not a graph node
		}
		if _, seen := t.index[w]; !seen {
			t.strongconnect(w)
			if t.low[w] < t.low[v] {
				t.low[v] = t.low[w]
			}
		} else if t.on[w] && t.index[w] < t.low[v] {
			t.low[v] = t.index[w]
		}
	}

	if t.low[v] == t.index[v] {
		var scc []string
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.on[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}

// nonAllocCalls lists standard-library calls the engine trusts not to
// allocate: the synchronisation, atomics and arithmetic the hot paths
// lean on. Everything outside this table (and outside the module, whose
// bodies we can read) is conservatively assumed to allocate — the
// unknown-callee default that keeps allochot sound.
var nonAllocCalls = map[string]bool{
	"sync.Mutex.Lock":        true,
	"sync.Mutex.Unlock":      true,
	"sync.Mutex.TryLock":     true,
	"sync.RWMutex.Lock":      true,
	"sync.RWMutex.Unlock":    true,
	"sync.RWMutex.RLock":     true,
	"sync.RWMutex.RUnlock":   true,
	"sync.Cond.Signal":       true,
	"sync.Cond.Broadcast":    true,
	"sync.Cond.Wait":         true,
	"sync.WaitGroup.Add":     true,
	"sync.WaitGroup.Done":    true,
	"sync.WaitGroup.Wait":    true,
	"sync.Once.Do":           true, // the Do machinery; f itself is a separate call
	"sync.Pool.Put":          true, // per-P pad allocated once, amortised away
	"sort.Search":            true,
	"sort.SearchInts":        true,
	"sort.SearchFloat64s":    true,
	"sort.SearchStrings":     true,
	"math/bits.Len64":        true,
	"math/bits.Len32":        true,
	"math/bits.Len":          true,
	"math/bits.OnesCount64":  true,
	"math/bits.LeadingZeros": true,
	"errors.Is":              true,
	"errors.As":              false, // reflects; keep explicit for readers
}

// nonAllocPkgs are packages whose every function is allocation-free for
// our purposes: pure arithmetic on machine words.
var nonAllocPkgs = map[string]bool{
	"math":        true,
	"sync/atomic": true,
}

// clockSourceCalls are the wall-clock sources (shared with detwall).
func isClockSource(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" && detwallForbidden[fn.Name()]
}

// isGlobalRand reports whether fn is a package-level math/rand function
// (the runtime-seeded shared source).
func isGlobalRand(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewPCG", "NewChaCha8":
		// Constructors are the *seeded* escape hatch; detrand audits
		// their seed expressions separately.
		return false
	}
	return true
}

// stdlibCallKey renders an out-of-module callee as "pkg.Name" /
// "pkg.Type.Name" for the nonAlloc tables.
func stdlibCallKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // builtin-ish; callers handle separately
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// scanDirectEffects walks one function body recording its direct facts
// and module-local call edges. Allocation sites whose line carries an
// allochot suppression are treated as audited-amortised and do not set
// the Allocates bit (the allow reason is the proof the budget gate
// leans on); clock sources under a detwall/detflow allow or in the
// embedded detwall allowlist likewise do not taint the clock fact.
func scanDirectEffects(n *funcNode, sup map[suppression]bool) {
	pass := n.pkg
	allowed := func(node ast.Node, analyzer string) bool {
		p := pass.Fset.Position(node.Pos())
		return sup[suppression{file: p.Filename, line: p.Line, analyzer: analyzer}]
	}
	at := func(node ast.Node) string { return shortAt(pass.Fset, node) }
	setAlloc := func(node ast.Node, why string) {
		if n.facts.Allocates || allowed(node, Allochot.Name) {
			return
		}
		n.facts.Allocates = true
		n.facts.AllocWhy = why + " at " + at(node)
	}
	calls := map[string]bool{}

	w := &allocWalker{
		fset:  pass.Fset,
		info:  pass.Info,
		tpkg:  pass.Types,
		alloc: setAlloc,
		spawn: func(g *ast.GoStmt) {
			if !n.facts.Spawns {
				n.facts.Spawns = true
				n.facts.SpawnWhy = "go statement at " + at(g)
			}
		},
		localCall: func(call *ast.CallExpr, fn *types.Func, key string) {
			calls[key] = true
		},
		source: func(call *ast.CallExpr, fn *types.Func) {
			if isClockSource(fn) && !n.facts.ReadsClock &&
				!allowed(call, Detflow.Name) && !allowed(call, Detwall.Name) {
				if _, exempt := detwallAllow[n.key]; !exempt {
					n.facts.ReadsClock = true
					n.facts.ClockWhy = "time." + fn.Name() + " at " + at(call)
				}
			}
			if isGlobalRand(fn) && !n.facts.GlobalRand {
				n.facts.GlobalRand = true
				n.facts.RandWhy = fn.Pkg().Path() + "." + fn.Name() + " at " + at(call)
			}
		},
	}
	w.walk(n.fd.Body)

	n.calls = make([]string, 0, len(calls))
	for k := range calls {
		n.calls = append(n.calls, k)
	}
	sort.Strings(n.calls)
}

// allocWalker enumerates the potential allocation sites, call edges and
// nondeterminism sources of one function body. It is shared by the
// facts engine (which folds sites into a per-function summary) and by
// allochot (which reports every site inside a hot function).
type allocWalker struct {
	fset *token.FileSet
	info *types.Info
	tpkg *types.Package

	// alloc receives every potential allocation site with a reason.
	alloc func(node ast.Node, why string)
	// localCall receives every resolved module-local callee.
	localCall func(call *ast.CallExpr, fn *types.Func, key string)
	// source receives every resolved callee (the clock/rand hook);
	// may be nil.
	source func(call *ast.CallExpr, fn *types.Func)
	// spawn receives go statements; may be nil.
	spawn func(g *ast.GoStmt)
}

func (w *allocWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.GoStmt:
			if w.spawn != nil {
				w.spawn(v)
			}
			w.alloc(v, "go statement allocates a goroutine")
		case *ast.FuncLit:
			if capturesOuter(w.info, w.tpkg, v) {
				w.alloc(v, "capturing function literal allocates a closure")
			}
		case *ast.CompositeLit:
			if t := w.info.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					w.alloc(v, "composite literal allocates a "+describeComposite(t))
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD {
				if t := w.info.TypeOf(v); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := w.info.Types[v]; !ok || tv.Value == nil {
							w.alloc(v, "string concatenation builds a new string")
						}
					}
				}
			}
		case *ast.CallExpr:
			if isPanicCall(w.info, v) {
				// panic arguments are terminal cold paths: the
				// allocation of the panic value never appears in a
				// completed hot-path operation, so neither the boxing
				// nor any fmt call inside taints the summary.
				return false
			}
			w.walkCall(v)
		}
		return true
	})
}

// walkCall classifies one call expression: builtin allocators,
// conversions, module-local edges, known-clean stdlib, and the
// conservative unknown-callee default.
func (w *allocWalker) walkCall(call *ast.CallExpr) {
	// Builtins and conversions first: calleeObj only resolves declared
	// functions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.alloc(call, "append may grow its backing array")
			case "make":
				w.alloc(call, "make allocates")
			case "new":
				w.alloc(call, "new allocates")
			}
			return
		}
	}
	if tv, ok := w.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies; numeric
		// conversions don't.
		if t := w.info.TypeOf(call.Fun); t != nil && len(call.Args) == 1 {
			if isStringByteConversion(t, w.info.TypeOf(call.Args[0])) {
				w.alloc(call, "string/[]byte conversion copies")
			}
		}
		return
	}

	fn := calleeObj(w.info, call)
	if fn == nil {
		// Indirect call through a function value: unknowable statically.
		w.alloc(call, "indirect call (unknown allocation behaviour)")
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recvT := sig.Recv().Type(); recvT != nil && types.IsInterface(recvT) {
			w.alloc(call, "interface method call (dynamic dispatch, unknown allocation behaviour)")
			return
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		if arg, param := boxedArg(w.info, call, sig); arg != nil {
			w.alloc(arg, "argument boxed into interface parameter "+param)
		}
	}

	if w.source != nil {
		w.source(call, fn)
	}

	if fn.Pkg() != nil && InModule(fn.Pkg().Path()) {
		if key := FuncKey(fn); key != "" && w.localCall != nil {
			w.localCall(call, fn, key)
		}
		return
	}

	// Out-of-module callee: consult the trust tables.
	key := stdlibCallKey(fn)
	if nonAllocCalls[key] || (fn.Pkg() != nil && nonAllocPkgs[fn.Pkg().Path()]) {
		return
	}
	w.alloc(call, "calls "+key+" (assumed to allocate)")
}

// shortAt renders a node's position as "file.go:line" for witnesses.
func shortAt(fset *token.FileSet, node ast.Node) string {
	p := fset.Position(node.Pos())
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

func describeComposite(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "value"
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// capturesOuter reports whether a function literal references a
// variable declared outside itself but inside some enclosing function —
// the capture that forces the closure (and the captured variables) onto
// the heap. References to package-level objects are not captures.
func capturesOuter(info *types.Info, tpkg *types.Package, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != tpkg {
			return true
		}
		if v.Parent() == tpkg.Scope() {
			return true // package-level variable, not a capture
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// boxedArg returns the first call argument that is boxed into an
// interface parameter (a heap allocation for non-pointer-shaped
// values), along with the parameter's description; (nil, "") when no
// argument boxes. A `slice...` spread never boxes, nil never boxes, and
// pointer-shaped values (pointers, channels, maps, funcs) ride in the
// interface word directly.
func boxedArg(info *types.Info, call *ast.CallExpr, sig *types.Signature) (ast.Expr, string) {
	params := sig.Params()
	if params.Len() == 0 {
		return nil, ""
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return nil, "" // spread of an existing slice
			}
			if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		name := "any"
		if named := namedOf(pt); named != nil {
			name = named.Obj().Name()
		}
		return arg, name
	}
	return nil, ""
}

// pointerShaped reports whether values of t fit an interface's data
// word without allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringByteConversion reports whether a conversion between to and
// from moves bytes between string and []byte/[]rune (an allocating
// copy in either direction).
func isStringByteConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
