package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errcheckMethods are method names whose error result is routinely
// dropped by accident: half-written artefacts, lost flushes and silent
// encoder failures all surface as corrupted results files rather than
// failed commands. The list is deliberately narrow (I/O completion
// points, not every error-returning call) to stay high-signal.
var errcheckMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Encode": true, "WriteAll": true,
}

// errcheckFuncs are package-level functions with the same failure mode.
var errcheckFuncs = map[string]bool{
	"os.WriteFile": true, "os.MkdirAll": true, "os.Rename": true,
	"os.Remove": true, "os.RemoveAll": true,
	"io.Copy": true, "io.WriteString": true,
}

// Errcheck is the suite's errcheck-lite: in the command binaries and the
// report renderer (the code that writes artefact bytes to disk), an
// io/os/encoder completion call used as a bare statement must not drop
// its error. Deferred calls are exempt — `defer f.Close()` on a read-only
// file is idiomatic; write paths should close explicitly and check.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc: "unchecked errors on io/os/encoder completion calls in cmd/* and " +
		"internal/report (statement position; defers exempt)",
	Run: runErrcheck,
}

func errcheckScope(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, ModulePath+"/cmd/") ||
		pkgPath == ModulePath+"/internal/report"
}

func runErrcheck(pass *Pass) error {
	if !errcheckScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, returnsErr := errcheckTarget(pass, call)
			if name == "" || !returnsErr {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s error is dropped; a failed %s loses bytes silently — "+
					"check it (or assign to _ with a reason)", name, name)
			return true
		})
	}
	return nil
}

// errcheckTarget reports the watched callee's display name and whether
// the call returns an error ("" when the call is not watched).
func errcheckTarget(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeObj(pass.Info, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return "", false
	}
	if sig.Recv() != nil {
		if errcheckMethods[fn.Name()] {
			return fn.Name(), true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	qual := fn.Pkg().Name() + "." + fn.Name()
	if errcheckFuncs[qual] {
		return qual, true
	}
	return "", false
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
