package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// TB is the subset of testing.TB the fixture runner needs; declared here
// so non-test code never imports the testing package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRe extracts expectations of the form
//
//	// want "regexp" "another"
//
// from fixture sources, mirroring x/tools' analysistest convention.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// RunFixture type-checks the fixture package at importPath under srcRoot
// (a GOPATH-shaped tree: srcRoot/<importPath>/*.go), runs the analyzer
// over it and its module-local fixture dependencies (so interprocedural
// facts cross the package boundary exactly as in the real module), and
// compares the diagnostics against the `// want "re"` comments in every
// loaded fixture file: each diagnostic must be expected on its line, and
// each expectation must be matched exactly once.
func RunFixture(t TB, a *Analyzer, srcRoot, importPath string) {
	t.Helper()
	l := NewFixtureLoader(srcRoot)
	if _, err := l.Load(importPath); err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	pkgs := l.Loaded()
	diags, err := Run([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	var files []*ast.File
	var fset *token.FileSet
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
		fset = pkg.Fset
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				res, perr := parseWants(m[1])
				if perr != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, perr)
				}
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}

	matched := map[key][]bool{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		res := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		ok := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posString(d.Pos), d.Message)
		}
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range wants[k] {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// parseWants splits `"re1" "re2"` into compiled regexps.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want expectation must be a quoted regexp, got %q", s)
		}
		lit, rest, err := cutQuoted(s)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(rest)
	}
	return out, nil
}

// cutQuoted splits off one leading Go string literal.
func cutQuoted(s string) (lit, rest string, err error) {
	if s[0] == '`' {
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in want: %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad want literal %q: %v", s[:i+1], err)
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in want: %q", s)
}
