package analysis

import "testing"

func TestDetrandSeedTraceability(t *testing.T) {
	RunFixture(t, Detrand, "testdata/src/detrand", "repro/internal/fault")
}

func TestDetrandEventEngine(t *testing.T) {
	RunFixture(t, Detrand, "testdata/src/detrand", "repro/internal/pdes")
}

func TestDetrandBatchFacility(t *testing.T) {
	RunFixture(t, Detrand, "testdata/src/detrand", "repro/internal/facility")
}
