package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want %d, nil", len(all), err, len(All()))
	}
	if len(all) != 9 {
		t.Fatalf("suite has %d analyzers; the v2 suite ships 9 — update this pin deliberately", len(all))
	}
	sub, err := ByName("detwall, errcheck")
	if err != nil || len(sub) != 2 || sub[0].Name != "detwall" || sub[1].Name != "errcheck" {
		t.Fatalf("ByName subset = %v, err %v", sub, err)
	}
	if _, err := ByName("nosuch"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("unknown analyzer error = %v; want list of known names", err)
	}
}

func TestParseAllowlist(t *testing.T) {
	m, err := parseAllowlist(`
# comment
repro/internal/sched state.execute  # volatile wall series
repro/internal/foo Bar
`)
	if err != nil {
		t.Fatal(err)
	}
	if m["repro/internal/sched.state.execute"] != "volatile wall series" {
		t.Fatalf("allowlist entry = %q", m["repro/internal/sched.state.execute"])
	}
	if _, ok := m["repro/internal/foo.Bar"]; !ok {
		t.Fatal("reasonless entry should still parse (reason lives in the comment column)")
	}
	if _, err := parseAllowlist("just-one-field\n"); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestParseWants(t *testing.T) {
	res, err := parseWants(`"first" ` + "`second.*`")
	if err != nil || len(res) != 2 {
		t.Fatalf("parseWants = %v, %v", res, err)
	}
	if !res[1].MatchString("second thing") {
		t.Fatal("raw-string want did not compile to a usable regexp")
	}
	if _, err := parseWants(`unquoted`); err == nil {
		t.Fatal("unquoted want must error")
	}
}

func TestDiagnosticOrdering(t *testing.T) {
	// Run sorts by file, then line, then column, then analyzer — the
	// lint gate's output must be byte-stable or it would flunk its own
	// determinism rules.
	d := []Diagnostic{
		{Analyzer: "b", Pos: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "z", Pos: token.Position{Filename: "a.go", Line: 1}},
	}
	// Feed through a fake run: easiest is to sort via Run's comparator by
	// reusing the exported surface — load a trivial fixture and verify
	// stability there instead. Here we just assert String() formatting.
	got := d[2].String()
	if !strings.Contains(got, "a.go:1") || !strings.Contains(got, "z:") {
		t.Fatalf("Diagnostic.String() = %q", got)
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	// Covered end-to-end by the detwall fixture (SuppressedOK /
	// SuppressedBad); this guards the marker constant against drift,
	// since the driver greps for the same prefix.
	if AllowPrefix != "//lint:allow " {
		t.Fatalf("AllowPrefix = %q; the suppression grammar is part of the repo contract", AllowPrefix)
	}
}
