package analysis

import (
	_ "embed"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HotMarker is the doc-comment marker that opts a function into
// allochot's no-allocation contract in addition to the embedded
// hot-list:
//
//	//reprolint:hot
//	func (q *Queue) Push(e Event) { ... }
const HotMarker = "//reprolint:hot"

// allochotHotDefault ships the repository's hot-list: the per-message,
// per-event and per-job functions whose allocation behaviour the
// perfbench budgets (mpi/world-churn-64, facility/run-10k, run-100k)
// gate at runtime. Format: one "pkgpath funcname  # why it is hot" per
// line, the same grammar as detwall_allow.txt.
//
//go:embed allochot_hot.txt
var allochotHotDefault string

// allochotHot maps canonical function keys to the reason the function
// is on the hot path.
var allochotHot = mustParseAllowlist(allochotHotDefault)

// HotlistKeys returns the embedded hot-list's canonical function keys
// in sorted order. The self-check test resolves each against the
// computed fact table so a renamed hot function cannot silently drop
// out of allochot's coverage.
func HotlistKeys() []string {
	keys := make([]string, 0, len(allochotHot))
	for k := range allochotHot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Allochot proves the hot paths allocation-free at compile time: inside
// every function carrying the //reprolint:hot marker or listed in the
// embedded hot-list, it reports each potential allocation site (append
// growth, make/new, closure captures, interface boxing, string concat,
// slice/map literals, calls assumed to allocate) and each call into a
// module function whose interprocedural fact says it transitively
// allocates. Audited amortised allocations (pooled slab growth, cap-
// guarded doubling) are silenced with a reasoned
// //lint:allow reprolint/allochot comment, which also clears the
// callee's Allocates fact so the allowance composes up the call graph.
var Allochot = &Analyzer{
	Name: "allochot",
	Doc: "forbid allocation in //reprolint:hot functions and the embedded " +
		"hot-list (mpi send/recv/inbox, pdes queue, facility heap " +
		"scheduler); escape hatch: //lint:allow reprolint/allochot <reason>",
	NeedsFacts: true,
	Run:        runAllochot,
}

// hasHotMarker reports whether a declaration's doc comment opts it in.
func hasHotMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotMarker) {
			return true
		}
	}
	return false
}

// passDeclKey is DeclKey over a Pass (the analyzer-side view of a
// package).
func passDeclKey(pass *Pass, fd *ast.FuncDecl) string {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	return FuncKey(obj)
}

func runAllochot(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := passDeclKey(pass, fd)
			if _, listed := allochotHot[key]; !listed && !hasHotMarker(fd) {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if rt := recvTypeName(fd.Recv.List[0].Type); rt != "" {
					name = rt + "." + name
				}
			}
			w := &allocWalker{
				fset: pass.Fset,
				info: pass.Info,
				tpkg: pass.Pkg,
				alloc: func(node ast.Node, why string) {
					pass.Reportf(node.Pos(), "allocation in hot function %s: %s", name, why)
				},
				localCall: func(call *ast.CallExpr, fn *types.Func, ckey string) {
					ff := pass.Facts.Of(ckey)
					if !ff.Allocates {
						return
					}
					chain := pass.Facts.WhyChain(ckey, func(f FuncFacts) string { return f.AllocWhy })
					pass.Reportf(call.Pos(),
						"hot function %s calls allocating function (%s)", name, chain)
				},
			}
			w.walk(fd.Body)
		}
	}
	return nil
}
