package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

// TestSelfCheck asserts the reprolint suite is clean on the repository
// itself: the gate in make lint must hold for every commit, and the
// analyzers' own package is part of the sweep (the tooling obeys the
// rules it enforces).
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := repoRoot(t)
	loader := NewModuleLoader(root, ModulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d); loader is missing the tree", len(pkgs))
	}
	var found []string
	for _, p := range pkgs {
		found = append(found, p.Path)
	}
	for _, must := range []string{
		ModulePath + "/internal/mpi",
		ModulePath + "/internal/experiments",
		ModulePath + "/cmd/repro",
	} {
		if !contains(found, must) {
			t.Fatalf("loader missed %s (got %v)", must, found)
		}
	}
	diags, err := Run(All(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not reprolint-clean: %s", d)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestSelfCheckNewAnalyzers pins the v2 suite specifically: the module
// must stay clean under the facts-engine analyzers (allochot, detflow,
// lockhyg) on their own, so a regression in one of them cannot hide
// behind the older analyzers' output ordering.
func TestSelfCheckNewAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := repoRoot(t)
	loader := NewModuleLoader(root, ModulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run([]*Analyzer{Allochot, Detflow, Lockhyg}, pkgs)
	if err != nil {
		t.Fatalf("running v2 analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not clean under %s: %s", d.Analyzer, d)
	}
}

// TestAllowlistReasons asserts every embedded allowlist entry carries a
// non-empty reason: the escape hatches are reviewable only if each one
// says why it exists. (Inline //lint:allow comments are covered by the
// sweep itself — a missing reason is a "suppression" diagnostic.)
func TestAllowlistReasons(t *testing.T) {
	lists := map[string]map[string]string{
		"detwall_allow.txt": detwallAllow,
		"allochot_hot.txt":  allochotHot,
		"detflow_sinks.txt": detflowSinks,
	}
	for file, entries := range lists {
		if len(entries) == 0 {
			t.Errorf("%s: embedded allowlist is empty", file)
		}
		for key, reason := range entries {
			if strings.TrimSpace(reason) == "" {
				t.Errorf("%s: entry %q has no reason", file, key)
			}
		}
	}
}

// TestSelfCheckSeededViolation proves the gate actually fires: a copy of
// a netmodel-like source with a time.Now call must produce a detwall
// finding when analyzed under its real package path.
func TestSelfCheckSeededViolation(t *testing.T) {
	l := NewFixtureLoader("testdata/src/detwall")
	pkg, err := l.Load("repro/internal/netmodel")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(All(), []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, d := range diags {
		if d.Analyzer == "detwall" && strings.Contains(d.Message, "time.Now") {
			n++
		}
	}
	if n == 0 {
		t.Fatal("seeded time.Now violation was not detected")
	}
}
