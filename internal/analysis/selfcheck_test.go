package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

// TestSelfCheck asserts the reprolint suite is clean on the repository
// itself: the gate in make lint must hold for every commit, and the
// analyzers' own package is part of the sweep (the tooling obeys the
// rules it enforces).
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := repoRoot(t)
	loader := NewModuleLoader(root, ModulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d); loader is missing the tree", len(pkgs))
	}
	var found []string
	for _, p := range pkgs {
		found = append(found, p.Path)
	}
	for _, must := range []string{
		ModulePath + "/internal/mpi",
		ModulePath + "/internal/experiments",
		ModulePath + "/cmd/repro",
	} {
		if !contains(found, must) {
			t.Fatalf("loader missed %s (got %v)", must, found)
		}
	}
	diags, err := Run(All(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not reprolint-clean: %s", d)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestSelfCheckSeededViolation proves the gate actually fires: a copy of
// a netmodel-like source with a time.Now call must produce a detwall
// finding when analyzed under its real package path.
func TestSelfCheckSeededViolation(t *testing.T) {
	l := NewFixtureLoader("testdata/src/detwall")
	pkg, err := l.Load("repro/internal/netmodel")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(All(), []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, d := range diags {
		if d.Analyzer == "detwall" && strings.Contains(d.Message, "time.Now") {
			n++
		}
	}
	if n == 0 {
		t.Fatal("seeded time.Now violation was not detected")
	}
}
