package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockhyg flags static concurrency-hygiene candidates that complement
// `go test -race` (which only observes executed interleavings):
//
//   - a struct field written both inside methods that hold the struct's
//     mutex and inside methods that never lock it (the classic
//     forgotten-lock write);
//   - an atomic.Value stored with more than one concrete type (Store
//     panics at runtime on the second type);
//   - a sync.Pool value used after it was handed back via Put (the
//     pool may have re-leased it to another goroutine).
//
// All three are heuristics over one package's syntax: single-threaded
// construction phases and externally-synchronised methods are excused
// with a reasoned //lint:allow reprolint/lockhyg comment.
var Lockhyg = &Analyzer{
	Name: "lockhyg",
	Doc: "flag mixed locked/unlocked field writes, atomic.Value stores " +
		"of differing concrete types, and sync.Pool values used after Put",
	Run: runLockhyg,
}

func runLockhyg(pass *Pass) error {
	checkMixedGuard(pass)
	checkAtomicValueTypes(pass)
	checkPoolUseAfterPut(pass)
	return nil
}

// --- mixed locked/unlocked field writes -------------------------------

// isMutexType reports whether t (through pointers) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// hasMutex reports whether the named struct type guards itself: a field
// (named or embedded) of type sync.Mutex/RWMutex.
func hasMutex(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// fieldAccess is one receiver-field write observed in a method.
type fieldAccess struct {
	field  string
	pos    token.Pos
	method string
}

// checkMixedGuard looks at every method set of a mutex-carrying struct
// type: methods that call Lock/RLock on the receiver's mutex are
// "locked", the rest are not. A field written in at least one locked
// method and in at least one unlocked method is reported at the
// unlocked write.
func checkMixedGuard(pass *Pass) {
	type typeState struct {
		lockedWrites   map[string]bool // fields written under the lock
		lockedReads    map[string]bool // fields read under the lock
		unlockedWrites []fieldAccess
	}
	states := map[*types.Named]*typeState{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvIdents := fd.Recv.List[0].Names
			if len(recvIdents) == 0 || recvIdents[0].Name == "_" {
				continue
			}
			recvObj, _ := pass.Info.Defs[recvIdents[0]].(*types.Var)
			if recvObj == nil {
				continue
			}
			named := namedOf(recvObj.Type())
			if named == nil {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok || !hasMutex(st) {
				continue
			}
			state := states[named]
			if state == nil {
				state = &typeState{lockedWrites: map[string]bool{}, lockedReads: map[string]bool{}}
				states[named] = state
			}

			locked := methodLocks(pass, fd, recvObj) || lockedByContract(fd)
			reads, writes := receiverFieldAccesses(pass, fd, recvObj)
			mname := fd.Name.Name
			for _, w := range writes {
				if locked {
					state.lockedWrites[w.field] = true
				} else {
					w.method = mname
					state.unlockedWrites = append(state.unlockedWrites, w)
				}
			}
			for _, r := range reads {
				if locked {
					state.lockedReads[r.field] = true
				}
			}
		}
	}

	named := make([]*types.Named, 0, len(states))
	for n := range states {
		named = append(named, n)
	}
	sort.Slice(named, func(i, j int) bool { return named[i].Obj().Name() < named[j].Obj().Name() })
	for _, n := range named {
		state := states[n]
		for _, w := range state.unlockedWrites {
			if state.lockedWrites[w.field] || state.lockedReads[w.field] {
				pass.Reportf(w.pos,
					"%s.%s is guarded by %s's mutex elsewhere but written without it in %s; "+
						"lock around the write or excuse the single-threaded phase with "+
						"//lint:allow reprolint/lockhyg <reason>",
					n.Obj().Name(), w.field, n.Obj().Name(), w.method)
			}
		}
	}
}

// lockedByContract recognises the repository's caller-holds-the-lock
// conventions: a method named with the "Locked" suffix, or whose doc
// comment states "Caller holds ..." — both promise the receiver's mutex
// is held on entry, so their unguarded field writes are the contract,
// not a bug.
func lockedByContract(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	if fd.Doc != nil {
		// Normalise the comment's line wrapping before matching so
		// "Caller\nholds b.mu." still counts.
		text := strings.Join(strings.Fields(fd.Doc.Text()), " ")
		if strings.Contains(text, "aller holds") {
			return true
		}
	}
	return false
}

// methodLocks reports whether the method body calls Lock or RLock on a
// mutex rooted at the receiver (a mutex field or an embedded mutex).
func methodLocks(pass *Pass, fd *ast.FuncDecl, recv *types.Var) bool {
	locks := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if locks {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeObj(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		switch fn.Name() {
		case "Lock", "RLock":
		default:
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && rootedAt(pass, sel.X, recv) {
			locks = true
			return false
		}
		return true
	})
	return locks
}

// rootedAt reports whether expr is the receiver variable or a selector
// chain starting from it (c, c.mu, c.inner.mu, ...).
func rootedAt(pass *Pass, expr ast.Expr, recv *types.Var) bool {
	for {
		switch v := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pass.Info.Uses[v] == recv
		case *ast.SelectorExpr:
			expr = v.X
		case *ast.StarExpr:
			expr = v.X
		case *ast.IndexExpr:
			expr = v.X
		default:
			return false
		}
	}
}

// receiverFieldAccesses collects the receiver's struct fields the
// method reads and writes (selector chains rooted at the receiver;
// mutex fields themselves excluded).
func receiverFieldAccesses(pass *Pass, fd *ast.FuncDecl, recv *types.Var) (reads, writes []fieldAccess) {
	record := func(expr ast.Expr, isWrite bool) {
		sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
		if !ok || !rootedAt(pass, sel.X, recv) {
			return
		}
		// Only direct receiver fields: recv.f — deeper chains (recv.f.g)
		// still count as an access to f's referent, attributed to f.
		fv, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !fv.IsField() || isMutexType(fv.Type()) {
			return
		}
		fa := fieldAccess{field: sel.Sel.Name, pos: sel.Sel.Pos()}
		if isWrite {
			writes = append(writes, fa)
		} else {
			reads = append(reads, fa)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				record(lhs, true)
				// Index writes (recv.m[k] = ...) mutate the field too.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					record(ix.X, true)
				}
			}
			for _, rhs := range v.Rhs {
				recordReadsIn(pass, rhs, record)
			}
			return true
		case *ast.IncDecStmt:
			record(v.X, true)
			return true
		case *ast.SelectorExpr:
			record(v, false)
			return false
		}
		return true
	})
	return reads, writes
}

// recordReadsIn walks an expression recording receiver-field reads.
func recordReadsIn(pass *Pass, expr ast.Expr, record func(ast.Expr, bool)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			record(sel, false)
			return false
		}
		return true
	})
}

// --- atomic.Value concrete-type consistency ---------------------------

// checkAtomicValueTypes groups (atomic.Value).Store calls by the stored
// variable and reports when more than one concrete type flows in: Store
// panics at runtime when the second type arrives.
func checkAtomicValueTypes(pass *Pass) {
	type storeSite struct {
		pos  token.Pos
		typ  types.Type
		name string
	}
	stores := map[types.Object][]storeSite{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			pkgPath, typeName, method, ok := methodInfo(pass.Info, call)
			if !ok || pkgPath != "sync/atomic" || typeName != "Value" || method != "Store" {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := atomicValueObj(pass, sel.X)
			if obj == nil {
				return true
			}
			t := pass.Info.TypeOf(call.Args[0])
			if t == nil || types.IsInterface(t.Underlying()) {
				return true // dynamic type unknown statically
			}
			stores[obj] = append(stores[obj], storeSite{
				pos: call.Pos(), typ: t, name: obj.Name(),
			})
			return true
		})
	}

	objs := make([]types.Object, 0, len(stores))
	for o := range stores {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, o := range objs {
		sites := stores[o]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		first := sites[0].typ
		for _, s := range sites[1:] {
			if !types.Identical(s.typ, first) {
				pass.Reportf(s.pos,
					"atomic.Value %s stored with concrete type %s after %s; "+
						"Store panics on inconsistent types — wrap values in a single named type",
					s.name, s.typ.String(), first.String())
			}
		}
	}
}

// atomicValueObj resolves the variable or field that owns the
// atomic.Value receiver expression (v.Store → v; s.val.Store → val).
func atomicValueObj(pass *Pass, expr ast.Expr) types.Object {
	switch v := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.Info.Uses[v]
	case *ast.SelectorExpr:
		return pass.Info.Uses[v.Sel]
	case *ast.StarExpr:
		return atomicValueObj(pass, v.X)
	}
	return nil
}

// --- sync.Pool use-after-Put ------------------------------------------

// checkPoolUseAfterPut reports identifiers used after being handed back
// to a sync.Pool in the same function body: the pool may already have
// re-leased the value to another goroutine. Re-assigning the variable
// (x = pool.Get()) clears the taint.
func checkPoolUseAfterPut(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolInBody(pass, fd.Body)
		}
	}
}

func checkPoolInBody(pass *Pass, body *ast.BlockStmt) {
	// Collect Put(x) sites keyed by x's object.
	type putSite struct {
		obj  types.Object
		end  token.Pos
		name string
	}
	var puts []putSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		pkgPath, typeName, method, ok := methodInfo(pass.Info, call)
		if !ok || pkgPath != "sync" || typeName != "Pool" || method != "Put" {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		puts = append(puts, putSite{obj: obj, end: call.End(), name: id.Name})
		return true
	})

	for _, put := range puts {
		// Scan uses after the Put in source order; stop at the first
		// reassignment (the variable holds a fresh value again).
		type occ struct {
			pos      token.Pos
			assigned bool
		}
		var occs []occ
		ast.Inspect(body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						o := pass.Info.Uses[id]
						if o == nil {
							o = pass.Info.Defs[id]
						}
						if o == put.obj {
							occs = append(occs, occ{pos: id.Pos(), assigned: true})
						}
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok {
				if pass.Info.Uses[id] == put.obj && id.Pos() > put.end {
					occs = append(occs, occ{pos: id.Pos()})
				}
			}
			return true
		})
		sort.Slice(occs, func(i, j int) bool {
			if occs[i].pos != occs[j].pos {
				return occs[i].pos < occs[j].pos
			}
			// A reassignment LHS ident surfaces both as an assignment and
			// a plain use at the same position: the assignment wins.
			return occs[i].assigned && !occs[j].assigned
		})
		for _, o := range occs {
			if o.pos <= put.end {
				continue
			}
			if o.assigned {
				break // re-acquired; later uses are fine
			}
			pass.Reportf(o.pos,
				"%s used after sync.Pool.Put returned it to the pool; "+
					"the pool may have re-leased it — nil the variable or reorder the Put",
				put.name)
			break // one report per Put is enough
		}
	}
}
