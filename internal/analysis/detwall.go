package analysis

import (
	"bufio"
	_ "embed"
	"fmt"
	"go/ast"
	"strings"
)

// detwallForbidden are the time-package functions that read or schedule
// against the host's wall clock. time.Duration values and arithmetic are
// fine — only *sources* of wall time break virtual-time determinism.
var detwallForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Sleep":     true,
}

// detwallAllowDefault ships the repository's standing exemptions: the
// scheduler's wall-latency series (registered volatile, excluded from
// stable snapshots) are the only model-adjacent code allowed to read the
// host clock. Format: one "pkgpath funcname  # reason" per line.
//
//go:embed detwall_allow.txt
var detwallAllowDefault string

// detwallAllow maps "pkgpath.funcname" to the allowing reason. Tests and
// cmd/reprolint -allow may extend it via AddDetwallAllowlist.
var detwallAllow = mustParseAllowlist(detwallAllowDefault)

// AddDetwallAllowlist merges extra allowlist entries (same format as the
// embedded file) into the detwall exemption table.
func AddDetwallAllowlist(content string) error {
	m, err := parseAllowlist(content)
	if err != nil {
		return err
	}
	for k, v := range m {
		detwallAllow[k] = v
	}
	return nil
}

func mustParseAllowlist(content string) map[string]string {
	m, err := parseAllowlist(content)
	if err != nil {
		panic("analysis: embedded detwall_allow.txt: " + err.Error())
	}
	return m
}

func parseAllowlist(content string) (map[string]string, error) {
	m := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(content))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, reason, _ := strings.Cut(line, "#")
		fields := strings.Fields(entry)
		if len(fields) != 2 {
			return nil, fmt.Errorf("allowlist line %q: want \"pkgpath funcname  # reason\"", line)
		}
		m[fields[0]+"."+fields[1]] = strings.TrimSpace(reason)
	}
	return m, sc.Err()
}

// Detwall forbids wall-clock sources in the virtual-time model packages.
// Every duration a model reports must derive from the simulated clock
// (mpi.Comm.Clock, sim.Meter) so artefacts regenerate byte-identically
// regardless of host speed or scheduling; wall-time readings belong in
// cmd/* manifests (recorded as volatile) or in allowlisted scheduler
// latency series.
var Detwall = &Analyzer{
	Name: "detwall",
	Doc: "forbid time.Now/Since/After/... in virtual-time packages " +
		"(internal/*); exemptions come from detwall_allow.txt or " +
		"//lint:allow reprolint/detwall comments",
	Run: runDetwall,
}

func runDetwall(pass *Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), ModulePath+"/internal/") {
		return nil
	}
	if pass.Pkg.Path() == ModulePath+"/internal/analysis" {
		return nil // the lint plane itself models nothing
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeObj(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !detwallForbidden[fn.Name()] {
				return true
			}
			key := pass.Pkg.Path() + "." + funcNameAt(f, call)
			if _, ok := detwallAllow[key]; ok {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in virtual-time package %s; "+
					"derive durations from the simulated clock, or allowlist %s",
				fn.Name(), pass.Pkg.Path(), key)
			return true
		})
	}
	return nil
}
