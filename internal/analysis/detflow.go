package analysis

import (
	_ "embed"
	"go/ast"
	"sort"
	"strings"
)

// SinkMarker is the doc-comment marker that opts a function into
// detflow's sink set in addition to the embedded list:
//
//	//reprolint:artefact-sink
//	func writeFigure(...) error { ... }
const SinkMarker = "//reprolint:artefact-sink"

// detflowSinksDefault ships the repository's artefact/manifest writers:
// the functions whose output lands in committed artefact bytes and must
// therefore be reachable from no wall-clock or global-rand source.
// Format: one "pkgpath funcname  # what it writes" per line, the
// detwall_allow.txt grammar.
//
//go:embed detflow_sinks.txt
var detflowSinksDefault string

// detflowSinks maps canonical function keys to a description of the
// artefact they produce.
var detflowSinks = mustParseAllowlist(detflowSinksDefault)

// SinkKeys returns the embedded sink list's canonical function keys in
// sorted order (selfcheck asserts each resolves to a real function).
func SinkKeys() []string {
	keys := make([]string, 0, len(detflowSinks))
	for k := range detflowSinks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Detflow is the interprocedural upgrade of detwall/detrand: instead of
// flagging wall-clock and global-rand *sources* package by package, it
// checks that no source *reaches* an artefact or manifest writer
// through any call chain. The facts engine supplies each sink's
// transitive ReadsClock/GlobalRand summary; a violation's diagnostic
// carries the full witness chain (sink -> ... -> time.Now at
// file:line), so the fix site is visible without re-tracing the graph.
// Sources already excused — a //lint:allow reprolint/detwall or
// reprolint/detflow on the source line, or a detwall_allow.txt entry —
// never taint the chain.
var Detflow = &Analyzer{
	Name: "detflow",
	Doc: "forbid wall-clock and global-rand sources from reaching " +
		"artefact/manifest writers (embedded sink list or " +
		"//reprolint:artefact-sink marker) through any call chain",
	NeedsFacts: true,
	Run:        runDetflow,
}

// hasSinkMarker reports whether a declaration's doc comment opts it in.
func hasSinkMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), SinkMarker) {
			return true
		}
	}
	return false
}

func runDetflow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := passDeclKey(pass, fd)
			if _, listed := detflowSinks[key]; !listed && !hasSinkMarker(fd) {
				continue
			}
			ff := pass.Facts.Of(key)
			if ff.ReadsClock {
				chain := pass.Facts.WhyChain(key, func(f FuncFacts) string { return f.ClockWhy })
				pass.Reportf(fd.Name.Pos(),
					"artefact writer %s transitively reads the wall clock: %s", key, chain)
			}
			if ff.GlobalRand {
				chain := pass.Facts.WhyChain(key, func(f FuncFacts) string { return f.RandWhy })
				pass.Reportf(fd.Name.Pos(),
					"artefact writer %s transitively draws from the global rand source: %s", key, chain)
			}
		}
	}
	return nil
}
