package analysis

import "testing"

func TestErrcheckCompletionCalls(t *testing.T) {
	RunFixture(t, Errcheck, "testdata/src/errcheck", "repro/cmd/tool")
}
