package analysis

import "testing"

func TestDetmaprangeOrderObservability(t *testing.T) {
	RunFixture(t, Detmaprange, "testdata/src/detmaprange", "repro/internal/report")
}

func TestDetmaprangeBatchFacility(t *testing.T) {
	RunFixture(t, Detmaprange, "testdata/src/detmaprange", "repro/internal/facility")
}
