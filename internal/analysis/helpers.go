package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ModulePath is the import-path prefix of this repository's packages.
// Fixture stubs under testdata reuse it so analyzers match the same
// symbols in tests and in the real tree.
const ModulePath = "repro"

// calleeObj resolves the function or method object a call invokes, nil
// for indirect calls through function values or type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether call invokes a package-level function named
// name from the package with import path pkgPath.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeObj(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodInfo returns the receiver's named-type package path, type name
// and method name for a method call, or ok=false otherwise.
func methodInfo(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	f := calleeObj(info, call)
	if f == nil {
		return "", "", "", false
	}
	sig, okSig := f.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return "", "", "", false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), f.Name(), true
}

// namedOf unwraps pointers and aliases down to a named type, nil when the
// type has no name (builtin, struct literal, ...).
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (through pointers) is pkgPath.typeName.
func isNamedType(t types.Type, pkgPath, typeName string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}

// mentions walks expr and reports whether pred holds for any node.
func mentions(expr ast.Node, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if pred(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcNameAt returns the name of the innermost FuncDecl whose body spans
// the node n in file f: "Name" for functions, "Recv.Name" for methods.
func funcNameAt(f *ast.File, n ast.Node) string {
	var name string
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= n.Pos() && n.Pos() <= fd.Body.End() {
			name = fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				name = recvTypeName(fd.Recv.List[0].Type) + "." + name
			}
		}
	}
	return name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// hasInternalPrefix reports whether the package path is one of this
// module's internal packages (fixture stubs included).
func hasInternalPrefix(pkgPath, sub string) bool {
	prefix := ModulePath + "/internal/" + sub
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}
