package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detmaprange flags `range` over a map when the loop body can make the
// iteration order observable: writing to an output sink (Write*/Fprint*/
// Print*/Error* calls, fmt.Sprintf/Errorf), returning a value built from
// the loop variables, or accumulating floats (+= across map order is not
// associative-safe and is the classic golden-file breaker). Loops that
// only collect keys/values into a slice or another map are fine — the
// expected idiom is collect, sort, then emit.
var Detmaprange = &Analyzer{
	Name: "detmaprange",
	Doc: "flag map iteration whose order can reach artefact/report output " +
		"or a float accumulation; collect keys and sort before emitting",
	Run: runDetmaprange,
}

// sinkMethodPrefixes are callee-name prefixes that emit bytes somewhere a
// reader (or a golden file) can see them.
var sinkMethodPrefixes = []string{"Write", "Fprint", "Print", "Sprint", "Errorf", "AddRow"}

func runDetmaprange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderObservable(pass, rs.Body); reason != "" {
				pass.Reportf(rs.For,
					"map iteration order reaches %s; collect the keys, sort, "+
						"then emit (map order is randomised per process)", reason)
			}
			return true
		})
	}
	return nil
}

// orderObservable scans a map-range body for statements whose effect
// depends on iteration order. It returns a short description of the
// first offender ("" when the loop is order-safe).
func orderObservable(pass *Pass, body *ast.BlockStmt) string {
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeName(pass, v); ok && isSink(pass, v, name) {
				reason = "an output call (" + name + ")"
				return false
			}
		case *ast.ReturnStmt:
			if len(v.Results) > 0 {
				reason = "a return statement (first error/value depends on order)"
				return false
			}
		case *ast.AssignStmt:
			// x += f / x -= f on floats or strings accumulates in map
			// order (float rounding is order-dependent; string concat is
			// order itself). Targets declared inside the loop body are
			// per-iteration locals — the aggregate-into-map idiom
			// (agg := m[k]; agg.T += v; m[k] = agg) sums per key, not
			// across keys — so only outer accumulators count.
			if len(v.Lhs) == 1 && (v.Tok == token.ADD_ASSIGN || v.Tok == token.SUB_ASSIGN) {
				if t := pass.TypeOf(v.Lhs[0]); t != nil && !declaredWithin(pass, v.Lhs[0], body) {
					if b, ok := t.Underlying().(*types.Basic); ok &&
						b.Info()&(types.IsFloat|types.IsString) != 0 {
						reason = "an order-sensitive accumulation (float rounding / string concat)"
						return false
					}
				}
			}
		}
		return true
	})
	return reason
}

// calleeName renders a call's target as "pkg.Func" or "Method" for sink
// matching; ok=false for indirect calls.
func calleeName(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		if fn := calleeObj(pass.Info, call); fn != nil && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				return fn.Pkg().Name() + "." + fn.Name(), true
			}
		}
		return fun.Sel.Name, true
	}
	return "", false
}

// isSink reports whether a call emits bytes somewhere order-observable.
// fmt's value constructors (Sprint*, Errorf) build strings/errors rather
// than emitting them — the value's journey to output is caught by the
// return/accumulation rules instead.
func isSink(pass *Pass, call *ast.CallExpr, name string) bool {
	base := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		base = name[i+1:]
	}
	if fn := calleeObj(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if strings.HasPrefix(base, "Sprint") || base == "Errorf" {
			return false
		}
	}
	for _, p := range sinkMethodPrefixes {
		if strings.HasPrefix(base, p) {
			return true
		}
	}
	return false
}

// declaredWithin reports whether the base object of an lvalue expression
// is declared inside the block (a per-iteration local).
func declaredWithin(pass *Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch v := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			lhs = v.X
			continue
		case *ast.IndexExpr:
			lhs = v.X
			continue
		case *ast.StarExpr:
			lhs = v.X
			continue
		case *ast.Ident:
			obj := pass.Info.Uses[v]
			if obj == nil {
				obj = pass.Info.Defs[v]
			}
			return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() <= body.End()
		default:
			return false
		}
	}
}
