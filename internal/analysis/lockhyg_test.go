package analysis

import "testing"

// TestLockhygHygiene covers the three checks and their negatives: a
// mixed locked/unlocked field write, the Locked-suffix and
// "Caller holds" contracts, a reasoned allow, atomic.Value type drift
// against a type-stable twin, and sync.Pool use-after-Put against the
// re-acquire and use-before-Put clean paths.
func TestLockhygHygiene(t *testing.T) {
	RunFixture(t, Lockhyg, "testdata/src/lockhyg", "repro/internal/mpi")
}
