package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/mpi")
	Dir   string // absolute directory the files were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go/packages driver:
// module-local import paths resolve to directories under the module root
// (or, for analyzer fixtures, under a testdata src root in the classic
// GOPATH layout), everything else is treated as standard library and
// imported from the toolchain's export data. Both paths work offline,
// which is the point — the lint gate must run in the same hermetic
// environment as the build.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string // directory that owns modulePath ("" in fixture mode)
	modulePath string // module prefix claimed by moduleRoot
	srcRoot    string // fixture mode: root containing <importpath>/ dirs
	stdlib     types.Importer
	cache      map[string]*Package
	loading    map[string]bool // import-cycle guard
}

// NewModuleLoader loads packages of the module rooted at dir (the
// directory containing go.mod) whose module path is modulePath.
func NewModuleLoader(dir, modulePath string) *Loader {
	return newLoader(dir, modulePath, "")
}

// NewFixtureLoader loads analyzer fixtures from srcRoot, where the
// directory layout mirrors import paths (srcRoot/repro/internal/mpi/...).
// Imports not present under srcRoot fall through to the standard library.
func NewFixtureLoader(srcRoot string) *Loader {
	return newLoader("", "", srcRoot)
}

func newLoader(moduleRoot, modulePath, srcRoot string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		srcRoot:    srcRoot,
		stdlib:     importer.ForCompiler(fset, "gc", nil),
		cache:      map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Load returns the type-checked package for an import path, loading its
// module-local dependencies recursively.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not a module-local import path", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if _, local := l.dirFor(imp); local {
				p, err := l.Load(imp)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return l.stdlib.Import(imp)
		}),
	}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// LoadAll loads every buildable package under the module root (skipping
// testdata, hidden directories and directories with only test files),
// returned in deterministic path order. Module mode only.
func (l *Loader) LoadAll() ([]*Package, error) {
	if l.moduleRoot == "" {
		return nil, fmt.Errorf("analysis: LoadAll requires a module loader")
	}
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ok, err := hasBuildableGo(p)
		if err != nil {
			return err
		}
		if ok {
			rel, err := filepath.Rel(l.moduleRoot, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.modulePath)
			} else {
				paths = append(paths, l.modulePath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Loaded returns every module-local package this loader has loaded so
// far (roots and their local dependencies) in sorted path order — the
// set the facts engine needs to see for cross-package summaries in
// fixture mode.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.cache))
	for p := range l.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkgs = append(pkgs, l.cache[p])
	}
	return pkgs
}

// dirFor maps an import path to the directory that provides it, or
// ok=false when the path belongs to the standard library.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.srcRoot != "" {
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	if path == l.modulePath {
		return l.moduleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// parseDir parses a directory's non-test Go files with comments (the
// suppression scanner needs them).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	names, err := buildableGoFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func buildableGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func hasBuildableGo(dir string) (bool, error) {
	names, err := buildableGoFiles(dir)
	return len(names) > 0, err
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
