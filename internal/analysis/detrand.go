package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detrand forbids nondeterministically-seeded randomness. The global
// math/rand functions draw from a runtime-seeded source (and math/rand/v2
// cannot even be seeded globally), so any use makes artefact bytes depend
// on the process. rand.New is allowed only when the seed expression is
// visibly deterministic: a constant, or traceable to an identifier whose
// name marks it as a seed (the core.RunSpec.Seed convention — seeds derive
// from stable identifiers, never from entropy). Model code should prefer
// sim.RNG, the repository's splitmix64 stream.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand functions and rand.New with a seed not " +
		"traceable to a seed parameter or constant; use sim.RNG streams",
	Run: runDetrand,
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeObj(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods on *rand.Rand / Source values are fine — the
				// source's construction was already checked. Only the
				// package-level convenience functions use the shared,
				// runtime-seeded global.
				return true
			}
			switch fn.Name() {
			case "New", "NewSource", "NewPCG", "NewChaCha8":
				if !deterministicSeed(call) {
					pass.Reportf(call.Pos(),
						"rand.%s seeded from a non-seed expression; thread a "+
							"seed parameter (core.RunSpec.Seed) or use sim.NewRNG",
						fn.Name())
				}
			default:
				pass.Reportf(call.Pos(),
					"global %s.%s draws from the runtime-seeded shared source; "+
						"use a seeded rand.New or sim.NewRNG stream",
					fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil
}

// deterministicSeed reports whether every argument of the constructor
// call is visibly deterministic: constant literals, arithmetic over
// them, or any identifier/selector whose name contains "seed" (any
// case). Wall-clock seeding (time.Now().UnixNano()) never qualifies —
// and is independently caught by detwall inside model packages.
func deterministicSeed(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	for _, arg := range call.Args {
		ok := false
		ast.Inspect(arg, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BasicLit:
				if v.Kind == token.INT || v.Kind == token.FLOAT || v.Kind == token.STRING {
					ok = true
				}
			case *ast.Ident:
				if strings.Contains(strings.ToLower(v.Name), "seed") {
					ok = true
				}
			case *ast.SelectorExpr:
				if strings.Contains(strings.ToLower(v.Sel.Name), "seed") {
					ok = true
					return false // don't descend into X: field name decides
				}
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}
