// Package pdes is the allochot fixture's dependency stub: its queue
// allocates, and the fact must cross the package boundary into the mpi
// stub's hot functions.
package pdes

// Queue is a growable event queue.
type Queue struct {
	h []int
}

// Push allocates and its key collides with the real module's embedded
// hot-list on purpose: list-driven hotness (no marker) must fire here,
// and the Allocates fact must cross into the mpi stub.
func (q *Queue) Push(e int) {
	q.h = append(q.h, e) // want `allocation in hot function Queue.Push: append may grow its backing array`
}

// PushPooled is the audited twin: the allow clears its Allocates fact,
// so hot callers across the boundary stay clean.
func (q *Queue) PushPooled(e int) {
	//lint:allow reprolint/allochot amortised growth; fixture twin of the pooled queue
	q.h = append(q.h, e)
}

// Len is allocation-free.
func (q *Queue) Len() int { return len(q.h) }
