// Package mpi is the allochot fixture: hot functions by marker, the
// direct allocation catalogue, and cross-package transitive facts.
package mpi

import (
	"repro/internal/pdes"
)

// Comm is a stand-in for the message-plane endpoint.
type Comm struct {
	buf   []float64
	q     pdes.Queue
	sum   string
	cb    func() int
	sink  interface{ Write(p []byte) (int, error) }
	table map[int]int
}

//reprolint:hot
func (c *Comm) SendAppend(v float64) {
	c.buf = append(c.buf, v) // want `allocation in hot function Comm.SendAppend: append may grow its backing array`
}

//reprolint:hot
func (c *Comm) SendMake(n int) {
	c.buf = make([]float64, n) // want `allocation in hot function Comm.SendMake: make allocates`
}

//reprolint:hot
func (c *Comm) SendLiteral() {
	c.table = map[int]int{1: 1} // want `allocation in hot function Comm.SendLiteral: composite literal allocates a map`
}

//reprolint:hot
func (c *Comm) SendConcat(a, b string) {
	c.sum = a + b // want `allocation in hot function Comm.SendConcat: string concatenation builds a new string`
}

//reprolint:hot
func (c *Comm) SendClosure(v float64) {
	f := func() int { return len(c.buf) } // want `allocation in hot function Comm.SendClosure: capturing function literal allocates a closure`
	c.cb = f
}

//reprolint:hot
func (c *Comm) SendIndirect() {
	c.cb() // want `allocation in hot function Comm.SendIndirect: indirect call \(unknown allocation behaviour\)`
}

//reprolint:hot
func (c *Comm) SendIface(p []byte) {
	c.sink.Write(p) // want `allocation in hot function Comm.SendIface: interface method call`
}

// box consumes an any parameter.
func box(v any) any { return v }

//reprolint:hot
func (c *Comm) SendBoxed(v float64) {
	box(v) // want `allocation in hot function Comm.SendBoxed: argument boxed into interface parameter`
}

//reprolint:hot
func (c *Comm) SendTransitive(e int) {
	c.q.Push(e) // want `hot function Comm.SendTransitive calls allocating function \(repro/internal/pdes.Queue.Push -> append may grow its backing array at pdes.go:15\)`
}

//reprolint:hot
func (c *Comm) SendPooled(e int) {
	c.q.PushPooled(e) // clean: the callee's allow clears its Allocates fact
}

//reprolint:hot
func (c *Comm) SendLen() int {
	return c.q.Len() // clean: allocation-free callee across the boundary
}

//reprolint:hot
func (c *Comm) SendAllowed(v float64) {
	//lint:allow reprolint/allochot audited amortised growth in the fixture
	c.buf = append(c.buf, v)
}

// SendCold is not hot: the same allocation draws no diagnostic.
func (c *Comm) SendCold(v float64) {
	c.buf = append(c.buf, v)
}

//reprolint:hot
func (c *Comm) SendPanicGuard(v float64) {
	if v < 0 {
		panic(boxString("negative", v)) // clean: panic arguments are terminal cold paths
	}
	c.buf[0] = v
}

func boxString(s string, v float64) string { return s }

//reprolint:hot
func (c *Comm) SendSpawn() {
	go c.SendLen() // want `allocation in hot function Comm.SendSpawn: go statement allocates a goroutine`
}
