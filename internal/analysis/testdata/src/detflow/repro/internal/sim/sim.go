// Package sim is the detflow fixture's dependency stub: nondeterminism
// sources buried one package away from the artefact writers.
package sim

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — the ReadsClock fact must cross the
// package boundary.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the runtime-seeded global source.
func Jitter() float64 { return rand.Float64() }

// Virtual is clean: derived from an argument, no host clock.
func Virtual(clock float64) float64 { return clock * 2 }

// AllowedStamp reads the clock under a reviewed allow, so the fact is
// cleared at the source and sinks calling it stay clean.
func AllowedStamp() int64 {
	//lint:allow reprolint/detflow volatile wall-latency series, excluded from stable snapshots
	return time.Now().UnixNano()
}
