// Package experiments is the detflow fixture: artefact writers that
// must not transitively reach a wall-clock or global-rand source.
package experiments

import (
	"repro/internal/sim"
)

// helper hides the clock read one hop deeper inside the module.
func helper() int64 { return sim.Stamp() }

//reprolint:artefact-sink
func writeManifest() int64 { // want `artefact writer repro/internal/experiments.writeManifest transitively reads the wall clock: repro/internal/experiments.writeManifest -> repro/internal/experiments.helper -> repro/internal/sim.Stamp -> time.Now at sim.go:12`
	return helper()
}

//reprolint:artefact-sink
func writeFigure() float64 { // want `artefact writer repro/internal/experiments.writeFigure transitively draws from the global rand source`
	return sim.Jitter()
}

//reprolint:artefact-sink
func writeTable(clock float64) float64 {
	return sim.Virtual(clock) // clean: virtual time only
}

//reprolint:artefact-sink
func writeVolatile() int64 {
	return sim.AllowedStamp() // clean: the source carries a reviewed allow
}

// coldPath reads the clock but is no sink: no diagnostic.
func coldPath() int64 { return sim.Stamp() }
