// Stub of the mpi runtime's request surface: just enough signatures for
// the mpireq fixtures to type-check against the real import path.
package mpi

type Comm struct{ rank int }

type Request struct{ done bool }

func (c *Comm) Rank() int { return c.rank }

func (c *Comm) Isend(dst, tag int, data []float64) *Request { return &Request{} }
func (c *Comm) IsendN(dst, tag, n int) *Request             { return &Request{} }
func (c *Comm) Irecv(src, tag int, buf []float64) *Request  { return &Request{} }
func (c *Comm) IrecvN(src, tag int) *Request                { return &Request{} }

func (c *Comm) Wait(r *Request) int        { return 0 }
func (c *Comm) Waitall(rs ...*Request) int { return 0 }

func (c *Comm) Send(dst, tag int, data []float64) {}
func (c *Comm) Barrier()                          {}
