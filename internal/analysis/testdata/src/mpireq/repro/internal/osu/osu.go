// Fixture: nonblocking-request hygiene and Comm goroutine capture.
package osu

import "repro/internal/mpi"

// LeakDiscarded throws the request away entirely.
func LeakDiscarded(c *mpi.Comm) {
	c.IrecvN(0, 1) // want `IrecvN result discarded`
}

// LeakBlank binds to the blank identifier.
func LeakBlank(c *mpi.Comm) {
	_ = c.Irecv(0, 1, make([]float64, 4)) // want `Irecv result discarded`
}

// LeakUnwaited binds to a variable that never reaches a Wait.
func LeakUnwaited(c *mpi.Comm) int {
	r := c.IrecvN(0, 1) // want `IrecvN result stored in "r" but "r" never reaches a Wait`
	_ = r
	return c.Rank()
}

// WaitedOK is the straightforward post-then-wait pairing.
func WaitedOK(c *mpi.Comm) int {
	r := c.Irecv(0, 1, make([]float64, 4))
	return c.Wait(r)
}

// WindowOK fills a request slice and drains it with Waitall — the
// repository's bandwidth-window idiom.
func WindowOK(c *mpi.Comm, n int) {
	reqs := make([]*mpi.Request, 4)
	for i := range reqs {
		reqs[i] = c.IrecvN(0, i)
	}
	c.Waitall(reqs...)
}

// ReturnedOK hands the request to the caller, which owns the Wait.
func ReturnedOK(c *mpi.Comm) *mpi.Request {
	return c.IsendN(1, 0, 64)
}

// GoCapture leaks the rank's Comm into another goroutine.
func GoCapture(c *mpi.Comm, done chan struct{}) {
	go func() { // the capture is reported on the use inside the literal
		c.Send(1, 0, nil) // want `\*mpi\.Comm "c" captured by a goroutine`
		close(done)
	}()
}

// GoArgCapture passes the Comm as a goroutine argument — same hazard.
func GoArgCapture(c *mpi.Comm) {
	go func(cc *mpi.Comm) {
		cc.Barrier()
	}(c) // want `\*mpi\.Comm "c" captured by a goroutine`
}

// GoOK spawns helper goroutines that never touch a Comm.
func GoOK(c *mpi.Comm, results chan int) {
	go func() { results <- 1 }()
	c.Barrier()
}
