// Package mpi is the lockhyg fixture: mixed locked/unlocked field
// writes, atomic.Value type drift, and sync.Pool use-after-Put.
package mpi

import (
	"sync"
	"sync/atomic"
)

// Inbox guards its depth with a mutex in the hot methods.
type Inbox struct {
	mu    sync.Mutex
	depth int
	stats int
}

// Push is the locked writer that makes depth and stats guarded fields.
func (b *Inbox) Push() {
	b.mu.Lock()
	b.depth++
	b.stats++
	b.mu.Unlock()
}

// Reset forgets the lock: the classic mixed-guard write.
func (b *Inbox) Reset() {
	b.depth = 0 // want `Inbox.depth is guarded by Inbox's mutex elsewhere but written without it in Reset; lock around the write or excuse the single-threaded phase with //lint:allow reprolint/lockhyg <reason>`
}

// drainLocked writes without locking, but the Locked suffix is the
// repository's caller-holds-the-lock contract: no diagnostic.
func (b *Inbox) drainLocked() {
	b.depth = 0
}

// seed primes the queue depth during handoff. Caller
// holds b.mu.
func (b *Inbox) seed(n int) {
	b.depth = n // clean: the wrapped doc contract still matches
}

// construct runs before any goroutine exists; the allow excuses it.
func (b *Inbox) construct(n int) {
	//lint:allow reprolint/lockhyg single-threaded construction precedes every goroutine
	b.stats = n
}

// Box drifts its atomic.Value between concrete types.
type Box struct {
	val atomic.Value
}

func (x *Box) fill() {
	x.val.Store(1)
	x.val.Store("two") // want `atomic.Value val stored with concrete type string after int; Store panics on inconsistent types — wrap values in a single named type`
}

// BoxOK keeps a single concrete type: no diagnostic.
type BoxOK struct {
	val atomic.Value
}

func (x *BoxOK) fill() {
	x.val.Store(1)
	x.val.Store(2)
}

// Msg is the pooled envelope.
type Msg struct {
	n int
}

var pool sync.Pool

// release reads the envelope after handing it back.
func release(m *Msg) int {
	pool.Put(m)
	return m.n // want `m used after sync.Pool.Put returned it to the pool; the pool may have re-leased it — nil the variable or reorder the Put`
}

// releaseOK re-acquires before the next use: the taint clears.
func releaseOK(m *Msg) int {
	pool.Put(m)
	m = pool.Get().(*Msg)
	return m.n
}

// releaseBefore uses the envelope before the Put: clean.
func releaseBefore(m *Msg) int {
	n := m.n
	pool.Put(m)
	return n
}
