// Fixture: dropped errors on io/os/encoder completion calls in a command.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	f, err := os.Create("out.csv")
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "x,y") // ok: diagnostics-grade write, not watched

	w.Flush() // want `Flush error is dropped`
	f.Close() // want `Close error is dropped`

	enc := json.NewEncoder(os.Stdout)
	enc.Encode(map[string]int{"a": 1}) // want `Encode error is dropped`

	os.WriteFile("copy.csv", []byte("x,y\n"), 0o644) // want `os\.WriteFile error is dropped`
	os.MkdirAll("results", 0o755)                    // want `os\.MkdirAll error is dropped`

	checked(f)
}

// checked shows the accepted shapes: explicit checks, assignment, defer.
func checked(f *os.File) {
	g, err := os.Create("ok.csv")
	if err != nil {
		return
	}
	defer g.Close() // ok: deferred close on a file is exempt

	if _, err := io.WriteString(g, "row\n"); err != nil {
		return
	}
	if err := g.Sync(); err != nil {
		return
	}
	_ = f.Close() // ok: explicit discard is a visible decision
}
