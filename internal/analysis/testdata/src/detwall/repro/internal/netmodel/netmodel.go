// Fixture: wall-clock sources inside a virtual-time package.
package netmodel

import "time"

// Latency mixes wall-clock reads into a model quantity — every forbidden
// source must be reported.
func Latency() float64 {
	start := time.Now()             // want `time\.Now reads the wall clock`
	d := time.Since(start)          // want `time\.Since reads the wall clock`
	<-time.After(time.Millisecond)  // want `time\.After reads the wall clock`
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	defer t.Stop()
	time.Sleep(time.Microsecond) // want `time\.Sleep reads the wall clock`
	return d.Seconds()
}

// DurationsOK shows that time.Duration values and arithmetic are fine:
// only clock *sources* are forbidden.
func DurationsOK(budget time.Duration) float64 {
	deadline := budget + 3*time.Second
	return deadline.Seconds()
}

// SuppressedOK carries an allow comment with a reason, so the finding is
// silenced and audited in place.
func SuppressedOK() time.Time {
	//lint:allow reprolint/detwall fixture: documented wall read
	return time.Now()
}

// SuppressedBad misspells the analyzer path (no reprolint/ prefix), which
// is itself reported — and the finding it tried to silence survives.
func SuppressedBad() time.Time {
	//lint:allow detwall missing-prefix // want `malformed allow comment`
	return time.Now() // want `time\.Now reads the wall clock`
}
