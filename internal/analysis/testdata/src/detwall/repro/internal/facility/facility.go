// Fixture: the batch facility is a virtual-time package — queue waits,
// fairshare decay and spot outages all advance on the event heap's
// clock. Reading the host clock anywhere in the scheduling path would
// make queue order (and the E14 artefact bytes) depend on machine speed.
package facility

import "time"

// Dispatch models the forbidden patterns: timestamping job starts with
// host time and aging fairshare usage against the wall clock.
func Dispatch(queue []float64) float64 {
	admitted := time.Now() // want `time\.Now reads the wall clock`
	started := 0.0
	for _, submit := range queue {
		started = submit
	}
	return started + time.Since(admitted).Seconds() // want `time\.Since reads the wall clock`
}

// VirtualOK shows the legitimate shape: waits are differences of event
// timestamps, and limits enter as plain durations.
func VirtualOK(submit, start float64, limit time.Duration) float64 {
	return (start - submit) + limit.Seconds()
}
