// Fixture: the embedded allowlist exempts state.execute (the volatile
// wall-latency series); everything else in the package is still checked.
package sched

import "time"

type state struct{ last time.Time }

func (s *state) execute() time.Duration {
	s.last = time.Now() // allowlisted: repro/internal/sched state.execute
	return time.Since(s.last)
}

func (s *state) settle() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
