// Fixture: the event engine is a virtual-time package — its scheduling
// decisions must derive from the event queue's virtual clock, never the
// host's. A wall-clock watchdog or grant timestamp here would make rank
// resumption order depend on machine speed and break the engine's
// byte-identical cross-runtime parity.
package pdes

import "time"

// Dispatch models the tempting-but-forbidden patterns: stamping grants
// with host time and pacing the dispatcher against the wall clock.
func Dispatch(events []float64) float64 {
	start := time.Now() // want `time\.Now reads the wall clock`
	granted := 0.0
	for _, at := range events {
		granted = at
	}
	select {
	case <-time.After(10 * time.Millisecond): // want `time\.After reads the wall clock`
	default:
	}
	return granted + time.Since(start).Seconds() // want `time\.Since reads the wall clock`
}

// VirtualOK shows the legitimate shape: time only ever enters as the
// events' own virtual timestamps and duration arithmetic.
func VirtualOK(parkTime float64, budget time.Duration) float64 {
	return parkTime + budget.Seconds()
}
