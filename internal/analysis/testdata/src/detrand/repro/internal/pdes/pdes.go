// Fixture: randomness in the event engine. Tie-breaking and worker
// assignment must be pure functions of (time, rank, seq) — a random
// tie-break would change rank resumption order run to run, which the
// engine's determinism guarantee (and the oracle parity suite) forbids.
package pdes

import "math/rand"

// TieBreak models the forbidden pattern: breaking virtual-time ties with
// the shared runtime-seeded source.
func TieBreak(a, b int) int {
	if rand.Intn(2) == 0 { // want `global math/rand\.Intn draws from the runtime-seeded shared source`
		return a
	}
	return b
}

// Jittered models an engine draw whose source is not traceable to a
// seed: "events" is a count, not a seed-named identifier, so the
// expression could just as well be entropy.
func Jittered(events int) float64 {
	src := rand.New(rand.NewSource(int64(events))) // want `rand\.New seeded from a non-seed expression` `rand\.NewSource seeded from a non-seed expression`
	_ = src
	return 0
}

// SeededOK shows the legitimate shape: a deterministic constant or a
// threaded seed parameter.
func SeededOK(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
