// Fixture: randomness in the batch facility. Workload generation and
// spot-market draws must come from seed-derived sim.RNG streams — an
// untraceable source would change which tenant submits what, and the
// golden E14 sweep would stop reproducing.
package facility

import "math/rand"

// PickTenant models the forbidden pattern: sampling the tenant mix from
// the runtime-seeded shared source.
func PickTenant(tenants int) int {
	return rand.Intn(tenants) // want `global math/rand\.Intn draws from the runtime-seeded shared source`
}

// Arrivals models a generator whose source is not traceable to a seed:
// "jobs" is a count, so the expression could just as well be entropy.
func Arrivals(jobs int) float64 {
	src := rand.New(rand.NewSource(int64(jobs))) // want `rand\.New seeded from a non-seed expression` `rand\.NewSource seeded from a non-seed expression`
	_ = src
	return 0
}

// SeededOK shows the legitimate shape: the workload seed is threaded in.
func SeededOK(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).ExpFloat64()
}
