// Fixture: nondeterministically-seeded randomness in model code.
package fault

import (
	"math/rand"
	"os"
)

// Plan draws from every kind of source the analyzer distinguishes.
func Plan(seed int64, nodeSeed uint64) []float64 {
	bad := rand.Float64()              // want `global math/rand\.Float64 draws from the runtime-seeded shared source`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle draws from the runtime-seeded shared source`

	entropy := rand.New(rand.NewSource(int64(os.Getpid()))) // want `rand\.New seeded from a non-seed expression` `rand\.NewSource seeded from a non-seed expression`

	seeded := rand.New(rand.NewSource(seed))                  // ok: seed parameter
	derived := rand.New(rand.NewSource(int64(nodeSeed) ^ 42)) // ok: seed-named operand
	constant := rand.New(rand.NewSource(1))                   // ok: constant is deterministic

	return []float64{bad, entropy.Float64(), seeded.Float64(), derived.Float64(), constant.Float64()}
}
