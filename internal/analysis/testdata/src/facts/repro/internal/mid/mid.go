// Package mid sits one hop above leaf: its facts must arrive by
// following cross-package call edges, not by rescanning leaf's bodies.
package mid

import "repro/internal/leaf"

// Wrap crosses the boundary into an allocating callee.
func Wrap() []int { return leaf.Alloc() }

// Clock reaches the wall clock two hops deep.
func Clock() int64 { return leaf.Now() }

// Burst transitively spawns.
func Burst() { leaf.Spawn() }

// Calm only touches the effect-free leaf.
func Calm() int { return leaf.Clean(1, 2) }

// Deep stacks a third hop so WhyChain has a real path to print.
func Deep() []int { return Wrap() }
