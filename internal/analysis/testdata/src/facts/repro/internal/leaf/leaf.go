// Package leaf is the facts-engine fixture's dependency: every effect
// class at the bottom of the call graph, plus recursion shapes.
package leaf

import "time"

// Alloc allocates directly.
func Alloc() []int { return make([]int, 8) }

// Now reads the wall clock.
func Now() int64 { return time.Now().UnixNano() }

// Spawn starts a goroutine.
func Spawn() {
	go func() {}()
}

// Clean is effect-free.
func Clean(a, b int) int { return a + b }

// Even and Odd form a two-node SCC; only Odd allocates, so the SCC
// union must hand both the Allocates fact.
func Even(n int) []int {
	if n == 0 {
		return nil
	}
	return Odd(n - 1)
}

func Odd(n int) []int {
	if n == 0 {
		return make([]int, 1)
	}
	return Even(n - 1)
}

// Count is self-recursive and effect-free: the self-loop SCC must
// converge without inventing facts.
func Count(n int) int {
	if n == 0 {
		return 0
	}
	return 1 + Count(n-1)
}
