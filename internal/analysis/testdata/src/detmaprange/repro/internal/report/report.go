// Fixture: map iteration whose order can reach output.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// EmitUnsorted prints artefact lines straight out of map order.
func EmitUnsorted(rows map[string]float64) {
	for name, v := range rows { // want `map iteration order reaches an output call \(fmt\.Printf\)`
		fmt.Printf("%s,%g\n", name, v)
	}
}

// BuildUnsorted concatenates in map order (string accumulation).
func BuildUnsorted(rows map[string]float64) string {
	var out string
	for name := range rows { // want `order-sensitive accumulation`
		out += name
	}
	return out
}

// SumUnsorted accumulates floats in map order.
func SumUnsorted(rows map[string]float64) float64 {
	var total float64
	for _, v := range rows { // want `order-sensitive accumulation`
		total += v
	}
	return total
}

// FirstError returns in map order, so the reported key is nondeterministic.
func FirstError(rows map[string]float64) error {
	for name, v := range rows { // want `map iteration order reaches a return statement`
		if v < 0 {
			return fmt.Errorf("negative value for %s", name)
		}
	}
	return nil
}

// EmitSorted is the canonical fix: collect, sort, then emit.
func EmitSorted(rows map[string]float64) string {
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s,%g\n", name, rows[name])
	}
	return b.String()
}

// AggregatePerKey shows the order-safe aggregate-into-map idiom: the
// accumulator is a per-iteration local, so each key's sum is unaffected
// by iteration order.
func AggregatePerKey(rows map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for name, vs := range rows {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		out[name] = sum
	}
	return out
}

// CopyMap is plain key-by-key work with no observable order.
func CopyMap(rows map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(rows))
	for k, v := range rows {
		out[k] = v
	}
	return out
}
