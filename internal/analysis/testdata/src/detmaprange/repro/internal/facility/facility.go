// Fixture: map iteration in the batch facility. Tenant weights and
// broker factors live in maps; folding them in range order would make
// validation errors and priority sums nondeterministic.
package facility

import (
	"fmt"
	"sort"
)

// ValidateWeightsUnsorted returns the first bad tenant in map order, so
// the reported key changes run to run.
func ValidateWeightsUnsorted(weights map[string]float64) error {
	for tenant, w := range weights { // want `map iteration order reaches a return statement`
		if w <= 0 {
			return fmt.Errorf("tenant %s weight %g", tenant, w)
		}
	}
	return nil
}

// TotalUsageUnsorted folds float usage in map order.
func TotalUsageUnsorted(usage map[string]float64) float64 {
	var total float64
	for _, u := range usage { // want `order-sensitive accumulation`
		total += u
	}
	return total
}

// ValidateWeightsSorted is the canonical fix: sort the tenants first.
func ValidateWeightsSorted(weights map[string]float64) error {
	tenants := make([]string, 0, len(weights))
	for t := range weights {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if weights[t] <= 0 {
			return fmt.Errorf("tenant %s weight %g", t, weights[t])
		}
	}
	return nil
}

// DecayAll is order-safe per-key work: each tenant's decay is local.
func DecayAll(usage map[string]float64, k float64) {
	for t, u := range usage {
		usage[t] = u * k
	}
}

// merge folds b over a into a fresh map (helper for the suppression
// placement cases below).
func merge(a, b map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// SumAllowedInline excuses the fold with the marker on the range line
// itself — the placement that always worked.
func SumAllowedInline(usage map[string]float64) float64 {
	var total float64
	for _, u := range usage { //lint:allow reprolint/detmaprange commutative float fold; report rounds to 1e-9
		total += u
	}
	return total
}

// SumAllowedAbove excuses the fold with the marker on the line above a
// range statement whose header spans multiple lines, and the allow
// leads a comment group whose explanation continues past it — the
// placement the group-aware suppression scanner must honour.
func SumAllowedAbove(a, b map[string]float64) float64 {
	var total float64
	//lint:allow reprolint/detmaprange commutative fold; the report rounds to 1e-9
	// and that tolerance absorbs any reordering of the addends.
	for _, u := range merge(
		a,
		b,
	) {
		total += u
	}
	return total
}
