// Fixture: the stable-snapshot contract — stable metrics must not be fed
// wall-clock or pool-traffic values.
package sched

import (
	"time"

	"repro/internal/obs"
)

type metrics struct {
	jobs     *obs.Counter   // stable: counts simulated jobs
	jobWall  *obs.Histogram // stable by mistake — should be volatile
	busy     *obs.Counter
	poolHits *obs.Counter
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		jobs:     r.Counter("sched_jobs_total", "jobs executed"),
		jobWall:  r.Histogram("sched_job_wall_ns", "per-job wall latency"),
		busy:     r.VolatileCounter("sched_busy_ns_total", "wall busy time"),
		poolHits: r.Counter("mpi_pool_hits_total", "buffer pool hits"),
	}
}

type result struct {
	Wall    time.Duration
	Virtual float64
}

func (m *metrics) record(res result, poolHitCount int64) {
	m.jobs.Inc() // ok: simulated count into a stable counter

	m.jobWall.Observe(res.Wall.Nanoseconds()) // want `stable metric "sched_job_wall_ns" fed from wall/pool-derived value Wall`

	m.busy.Add(res.Wall.Nanoseconds()) // ok: volatile series may hold wall time

	m.poolHits.Add(poolHitCount) // want `stable metric "mpi_pool_hits_total" fed from wall/pool-derived value poolHitCount`
}

func (m *metrics) timeDirect(start time.Time) {
	m.jobs.AddSeconds(time.Since(start).Seconds()) // want `stable metric "sched_jobs_total" fed from time\.Since`
}

// localVar shows resolution through plain variables, not just fields.
func localVar(r *obs.Registry, virtualSeconds float64) {
	virt := r.Histogram("sched_job_virtual_seconds", "per-job virtual time")
	virt.ObserveSeconds(virtualSeconds) // ok: virtual time is deterministic
}
