// Stub of the obs metrics registry: constructor and feed signatures only.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name, help string) *Counter         { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge             { return &Gauge{} }
func (r *Registry) Histogram(name, help string) *Histogram     { return &Histogram{} }
func (r *Registry) VolatileCounter(name, help string) *Counter { return &Counter{} }
func (r *Registry) VolatileGauge(name, help string) *Gauge     { return &Gauge{} }
func (r *Registry) VolatileHistogram(name, help string) *Histogram {
	return &Histogram{}
}

func (c *Counter) Add(n int64)                {}
func (c *Counter) Inc()                       {}
func (c *Counter) AddSeconds(s float64)       {}
func (g *Gauge) Set(n int64)                  {}
func (g *Gauge) SetMax(n int64)               {}
func (h *Histogram) Observe(v int64)          {}
func (h *Histogram) ObserveSeconds(s float64) {}
