// Package analysis is the repository's static-analysis plane: a small,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// analyzer shape plus the six reprolint analyzers that prove the
// determinism, MPI-hygiene and metrics-stability invariants the golden
// tests otherwise only catch after a violation ships.
//
// The build environment is hermetic (no module proxy), so the framework
// deliberately depends on nothing outside the standard library: packages
// are parsed with go/parser, type-checked with go/types against the
// toolchain's own export data, and analyzers receive a Pass mirroring
// x/tools' analysis.Pass. If golang.org/x/tools ever becomes available,
// each Analyzer converts mechanically (same Name/Doc/Run shape).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to the
// real driver unchanged when the dependency is available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// comments (//lint:allow reprolint/<Name> <reason>).
	Name string
	// Doc is the one-paragraph help text shown by cmd/reprolint -list.
	Doc string
	// NeedsFacts marks analyzers that consume the interprocedural fact
	// table (Pass.Facts): the driver computes facts over the loaded
	// packages (seeded with imported dependency facts under the vettool
	// protocol) before any such analyzer runs.
	NeedsFacts bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts is the interprocedural fact table covering every function of
	// the analyzed package set (plus imported dependency summaries under
	// the vettool protocol). Populated for every pass; analyzers that set
	// NeedsFacts rely on it, the rest may ignore it.
	Facts *Facts

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// InModule reports whether path names a package of this module. The
// analyzers encode repository invariants, so Run confines them to module
// packages: under go vet the unitchecker protocol hands the tool every
// package in the dependency graph — including the standard library, where
// e.g. math/rand legitimately seeds itself from runtime entropy.
func InModule(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// Run applies every analyzer to every in-module package, drops findings
// covered by a //lint:allow suppression, and returns the survivors sorted
// by position. Malformed suppressions (missing reason) are themselves
// reported so a silencing comment always carries its justification.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(analyzers, pkgs, nil)
	return diags, err
}

// RunWithFacts is Run plus the interprocedural fact plumbing: imported
// seeds the fact computation with dependency summaries (nil when the
// whole module is loaded at once), and the returned fact table — the
// imported facts plus a summary for every function declared in pkgs —
// is what a vettool driver exports for the packages that import these.
func RunWithFacts(analyzers []*Analyzer, pkgs []*Package, imported *Facts) ([]Diagnostic, *Facts, error) {
	facts := ComputeFacts(pkgs, imported)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !InModule(pkg.Path) {
			continue
		}
		sup, bad := collectSuppressions(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				diags:    &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			diags = filterSuppressed(diags, before, sup)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, facts, nil
}

// suppression marks "analyzer X is allowed at file:line".
type suppression struct {
	file     string
	line     int
	analyzer string // "" allows every analyzer on the line
}

// AllowPrefix is the comment marker that silences one finding:
//
//	//lint:allow reprolint/<analyzer> <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory; it is what a reviewer audits instead of the code.
const AllowPrefix = "//lint:allow "

// collectSuppressions scans a package's comments for allow markers. A
// marker suppresses findings on every line from its own through the end
// of its comment group plus one — so it works on the offending line, on
// the line immediately above (the common placement), and anywhere
// inside a multi-line comment block sitting on top of the offending
// statement (the marker may be followed by further explanation lines
// before a multi-line range statement, say, without losing its effect).
func collectSuppressions(pkg *Package) (map[suppression]bool, []Diagnostic) {
	sup := map[suppression]bool{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			groupEnd := pkg.Fset.Position(cg.End()).Line
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if !strings.HasPrefix(name, "reprolint/") || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "suppression",
						Pos:      pos,
						Message: "malformed allow comment: want " +
							"//lint:allow reprolint/<analyzer> <reason>",
					})
					continue
				}
				an := strings.TrimPrefix(name, "reprolint/")
				for line := pos.Line; line <= groupEnd+1; line++ {
					sup[suppression{file: pos.Filename, line: line, analyzer: an}] = true
				}
			}
		}
	}
	return sup, bad
}

// filterSuppressed removes diagnostics appended after index `from` whose
// position carries a matching allow marker.
func filterSuppressed(diags []Diagnostic, from int, sup map[suppression]bool) []Diagnostic {
	if len(sup) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		key := suppression{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}
		if sup[key] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// All returns the full reprolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Detwall,
		Detrand,
		Detmaprange,
		Mpireq,
		Obsstable,
		Errcheck,
		Allochot,
		Detflow,
		Lockhyg,
	}
}

// ByName resolves a comma-separated analyzer list, erroring on unknown
// names so typos fail loudly rather than silently checking nothing.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
