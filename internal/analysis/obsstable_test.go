package analysis

import "testing"

func TestObsstableStableSnapshotContract(t *testing.T) {
	RunFixture(t, Obsstable, "testdata/src/obsstable", "repro/internal/sched")
}
