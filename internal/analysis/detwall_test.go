package analysis

import "testing"

func TestDetwallVirtualTimePackage(t *testing.T) {
	RunFixture(t, Detwall, "testdata/src/detwall", "repro/internal/netmodel")
}

func TestDetwallAllowlistExemptsSchedExecute(t *testing.T) {
	RunFixture(t, Detwall, "testdata/src/detwall", "repro/internal/sched")
}

func TestDetwallEventEngine(t *testing.T) {
	RunFixture(t, Detwall, "testdata/src/detwall", "repro/internal/pdes")
}

func TestDetwallBatchFacility(t *testing.T) {
	RunFixture(t, Detwall, "testdata/src/detwall", "repro/internal/facility")
}
