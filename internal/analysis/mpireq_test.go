package analysis

import "testing"

func TestMpireqWaitDiscipline(t *testing.T) {
	RunFixture(t, Mpireq, "testdata/src/mpireq", "repro/internal/osu")
}

func TestMpireqSkipsRuntimePackage(t *testing.T) {
	// The runtime itself hands requests and comms across goroutines by
	// design; the analyzer must stay out of repro/internal/mpi.
	l := NewFixtureLoader("testdata/src/mpireq")
	pkg, err := l.Load("repro/internal/mpi")
	if err != nil {
		t.Fatalf("loading stub mpi: %v", err)
	}
	diags, err := Run([]*Analyzer{Mpireq}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running mpireq: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("mpireq reported inside internal/mpi: %v", diags)
	}
}
