package analysis

import "testing"

// TestAllochotHotPaths drives the full allocation catalogue through the
// fixture: direct sites (append, make, literals, concat, closures,
// boxing, dynamic dispatch, go statements), cross-package transitive
// facts, allow composition at the leaf and at the site, and the
// panic-argument cold path.
func TestAllochotHotPaths(t *testing.T) {
	RunFixture(t, Allochot, "testdata/src/allochot", "repro/internal/mpi")
}

// TestAllochotHotlistResolves pins the embedded hot-list to reality:
// every key must name a function that exists in the module, so a
// refactor that renames a hot function cannot silently drop it from
// the gate.
func TestAllochotHotlistResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := repoRoot(t)
	loader := NewModuleLoader(root, ModulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	facts := ComputeFacts(pkgs, nil)
	for _, key := range HotlistKeys() {
		if !facts.Has(key) {
			t.Errorf("allochot_hot.txt entry %q does not resolve to a declared function", key)
		}
	}
}
