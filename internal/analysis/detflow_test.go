package analysis

import "testing"

// TestDetflowArtefactSinks drives the taint flow end to end: clock and
// global-rand sources one package away from the marked sinks, the
// virtual-time clean path, and an allow at the source clearing every
// sink downstream of it.
func TestDetflowArtefactSinks(t *testing.T) {
	RunFixture(t, Detflow, "testdata/src/detflow", "repro/internal/experiments")
}

// TestDetflowSinklistResolves pins the embedded sink list to reality,
// like the allochot hot-list test.
func TestDetflowSinklistResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := repoRoot(t)
	loader := NewModuleLoader(root, ModulePath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	facts := ComputeFacts(pkgs, nil)
	for _, key := range SinkKeys() {
		if !facts.Has(key) {
			t.Errorf("detflow_sinks.txt entry %q does not resolve to a declared function", key)
		}
	}
}
