package analysis

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// loadFactsFixture loads the two-package facts fixture (mid imports
// leaf) and returns every loaded package in sorted path order.
func loadFactsFixture(t *testing.T) []*Package {
	t.Helper()
	l := NewFixtureLoader("testdata/src/facts")
	if _, err := l.Load("repro/internal/mid"); err != nil {
		t.Fatalf("loading facts fixture: %v", err)
	}
	return l.Loaded()
}

// factsOnly filters the fixture packages down to one import path.
func factsOnly(pkgs []*Package, path string) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if p.Path == path {
			out = append(out, p)
		}
	}
	return out
}

// TestFactsCrossPackage asserts the summaries and their witnesses for
// every fixture function: direct effects at the leaf, lifted effects
// one and two hops up, and clean functions staying clean.
func TestFactsCrossPackage(t *testing.T) {
	facts := ComputeFacts(loadFactsFixture(t), nil)

	ff := facts.Of("repro/internal/leaf.Alloc")
	if !ff.Allocates || ff.AllocWhy != "make allocates at leaf.go:8" {
		t.Errorf("leaf.Alloc = %+v, want direct make witness", ff)
	}
	if ff.ReadsClock || ff.GlobalRand || ff.Spawns {
		t.Errorf("leaf.Alloc carries spurious facts: %+v", ff)
	}

	ff = facts.Of("repro/internal/leaf.Now")
	if !ff.ReadsClock || ff.ClockWhy != "time.Now at leaf.go:11" {
		t.Errorf("leaf.Now = %+v, want clock witness", ff)
	}

	ff = facts.Of("repro/internal/leaf.Spawn")
	if !ff.Spawns || ff.SpawnWhy != "go statement at leaf.go:15" {
		t.Errorf("leaf.Spawn = %+v, want spawn witness", ff)
	}
	if !ff.Allocates {
		t.Errorf("leaf.Spawn should allocate (goroutine): %+v", ff)
	}

	ff = facts.Of("repro/internal/leaf.Clean")
	if ff.Allocates || ff.ReadsClock || ff.GlobalRand || ff.Spawns {
		t.Errorf("leaf.Clean should be effect-free: %+v", ff)
	}

	ff = facts.Of("repro/internal/mid.Wrap")
	if !ff.Allocates || ff.AllocWhy != "calls repro/internal/leaf.Alloc" {
		t.Errorf("mid.Wrap = %+v, want lifted alloc via leaf.Alloc", ff)
	}

	ff = facts.Of("repro/internal/mid.Clock")
	if !ff.ReadsClock || ff.ClockWhy != "calls repro/internal/leaf.Now" {
		t.Errorf("mid.Clock = %+v, want lifted clock via leaf.Now", ff)
	}

	ff = facts.Of("repro/internal/mid.Burst")
	if !ff.Spawns || ff.SpawnWhy != "calls repro/internal/leaf.Spawn" {
		t.Errorf("mid.Burst = %+v, want lifted spawn via leaf.Spawn", ff)
	}

	ff = facts.Of("repro/internal/mid.Calm")
	if ff.Allocates || ff.ReadsClock || ff.GlobalRand || ff.Spawns {
		t.Errorf("mid.Calm should be effect-free: %+v", ff)
	}

	const wantChain = "repro/internal/mid.Deep -> repro/internal/mid.Wrap -> " +
		"repro/internal/leaf.Alloc -> make allocates at leaf.go:8"
	chain := facts.WhyChain("repro/internal/mid.Deep", func(f FuncFacts) string { return f.AllocWhy })
	if chain != wantChain {
		t.Errorf("WhyChain(mid.Deep) = %q, want %q", chain, wantChain)
	}
}

// TestFactsSCCRecursion asserts the SCC condensation: the Even/Odd
// cycle unions Odd's allocation into both members, and the effect-free
// self-recursive Count converges without inventing facts.
func TestFactsSCCRecursion(t *testing.T) {
	facts := ComputeFacts(loadFactsFixture(t), nil)
	for _, key := range []string{"repro/internal/leaf.Even", "repro/internal/leaf.Odd"} {
		if ff := facts.Of(key); !ff.Allocates {
			t.Errorf("%s = %+v, want Allocates via the SCC union", key, ff)
		}
	}
	if ff := facts.Of("repro/internal/leaf.Count"); ff.Allocates || ff.ReadsClock || ff.GlobalRand || ff.Spawns {
		t.Errorf("leaf.Count (self-recursive, effect-free) = %+v, want no facts", ff)
	}
}

// TestFactsImportedSeed exercises the vettool shape: leaf is analyzed
// alone, its facts round-trip through the JSON export, and mid is then
// analyzed with only the imported table — the lifted facts must come
// out identical to the whole-module run.
func TestFactsImportedSeed(t *testing.T) {
	pkgs := loadFactsFixture(t)
	leafFacts := ComputeFacts(factsOnly(pkgs, "repro/internal/leaf"), nil)

	blob, err := leafFacts.MarshalJSON()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	imported := &Facts{}
	if err := imported.UnmarshalJSON(blob); err != nil {
		t.Fatalf("import: %v", err)
	}

	midFacts := ComputeFacts(factsOnly(pkgs, "repro/internal/mid"), imported)
	if ff := midFacts.Of("repro/internal/mid.Wrap"); !ff.Allocates || ff.AllocWhy != "calls repro/internal/leaf.Alloc" {
		t.Errorf("mid.Wrap with imported facts = %+v, want lifted alloc", ff)
	}
	if ff := midFacts.Of("repro/internal/mid.Clock"); !ff.ReadsClock {
		t.Errorf("mid.Clock with imported facts = %+v, want lifted clock", ff)
	}
	if !midFacts.Has("repro/internal/leaf.Alloc") {
		t.Error("imported dependency facts should be retained in the merged table")
	}
}

// TestFactsOrderInvariance is the determinism property: any permutation
// of the package load order must produce a bit-identical fact table.
func TestFactsOrderInvariance(t *testing.T) {
	pkgs := loadFactsFixture(t)
	baseline, err := ComputeFacts(pkgs, nil).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shuffled := make([]*Package, len(pkgs))
		for i, j := range r.Perm(len(pkgs)) {
			shuffled[i] = pkgs[j]
		}
		got, err := ComputeFacts(shuffled, nil).MarshalJSON()
		return err == nil && bytes.Equal(got, baseline)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 32}); err != nil {
		t.Errorf("fact table depends on package load order: %v", err)
	}
}
