package obs

import (
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Environment provenance for interactive run manifests and the bench
// history: which toolchain, how many CPUs, which commit. These knobs go
// only into the top-level manifests the cmd binaries write about a live
// invocation — never into the per-artefact manifests, whose bytes must
// stay a pure function of (code, seed, knobs).

// EnvKnobs returns the environment-provenance knobs of the current
// process: go_version, gomaxprocs, num_cpu, and git_rev when non-empty.
// Merge into an interactive manifest's Knobs so snapshots taken on
// different machines stay distinguishable.
func EnvKnobs(gitRev string) map[string]string {
	m := map[string]string{
		"go_version": runtime.Version(),
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"num_cpu":    strconv.Itoa(runtime.NumCPU()),
	}
	if gitRev != "" {
		m["git_rev"] = gitRev
	}
	return m
}

// GitRev returns the abbreviated commit of the working tree, or "" when
// git (or a repository) is unavailable — provenance is best-effort and
// must never fail a run.
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
