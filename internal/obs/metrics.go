// Package obs is the run-wide observability plane: a lock-cheap metrics
// registry with Prometheus text exposition and a deterministic JSON
// snapshot, a Scalasca-style wait-state and critical-path analyzer over
// recorded timelines, and structured run manifests tying every artefact
// to the exact run that produced it.
//
// obs is a stdlib-only leaf package. The layers it instruments (mpi,
// sched, trace, iomodel, the cmd binaries) import obs — never the
// reverse — so the analyzer operates on the neutral Event/Timeline types
// defined here rather than on any simulator type.
//
// Determinism contract: metric values are int64 (counts, bytes, or
// nanoseconds of virtual time rounded per event). Integer atomic adds
// commute, so any metric whose per-event increments are themselves
// deterministic yields the same totals regardless of goroutine
// interleaving or worker count. Metrics whose increments depend on real
// scheduling (sync.Pool reuse, queue depths, wall-clock latencies) are
// registered as volatile and excluded from the stable snapshot that
// feeds manifests and the j1-vs-j8 determinism gate.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in snapshots and exposition.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Counter is a monotonically increasing int64. All methods are safe for
// concurrent use and no-ops on a nil receiver, so instrumented code never
// branches on whether metrics are enabled.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddSeconds adds a duration expressed in seconds, stored as integer
// nanoseconds. Rounding happens per event, before accumulation, so sums
// commute and stay deterministic under concurrency.
func (c *Counter) AddSeconds(s float64) { c.Add(int64(math.Round(s * 1e9))) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 observations in exponential buckets: bucket i
// holds values v with bits.Len64(v) == i, i.e. 2^(i-1)-1 < v <= 2^i - 1,
// with bucket 0 holding v <= 0. Bounds are exact for integers, so the
// histogram of a deterministic observation stream is itself
// deterministic.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// ObserveSeconds records a duration in seconds as integer nanoseconds.
func (h *Histogram) ObserveSeconds(s float64) { h.Observe(int64(math.Round(s * 1e9))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// upperBound returns the inclusive upper bound of bucket i.
func upperBound(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << i) - 1
}

// entry is one registered metric.
type entry struct {
	name, help string
	kind       Kind
	volatile   bool
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry holds named metrics. Registration takes a mutex; the returned
// handles update via atomics only, so the hot path never contends.
// A nil *Registry is valid everywhere and hands out nil handles.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) register(name, help string, kind Kind, volatile bool) *entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind || e.volatile != volatile {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v/volatile=%v (was %v/volatile=%v)",
				name, kind, volatile, e.kind, e.volatile))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind, volatile: volatile}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	}
	r.entries[name] = e
	return e
}

// Counter registers (or returns the existing) deterministic counter.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, KindCounter, false)
	if e == nil {
		return nil
	}
	return e.c
}

// VolatileCounter registers a counter whose value depends on real
// scheduling; it is excluded from the stable snapshot.
func (r *Registry) VolatileCounter(name, help string) *Counter {
	e := r.register(name, help, KindCounter, true)
	if e == nil {
		return nil
	}
	return e.c
}

// Gauge registers (or returns the existing) deterministic gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, KindGauge, false)
	if e == nil {
		return nil
	}
	return e.g
}

// VolatileGauge registers a scheduling-dependent gauge.
func (r *Registry) VolatileGauge(name, help string) *Gauge {
	e := r.register(name, help, KindGauge, true)
	if e == nil {
		return nil
	}
	return e.g
}

// Histogram registers (or returns the existing) deterministic histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	e := r.register(name, help, KindHistogram, false)
	if e == nil {
		return nil
	}
	return e.h
}

// VolatileHistogram registers a scheduling-dependent histogram.
func (r *Registry) VolatileHistogram(name, help string) *Histogram {
	e := r.register(name, help, KindHistogram, true)
	if e == nil {
		return nil
	}
	return e.h
}

// Metric is one metric's value in a snapshot. Counters and gauges fill
// Value; histograms fill Count, Sum and the sparse Buckets map keyed by
// the bucket's inclusive upper bound.
type Metric struct {
	Kind     string           `json:"kind"`
	Volatile bool             `json:"volatile,omitempty"`
	Value    int64            `json:"value,omitempty"`
	Count    int64            `json:"count,omitempty"`
	Sum      int64            `json:"sum,omitempty"`
	Buckets  map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot captures every registered metric. With includeVolatile false,
// scheduling-dependent metrics are omitted and the result is a pure
// function of the simulated run — byte-identical across worker counts.
func (r *Registry) Snapshot(includeVolatile bool) map[string]Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Metric, len(r.entries))
	for name, e := range r.entries {
		if e.volatile && !includeVolatile {
			continue
		}
		m := Metric{Kind: e.kind.String(), Volatile: e.volatile}
		switch e.kind {
		case KindCounter:
			m.Value = e.c.Value()
		case KindGauge:
			m.Value = e.g.Value()
		case KindHistogram:
			m.Count = e.h.Count()
			m.Sum = e.h.Sum()
			for i := range e.h.buckets {
				if n := e.h.buckets[i].Load(); n > 0 {
					if m.Buckets == nil {
						m.Buckets = make(map[string]int64)
					}
					m.Buckets[fmt.Sprint(upperBound(i))] = n
				}
			}
		}
		out[name] = m
	}
	return out
}

// WritePrometheus renders every metric (volatile included) in the
// Prometheus text exposition format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	entries := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		entries[name] = e
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		e := entries[name]
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, e.kind); err != nil {
			return err
		}
		switch e.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, e.c.Value()); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, e.g.Value()); err != nil {
				return err
			}
		case KindHistogram:
			var cum int64
			for i := range e.h.buckets {
				n := e.h.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, upperBound(i), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, e.h.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, e.h.Sum(), name, e.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
