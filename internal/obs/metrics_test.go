package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "total events")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	// Re-registration under the same name returns the same handle.
	if again := r.Counter("events_total", "total events"); again != c {
		t.Fatal("re-registration returned a different handle")
	}
}

func TestAddSecondsRoundsPerEvent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("virtual_ns", "")
	c.AddSeconds(1.5)
	c.AddSeconds(2.5e-9) // rounds to 3 ns, not truncated to 2
	if got := c.Value(); got != 1_500_000_003 {
		t.Fatalf("nanoseconds = %d, want 1500000003", got)
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax(3) lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %d, want 9", got)
	}
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("Add(-2) = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", "")
	for _, v := range []int64{0, 1, 5, 5, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 11+1<<20 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	m := r.Snapshot(false)["sizes"]
	want := map[string]int64{
		"0":       1, // v <= 0
		"1":       1, // 1
		"7":       2, // 5, 5 in (3, 7]
		"2097151": 1, // 2^20 in (2^20-1, 2^21-1]
	}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", m.Buckets, want)
	}
	for ub, n := range want {
		if m.Buckets[ub] != n {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", ub, m.Buckets[ub], n, m.Buckets)
		}
	}
}

func TestSnapshotVolatileFiltering(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable_total", "").Add(7)
	r.VolatileCounter("wall_hits", "").Add(9)
	r.VolatileGauge("queue", "").Set(2)

	stable := r.Snapshot(false)
	if len(stable) != 1 {
		t.Fatalf("stable snapshot has %d metrics, want 1: %v", len(stable), stable)
	}
	if stable["stable_total"].Value != 7 {
		t.Fatalf("stable_total = %+v", stable["stable_total"])
	}

	full := r.Snapshot(true)
	if len(full) != 3 {
		t.Fatalf("full snapshot has %d metrics, want 3", len(full))
	}
	if !full["wall_hits"].Volatile || full["wall_hits"].Value != 9 {
		t.Fatalf("wall_hits = %+v", full["wall_hits"])
	}
}

func TestReregisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestReregisterVolatileMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering stable metric as volatile did not panic")
		}
	}()
	r.VolatileCounter("x", "")
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.VolatileGauge("b", "")
	h := r.Histogram("c", "")
	c.Add(1) // all no-ops, must not crash
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles returned nonzero values")
	}
	if r.Snapshot(true) != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("comm_bytes", "payload bytes").Add(3)
	r.VolatileGauge("queue_depth", "").Set(4)
	h := r.Histogram("lat_ns", "latency")
	h.Observe(1)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP comm_bytes payload bytes
# TYPE comm_bytes counter
comm_bytes 3
# HELP lat_ns latency
# TYPE lat_ns histogram
lat_ns_bucket{le="1"} 1
lat_ns_bucket{le="7"} 2
lat_ns_bucket{le="+Inf"} 2
lat_ns_sum 6
lat_ns_count 2
# TYPE queue_depth gauge
queue_depth 4
`
	if sb.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// Concurrent integer adds must commute: the totals are independent of
// interleaving, which is the determinism contract manifests rely on.
func TestConcurrentAddsDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("obs", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				c.Add(i)
				h.Observe(i % 17)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000*1001/2 {
		t.Fatalf("counter = %d, want %d", got, 8*1000*1001/2)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
