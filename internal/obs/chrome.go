package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// chromeEvent mirrors the trace-event JSON schema written by
// internal/trace ("X" = complete event; ts/dur in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Run is one recorded run inside a Chrome trace file: merged multi-run
// traces distinguish runs by pid.
type Run struct {
	PID      int
	Timeline Timeline
}

// ParseChromeTrace reads a Chrome trace-event JSON file (as written by
// trace.Recorder.WriteChrome) back into analyzable timelines, one Run
// per pid, sorted by pid. The wait-state args written by the recorder
// (wait, queued, peer) round-trip exactly.
func ParseChromeTrace(r io.Reader) ([]Run, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	byPID := map[int]map[int][]Event{}
	for _, ce := range doc.TraceEvents {
		if ce.Ph != "X" {
			continue
		}
		e := Event{
			Rank:   ce.TID,
			Name:   ce.Name,
			Kind:   ce.Cat,
			Start:  ce.TS / 1e6,
			Dur:    ce.Dur / 1e6,
			Peer:   -1,
			Region: ce.Args["region"],
		}
		if s := ce.Args["bytes"]; s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("obs: bad bytes arg %q: %w", s, err)
			}
			e.Bytes = n
		}
		var err error
		if e.Wait, err = floatArg(ce.Args, "wait"); err != nil {
			return nil, err
		}
		if e.Queued, err = floatArg(ce.Args, "queued"); err != nil {
			return nil, err
		}
		if s := ce.Args["peer"]; s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("obs: bad peer arg %q: %w", s, err)
			}
			e.Peer = n
		}
		ranks := byPID[ce.PID]
		if ranks == nil {
			ranks = map[int][]Event{}
			byPID[ce.PID] = ranks
		}
		ranks[ce.TID] = append(ranks[ce.TID], e)
	}
	runs := make([]Run, 0, len(byPID))
	for pid, ranks := range byPID {
		maxRank := 0
		for r := range ranks {
			if r > maxRank {
				maxRank = r
			}
		}
		tl := make(Timeline, maxRank+1)
		for r, evs := range ranks {
			tl[r] = evs
		}
		runs = append(runs, Run{PID: pid, Timeline: tl.sorted()})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].PID < runs[j].PID })
	return runs, nil
}

func floatArg(args map[string]string, key string) (float64, error) {
	s := args[key]
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad %s arg %q: %w", key, s, err)
	}
	return v, nil
}
