package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// sortedKeys returns a map's keys in deterministic order, so validation
// reports the same first error regardless of map iteration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ManifestSchema identifies the manifest layout; Validate rejects
// anything else, so readers never guess at fields.
const ManifestSchema = "repro.run.manifest/v1"

// Manifest is the structured provenance record a binary writes next to
// its outputs: everything needed to trace a number in results/ back to
// the exact run that produced it.
//
// Deterministic by construction when WallSeconds is left zero and the
// metrics snapshot is the stable one: every other field is a pure
// function of (code, seed, knobs).
type Manifest struct {
	Schema       string `json:"schema"`
	Binary       string `json:"binary"`
	Artefact     string `json:"artefact,omitempty"`
	ModelVersion string `json:"model_version"`
	Platform     string `json:"platform,omitempty"`
	Seed         uint64 `json:"seed"`

	// Knobs records the effective flag/parameter settings of the run.
	Knobs map[string]string `json:"knobs,omitempty"`

	// FaultSpec is the canonical fault-parameter string (the -faults
	// flag); FaultDigest is the sha256 of the generated plan when a
	// single concrete plan drove the run.
	FaultSpec   string `json:"fault_spec,omitempty"`
	FaultDigest string `json:"fault_digest,omitempty"`

	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
	// WallSeconds is real elapsed time. Interactive binaries fill it;
	// artefact manifests leave it zero so regeneration stays
	// byte-identical.
	WallSeconds float64 `json:"wall_seconds,omitempty"`

	// Metrics is the registry snapshot (stable subset for artefact
	// manifests).
	Metrics map[string]Metric `json:"metrics,omitempty"`

	// Artefacts maps output file name to sha256 of its content.
	Artefacts map[string]string `json:"artefacts,omitempty"`
}

// HashArtefacts returns the name -> sha256 map for a set of produced
// files.
func HashArtefacts(files map[string][]byte) map[string]string {
	if len(files) == 0 {
		return nil
	}
	out := make(map[string]string, len(files))
	for name, content := range files {
		sum := sha256.Sum256(content)
		out[name] = hex.EncodeToString(sum[:])
	}
	return out
}

// Validate checks structural invariants: schema id, required fields,
// well-formed hashes and known metric kinds.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("manifest: schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Binary == "" {
		return fmt.Errorf("manifest: missing binary")
	}
	if m.ModelVersion == "" {
		return fmt.Errorf("manifest: missing model_version")
	}
	for _, name := range sortedKeys(m.Artefacts) {
		sum := m.Artefacts[name]
		if len(sum) != 64 {
			return fmt.Errorf("manifest: artefact %q: hash length %d, want 64", name, len(sum))
		}
		if _, err := hex.DecodeString(sum); err != nil {
			return fmt.Errorf("manifest: artefact %q: bad hash: %w", name, err)
		}
	}
	for _, name := range sortedKeys(m.Metrics) {
		switch m.Metrics[name].Kind {
		case "counter", "gauge", "histogram":
		default:
			return fmt.Errorf("manifest: metric %q: unknown kind %q", name, m.Metrics[name].Kind)
		}
	}
	if m.FaultDigest != "" {
		if len(m.FaultDigest) != 64 {
			return fmt.Errorf("manifest: fault digest length %d, want 64", len(m.FaultDigest))
		}
		if _, err := hex.DecodeString(m.FaultDigest); err != nil {
			return fmt.Errorf("manifest: bad fault digest: %w", err)
		}
	}
	return nil
}

// Encode renders the manifest as deterministic indented JSON (map keys
// sorted by encoding/json) with a trailing newline.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses and validates manifest bytes.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteManifest encodes m to path; a no-op when path is empty, so
// binaries can pass their -manifest flag through unconditionally.
func WriteManifest(path string, m *Manifest) error {
	if path == "" {
		return nil
	}
	b, err := m.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
