package obs

import "sort"

// Event is one per-rank timeline slice in virtual time. It is the
// neutral form shared by the recorder (internal/trace aliases its Event
// to this type) and the analyzer, so obs never imports simulator
// packages.
type Event struct {
	Rank   int
	Name   string  // call or activity name
	Kind   string  // "comm", "compute", "io"
	Region string  // profiling region active at the time
	Start  float64 // virtual seconds
	Dur    float64
	Bytes  int

	// Wait-state fields, filled for comm events by the mpi runtime.
	// Wait is how long the receiver sat blocked before its message(s)
	// arrived (late sender); Queued is how long arrived messages sat
	// unmatched before the receive was posted (late receiver). Peer is
	// the rank responsible for the largest single wait inside the call,
	// or -1 when the call never blocked.
	Wait   float64
	Queued float64
	Peer   int
}

// End returns the event's end time.
func (e Event) End() float64 { return e.Start + e.Dur }

// Timeline is a per-rank event sequence: Timeline[r] holds rank r's
// events in virtual-time order.
type Timeline [][]Event

// NP returns the number of ranks.
func (tl Timeline) NP() int { return len(tl) }

// sorted returns a copy of tl with each rank's events ordered by start
// time (stable, so equal-start events keep record order). Recorders
// append per rank in virtual-time order already; sorting defensively
// keeps the analyzer correct on hand-built or parsed timelines.
func (tl Timeline) sorted() Timeline {
	out := make(Timeline, len(tl))
	for r, evs := range tl {
		cp := append([]Event(nil), evs...)
		sort.SliceStable(cp, func(i, j int) bool { return cp[i].Start < cp[j].Start })
		out[r] = cp
	}
	return out
}
