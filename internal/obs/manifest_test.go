package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest() *Manifest {
	files := map[string][]byte{
		"fig7.csv": []byte("rank,comp,comm\n0,1,2\n"),
		"fig7.txt": []byte("Figure 7\n"),
	}
	return &Manifest{
		Schema: ManifestSchema, Binary: "repro", Artefact: "fig7",
		ModelVersion: "model/test", Platform: "vayu", Seed: 42,
		Knobs:          map[string]string{"sweep": "quick"},
		FaultSpec:      "mtbf=600,ckpt=3",
		VirtualSeconds: 123.5,
		Metrics: map[string]Metric{
			"mpi_sends_total": {Kind: "counter", Value: 17},
			"sched_job_ns":    {Kind: "histogram", Count: 2, Sum: 9, Buckets: map[string]int64{"7": 2}},
		},
		Artefacts: HashArtefacts(files),
	}
}

func TestHashArtefacts(t *testing.T) {
	content := []byte("hello")
	sum := sha256.Sum256(content)
	got := HashArtefacts(map[string][]byte{"a.txt": content})
	if got["a.txt"] != hex.EncodeToString(sum[:]) {
		t.Fatalf("hash = %s", got["a.txt"])
	}
	if HashArtefacts(nil) != nil {
		t.Fatal("empty input should hash to nil")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	b1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("Encode is not deterministic")
	}
	if !bytes.HasSuffix(b1, []byte("\n")) {
		t.Fatal("missing trailing newline")
	}
	got, err := DecodeManifest(b1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Binary != m.Binary || got.Seed != m.Seed || got.VirtualSeconds != m.VirtualSeconds {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Metrics["mpi_sends_total"].Value != 17 {
		t.Fatalf("metrics lost: %+v", got.Metrics)
	}
	if got.Artefacts["fig7.csv"] != m.Artefacts["fig7.csv"] {
		t.Fatal("artefact hashes lost")
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = "v0" }, "schema"},
		{"missing binary", func(m *Manifest) { m.Binary = "" }, "binary"},
		{"missing model", func(m *Manifest) { m.ModelVersion = "" }, "model_version"},
		{"short hash", func(m *Manifest) { m.Artefacts["fig7.csv"] = "abc" }, "hash length"},
		{"non-hex hash", func(m *Manifest) {
			m.Artefacts["fig7.csv"] = strings.Repeat("zz", 32)
		}, "bad hash"},
		{"unknown metric kind", func(m *Manifest) {
			m.Metrics["x"] = Metric{Kind: "summary"}
		}, "unknown kind"},
		{"bad fault digest", func(m *Manifest) { m.FaultDigest = "nope" }, "digest"},
	}
	for _, tc := range cases {
		m := sampleManifest()
		tc.mutate(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
		if _, encErr := m.Encode(); encErr == nil {
			t.Fatalf("%s: Encode accepted an invalid manifest", tc.name)
		}
	}
	if err := sampleManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestWriteReadManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := WriteManifest(path, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Artefact != "fig7" || m.Knobs["sweep"] != "quick" {
		t.Fatalf("read back %+v", m)
	}
	// Empty path is an explicit no-op so binaries pass -manifest through.
	if err := WriteManifest("", sampleManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing manifest should fail")
	}
}
