package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
)

// collectiveNames marks the call names the mpi runtime records for
// collective operations. Wait time inside them is attributed to the
// straggling rank rather than classified as a point-to-point late
// sender.
var collectiveNames = map[string]bool{
	"Barrier": true, "Bcast": true, "Reduce": true, "Allreduce": true,
	"Allgather": true, "Alltoall": true, "Alltoallv": true,
	"Gather": true, "Scatter": true, "Reduce_scatter": true,
	"Scan": true, "Exscan": true, "Comm_split": true,
}

// RankBreakdown is one rank's time split, the per-process view of the
// paper's Figure 7.
type RankBreakdown struct {
	Rank   int
	Comp   float64 // compute seconds
	Comm   float64 // communication seconds (includes Wait)
	IO     float64
	Wait   float64 // blocked inside comm waiting for peers
	Queued float64 // peer messages sat unmatched this long
	End    float64 // virtual end time of the rank's last event
}

// RegionWait aggregates wait states per profiling region — the
// explanatory layer under the paper's Table II comm-% numbers.
type RegionWait struct {
	Region string
	Calls  int     // comm calls in the region
	Comm   float64 // total comm seconds
	Wait   float64 // of which blocked waiting
	Queued float64
}

// WaitStats classifies blocked time Scalasca-style.
type WaitStats struct {
	LateSenderCount   int     // p2p receives that blocked
	LateSender        float64 // seconds
	LateReceiverCount int     // calls whose messages waited in the inbox
	LateReceiver      float64
	CollectiveCount   int // collective calls that blocked
	CollectiveWait    float64
	// ByStraggler[r] is the total wait time other ranks spent blocked on
	// rank r — the "who made whom wait" attribution.
	ByStraggler map[int]float64
}

// Segment is one hop of the cross-rank critical path.
type Segment struct {
	Rank       int
	Name       string
	Kind       string
	Start, End float64
}

// Dur returns the segment length.
func (s Segment) Dur() float64 { return s.End - s.Start }

// Analysis is the full result of a wait-state and critical-path pass.
type Analysis struct {
	NP         int
	End        float64 // run end: max rank end time
	Ranks      []RankBreakdown
	Regions    []RegionWait // sorted by wait descending, then name
	Waits      WaitStats
	Path       []Segment // cross-rank critical path, in time order
	PathLength float64   // sum of segment durations (== End on gap-free traces)
}

// Analyze runs the wait-state classification, per-region aggregation and
// critical-path search over a timeline.
func Analyze(tl Timeline) *Analysis {
	tl = tl.sorted()
	a := &Analysis{NP: len(tl), Waits: WaitStats{ByStraggler: map[int]float64{}}}
	regions := map[string]*RegionWait{}
	for r, evs := range tl {
		rb := RankBreakdown{Rank: r}
		for _, e := range evs {
			if end := e.End(); end > rb.End {
				rb.End = end
			}
			switch e.Kind {
			case "comm":
				rb.Comm += e.Dur
				rb.Wait += e.Wait
				rb.Queued += e.Queued
				rw := regions[e.Region]
				if rw == nil {
					rw = &RegionWait{Region: e.Region}
					regions[e.Region] = rw
				}
				rw.Calls++
				rw.Comm += e.Dur
				rw.Wait += e.Wait
				rw.Queued += e.Queued
				if e.Wait > 0 {
					if collectiveNames[e.Name] {
						a.Waits.CollectiveCount++
						a.Waits.CollectiveWait += e.Wait
					} else {
						a.Waits.LateSenderCount++
						a.Waits.LateSender += e.Wait
					}
					if e.Peer >= 0 {
						a.Waits.ByStraggler[e.Peer] += e.Wait
					}
				}
				if e.Queued > 0 {
					a.Waits.LateReceiverCount++
					a.Waits.LateReceiver += e.Queued
				}
			case "io":
				rb.IO += e.Dur
			default:
				rb.Comp += e.Dur
			}
		}
		if rb.End > a.End {
			a.End = rb.End
		}
		a.Ranks = append(a.Ranks, rb)
	}
	for _, rw := range regions {
		a.Regions = append(a.Regions, *rw)
	}
	sort.Slice(a.Regions, func(i, j int) bool {
		if a.Regions[i].Wait != a.Regions[j].Wait {
			return a.Regions[i].Wait > a.Regions[j].Wait
		}
		return a.Regions[i].Region < a.Regions[j].Region
	})
	a.Path, a.PathLength = CriticalPath(tl)
	return a
}

// CriticalPath walks the timeline backwards from the rank that finishes
// last. While an event is doing local work it stays on that rank; at a
// blocking receive (Wait > 0) the dependency that determined progress is
// the message arrival, so the walk jumps to the peer rank at the arrival
// time. The returned segments are in forward time order; the second
// result is their summed duration. On a gap-free trace it equals the
// run's end time, and on a communication-free trace the path is the
// longest rank's own timeline.
func CriticalPath(tl Timeline) ([]Segment, float64) {
	np := len(tl)
	total := 0
	rank, t := -1, 0.0
	for r, evs := range tl {
		total += len(evs)
		if n := len(evs); n > 0 {
			if end := evs[n-1].End(); end > t {
				rank, t = r, end
			}
		}
	}
	if rank < 0 {
		return nil, 0
	}
	const eps = 1e-12
	var rev []Segment
	push := func(r int, name, kind string, start, end float64) {
		if end-start > eps {
			rev = append(rev, Segment{Rank: r, Name: name, Kind: kind, Start: start, End: end})
		}
	}
	// Each iteration moves t strictly earlier or steps to an earlier
	// event; 2*total+np bounds any well-formed walk, so a malformed
	// timeline (cyclic arrival times) cannot loop forever.
	for iter := 0; t > eps && iter < 2*total+np+8; iter++ {
		evs := tl[rank]
		// Latest event on this rank starting before t.
		idx := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= t }) - 1
		if idx < 0 {
			break // untracked head of the timeline
		}
		e := evs[idx]
		segEnd := math.Min(e.End(), t)
		if e.End() < t {
			push(rank, "(untracked)", "gap", e.End(), t)
		}
		if e.Wait > 0 && e.Peer >= 0 && e.Peer != rank && e.Peer < np {
			arrival := e.Start + e.Wait
			if arrival < segEnd-eps {
				push(rank, e.Name, e.Kind, arrival, segEnd)
				rank, t = e.Peer, arrival
				continue
			}
		}
		push(rank, e.Name, e.Kind, e.Start, segEnd)
		t = e.Start
	}
	var length float64
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	for _, s := range rev {
		length += s.Dur()
	}
	return rev, length
}

// FoldedStacks renders the timeline as folded flamegraph stacks
// ("frame;frame value" lines, value in integer microseconds), one stack
// per (rank, region, activity). Output is deterministic: ranks ascending,
// then region and name in first-appearance order of the rank's timeline.
func FoldedStacks(tl Timeline) []byte {
	var buf bytes.Buffer
	for r, evs := range tl {
		type key struct{ region, name string }
		var order []key
		sums := map[key]float64{}
		for _, e := range evs {
			k := key{e.Region, e.Name}
			if _, ok := sums[k]; !ok {
				order = append(order, k)
			}
			sums[k] += e.Dur
		}
		for _, k := range order {
			us := int64(math.Round(sums[k] * 1e6))
			if us <= 0 {
				continue
			}
			if k.region != "" {
				fmt.Fprintf(&buf, "rank %d;%s;%s %d\n", r, k.region, k.name, us)
			} else {
				fmt.Fprintf(&buf, "rank %d;%s %d\n", r, k.name, us)
			}
		}
	}
	return buf.Bytes()
}
