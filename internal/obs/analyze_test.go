package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// lateSenderTimeline is a hand-built 4-rank scenario with exact binary
// float times, so every analyzer sum is exact:
//
//   - rank 0 computes until t=4 and only then sends to ranks 1..3, which
//     posted their receives at t=1 — three late-sender waits all
//     attributable to rank 0 (3.5 + 4 + 4.5 = 12 s);
//   - an Allreduce where rank 3 arrives last (t=5.75) — collective wait
//     on ranks 0..2 (0.25 + 1 + 0.5 = 1.75 s) attributed to rank 3;
//   - a final receive on rank 3 whose message sat queued 0.5 s — one
//     late-receiver state.
func lateSenderTimeline() Timeline {
	ev := func(rank int, name, kind, region string, start, dur, wait, queued float64, peer int) Event {
		return Event{Rank: rank, Name: name, Kind: kind, Region: region,
			Start: start, Dur: dur, Wait: wait, Queued: queued, Peer: peer}
	}
	return Timeline{
		0: {
			ev(0, "step", "compute", "setup", 0, 4, 0, 0, -1),
			ev(0, "Send", "comm", "exchange", 4, 0.5, 0, 0, -1),
			ev(0, "Send", "comm", "exchange", 4.5, 0.5, 0, 0, -1),
			ev(0, "Send", "comm", "exchange", 5, 0.5, 0, 0, -1),
			ev(0, "Allreduce", "comm", "solve", 5.5, 1, 0.25, 0, 3),
		},
		1: {
			ev(1, "step", "compute", "setup", 0, 1, 0, 0, -1),
			ev(1, "Recv", "comm", "exchange", 1, 3.75, 3.5, 0, 0),
			ev(1, "Allreduce", "comm", "solve", 4.75, 1.75, 1, 0, 3),
		},
		2: {
			ev(2, "step", "compute", "setup", 0, 1, 0, 0, -1),
			ev(2, "Recv", "comm", "exchange", 1, 4.25, 4, 0, 0),
			ev(2, "Allreduce", "comm", "solve", 5.25, 1.25, 0.5, 0, 3),
		},
		3: {
			ev(3, "step", "compute", "setup", 0, 1, 0, 0, -1),
			ev(3, "Recv", "comm", "exchange", 1, 4.75, 4.5, 0, 0),
			ev(3, "Allreduce", "comm", "solve", 5.75, 0.75, 0, 0, -1),
			ev(3, "Recv", "comm", "drain", 6.5, 0.25, 0, 0.5, -1),
		},
	}
}

func TestAnalyzeLateSenderGolden(t *testing.T) {
	a := Analyze(lateSenderTimeline())
	if a.NP != 4 {
		t.Fatalf("NP = %d", a.NP)
	}
	if !approx(a.End, 6.75) {
		t.Fatalf("End = %v, want 6.75", a.End)
	}

	w := a.Waits
	if w.LateSenderCount != 3 || !approx(w.LateSender, 12) {
		t.Fatalf("late sender: count=%d sum=%v, want 3/12", w.LateSenderCount, w.LateSender)
	}
	if w.CollectiveCount != 3 || !approx(w.CollectiveWait, 1.75) {
		t.Fatalf("collective: count=%d sum=%v, want 3/1.75", w.CollectiveCount, w.CollectiveWait)
	}
	if w.LateReceiverCount != 1 || !approx(w.LateReceiver, 0.5) {
		t.Fatalf("late receiver: count=%d sum=%v, want 1/0.5", w.LateReceiverCount, w.LateReceiver)
	}
	if len(w.ByStraggler) != 2 || !approx(w.ByStraggler[0], 12) || !approx(w.ByStraggler[3], 1.75) {
		t.Fatalf("straggler attribution = %v, want {0:12, 3:1.75}", w.ByStraggler)
	}

	// Per-rank breakdown: rank 1 computes 1 s, spends 5.5 s in comm of
	// which 4.5 s blocked.
	r1 := a.Ranks[1]
	if !approx(r1.Comp, 1) || !approx(r1.Comm, 5.5) || !approx(r1.Wait, 4.5) {
		t.Fatalf("rank 1 breakdown = %+v", r1)
	}

	// Golden region-wait table, sorted by wait descending.
	type row struct {
		region             string
		calls              int
		comm, wait, queued float64
	}
	want := []row{
		{"exchange", 6, 14.25, 12, 0},
		{"solve", 4, 4.75, 1.75, 0},
		{"drain", 1, 0.25, 0, 0.5},
	}
	if len(a.Regions) != len(want) {
		t.Fatalf("regions = %+v", a.Regions)
	}
	for i, wr := range want {
		g := a.Regions[i]
		if g.Region != wr.region || g.Calls != wr.calls ||
			!approx(g.Comm, wr.comm) || !approx(g.Wait, wr.wait) || !approx(g.Queued, wr.queued) {
			t.Fatalf("region[%d] = %+v, want %+v", i, g, wr)
		}
	}
}

func TestCriticalPathHopsToLateSender(t *testing.T) {
	a := Analyze(lateSenderTimeline())
	// The trace is gap-free, so the path spans the whole run.
	if !approx(a.PathLength, a.End) {
		t.Fatalf("path length %v != end %v", a.PathLength, a.End)
	}
	if len(a.Path) == 0 {
		t.Fatal("empty path")
	}
	// The run ends on rank 3, but the root cause is rank 0's long compute
	// phase: the backwards walk must hop across the late-sender receive.
	first, last := a.Path[0], a.Path[len(a.Path)-1]
	if first.Rank != 0 || first.Name != "step" {
		t.Fatalf("path starts at %+v, want rank 0 compute", first)
	}
	if last.Rank != 3 || last.Name != "Recv" || !approx(last.End, 6.75) {
		t.Fatalf("path ends at %+v, want rank 3 final Recv", last)
	}
	hops := map[int]bool{}
	for i, s := range a.Path {
		hops[s.Rank] = true
		if i > 0 && s.Start+1e-9 < a.Path[i-1].End {
			t.Fatalf("path segments overlap: %+v then %+v", a.Path[i-1], s)
		}
	}
	if !hops[0] || !hops[3] {
		t.Fatalf("path visits ranks %v, want both 0 and 3", hops)
	}
}

// On an embarrassingly parallel trace (no communication at all) the
// critical path is just the longest rank's own timeline.
func TestCriticalPathEmbarrassinglyParallel(t *testing.T) {
	tl := Timeline{}
	durs := []float64{3.5, 7.25, 2, 5}
	maxEnd := 0.0
	for r, d := range durs {
		tl = append(tl, []Event{
			{Rank: r, Name: "step", Kind: "compute", Start: 0, Dur: d / 2, Peer: -1},
			{Rank: r, Name: "step", Kind: "compute", Start: d / 2, Dur: d / 2, Peer: -1},
		})
		if d > maxEnd {
			maxEnd = d
		}
	}
	a := Analyze(tl)
	if !approx(a.PathLength, maxEnd) {
		t.Fatalf("path length = %v, want max per-rank virtual time %v", a.PathLength, maxEnd)
	}
	for _, s := range a.Path {
		if s.Rank != 1 {
			t.Fatalf("EP path left the slowest rank: %+v", s)
		}
	}
	if a.Waits.LateSenderCount != 0 || a.Waits.CollectiveCount != 0 {
		t.Fatalf("EP trace classified waits: %+v", a.Waits)
	}
}

func TestCriticalPathEmptyTimeline(t *testing.T) {
	if path, length := CriticalPath(Timeline{nil, nil}); path != nil || length != 0 {
		t.Fatalf("empty timeline: path=%v length=%v", path, length)
	}
}

// randomTimeline builds a well-formed random timeline: per rank a
// sequence of non-overlapping events where every comm event's Wait and
// Queued fit inside its duration.
func randomTimeline(rng *rand.Rand) Timeline {
	np := 1 + rng.Intn(6)
	tl := make(Timeline, np)
	for r := 0; r < np; r++ {
		clock := 0.0
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			clock += rng.Float64() // gap: untracked time is legal
			dur := rng.Float64() * 2
			e := Event{Rank: r, Start: clock, Dur: dur, Peer: -1, Name: "step", Kind: "compute"}
			switch rng.Intn(3) {
			case 0:
				e.Kind, e.Name = "comm", "Recv"
				e.Wait = dur * rng.Float64()
				e.Queued = rng.Float64()
				if e.Wait > 0 && rng.Intn(2) == 0 {
					e.Peer = rng.Intn(np)
				}
				if rng.Intn(4) == 0 {
					e.Name = "Allreduce"
				}
			case 1:
				e.Kind, e.Name = "io", "Write"
			}
			tl[r] = append(tl[r], e)
			clock += dur
		}
	}
	return tl
}

// Property: attributed wait can never exceed the total communication
// time — per rank, per class, and per straggler.
func TestQuickWaitNeverExceedsCommTime(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng)
		a := Analyze(tl)

		var totalComm, totalWait, byStraggler float64
		for _, rb := range a.Ranks {
			if rb.Wait > rb.Comm+1e-9 {
				t.Logf("seed %d: rank %d wait %v > comm %v", seed, rb.Rank, rb.Wait, rb.Comm)
				return false
			}
			totalComm += rb.Comm
			totalWait += rb.Wait
		}
		classified := a.Waits.LateSender + a.Waits.CollectiveWait
		if classified > totalComm+1e-9 || !approx(classified, totalWait) {
			t.Logf("seed %d: classified %v, total wait %v, comm %v", seed, classified, totalWait, totalComm)
			return false
		}
		for r, w := range a.Waits.ByStraggler {
			byStraggler += w
			if r < 0 || r >= a.NP {
				t.Logf("seed %d: straggler rank %d out of range", seed, r)
				return false
			}
		}
		if byStraggler > classified+1e-9 {
			t.Logf("seed %d: straggler sum %v > classified wait %v", seed, byStraggler, classified)
			return false
		}
		// Region table partitions the same comm time.
		var regionComm float64
		for _, rw := range a.Regions {
			regionComm += rw.Comm
		}
		return approx(regionComm, totalComm)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path never overlaps itself and never exceeds
// the run's end time (it can be shorter when the trace has gaps).
func TestQuickCriticalPathBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng)
		a := Analyze(tl)
		if a.PathLength > a.End+1e-9 {
			t.Logf("seed %d: path %v > end %v", seed, a.PathLength, a.End)
			return false
		}
		for i := 1; i < len(a.Path); i++ {
			if a.Path[i].Start+1e-9 < a.Path[i-1].End {
				t.Logf("seed %d: overlapping segments %+v / %+v", seed, a.Path[i-1], a.Path[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldedStacks(t *testing.T) {
	out := string(FoldedStacks(lateSenderTimeline()))
	want := []string{
		"rank 0;setup;step 4000000\n",
		"rank 0;exchange;Send 1500000\n", // three sends folded into one stack
		"rank 1;exchange;Recv 3750000\n",
		"rank 3;drain;Recv 250000\n",
	}
	for _, line := range want {
		if !strings.Contains(out, line) {
			t.Fatalf("folded stacks missing %q:\n%s", line, out)
		}
	}
	if out != string(FoldedStacks(lateSenderTimeline())) {
		t.Fatal("folded stacks not deterministic")
	}
}
