package perfbench

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// hist builds a history of single-benchmark snapshots ("b") plus a final
// snapshot at current, all in one environment.
func hist(prior []float64, current float64) []Snapshot {
	var h []Snapshot
	for _, v := range prior {
		h = append(h, snap("", testEnv, map[string]float64{"b": v}))
	}
	return append(h, snap("", testEnv, map[string]float64{"b": current}))
}

// TestDetectorGoldenVerdicts pins the detector's behaviour on hand-built
// histories: the contract the verify gate and CI report depend on.
func TestDetectorGoldenVerdicts(t *testing.T) {
	d := DefaultDetector()
	cases := []struct {
		name    string
		prior   []float64
		current float64
		want    Verdict
	}{
		// A flat history then a 3x jump: the injected-regression case.
		{"clear regression", []float64{100, 101, 99, 100, 102, 98}, 300, VerdictRegressed},
		// A flat history then a halving: the optimisation case.
		{"clear improvement", []float64{100, 101, 99, 100, 102, 98}, 50, VerdictImproved},
		// Noisy history (~20% spread) and a value inside the spread: the
		// MAD bar keeps a within-noise excursion stable even though it
		// exceeds the 10% tolerance floor.
		{"noisy stable", []float64{80, 120, 95, 110, 85, 115}, 122, VerdictStable},
		// Tiny drift under the tolerance floor is always stable.
		{"under tolerance", []float64{100, 100, 100, 100}, 108, VerdictStable},
		// A single prior entry: MAD is zero and the tolerance floor
		// doubles (no noise estimate from one point), so the widened
		// tolerance rule decides.
		{"single entry regression", []float64{100}, 150, VerdictRegressed},
		{"single entry stable", []float64{100}, 105, VerdictStable},
		{"single entry improvement", []float64{100}, 60, VerdictImproved},
		// 12% on one prior point is inside the widened (2x) floor — the
		// fresh-history case that must not flap the verify gate.
		{"short window widened", []float64{100}, 112, VerdictStable},
		// A real jump still clears the widened floor on two points.
		{"short window regression", []float64{100, 102}, 130, VerdictRegressed},
		// No prior entries at all.
		{"no history", nil, 100, VerdictNoHistory},
		// Identical history (MAD 0) beyond tolerance still trips.
		{"flat history regression", []float64{100, 100, 100}, 120, VerdictRegressed},
	}
	for _, c := range cases {
		if got := d.Classify(c.prior, c.current); got != c.want {
			t.Errorf("%s: Classify(%v, %v) = %s, want %s", c.name, c.prior, c.current, got, c.want)
		}
	}
}

func TestDetectorWindow(t *testing.T) {
	d := DefaultDetector()
	d.Window = 4
	// Ancient slow history followed by a fast recent window: only the
	// window counts, so returning to the ancient speed is a regression.
	prior := []float64{300, 300, 300, 300, 100, 100, 100, 100}
	if got := d.Classify(prior, 300); got != VerdictRegressed {
		t.Fatalf("windowed verdict = %s, want regressed", got)
	}
}

func TestTrendsGolden(t *testing.T) {
	d := DefaultDetector()
	h := []Snapshot{
		snap("", testEnv, map[string]float64{"a": 100, "b": 50}),
		snap("", testEnv, map[string]float64{"a": 101, "b": 50}),
		snap("", testEnv, map[string]float64{"a": 320, "b": 51}),
	}
	trends := d.Trends(h)
	if len(trends) != 2 {
		t.Fatalf("got %d trends, want 2", len(trends))
	}
	a, b := trends[0], trends[1]
	if a.Name != "a" || b.Name != "b" {
		t.Fatalf("trend order %s,%s, want a,b", a.Name, b.Name)
	}
	if a.Verdict != VerdictRegressed || b.Verdict != VerdictStable {
		t.Fatalf("verdicts %s/%s, want regressed/stable", a.Verdict, b.Verdict)
	}
	if a.Base != 100 || a.Prev != 101 || a.Current != 320 || a.Runs != 2 {
		t.Fatalf("trend a = %+v", a)
	}
	if got := len(Regressions(trends)); got != 1 {
		t.Fatalf("Regressions count %d, want 1", got)
	}
}

func TestTrendsSkipsForeignEnvironments(t *testing.T) {
	d := DefaultDetector()
	other := Env{GoVersion: "go1.98", GOMAXPROCS: 2, NumCPU: 2}
	h := []Snapshot{
		snap("", other, map[string]float64{"a": 10}), // 10x faster machine
		snap("", testEnv, map[string]float64{"a": 100}),
	}
	trends := d.Trends(h)
	if trends[0].Verdict != VerdictNoHistory {
		t.Fatalf("cross-environment verdict = %s, want no-history", trends[0].Verdict)
	}
}

// TestQuickTrendsReorderInvariant: verdicts are a function of benchmark
// *names*, never of their position inside a snapshot — shuffling every
// snapshot's benchmark slice must leave the trend table unchanged.
func TestQuickTrendsReorderInvariant(t *testing.T) {
	d := DefaultDetector()
	f := func(seed int64, runs uint8, vals []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(runs)%6 + 2
		names := []string{"a", "b", "c", "d"}
		var h []Snapshot
		k := 0
		for i := 0; i < n; i++ {
			ns := map[string]float64{}
			for _, name := range names {
				v := 100.0
				if len(vals) > 0 {
					v = 50 + float64(vals[k%len(vals)])
					k++
				}
				ns[name] = v
			}
			h = append(h, snap(fmt.Sprintf("t%d", i), testEnv, ns))
		}
		want := d.Trends(h)
		for i := range h {
			rng.Shuffle(len(h[i].Benchmarks), func(a, b int) {
				h[i].Benchmarks[a], h[i].Benchmarks[b] = h[i].Benchmarks[b], h[i].Benchmarks[a]
			})
		}
		return reflect.DeepEqual(want, d.Trends(h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWithin(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{100, 100, 0, true},
		{100, 100.0001, 0, false}, // tol 0 demands exactness
		{100, 104, 0.05, true},
		{100, 106, 0.05, false},
		{0, 0, 0, true},
		{-100, -104, 0.05, true},
		{100, 300, 0.25, false},
	}
	for _, c := range cases {
		if got := Within(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Within(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
	// Symmetry.
	if Within(100, 130, 0.25) != Within(130, 100, 0.25) {
		t.Error("Within is not symmetric")
	}
}

func TestCheckNsBudgets(t *testing.T) {
	fast := Bench{Name: "fast", NsBudget: 1e9, Op: func() {}}
	ungated := Bench{Name: "ungated", Op: func() {}}
	slow := Bench{Name: "slow", NsBudget: 1, Op: func() {
		sink = make([]byte, 1<<12)
	}}
	measured, violations := CheckNsBudgets([]Bench{fast, ungated, slow}, 0.25)
	if _, ok := measured["ungated"]; ok {
		t.Fatal("ungated benchmark was measured")
	}
	if len(violations) != 1 || violations[0].Name != "slow" {
		t.Fatalf("violations = %+v, want exactly slow", violations)
	}
	if violations[0].Error() == "" {
		t.Fatal("empty violation message")
	}
}
