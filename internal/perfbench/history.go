package perfbench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file is the bench-history layer of the continuous-evaluation
// plane: `make bench` appends one Snapshot per run to an append-only
// JSONL file (results/bench/history.jsonl) instead of overwriting a
// single report, and the readers here extract per-benchmark series the
// statistical change detector (detect.go) classifies. Snapshots carry
// an Env fingerprint so measurements taken on different machines or
// toolchains never get compared against each other.

// Env identifies the machine and toolchain a snapshot was measured on.
// Timing comparisons are only meaningful within one fingerprint.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// GitRev is the abbreviated commit the suite ran at. Provenance
	// only: it is deliberately NOT part of the fingerprint, so the
	// history accumulates a cross-commit trend on one machine.
	GitRev string `json:"git_rev,omitempty"`
}

// Fingerprint collapses the comparability-relevant fields into one
// string (commit excluded: trends span commits by design).
func (e Env) Fingerprint() string {
	return fmt.Sprintf("%s/gomaxprocs=%d/cpus=%d", e.GoVersion, e.GOMAXPROCS, e.NumCPU)
}

// Point is one benchmark's measurement inside a history snapshot.
type Point struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is one line of the bench history: a full suite run with its
// environment provenance. Time is caller-supplied (RFC3339) so this
// package stays free of wall-clock sources.
type Snapshot struct {
	Time         string  `json:"time,omitempty"`
	ModelVersion string  `json:"model_version"`
	Env          Env     `json:"env"`
	Benchmarks   []Point `json:"benchmarks"`
}

// SnapshotFromStats builds a Snapshot from Measure results keyed by
// benchmark name, sorted for deterministic bytes.
func SnapshotFromStats(modelVersion, when string, env Env, stats map[string]Stats) Snapshot {
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	points := make([]Point, len(names))
	for i, name := range names {
		s := stats[name]
		points[i] = Point{Name: name, N: s.N, NsPerOp: s.NsPerOp,
			BytesPerOp: s.BytesPerOp, AllocsPerOp: s.AllocsPerOp}
	}
	return Snapshot{Time: when, ModelVersion: modelVersion, Env: env, Benchmarks: points}
}

// AppendHistory appends one snapshot as a single JSON line, creating the
// file and its directory on first use. The file is append-only by
// contract: past measurements are never rewritten, so the trend a
// reader extracts can only grow.
func AppendHistory(path string, s Snapshot) error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("perfbench: refusing to append an empty snapshot to %s", path)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("perfbench: history dir: %w", err)
		}
	}
	line, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("perfbench: encode snapshot: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("perfbench: open history: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("perfbench: append history: %w", werr)
	}
	return nil
}

// ReadHistory loads every snapshot in file order. A missing file returns
// (nil, nil) so the first bench run needs no history; a malformed line
// is an error naming its line number, because silently dropping history
// would skew every verdict computed from it.
func ReadHistory(path string) ([]Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perfbench: open history: %w", err)
	}
	defer f.Close()
	var out []Snapshot
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("perfbench: %s:%d: %w", path, lineno, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfbench: read history: %w", err)
	}
	return out, nil
}

// Series extracts one benchmark's ns/op values across the snapshots, in
// history order, restricted to snapshots matching the given environment
// fingerprint ("" matches everything). Snapshots that do not contain
// the benchmark are skipped, so a suite member added later starts its
// own series without distorting older ones.
func Series(history []Snapshot, name, fingerprint string) []float64 {
	var vals []float64
	for _, s := range history {
		if fingerprint != "" && s.Env.Fingerprint() != fingerprint {
			continue
		}
		for _, p := range s.Benchmarks {
			if p.Name == name {
				vals = append(vals, p.NsPerOp)
				break
			}
		}
	}
	return vals
}

// BenchNames returns the union of benchmark names across the snapshots,
// sorted — the deterministic iteration order every report uses.
func BenchNames(history []Snapshot) []string {
	seen := map[string]bool{}
	for _, s := range history {
		for _, p := range s.Benchmarks {
			seen[p.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
