package perfbench

import (
	"path/filepath"
	"reflect"
	"testing"
)

// sink defeats dead-allocation elimination in the budget tests.
var sink []byte

func TestCheckBudgetsFlagsViolation(t *testing.T) {
	benches := []Bench{
		{Name: "hot", Op: func() {}, AllocBudget: 1},
		{Name: "leaky", Op: func() { sink = make([]byte, 1<<16) }, AllocBudget: 0.5},
		{Name: "ungated", Op: func() { sink = make([]byte, 1<<16) }},
	}
	measured, violations := CheckBudgets(benches, 3)
	if _, ok := measured["ungated"]; ok {
		t.Error("ungated benchmark (budget 0) was measured by the gate")
	}
	if got := measured["hot"]; got != 0 {
		t.Errorf("no-op benchmark measured %v allocs/run, want 0", got)
	}
	if len(violations) != 1 || violations[0].Name != "leaky" {
		t.Fatalf("violations = %+v, want exactly [leaky]", violations)
	}
	if violations[0].Error() == "" {
		t.Error("violation renders empty message")
	}
}

func TestReportRoundTripAndBaselineCarry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// A missing report is not an error: the first run has no baseline.
	if r, err := ReadReport(path); r != nil || err != nil {
		t.Fatalf("missing report: got (%v, %v), want (nil, nil)", r, err)
	}

	// First refresh: no prev, so entries have no Before.
	first := NewReport("v1", []Entry{
		{Name: "b", After: &Stats{N: 1, NsPerOp: 200}},
		{Name: "a", After: &Stats{N: 1, NsPerOp: 100}},
	}, nil)
	if first.Benchmarks[0].Name != "a" || first.Benchmarks[1].Name != "b" {
		t.Fatalf("entries not sorted by name: %+v", first.Benchmarks)
	}
	if err := WriteReport(path, first); err != nil {
		t.Fatal(err)
	}
	prev, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prev, first) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", prev, first)
	}

	// Second refresh: the previous After becomes this run's Before.
	second := NewReport("v1", []Entry{
		{Name: "a", After: &Stats{N: 2, NsPerOp: 50}},
	}, prev)
	if second.Benchmarks[0].Before == nil || second.Benchmarks[0].Before.NsPerOp != 100 {
		t.Fatalf("baseline not carried from previous After: %+v", second.Benchmarks[0])
	}

	// Third refresh: an existing Before survives verbatim — the original
	// baseline is never overwritten by intermediate runs.
	third := NewReport("v1", []Entry{
		{Name: "a", After: &Stats{N: 3, NsPerOp: 25}},
	}, second)
	if third.Benchmarks[0].Before == nil || third.Benchmarks[0].Before.NsPerOp != 100 {
		t.Fatalf("original baseline overwritten: %+v", third.Benchmarks[0])
	}

	if sp := third.Benchmarks[0].Speedup(func(s Stats) float64 { return s.NsPerOp }); sp != 4 {
		t.Errorf("speedup = %v, want 4", sp)
	}
	if sp := (Entry{After: &Stats{NsPerOp: 1}}).Speedup(func(s Stats) float64 { return s.NsPerOp }); sp != 0 {
		t.Errorf("speedup without baseline = %v, want 0", sp)
	}
}

// TestSuiteShape pins the committed suite: every budgeted benchmark
// carries a positive budget and names are unique (duplicate names would
// silently collapse in the report map).
func TestSuiteShape(t *testing.T) {
	seen := map[string]bool{}
	budgeted := 0
	for _, b := range Suite() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Op == nil {
			t.Errorf("benchmark %q has no Op", b.Name)
		}
		if b.AllocBudget > 0 {
			budgeted++
		}
	}
	if budgeted < 4 {
		t.Errorf("only %d budgeted benchmarks, want the 4 message-plane gates", budgeted)
	}
}
