// Package perfbench is the benchmark-regression harness of the
// reproduction: a fixed suite of runtime microbenchmarks (point-to-point
// throughput, allreduce, world churn) plus wrappers around the figure
// regenerations of bench_test.go, measured with testing.Benchmark and
// gated by committed allocation budgets via testing.AllocsPerRun.
//
// `make bench` runs the full suite and refreshes BENCH_PR3.json (ns/op,
// B/op, allocs/op, with the pre-optimisation baseline carried along as
// "before"); `make verify` runs the cheap smoke mode, which only checks
// the allocation budgets, so an accidental allocation regression on the
// message hot path fails the gate before it lands.
package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
)

// Stats is one benchmark measurement.
type Stats struct {
	N           int     `json:"n"`             // iterations measured
	NsPerOp     float64 `json:"ns_per_op"`     // wall nanoseconds per op
	AllocsPerOp float64 `json:"allocs_per_op"` // heap allocations per op
	BytesPerOp  float64 `json:"bytes_per_op"`  // heap bytes per op
}

// Entry is one benchmark's report line: the current measurement plus the
// committed pre-optimisation baseline it is compared against.
type Entry struct {
	Name string `json:"name"`
	// Before is the baseline measurement (the unpooled message plane),
	// carried forward verbatim across refreshes.
	Before *Stats `json:"before,omitempty"`
	// After is the current measurement.
	After *Stats `json:"after,omitempty"`
	// AllocBudget is the committed allocs-per-run ceiling (0 = ungated).
	AllocBudget float64 `json:"alloc_budget,omitempty"`
	// AllocsPerRun is the testing.AllocsPerRun measurement the budget is
	// checked against.
	AllocsPerRun float64 `json:"allocs_per_run,omitempty"`
	// NsBudget is the committed ns/op ceiling (0 = ungated); violations
	// are judged with the explicit tolerance of CheckNsBudgets.
	NsBudget float64 `json:"ns_budget,omitempty"`
}

// Report is the on-disk BENCH_*.json envelope.
type Report struct {
	ModelVersion string  `json:"model_version"`
	GoVersion    string  `json:"go_version"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Note         string  `json:"note,omitempty"`
	Benchmarks   []Entry `json:"benchmarks"`
}

// Bench is one suite member: a single-iteration operation plus its
// allocation budget.
type Bench struct {
	Name string
	// Op runs one iteration; it must be deterministic and panic on error.
	Op func()
	// AllocBudget caps testing.AllocsPerRun(runs, Op); 0 exempts the
	// benchmark from the allocation gate (figure regenerations, whose
	// allocation count is dominated by reporting, not the message plane).
	AllocBudget float64
	// NsBudget caps the wall nanoseconds per op measured by
	// testing.Benchmark; 0 exempts the benchmark from the timing gate.
	// Checked by CheckNsBudgets with an explicit relative tolerance.
	NsBudget float64
}

// Measure times b.Op with the standard benchmark machinery.
func Measure(b Bench) Stats {
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			b.Op()
		}
	})
	return Stats{
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// AllocsPerRun measures b.Op's allocations per run (averaged over runs
// invocations after one warmup, GOMAXPROCS pinned to 1 by the testing
// package).
func AllocsPerRun(b Bench, runs int) float64 {
	if runs < 1 {
		runs = 1
	}
	return testing.AllocsPerRun(runs, b.Op)
}

// BudgetViolation describes one benchmark exceeding its allocation budget.
type BudgetViolation struct {
	Name     string
	Measured float64
	Budget   float64
}

// Error formats the violation.
func (v BudgetViolation) Error() string {
	return fmt.Sprintf("perfbench: %s allocated %.0f/run, budget %.0f", v.Name, v.Measured, v.Budget)
}

// CheckBudgets measures every budgeted benchmark with testing.AllocsPerRun
// and returns the measurements and any violations.
func CheckBudgets(benches []Bench, runs int) (map[string]float64, []BudgetViolation) {
	measured := make(map[string]float64)
	var violations []BudgetViolation
	for _, b := range benches {
		if b.AllocBudget <= 0 {
			continue
		}
		got := AllocsPerRun(b, runs)
		measured[b.Name] = got
		if got > b.AllocBudget {
			violations = append(violations, BudgetViolation{Name: b.Name, Measured: got, Budget: b.AllocBudget})
		}
	}
	return measured, violations
}

// NewReport assembles a report from measurements, carrying each entry's
// baseline over from prev: an entry's Before is the previous Before when
// set (the original unpooled baseline survives refreshes), otherwise the
// previous After (the first refresh after a baseline-only run).
func NewReport(modelVersion string, entries []Entry, prev *Report) *Report {
	var base map[string]Entry
	if prev != nil {
		base = make(map[string]Entry, len(prev.Benchmarks))
		for _, e := range prev.Benchmarks {
			base[e.Name] = e
		}
	}
	for i := range entries {
		if p, ok := base[entries[i].Name]; ok {
			switch {
			case p.Before != nil:
				entries[i].Before = p.Before
			case p.After != nil:
				entries[i].Before = p.After
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return &Report{
		ModelVersion: modelVersion,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Benchmarks:   entries,
	}
}

// ReadReport loads a report; a missing file returns (nil, nil) so the
// first run needs no baseline.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perfbench: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("perfbench: parse %s: %w", path, err)
	}
	return &r, nil
}

// WriteReport stores the report as deterministic, human-diffable JSON.
func WriteReport(path string, r *Report) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perfbench: encode report: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Speedup returns the before/after ratio for the given field accessor
// (>1 means the current code is better), or 0 when no baseline exists.
func (e Entry) Speedup(field func(Stats) float64) float64 {
	if e.Before == nil || e.After == nil {
		return 0
	}
	a := field(*e.After)
	if a == 0 {
		return 0
	}
	return field(*e.Before) / a
}
