package perfbench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func snap(when string, env Env, ns map[string]float64) Snapshot {
	stats := make(map[string]Stats, len(ns))
	for name, v := range ns {
		stats[name] = Stats{N: 10, NsPerOp: v, BytesPerOp: 64, AllocsPerOp: 2}
	}
	return SnapshotFromStats("test-model", when, env, stats)
}

var testEnv = Env{GoVersion: "go1.99", GOMAXPROCS: 8, NumCPU: 8, GitRev: "abc123"}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "history.jsonl")
	if got, err := ReadHistory(path); err != nil || got != nil {
		t.Fatalf("missing history: got %v, %v; want nil, nil", got, err)
	}
	s1 := snap("2026-01-01T00:00:00Z", testEnv, map[string]float64{"a": 100, "b": 200})
	s2 := snap("2026-01-08T00:00:00Z", testEnv, map[string]float64{"a": 110, "b": 190})
	if err := AppendHistory(path, s1); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, s2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Snapshot{s1, s2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestHistoryAppendOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	s := snap("", testEnv, map[string]float64{"a": 1})
	for i := 0; i < 3; i++ {
		if err := AppendHistory(path, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("3 appends read back %d snapshots", len(got))
	}
}

func TestHistoryRejectsEmptySnapshot(t *testing.T) {
	if err := AppendHistory(filepath.Join(t.TempDir(), "h.jsonl"), Snapshot{}); err == nil {
		t.Fatal("empty snapshot appended without error")
	}
}

func TestHistoryMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	if err := os.WriteFile(path, []byte("{\"model_version\":\"x\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(path); err == nil {
		t.Fatal("malformed line read without error")
	}
}

func TestSnapshotFromStatsSorted(t *testing.T) {
	s := snap("", testEnv, map[string]float64{"z": 1, "a": 2, "m": 3})
	var names []string
	for _, p := range s.Benchmarks {
		names = append(names, p.Name)
	}
	if want := []string{"a", "m", "z"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("benchmarks not sorted: %v", names)
	}
}

func TestSeriesEnvFiltering(t *testing.T) {
	other := Env{GoVersion: "go1.98", GOMAXPROCS: 4, NumCPU: 4}
	history := []Snapshot{
		snap("", testEnv, map[string]float64{"a": 100}),
		snap("", other, map[string]float64{"a": 900}), // different machine
		snap("", testEnv, map[string]float64{"a": 110}),
		snap("", testEnv, map[string]float64{"b": 7}), // a absent
	}
	got := Series(history, "a", testEnv.Fingerprint())
	if want := []float64{100, 110}; !reflect.DeepEqual(got, want) {
		t.Fatalf("env-filtered series = %v, want %v", got, want)
	}
	if got := Series(history, "a", ""); len(got) != 3 {
		t.Fatalf("unfiltered series has %d points, want 3", len(got))
	}
}

func TestFingerprintIgnoresGitRev(t *testing.T) {
	a, b := testEnv, testEnv
	b.GitRev = "def456"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint must not depend on the commit")
	}
	b.GOMAXPROCS = 1
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint must depend on GOMAXPROCS")
	}
}

func TestBenchNames(t *testing.T) {
	history := []Snapshot{
		snap("", testEnv, map[string]float64{"z": 1, "a": 2}),
		snap("", testEnv, map[string]float64{"m": 3}),
	}
	if got, want := BenchNames(history), []string{"a", "m", "z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("BenchNames = %v, want %v", got, want)
	}
}
