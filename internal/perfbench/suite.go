package perfbench

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/osu"
	"repro/internal/platform"
)

// Suite dimensions. The message counts are large enough that per-message
// costs dominate the fixed per-run cost (world construction, rank
// goroutines), so allocs/op tracks the message plane, not the harness.
const (
	p2pMsgs     = 256  // messages per P2P op
	p2pLen      = 1024 // float64 elements per message (8 KiB)
	allredIters = 32   // allreduces per op
	allredLen   = 256  // float64 elements per allreduce
	allredRanks = 8
	churnRanks  = 64
)

// Allocation budgets (allocs per run, measured by testing.AllocsPerRun).
// Committed with ~2x headroom over the pooled message plane's steady
// state; the pre-pooling code exceeds every one of them by an order of
// magnitude, so a regression that reintroduces per-message allocation
// fails `make verify`.
const (
	budgetP2P       = 64   // measured 26 pooled; 793 pre-pooling
	budgetAllreduce = 160  // measured 63 pooled; 2623 pre-pooling
	budgetChurn     = 2200 // measured ~1095 with pooled inboxes and slab
	// comms; ~1620 when every world built its inboxes and per-rank
	// Comm/rankState records from scratch. A regression that drops the
	// inbox pool or the Run slabs lands back above this line.
	budgetOSU = 128 // measured 46 pooled; 240 pre-pooling
)

// world builds an np-rank world on p, one rank per node when spread is
// set (the OSU two-node configuration).
func world(p *platform.Platform, np int, spread bool) *mpi.World {
	spec := cluster.Spec{NP: np}
	if spread {
		spec.Nodes = np
		spec.Policy = cluster.Spread
	}
	pl, err := cluster.Place(p, spec)
	if err != nil {
		panic(fmt.Sprintf("perfbench: place: %v", err))
	}
	w, err := mpi.NewWorld(p, pl)
	if err != nil {
		panic(fmt.Sprintf("perfbench: world: %v", err))
	}
	return w
}

// Suite returns the benchmark suite. Worlds are created lazily and reused
// across iterations (a World is reusable: each Run builds fresh per-rank
// state), so steady-state per-message cost is what gets measured.
func Suite() []Bench {
	var (
		once     sync.Once
		p2pW     *mpi.World
		allredW  *mpi.World
		payload  []float64
		allredIn []float64
	)
	setup := func() {
		once.Do(func() {
			p2pW = world(platform.Vayu(), 2, true)
			allredW = world(platform.Vayu(), allredRanks, false)
			payload = make([]float64, p2pLen)
			for i := range payload {
				payload[i] = float64(i)
			}
			allredIn = make([]float64, allredLen)
		})
	}

	fig4 := func(kernel string) func() {
		return func() {
			if _, err := experiments.Fig4NPBScaling(kernel); err != nil {
				panic(fmt.Sprintf("perfbench: fig4 %s: %v", kernel, err))
			}
		}
	}

	return []Bench{
		{
			// Point-to-point throughput: how fast the runtime moves real
			// payload bytes between two ranks on two nodes.
			Name:        "mpi/p2p-throughput",
			AllocBudget: budgetP2P,
			Op: func() {
				setup()
				_, err := p2pW.Run(func(c *mpi.Comm) error {
					if c.Rank() == 0 {
						for i := 0; i < p2pMsgs; i++ {
							c.Send(1, 0, payload)
						}
						return nil
					}
					buf := make([]float64, p2pLen)
					for i := 0; i < p2pMsgs; i++ {
						c.Recv(0, 0, buf)
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
			},
		},
		{
			// Recursive-doubling allreduce over 8 ranks: the reduction
			// scratch and round-trip messages of the KSp-style hot path.
			Name:        "mpi/allreduce",
			AllocBudget: budgetAllreduce,
			Op: func() {
				setup()
				_, err := allredW.Run(func(c *mpi.Comm) error {
					data := append([]float64(nil), allredIn...)
					for i := 0; i < allredIters; i++ {
						data[0] = float64(c.Rank() + i)
						c.Allreduce(mpi.Sum, data)
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
			},
		},
		{
			// World churn: build, run and tear down a 64-rank world — the
			// scheduler's steady state when artefact jobs regenerate in
			// parallel. Dominated by inbox/world construction and the
			// collective envelope traffic of a barrier plus allreduce.
			Name:        "mpi/world-churn-64",
			AllocBudget: budgetChurn,
			Op: func() {
				_, err := mpi.RunOn(platform.EC2(), churnRanks, func(c *mpi.Comm) error {
					c.Barrier()
					c.AllreduceN(8)
					return nil
				})
				if err != nil {
					panic(err)
				}
			},
		},
		{
			// The simulator's own speed on the OSU latency microbenchmark,
			// mirroring bench_test.go's BenchmarkOSURawRuntime.
			Name:        "osu/latency-sim",
			AllocBudget: budgetOSU,
			Op: func() {
				if _, err := osu.Latency(platform.Vayu(), []int{8}); err != nil {
					panic(err)
				}
			},
		},
		// Figure regenerations, mirroring bench_test.go's
		// BenchmarkFig4NPBScaling panels: end-to-end wall-clock cost of the
		// artefacts whose sweeps dominate `make results`.
		{Name: "fig4/ep", Op: fig4("ep")},
		{Name: "fig4/cg", Op: fig4("cg")},
		{Name: "fig4/ft", Op: fig4("ft")},
	}
}
