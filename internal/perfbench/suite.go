package perfbench

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/mpi"
	"repro/internal/osu"
	"repro/internal/platform"
)

// Suite dimensions. The message counts are large enough that per-message
// costs dominate the fixed per-run cost (world construction, rank
// goroutines), so allocs/op tracks the message plane, not the harness.
const (
	p2pMsgs     = 256  // messages per P2P op
	p2pLen      = 1024 // float64 elements per message (8 KiB)
	allredIters = 32   // allreduces per op
	allredLen   = 256  // float64 elements per allreduce
	allredRanks = 8
	churnRanks  = 64

	facSlots       = 512 // HPC slots of the facility benches (cloud pools get half each)
	fac10kJobs     = 10000
	fac10kTenants  = 1000
	fac100kJobs    = 100000
	fac100kTenants = 10000
)

// Allocation budgets (allocs per run, measured by testing.AllocsPerRun).
// Committed with ~2x headroom over the pooled message plane's steady
// state; the pre-pooling code exceeds every one of them by an order of
// magnitude, so a regression that reintroduces per-message allocation
// fails `make verify`.
const (
	budgetP2P       = 64   // measured 26 pooled; 793 pre-pooling
	budgetAllreduce = 160  // measured 63 pooled; 2623 pre-pooling
	budgetChurn     = 2200 // measured ~1095 with pooled inboxes and slab
	// comms; ~1620 when every world built its inboxes and per-rank
	// Comm/rankState records from scratch. A regression that drops the
	// inbox pool or the Run slabs lands back above this line.
	budgetOSU = 128 // measured 46 pooled; 240 pre-pooling
	// Facility runs allocate per tenant and per slab chunk, not per job
	// or per event: the incremental scheduler recycles job records
	// through a freelist and the pending heap, release profile and
	// event queue all reuse their backing arrays. The budgets scale far
	// slower than 10x between the two sizes; a regression back to
	// per-pass sorting copies or per-job allocation blows through them.
	budgetFac10k  = 2400  // measured ~1090: tenant accounts + map growth dominate
	budgetFac100k = 20000 // measured ~9900: ~0.1 allocs per job
)

// Wall-clock budgets (ns/op, measured by testing.Benchmark and checked
// by CheckNsBudgets with an explicit relative tolerance — the verify
// knob is cmd/bench -ns-tolerance, default 0.25). Committed at ~2x the
// measured steady state so the gate trips on a ~3x regression (a
// reintroduced sort-per-pass scheduler, an accidental O(n) scan) while
// machine-to-machine variance plus the tolerance stays inside the
// headroom. Re-baseline after an intentional change by running `make
// bench` and copying the new measurements here at ~2x (see README,
// "Continuous performance").
const (
	nsBudgetFac10k  = 15e6  // measured ~7.2ms on the reference machine
	nsBudgetFac100k = 170e6 // measured ~84ms on the reference machine
)

// LintSweepBudgetNs bounds the reprolint whole-module sweep — load,
// type-check and all analyzers including the interprocedural facts
// walk, measured in-process by `cmd/bench -lint-bench` and recorded in
// the bench history as "lint/reprolint-sweep". The static-analysis gate
// runs on every commit, so its own latency is a tracked performance
// surface: an analyzer that goes accidentally quadratic in module size
// fails verify here rather than silently doubling every CI run.
// Committed with generous headroom (wall time of a cold sweep is
// noisier than a microbenchmark: export-data cache state and CI
// machine speed both move it).
const LintSweepBudgetNs = 20e9 // measured ~2.1s cold on the reference machine

// world builds an np-rank world on p, one rank per node when spread is
// set (the OSU two-node configuration).
func world(p *platform.Platform, np int, spread bool) *mpi.World {
	spec := cluster.Spec{NP: np}
	if spread {
		spec.Nodes = np
		spec.Policy = cluster.Spread
	}
	pl, err := cluster.Place(p, spec)
	if err != nil {
		panic(fmt.Sprintf("perfbench: place: %v", err))
	}
	w, err := mpi.NewWorld(p, pl)
	if err != nil {
		panic(fmt.Sprintf("perfbench: world: %v", err))
	}
	return w
}

// Suite returns the benchmark suite. Worlds are created lazily and reused
// across iterations (a World is reusable: each Run builds fresh per-rank
// state), so steady-state per-message cost is what gets measured.
func Suite() []Bench {
	var (
		once     sync.Once
		p2pW     *mpi.World
		allredW  *mpi.World
		payload  []float64
		allredIn []float64
	)
	setup := func() {
		once.Do(func() {
			p2pW = world(platform.Vayu(), 2, true)
			allredW = world(platform.Vayu(), allredRanks, false)
			payload = make([]float64, p2pLen)
			for i := range payload {
				payload[i] = float64(i)
			}
			allredIn = make([]float64, allredLen)
		})
	}

	var (
		facOnce sync.Once
		fac10k  []facility.Job
		fac100k []facility.Job
	)
	facWorkload := func(jobs, tenants int) []facility.Job {
		wl, err := facility.Generate(facility.WorkloadSpec{
			Seed: 1, Jobs: jobs, Tenants: tenants, Slots: facSlots,
		})
		if err != nil {
			panic(fmt.Sprintf("perfbench: facility workload: %v", err))
		}
		return wl
	}
	facRun := func(wl *[]facility.Job) func() {
		return func() {
			facOnce.Do(func() {
				fac10k = facWorkload(fac10kJobs, fac10kTenants)
				fac100k = facWorkload(fac100kJobs, fac100kTenants)
			})
			f, err := facility.New(facility.Config{
				Slots:     [facility.NumPools]int{facSlots, facSlots / 2, facSlots / 2},
				Backfill:  true,
				Fairshare: true,
				Broker: &facility.Broker{
					Factors: map[string][facility.NumPools]float64{
						"ep": {1, 1.1, 1.3}, "cg": {1, 1.8, 2.6}, "mg": {1, 1.5, 2.1},
						"ft": {1, 1.9, 2.8}, "is": {1, 1.4, 1.9},
					},
					DefaultFactors: [facility.NumPools]float64{1, 1.3, 2},
				},
				Prices: [facility.NumPools]float64{0, 0.34, 0.68},
			})
			if err != nil {
				panic(fmt.Sprintf("perfbench: facility: %v", err))
			}
			done := 0
			if _, err := f.RunStream(*wl, func(facility.Outcome) { done++ }); err != nil {
				panic(fmt.Sprintf("perfbench: facility run: %v", err))
			}
			if done != len(*wl) {
				panic(fmt.Sprintf("perfbench: facility run emitted %d of %d outcomes", done, len(*wl)))
			}
		}
	}

	fig4 := func(kernel string) func() {
		return func() {
			if _, err := experiments.Fig4NPBScaling(kernel); err != nil {
				panic(fmt.Sprintf("perfbench: fig4 %s: %v", kernel, err))
			}
		}
	}

	return []Bench{
		{
			// Point-to-point throughput: how fast the runtime moves real
			// payload bytes between two ranks on two nodes.
			Name:        "mpi/p2p-throughput",
			AllocBudget: budgetP2P,
			Op: func() {
				setup()
				_, err := p2pW.Run(func(c *mpi.Comm) error {
					if c.Rank() == 0 {
						for i := 0; i < p2pMsgs; i++ {
							c.Send(1, 0, payload)
						}
						return nil
					}
					buf := make([]float64, p2pLen)
					for i := 0; i < p2pMsgs; i++ {
						c.Recv(0, 0, buf)
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
			},
		},
		{
			// Recursive-doubling allreduce over 8 ranks: the reduction
			// scratch and round-trip messages of the KSp-style hot path.
			Name:        "mpi/allreduce",
			AllocBudget: budgetAllreduce,
			Op: func() {
				setup()
				_, err := allredW.Run(func(c *mpi.Comm) error {
					data := append([]float64(nil), allredIn...)
					for i := 0; i < allredIters; i++ {
						data[0] = float64(c.Rank() + i)
						c.Allreduce(mpi.Sum, data)
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
			},
		},
		{
			// World churn: build, run and tear down a 64-rank world — the
			// scheduler's steady state when artefact jobs regenerate in
			// parallel. Dominated by inbox/world construction and the
			// collective envelope traffic of a barrier plus allreduce.
			Name:        "mpi/world-churn-64",
			AllocBudget: budgetChurn,
			Op: func() {
				_, err := mpi.RunOn(platform.EC2(), churnRanks, func(c *mpi.Comm) error {
					c.Barrier()
					c.AllreduceN(8)
					return nil
				})
				if err != nil {
					panic(err)
				}
			},
		},
		{
			// The simulator's own speed on the OSU latency microbenchmark,
			// mirroring bench_test.go's BenchmarkOSURawRuntime.
			Name:        "osu/latency-sim",
			AllocBudget: budgetOSU,
			Op: func() {
				if _, err := osu.Latency(platform.Vayu(), []int{8}); err != nil {
					panic(err)
				}
			},
		},
		{
			// The batch facility's event loop at four-digit tenancy: ten
			// thousand jobs streamed through backfill, fairshare and a
			// static broker. Allocations track tenants and slab chunks,
			// not jobs — the incremental-scheduler invariant this budget
			// gates.
			Name:        "facility/run-10k",
			AllocBudget: budgetFac10k,
			NsBudget:    nsBudgetFac10k,
			Op:          facRun(&fac10k),
		},
		{
			// The same facility at 100k jobs / 10k tenants: one order of
			// magnitude up in jobs must stay well under one order up in
			// allocations.
			Name:        "facility/run-100k",
			AllocBudget: budgetFac100k,
			NsBudget:    nsBudgetFac100k,
			Op:          facRun(&fac100k),
		},
		// Figure regenerations, mirroring bench_test.go's
		// BenchmarkFig4NPBScaling panels: end-to-end wall-clock cost of the
		// artefacts whose sweeps dominate `make results`.
		{Name: "fig4/ep", Op: fig4("ep")},
		{Name: "fig4/cg", Op: fig4("cg")},
		{Name: "fig4/ft", Op: fig4("ft")},
	}
}
