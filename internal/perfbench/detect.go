package perfbench

import (
	"fmt"
	"math"
	"sort"
)

// This file is the statistical regression gate: given a benchmark's
// trailing ns/op history and a fresh measurement, classify the change as
// improved / regressed / stable using a robust median + MAD rule instead
// of a brittle fixed threshold. Everything here is stdlib float math on
// the history bytes — same bytes, same verdicts, on any machine.

// Verdict classifies one benchmark's latest measurement against its
// trailing history window.
type Verdict string

// Verdicts. NoHistory means the benchmark has no prior same-environment
// measurements to compare against, which is never a failure.
const (
	VerdictStable    Verdict = "stable"
	VerdictImproved  Verdict = "improved"
	VerdictRegressed Verdict = "regressed"
	VerdictNoHistory Verdict = "no-history"
)

// Detector holds the change-detection knobs. The zero value is unusable;
// take DefaultDetector and adjust.
type Detector struct {
	// Window is the number of trailing history values compared against.
	Window int
	// Tolerance is the noise floor: relative changes within ±Tolerance
	// are always stable, whatever the dispersion says. This is the
	// "explicit noise tolerance" replacing fixed ns thresholds.
	Tolerance float64
	// Sigmas is the robust z-score (distance from the window median in
	// MAD-derived standard deviations) a change must exceed to count.
	Sigmas float64
}

// DefaultDetector returns the committed gate configuration: an 8-run
// window, a 10% noise floor and a 3-sigma significance bar.
func DefaultDetector() Detector {
	return Detector{Window: 8, Tolerance: 0.10, Sigmas: 3}
}

// minNoiseSamples is the window size below which the MAD cannot estimate
// run-to-run noise; shorter windows double the tolerance floor instead
// of trusting a scale estimated from one or two points.
const minNoiseSamples = 3

// median returns the median of vs (which it sorts a copy of).
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mad returns the median absolute deviation of vs around med.
func mad(vs []float64, med float64) float64 {
	dev := make([]float64, len(vs))
	for i, v := range vs {
		dev[i] = math.Abs(v - med)
	}
	return median(dev)
}

// Classify judges a fresh ns/op measurement against its prior
// same-environment values (history order; only the trailing Window
// entries are used). The rule, in order:
//
//  1. no prior values -> NoHistory;
//  2. relative change from the window median within ±Tolerance ->
//     Stable (the noise floor; doubled while the window is shorter than
//     minNoiseSamples, where the MAD has nothing to estimate noise from);
//  3. otherwise the change must also clear Sigmas robust standard
//     deviations (1.4826·MAD) from the median — a run-to-run spread
//     wider than the delta keeps the verdict Stable;
//  4. an all-identical window (MAD 0, the hand-built-history case) falls
//     back to the tolerance rule alone.
func (d Detector) Classify(prior []float64, current float64) Verdict {
	if len(prior) == 0 {
		return VerdictNoHistory
	}
	if d.Window > 0 && len(prior) > d.Window {
		prior = prior[len(prior)-d.Window:]
	}
	tol := d.Tolerance
	if len(prior) < minNoiseSamples {
		tol *= 2
	}
	med := median(prior)
	if med <= 0 {
		// Degenerate history (zero or negative timings): only direction
		// is meaningful.
		switch {
		case current > med:
			return VerdictRegressed
		case current < med:
			return VerdictImproved
		}
		return VerdictStable
	}
	rel := (current - med) / med
	if math.Abs(rel) <= tol {
		return VerdictStable
	}
	scale := 1.4826 * mad(prior, med)
	if scale > 0 {
		z := (current - med) / scale
		if math.Abs(z) < d.Sigmas {
			return VerdictStable
		}
	}
	if rel > 0 {
		return VerdictRegressed
	}
	return VerdictImproved
}

// Trend is one benchmark's row in the continuous-evaluation report.
type Trend struct {
	Name    string
	Current float64 // latest ns/op
	Prev    float64 // previous same-environment ns/op (0 = none)
	Base    float64 // oldest same-environment ns/op (0 = none)
	Runs    int     // prior same-environment measurements
	Verdict Verdict
}

// VsPrev returns the relative change against the previous measurement
// (+0.25 = 25% slower), or 0 when there is none.
func (t Trend) VsPrev() float64 { return relDelta(t.Prev, t.Current) }

// VsBase returns the relative change against the oldest measurement.
func (t Trend) VsBase() float64 { return relDelta(t.Base, t.Current) }

func relDelta(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return (to - from) / from
}

// Trends classifies the latest snapshot of a history against the
// preceding same-environment snapshots, one row per benchmark in the
// latest snapshot, sorted by name. Keying on names makes the verdicts
// invariant under benchmark reordering within any snapshot (the quick
// property detect_test.go checks).
func (d Detector) Trends(history []Snapshot) []Trend {
	if len(history) == 0 {
		return nil
	}
	last := history[len(history)-1]
	prior := history[:len(history)-1]
	fp := last.Env.Fingerprint()

	points := append([]Point(nil), last.Benchmarks...)
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })

	trends := make([]Trend, 0, len(points))
	for _, p := range points {
		series := Series(prior, p.Name, fp)
		t := Trend{Name: p.Name, Current: p.NsPerOp, Runs: len(series),
			Verdict: d.Classify(series, p.NsPerOp)}
		if len(series) > 0 {
			t.Base = series[0]
			t.Prev = series[len(series)-1]
		}
		trends = append(trends, t)
	}
	return trends
}

// Regressions filters the trends down to regressed verdicts.
func Regressions(trends []Trend) []Trend {
	var out []Trend
	for _, t := range trends {
		if t.Verdict == VerdictRegressed {
			out = append(out, t)
		}
	}
	return out
}

// Within reports whether two float64 values are equal within the given
// relative tolerance (of the larger magnitude). tol 0 demands exact
// equality; tol 0.05 accepts a 5% spread. This is the shared comparator
// behind the ns/op budget gate and `inspect diff -tolerance`.
func Within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if tol <= 0 {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// NsViolation describes one benchmark exceeding its ns/op budget beyond
// the configured tolerance.
type NsViolation struct {
	Name      string
	Measured  float64
	Budget    float64
	Tolerance float64
}

// Error formats the violation with the effective ceiling.
func (v NsViolation) Error() string {
	return fmt.Sprintf("perfbench: %s took %.0f ns/op, budget %.0f (+%.0f%% tolerance = %.0f)",
		v.Name, v.Measured, v.Budget, 100*v.Tolerance, v.Budget*(1+v.Tolerance))
}

// CheckNsBudgets measures every ns-budgeted benchmark with
// testing.Benchmark and returns the ns/op measurements plus any budget
// violations. A measurement only violates when it exceeds the committed
// budget by more than the relative tolerance — the explicit noise
// allowance that keeps the wall-clock gate from flapping.
func CheckNsBudgets(benches []Bench, tol float64) (map[string]float64, []NsViolation) {
	measured := make(map[string]float64)
	var violations []NsViolation
	for _, b := range benches {
		if b.NsBudget <= 0 {
			continue
		}
		got := Measure(b).NsPerOp
		measured[b.Name] = got
		if got > b.NsBudget*(1+tol) {
			violations = append(violations, NsViolation{
				Name: b.Name, Measured: got, Budget: b.NsBudget, Tolerance: tol})
		}
	}
	return measured, violations
}
