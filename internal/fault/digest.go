package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Digest returns the sha256 of a canonical encoding of the plan, for
// run manifests: two runs driven by byte-identical fault schedules carry
// the same digest regardless of how the plans were produced. The
// canonical form writes every field with %g (shortest round-trippable
// floats) in a fixed order, with straggler ranks sorted.
func (p *Plan) Digest() string {
	h := sha256.New()
	if !p.Empty() {
		ranks := make([]int, 0, len(p.Stragglers))
		for r := range p.Stragglers {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			for _, t := range p.Stragglers[r] {
				fmt.Fprintf(h, "s %d %g %g %g\n", r, t.Start, t.End, t.Factor)
			}
		}
		for _, d := range p.Degradations {
			fmt.Fprintf(h, "d %g %g %g %g\n", d.Start, d.End, d.LatencyFactor, d.BandwidthFactor)
		}
		for _, pe := range p.Preemptions {
			fmt.Fprintf(h, "p %d %g\n", pe.Node, pe.At)
		}
		for _, o := range p.Outages {
			fmt.Fprintf(h, "o %g %g\n", o.Start, o.End)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
