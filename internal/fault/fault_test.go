package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpumodel"
	"repro/internal/netmodel"
)

func fullSpec() Spec {
	return Spec{
		MTBF:            900,
		StragglerRate:   30,
		DegradationRate: 20,
		Horizon:         7200,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(fullSpec(), "vayu", "e12", 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(fullSpec(), "vayu", "e12", 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs must yield the same plan")
	}
	if a.Empty() {
		t.Fatal("a plan with all rates set should contain events")
	}
	c, err := Generate(fullSpec(), "vayu", "e12", 16, 4, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should yield different plans")
	}
	d, err := Generate(fullSpec(), "dcc", "e12", 16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, d) {
		t.Fatal("different platform labels should yield different plans")
	}
}

func TestGeneratedPlansAreValidAndSorted(t *testing.T) {
	prop := func(seed uint64) bool {
		p, err := Generate(fullSpec(), "ec2", "prop", 8, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated plan invalid: %v", err)
		}
		for i := 1; i < len(p.Preemptions); i++ {
			if p.Preemptions[i].At < p.Preemptions[i-1].At {
				return false
			}
		}
		for i := 1; i < len(p.Degradations); i++ {
			if p.Degradations[i].Start < p.Degradations[i-1].Start {
				return false
			}
		}
		for _, ws := range p.Stragglers {
			for i := 1; i < len(ws); i++ {
				if ws[i].Start < ws[i-1].End {
					return false // windows must be disjoint
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(Spec{MTBF: -1}, "v", "e", 4, 2, 1); err == nil {
		t.Error("negative MTBF should be rejected")
	}
	if _, err := Generate(Spec{}, "v", "e", 0, 2, 1); err == nil {
		t.Error("zero ranks should be rejected")
	}
	if _, err := Generate(Spec{StragglerSlowdown: 0.5, StragglerRate: 1}, "v", "e", 4, 2, 1); err == nil {
		t.Error("slowdown < 1 should be rejected")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []Plan{
		{Stragglers: map[int][]cpumodel.Throttle{0: {{Start: 5, End: 3, Factor: 2}}}},
		{Stragglers: map[int][]cpumodel.Throttle{0: {{Start: 0, End: 1, Factor: 0.5}}}},
		{Degradations: []netmodel.Degradation{{Start: 1, End: 1, LatencyFactor: 2, BandwidthFactor: 2}}},
		{Degradations: []netmodel.Degradation{{Start: 0, End: 1, LatencyFactor: 0.9, BandwidthFactor: 2}}},
		{Preemptions: []Preemption{{Node: -1, At: 3}}},
		{Preemptions: []Preemption{{Node: 0, At: -3}}},
		{Outages: []Outage{{Start: 2, End: 2}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid plan accepted: %+v", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan must validate: %v", err)
	}
	if !nilPlan.Empty() {
		t.Error("nil plan must be empty")
	}
}

func TestDegradationAtCombinesOverlaps(t *testing.T) {
	p := &Plan{Degradations: []netmodel.Degradation{
		{Start: 0, End: 10, LatencyFactor: 2, BandwidthFactor: 3},
		{Start: 5, End: 15, LatencyFactor: 4, BandwidthFactor: 5},
	}}
	if l, b := p.DegradationAt(7); l != 8 || b != 15 {
		t.Errorf("overlap at t=7: got (%g,%g), want (8,15)", l, b)
	}
	if l, b := p.DegradationAt(12); l != 4 || b != 5 {
		t.Errorf("single window at t=12: got (%g,%g), want (4,5)", l, b)
	}
	if l, b := p.DegradationAt(20); l != 1 || b != 1 {
		t.Errorf("outside windows: got (%g,%g), want (1,1)", l, b)
	}
}

func TestNodeDeathSkipsConsumedEvents(t *testing.T) {
	p := &Plan{Preemptions: []Preemption{
		{Node: 2, At: 10}, {Node: 1, At: 20}, {Node: 2, At: 30},
	}}
	if at, ok := p.NodeDeath(2, 0); !ok || at != 10 {
		t.Errorf("first death of node 2: got (%g,%v)", at, ok)
	}
	if at, ok := p.NodeDeath(2, 10); !ok || at != 30 {
		t.Errorf("death strictly after 10: got (%g,%v)", at, ok)
	}
	if _, ok := p.NodeDeath(2, 30); ok {
		t.Error("no death after 30")
	}
	if _, ok := p.NodeDeath(7, 0); ok {
		t.Error("node 7 never dies")
	}
}

func TestOutageAt(t *testing.T) {
	p := &Plan{Outages: []Outage{{Start: 2, End: 4}, {Start: 8, End: 9}}}
	for _, c := range []struct {
		t    float64
		want bool
	}{{1.9, false}, {2, true}, {3.99, true}, {4, false}, {8.5, true}, {9, false}} {
		if got := p.OutageAt(c.t); got != c.want {
			t.Errorf("OutageAt(%g) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestParseParamsRoundTrip(t *testing.T) {
	for _, s := range []string{
		"",
		"mtbf=600",
		"ckpt=3,mtbf=600,seed=7",
		"dbw=4,degrade=12,dlat=8,horizon=1800,mtbf=600,slow=2.5,straggle=6",
	} {
		p, err := ParseParams(s)
		if err != nil {
			t.Fatalf("ParseParams(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("canonical round trip of %q: got %q", s, got)
		}
		p2, err := ParseParams(p.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", p.String(), err)
		}
		if p2 != p {
			t.Errorf("reparse of %q changed params: %+v vs %+v", s, p, p2)
		}
	}
}

func TestParseParamsErrors(t *testing.T) {
	for _, s := range []string{
		"mtbf",      // no value
		"mtbf=abc",  // not a number
		"bogus=1",   // unknown key
		"ckpt=-1",   // negative steps
		"ckpt=1.5",  // not an integer
		"slow=0.5",  // spec validation: factor < 1
		"mtbf=-600", // negative rate
		"seed=-1",   // negative seed
		"dlat=0.2,mtbf=60",
	} {
		if _, err := ParseParams(s); err == nil {
			t.Errorf("ParseParams(%q) should fail", s)
		}
	}
}

func TestParamsEnabled(t *testing.T) {
	if (Params{}).Enabled() {
		t.Error("zero params must be disabled")
	}
	if (Params{CheckpointEvery: 3}).Enabled() {
		t.Error("checkpointing alone injects no fault")
	}
	if !(Params{Spec: Spec{MTBF: 60}}).Enabled() {
		t.Error("mtbf enables faults")
	}
}

func TestProgressQuantised(t *testing.T) {
	p := Progress{Total: 10, Quantum: 0.5}
	p.Advance(1.3)
	p.Checkpoint()
	if p.Durable != 1.0 {
		t.Errorf("quantised checkpoint: durable %g, want 1.0", p.Durable)
	}
	if lost := p.Interrupt(); math.Abs(lost-0.3) > 1e-12 {
		t.Errorf("interrupt lost %g, want 0.3", lost)
	}
	if p.Done != 1.0 {
		t.Errorf("rollback to %g, want 1.0", p.Done)
	}

	// Quantum 0: checkpoints are explicit and exact.
	q := Progress{Total: 2}
	q.Advance(1.3)
	q.Checkpoint()
	q.Advance(0.4)
	if lost := q.Interrupt(); math.Abs(lost-0.4) > 1e-12 {
		t.Errorf("exact checkpoint: lost %g, want 0.4", lost)
	}
}

func TestProgressClampsAndCompletes(t *testing.T) {
	p := Progress{Total: 3, Quantum: 1}
	if step := p.Advance(5); step != 3 {
		t.Errorf("advance past total returned %g, want 3", step)
	}
	if !p.Completed() || p.Remaining() != 0 {
		t.Errorf("progress should be complete: %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance must panic")
		}
	}()
	p.Advance(-1)
}

// TestProgressInvariants drives Progress with a random op sequence and
// checks 0 <= Durable <= Done <= Total throughout, that checkpoints never
// regress and that an interrupt loses exactly Done-Durable.
func TestProgressInvariants(t *testing.T) {
	prop := func(total8 uint8, quantum8 uint8, ops []uint8) bool {
		total := 1 + float64(total8)/8
		quantum := float64(quantum8) / 64 // may be 0
		p := Progress{Total: total, Quantum: quantum}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				step := p.Advance(float64(op) / 32)
				if step < 0 || step > float64(op)/32+1e-12 {
					return false
				}
			case 1:
				before := p.Durable
				p.Checkpoint()
				if p.Durable < before {
					return false // checkpoint regressed
				}
			case 2:
				want := p.Done - p.Durable
				if lost := p.Interrupt(); math.Abs(lost-want) > 1e-12 {
					return false
				}
			}
			if p.Durable < 0 || p.Done < p.Durable-1e-12 || p.Done > p.Total+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringOmitsZeroFields(t *testing.T) {
	if s := (Params{}).String(); s != "" {
		t.Errorf("zero params render as %q, want empty", s)
	}
	s := Params{Spec: Spec{MTBF: 600}, CheckpointEvery: 3}.String()
	if strings.Contains(s, "seed") || strings.Contains(s, "straggle") {
		t.Errorf("zero fields leaked into %q", s)
	}
}
