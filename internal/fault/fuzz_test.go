package fault_test

import (
	"errors"
	"testing"

	"repro/internal/apps/metum"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// tinyConfig is a miniature MetUM run (np=4 decomposes it 2x2): large
// enough to exercise halo exchange, collectives and checkpointing, small
// enough for thousands of fuzz executions.
func tinyConfig(ckptEvery int) metum.Config {
	return metum.Config{
		NX: 64, NY: 33, NZ: 4,
		Steps: 6, Warmup: 1,
		DumpBytes:          8 << 20,
		HaloSwapsPerStep:   4,
		HaloWidth:          1,
		FieldsPerSwap:      1,
		SolverItersPerStep: 4,
		FlopsPerStep:       2e9,
		BytesPerStep:       4e9,
		ImbalanceAmp:       0.3,
		MemTotal:           1 << 30,
		MemPerRankFixed:    1 << 20,
		CheckpointEvery:    ckptEvery,
		CheckpointBytes:    4 << 20,
	}
}

type fuzzRun struct {
	time   float64
	lost   float64
	resume int
	err    string
}

func resilientTinyRun(t *testing.T, plan *fault.Plan, ckptEvery int) fuzzRun {
	t.Helper()
	p := platform.DCC()
	pl, err := cluster.Place(p, cluster.Spec{NP: 4, Policy: cluster.Spread, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(p, pl, mpi.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(ckptEvery)
	res, stats, err := w.RunResilient(mpi.ResilientConfig{Plan: plan, MaxRestarts: 8},
		func(c *mpi.Comm) error {
			_, err := metum.Run(c, cfg)
			return err
		})
	if err != nil {
		// The only acceptable failure is exhausting the restart budget.
		if !errors.Is(err, mpi.ErrRankFailed) {
			t.Fatalf("unexpected error class: %v", err)
		}
		return fuzzRun{err: err.Error(), lost: stats.LostWork}
	}
	if stats.LostWork < 0 || stats.RestartOverhead < 0 {
		t.Fatalf("negative resilience accounting: %+v", stats)
	}
	if stats.LostWork+stats.RestartOverhead >= res.Time && stats.Restarts > 0 {
		t.Fatalf("overheads exceed wall time: %+v vs %g", stats, res.Time)
	}
	return fuzzRun{time: res.Time, lost: stats.LostWork, resume: stats.Restarts}
}

// FuzzFaultPlan: any generated plan yields a terminating resilient run,
// and the run is a pure function of the plan — executing it twice gives
// identical times, accounting and error outcomes.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), float64(0), float64(0), float64(0), uint8(0))
	f.Add(uint64(2), float64(20), float64(0), float64(0), uint8(2)) // fault storm
	f.Add(uint64(3), float64(400), float64(60), float64(0), uint8(3))
	f.Add(uint64(4), float64(0), float64(120), float64(90), uint8(1)) // slow but alive
	f.Add(uint64(5), float64(90), float64(30), float64(30), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, mtbf, straggle, degrade float64, ckpt uint8) {
		// Sanitise into the spec's domain; the generator's own validation
		// is exercised separately.
		if mtbf < 0 {
			mtbf = -mtbf
		}
		if mtbf > 0 && mtbf < 5 {
			mtbf = 5 // pathological storms time out the restart budget fast
		}
		if straggle < 0 {
			straggle = -straggle
		}
		if degrade < 0 {
			degrade = -degrade
		}
		spec := fault.Spec{
			MTBF:            mtbf,
			StragglerRate:   minf(straggle, 600),
			DegradationRate: minf(degrade, 600),
			Horizon:         600,
		}
		plan, err := fault.Generate(spec, "dcc", "fuzz", 4, 4, seed)
		if err != nil {
			t.Fatalf("sanitised spec rejected: %v", err)
		}
		a := resilientTinyRun(t, plan, int(ckpt%5))
		b := resilientTinyRun(t, plan, int(ckpt%5))
		if a != b {
			t.Fatalf("same plan, different outcomes:\n%+v\n%+v", a, b)
		}
		if a.err == "" && a.time <= 0 {
			t.Fatalf("completed run has non-positive wall time: %+v", a)
		}
	})
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
