package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Params bundles a generation Spec with the runtime knobs that ride
// along on the -faults command-line flag (and in artefact cache keys).
type Params struct {
	Spec
	// CheckpointEvery is the number of application timesteps between
	// checkpoints (0 = checkpointing off).
	CheckpointEvery int
	// Seed offsets the fault streams independently of the platform seed.
	Seed uint64
}

// Enabled reports whether the params inject any fault at all.
func (p Params) Enabled() bool {
	return p.MTBF > 0 || p.StragglerRate > 0 || p.DegradationRate > 0
}

// ParseParams parses the -faults flag syntax: comma-separated key=value
// pairs, e.g. "mtbf=600,ckpt=3,seed=1". Keys:
//
//	mtbf=SECONDS    mean time between node preemptions
//	straggle=RATE   straggler windows per rank per virtual hour
//	slow=FACTOR     mean straggler slowdown factor (>= 1)
//	degrade=RATE    link-degradation windows per virtual hour
//	dlat=FACTOR     degraded latency multiplier (>= 1)
//	dbw=FACTOR      degraded bandwidth divisor (>= 1)
//	horizon=SECONDS schedule horizon
//	ckpt=STEPS      checkpoint every N application timesteps
//	seed=N          fault stream seed offset
//
// The empty string parses to the zero Params (no faults).
func ParseParams(s string) (Params, error) {
	var p Params
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Params{}, fmt.Errorf("fault: malformed -faults field %q (want key=value)", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "ckpt":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Params{}, fmt.Errorf("fault: ckpt wants a non-negative integer, got %q", val)
			}
			p.CheckpointEvery = n
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Params{}, fmt.Errorf("fault: seed wants an unsigned integer, got %q", val)
			}
			p.Seed = n
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Params{}, fmt.Errorf("fault: %s wants a number, got %q", key, val)
			}
			switch key {
			case "mtbf":
				p.MTBF = f
			case "straggle":
				p.StragglerRate = f
			case "slow":
				p.StragglerSlowdown = f
			case "degrade":
				p.DegradationRate = f
			case "dlat":
				p.DegradationLatency = f
			case "dbw":
				p.DegradationBandwidth = f
			case "horizon":
				p.Horizon = f
			default:
				return Params{}, fmt.Errorf("fault: unknown -faults key %q", key)
			}
		}
	}
	if err := p.Spec.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// String renders the params in canonical (sorted-key) flag syntax, so
// equal params always produce equal cache-key fragments. The zero value
// renders as "".
func (p Params) String() string {
	kv := map[string]string{}
	put := func(k string, v float64) {
		if v != 0 {
			kv[k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	put("mtbf", p.MTBF)
	put("straggle", p.StragglerRate)
	put("slow", p.StragglerSlowdown)
	put("degrade", p.DegradationRate)
	put("dlat", p.DegradationLatency)
	put("dbw", p.DegradationBandwidth)
	put("horizon", p.Horizon)
	if p.CheckpointEvery != 0 {
		kv["ckpt"] = strconv.Itoa(p.CheckpointEvery)
	}
	if p.Seed != 0 {
		kv["seed"] = strconv.FormatUint(p.Seed, 10)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + kv[k]
	}
	return strings.Join(parts, ",")
}
