package fault

import "math"

// Progress is the interruption arithmetic shared by the spot-market
// runner and the resilient MPI runtime: work accumulates, some of it is
// made durable by checkpoints, and an interruption rolls volatile work
// back to the durable point. Units are whatever the caller measures work
// in (node-hours for spot, virtual seconds for the runtime).
//
// Two checkpointing disciplines are supported:
//
//   - quantised (Quantum > 0): Checkpoint advances the durable point to
//     the largest whole multiple of Quantum completed (hourly spot
//     checkpoints at checkpointHours granularity);
//   - explicit (Quantum == 0): Checkpoint makes all completed work
//     durable (a rank-level application checkpoint at a known timestep).
//
// The zero value is an open-ended (Total == 0) uncheckpointed job.
type Progress struct {
	Total   float64 // work needed for completion; 0 = open-ended
	Quantum float64 // durable granularity; 0 = explicit checkpoints

	Done    float64 // completed work, possibly volatile
	Durable float64 // work that survives an interruption
}

// Advance adds up to d units of work (clamped so Done never exceeds a
// positive Total) and returns the amount actually added. Negative d
// panics: progress never runs backwards except through Interrupt.
func (p *Progress) Advance(d float64) float64 {
	if d < 0 {
		panic("fault: negative progress advance")
	}
	if p.Total > 0 {
		d = math.Min(d, p.Total-p.Done)
		if d < 0 {
			d = 0
		}
	}
	p.Done += d
	return d
}

// Checkpoint makes completed work durable under the configured
// discipline. The durable point never moves backwards.
func (p *Progress) Checkpoint() {
	durable := p.Done
	if p.Quantum > 0 {
		durable = math.Floor(p.Done/p.Quantum) * p.Quantum
	}
	if durable > p.Durable {
		p.Durable = durable
	}
}

// Interrupt rolls volatile work back to the durable point and returns
// the amount of work lost.
func (p *Progress) Interrupt() float64 {
	lost := p.Done - p.Durable
	p.Done = p.Durable
	return lost
}

// Completed reports whether a bounded job has finished.
func (p *Progress) Completed() bool { return p.Total > 0 && p.Done >= p.Total }

// Remaining returns the outstanding work of a bounded job (0 when
// open-ended or complete).
func (p *Progress) Remaining() float64 {
	if p.Total <= 0 {
		return 0
	}
	return math.Max(0, p.Total-p.Done)
}
