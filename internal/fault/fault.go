// Package fault is the deterministic fault-injection plane for the
// simulated stack. A Plan is a pre-computed schedule of three event
// classes, derived from the same splitmix64 stream discipline as the
// platform jitter (seeded by platform/experiment/rank labels, so the
// same inputs always yield the same faults):
//
//   - stragglers: transient per-rank CPU slowdown windows, applied by the
//     runtime through cpumodel.StretchSeconds;
//   - link degradation: windows of elevated latency / reduced bandwidth,
//     applied to inter-node transfers through netmodel.Link.Degraded;
//   - node preemption: a whole node's ranks die at a virtual time
//     (EC2 spot outbidding, DCC VM resets), surfaced by the mpi runtime
//     as a typed rank-failure error;
//   - outages: resource-unavailable windows (the hour-granularity spot
//     market view); each outage begins with the matching preemption.
//
// Because a Plan is data, the MPI runtime, the applications and the
// arrive spot model all consume the same failure schedule and can never
// disagree about when a resource was lost.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/cpumodel"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Preemption kills every rank placed on Node at virtual time At.
type Preemption struct {
	Node int
	At   float64 // virtual seconds
}

// Outage is a window during which the preempted resource stays
// unavailable (spot price above bid, VM not yet rescheduled).
type Outage struct {
	Start, End float64 // virtual units (seconds, or hours for spot plans)
}

// Plan is a fully materialised fault schedule. The zero value (and nil)
// is a fault-free plan. All slices are sorted by start time.
type Plan struct {
	Stragglers   map[int][]cpumodel.Throttle // per-rank slowdown windows
	Degradations []netmodel.Degradation      // inter-node link windows
	Preemptions  []Preemption
	Outages      []Outage
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Stragglers) == 0 && len(p.Degradations) == 0 &&
		len(p.Preemptions) == 0 && len(p.Outages) == 0)
}

// Validate checks the plan's internal consistency: ordered windows with
// positive extent, slowdown/degradation factors >= 1 (a factor below one
// would be a speed-up and could violate virtual-time causality), and
// non-negative event times.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	ranks := make([]int, 0, len(p.Stragglers))
	for rank := range p.Stragglers {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		for _, w := range p.Stragglers[rank] {
			if w.End <= w.Start || w.Start < 0 {
				return fmt.Errorf("fault: rank %d straggler window [%g,%g) invalid", rank, w.Start, w.End)
			}
			if w.Factor < 1 {
				return fmt.Errorf("fault: rank %d straggler factor %g < 1", rank, w.Factor)
			}
		}
	}
	for _, d := range p.Degradations {
		if d.End <= d.Start || d.Start < 0 {
			return fmt.Errorf("fault: degradation window [%g,%g) invalid", d.Start, d.End)
		}
		if d.LatencyFactor < 1 || d.BandwidthFactor < 1 {
			return fmt.Errorf("fault: degradation factors (%g,%g) must be >= 1", d.LatencyFactor, d.BandwidthFactor)
		}
	}
	for _, e := range p.Preemptions {
		if e.At < 0 || e.Node < 0 {
			return fmt.Errorf("fault: preemption {node %d, at %g} invalid", e.Node, e.At)
		}
	}
	for _, o := range p.Outages {
		if o.End <= o.Start || o.Start < 0 {
			return fmt.Errorf("fault: outage [%g,%g) invalid", o.Start, o.End)
		}
	}
	return nil
}

// ThrottlesFor returns rank's slowdown windows (nil when unaffected).
func (p *Plan) ThrottlesFor(rank int) []cpumodel.Throttle {
	if p == nil {
		return nil
	}
	return p.Stragglers[rank]
}

// DegradationAt returns the combined latency and bandwidth factors of
// every degradation window active at time t (1,1 when none).
func (p *Plan) DegradationAt(t float64) (latency, bandwidth float64) {
	latency, bandwidth = 1, 1
	if p == nil {
		return
	}
	for _, d := range p.Degradations {
		if d.Start > t {
			break // sorted by start
		}
		if t < d.End {
			latency *= d.LatencyFactor
			bandwidth *= d.BandwidthFactor
		}
	}
	return
}

// NodeDeath returns the first preemption of node strictly after time
// `after`, so a restarted incarnation does not re-fire an already
// consumed failure.
func (p *Plan) NodeDeath(node int, after float64) (float64, bool) {
	if p == nil {
		return 0, false
	}
	for _, e := range p.Preemptions {
		if e.Node == node && e.At > after {
			return e.At, true
		}
	}
	return 0, false
}

// OutageAt reports whether the resource is unavailable at time t.
func (p *Plan) OutageAt(t float64) bool {
	if p == nil {
		return false
	}
	for _, o := range p.Outages {
		if o.Start > t {
			return false // sorted by start
		}
		if t < o.End {
			return true
		}
	}
	return false
}

// Spec parameterises plan generation. The zero value generates an empty
// (fault-free) plan. All times are virtual seconds.
type Spec struct {
	// MTBF is the mean time between node preemptions across the whole
	// machine (exponential inter-arrival, uniformly random victim node).
	// Zero disables preemptions.
	MTBF float64
	// Horizon bounds the schedule; events beyond it are not generated.
	// Zero picks a default long enough for any bounded run (200*MTBF,
	// at least one virtual hour).
	Horizon float64

	// StragglerRate is the expected number of slowdown windows per rank
	// per virtual hour. Zero disables stragglers.
	StragglerRate float64
	// StragglerSlowdown is the mean compute slowdown factor inside a
	// window (default 2.0; generated factors are 1 + Exp(mean-1)).
	StragglerSlowdown float64
	// StragglerDuration is the mean window length in seconds (default 5).
	StragglerDuration float64

	// DegradationRate is the expected number of link-degradation windows
	// per virtual hour. Zero disables link degradation.
	DegradationRate float64
	// DegradationLatency multiplies inter-node latency during a window
	// (default 8 — vSwitch stalls observed as latency fluctuation).
	DegradationLatency float64
	// DegradationBandwidth divides inter-node bandwidth during a window
	// (default 4).
	DegradationBandwidth float64
	// DegradationDuration is the mean window length in seconds (default 10).
	DegradationDuration float64
}

// Validate rejects malformed specs (DESIGN §5 misuse-error convention).
func (s Spec) Validate() error {
	if s.MTBF < 0 || s.Horizon < 0 || s.StragglerRate < 0 || s.DegradationRate < 0 {
		return fmt.Errorf("fault: spec rates and horizon must be non-negative: %+v", s)
	}
	if s.StragglerSlowdown != 0 && s.StragglerSlowdown < 1 {
		return fmt.Errorf("fault: straggler slowdown %g < 1", s.StragglerSlowdown)
	}
	if s.DegradationLatency != 0 && s.DegradationLatency < 1 {
		return fmt.Errorf("fault: degradation latency factor %g < 1", s.DegradationLatency)
	}
	if s.DegradationBandwidth != 0 && s.DegradationBandwidth < 1 {
		return fmt.Errorf("fault: degradation bandwidth factor %g < 1", s.DegradationBandwidth)
	}
	if s.StragglerDuration < 0 || s.DegradationDuration < 0 {
		return fmt.Errorf("fault: durations must be non-negative")
	}
	return nil
}

func (s Spec) horizon() float64 {
	if s.Horizon > 0 {
		return s.Horizon
	}
	h := 3600.0
	if 200*s.MTBF > h {
		h = 200 * s.MTBF
	}
	return h
}

// Generate materialises a Plan for `ranks` ranks on `nodes` nodes. The
// schedule is a pure function of (spec, platform, experiment, seed): the
// base stream is derived from the platform and experiment labels exactly
// like the jitter streams, then split per event class and per rank.
func Generate(s Spec, platformName, experiment string, ranks, nodes int, seed uint64) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 || nodes <= 0 {
		return nil, fmt.Errorf("fault: need positive ranks (%d) and nodes (%d)", ranks, nodes)
	}
	base := sim.NewRNG(seed).Derive(sim.SeedString(platformName), sim.SeedString(experiment))
	horizon := s.horizon()
	p := &Plan{}

	if s.MTBF > 0 {
		r := base.Derive(0xFA11)
		for t := r.Exponential(s.MTBF); t < horizon; t += r.Exponential(s.MTBF) {
			p.Preemptions = append(p.Preemptions, Preemption{Node: r.Intn(nodes), At: t})
		}
	}

	if s.StragglerRate > 0 {
		mean := 3600 / s.StragglerRate // seconds between windows
		slow := s.StragglerSlowdown
		if slow == 0 {
			slow = 2
		}
		dur := s.StragglerDuration
		if dur == 0 {
			dur = 5
		}
		p.Stragglers = map[int][]cpumodel.Throttle{}
		for rank := 0; rank < ranks; rank++ {
			r := base.Derive(0x57A6, uint64(rank)+1)
			var ws []cpumodel.Throttle
			for t := r.Exponential(mean); t < horizon; t += r.Exponential(mean) {
				w := cpumodel.Throttle{
					Start:  t,
					End:    t + r.Exponential(dur),
					Factor: 1 + r.Exponential(slow-1),
				}
				// Keep windows disjoint: a new window starting inside the
				// previous one is pushed past its end.
				if n := len(ws); n > 0 && w.Start < ws[n-1].End {
					span := w.End - w.Start
					w.Start = ws[n-1].End
					w.End = w.Start + span
				}
				ws = append(ws, w)
				t = w.Start
			}
			if len(ws) > 0 {
				p.Stragglers[rank] = ws
			}
		}
	}

	if s.DegradationRate > 0 {
		mean := 3600 / s.DegradationRate
		lat := s.DegradationLatency
		if lat == 0 {
			lat = 8
		}
		bw := s.DegradationBandwidth
		if bw == 0 {
			bw = 4
		}
		dur := s.DegradationDuration
		if dur == 0 {
			dur = 10
		}
		r := base.Derive(0xDE64)
		for t := r.Exponential(mean); t < horizon; t += r.Exponential(mean) {
			p.Degradations = append(p.Degradations, netmodel.Degradation{
				Start: t, End: t + r.Exponential(dur),
				LatencyFactor: lat, BandwidthFactor: bw,
			})
		}
	}

	sort.Slice(p.Preemptions, func(i, j int) bool { return p.Preemptions[i].At < p.Preemptions[j].At })
	sort.Slice(p.Degradations, func(i, j int) bool { return p.Degradations[i].Start < p.Degradations[j].Start })
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
