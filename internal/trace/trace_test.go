package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/platform"
)

func record(t *testing.T, np int, fn func(c *mpi.Comm) error) *Recorder {
	t.Helper()
	rec := New(np)
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: np})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(platform.Vayu(), pl, mpi.WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecordsEvents(t *testing.T) {
	rec := record(t, 4, func(c *mpi.Comm) error {
		c.Region("work")
		c.Compute(cpumodel.Work{Flops: 1e7})
		c.AllreduceN(8)
		c.ReadShared(1<<20, 4)
		return nil
	})
	if rec.Count() != 4*3 {
		t.Fatalf("events = %d, want 12 (compute, allreduce, io per rank)", rec.Count())
	}
	evs := rec.Events(2)
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
		if e.Dur < 0 || e.Start < 0 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Region != "work" {
			t.Fatalf("region = %q", e.Region)
		}
	}
	for _, want := range []string{"compute", "comm", "io"} {
		if !kinds[want] {
			t.Fatalf("missing kind %q", want)
		}
	}
}

func TestEventsOrderedAndNonOverlapping(t *testing.T) {
	rec := record(t, 2, func(c *mpi.Comm) error {
		for i := 0; i < 10; i++ {
			c.Compute(cpumodel.Work{Flops: 1e6})
			c.AllreduceN(8)
		}
		return nil
	})
	for rank := 0; rank < 2; rank++ {
		last := 0.0
		for i, e := range rec.Events(rank) {
			if e.Start+1e-12 < last {
				t.Fatalf("rank %d event %d overlaps previous: start %v < %v", rank, i, e.Start, last)
			}
			last = e.Start + e.Dur
		}
	}
}

func TestChromeExport(t *testing.T) {
	rec := record(t, 2, func(c *mpi.Comm) error {
		c.Region("phase")
		c.Compute(cpumodel.Work{Flops: 1e6})
		if c.Rank() == 0 {
			c.SendN(1, 0, 1024)
		} else {
			c.RecvN(0, 0)
		}
		return nil
	})
	var buf strings.Builder
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatal("no traceEvents")
	}
	first := events[0].(map[string]any)
	for _, key := range []string{"name", "ph", "ts", "dur", "tid"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("event missing %q: %v", key, first)
		}
	}
	if first["ph"] != "X" {
		t.Fatalf("phase = %v, want X", first["ph"])
	}
	// The send event should carry its byte count.
	found := false
	for _, raw := range events {
		e := raw.(map[string]any)
		if e["name"] == "Send" {
			args := e["args"].(map[string]any)
			if args["bytes"] == "1024" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Send event with bytes=1024 not exported")
	}
}
