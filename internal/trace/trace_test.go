package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/platform"
)

func record(t *testing.T, np int, fn func(c *mpi.Comm) error) *Recorder {
	t.Helper()
	rec := New(np)
	pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: np})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(platform.Vayu(), pl, mpi.WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecordsEvents(t *testing.T) {
	rec := record(t, 4, func(c *mpi.Comm) error {
		c.Region("work")
		c.Compute(cpumodel.Work{Flops: 1e7})
		c.AllreduceN(8)
		c.ReadShared(1<<20, 4)
		return nil
	})
	if rec.Count() != 4*3 {
		t.Fatalf("events = %d, want 12 (compute, allreduce, io per rank)", rec.Count())
	}
	evs := rec.Events(2)
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
		if e.Dur < 0 || e.Start < 0 {
			t.Fatalf("bad event %+v", e)
		}
		if e.Region != "work" {
			t.Fatalf("region = %q", e.Region)
		}
	}
	for _, want := range []string{"compute", "comm", "io"} {
		if !kinds[want] {
			t.Fatalf("missing kind %q", want)
		}
	}
}

func TestEventsOrderedAndNonOverlapping(t *testing.T) {
	rec := record(t, 2, func(c *mpi.Comm) error {
		for i := 0; i < 10; i++ {
			c.Compute(cpumodel.Work{Flops: 1e6})
			c.AllreduceN(8)
		}
		return nil
	})
	for rank := 0; rank < 2; rank++ {
		last := 0.0
		for i, e := range rec.Events(rank) {
			if e.Start+1e-12 < last {
				t.Fatalf("rank %d event %d overlaps previous: start %v < %v", rank, i, e.Start, last)
			}
			last = e.Start + e.Dur
		}
	}
}

func TestChromeExport(t *testing.T) {
	rec := record(t, 2, func(c *mpi.Comm) error {
		c.Region("phase")
		c.Compute(cpumodel.Work{Flops: 1e6})
		if c.Rank() == 0 {
			c.SendN(1, 0, 1024)
		} else {
			c.RecvN(0, 0)
		}
		return nil
	})
	var buf strings.Builder
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatal("no traceEvents")
	}
	first := events[0].(map[string]any)
	for _, key := range []string{"name", "ph", "ts", "dur", "tid"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("event missing %q: %v", key, first)
		}
	}
	if first["ph"] != "X" {
		t.Fatalf("phase = %v, want X", first["ph"])
	}
	// The send event should carry its byte count.
	found := false
	for _, raw := range events {
		e := raw.(map[string]any)
		if e["name"] == "Send" {
			args := e["args"].(map[string]any)
			if args["bytes"] == "1024" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Send event with bytes=1024 not exported")
	}
}

// A recorded timeline must survive the Chrome export and obs parse with
// every analyzer-relevant field intact: wait/queued exactly (shortest
// round-trip float encoding), times to microsecond-conversion precision.
func TestChromeRoundTrip(t *testing.T) {
	rec := record(t, 4, func(c *mpi.Comm) error {
		c.Region("halo")
		c.Compute(cpumodel.Work{Flops: float64(c.Rank()+1) * 1e7})
		if c.Rank() == 0 {
			for dst := 1; dst < c.Size(); dst++ {
				c.SendN(dst, 0, 4096)
			}
		} else {
			c.RecvN(0, 0)
		}
		c.Region("solve")
		c.AllreduceN(1 << 10)
		return nil
	})
	var buf strings.Builder
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := obs.ParseChromeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].PID != 0 {
		t.Fatalf("runs = %+v, want one run with pid 0", runs)
	}
	orig := rec.Timeline()
	got := runs[0].Timeline
	if got.NP() != orig.NP() {
		t.Fatalf("np = %d, want %d", got.NP(), orig.NP())
	}
	for r := range orig {
		if len(got[r]) != len(orig[r]) {
			t.Fatalf("rank %d: %d events, want %d", r, len(got[r]), len(orig[r]))
		}
		for i, want := range orig[r] {
			g := got[r][i]
			if g.Name != want.Name || g.Kind != want.Kind || g.Region != want.Region {
				t.Fatalf("rank %d event %d: %+v, want %+v", r, i, g, want)
			}
			if math.Abs(g.Start-want.Start) > 1e-9 || math.Abs(g.Dur-want.Dur) > 1e-9 {
				t.Fatalf("rank %d event %d times: %+v, want %+v", r, i, g, want)
			}
			if g.Wait != want.Wait || g.Queued != want.Queued {
				t.Fatalf("rank %d event %d wait-state drifted: %+v, want %+v", r, i, g, want)
			}
			if want.Bytes > 0 && g.Bytes != want.Bytes {
				t.Fatalf("rank %d event %d bytes = %d, want %d", r, i, g.Bytes, want.Bytes)
			}
			if want.Wait > 0 && g.Peer != want.Peer {
				t.Fatalf("rank %d event %d peer = %d, want %d", r, i, g.Peer, want.Peer)
			}
		}
	}
}

// End-to-end: record a deliberately imbalanced run and check the obs
// analyzer's invariants on the real runtime's wait-state annotations.
func TestAnalyzeRecordedRun(t *testing.T) {
	const np = 4
	rec := record(t, np, func(c *mpi.Comm) error {
		c.Region("iter")
		for i := 0; i < 3; i++ {
			// Rank 3 computes 4x as long as rank 0, so collective waits
			// should be attributed to it.
			c.Compute(cpumodel.Work{Flops: float64(c.Rank()+1) * 2e7})
			c.AllreduceN(1 << 10)
		}
		return nil
	})
	a := obs.Analyze(rec.Timeline())
	if a.NP != np {
		t.Fatalf("np = %d", a.NP)
	}
	var totalWait float64
	for _, rb := range a.Ranks {
		if rb.Wait > rb.Comm+1e-9 {
			t.Fatalf("rank %d: wait %v exceeds comm %v", rb.Rank, rb.Wait, rb.Comm)
		}
		if rb.End > a.End+1e-12 {
			t.Fatalf("rank %d ends after run end", rb.Rank)
		}
		totalWait += rb.Wait
	}
	if totalWait <= 0 {
		t.Fatal("imbalanced run recorded no wait time")
	}
	if got := a.Waits.LateSender + a.Waits.CollectiveWait; math.Abs(got-totalWait) > 1e-9 {
		t.Fatalf("classified wait %v != per-rank wait %v", got, totalWait)
	}
	// The runtime's collectives run in pairwise stages, so blame spreads
	// across the slow half of the ranks — but the top straggler must come
	// from that half, never from the fast ranks.
	worst, worstWait := -1, 0.0
	for r, w := range a.Waits.ByStraggler {
		if w > worstWait {
			worst, worstWait = r, w
		}
	}
	if worst < np/2 {
		t.Fatalf("top straggler = rank %d (%v s), want a slow rank (>= %d): %v",
			worst, worstWait, np/2, a.Waits.ByStraggler)
	}
	if a.PathLength <= 0 || a.PathLength > a.End+1e-9 {
		t.Fatalf("path length %v outside (0, end=%v]", a.PathLength, a.End)
	}
}

// An inactive FlagSink must hand out true interface nils and flush as a
// no-op, so binaries can wire -trace unconditionally.
func TestFlagSinkInactive(t *testing.T) {
	s := &FlagSink{}
	if s.Active() {
		t.Fatal("zero sink active")
	}
	if tr := s.Tracer(4); tr != nil {
		t.Fatalf("inactive Tracer = %v (%T), want untyped nil", tr, tr)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// Multi merges recordings under distinct pids that obs splits back out.
func TestMultiMergesRunsByPID(t *testing.T) {
	var m Multi
	for run := 0; run < 2; run++ {
		rec := m.New(2)
		pl, err := cluster.Place(platform.Vayu(), cluster.Spec{NP: 2})
		if err != nil {
			t.Fatal(err)
		}
		w, err := mpi.NewWorld(platform.Vayu(), pl, mpi.WithTracer(rec))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(func(c *mpi.Comm) error {
			c.Compute(cpumodel.Work{Flops: 1e6})
			c.AllreduceN(64)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	var buf strings.Builder
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := obs.ParseChromeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].PID != 0 || runs[1].PID != 1 {
		t.Fatalf("got %d runs (pids %v)", len(runs), runs)
	}
	for i, tls := range m.Timelines() {
		if runs[i].Timeline.NP() != tls.NP() {
			t.Fatalf("run %d np mismatch", i)
		}
	}
}
