package trace

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Multi collects several recordings — restart incarnations, the runs of
// a sweep — and merges them into one Chrome trace file with one pid per
// recording, in registration order.
type Multi struct {
	mu   sync.Mutex
	recs []*Recorder
}

// New registers and returns a fresh recorder for np ranks.
func (m *Multi) New(np int) *Recorder {
	rec := New(np)
	m.mu.Lock()
	m.recs = append(m.recs, rec)
	m.mu.Unlock()
	return rec
}

// Len returns the number of registered recordings.
func (m *Multi) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// WriteChrome streams every recording, pid i = i-th registered run.
func (m *Multi) WriteChrome(w io.Writer) error {
	m.mu.Lock()
	recs := append([]*Recorder(nil), m.recs...)
	m.mu.Unlock()
	return writeChromeRuns(w, recs)
}

// Timelines snapshots every recording for the obs analyzer.
func (m *Multi) Timelines() []obs.Timeline {
	m.mu.Lock()
	recs := append([]*Recorder(nil), m.recs...)
	m.mu.Unlock()
	out := make([]obs.Timeline, len(recs))
	for i, rec := range recs {
		out[i] = rec.Timeline()
	}
	return out
}

// FlagSink is the shared handler behind the uniform -trace flag of the
// cmd binaries: it registers the flag, hands out recorders while a run
// executes, and flushes everything recorded to the named file at exit.
// With the flag unset every method is a cheap no-op, and Tracer returns
// a true nil interface (not a typed-nil *Recorder), so callers can pass
// it to mpi.Tee / RunSpec unconditionally.
type FlagSink struct {
	path  string
	multi Multi
}

// AddFlag registers -trace on the default flag set and returns the sink.
// Call before flag.Parse.
func AddFlag() *FlagSink {
	s := &FlagSink{}
	flag.StringVar(&s.path, "trace", "",
		"write a Chrome trace-event JSON timeline to this file")
	return s
}

// Active reports whether -trace was set.
func (s *FlagSink) Active() bool { return s.path != "" }

// Recorder returns a fresh recorder registered with the sink, or nil
// when tracing is off.
func (s *FlagSink) Recorder(np int) *Recorder {
	if !s.Active() {
		return nil
	}
	return s.multi.New(np)
}

// Tracer is Recorder wrapped as an mpi.Tracer that is interface-nil
// when tracing is off.
func (s *FlagSink) Tracer(np int) mpi.Tracer {
	if rec := s.Recorder(np); rec != nil {
		return rec
	}
	return nil
}

// Flush writes the merged Chrome trace to the -trace path; a no-op when
// tracing is off.
func (s *FlagSink) Flush() error {
	if !s.Active() {
		return nil
	}
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	werr := s.multi.WriteChrome(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace: writing %s: %w", s.path, werr)
	}
	return nil
}
