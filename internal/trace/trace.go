// Package trace records per-rank virtual-time event timelines from the
// mpi runtime and exports them in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto), giving the visual per-process breakdown
// the paper draws from IPM (its Figure 7) at full event resolution.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/mpi"
)

// Event is one timeline slice.
type Event struct {
	Rank   int
	Name   string  // call or activity name
	Kind   string  // "comm", "compute", "io"
	Region string  // profiling region active at the time
	Start  float64 // virtual seconds
	Dur    float64
	Bytes  int
}

// Recorder implements mpi.Tracer and accumulates events per rank.
type Recorder struct {
	mu     sync.Mutex
	events [][]Event // per rank
	region []string
}

var _ mpi.Tracer = (*Recorder)(nil)

// New creates a recorder for np ranks.
func New(np int) *Recorder {
	return &Recorder{events: make([][]Event, np), region: make([]string, np)}
}

// Call implements mpi.Tracer.
func (r *Recorder) Call(rank int, rec mpi.CallRecord) {
	r.append(rank, Event{
		Rank: rank, Name: rec.Name, Kind: "comm", Region: rec.Region,
		Start: rec.Start, Dur: rec.Dur, Bytes: rec.Bytes,
	})
}

// Advance implements mpi.Tracer.
func (r *Recorder) Advance(rank int, kind string, start, dur float64) {
	r.append(rank, Event{Rank: rank, Name: kind, Kind: kind, Region: r.regionOf(rank), Start: start, Dur: dur})
}

// Region implements mpi.Tracer.
func (r *Recorder) Region(rank int, name string, at float64) {
	r.mu.Lock()
	r.region[rank] = name
	r.mu.Unlock()
}

func (r *Recorder) regionOf(rank int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.region[rank]
}

func (r *Recorder) append(rank int, e Event) {
	// Per-rank slices are only appended from that rank's goroutine, but
	// the region map is shared; keep the lock for both for simplicity.
	r.mu.Lock()
	r.events[rank] = append(r.events[rank], e)
	r.mu.Unlock()
}

// Events returns a copy of one rank's timeline.
func (r *Recorder) Events(rank int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events[rank]...)
}

// Count returns the total recorded events.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		n += len(ev)
	}
	return n
}

// chromeEvent is the trace-event JSON schema ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the whole timeline in Chrome trace-event format.
// Virtual seconds map to trace microseconds so second-scale runs render
// comfortably.
func (r *Recorder) WriteChrome(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []chromeEvent
	for rank, evs := range r.events {
		for _, e := range evs {
			ce := chromeEvent{
				Name: e.Name, Cat: e.Kind, Ph: "X",
				TS: e.Start * 1e6, Dur: e.Dur * 1e6,
				PID: 0, TID: rank,
			}
			if e.Region != "" || e.Bytes > 0 {
				ce.Args = map[string]string{}
				if e.Region != "" {
					ce.Args["region"] = e.Region
				}
				if e.Bytes > 0 {
					ce.Args["bytes"] = fmt.Sprintf("%d", e.Bytes)
				}
			}
			all = append(all, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": all, "displayTimeUnit": "ms"})
}
