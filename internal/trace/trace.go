// Package trace records per-rank virtual-time event timelines from the
// mpi runtime and exports them in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto), giving the visual per-process breakdown
// the paper draws from IPM (its Figure 7) at full event resolution.
// Recorded timelines also feed the obs wait-state and critical-path
// analyzer via Timeline().
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Event is one timeline slice, aliased to the neutral obs.Event so the
// analyzer consumes recorder output (and parsed Chrome files) through
// one type without obs importing the runtime.
type Event = obs.Event

// rankTrace is one rank's private recording state. The tracer contract
// guarantees calls for a rank are sequential, so the mutex only orders
// that rank's appends against cross-goroutine readers (Events,
// WriteChrome after the run) — ranks never contend with each other.
type rankTrace struct {
	mu     sync.Mutex
	events []Event
	region string
	_      [64]byte // keep adjacent ranks' hot state off one cache line
}

// Recorder implements mpi.Tracer and accumulates events per rank.
type Recorder struct {
	ranks []rankTrace
}

var _ mpi.Tracer = (*Recorder)(nil)

// New creates a recorder for np ranks.
func New(np int) *Recorder {
	return &Recorder{ranks: make([]rankTrace, np)}
}

// NP returns the number of ranks the recorder was created for.
func (r *Recorder) NP() int { return len(r.ranks) }

// Call implements mpi.Tracer.
func (r *Recorder) Call(rank int, rec mpi.CallRecord) {
	rt := &r.ranks[rank]
	rt.mu.Lock()
	rt.events = append(rt.events, Event{
		Rank: rank, Name: rec.Name, Kind: "comm", Region: rec.Region,
		Start: rec.Start, Dur: rec.Dur, Bytes: rec.Bytes,
		Wait: rec.Wait, Queued: rec.Queued, Peer: rec.Peer,
	})
	rt.mu.Unlock()
}

// Advance implements mpi.Tracer.
func (r *Recorder) Advance(rank int, kind string, start, dur float64) {
	rt := &r.ranks[rank]
	rt.mu.Lock()
	rt.events = append(rt.events, Event{
		Rank: rank, Name: kind, Kind: kind, Region: rt.region,
		Start: start, Dur: dur, Peer: -1,
	})
	rt.mu.Unlock()
}

// Region implements mpi.Tracer.
func (r *Recorder) Region(rank int, name string, at float64) {
	rt := &r.ranks[rank]
	rt.mu.Lock()
	rt.region = name
	rt.mu.Unlock()
}

// Events returns a copy of one rank's timeline.
func (r *Recorder) Events(rank int) []Event {
	rt := &r.ranks[rank]
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]Event(nil), rt.events...)
}

// Count returns the total recorded events.
func (r *Recorder) Count() int {
	n := 0
	for rank := range r.ranks {
		rt := &r.ranks[rank]
		rt.mu.Lock()
		n += len(rt.events)
		rt.mu.Unlock()
	}
	return n
}

// Timeline snapshots the full recording for the obs analyzer.
func (r *Recorder) Timeline() obs.Timeline {
	tl := make(obs.Timeline, len(r.ranks))
	for rank := range r.ranks {
		tl[rank] = r.Events(rank)
	}
	return tl
}

// chromeEvent is the trace-event JSON schema ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome writes the whole timeline in Chrome trace-event format.
// Virtual seconds map to trace microseconds so second-scale runs render
// comfortably. Events stream to the encoder one at a time — memory stays
// O(1) in the event count — ordered deterministically by (rank, start).
func (r *Recorder) WriteChrome(w io.Writer) error {
	return writeChromeRuns(w, []*Recorder{r})
}

// writeChromeRuns streams one or more recordings, with the i-th
// recording's events under pid i.
func writeChromeRuns(w io.Writer, runs []*Recorder) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	for pid, rec := range runs {
		for rank := range rec.ranks {
			evs := rec.Events(rank)
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
			for _, e := range evs {
				ce := chromeEvent{
					Name: e.Name, Cat: e.Kind, Ph: "X",
					TS: e.Start * 1e6, Dur: e.Dur * 1e6,
					PID: pid, TID: rank,
					Args: chromeArgs(e),
				}
				b, err := json.Marshal(ce)
				if err != nil {
					return err
				}
				if !first {
					if err := bw.WriteByte(','); err != nil {
						return err
					}
				}
				first = false
				if _, err := bw.Write(b); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeArgs renders the event's metadata as string args. Wait-state
// floats use strconv's shortest round-trippable form so obs can parse
// them back exactly.
func chromeArgs(e Event) map[string]string {
	if e.Region == "" && e.Bytes <= 0 && e.Wait <= 0 && e.Queued <= 0 {
		return nil
	}
	args := map[string]string{}
	if e.Region != "" {
		args["region"] = e.Region
	}
	if e.Bytes > 0 {
		args["bytes"] = fmt.Sprintf("%d", e.Bytes)
	}
	if e.Wait > 0 {
		args["wait"] = strconv.FormatFloat(e.Wait, 'g', -1, 64)
		if e.Peer >= 0 {
			args["peer"] = strconv.Itoa(e.Peer)
		}
	}
	if e.Queued > 0 {
		args["queued"] = strconv.FormatFloat(e.Queued, 'g', -1, 64)
	}
	return args
}
