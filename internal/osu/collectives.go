package osu

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// The OSU suite's collective latency benchmarks (osu_allreduce,
// osu_alltoall, osu_bcast) and the bidirectional bandwidth test
// (osu_bibw). Not shown in the paper's figures, but used by its analysis
// ("the communication of the KSp section are entirely 4-byte all-reduce
// operations") and by the arrive advisor's calibration.

const collIters = 50

// collectiveWorld places np ranks with the platform's default (block)
// policy.
func collectiveWorld(p *platform.Platform, np int, seed uint64) (*mpi.World, error) {
	pl, err := cluster.Place(p, cluster.Spec{NP: np})
	if err != nil {
		return nil, fmt.Errorf("osu: %w", err)
	}
	return mpi.NewWorld(p, pl, mpi.WithSeed(seed))
}

// collectiveLatency times one collective op per message size: the mean
// virtual seconds per operation at rank 0.
func collectiveLatency(p *platform.Platform, np int, sizes []int, seed uint64,
	op func(c *mpi.Comm, bytes int)) ([]Point, error) {
	w, err := collectiveWorld(p, np, seed)
	if err != nil {
		return nil, err
	}
	results := make([]float64, len(sizes))
	_, err = w.Run(func(c *mpi.Comm) error {
		for si, n := range sizes {
			c.Barrier()
			start := c.Clock()
			for it := 0; it < collIters; it++ {
				op(c, n)
			}
			if c.Rank() == 0 {
				results[si] = (c.Clock() - start) / collIters
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(sizes))
	for i, n := range sizes {
		points[i] = Point{Bytes: n, Value: results[i]}
	}
	return points, nil
}

// AllreduceLatency runs osu_allreduce: mean seconds per np-rank allreduce.
func AllreduceLatency(p *platform.Platform, np int, sizes []int) ([]Point, error) {
	return collectiveLatency(p, np, sizes, 0, func(c *mpi.Comm, n int) {
		c.AllreduceN(n)
	})
}

// AlltoallLatency runs osu_alltoall: mean seconds per np-rank alltoall of
// n-byte blocks.
func AlltoallLatency(p *platform.Platform, np int, sizes []int) ([]Point, error) {
	return collectiveLatency(p, np, sizes, 0, func(c *mpi.Comm, n int) {
		c.AlltoallN(n)
	})
}

// BcastLatency runs osu_bcast: mean seconds per np-rank broadcast.
func BcastLatency(p *platform.Platform, np int, sizes []int) ([]Point, error) {
	return collectiveLatency(p, np, sizes, 0, func(c *mpi.Comm, n int) {
		c.BcastN(0, n)
	})
}

// BiBandwidth runs osu_bibw: both ranks stream windows simultaneously;
// reported value is the aggregate MB/s.
func BiBandwidth(p *platform.Platform, sizes []int) ([]Point, error) {
	w, err := twoNodeWorld(p, Opts{})
	if err != nil {
		return nil, err
	}
	results := make([]float64, len(sizes))
	_, err = w.Run(func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		for si, n := range sizes {
			c.Barrier()
			start := c.Clock()
			for it := 0; it < bwIters; it++ {
				sends := make([]*mpi.Request, bwWindow)
				recvs := make([]*mpi.Request, bwWindow)
				for i := range recvs {
					recvs[i] = c.IrecvN(peer, si)
				}
				for i := range sends {
					sends[i] = c.IsendN(peer, si, n)
				}
				c.Waitall(recvs...)
				c.Waitall(sends...)
			}
			if c.Rank() == 0 {
				elapsed := c.Clock() - start
				total := 2 * float64(bwIters) * bwWindow * float64(n)
				results[si] = total / elapsed / (1 << 20)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(sizes))
	for i, n := range sizes {
		points[i] = Point{Bytes: n, Value: results[i]}
	}
	return points, nil
}
