package osu

import (
	"testing"

	"repro/internal/platform"
)

func TestDefaultSizes(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 1 || sizes[len(sizes)-1] != 4<<20 {
		t.Fatalf("sizes span %d..%d, want 1..4M", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Fatal("sizes must double")
		}
	}
}

func TestBandwidthSaturatesNearLinkRate(t *testing.T) {
	// Large-message windowed bandwidth must approach the modelled peak:
	// ~3200 (Vayu), ~560 (EC2), ~190 (DCC) MB/s.
	cases := []struct {
		p    *platform.Platform
		peak float64
	}{
		{platform.Vayu(), 3200},
		{platform.EC2(), 560},
		{platform.DCC(), 190},
	}
	for _, cse := range cases {
		pts, err := Bandwidth(cse.p, []int{4 << 20})
		if err != nil {
			t.Fatalf("%s: %v", cse.p.Name, err)
		}
		got := pts[0].Value
		if got < 0.7*cse.peak || got > 1.1*cse.peak {
			t.Errorf("%s: peak bandwidth = %.0f MB/s, want ~%.0f", cse.p.Name, got, cse.peak)
		}
	}
}

func TestBandwidthMonotoneOrdering(t *testing.T) {
	// Figure 1: Vayu > EC2 > DCC at every message size.
	sizes := []int{64, 4096, 1 << 18, 1 << 21}
	bw := map[string][]Point{}
	for _, p := range platform.All() {
		pts, err := Bandwidth(p, sizes)
		if err != nil {
			t.Fatal(err)
		}
		bw[p.Name] = pts
	}
	for i := range sizes {
		v, e, d := bw["vayu"][i].Value, bw["ec2"][i].Value, bw["dcc"][i].Value
		if !(v > e && e > d) {
			t.Errorf("size %d: ordering violated: vayu=%.2f ec2=%.2f dcc=%.2f", sizes[i], v, e, d)
		}
	}
}

func TestBandwidthGrowsWithSize(t *testing.T) {
	pts, err := Bandwidth(platform.Vayu(), []int{64, 1024, 1 << 16, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Fatalf("bandwidth should grow with size: %v", pts)
		}
	}
}

func TestLatencySmallMessageCalibration(t *testing.T) {
	// Figure 2: microsecond-scale on Vayu, tens of microseconds on the
	// virtualised clusters.
	small := []int{1}
	v, err := Latency(platform.Vayu(), small)
	if err != nil {
		t.Fatal(err)
	}
	if lat := v[0].Value; lat < 1e-6 || lat > 5e-6 {
		t.Errorf("vayu 1-byte latency = %v, want a few microseconds", lat)
	}
	e, err := Latency(platform.EC2(), small)
	if err != nil {
		t.Fatal(err)
	}
	if lat := e[0].Value; lat < 30e-6 || lat > 150e-6 {
		t.Errorf("ec2 1-byte latency = %v, want tens of microseconds", lat)
	}
	d, err := Latency(platform.DCC(), small)
	if err != nil {
		t.Fatal(err)
	}
	if lat := d[0].Value; lat < 40e-6 {
		t.Errorf("dcc 1-byte latency = %v, want >= 40us", lat)
	}
}

func TestLatencyOrdering(t *testing.T) {
	sizes := []int{8, 1024, 1 << 16}
	lat := map[string][]Point{}
	for _, p := range platform.All() {
		pts, err := Latency(p, sizes)
		if err != nil {
			t.Fatal(err)
		}
		lat[p.Name] = pts
	}
	for i := range sizes {
		v, e, d := lat["vayu"][i].Value, lat["ec2"][i].Value, lat["dcc"][i].Value
		if !(v < e && e < d) {
			t.Errorf("size %d: latency ordering violated: vayu=%v ec2=%v dcc=%v", sizes[i], v, e, d)
		}
	}
}

func TestDCCLatencyFluctuatesAcrossRepetitions(t *testing.T) {
	// The paper: "latencies observed on DCC fluctuated from 1 byte to
	// 512KB messages". Different repetitions (seeds) must disagree
	// noticeably on DCC and barely on Vayu.
	spread := func(p *platform.Platform) float64 {
		var lo, hi float64
		for seed := uint64(0); seed < 5; seed++ {
			pts, err := LatencySeeded(p, []int{1024}, seed)
			if err != nil {
				t.Fatal(err)
			}
			v := pts[0].Value
			if seed == 0 || v < lo {
				lo = v
			}
			if seed == 0 || v > hi {
				hi = v
			}
		}
		return (hi - lo) / lo
	}
	if s := spread(platform.DCC()); s < 0.05 {
		t.Errorf("DCC latency spread across runs = %v, want visible fluctuation", s)
	}
	if s := spread(platform.Vayu()); s > 0.05 {
		t.Errorf("Vayu latency spread across runs = %v, want stable", s)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	a, err := BandwidthSeeded(platform.DCC(), []int{4096}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BandwidthSeeded(platform.DCC(), []int{4096}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Value != b[0].Value {
		t.Fatal("same seed should reproduce exactly")
	}
}
