package osu

import (
	"testing"

	"repro/internal/platform"
)

func TestAllreduceLatencyGrowsWithRanks(t *testing.T) {
	at := func(np int) float64 {
		pts, err := AllreduceLatency(platform.DCC(), np, []int{8})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].Value
	}
	l16, l64 := at(16), at(64)
	if l64 <= l16 {
		t.Fatalf("allreduce latency should grow with ranks: 16->%v 64->%v", l16, l64)
	}
}

func TestAllreduceLatencyPlatformOrdering(t *testing.T) {
	// The KSp finding: a tiny allreduce across nodes is far cheaper on
	// InfiniBand.
	lat := func(p *platform.Platform) float64 {
		pts, err := AllreduceLatency(p, 32, []int{8})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].Value
	}
	v, d, e := lat(platform.Vayu()), lat(platform.DCC()), lat(platform.EC2())
	if !(v < e && e < d) {
		t.Fatalf("ordering violated: vayu=%v ec2=%v dcc=%v", v, e, d)
	}
	if d < 8*v {
		t.Fatalf("DCC/Vayu tiny-allreduce ratio = %v, want large", d/v)
	}
}

func TestAlltoallLatencyGrowsWithSize(t *testing.T) {
	pts, err := AlltoallLatency(platform.EC2(), 16, []int{8, 1024, 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Fatalf("alltoall latency should grow with block size: %v", pts)
		}
	}
}

func TestBcastCheaperThanAlltoall(t *testing.T) {
	b, err := BcastLatency(platform.DCC(), 32, []int{4096})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AlltoallLatency(platform.DCC(), 32, []int{4096})
	if err != nil {
		t.Fatal(err)
	}
	if b[0].Value >= a[0].Value {
		t.Fatalf("bcast (%v) should be cheaper than alltoall (%v)", b[0].Value, a[0].Value)
	}
}

func TestBiBandwidthExceedsUnidirectional(t *testing.T) {
	sizes := []int{1 << 20}
	for _, p := range []*platform.Platform{platform.Vayu(), platform.EC2()} {
		uni, err := Bandwidth(p, sizes)
		if err != nil {
			t.Fatal(err)
		}
		bi, err := BiBandwidth(p, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if bi[0].Value <= uni[0].Value*1.2 {
			t.Fatalf("%s: bidirectional %v should clearly exceed unidirectional %v",
				p.Name, bi[0].Value, uni[0].Value)
		}
	}
}
