// Package osu implements the OSU MPI micro-benchmarks used in Figures 1
// and 2 of the paper: sustained point-to-point bandwidth (windowed
// nonblocking sends) and ping-pong latency between two compute nodes.
package osu

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Opts carries the optional knobs of a benchmark run. The zero value is
// the seed-0 run with no observability attached.
type Opts struct {
	Seed uint64
	// Tracer, when set, observes every event of the 2-rank world (e.g. a
	// trace.Recorder exporting a Chrome timeline).
	Tracer mpi.Tracer
	// Metrics, when set, receives the mpi runtime's counters.
	Metrics *obs.Registry
	// Meter, when set, accumulates the run's virtual wall time.
	Meter *sim.Meter
	// Runtime selects the mpi execution engine (default mpi.Goroutine).
	Runtime mpi.Runtime
}

// Point is one benchmark sample.
type Point struct {
	Bytes int
	Value float64 // MB/s for bandwidth, seconds for latency
}

// DefaultSizes returns the message sizes of the OSU curves: powers of two
// from 1 byte to 4 MB.
func DefaultSizes() []int {
	var sizes []int
	for n := 1; n <= 4<<20; n <<= 1 {
		sizes = append(sizes, n)
	}
	return sizes
}

const (
	bwWindow = 64 // outstanding sends per window (osu_bw default)
	bwIters  = 20
	latIters = 100
)

// twoNodeWorld builds a 2-rank world with one rank per node, the OSU
// configuration ("between two compute nodes").
func twoNodeWorld(p *platform.Platform, o Opts) (*mpi.World, error) {
	pl, err := cluster.Place(p, cluster.Spec{NP: 2, Nodes: 2, Policy: cluster.Spread})
	if err != nil {
		return nil, fmt.Errorf("osu: %w", err)
	}
	wopts := []mpi.Option{mpi.WithSeed(o.Seed)}
	if o.Tracer != nil {
		wopts = append(wopts, mpi.WithTracer(o.Tracer))
	}
	if o.Metrics != nil {
		wopts = append(wopts, mpi.WithMetrics(o.Metrics))
	}
	if o.Runtime != mpi.Goroutine {
		wopts = append(wopts, mpi.WithRuntime(o.Runtime))
	}
	return mpi.NewWorld(p, pl, wopts...)
}

// Bandwidth runs the osu_bw benchmark on p for the given message sizes and
// returns one point per size in MB/s.
func Bandwidth(p *platform.Platform, sizes []int) ([]Point, error) {
	return BandwidthSeeded(p, sizes, 0)
}

// BandwidthSeeded is Bandwidth with an explicit jitter seed (repetition
// index).
func BandwidthSeeded(p *platform.Platform, sizes []int, seed uint64) ([]Point, error) {
	return BandwidthOpts(p, sizes, Opts{Seed: seed})
}

// BandwidthOpts is Bandwidth with full observability knobs.
func BandwidthOpts(p *platform.Platform, sizes []int, o Opts) ([]Point, error) {
	w, err := twoNodeWorld(p, o)
	if err != nil {
		return nil, err
	}
	results := make([]float64, len(sizes))
	res, err := w.Run(func(c *mpi.Comm) error {
		for si, n := range sizes {
			if c.Rank() == 0 {
				start := c.Clock()
				for it := 0; it < bwIters; it++ {
					reqs := make([]*mpi.Request, bwWindow)
					for i := range reqs {
						reqs[i] = c.IsendN(1, si, n)
					}
					c.Waitall(reqs...)
					c.RecvN(1, si) // window acknowledgement
				}
				elapsed := c.Clock() - start
				total := float64(bwIters) * bwWindow * float64(n)
				results[si] = total / elapsed / (1 << 20)
			} else {
				for it := 0; it < bwIters; it++ {
					reqs := make([]*mpi.Request, bwWindow)
					for i := range reqs {
						reqs[i] = c.IrecvN(0, si)
					}
					c.Waitall(reqs...)
					c.SendN(0, si, 4)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	w.Release()
	o.Meter.Add(res.Time)
	points := make([]Point, len(sizes))
	for i, n := range sizes {
		points[i] = Point{Bytes: n, Value: results[i]}
	}
	return points, nil
}

// Latency runs the osu_latency ping-pong benchmark on p and returns the
// one-way latency in seconds per message size.
func Latency(p *platform.Platform, sizes []int) ([]Point, error) {
	return LatencySeeded(p, sizes, 0)
}

// LatencySeeded is Latency with an explicit jitter seed.
func LatencySeeded(p *platform.Platform, sizes []int, seed uint64) ([]Point, error) {
	return LatencyOpts(p, sizes, Opts{Seed: seed})
}

// LatencyOpts is Latency with full observability knobs.
func LatencyOpts(p *platform.Platform, sizes []int, o Opts) ([]Point, error) {
	w, err := twoNodeWorld(p, o)
	if err != nil {
		return nil, err
	}
	results := make([]float64, len(sizes))
	res, err := w.Run(func(c *mpi.Comm) error {
		for si, n := range sizes {
			if c.Rank() == 0 {
				start := c.Clock()
				for it := 0; it < latIters; it++ {
					c.SendN(1, si, n)
					c.RecvN(1, si)
				}
				elapsed := c.Clock() - start
				results[si] = elapsed / (2 * latIters)
			} else {
				for it := 0; it < latIters; it++ {
					c.RecvN(0, si)
					c.SendN(0, si, n)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	w.Release()
	o.Meter.Add(res.Time)
	points := make([]Point, len(sizes))
	for i, n := range sizes {
		points[i] = Point{Bytes: n, Value: results[i]}
	}
	return points, nil
}
