package facility

import (
	"fmt"

	"repro/internal/arrive"
	"repro/internal/fault"
	"repro/internal/iomodel"
)

// SpotConfig makes the EC2 pool a spot-market pool: jobs there bill at
// the spot price but lose capacity during the plan's outage windows,
// rolling execution back to the last checkpoint. Checkpoint writes and
// post-outage restores are charged through the iomodel filesystem, so
// the cost of surviving interruptions is the same I/O arithmetic the
// resilient MPI runtime pays.
type SpotConfig struct {
	// Plan holds the outage windows in virtual seconds (facility time).
	// OutageAt freezes the pool's scheduler; a running job interrupted by
	// an outage rolls back to its last checkpoint (fault.Progress).
	Plan *fault.Plan
	// Price is the $ per slot-hour billed for busy time on the pool.
	Price float64

	// CheckpointInterval is the execution seconds between periodic
	// checkpoints (0 = no checkpointing: every interruption restarts the
	// job from zero).
	CheckpointInterval float64
	// CheckpointBytes is the per-rank checkpoint image size; the write
	// (and the restore after an outage) is priced by FS and added to the
	// job's busy time.
	CheckpointBytes int64
	// FS prices checkpoint writes and restores. Required when
	// CheckpointBytes is set.
	FS iomodel.FS
}

// Validate rejects malformed spot configurations.
func (s *SpotConfig) Validate() error {
	if s.Price < 0 {
		return fmt.Errorf("facility: spot price %g must be non-negative", s.Price)
	}
	if s.CheckpointInterval < 0 || s.CheckpointBytes < 0 {
		return fmt.Errorf("facility: negative spot checkpoint knob")
	}
	if s.CheckpointBytes > 0 {
		if err := s.FS.Validate(); err != nil {
			return fmt.Errorf("facility: spot checkpoint filesystem: %w", err)
		}
	}
	return s.Plan.Validate()
}

// outageEndAt returns the end of the outage window covering t, if any.
func (s *SpotConfig) outageEndAt(t float64) (float64, bool) {
	if s.Plan == nil {
		return 0, false
	}
	for _, o := range s.Plan.Outages {
		if o.Start > t {
			return 0, false // sorted by start
		}
		if t < o.End {
			return o.End, true
		}
	}
	return 0, false
}

// nextOutageAfter returns the start of the first outage strictly after t.
func (s *SpotConfig) nextOutageAfter(t float64) (float64, bool) {
	if s.Plan == nil {
		return 0, false
	}
	for _, o := range s.Plan.Outages {
		if o.Start > t {
			return o.Start, true
		}
	}
	return 0, false
}

// spotResult is one spot execution, computed in closed form at dispatch.
type spotResult struct {
	end           float64 // wall completion time (includes outage gaps)
	billed        float64 // busy seconds billed (exec + checkpoints + restores)
	interruptions int
	lost          float64 // rolled-back execution seconds
}

// run walks one job of `base` execution seconds starting at `start`
// through the outage plan: execution and periodic checkpoint writes
// accumulate busy (billed) time; an outage interrupts the job, rolls
// progress back to the durable point (fault.Progress arithmetic) and,
// once capacity returns, charges a checkpoint restore before execution
// resumes. The walk is a pure function of (start, base, np, config), so
// the facility needs only one completion event per spot job.
func (s *SpotConfig) run(start, base float64, np int) spotResult {
	var res spotResult
	var ckWrite, ckRestore float64
	if s.CheckpointInterval > 0 && s.CheckpointBytes > 0 {
		ckWrite = s.FS.CheckpointSeconds(s.CheckpointBytes, np)
		ckRestore = s.FS.ReadSeconds(s.CheckpointBytes, np)
	}
	prog := fault.Progress{Total: base}
	t := start
	sinceCk := 0.0
	for !prog.Completed() {
		if end, out := s.outageEndAt(t); out {
			// Capacity lost: roll back to the durable point and wait the
			// outage out; resuming from a checkpoint pays the restore read.
			res.lost += prog.Interrupt()
			res.interruptions++
			sinceCk = 0
			t = end
			if prog.Durable > 0 && ckRestore > 0 {
				t += ckRestore
				res.billed += ckRestore
			}
			continue
		}
		// Execute until completion, the next periodic checkpoint, or the
		// next outage — whichever is first.
		seg := prog.Remaining()
		if s.CheckpointInterval > 0 {
			if d := s.CheckpointInterval - sinceCk; d < seg {
				seg = d
			}
		}
		if at, ok := s.nextOutageAfter(t); ok && at-t < seg {
			seg = at - t
		}
		if seg > 0 {
			prog.Advance(seg)
			res.billed += seg
			t += seg
			sinceCk += seg
		}
		if prog.Completed() {
			break
		}
		if s.CheckpointInterval > 0 && sinceCk >= s.CheckpointInterval {
			t += ckWrite
			res.billed += ckWrite
			prog.Checkpoint()
			sinceCk = 0
		}
	}
	res.end = t
	return res
}

// MarketSpot derives a SpotConfig from the paper-era cc1.4xlarge spot
// market: the deterministic price path against `bid` yields the outage
// windows (arrive.SpotMarket.InterruptionPlan works in hours; the
// facility clock is seconds, so the plan is rescaled), billed at the
// market's long-run mean spot price, with periodic checkpoints of
// ckBytes per rank priced on the EC2 NFS filesystem. horizonHours of 0
// means the market's two-week default.
func MarketSpot(seed uint64, bid, horizonHours float64, ckBytes int64) (*SpotConfig, error) {
	m := arrive.NewSpotMarket(seed)
	plan, err := m.InterruptionPlan(bid, horizonHours)
	if err != nil {
		return nil, err
	}
	for i := range plan.Outages {
		plan.Outages[i].Start *= 3600
		plan.Outages[i].End *= 3600
	}
	for i := range plan.Preemptions {
		plan.Preemptions[i].At *= 3600
	}
	cfg := &SpotConfig{
		Plan:               plan,
		Price:              m.Mean,
		CheckpointInterval: 3600,
		CheckpointBytes:    ckBytes,
		FS:                 iomodel.NFSEC2(),
	}
	return cfg, cfg.Validate()
}
