//go:build race

package facility

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
