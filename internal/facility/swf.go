package facility

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Standard Workload Format ingestion: the parallel-workloads archive's
// trace format (Feitelson's SWF) is one job per line, 18
// whitespace-separated numeric fields, with ';' header/comment lines.
// ParseSWF maps the fields the facility models onto Job and applies the
// archive community's usual cleaning rules; everything it returns
// passes the facility's own job validation, the contract FuzzParseSWF
// pins.

// SWF field indices (0-based) of the 18-field record.
const (
	swfJobID = iota
	swfSubmit
	swfWait
	swfRuntime
	swfUsedProcs
	swfAvgCPU
	swfUsedMem
	swfReqProcs
	swfReqTime
	swfReqMem
	swfStatus
	swfUserID
	swfGroupID
	swfAppID
	swfQueueID
	swfPartID
	swfPrecedingJob
	swfThinkTime
	swfFields
)

// ParseSWF parses a Standard Workload Format trace into jobs, in file
// order (SWF traces are submit-ordered; the facility's event heap does
// not require it). Field mapping:
//
//	Submit  <- submit time (field 2)
//	Runtime <- run time (field 4), falling back to the requested time
//	NP      <- used processors (field 5), falling back to requested
//	Limit   <- requested time (field 9) when positive, else 0 (= Runtime)
//	Tenant  <- "u<user id>" (field 12)
//	Class   <- "app<app id>" (field 14), else "q<queue>" (15), else "swf"
//
// Records the facility cannot schedule — no positive runtime or
// processor count even after fallbacks (cancelled jobs, burst entries)
// — are skipped, the standard cleaning rule for this archive. Malformed
// lines (wrong field count, non-numeric or non-finite values, negative
// submit) are errors.
func ParseSWF(data []byte) ([]Job, error) {
	var jobs []Job
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line[0] == ';' || line[0] == '#' {
			continue
		}
		f := strings.Fields(line)
		if len(f) != swfFields {
			return nil, fmt.Errorf("facility: swf line %d: %d fields, want %d", ln+1, len(f), swfFields)
		}
		v := make([]float64, swfFields)
		for i, s := range f {
			x, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("facility: swf line %d field %d: %v", ln+1, i+1, err)
			}
			if math.IsInf(x, 0) || math.IsNaN(x) {
				return nil, fmt.Errorf("facility: swf line %d field %d: non-finite value %s", ln+1, i+1, s)
			}
			v[i] = x
		}
		if v[swfSubmit] < 0 {
			return nil, fmt.Errorf("facility: swf line %d: negative submit time %g", ln+1, v[swfSubmit])
		}
		runtime := v[swfRuntime]
		if runtime <= 0 {
			runtime = v[swfReqTime]
		}
		np := int(v[swfUsedProcs])
		if np <= 0 {
			np = int(v[swfReqProcs])
		}
		if runtime <= 0 || np <= 0 {
			continue // cancelled or never-ran record: nothing to schedule
		}
		limit := 0.0
		if v[swfReqTime] > 0 {
			limit = v[swfReqTime]
		}
		class := "swf"
		switch {
		case v[swfAppID] >= 0:
			class = "app" + strconv.Itoa(int(v[swfAppID]))
		case v[swfQueueID] >= 0:
			class = "q" + strconv.Itoa(int(v[swfQueueID]))
		}
		jobs = append(jobs, Job{
			Tenant:  "u" + strconv.Itoa(int(v[swfUserID])),
			Class:   class,
			NP:      np,
			Runtime: runtime,
			Limit:   limit,
			Submit:  v[swfSubmit],
		})
	}
	return jobs, nil
}
