package facility

import "sort"

// The incremental scheduler (SchedHeap, the default): the structures
// that make a 10^6-job run near-linear.
//
//   - Pending jobs live in a binary min-heap ordered by (priority key,
//     submit, seq). The key is the tenant's time-independent log-domain
//     fairshare key (tenantUsage.key), cached in the entry with the
//     account's charge generation. Charges only move a key upward, so a
//     stale cached key is a lower bound: popping the heap minimum,
//     re-keying it if its generation lags and pushing it back yields the
//     exact minimum — the classic lazy priority queue, with no
//     tenant-to-entries index and no per-pass sort.
//   - The HPC pool maintains a release profile: the running jobs'
//     planning-bound release times kept in (at, seq) order, updated by
//     binary-search insert/remove on start/finish. EASY reservations walk
//     it with the identical accumulation loop the sort oracle runs over
//     its freshly-sorted copy, so the two paths compute bit-equal
//     (reservation, spare) pairs.
//   - estWait reads the maintained aggregates both paths share
//     (facility.go), so routing is O(1) instead of O(queue + running).
//
// At saturation p.free is 0 and a backfill pass pops nothing — the
// whole pass is O(1) — which is why queue depth stops being the
// bottleneck.

// heapEntry is one pending job with its cached priority key and the
// charge generation the key was computed at (both zero without
// fairshare, collapsing the order to FCFS (submit, seq)).
type heapEntry struct {
	key float64
	gen uint32
	rec *jobRec
}

// entryLess is the strict total order (key, submit, seq). seq is unique
// per job, so heap pops enumerate entries in exactly this order no
// matter what order they were pushed.
func entryLess(a, b heapEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.rec.job.Submit != b.rec.job.Submit {
		return a.rec.job.Submit < b.rec.job.Submit
	}
	return a.rec.seq < b.rec.seq
}

// pendHeap is a plain binary min-heap of heapEntry.
type pendHeap struct{ h []heapEntry }

func (q *pendHeap) len() int { return len(q.h) }

func (q *pendHeap) push(e heapEntry) {
	//lint:allow reprolint/allochot amortised heap growth; the backing array lives for the facility's lifetime
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *pendHeap) pop() heapEntry {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = heapEntry{} // release the jobRec reference
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.h) && entryLess(q.h[l], q.h[min]) {
			min = l
		}
		if r < len(q.h) && entryLess(q.h[r], q.h[min]) {
			min = r
		}
		if min == i {
			return top
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// popFresh pops the true minimum-priority pending job: an entry whose
// cached key is stale (its tenant was charged since the key was cached)
// is re-keyed and re-pushed. Its key can only have increased, so the
// first generation-fresh pop is the exact minimum; charges only happen
// between scheduling passes, so every entry is re-keyed at most once
// per pass and the loop terminates.
func (f *Facility) popFresh(p *poolState) heapEntry {
	for {
		e := p.pend.pop()
		if e.rec.acct == nil || e.gen == e.rec.acct.gen {
			return e
		}
		e.key = e.rec.acct.key(f.share.half)
		e.gen = e.rec.acct.gen
		p.pend.push(e)
	}
}

// scheduleHeap is one pass of the incremental scheduler: pop-start
// pending jobs in priority order while they fit, then backfill behind
// the blocked head.
func (f *Facility) scheduleHeap(p *poolState) {
	var head heapEntry
	for {
		if p.pend.len() == 0 {
			return
		}
		head = f.popFresh(p)
		if head.rec.job.NP > p.free {
			break
		}
		f.start(p, head.rec)
	}
	if p.id != PoolHPC || !f.cfg.Backfill {
		p.pend.push(head)
		return
	}
	f.backfillHeap(p, head)
}

// backfillHeap is the EASY pass over the heap: the head's reservation
// and spare slots come from the maintained release profile (no sort);
// candidates are popped in priority order up to the depth cap, started
// when they cannot delay the head, and re-pushed with their cached keys
// otherwise.
func (f *Facility) backfillHeap(p *poolState, head heapEntry) {
	resv, spare := p.profile.reservation(f.clock, p.free, head.rec.job.NP)
	f.reserve(head.rec, resv)
	depth := f.cfg.backfillDepth()
	//lint:allow reprolint/allochot reuses f.scratch backing; grows only to the deepest backfill window
	kept := append(f.scratch[:0], head)
	for i := 0; i < depth && p.free > 0 && p.pend.len() > 0; i++ {
		e := f.popFresh(p)
		rec := e.rec
		fits := rec.job.NP <= p.free
		safe := f.clock+f.planDur(rec) <= resv || rec.job.NP <= spare
		if fits && safe {
			if f.clock+f.planDur(rec) > resv {
				spare -= rec.job.NP
			}
			f.start(p, rec)
			f.met.backfilled.Inc()
			continue
		}
		//lint:allow reprolint/allochot bounded by backfill depth; spills into retained f.scratch backing
		kept = append(kept, e)
	}
	for _, e := range kept {
		p.pend.push(e)
	}
	f.scratch = kept[:0]
}

// release is one running job's planned slot release: its planning-bound
// release time, width, and seq (the (at, seq) pair is unique and makes
// the profile's order total — the same tie-break reservationSort uses).
type release struct {
	at  float64
	np  int
	seq int
}

// releaseProfile is the maintained free-slot timeline: running jobs'
// planned releases in ascending (at, seq) order. Insert and remove are
// binary search plus a copy — the profile is bounded by the pool's slot
// count, so the moves are small and cache-friendly — replacing the sort
// oracle's allocate-and-sort on every reservation.
type releaseProfile struct {
	rel []release
}

// rank returns the index of the first entry ordered at or after
// (at, seq).
func (t *releaseProfile) rank(at float64, seq int) int {
	//lint:allow reprolint/allochot sort.Search closure does not escape; the compiler keeps it on the stack
	return sort.Search(len(t.rel), func(i int) bool {
		e := t.rel[i]
		if e.at != at {
			return e.at > at
		}
		return e.seq >= seq
	})
}

func (t *releaseProfile) insert(at float64, np, seq int) {
	i := t.rank(at, seq)
	//lint:allow reprolint/allochot amortised growth; the profile array is retained across events
	t.rel = append(t.rel, release{})
	copy(t.rel[i+1:], t.rel[i:])
	t.rel[i] = release{at: at, np: np, seq: seq}
}

func (t *releaseProfile) remove(at float64, seq int) {
	i := t.rank(at, seq)
	//lint:allow reprolint/allochot delete-in-place append never grows the backing array
	t.rel = append(t.rel[:i], t.rel[i+1:]...)
}

// reservation walks the profile exactly like the oracle walks its
// sorted copy: accumulate releases until the head fits, returning the
// guarantee time and the slots spare once the head starts.
func (t *releaseProfile) reservation(clock float64, free, need int) (float64, int) {
	resv := clock
	for _, e := range t.rel {
		if free >= need {
			break
		}
		free += e.np
		resv = e.at
	}
	return resv, free - need
}
