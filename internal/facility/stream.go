package facility

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"sort"

	"repro/internal/sim"
)

// Streaming statistics for RunStream: a million-outcome run must not
// keep a million outcomes. Counters, sums and maxima are exact;
// percentiles come from fixed-size seeded reservoir samples (Vitter's
// algorithm R over the deterministic sim RNG), so the whole summary is
// O(reservoir) memory and bit-reproducible for a given seed. Runs no
// longer than the reservoir keep every value, making the percentiles
// exactly Summarize's.

// reservoirSize is the default percentile sample size (per stream).
const reservoirSize = 4096

// reservoir is a fixed-size uniform sample of a float64 stream.
type reservoir struct {
	rng  *sim.RNG
	keep []float64
	seen int
}

func newReservoir(size int, rng *sim.RNG) reservoir {
	return reservoir{rng: rng, keep: make([]float64, 0, size)}
}

func (r *reservoir) observe(v float64) {
	r.seen++
	if len(r.keep) < cap(r.keep) {
		r.keep = append(r.keep, v)
		return
	}
	if i := r.rng.Intn(r.seen); i < len(r.keep) {
		r.keep[i] = v
	}
}

// percentile returns the nearest-rank percentile of the sample.
func (r *reservoir) percentile(p float64) float64 {
	vals := append([]float64(nil), r.keep...)
	sort.Float64s(vals)
	return percentile(vals, p)
}

// StreamSummary folds a stream of outcomes into a Summary in O(1)
// memory. Feed it to RunStream as (or from) the emit callback and call
// Summary when the run returns.
type StreamSummary struct {
	tau   float64
	waits reservoir
	slows reservoir

	jobs, completed, killed int
	byPool                  [NumPools]int
	sumWait, maxWait        float64
	sumSlow                 float64
	interruptions           int
	lostWork, cost          float64
	makespan                float64
}

// NewStreamSummary returns a streaming summarizer; tau is the
// bounded-slowdown threshold (<=0 = 10) and seed derives the reservoir
// sampling streams (same seed + same outcome stream = same Summary).
func NewStreamSummary(tau float64, seed uint64) *StreamSummary {
	if tau <= 0 {
		tau = 10
	}
	rng := sim.NewRNG(seed)
	return &StreamSummary{
		tau:   tau,
		waits: newReservoir(reservoirSize, rng.Derive(1)),
		slows: newReservoir(reservoirSize, rng.Derive(2)),
	}
}

// Observe folds one outcome in. The accumulation mirrors Summarize
// field for field; only the percentiles are sampled.
func (s *StreamSummary) Observe(o Outcome) {
	s.jobs++
	switch o.State {
	case StateKilled:
		s.killed++
	default:
		s.completed++
	}
	s.byPool[o.Pool]++
	s.sumWait += o.Wait
	if o.Wait > s.maxWait {
		s.maxWait = o.Wait
	}
	bs := o.BoundedSlowdown(s.tau)
	s.sumSlow += bs
	s.waits.observe(o.Wait)
	s.slows.observe(bs)
	s.interruptions += o.Interruptions
	s.lostWork += o.LostWork
	s.cost += o.Cost
	if o.End > s.makespan {
		s.makespan = o.End
	}
}

// Summary closes the accumulation into a Summary. Exact except for the
// four percentile fields when more than reservoirSize outcomes streamed
// through.
func (s *StreamSummary) Summary() Summary {
	out := Summary{
		Jobs: s.jobs, Completed: s.completed, Killed: s.killed,
		ByPool: s.byPool, MaxWait: s.maxWait,
		Interruptions: s.interruptions, LostWork: s.lostWork,
		Cost: s.cost, Makespan: s.makespan,
	}
	if s.jobs > 0 {
		out.AvgWait = s.sumWait / float64(s.jobs)
		out.SlowMean = s.sumSlow / float64(s.jobs)
		out.CloudShare = float64(s.jobs-s.byPool[PoolHPC]) / float64(s.jobs)
	}
	out.WaitP50 = s.waits.percentile(50)
	out.WaitP90 = s.waits.percentile(90)
	out.WaitP99 = s.waits.percentile(99)
	out.SlowP99 = s.slows.percentile(99)
	return out
}

// StreamDigest accumulates an outcome digest incrementally, in emission
// (completion) order — the streaming counterpart of Digest, which
// hashes in submission order, so the two digest domains are distinct
// but each is bit-stable: identical streams produce identical digests.
type StreamDigest struct {
	h   hash.Hash
	buf [8]byte
}

// NewStreamDigest returns an empty streaming digest.
func NewStreamDigest() *StreamDigest {
	return &StreamDigest{h: sha256.New()}
}

// Observe hashes one outcome's exact bit pattern.
func (d *StreamDigest) Observe(o Outcome) {
	hashOutcome(d.h, &d.buf, o)
}

// Sum seals the digest with the run's clock and event count.
func (d *StreamDigest) Sum(clock float64, events int) string {
	binary.BigEndian.PutUint64(d.buf[:], math.Float64bits(clock))
	d.h.Write(d.buf[:])
	binary.BigEndian.PutUint64(d.buf[:], uint64(events))
	d.h.Write(d.buf[:])
	return fmt.Sprintf("%x", d.h.Sum(nil))
}
