package facility

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/arrive"
)

// TestOracleCrossValidation pins the facility's FCFS core to the
// independent small-N oracle: with backfill, fairshare, broker and spot
// all disabled, an event-driven facility run must reproduce
// arrive.SimulateQueue's stats bit-for-bit — same floats, not just
// close ones. OracleStats folds outcomes using the oracle's exact
// accumulation order, so any divergence is a scheduling difference, not
// a summation-order artefact.
func TestOracleCrossValidation(t *testing.T) {
	const slots = 32
	for seed := uint64(0); seed < 12; seed++ {
		jobs := genJobs(t, seed, 80, 9, slots)
		for i := range jobs {
			jobs[i].Limit = 0 // oracle has no wall limits; 0 = exactly Runtime
		}

		f, err := New(Config{Slots: [NumPools]int{slots}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(jobs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := OracleStats(res.Outcomes)

		oj := make([]arrive.Job, len(jobs))
		for i, j := range jobs {
			oj[i] = arrive.Job{ID: fmt.Sprint(i), NP: j.NP, Runtime: j.Runtime, Submit: j.Submit}
		}
		want, err := arrive.SimulateQueue(oj, slots, arrive.BurstPolicy{})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}

		if got.Jobs != want.Jobs || got.Burst != want.Burst {
			t.Fatalf("seed %d: counts %d/%d vs %d/%d", seed, got.Jobs, got.Burst, want.Jobs, want.Burst)
		}
		bitEq := func(label string, a, b float64) {
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("seed %d: %s diverged from the oracle: %v (%016x) vs %v (%016x)",
					seed, label, a, math.Float64bits(a), b, math.Float64bits(b))
			}
		}
		bitEq("AvgWait", got.AvgWait, want.AvgWait)
		bitEq("MaxWait", got.MaxWait, want.MaxWait)
		bitEq("Makespan", got.Makespan, want.Makespan)
		bitEq("AvgSlowdown", got.AvgSlowdown, want.AvgSlowdown)
		bitEq("CloudSecs", got.CloudSecs, want.CloudSecs)
	}
}

// TestOracleCrossValidationSimultaneousSubmits stresses the tie-break
// convention: equal submit times must resolve by submission order in
// both implementations (the oracle's stable sort, the facility's event
// sequence numbers).
func TestOracleCrossValidationSimultaneousSubmits(t *testing.T) {
	const slots = 8
	jobs := []Job{
		{Tenant: "a", NP: 8, Runtime: 100, Submit: 0},
		{Tenant: "b", NP: 4, Runtime: 50, Submit: 100}, // arrives exactly when slots free
		{Tenant: "c", NP: 4, Runtime: 25, Submit: 100},
		{Tenant: "d", NP: 8, Runtime: 10, Submit: 100},
		{Tenant: "e", NP: 2, Runtime: 75, Submit: 125},
	}
	f, err := New(Config{Slots: [NumPools]int{slots}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	got := OracleStats(res.Outcomes)

	oj := make([]arrive.Job, len(jobs))
	for i, j := range jobs {
		oj[i] = arrive.Job{ID: fmt.Sprint(i), NP: j.NP, Runtime: j.Runtime, Submit: j.Submit}
	}
	want, err := arrive.SimulateQueue(oj, slots, arrive.BurstPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.AvgWait) != math.Float64bits(want.AvgWait) ||
		math.Float64bits(got.Makespan) != math.Float64bits(want.Makespan) {
		t.Fatalf("tie-break divergence: got %+v want %+v", got, want)
	}
	// The t=100 completion must be processed before the t=100 arrivals:
	// b and c start immediately.
	if res.Outcomes[1].Wait != 0 || res.Outcomes[2].Wait != 0 {
		t.Fatalf("same-time reuse failed: waits %g, %g", res.Outcomes[1].Wait, res.Outcomes[2].Wait)
	}
}
