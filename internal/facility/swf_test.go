package facility

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestParseSWFGolden pins the exact job list parsed from the committed
// fixture: field mapping, runtime/processor fallbacks, the
// cancelled-record skip and the class labelling rules.
func TestParseSWFGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := ParseSWF(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []Job{
		{Tenant: "u3", Class: "app5", NP: 8, Runtime: 300, Limit: 600, Submit: 0},
		{Tenant: "u3", Class: "app5", NP: 4, Runtime: 120, Limit: 120, Submit: 30},
		{Tenant: "u7", Class: "q2", NP: 16, Runtime: 900, Limit: 900, Submit: 60},
		{Tenant: "u7", Class: "swf", NP: 32, Runtime: 250, Limit: 200, Submit: 90},
		{Tenant: "u11", Class: "swf", NP: 8, Runtime: 400, Limit: 350, Submit: 150},
		{Tenant: "u3", Class: "app5", NP: 2, Runtime: 60.25, Limit: 0, Submit: 200.5},
		{Tenant: "u12", Class: "app2", NP: 4, Runtime: 100, Limit: 100, Submit: 240},
	}
	if !reflect.DeepEqual(jobs, want) {
		t.Fatalf("parsed jobs mismatch:\n got %+v\nwant %+v", jobs, want)
	}
}

// TestParseSWFRuns feeds the fixture through a real facility run: every
// parsed job must validate and reach a terminal state, and jobs whose
// recorded runtime exceeds their requested time must be killed at the
// limit (jobs 4 and 6 in the fixture).
func TestParseSWFRuns(t *testing.T) {
	data, err := os.ReadFile("testdata/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := ParseSWF(data)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Slots: [NumPools]int{64, 0, 0}, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	for _, o := range res.Outcomes {
		if o.State != StateCompleted && o.State != StateKilled {
			t.Fatalf("job %d finished %s", o.Seq, o.State)
		}
		if o.State == StateKilled {
			killed++
		}
	}
	if killed != 2 {
		t.Fatalf("killed %d jobs at limit, want 2 (over-request records)", killed)
	}
}

// TestParseSWFErrors pins the malformed-line error cases.
func TestParseSWFErrors(t *testing.T) {
	good := "1 0 10 300 8 -1 -1 8 600 -1 1 3 1 5 1 1 -1 -1"
	cases := map[string]string{
		"short line":      "1 0 10 300 8",
		"long line":       good + " 99",
		"non-numeric":     strings.Replace(good, "300", "abc", 1),
		"non-finite":      strings.Replace(good, "300", "Inf", 1),
		"negative submit": strings.Replace(good, "1 0 10", "1 -5 10", 1),
	}
	for name, line := range cases {
		if _, err := ParseSWF([]byte(line + "\n")); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
	if jobs, err := ParseSWF([]byte("; comment only\n\n# hash comment\n")); err != nil || len(jobs) != 0 {
		t.Fatalf("comment-only trace: got %d jobs, err %v", len(jobs), err)
	}
}

// FuzzParseSWF fuzzes the parser: it must never panic, every job it
// accepts must satisfy the facility's job contract, and parsing is
// deterministic.
func FuzzParseSWF(f *testing.F) {
	if data, err := os.ReadFile("testdata/sample.swf"); err == nil {
		f.Add(data)
	}
	f.Add([]byte("1 0 10 300 8 -1 -1 8 600 -1 1 3 1 5 1 1 -1 -1\n"))
	f.Add([]byte("; header\n2 1.5 0 -1 -1 -1 -1 4 50 -1 5 2 1 -1 3 1 -1 -1\n"))
	f.Add([]byte("bogus\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := ParseSWF(data)
		if err != nil {
			return
		}
		for i, j := range jobs {
			if j.NP <= 0 || !(j.Runtime > 0) || !(j.Limit >= 0) || !(j.Submit >= 0) || j.Tenant == "" || j.Class == "" {
				t.Fatalf("job %d violates contract: %+v", i, j)
			}
		}
		again, err := ParseSWF(data)
		if err != nil || !reflect.DeepEqual(jobs, again) {
			t.Fatalf("reparse diverged: err %v", err)
		}
	})
}
