package facility

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"sort"

	"repro/internal/arrive"
)

// Summary aggregates one run's outcomes into the E14 metrics.
type Summary struct {
	Jobs, Completed, Killed int
	ByPool                  [NumPools]int

	AvgWait, MaxWait          float64
	WaitP50, WaitP90, WaitP99 float64
	SlowMean, SlowP99         float64 // bounded slowdown (threshold tau)

	CloudShare    float64 // fraction of jobs placed off the HPC partition
	Interruptions int
	LostWork      float64
	Cost          float64
	Makespan      float64
}

// Summarize folds outcomes into a Summary; tau is the bounded-slowdown
// threshold (<=0 = 10). Accumulation runs in slice (submission) order,
// so the summary is as deterministic as the outcomes.
func Summarize(outcomes []Outcome, tau float64) Summary {
	if tau <= 0 {
		tau = 10
	}
	var s Summary
	s.Jobs = len(outcomes)
	waits := make([]float64, 0, len(outcomes))
	slows := make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		switch o.State {
		case StateKilled:
			s.Killed++
		default:
			s.Completed++
		}
		s.ByPool[o.Pool]++
		s.AvgWait += o.Wait
		if o.Wait > s.MaxWait {
			s.MaxWait = o.Wait
		}
		bs := o.BoundedSlowdown(tau)
		s.SlowMean += bs
		waits = append(waits, o.Wait)
		slows = append(slows, bs)
		s.Interruptions += o.Interruptions
		s.LostWork += o.LostWork
		s.Cost += o.Cost
		if o.End > s.Makespan {
			s.Makespan = o.End
		}
	}
	if s.Jobs > 0 {
		s.AvgWait /= float64(s.Jobs)
		s.SlowMean /= float64(s.Jobs)
		s.CloudShare = float64(s.Jobs-s.ByPool[PoolHPC]) / float64(s.Jobs)
	}
	sort.Float64s(waits)
	sort.Float64s(slows)
	s.WaitP50 = percentile(waits, 50)
	s.WaitP90 = percentile(waits, 90)
	s.WaitP99 = percentile(waits, 99)
	s.SlowP99 = percentile(slows, 99)
	return s
}

// percentile returns the nearest-rank p-th percentile of ascending vals.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(vals) {
		rank = len(vals)
	}
	return vals[rank-1]
}

// Digest returns a hex digest over every outcome's exact bit pattern —
// two runs are the same run iff their digests match. The fuzz and
// determinism tests compare these.
func Digest(res *Result) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(math.Float64bits(res.Clock))
	w64(uint64(res.Events))
	for _, o := range res.Outcomes {
		hashOutcome(h, &buf, o)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// hashOutcome writes one outcome's exact bit pattern to h (shared by
// Digest and the streaming StreamDigest).
func hashOutcome(h hash.Hash, buf *[8]byte, o Outcome) {
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	h.Write([]byte(o.Tenant))
	h.Write([]byte{0})
	h.Write([]byte(o.Class))
	h.Write([]byte{0, byte(o.Pool), byte(o.State)})
	w64(uint64(o.Seq))
	w64(uint64(o.NP))
	w64(uint64(o.Interruptions))
	wf(o.Runtime)
	wf(o.Limit)
	wf(o.Submit)
	wf(o.Start)
	wf(o.End)
	wf(o.Reserved)
	wf(o.LostWork)
	wf(o.Cost)
}

// OracleStats folds facility outcomes back into arrive.QueueStats using
// the oracle's exact accumulation order — stable-sort by submit time,
// sum waits and slowdowns in that order, divide once at the end — so the
// cross-validation test can require bit-for-bit equality with
// arrive.SimulateQueue (the strict-FCFS small-N oracle) on a facility
// run with backfill, fairshare, broker and spot all disabled.
func OracleStats(outcomes []Outcome) arrive.QueueStats {
	ordered := append([]Outcome(nil), outcomes...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Submit < ordered[j].Submit })
	var stats arrive.QueueStats
	for _, o := range ordered {
		stats.AvgWait += o.Wait
		if o.Wait > stats.MaxWait {
			stats.MaxWait = o.Wait
		}
		stats.AvgSlowdown += (o.Wait + o.Runtime) / o.Runtime
		if o.End > stats.Makespan {
			stats.Makespan = o.End
		}
		stats.Jobs++
	}
	if n := stats.Jobs - stats.Burst; n > 0 {
		stats.AvgWait /= float64(n)
	}
	if stats.Jobs > 0 {
		stats.AvgSlowdown /= float64(stats.Jobs)
	}
	return stats
}
