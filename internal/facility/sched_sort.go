package facility

import "sort"

// The sort-per-pass scheduler (SchedSort): every pass re-sorts the
// pending queue by fairshare priority and every reservation allocates
// and sorts the running set. O(queue log queue) per pass — fine at
// 10^4 jobs, the ceiling the incremental scheduler removes — and kept
// verbatim as the oracle: the parity suite requires SchedHeap to
// reproduce this path's start orders, digests and artefact bytes bit
// for bit across every knob combination.

// sortQueue orders p's queue for one scheduling pass. Without fairshare
// the queue is already in (submit, seq) order — arrivals are events on
// the time-ordered heap — so FCFS needs no sort. With fairshare the key
// is (decayed usage / weight, submit, seq): usage decays at one shared
// rate, so relative tenant order only changes when usage is charged,
// and relabeling tenants cannot change the schedule (the order never
// depends on the tenant name itself — the order-invariance property).
func (f *Facility) sortQueue(p *poolState) {
	if !f.cfg.Fairshare || len(p.queue) < 2 {
		return
	}
	type keyed struct {
		usage float64
		rec   *jobRec
	}
	keys := make([]keyed, len(p.queue))
	for i, r := range p.queue {
		keys[i] = keyed{f.share.usageAt(r.job.Tenant, f.clock), r}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.usage != b.usage {
			return a.usage < b.usage
		}
		if a.rec.job.Submit != b.rec.job.Submit {
			return a.rec.job.Submit < b.rec.job.Submit
		}
		return a.rec.seq < b.rec.seq
	})
	for i := range keys {
		p.queue[i] = keys[i].rec
	}
}

// scheduleSort is one pass of the sort-based scheduler: sort, start
// queue-order jobs while they fit, then backfill behind the head.
func (f *Facility) scheduleSort(p *poolState) {
	f.sortQueue(p)
	for len(p.queue) > 0 && p.queue[0].job.NP <= p.free {
		rec := p.queue[0]
		p.queue = p.queue[1:]
		f.start(p, rec)
	}
	if len(p.queue) == 0 || p.id != PoolHPC || !f.cfg.Backfill {
		return
	}
	f.backfillSort(p)
}

// backfillSort is the EASY pass: compute the head's reservation from
// the running jobs' planning bounds, then start later jobs that cannot
// delay it — they either finish (by their limit) before the
// reservation, or fit in the slots the head leaves spare.
func (f *Facility) backfillSort(p *poolState) {
	head := p.queue[0]
	resv, spare := f.reservationSort(p, head)
	f.reserve(head, resv)
	depth := f.cfg.backfillDepth()
	kept := p.queue[:1]
	for i, rec := range p.queue[1:] {
		if i >= depth || p.free == 0 {
			kept = append(kept, p.queue[1+i:]...)
			break
		}
		fits := rec.job.NP <= p.free
		safe := f.clock+f.planDur(rec) <= resv || rec.job.NP <= spare
		if fits && safe {
			if f.clock+f.planDur(rec) > resv {
				spare -= rec.job.NP
			}
			f.start(p, rec)
			f.met.backfilled.Inc()
			continue
		}
		kept = append(kept, rec)
	}
	p.queue = kept
}

// reservationSort returns the earliest time the head is guaranteed to
// fit (walking running jobs' planning-bound ends in ascending (at, seq)
// order — the same total order the heap path's release profile
// maintains), plus the slots still spare at that time after the head
// starts.
func (f *Facility) reservationSort(p *poolState, head *jobRec) (resv float64, spare int) {
	ends := make([]release, len(p.running))
	for i, r := range p.running {
		ends[i] = release{at: f.releaseAt(r), np: r.job.NP, seq: r.seq}
	}
	sort.Slice(ends, func(i, j int) bool {
		if ends[i].at != ends[j].at {
			return ends[i].at < ends[j].at
		}
		return ends[i].seq < ends[j].seq
	})
	free := p.free
	resv = f.clock
	for _, e := range ends {
		if free >= head.job.NP {
			break
		}
		free += e.np
		resv = e.at
	}
	return resv, free - head.job.NP
}
