package facility

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// stressConfig turns every feature on at once: backfill, fairshare with
// uneven weights, a shared static broker and a spot plan with
// checkpointing. The broker pointer is deliberately shared between
// facilities in the concurrent test — Broker is read-only after
// Validate, and the race detector holds us to that.
func stressConfig(broker *Broker) Config {
	return Config{
		Slots:         [NumPools]int{256, 128, 128},
		Backfill:      true,
		Fairshare:     true,
		TenantWeights: map[string]float64{"t0000": 4, "t0001": 2},
		Broker:        broker,
		Spot:          testSpot(),
		Prices:        [NumPools]float64{0, 0.34, 0.68},
	}
}

// TestConcurrentFacilitiesRace runs several facilities in parallel
// goroutines against a shared read-only broker and per-goroutine metric
// registries, then checks each digest against a sequential reference
// run. Under -race this is the package's data-race sentinel: any hidden
// shared mutable state between facility instances trips the detector.
func TestConcurrentFacilitiesRace(t *testing.T) {
	const workers = 8
	jobsPer := 600
	if raceEnabled {
		jobsPer = 200
	}
	broker := staticTestBroker()
	if err := broker.Validate(); err != nil {
		t.Fatal(err)
	}

	workloads := make([][]Job, workers)
	want := make([]string, workers)
	for i := range workloads {
		workloads[i] = genJobs(t, uint64(1000+i), jobsPer, 40, 256)
		f, err := New(stressConfig(broker))
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(workloads[i])
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		want[i] = Digest(res)
	}

	var wg sync.WaitGroup
	got := make([]string, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := stressConfig(broker)
			cfg.Metrics = obs.NewRegistry()
			cfg.Meter = &sim.Meter{}
			f, err := New(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := f.Run(workloads[i])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = Digest(res)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Fatalf("worker %d: concurrent digest diverged from sequential reference", i)
		}
	}
}

// TestScaleTenThousandJobs is the acceptance-scale run: ten thousand
// jobs from over a thousand tenants through a fully-featured facility,
// completing with exact conservation. Under -race the workload shrinks
// but stays four-digit so the event loop is still exercised at depth.
func TestScaleTenThousandJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	jobs, tenants := 10000, 1200
	if raceEnabled {
		jobs, tenants = 3000, 400
	}
	wl, err := Generate(WorkloadSpec{
		Seed:    42,
		Jobs:    jobs,
		Tenants: tenants,
		Slots:   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	spot, err := MarketSpot(42, 0.60, 24*14, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Slots:     [NumPools]int{512, 256, 256},
		Backfill:  true,
		Fairshare: true,
		Broker:    staticTestBroker(),
		Spot:      spot,
		Prices:    [NumPools]float64{0, 0.34, 0.68},
		Metrics:   obs.NewRegistry(),
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res.Outcomes, 0)
	if sum.Completed+sum.Killed != jobs {
		t.Fatalf("conservation: %d+%d != %d", sum.Completed, sum.Killed, jobs)
	}
	if sum.Makespan <= 0 || sum.AvgWait < 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	// Every pool should see traffic at this scale with a broker routing.
	for p, n := range sum.ByPool {
		if n == 0 {
			t.Fatalf("pool %s received no jobs out of %d", Pool(p), jobs)
		}
	}

	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := f2.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(res) != Digest(res2) {
		t.Fatal("scale run digest not reproducible")
	}
}

// TestScaleHundredThousandJobs is the streaming stress run: 10^5 jobs
// from 10^4 tenants through the fully-featured facility, driven via
// RunStream so memory stays bounded by the in-flight set rather than
// the trace length. The size deliberately does NOT shrink under -race:
// this is the race detector's deep-soak over the incremental heap,
// release profile and slab recycling paths. Skipped in -short mode.
func TestScaleHundredThousandJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming stress test skipped in -short mode")
	}
	const jobs, tenants = 100000, 10000
	wl, err := Generate(WorkloadSpec{
		Seed:    43,
		Jobs:    jobs,
		Tenants: tenants,
		Slots:   2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	spot, err := MarketSpot(43, 0.60, 24*14, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Slots:     [NumPools]int{2048, 1024, 1024},
		Backfill:  true,
		Fairshare: true,
		Broker:    staticTestBroker(),
		Spot:      spot,
		Prices:    [NumPools]float64{0, 0.34, 0.68},
		Metrics:   obs.NewRegistry(),
	}
	run := func() (Summary, string) {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ss := NewStreamSummary(0, 43)
		sd := NewStreamDigest()
		sr, err := f.RunStream(wl, func(o Outcome) {
			ss.Observe(o)
			sd.Observe(o)
		})
		if err != nil {
			t.Fatal(err)
		}
		return ss.Summary(), sd.Sum(sr.Clock, sr.Events)
	}
	sum, dig := run()
	if sum.Completed+sum.Killed != jobs {
		t.Fatalf("conservation: %d+%d != %d", sum.Completed, sum.Killed, jobs)
	}
	if sum.Makespan <= 0 || sum.AvgWait < 0 || sum.WaitP99 < sum.WaitP50 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	for p, n := range sum.ByPool {
		if n == 0 {
			t.Fatalf("pool %s received no jobs out of %d", Pool(p), jobs)
		}
	}
	if _, dig2 := run(); dig != dig2 {
		t.Fatal("streaming stress digest not reproducible")
	}
}
