package facility

import "math"

// shareTracker is the decayed-usage fairshare account book. Every
// tenant's usage (slot-seconds) decays exponentially with one shared
// half-life; priority orders by decayed usage divided by the tenant's
// weight, lowest first. Because the decay rate is shared, the relative
// order of two tenants' usage never changes between charges — decay
// alone can never reshuffle the queue, which keeps scheduling passes
// cheap and the schedule a pure function of the charge sequence.
//
// charge is the only mutator: queries (usageAt, key) compute the decay
// on the fly without folding it into the stored value, so the account
// book's state is identical no matter how often — or from which
// scheduler path — priorities were queried between charges.
type shareTracker struct {
	half    float64
	weights map[string]float64
	usage   map[string]*tenantUsage
}

// tenantUsage is one tenant's account: value slot-seconds decayed to
// time at, the tenant's cached weight, and a charge generation counter
// (the staleness stamp for priority keys cached in the pending heap).
type tenantUsage struct {
	value float64
	at    float64
	w     float64
	gen   uint32
}

func newShareTracker(halfLife float64, weights map[string]float64) *shareTracker {
	if halfLife == 0 {
		halfLife = 86400
	}
	return &shareTracker{half: halfLife, weights: weights, usage: map[string]*tenantUsage{}}
}

// acct returns the tenant's account, creating an empty one on first use.
func (s *shareTracker) acct(tenant string) *tenantUsage {
	u, ok := s.usage[tenant]
	if !ok {
		w := 1.0
		if s.weights != nil {
			if ww, ok := s.weights[tenant]; ok {
				w = ww
			}
		}
		u = &tenantUsage{w: w}
		s.usage[tenant] = u
	}
	return u
}

// charge bills slot-seconds to the tenant's account at time t, folding
// the decay since the previous charge into the stored value.
func (s *shareTracker) charge(tenant string, t, slotSeconds float64) {
	u := s.acct(tenant)
	if t > u.at {
		u.value *= math.Exp2(-(t - u.at) / s.half)
		u.at = t
	}
	u.value += slotSeconds
	u.gen++
}

// usageAt returns the tenant's weight-normalised decayed usage at t —
// the fairshare sort key (lower = higher priority). Tenants that never
// ran sort first, then by (submit, seq).
func (s *shareTracker) usageAt(tenant string, t float64) float64 {
	u, ok := s.usage[tenant]
	if !ok {
		return 0
	}
	v := u.value
	if t > u.at {
		v *= math.Exp2(-(t - u.at) / s.half)
	}
	return v / u.w
}

// key returns the account's time-independent priority key. With one
// shared half-life, log2(usage(t)/w) = log2(value/w) - (t-at)/half for
// every t, so ordering accounts by log2(value/w) + at/half at ANY query
// time equals ordering them by decayed usage: the key never expires,
// only charges move it — and a charge only moves it upward. Tenants
// that never ran sit at -Inf, exactly like usage 0 in the linear domain.
func (u *tenantUsage) key(half float64) float64 {
	return math.Log2(u.value/u.w) + u.at/half
}
