package facility

import "math"

// shareTracker is the decayed-usage fairshare account book. Every
// tenant's usage (slot-seconds) decays exponentially with one shared
// half-life; priority orders by decayed usage divided by the tenant's
// weight, lowest first. Because the decay rate is shared, the relative
// order of two tenants' usage never changes between charges — decay
// alone can never reshuffle the queue, which keeps scheduling passes
// cheap and the schedule a pure function of the charge sequence.
type shareTracker struct {
	half    float64
	weights map[string]float64
	usage   map[string]*tenantUsage
}

type tenantUsage struct {
	value float64 // slot-seconds, decayed to `at`
	at    float64
}

func newShareTracker(halfLife float64, weights map[string]float64) *shareTracker {
	if halfLife == 0 {
		halfLife = 86400
	}
	return &shareTracker{half: halfLife, weights: weights, usage: map[string]*tenantUsage{}}
}

// decayTo folds the exponential decay into u.value up to time t.
func (s *shareTracker) decayTo(u *tenantUsage, t float64) {
	if t > u.at {
		u.value *= math.Exp2(-(t - u.at) / s.half)
		u.at = t
	}
}

// charge bills slot-seconds to the tenant's account at time t.
func (s *shareTracker) charge(tenant string, t, slotSeconds float64) {
	u, ok := s.usage[tenant]
	if !ok {
		u = &tenantUsage{at: t}
		s.usage[tenant] = u
	}
	s.decayTo(u, t)
	u.value += slotSeconds
}

// usageAt returns the tenant's weight-normalised decayed usage at t —
// the fairshare sort key (lower = higher priority). Tenants that never
// ran sort first, then by (submit, seq).
func (s *shareTracker) usageAt(tenant string, t float64) float64 {
	u, ok := s.usage[tenant]
	if !ok {
		return 0
	}
	s.decayTo(u, t)
	w := 1.0
	if s.weights != nil {
		if ww, ok := s.weights[tenant]; ok {
			w = ww
		}
	}
	return u.value / w
}
