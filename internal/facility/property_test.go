package facility

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/iomodel"
)

// genJobs builds a seeded random workload for the property tests.
func genJobs(t *testing.T, seed uint64, jobs, tenants, slots int) []Job {
	t.Helper()
	out, err := Generate(WorkloadSpec{
		Seed: seed, Jobs: jobs, Tenants: tenants, Slots: slots,
		Utilization: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// staticTestBroker is a hand-built broker (no calibration runs) used by
// properties that only need routing to happen, not to be realistic.
func staticTestBroker() *Broker {
	return &Broker{
		Factors: map[string][NumPools]float64{
			"ep": {1, 1.1, 1.3},
			"cg": {1, 1.8, 2.6},
			"mg": {1, 1.5, 2.1},
			"ft": {1, 1.9, 2.8},
			"is": {1, 1.4, 1.9},
		},
		DefaultFactors: [NumPools]float64{1, 1.3, 2},
	}
}

func testSpot() *SpotConfig {
	return &SpotConfig{
		Plan: &fault.Plan{Outages: []fault.Outage{
			{Start: 1000, End: 1600}, {Start: 5000, End: 5400},
		}},
		Price:              0.56,
		CheckpointInterval: 600,
		CheckpointBytes:    1 << 24,
		FS:                 iomodel.NFSEC2(),
	}
}

// TestQuickBackfillNeverDelaysReservation is the EASY guarantee: with
// fairshare off, a blocked head's first recorded reservation is an upper
// bound on when it actually starts — backfilled jobs never push it back.
func TestQuickBackfillNeverDelaysReservation(t *testing.T) {
	prop := func(seed uint64, jn, dn uint8) bool {
		jobs := genJobs(t, seed, 20+int(jn)%80, 1+int(jn)%12, 16)
		cfg := Config{
			Slots:         [NumPools]int{16},
			Backfill:      true,
			BackfillDepth: 1 + int(dn)%100,
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range res.Outcomes {
			if o.Reserved > 0 && o.Start > o.Reserved {
				t.Logf("seed %d: job %d started %g after its reservation %g", seed, i, o.Start, o.Reserved)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFairshareRelabelInvariant: bijectively renaming every tenant
// (and carrying the weights along) must not change the schedule — the
// fairshare key is decayed usage, never the tenant name.
func TestQuickFairshareRelabelInvariant(t *testing.T) {
	prop := func(seed, salt uint64) bool {
		jobs := genJobs(t, seed, 60, 9, 16)
		relabeled := make([]Job, len(jobs))
		for i, j := range jobs {
			j.Tenant = fmt.Sprintf("%x-%s", salt, j.Tenant) // injective rename
			relabeled[i] = j
		}
		cfg := Config{Slots: [NumPools]int{16}, Backfill: true, Fairshare: true}
		f1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := f1.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := f2.Run(relabeled)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Outcomes {
			a, b := r1.Outcomes[i], r2.Outcomes[i]
			if math.Float64bits(a.Start) != math.Float64bits(b.Start) ||
				math.Float64bits(a.End) != math.Float64bits(b.End) ||
				a.Pool != b.Pool || a.State != b.State {
				t.Logf("seed %d salt %x: job %d diverged under relabeling: %+v vs %+v", seed, salt, i, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConservation: under every knob combination, each submitted
// job ends exactly once as completed or killed, times are ordered, the
// virtual clock is the max completion, and reruns are bit-identical.
func TestQuickConservation(t *testing.T) {
	prop := func(seed uint64, knobs uint8) bool {
		jobs := genJobs(t, seed, 70, 11, 16)
		cfg := Config{
			Slots:     [NumPools]int{16, 8, 8},
			Backfill:  knobs&1 != 0,
			Fairshare: knobs&2 != 0,
			Prices:    [NumPools]float64{0, 0.34, 0.68},
		}
		if knobs&4 != 0 {
			cfg.Broker = staticTestBroker()
		}
		if knobs&8 != 0 {
			cfg.Spot = testSpot()
		}
		run := func() *Result {
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		res := run()
		completed, killed := 0, 0
		maxEnd := 0.0
		for i, o := range res.Outcomes {
			switch o.State {
			case StateCompleted:
				completed++
			case StateKilled:
				killed++
			default:
				t.Logf("seed %d knobs %x: job %d in state %s", seed, knobs, i, o.State)
				return false
			}
			if !(o.Submit <= o.Start && o.Start <= o.End) {
				t.Logf("seed %d knobs %x: job %d times unordered: %+v", seed, knobs, i, o)
				return false
			}
			if o.Wait < 0 || o.Cost < 0 || o.LostWork < 0 {
				t.Logf("seed %d knobs %x: job %d negative accounting: %+v", seed, knobs, i, o)
				return false
			}
			if o.End > maxEnd {
				maxEnd = o.End
			}
		}
		if completed+killed != len(jobs) {
			t.Logf("seed %d knobs %x: %d+%d != %d", seed, knobs, completed, killed, len(jobs))
			return false
		}
		if math.Float64bits(res.Clock) != math.Float64bits(maxEnd) {
			t.Logf("seed %d knobs %x: clock %g != max end %g", seed, knobs, res.Clock, maxEnd)
			return false
		}
		if res.Events < 2*len(jobs) {
			t.Logf("seed %d knobs %x: %d events for %d jobs", seed, knobs, res.Events, len(jobs))
			return false
		}
		if Digest(res) != Digest(run()) {
			t.Logf("seed %d knobs %x: rerun digest diverged", seed, knobs)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFairshareUsageDecays pins the share tracker arithmetic: usage
// halves every half-life and relative order is decay-invariant.
func TestQuickFairshareUsageDecays(t *testing.T) {
	prop := func(aRaw, bRaw uint16, dtRaw uint8) bool {
		a, b := float64(aRaw)+1, float64(bRaw)+1
		dt := float64(dtRaw) * 100
		s := newShareTracker(3600, nil)
		s.charge("a", 0, a)
		s.charge("b", 0, b)
		ua0, ub0 := s.usageAt("a", 0), s.usageAt("b", 0)
		ua1, ub1 := s.usageAt("a", dt), s.usageAt("b", dt)
		if (ua0 > ub0) != (ua1 > ub1) && ua1 != ub1 {
			return false // decay alone reordered two tenants
		}
		want := a * math.Exp2(-dt/3600)
		return math.Abs(ua1-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
