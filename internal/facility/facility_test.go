package facility

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/iomodel"
	"repro/internal/obs"
	"repro/internal/sim"
)

func mustRun(t *testing.T, cfg Config, jobs []Job) *Result {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFCFSSequential(t *testing.T) {
	cfg := Config{Slots: [NumPools]int{4}}
	jobs := []Job{
		{Tenant: "a", NP: 4, Runtime: 100, Submit: 0},
		{Tenant: "b", NP: 4, Runtime: 50, Submit: 10},
	}
	res := mustRun(t, cfg, jobs)
	o := res.Outcomes
	if o[0].Start != 0 || o[0].End != 100 {
		t.Fatalf("job 0 ran [%g,%g], want [0,100]", o[0].Start, o[0].End)
	}
	if o[1].Start != 100 || o[1].End != 150 {
		t.Fatalf("job 1 ran [%g,%g], want [100,150]", o[1].Start, o[1].End)
	}
	if o[1].Wait != 90 {
		t.Fatalf("job 1 waited %g, want 90", o[1].Wait)
	}
	if res.Clock != 150 {
		t.Fatalf("clock %g, want 150", res.Clock)
	}
	if res.Events != 2*len(jobs) {
		t.Fatalf("events %d, want %d", res.Events, 2*len(jobs))
	}
}

func TestEASYBackfill(t *testing.T) {
	jobs := []Job{
		{Tenant: "a", NP: 2, Runtime: 100, Submit: 0}, // runs [0,100] on 2 of 4 slots
		{Tenant: "b", NP: 4, Runtime: 100, Submit: 1}, // blocked head, reservation 100
		{Tenant: "c", NP: 2, Runtime: 10, Submit: 2},  // fits the spare 2 slots, ends before 100
	}
	res := mustRun(t, Config{Slots: [NumPools]int{4}, Backfill: true}, jobs)
	o := res.Outcomes
	if o[2].Start != 2 || o[2].End != 12 {
		t.Fatalf("backfill candidate ran [%g,%g], want [2,12]", o[2].Start, o[2].End)
	}
	if o[1].Reserved != 100 {
		t.Fatalf("head reservation %g, want 100", o[1].Reserved)
	}
	if o[1].Start != 100 {
		t.Fatalf("head started %g, want exactly its reservation 100", o[1].Start)
	}

	// Without backfill the same workload is strictly FCFS: the short job
	// waits for the wide head.
	res = mustRun(t, Config{Slots: [NumPools]int{4}}, jobs)
	if got := res.Outcomes[2].Start; got != 200 {
		t.Fatalf("FCFS start %g, want 200", got)
	}
}

func TestBackfillRespectsReservationWindow(t *testing.T) {
	jobs := []Job{
		{Tenant: "a", NP: 2, Runtime: 100, Submit: 0},
		{Tenant: "b", NP: 4, Runtime: 100, Submit: 1}, // reservation at 100
		{Tenant: "c", NP: 3, Runtime: 50, Submit: 2},  // 3 > 2 free slots: cannot start
		{Tenant: "d", NP: 2, Runtime: 500, Submit: 3}, // fits now but would overrun 100 with no spare
	}
	res := mustRun(t, Config{Slots: [NumPools]int{4}, Backfill: true}, jobs)
	o := res.Outcomes
	if o[3].Start <= o[1].Start {
		t.Fatalf("long candidate started %g, before the reserved head at %g", o[3].Start, o[1].Start)
	}
	if o[1].Start != 100 {
		t.Fatalf("head started %g, want 100", o[1].Start)
	}
}

func TestKilledAtLimit(t *testing.T) {
	jobs := []Job{{Tenant: "a", NP: 1, Runtime: 100, Limit: 40, Submit: 0}}
	res := mustRun(t, Config{Slots: [NumPools]int{4}}, jobs)
	o := res.Outcomes[0]
	if o.State != StateKilled {
		t.Fatalf("state %s, want killed", o.State)
	}
	if o.End != 40 {
		t.Fatalf("killed at %g, want the 40s limit", o.End)
	}
}

func TestFairshareDeprioritisesHeavyTenant(t *testing.T) {
	jobs := []Job{
		{Tenant: "heavy", NP: 4, Runtime: 100, Submit: 0},
		{Tenant: "heavy", NP: 4, Runtime: 50, Submit: 1},
		{Tenant: "light", NP: 4, Runtime: 50, Submit: 2},
	}
	cfg := Config{Slots: [NumPools]int{4}}
	res := mustRun(t, cfg, jobs)
	if !(res.Outcomes[1].Start < res.Outcomes[2].Start) {
		t.Fatalf("FCFS should start heavy's second job first")
	}

	cfg.Fairshare = true
	res = mustRun(t, cfg, jobs)
	if !(res.Outcomes[2].Start < res.Outcomes[1].Start) {
		t.Fatalf("fairshare should start the light tenant first (heavy=%g light=%g)",
			res.Outcomes[1].Start, res.Outcomes[2].Start)
	}
}

func TestFairshareWeights(t *testing.T) {
	// Equal consumed usage; the heavier weight halves the normalised
	// usage, so the weighted tenant goes first.
	jobs := []Job{
		{Tenant: "a", NP: 2, Runtime: 100, Submit: 0},
		{Tenant: "b", NP: 2, Runtime: 100, Submit: 0},
		{Tenant: "a", NP: 4, Runtime: 10, Submit: 1},
		{Tenant: "b", NP: 4, Runtime: 10, Submit: 2},
	}
	cfg := Config{
		Slots:         [NumPools]int{4},
		Fairshare:     true,
		TenantWeights: map[string]float64{"b": 4},
	}
	res := mustRun(t, cfg, jobs)
	if !(res.Outcomes[3].Start < res.Outcomes[2].Start) {
		t.Fatalf("weighted tenant b should start first (a=%g b=%g)",
			res.Outcomes[2].Start, res.Outcomes[3].Start)
	}
}

func TestSpotRunArithmetic(t *testing.T) {
	// Free periodic checkpoints every 30s, one outage [50,60): the job
	// loses the 20s since its last checkpoint and resumes at 60.
	s := &SpotConfig{
		Plan:               &fault.Plan{Outages: []fault.Outage{{Start: 50, End: 60}}},
		Price:              0.56,
		CheckpointInterval: 30,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := s.run(0, 100, 4)
	if r.interruptions != 1 {
		t.Fatalf("interruptions %d, want 1", r.interruptions)
	}
	if r.lost != 20 {
		t.Fatalf("lost %g, want 20", r.lost)
	}
	if r.end != 130 {
		t.Fatalf("end %g, want 130 (100 exec + 20 lost + 10 outage)", r.end)
	}
	if r.billed != 120 {
		t.Fatalf("billed %g, want 120 busy seconds", r.billed)
	}
}

func TestSpotNoCheckpointRestartsFromZero(t *testing.T) {
	s := &SpotConfig{Plan: &fault.Plan{Outages: []fault.Outage{{Start: 80, End: 90}}}}
	r := s.run(0, 100, 4)
	if r.lost != 80 {
		t.Fatalf("lost %g, want all 80 pre-outage seconds", r.lost)
	}
	if r.end != 190 {
		t.Fatalf("end %g, want 190 (80 lost + 10 outage + 100 rerun)", r.end)
	}
}

func TestSpotCheckpointIOCharged(t *testing.T) {
	fs := iomodel.NFSEC2()
	s := &SpotConfig{
		Plan:               &fault.Plan{Outages: []fault.Outage{{Start: 50, End: 60}}},
		CheckpointInterval: 30,
		CheckpointBytes:    1 << 28,
		FS:                 fs,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := s.run(0, 100, 4)
	ck := fs.CheckpointSeconds(1<<28, 4)
	restore := fs.ReadSeconds(1<<28, 4)
	if r.interruptions != 1 {
		t.Fatalf("interruptions %d, want 1", r.interruptions)
	}
	// Busy time = 100 exec + lost work + checkpoint writes + one restore.
	wantMin := 100 + r.lost + ck + restore
	if r.billed < wantMin {
		t.Fatalf("billed %g < %g: checkpoint I/O not charged", r.billed, wantMin)
	}
	if r.end <= 110 {
		t.Fatalf("end %g implausibly early given checkpoint costs", r.end)
	}
}

func TestSpotPoolFrozenDuringOutage(t *testing.T) {
	// A job routed to the spot pool during an outage must wait for the
	// window to close (via the wake event) rather than being lost.
	broker := &Broker{Factors: map[string][NumPools]float64{"ep": {1, 0, 1.1}}}
	cfg := Config{
		Slots:  [NumPools]int{1, 0, 8},
		Broker: broker,
		Spot: &SpotConfig{
			Plan:  &fault.Plan{Outages: []fault.Outage{{Start: 0, End: 500}}},
			Price: 0.56,
		},
	}
	jobs := []Job{
		{Tenant: "a", Class: "ep", NP: 1, Runtime: 10000, Submit: 0}, // occupies HPC
		{Tenant: "b", Class: "ep", NP: 4, Runtime: 100, Submit: 10},  // must go spot, during outage
	}
	res := mustRun(t, cfg, jobs)
	o := res.Outcomes[1]
	if o.Pool != PoolEC2 {
		t.Fatalf("job 1 on %s, want ec2", o.Pool)
	}
	if o.Start != 500 {
		t.Fatalf("job 1 started %g, want 500 (outage end)", o.Start)
	}
}

func TestBrokerRouting(t *testing.T) {
	broker := &Broker{
		Factors: map[string][NumPools]float64{
			"ep": {1, 1.2, 1.5},
			"cg": {1, 4, 5}, // too slow off-facility: MaxSlowdown filter
		},
	}
	cfg := Config{
		Slots:  [NumPools]int{4, 8, 16},
		Broker: broker,
		Prices: [NumPools]float64{0, 0.34, 0.68},
	}
	jobs := []Job{
		{Tenant: "x", Class: "ep", NP: 4, Runtime: 10000, Submit: 0}, // saturates HPC
		{Tenant: "y", Class: "ep", NP: 2, Runtime: 100, Submit: 1},   // cheap to offload
		{Tenant: "z", Class: "cg", NP: 2, Runtime: 100, Submit: 2},   // filtered: stays HPC
	}
	res := mustRun(t, cfg, jobs)
	if got := res.Outcomes[1].Pool; got != PoolDCC {
		t.Fatalf("ep job routed to %s, want dcc", got)
	}
	if got := res.Outcomes[2].Pool; got != PoolHPC {
		t.Fatalf("cg job routed to %s, want vayu (slowdown filter)", got)
	}
	if res.Outcomes[1].Cost <= 0 {
		t.Fatalf("offloaded job billed %g, want positive", res.Outcomes[1].Cost)
	}
	if res.Outcomes[1].Service != 100*1.2 {
		t.Fatalf("offloaded service %g, want factor-scaled 120", res.Outcomes[1].Service)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},                                 // no HPC slots
		{Slots: [NumPools]int{4, -1, 0}},   // negative pool
		{Slots: [NumPools]int{4}, Tau: -1}, // negative knob
		{Slots: [NumPools]int{4}, Prices: [NumPools]float64{0, -1, 0}},
		{Slots: [NumPools]int{4}, TenantWeights: map[string]float64{"a": 0}},
		{Slots: [NumPools]int{4}, Spot: &SpotConfig{Price: -1}},
		{Slots: [NumPools]int{4}, Broker: &Broker{MaxSlowdown: -1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: want validation error", i)
		}
	}
}

func TestJobValidation(t *testing.T) {
	cfg := Config{Slots: [NumPools]int{4}}
	bad := []Job{
		{Tenant: "a", NP: 0, Runtime: 1},
		{Tenant: "a", NP: 8, Runtime: 1}, // wider than the HPC partition
		{Tenant: "a", NP: 1, Runtime: 0}, // no runtime
		{Tenant: "a", NP: 1, Runtime: 1, Submit: -1},
		{Tenant: "", NP: 1, Runtime: 1},
	}
	for i, j := range bad {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run([]Job{j}); err == nil {
			t.Errorf("job %d: want validation error", i)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	meter := &sim.Meter{}
	cfg := Config{Slots: [NumPools]int{4}, Backfill: true, Metrics: reg, Meter: meter}
	jobs := []Job{
		{Tenant: "a", NP: 2, Runtime: 100, Submit: 0},
		{Tenant: "b", NP: 4, Runtime: 100, Submit: 1},
		{Tenant: "c", NP: 2, Runtime: 10, Submit: 2},
		{Tenant: "d", NP: 1, Runtime: 100, Limit: 10, Submit: 3},
	}
	res := mustRun(t, cfg, jobs)
	checks := map[string]int64{
		"facility_jobs_submitted_total": 4,
		"facility_jobs_started_total":   4,
		"facility_jobs_completed_total": 3,
		"facility_jobs_killed_total":    1,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Counter("facility_jobs_backfilled_total", "").Value(); got == 0 {
		t.Errorf("no backfills counted")
	}
	if meter.Total() != res.Clock {
		t.Errorf("meter %g, want makespan %g", meter.Total(), res.Clock)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	spec := WorkloadSpec{Seed: 7, Jobs: 500, Tenants: 40, Slots: 128}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different workloads")
	}
	prev := 0.0
	tenants := map[string]bool{}
	for i, j := range a {
		if j.Submit < prev {
			t.Fatalf("job %d: submit %g before %g", i, j.Submit, prev)
		}
		prev = j.Submit
		if j.NP < 1 || j.NP > 64 {
			t.Fatalf("job %d: np %d out of range", i, j.NP)
		}
		if j.Runtime <= 0 || j.Limit <= 0 {
			t.Fatalf("job %d: non-positive runtime/limit", i)
		}
		tenants[j.Tenant] = true
	}
	if len(tenants) < 20 {
		t.Fatalf("only %d distinct tenants in 500 jobs from 40", len(tenants))
	}

	spec.Seed = 8
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical workloads")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs, err := Generate(WorkloadSpec{Seed: 3, Jobs: 50, Tenants: 5, Slots: 32})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(FormatTrace(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, back) {
		t.Fatal("trace round-trip not identity")
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, trace := range []string{
		"a b c",          // wrong arity
		"t ep x 1 1 1",   // bad np
		"t ep 1 one 1 1", // bad float
	} {
		if _, err := ParseTrace([]byte(trace)); err == nil {
			t.Errorf("trace %q: want parse error", trace)
		}
	}
	jobs, err := ParseTrace([]byte("# comment\n\nt ep 2 10 20 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].NP != 2 {
		t.Fatalf("parsed %+v", jobs)
	}
}

func TestMarketSpot(t *testing.T) {
	s, err := MarketSpot(11, 0.60, 24*7, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plan.Outages) == 0 {
		t.Fatal("a 0.60 bid against the 2011 market should see outages in a week")
	}
	for _, o := range s.Plan.Outages {
		if math.Mod(o.Start, 3600) != 0 || math.Mod(o.End, 3600) != 0 {
			t.Fatalf("outage [%g,%g] not on hour boundaries in seconds", o.Start, o.End)
		}
	}
	if s.Price != 0.56 {
		t.Fatalf("spot price %g, want the market mean 0.56", s.Price)
	}
}

func TestSummarize(t *testing.T) {
	jobs, err := Generate(WorkloadSpec{Seed: 5, Jobs: 300, Tenants: 30, Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{Slots: [NumPools]int{64}, Backfill: true}, jobs)
	s := Summarize(res.Outcomes, 0)
	if s.Jobs != 300 || s.Completed+s.Killed != 300 {
		t.Fatalf("summary counts %+v", s)
	}
	if s.ByPool[PoolHPC] != 300 || s.CloudShare != 0 {
		t.Fatalf("static placement leaked off-pool: %+v", s)
	}
	if s.WaitP50 > s.WaitP90 || s.WaitP90 > s.WaitP99 || s.WaitP99 > s.MaxWait {
		t.Fatalf("wait quantiles not ordered: %+v", s)
	}
	if s.SlowMean < 1 || s.SlowP99 < s.SlowMean {
		t.Fatalf("bounded slowdown stats malformed: %+v", s)
	}
}

func TestDigestSensitivity(t *testing.T) {
	jobs, err := Generate(WorkloadSpec{Seed: 5, Jobs: 100, Tenants: 10, Slots: 32})
	if err != nil {
		t.Fatal(err)
	}
	a := Digest(mustRun(t, Config{Slots: [NumPools]int{32}}, jobs))
	b := Digest(mustRun(t, Config{Slots: [NumPools]int{32}}, jobs))
	c := Digest(mustRun(t, Config{Slots: [NumPools]int{32}, Backfill: true}, jobs))
	if a != b {
		t.Fatal("identical runs, different digests")
	}
	if a == c {
		t.Fatal("backfill changed nothing? digests should differ")
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Fatalf("digest %q not sha256 hex", a)
	}
}

func TestPoolAndStateStrings(t *testing.T) {
	if PoolHPC.String() != "vayu" || PoolDCC.String() != "dcc" || PoolEC2.String() != "ec2" {
		t.Fatal("pool names drifted")
	}
	if StateCompleted.String() != "completed" || StateKilled.String() != "killed" {
		t.Fatal("state names drifted")
	}
	if Pool(9).String() == "" || JobState(9).String() == "" {
		t.Fatal("out-of-range stringers should still render")
	}
}

func TestBoundedSlowdown(t *testing.T) {
	o := Outcome{Wait: 90, Service: 10}
	if got := o.BoundedSlowdown(10); got != 10 {
		t.Fatalf("slowdown %g, want 10", got)
	}
	// Sub-tau jobs are bounded by the tau denominator.
	o = Outcome{Wait: 5, Service: 1}
	if got := o.BoundedSlowdown(10); got != 1 {
		t.Fatalf("tiny job slowdown %g, want clamped to 1", got)
	}
}
