// Package facility simulates a long-running, multi-tenant batch facility
// in virtual time: a SLURM-style central queue with FCFS + EASY backfill
// and decayed-usage fairshare priorities over the paper's three resource
// pools (the Vayu HPC partition, the DCC private cloud, the EC2 public
// cloud), an ARRIVE-F-style broker routing each job by predicted runtime
// and cost, and spot-market interruptions threaded through the fault
// plane with checkpoint/restart costs charged via iomodel.
//
// The simulation is entirely event-driven: arrivals, completions and
// limit kills are events on the same strict-total-order virtual-time
// heap the PDES rank engine uses (pdes.Queue), so a facility run is a
// pure function of (workload, config) — bit-reproducible at any host
// parallelism, under either mpi runtime, and byte-compared against the
// small-N oracle arrive.SimulateQueue by the cross-validation tests.
package facility

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/pdes"
	"repro/internal/sim"
)

// Pool identifies one resource pool jobs can be placed on.
type Pool uint8

// The paper's three platforms, as schedulable pools.
const (
	PoolHPC Pool = iota // Vayu: the facility's own partition
	PoolDCC             // private cloud
	PoolEC2             // public cloud (on-demand or spot)
	NumPools
)

// String implements fmt.Stringer.
func (p Pool) String() string {
	switch p {
	case PoolHPC:
		return "vayu"
	case PoolDCC:
		return "dcc"
	case PoolEC2:
		return "ec2"
	}
	return fmt.Sprintf("pool(%d)", int(p))
}

// JobState is a job's terminal (or in-flight) state.
type JobState uint8

// Job lifecycle states. Every submitted job ends exactly once as
// Completed or Killed — the conservation property the test battery pins.
const (
	StateQueued JobState = iota
	StateRunning
	StateCompleted
	StateKilled // exceeded its wall limit on the HPC partition
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateKilled:
		return "killed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one batch submission.
type Job struct {
	Tenant string // accounting principal (fairshare group)
	Class  string // workload class (broker prediction key)
	NP     int    // slots requested
	// Runtime is the job's execution time on the reference (HPC) pool in
	// virtual seconds; other pools scale it by the broker's projected
	// per-class slowdown factor.
	Runtime float64
	// Limit is the requested wall limit on the reference pool (the
	// scheduler's planning bound, scaled like Runtime). Zero means
	// "exactly Runtime". A job whose Runtime exceeds its scaled limit is
	// killed at the limit on the HPC partition.
	Limit  float64
	Submit float64 // submission virtual time
}

// Outcome is one job's final record.
type Outcome struct {
	Job
	Seq   int // submission index (the job's facility-wide identity)
	Pool  Pool
	State JobState
	Start float64
	End   float64
	Wait  float64 // Start - Submit
	// Service is the span the job held its slots (End - Start): execution
	// plus checkpoint writes plus, on spot, outage gaps and restarts.
	Service float64
	// Reserved is the first EASY reservation computed for the job while
	// it was the blocked head of the HPC queue (0 when it never was).
	// With fairshare off, Start <= Reserved is the backfill guarantee.
	Reserved      float64
	Interruptions int     // spot preemptions suffered
	LostWork      float64 // rolled-back execution seconds
	Cost          float64 // $ billed (0 on the facility's own partition)
}

// BoundedSlowdown returns max(1, (wait+service)/max(service, tau)) — the
// standard queueing metric that keeps sub-tau jobs from dominating.
func (o Outcome) BoundedSlowdown(tau float64) float64 {
	if tau <= 0 {
		tau = 10
	}
	den := math.Max(o.Service, tau)
	s := (o.Wait + o.Service) / den
	if s < 1 {
		return 1
	}
	return s
}

// Config parameterises one facility.
type Config struct {
	// Slots is each pool's schedulable slot capacity. Slots[PoolHPC]
	// must be positive; a zero cloud pool is simply unavailable.
	Slots [NumPools]int

	// Backfill enables EASY backfill on the HPC partition: when the
	// highest-priority job cannot start, later jobs may run out of order
	// if (by their wall limits) they cannot delay its reservation.
	Backfill bool
	// BackfillDepth bounds how many queued jobs one backfill pass
	// examines (0 = 64, SLURM's bf_max_job_test discipline).
	BackfillDepth int

	// Fairshare orders the queue by decayed tenant usage instead of pure
	// FCFS. Ties (and the no-fairshare order) are (submit, seq).
	Fairshare bool
	// FairshareHalfLife is the usage decay half-life in virtual seconds
	// (0 = 86400, SLURM's default decay horizon shape).
	FairshareHalfLife float64
	// TenantWeights maps tenants to fairshare weights (unlisted = 1):
	// priority orders by decayed usage divided by weight.
	TenantWeights map[string]float64

	// Broker, when set, routes each arriving job across the pools by
	// predicted runtime and cost; nil statically places everything on
	// the HPC partition.
	Broker *Broker

	// Spot, when set, makes the EC2 pool a spot-market pool: jobs there
	// pay the spot price but suffer the plan's outages, rolling back to
	// their last checkpoint (fault.Progress arithmetic) and paying
	// checkpoint/restart I/O costs through iomodel.
	Spot *SpotConfig

	// Prices is the $ per slot-hour billed on each pool (PoolHPC is
	// conventionally 0: the facility owns it).
	Prices [NumPools]float64

	// Tau is the bounded-slowdown threshold in seconds (0 = 10).
	Tau float64

	// Metrics, when set, receives facility counters (submissions, starts,
	// kills, backfills, interruptions) in the obs registry.
	Metrics *obs.Registry
	// Meter, when set, accumulates the simulated makespan.
	Meter *sim.Meter
}

// Validate rejects malformed configurations.
func (c *Config) Validate() error {
	if c.Slots[PoolHPC] <= 0 {
		return fmt.Errorf("facility: HPC pool needs positive slots")
	}
	for p := PoolHPC; p < NumPools; p++ {
		if c.Slots[p] < 0 {
			return fmt.Errorf("facility: pool %s has negative slots", p)
		}
		if c.Prices[p] < 0 {
			return fmt.Errorf("facility: pool %s has negative price", p)
		}
	}
	if c.BackfillDepth < 0 || c.FairshareHalfLife < 0 || c.Tau < 0 {
		return fmt.Errorf("facility: negative knob in %+v", c)
	}
	tenants := make([]string, 0, len(c.TenantWeights))
	for t := range c.TenantWeights {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if w := c.TenantWeights[t]; w <= 0 {
			return fmt.Errorf("facility: tenant %s weight %g must be positive", t, w)
		}
	}
	if c.Spot != nil {
		if err := c.Spot.Validate(); err != nil {
			return err
		}
	}
	if c.Broker != nil {
		if err := c.Broker.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Config) backfillDepth() int {
	if c.BackfillDepth == 0 {
		return 64
	}
	return c.BackfillDepth
}

func (c *Config) tau() float64 {
	if c.Tau == 0 {
		return 10
	}
	return c.Tau
}

// Result is one facility run's full record.
type Result struct {
	Outcomes []Outcome // indexed by submission order
	Clock    float64   // virtual makespan (last event time)
	Events   int       // events processed
}

// event kinds; completions order before arrivals at equal times so a
// slot freed at t can be reused by a job submitted at t (the same
// convention arrive.SimulateQueue's interval arithmetic encodes).
const (
	kindComplete = 0
	kindArrive   = 1
	// kindWake re-runs the spot pool's scheduler when an outage window
	// closes — without it, jobs queued during an outage would never be
	// revisited once the event heap drains.
	kindWake = 2
)

// jobRec is the mutable in-flight state of one job.
type jobRec struct {
	job  Job
	seq  int
	pool Pool

	state JobState
	start float64
	end   float64

	// planDur is the scheduler's planning bound for the job on its pool
	// (scaled wall limit); execution beyond it is killed on HPC.
	planDur float64
	// charge is the slot-seconds-per-slot the tenant is billed for
	// (execution incl. lost work and checkpoint writes, excl. outages).
	charge float64

	reserved      float64
	interruptions int
	lost          float64
	cost          float64
}

// poolState is one pool's scheduler state.
type poolState struct {
	id      Pool
	slots   int
	free    int
	queue   []*jobRec // pending, in priority order (see sortQueue)
	running []*jobRec
	wakeAt  float64 // pending kindWake event time (0 = none)
}

// metrics bundles the facility's obs instruments.
type metrics struct {
	submitted, started, completed, killed *obs.Counter
	backfilled, interruptions             *obs.Counter
	waits                                 *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		submitted:     reg.Counter("facility_jobs_submitted_total", "jobs submitted to the facility"),
		started:       reg.Counter("facility_jobs_started_total", "jobs dispatched to a pool"),
		completed:     reg.Counter("facility_jobs_completed_total", "jobs that ran to completion"),
		killed:        reg.Counter("facility_jobs_killed_total", "jobs killed at their wall limit"),
		backfilled:    reg.Counter("facility_jobs_backfilled_total", "jobs started out of queue order by EASY backfill"),
		interruptions: reg.Counter("facility_spot_interruptions_total", "spot outages that rolled a job back"),
		waits:         reg.Histogram("facility_queue_wait_seconds", "per-job queue wait (virtual seconds, as ns)"),
	}
}

// Facility is one simulation instance. Not safe for concurrent use;
// distinct facilities are independent (the race stress test runs many
// at once against a shared read-only broker).
type Facility struct {
	cfg   Config
	pools [NumPools]*poolState
	share *shareTracker
	met   metrics

	queue   pdes.Queue
	payload []*jobRec // event payloads indexed by Event.Seq
	kinds   []uint8
	clock   float64
	events  int
}

// New validates the config and returns a facility ready to Run.
func New(cfg Config) (*Facility, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Facility{cfg: cfg, share: newShareTracker(cfg.FairshareHalfLife, cfg.TenantWeights)}
	for p := PoolHPC; p < NumPools; p++ {
		f.pools[p] = &poolState{id: p, slots: cfg.Slots[p], free: cfg.Slots[p]}
	}
	f.met = newMetrics(cfg.Metrics)
	return f, nil
}

// Run simulates the whole workload and returns every job's outcome.
// Jobs are identified by their slice index; equal submit times keep
// slice order (the oracle's stable-sort convention).
func (f *Facility) Run(jobs []Job) (*Result, error) {
	recs := make([]*jobRec, len(jobs))
	for i, j := range jobs {
		if err := f.validateJob(j); err != nil {
			return nil, fmt.Errorf("facility: job %d: %w", i, err)
		}
		if j.Limit == 0 {
			j.Limit = j.Runtime
		}
		recs[i] = &jobRec{job: j, seq: i, state: StateQueued}
		f.push(j.Submit, kindArrive, recs[i])
		f.met.submitted.Inc()
	}

	for f.queue.Len() > 0 {
		e := f.queue.Pop()
		if e.Time < f.clock {
			return nil, fmt.Errorf("facility: virtual clock regressed %g -> %g", f.clock, e.Time)
		}
		f.clock = e.Time
		f.events++
		rec := f.payload[e.Seq]
		switch f.kinds[e.Seq] {
		case kindArrive:
			pool := f.route(rec)
			rec.pool = pool
			f.enqueue(f.pools[pool], rec)
			f.schedule(f.pools[pool])
		case kindComplete:
			f.complete(rec)
			f.schedule(f.pools[rec.pool])
		case kindWake:
			f.schedule(f.pools[PoolEC2])
		}
	}

	out := &Result{Outcomes: make([]Outcome, len(jobs)), Clock: f.clock, Events: f.events}
	for i, r := range recs {
		if r.state != StateCompleted && r.state != StateKilled {
			return nil, fmt.Errorf("facility: job %d finished in state %s", i, r.state)
		}
		out.Outcomes[i] = Outcome{
			Job: r.job, Seq: i, Pool: r.pool, State: r.state,
			Start: r.start, End: r.end, Wait: r.start - r.job.Submit,
			Service: r.end - r.start, Reserved: r.reserved,
			Interruptions: r.interruptions, LostWork: r.lost, Cost: r.cost,
		}
	}
	f.cfg.Meter.Add(f.clock)
	return out, nil
}

func (f *Facility) validateJob(j Job) error {
	if j.NP <= 0 {
		return fmt.Errorf("needs positive NP, got %d", j.NP)
	}
	cap := f.cfg.Slots[PoolHPC]
	if f.cfg.Broker != nil {
		// A brokered facility can place wide jobs on whichever pool fits.
		for p := PoolHPC; p < NumPools; p++ {
			if f.cfg.Slots[p] > cap {
				cap = f.cfg.Slots[p]
			}
		}
	}
	if j.NP > cap {
		return fmt.Errorf("needs %d slots, widest schedulable pool has %d", j.NP, cap)
	}
	if !(j.Runtime > 0) || math.IsInf(j.Runtime, 0) {
		return fmt.Errorf("needs positive finite Runtime, got %g", j.Runtime)
	}
	if !(j.Limit >= 0) || !(j.Submit >= 0) || math.IsInf(j.Limit, 0) || math.IsInf(j.Submit, 0) {
		return fmt.Errorf("Limit (%g) and Submit (%g) must be finite and non-negative", j.Limit, j.Submit)
	}
	if j.Tenant == "" {
		return fmt.Errorf("needs a tenant")
	}
	return nil
}

// push schedules one event. The payload index doubles as the heap's
// tie-breaking Seq, so insertion order makes the order total.
func (f *Facility) push(at float64, kind uint8, rec *jobRec) {
	f.payload = append(f.payload, rec)
	f.kinds = append(f.kinds, kind)
	f.queue.Push(pdes.Event{Time: at, Rank: int(kind), Seq: uint64(len(f.payload) - 1)})
}

// enqueue inserts rec into the pool queue keeping (submit, seq) order;
// fairshare passes re-sort by priority at schedule time.
func (p *poolState) insert(rec *jobRec) {
	p.queue = append(p.queue, rec)
}

func (f *Facility) enqueue(p *poolState, rec *jobRec) {
	p.insert(rec)
}

// complete finalises one running job: frees its slots and charges the
// tenant's decayed-usage account for the consumed slot-seconds.
func (f *Facility) complete(rec *jobRec) {
	p := f.pools[rec.pool]
	p.free += rec.job.NP
	for i, r := range p.running {
		if r == rec {
			p.running = append(p.running[:i], p.running[i+1:]...)
			break
		}
	}
	f.share.charge(rec.job.Tenant, f.clock, rec.charge*float64(rec.job.NP))
	if rec.state == StateKilled {
		f.met.killed.Inc()
	} else {
		f.met.completed.Inc()
	}
	f.met.waits.ObserveSeconds(rec.start - rec.job.Submit)
}

// start dispatches rec on pool p at the current clock, computing its
// completion (and terminal state) up front: the execution leg is a pure
// function of (job, pool, spot plan), so one completion event suffices.
func (f *Facility) start(p *poolState, rec *jobRec) {
	rec.state = StateRunning
	rec.start = f.clock
	p.free -= rec.job.NP
	p.running = append(p.running, rec)
	f.met.started.Inc()

	factor := f.factor(rec.job.Class, p.id)
	base := rec.job.Runtime * factor
	limit := rec.job.Limit * factor

	switch {
	case p.id == PoolEC2 && f.cfg.Spot != nil:
		// Spot execution: outages roll progress back to the last
		// checkpoint; limits are advisory on the elastic pool.
		sr := f.cfg.Spot.run(rec.start, base, rec.job.NP)
		rec.end = sr.end
		rec.state = StateCompleted
		rec.charge = sr.billed
		rec.interruptions = sr.interruptions
		rec.lost = sr.lost
		rec.cost = float64(rec.job.NP) * sr.billed / 3600 * f.cfg.Spot.Price
		f.met.interruptions.Add(int64(sr.interruptions))
	default:
		exec := base
		state := StateCompleted
		if base > limit {
			exec, state = limit, StateKilled
		}
		rec.end = rec.start + exec
		rec.state = state
		rec.charge = exec
		rec.cost = float64(rec.job.NP) * exec / 3600 * f.cfg.Prices[p.id]
	}
	f.push(rec.end, kindComplete, rec)
}

// factor returns the class's projected runtime multiplier on pool
// (1 everywhere without a broker, and always exactly 1 on HPC).
func (f *Facility) factor(class string, pool Pool) float64 {
	if pool == PoolHPC || f.cfg.Broker == nil {
		return 1
	}
	return f.cfg.Broker.factor(class, pool)
}

// planDur returns the planning bound used for reservations and backfill
// windows on the HPC partition: the job's wall limit.
func (f *Facility) planDur(rec *jobRec) float64 {
	return rec.job.Limit
}

// sortQueue orders p's queue for one scheduling pass. Without fairshare
// the queue is already in (submit, seq) order — arrivals are events on
// the time-ordered heap — so FCFS needs no sort. With fairshare the key
// is (decayed usage / weight, submit, seq): usage decays at one shared
// rate, so relative tenant order only changes when usage is charged,
// and relabeling tenants cannot change the schedule (the order never
// depends on the tenant name itself — the order-invariance property).
func (f *Facility) sortQueue(p *poolState) {
	if !f.cfg.Fairshare || len(p.queue) < 2 {
		return
	}
	type keyed struct {
		usage float64
		rec   *jobRec
	}
	keys := make([]keyed, len(p.queue))
	for i, r := range p.queue {
		keys[i] = keyed{f.share.usageAt(r.job.Tenant, f.clock), r}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.usage != b.usage {
			return a.usage < b.usage
		}
		if a.rec.job.Submit != b.rec.job.Submit {
			return a.rec.job.Submit < b.rec.job.Submit
		}
		return a.rec.seq < b.rec.seq
	})
	for i := range keys {
		p.queue[i] = keys[i].rec
	}
}

// available reports whether the pool can start jobs at the current
// clock (the spot pool is frozen during a market outage).
func (f *Facility) available(p *poolState) bool {
	if p.id == PoolEC2 && f.cfg.Spot != nil {
		return !f.cfg.Spot.Plan.OutageAt(f.clock)
	}
	return true
}

// schedule runs one scheduling pass over pool p: start queue-order jobs
// while they fit, then (HPC only) an EASY backfill pass behind the
// blocked head's reservation.
func (f *Facility) schedule(p *poolState) {
	if len(p.queue) == 0 {
		return
	}
	if !f.available(p) {
		// Frozen by a spot outage: schedule a wake at the window's end so
		// the queued jobs are revisited even if the heap otherwise drains.
		if end, ok := f.cfg.Spot.outageEndAt(f.clock); ok && p.wakeAt != end {
			p.wakeAt = end
			f.push(end, kindWake, nil)
		}
		return
	}
	f.sortQueue(p)
	for len(p.queue) > 0 && p.queue[0].job.NP <= p.free {
		rec := p.queue[0]
		p.queue = p.queue[1:]
		f.start(p, rec)
	}
	if len(p.queue) == 0 || p.id != PoolHPC || !f.cfg.Backfill {
		return
	}
	f.backfill(p)
}

// backfill is the EASY pass: compute the head's reservation from the
// running jobs' planning bounds, then start later jobs that cannot
// delay it — they either finish (by their limit) before the
// reservation, or fit in the slots the head leaves spare.
func (f *Facility) backfill(p *poolState) {
	head := p.queue[0]
	resv, spare := f.reservation(p, head)
	if head.reserved == 0 {
		head.reserved = resv
	}
	depth := f.cfg.backfillDepth()
	kept := p.queue[:1]
	for i, rec := range p.queue[1:] {
		if i >= depth || p.free == 0 {
			kept = append(kept, p.queue[1+i:]...)
			break
		}
		fits := rec.job.NP <= p.free
		safe := f.clock+f.planDur(rec) <= resv || rec.job.NP <= spare
		if fits && safe {
			if f.clock+f.planDur(rec) > resv {
				spare -= rec.job.NP
			}
			f.start(p, rec)
			f.met.backfilled.Inc()
			continue
		}
		kept = append(kept, rec)
	}
	p.queue = kept
}

// reservation returns the earliest time the head is guaranteed to fit
// (walking running jobs' planning-bound ends in ascending order), plus
// the slots still spare at that time after the head starts.
func (f *Facility) reservation(p *poolState, head *jobRec) (resv float64, spare int) {
	ends := make([]struct {
		at float64
		np int
	}, len(p.running))
	for i, r := range p.running {
		at := r.start + f.planDur(r)
		if at < r.end {
			at = r.end // a job never frees slots before its computed end
		}
		ends[i].at = at
		ends[i].np = r.job.NP
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].at < ends[j].at })
	free := p.free
	resv = f.clock
	for _, e := range ends {
		if free >= head.job.NP {
			break
		}
		free += e.np
		resv = e.at
	}
	return resv, free - head.job.NP
}

// route picks the pool an arriving job runs on.
func (f *Facility) route(rec *jobRec) Pool {
	if f.cfg.Broker == nil {
		return PoolHPC
	}
	return f.cfg.Broker.route(rec.job, f)
}

// estWait estimates pool p's queue wait at the current clock: total
// outstanding planned work (queued planning bounds plus running jobs'
// remaining spans) divided by the pool's slot capacity.
func (f *Facility) estWait(p *poolState) float64 {
	if p.slots == 0 {
		return math.Inf(1)
	}
	var work float64
	for _, r := range p.queue {
		work += float64(r.job.NP) * f.planDur(r) * f.factor(r.job.Class, p.id)
	}
	for _, r := range p.running {
		if rem := r.end - f.clock; rem > 0 {
			work += float64(r.job.NP) * rem
		}
	}
	return work / float64(p.slots)
}
