// Package facility simulates a long-running, multi-tenant batch facility
// in virtual time: a SLURM-style central queue with FCFS + EASY backfill
// and decayed-usage fairshare priorities over the paper's three resource
// pools (the Vayu HPC partition, the DCC private cloud, the EC2 public
// cloud), an ARRIVE-F-style broker routing each job by predicted runtime
// and cost, and spot-market interruptions threaded through the fault
// plane with checkpoint/restart costs charged via iomodel.
//
// The simulation is entirely event-driven: arrivals, completions and
// limit kills are events on the same strict-total-order virtual-time
// heap the PDES rank engine uses (pdes.Queue), so a facility run is a
// pure function of (workload, config) — bit-reproducible at any host
// parallelism, under either mpi runtime, and byte-compared against the
// small-N oracle arrive.SimulateQueue by the cross-validation tests.
//
// Two scheduler implementations share the event loop. SchedHeap (the
// default) keeps incremental structures — a lazily re-keyed pending
// heap, a maintained release profile for EASY reservations, and O(1)
// wait-estimate aggregates — so a million-job run stays near-linear.
// SchedSort is the original sort-per-pass implementation, retained as
// the oracle the parity suite compares against bit for bit.
package facility

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/pdes"
	"repro/internal/sim"
)

// Pool identifies one resource pool jobs can be placed on.
type Pool uint8

// The paper's three platforms, as schedulable pools.
const (
	PoolHPC Pool = iota // Vayu: the facility's own partition
	PoolDCC             // private cloud
	PoolEC2             // public cloud (on-demand or spot)
	NumPools
)

// String implements fmt.Stringer.
func (p Pool) String() string {
	switch p {
	case PoolHPC:
		return "vayu"
	case PoolDCC:
		return "dcc"
	case PoolEC2:
		return "ec2"
	}
	return fmt.Sprintf("pool(%d)", int(p))
}

// JobState is a job's terminal (or in-flight) state.
type JobState uint8

// Job lifecycle states. Every submitted job ends exactly once as
// Completed or Killed — the conservation property the test battery pins.
const (
	StateQueued JobState = iota
	StateRunning
	StateCompleted
	StateKilled // exceeded its wall limit on the HPC partition
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateKilled:
		return "killed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one batch submission.
type Job struct {
	Tenant string // accounting principal (fairshare group)
	Class  string // workload class (broker prediction key)
	NP     int    // slots requested
	// Runtime is the job's execution time on the reference (HPC) pool in
	// virtual seconds; other pools scale it by the broker's projected
	// per-class slowdown factor.
	Runtime float64
	// Limit is the requested wall limit on the reference pool (the
	// scheduler's planning bound, scaled like Runtime). Zero means
	// "exactly Runtime". A job whose Runtime exceeds its scaled limit is
	// killed at the limit on the HPC partition.
	Limit  float64
	Submit float64 // submission virtual time
}

// Outcome is one job's final record.
type Outcome struct {
	Job
	Seq   int // submission index (the job's facility-wide identity)
	Pool  Pool
	State JobState
	Start float64
	End   float64
	Wait  float64 // Start - Submit
	// Service is the span the job held its slots (End - Start): execution
	// plus checkpoint writes plus, on spot, outage gaps and restarts.
	Service float64
	// Reserved is the earliest EASY reservation guarantee computed for
	// the job while it was the blocked head of the HPC queue (0 when it
	// never was); later passes refresh it downward as completions beat
	// the planning bounds. With fairshare off, Start <= Reserved is the
	// backfill guarantee.
	Reserved      float64
	Interruptions int     // spot preemptions suffered
	LostWork      float64 // rolled-back execution seconds
	Cost          float64 // $ billed (0 on the facility's own partition)
}

// BoundedSlowdown returns max(1, (wait+service)/max(service, tau)) — the
// standard queueing metric that keeps sub-tau jobs from dominating.
func (o Outcome) BoundedSlowdown(tau float64) float64 {
	if tau <= 0 {
		tau = 10
	}
	den := math.Max(o.Service, tau)
	s := (o.Wait + o.Service) / den
	if s < 1 {
		return 1
	}
	return s
}

// SchedKind selects the scheduler implementation.
type SchedKind uint8

const (
	// SchedHeap is the incremental scheduler: a lazily re-keyed pending
	// heap, a maintained release profile and O(1) wait estimates. The
	// default, and the path the E15 million-job artefact runs on.
	SchedHeap SchedKind = iota
	// SchedSort is the original sort-per-pass scheduler, kept (without
	// build tags) as the oracle the parity suite compares SchedHeap
	// against bit for bit.
	SchedSort
)

// String implements fmt.Stringer.
func (k SchedKind) String() string {
	switch k {
	case SchedHeap:
		return "heap"
	case SchedSort:
		return "sort"
	}
	return fmt.Sprintf("sched(%d)", int(k))
}

// Config parameterises one facility.
type Config struct {
	// Slots is each pool's schedulable slot capacity. Slots[PoolHPC]
	// must be positive; a zero cloud pool is simply unavailable.
	Slots [NumPools]int

	// Backfill enables EASY backfill on the HPC partition: when the
	// highest-priority job cannot start, later jobs may run out of order
	// if (by their wall limits) they cannot delay its reservation.
	Backfill bool
	// BackfillDepth bounds how many queued jobs one backfill pass
	// examines (0 = 64, SLURM's bf_max_job_test discipline).
	BackfillDepth int

	// Fairshare orders the queue by decayed tenant usage instead of pure
	// FCFS. Ties (and the no-fairshare order) are (submit, seq).
	Fairshare bool
	// FairshareHalfLife is the usage decay half-life in virtual seconds
	// (0 = 86400, SLURM's default decay horizon shape).
	FairshareHalfLife float64
	// TenantWeights maps tenants to fairshare weights (unlisted = 1):
	// priority orders by decayed usage divided by weight.
	TenantWeights map[string]float64

	// Broker, when set, routes each arriving job across the pools by
	// predicted runtime and cost; nil statically places everything on
	// the HPC partition.
	Broker *Broker

	// Spot, when set, makes the EC2 pool a spot-market pool: jobs there
	// pay the spot price but suffer the plan's outages, rolling back to
	// their last checkpoint (fault.Progress arithmetic) and paying
	// checkpoint/restart I/O costs through iomodel.
	Spot *SpotConfig

	// Prices is the $ per slot-hour billed on each pool (PoolHPC is
	// conventionally 0: the facility owns it).
	Prices [NumPools]float64

	// Tau is the bounded-slowdown threshold in seconds (0 = 10).
	Tau float64

	// Sched selects the scheduler implementation (default SchedHeap).
	Sched SchedKind

	// Metrics, when set, receives facility counters (submissions, starts,
	// kills, backfills, interruptions) in the obs registry.
	Metrics *obs.Registry
	// Meter, when set, accumulates the simulated makespan.
	Meter *sim.Meter
}

// Validate rejects malformed configurations.
func (c *Config) Validate() error {
	if c.Slots[PoolHPC] <= 0 {
		return fmt.Errorf("facility: HPC pool needs positive slots")
	}
	for p := PoolHPC; p < NumPools; p++ {
		if c.Slots[p] < 0 {
			return fmt.Errorf("facility: pool %s has negative slots", p)
		}
		if c.Prices[p] < 0 {
			return fmt.Errorf("facility: pool %s has negative price", p)
		}
	}
	if c.BackfillDepth < 0 || c.FairshareHalfLife < 0 || c.Tau < 0 {
		return fmt.Errorf("facility: negative knob in %+v", c)
	}
	if c.Sched > SchedSort {
		return fmt.Errorf("facility: unknown scheduler kind %d", c.Sched)
	}
	tenants := make([]string, 0, len(c.TenantWeights))
	for t := range c.TenantWeights {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if w := c.TenantWeights[t]; w <= 0 {
			return fmt.Errorf("facility: tenant %s weight %g must be positive", t, w)
		}
	}
	if c.Spot != nil {
		if err := c.Spot.Validate(); err != nil {
			return err
		}
	}
	if c.Broker != nil {
		if err := c.Broker.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Config) backfillDepth() int {
	if c.BackfillDepth == 0 {
		return 64
	}
	return c.BackfillDepth
}

func (c *Config) tau() float64 {
	if c.Tau == 0 {
		return 10
	}
	return c.Tau
}

// Result is one facility run's full record.
type Result struct {
	Outcomes []Outcome // indexed by submission order
	Clock    float64   // virtual makespan (last event time)
	Events   int       // events processed
}

// StreamResult is a streaming run's aggregate record (the per-job
// outcomes went to the emit callback instead of a slice).
type StreamResult struct {
	Jobs   int
	Clock  float64 // virtual makespan (last event time)
	Events int     // events processed
}

// event kinds; completions order before arrivals at equal times so a
// slot freed at t can be reused by a job submitted at t (the same
// convention arrive.SimulateQueue's interval arithmetic encodes).
const (
	kindComplete = 0
	kindArrive   = 1
	// kindWake re-runs the spot pool's scheduler when an outage window
	// closes — without it, jobs queued during an outage would never be
	// revisited once the event heap drains.
	kindWake = 2
)

// jobRec is the mutable in-flight state of one job. Records are
// slab-allocated on arrival and recycled after their outcome is
// emitted, so a streaming run's live records are bounded by the
// in-flight set, not the workload length.
type jobRec struct {
	job  Job
	seq  int
	pool Pool

	state JobState
	start float64
	end   float64

	// planDur is the scheduler's planning bound for the job on its pool
	// (scaled wall limit); execution beyond it is killed on HPC.
	planDur float64
	// charge is the slot-seconds-per-slot the tenant is billed for
	// (execution incl. lost work and checkpoint writes, excl. outages).
	charge float64
	// qwork is the job's stored contribution to its pool's queued-work
	// aggregate; subtracting the identical float on start keeps the
	// incremental sum exact per job.
	qwork float64
	// acct caches the tenant's fairshare account (heap scheduler only),
	// so staleness checks are a pointer load, not a map lookup.
	acct *tenantUsage

	reserved      float64
	interruptions int
	lost          float64
	cost          float64
}

// poolState is one pool's scheduler state.
type poolState struct {
	id    Pool
	slots int
	free  int

	// Sort-oracle path: pending jobs in priority order (see sortQueue)
	// and the running set the per-pass reservation sort walks.
	queue   []*jobRec
	running []*jobRec

	// Heap path: the pending heap and (HPC only) the maintained
	// timeline of planned releases reservations walk.
	pend    pendHeap
	profile releaseProfile

	// Maintained aggregates shared by both paths so estWait is O(1):
	// queued planning-bound work, and the running set's Σnp / Σnp·end.
	qWork float64
	npRun int
	npEnd float64

	wakeAt float64 // pending kindWake event time (0 = none)
}

// metrics bundles the facility's obs instruments.
type metrics struct {
	submitted, started, completed, killed *obs.Counter
	backfilled, interruptions             *obs.Counter
	waits                                 *obs.Histogram
	// Reservation refinements (EASY guarantees moving earlier as
	// completions beat planning bounds) are registered volatile:
	// diagnostics added after fac1 shipped must not perturb the stable
	// snapshots embedded in committed artefact manifests.
	resvRefined  *obs.Counter
	resvRefineBy *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		submitted:     reg.Counter("facility_jobs_submitted_total", "jobs submitted to the facility"),
		started:       reg.Counter("facility_jobs_started_total", "jobs dispatched to a pool"),
		completed:     reg.Counter("facility_jobs_completed_total", "jobs that ran to completion"),
		killed:        reg.Counter("facility_jobs_killed_total", "jobs killed at their wall limit"),
		backfilled:    reg.Counter("facility_jobs_backfilled_total", "jobs started out of queue order by EASY backfill"),
		interruptions: reg.Counter("facility_spot_interruptions_total", "spot outages that rolled a job back"),
		waits:         reg.Histogram("facility_queue_wait_seconds", "per-job queue wait (virtual seconds, as ns)"),
		resvRefined:   reg.VolatileCounter("facility_reservations_refined_total", "EASY head reservations refreshed to an earlier guarantee"),
		resvRefineBy:  reg.VolatileHistogram("facility_reservation_refinement_seconds", "improvement per reservation refresh (virtual seconds, as ns)"),
	}
}

// Facility is one simulation instance. Not safe for concurrent use;
// distinct facilities are independent (the race stress test runs many
// at once against a shared read-only broker).
type Facility struct {
	cfg   Config
	pools [NumPools]*poolState
	share *shareTracker
	met   metrics

	queue pdes.Queue
	// jobs is the run's input; arrival events carry Seq < len(jobs) and
	// index straight into it. payload carries completion/wake records at
	// Seq - len(jobs) — together they reproduce the exact tie-breaking
	// Seq sequence the original single-payload encoding assigned.
	jobs    []Job
	payload []*jobRec
	clock   float64
	events  int

	emit     func(Outcome)
	finished int

	chunk   []jobRec    // slab the next fresh records come from
	freed   []*jobRec   // recycled records
	scratch []heapEntry // backfill keep-list, reused across passes
}

// New validates the config and returns a facility ready to Run.
func New(cfg Config) (*Facility, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Facility{cfg: cfg, share: newShareTracker(cfg.FairshareHalfLife, cfg.TenantWeights)}
	for p := PoolHPC; p < NumPools; p++ {
		f.pools[p] = &poolState{id: p, slots: cfg.Slots[p], free: cfg.Slots[p]}
	}
	f.met = newMetrics(cfg.Metrics)
	return f, nil
}

// Run simulates the whole workload and returns every job's outcome.
// Jobs are identified by their slice index; equal submit times keep
// slice order (the oracle's stable-sort convention).
func (f *Facility) Run(jobs []Job) (*Result, error) {
	res := &Result{Outcomes: make([]Outcome, len(jobs))}
	sr, err := f.RunStream(jobs, func(o Outcome) { res.Outcomes[o.Seq] = o })
	if err != nil {
		return nil, err
	}
	res.Clock, res.Events = sr.Clock, sr.Events
	return res, nil
}

// RunStream simulates the whole workload, calling emit exactly once per
// job — in completion order — instead of materialising a Result. Job
// records are recycled after emission, so memory is bounded by the
// in-flight set plus one event per job: the mode the 10^6-job E15
// artefact runs in. Run is RunStream collecting into a slice; the two
// are outcome-for-outcome identical.
func (f *Facility) RunStream(jobs []Job, emit func(Outcome)) (StreamResult, error) {
	for i, j := range jobs {
		if err := f.validateJob(j); err != nil {
			return StreamResult{}, fmt.Errorf("facility: job %d: %w", i, err)
		}
	}
	f.jobs = jobs
	f.emit = emit
	f.met.submitted.Add(int64(len(jobs)))
	for i, j := range jobs {
		f.queue.Push(pdes.Event{Time: j.Submit, Rank: kindArrive, Seq: uint64(i)})
	}

	n := uint64(len(jobs))
	for f.queue.Len() > 0 {
		e := f.queue.Pop()
		if e.Time < f.clock {
			return StreamResult{}, fmt.Errorf("facility: virtual clock regressed %g -> %g", f.clock, e.Time)
		}
		f.clock = e.Time
		f.events++
		switch e.Rank {
		case kindArrive:
			rec := f.alloc(int(e.Seq))
			pool := f.route(rec)
			rec.pool = pool
			f.enqueue(f.pools[pool], rec)
			f.schedule(f.pools[pool])
		case kindComplete:
			rec := f.payload[e.Seq-n]
			f.payload[e.Seq-n] = nil
			pool := rec.pool
			f.complete(rec)
			f.schedule(f.pools[pool])
		case kindWake:
			f.schedule(f.pools[PoolEC2])
		}
	}
	if f.finished != len(jobs) {
		return StreamResult{}, fmt.Errorf("facility: %d of %d jobs never finished", len(jobs)-f.finished, len(jobs))
	}
	f.cfg.Meter.Add(f.clock)
	return StreamResult{Jobs: len(jobs), Clock: f.clock, Events: f.events}, nil
}

func (f *Facility) validateJob(j Job) error {
	if j.NP <= 0 {
		return fmt.Errorf("needs positive NP, got %d", j.NP)
	}
	cap := f.cfg.Slots[PoolHPC]
	if f.cfg.Broker != nil {
		// A brokered facility can place wide jobs on whichever pool fits.
		for p := PoolHPC; p < NumPools; p++ {
			if f.cfg.Slots[p] > cap {
				cap = f.cfg.Slots[p]
			}
		}
	}
	if j.NP > cap {
		return fmt.Errorf("needs %d slots, widest schedulable pool has %d", j.NP, cap)
	}
	if !(j.Runtime > 0) || math.IsInf(j.Runtime, 0) {
		return fmt.Errorf("needs positive finite Runtime, got %g", j.Runtime)
	}
	if !(j.Limit >= 0) || !(j.Submit >= 0) || math.IsInf(j.Limit, 0) || math.IsInf(j.Submit, 0) {
		return fmt.Errorf("Limit (%g) and Submit (%g) must be finite and non-negative", j.Limit, j.Submit)
	}
	if j.Tenant == "" {
		return fmt.Errorf("needs a tenant")
	}
	return nil
}

// alloc returns a fresh record for job i, reusing recycled ones.
func (f *Facility) alloc(i int) *jobRec {
	var rec *jobRec
	if n := len(f.freed); n > 0 {
		rec = f.freed[n-1]
		f.freed = f.freed[:n-1]
	} else {
		if len(f.chunk) == 0 {
			f.chunk = make([]jobRec, 256)
		}
		rec = &f.chunk[0]
		f.chunk = f.chunk[1:]
	}
	*rec = jobRec{job: f.jobs[i], seq: i, state: StateQueued}
	if rec.job.Limit == 0 {
		rec.job.Limit = rec.job.Runtime
	}
	return rec
}

// pushLater schedules a completion or wake event. Payload indices start
// after the arrival block, keeping every event's tie-breaking Seq equal
// to the original encoding's payload index.
func (f *Facility) pushLater(at float64, kind int, rec *jobRec) {
	//lint:allow reprolint/allochot amortised growth; the payload array is retained across the run
	f.payload = append(f.payload, rec)
	f.queue.Push(pdes.Event{Time: at, Rank: kind, Seq: uint64(len(f.jobs) + len(f.payload) - 1)})
}

// enqueue adds rec to its pool's pending set and the queued-work
// aggregate (the stored qwork makes the later subtraction exact).
func (f *Facility) enqueue(p *poolState, rec *jobRec) {
	rec.qwork = float64(rec.job.NP) * f.planDur(rec) * f.factor(rec.job.Class, p.id)
	p.qWork += rec.qwork
	if f.cfg.Sched == SchedSort {
		p.queue = append(p.queue, rec)
		return
	}
	if f.cfg.Fairshare {
		rec.acct = f.share.acct(rec.job.Tenant)
		p.pend.push(heapEntry{key: rec.acct.key(f.share.half), gen: rec.acct.gen, rec: rec})
		return
	}
	p.pend.push(heapEntry{rec: rec})
}

// pendingLen is the pool's pending-job count on the active path.
func (f *Facility) pendingLen(p *poolState) int {
	if f.cfg.Sched == SchedSort {
		return len(p.queue)
	}
	return p.pend.len()
}

// complete finalises one running job: frees its slots, charges the
// tenant's decayed-usage account for the consumed slot-seconds, emits
// the outcome and recycles the record.
func (f *Facility) complete(rec *jobRec) {
	p := f.pools[rec.pool]
	p.free += rec.job.NP
	p.npRun -= rec.job.NP
	p.npEnd -= float64(rec.job.NP) * rec.end
	if f.cfg.Sched == SchedSort {
		for i, r := range p.running {
			if r == rec {
				p.running = append(p.running[:i], p.running[i+1:]...)
				break
			}
		}
	} else if p.id == PoolHPC {
		p.profile.remove(f.releaseAt(rec), rec.seq)
	}
	f.share.charge(rec.job.Tenant, f.clock, rec.charge*float64(rec.job.NP))
	if rec.state == StateKilled {
		f.met.killed.Inc()
	} else {
		f.met.completed.Inc()
	}
	f.met.waits.ObserveSeconds(rec.start - rec.job.Submit)
	if f.emit != nil {
		f.emit(Outcome{
			Job: rec.job, Seq: rec.seq, Pool: rec.pool, State: rec.state,
			Start: rec.start, End: rec.end, Wait: rec.start - rec.job.Submit,
			Service: rec.end - rec.start, Reserved: rec.reserved,
			Interruptions: rec.interruptions, LostWork: rec.lost, Cost: rec.cost,
		})
	}
	f.finished++
	f.freed = append(f.freed, rec)
}

// start dispatches rec on pool p at the current clock, computing its
// completion (and terminal state) up front: the execution leg is a pure
// function of (job, pool, spot plan), so one completion event suffices.
func (f *Facility) start(p *poolState, rec *jobRec) {
	rec.state = StateRunning
	rec.start = f.clock
	p.free -= rec.job.NP
	p.qWork -= rec.qwork
	if f.cfg.Sched == SchedSort {
		//lint:allow reprolint/allochot legacy SchedSort bookkeeping; the heap scheduler never takes this branch
		p.running = append(p.running, rec)
	}
	f.met.started.Inc()

	factor := f.factor(rec.job.Class, p.id)
	base := rec.job.Runtime * factor
	limit := rec.job.Limit * factor

	switch {
	case p.id == PoolEC2 && f.cfg.Spot != nil:
		// Spot execution: outages roll progress back to the last
		// checkpoint; limits are advisory on the elastic pool.
		sr := f.cfg.Spot.run(rec.start, base, rec.job.NP)
		rec.end = sr.end
		rec.state = StateCompleted
		rec.charge = sr.billed
		rec.interruptions = sr.interruptions
		rec.lost = sr.lost
		rec.cost = float64(rec.job.NP) * sr.billed / 3600 * f.cfg.Spot.Price
		f.met.interruptions.Add(int64(sr.interruptions))
	default:
		exec := base
		state := StateCompleted
		if base > limit {
			exec, state = limit, StateKilled
		}
		rec.end = rec.start + exec
		rec.state = state
		rec.charge = exec
		rec.cost = float64(rec.job.NP) * exec / 3600 * f.cfg.Prices[p.id]
	}
	p.npRun += rec.job.NP
	p.npEnd += float64(rec.job.NP) * rec.end
	if f.cfg.Sched != SchedSort && p.id == PoolHPC {
		p.profile.insert(f.releaseAt(rec), rec.job.NP, rec.seq)
	}
	f.pushLater(rec.end, kindComplete, rec)
}

// releaseAt is the planning-bound release time reservations charge a
// running job with: it never frees slots before its computed end.
func (f *Facility) releaseAt(rec *jobRec) float64 {
	at := rec.start + f.planDur(rec)
	if at < rec.end {
		at = rec.end
	}
	return at
}

// factor returns the class's projected runtime multiplier on pool
// (1 everywhere without a broker, and always exactly 1 on HPC).
func (f *Facility) factor(class string, pool Pool) float64 {
	if pool == PoolHPC || f.cfg.Broker == nil {
		return 1
	}
	return f.cfg.Broker.factor(class, pool)
}

// planDur returns the planning bound used for reservations and backfill
// windows on the HPC partition: the job's wall limit.
func (f *Facility) planDur(rec *jobRec) float64 {
	return rec.job.Limit
}

// available reports whether the pool can start jobs at the current
// clock (the spot pool is frozen during a market outage).
func (f *Facility) available(p *poolState) bool {
	if p.id == PoolEC2 && f.cfg.Spot != nil {
		return !f.cfg.Spot.Plan.OutageAt(f.clock)
	}
	return true
}

// schedule runs one scheduling pass over pool p: start priority-order
// jobs while they fit, then (HPC only) an EASY backfill pass behind the
// blocked head's reservation.
func (f *Facility) schedule(p *poolState) {
	if f.pendingLen(p) == 0 {
		return
	}
	if !f.available(p) {
		// Frozen by a spot outage: schedule a wake at the window's end so
		// the queued jobs are revisited even if the heap otherwise drains.
		if end, ok := f.cfg.Spot.outageEndAt(f.clock); ok && p.wakeAt != end {
			p.wakeAt = end
			f.pushLater(end, kindWake, nil)
		}
		return
	}
	if f.cfg.Sched == SchedSort {
		f.scheduleSort(p)
		return
	}
	f.scheduleHeap(p)
}

// reserve records the head's EASY reservation: set on first block,
// refreshed downward when a later pass computes an earlier guarantee
// (completions beat planning bounds, so estimates improve for a fixed
// head), with the improvement recorded in the refinement metrics.
func (f *Facility) reserve(head *jobRec, resv float64) {
	if head.reserved == 0 {
		head.reserved = resv
		return
	}
	if resv < head.reserved {
		f.met.resvRefined.Inc()
		f.met.resvRefineBy.ObserveSeconds(head.reserved - resv)
		head.reserved = resv
	}
}

// route picks the pool an arriving job runs on.
func (f *Facility) route(rec *jobRec) Pool {
	if f.cfg.Broker == nil {
		return PoolHPC
	}
	return f.cfg.Broker.route(rec.job, f)
}

// estWait estimates pool p's queue wait at the current clock: total
// outstanding planned work (queued planning bounds plus running jobs'
// remaining spans) divided by the pool's slot capacity. O(1) from the
// maintained aggregates — the running remainder is Σnp·end − clock·Σnp,
// exact because completions sort before arrivals at equal times, so
// every still-running job has end > clock when a router asks.
func (f *Facility) estWait(p *poolState) float64 {
	if p.slots == 0 {
		return math.Inf(1)
	}
	work := p.qWork + (p.npEnd - f.clock*float64(p.npRun))
	if work <= 0 {
		return 0
	}
	return work / float64(p.slots)
}
