package facility

import (
	"encoding/binary"
	"testing"
)

// FuzzWorkloadGen feeds arbitrary spec parameters to the generator and
// checks its contract: valid specs produce valid, arrival-ordered jobs,
// and the stream is a pure function of the spec (two calls, identical
// output).
func FuzzWorkloadGen(f *testing.F) {
	f.Add(uint64(0), uint16(100), uint16(10), uint16(64), uint16(0), false)
	f.Add(uint64(42), uint16(1000), uint16(200), uint16(128), uint16(32), true)
	f.Add(uint64(7), uint16(1), uint16(1), uint16(1), uint16(1), false)
	f.Add(uint64(9999), uint16(300), uint16(5), uint16(16), uint16(8), true)
	f.Fuzz(func(t *testing.T, seed uint64, jobs, tenants, slots, maxNP uint16, fixedHorizon bool) {
		spec := WorkloadSpec{
			Seed:    seed,
			Jobs:    1 + int(jobs)%2000,
			Tenants: 1 + int(tenants)%500,
			Slots:   1 + int(slots)%512,
		}
		spec.MaxNP = int(maxNP) % (spec.Slots + 1)
		if fixedHorizon {
			spec.Horizon = 10000
		}
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("valid spec rejected: %v", err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != spec.Jobs || len(b) != spec.Jobs {
			t.Fatalf("generated %d/%d jobs, want %d", len(a), len(b), spec.Jobs)
		}
		prev := 0.0
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("job %d not deterministic: %+v vs %+v", i, a[i], b[i])
			}
			j := a[i]
			if j.Submit < prev {
				t.Fatalf("job %d: arrivals out of order (%g < %g)", i, j.Submit, prev)
			}
			prev = j.Submit
			if j.NP < 1 || j.NP > spec.Slots {
				t.Fatalf("job %d: np %d outside [1,%d]", i, j.NP, spec.Slots)
			}
			if j.Runtime <= 0 || j.Limit <= 0 || j.Tenant == "" || j.Class == "" {
				t.Fatalf("job %d malformed: %+v", i, j)
			}
		}
	})
}

// fuzzConfig decodes facility knobs from 8 fuzz bytes.
func fuzzConfig(knobs []byte) Config {
	cfg := Config{
		Slots:  [NumPools]int{1 + int(knobs[0])%64, int(knobs[1]) % 32, int(knobs[2]) % 32},
		Prices: [NumPools]float64{0, 0.34, 0.68},
	}
	if knobs[3]&1 != 0 {
		cfg.Backfill = true
		cfg.BackfillDepth = int(knobs[4]) % 128
	}
	if knobs[3]&2 != 0 {
		cfg.Fairshare = true
		cfg.FairshareHalfLife = float64(1+int(knobs[5])) * 60
	}
	if knobs[3]&4 != 0 {
		cfg.Broker = staticTestBroker()
	}
	if knobs[3]&8 != 0 {
		cfg.Spot = testSpot()
	}
	return cfg
}

// FuzzFacility drives a whole facility run from fuzz input: the first 8
// bytes select config knobs, the rest is parsed as a job trace. Any
// trace the parser accepts must either be rejected by job validation or
// run to completion — no panics, no stuck jobs — and the run must be
// deterministic (identical digests on a rerun).
func FuzzFacility(f *testing.F) {
	seedTrace := func(seed uint64, n int, knobs byte) []byte {
		jobs, err := Generate(WorkloadSpec{Seed: seed, Jobs: n, Tenants: 5, Slots: 16})
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 8)
		buf[3] = knobs
		binary.BigEndian.PutUint32(buf[4:], uint32(seed))
		buf[0] = 32 // HPC slots knob
		buf[1] = 16
		buf[2] = 16
		return append(buf, FormatTrace(jobs)...)
	}
	f.Add(seedTrace(1, 20, 0))
	f.Add(seedTrace(2, 40, 1))
	f.Add(seedTrace(3, 30, 3))
	f.Add(seedTrace(4, 25, 7))
	f.Add(seedTrace(5, 35, 15))
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 't', ' ', 'e', 'p', ' ', '1', ' ', '5', ' ', '5', ' ', '0', '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		cfg := fuzzConfig(data[:8])
		jobs, err := ParseTrace(data[8:])
		if err != nil || len(jobs) == 0 {
			return
		}
		if len(jobs) > 256 {
			jobs = jobs[:256]
		}
		for _, j := range jobs {
			// A week-long horizon bounds the fuzz run's virtual work: a
			// 1e30-second spot job legitimately simulates 1e27 checkpoint
			// writes, which is correct but not a useful fuzz iteration.
			if j.Runtime > 7*86400 || j.Limit > 7*86400 || j.Submit > 7*86400 {
				return
			}
		}
		run := func() (*Result, error) {
			fac, err := New(cfg)
			if err != nil {
				t.Fatalf("fuzzConfig built an invalid config: %v", err)
			}
			return fac.Run(jobs)
		}
		res, err := run()
		if err != nil {
			// Job validation rejected the trace — fine, but it must do so
			// deterministically.
			if _, err2 := run(); err2 == nil {
				t.Fatalf("nondeterministic rejection: %v then success", err)
			}
			return
		}
		for i, o := range res.Outcomes {
			if o.State != StateCompleted && o.State != StateKilled {
				t.Fatalf("job %d stuck in %s", i, o.State)
			}
			if !(o.Submit <= o.Start && o.Start <= o.End) {
				t.Fatalf("job %d times unordered: %+v", i, o)
			}
		}
		res2, err := run()
		if err != nil {
			t.Fatalf("accepted then rejected: %v", err)
		}
		if Digest(res) != Digest(res2) {
			t.Fatal("rerun digest diverged")
		}
	})
}
