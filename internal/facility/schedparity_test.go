package facility

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// The scheduler-parity battery: SchedHeap (incremental structures) must
// reproduce SchedSort (the retained sort-per-pass oracle) bit for bit —
// same outcomes, same digests, same completion order, same event count
// — across every knob combination. The log-domain priority keys, the
// lazy re-keying and the maintained release profile are all exact
// reformulations of the oracle's comparisons, so equality is required,
// not approximate.

// runSched runs jobs under the given scheduler kind, returning the full
// result and the emission (completion) order.
func runSched(t *testing.T, cfg Config, kind SchedKind, jobs []Job) (*Result, []int) {
	t.Helper()
	cfg.Sched = kind
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Outcomes: make([]Outcome, len(jobs))}
	var order []int
	sr, err := f.RunStream(jobs, func(o Outcome) {
		order = append(order, o.Seq)
		res.Outcomes[o.Seq] = o
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Clock, res.Events = sr.Clock, sr.Events
	return res, order
}

// parityConfig builds the knob-combination configs both parity tests
// sweep: every subset of {backfill, fairshare, broker, spot}, with
// uneven tenant weights and a non-default half-life when fairshare is
// on and a shallow depth cap when backfill is on.
func parityConfig(knobs uint8) Config {
	cfg := Config{
		Slots:  [NumPools]int{32, 16, 16},
		Prices: [NumPools]float64{0, 0.34, 0.68},
	}
	if knobs&1 != 0 {
		cfg.Backfill = true
		cfg.BackfillDepth = 8
	}
	if knobs&2 != 0 {
		cfg.Fairshare = true
		cfg.FairshareHalfLife = 7200
		cfg.TenantWeights = map[string]float64{"t0000": 4, "t0001": 0.5}
	}
	if knobs&4 != 0 {
		cfg.Broker = staticTestBroker()
	}
	if knobs&8 != 0 {
		cfg.Spot = testSpot()
	}
	return cfg
}

// TestSchedParityAllKnobs is the deterministic sweep: one workload, all
// sixteen knob combinations, bit-identical results between paths.
func TestSchedParityAllKnobs(t *testing.T) {
	jobs := genJobs(t, 7, 400, 30, 32)
	for knobs := uint8(0); knobs < 16; knobs++ {
		cfg := parityConfig(knobs)
		heapRes, heapOrder := runSched(t, cfg, SchedHeap, jobs)
		sortRes, sortOrder := runSched(t, cfg, SchedSort, jobs)
		if !reflect.DeepEqual(heapRes.Outcomes, sortRes.Outcomes) {
			for i := range heapRes.Outcomes {
				if heapRes.Outcomes[i] != sortRes.Outcomes[i] {
					t.Fatalf("knobs %x: job %d diverged:\nheap %+v\nsort %+v",
						knobs, i, heapRes.Outcomes[i], sortRes.Outcomes[i])
				}
			}
			t.Fatalf("knobs %x: outcomes diverged", knobs)
		}
		if heapRes.Events != sortRes.Events || math.Float64bits(heapRes.Clock) != math.Float64bits(sortRes.Clock) {
			t.Fatalf("knobs %x: events/clock diverged: %d/%g vs %d/%g",
				knobs, heapRes.Events, heapRes.Clock, sortRes.Events, sortRes.Clock)
		}
		if !reflect.DeepEqual(heapOrder, sortOrder) {
			t.Fatalf("knobs %x: completion order diverged", knobs)
		}
		if Digest(heapRes) != Digest(sortRes) {
			t.Fatalf("knobs %x: digest diverged", knobs)
		}
	}
}

// TestQuickSchedulerParity is the random-workload property: for any
// seeded workload and knob combination, the incremental scheduler and
// the sort oracle produce identical digests.
func TestQuickSchedulerParity(t *testing.T) {
	prop := func(seed uint64, knobs uint8, jn uint8) bool {
		jobs := genJobs(t, seed, 30+int(jn)%120, 1+int(jn)%16, 32)
		cfg := parityConfig(knobs % 16)
		heapRes, _ := runSched(t, cfg, SchedHeap, jobs)
		sortRes, _ := runSched(t, cfg, SchedSort, jobs)
		if Digest(heapRes) != Digest(sortRes) {
			for i := range heapRes.Outcomes {
				if heapRes.Outcomes[i] != sortRes.Outcomes[i] {
					t.Logf("seed %d knobs %x: job %d diverged:\nheap %+v\nsort %+v",
						seed, knobs%16, i, heapRes.Outcomes[i], sortRes.Outcomes[i])
					break
				}
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunMatchesRunStream: Run is defined as RunStream collecting into
// a slice; the two entry points must agree outcome for outcome.
func TestRunMatchesRunStream(t *testing.T) {
	jobs := genJobs(t, 11, 300, 20, 32)
	cfg := parityConfig(15)
	f1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f1.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _ := runSched(t, cfg, SchedHeap, jobs)
	if !reflect.DeepEqual(res, streamed) {
		t.Fatal("Run and RunStream disagreed")
	}
}

// TestStreamSummaryMatchesSummarize: fed the same outcomes in the same
// order, the streaming summary is bit-identical to Summarize as long as
// the run fits the reservoir; fed in completion order (its real use),
// the order-independent fields still match exactly and the accumulated
// sums to floating-point tolerance.
func TestStreamSummaryMatchesSummarize(t *testing.T) {
	jobs := genJobs(t, 13, 500, 25, 32)
	cfg := parityConfig(15)
	res, _ := runSched(t, cfg, SchedHeap, jobs)
	exact := Summarize(res.Outcomes, 0)

	ss := NewStreamSummary(0, 99)
	for _, o := range res.Outcomes { // submission order: exact replay
		ss.Observe(o)
	}
	if got := ss.Summary(); got != exact {
		t.Fatalf("submission-order stream diverged:\n got %+v\nwant %+v", got, exact)
	}

	cfg.Sched = SchedHeap
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss2 := NewStreamSummary(0, 99)
	if _, err := f.RunStream(jobs, ss2.Observe); err != nil {
		t.Fatal(err)
	}
	got := ss2.Summary()
	if got.Jobs != exact.Jobs || got.Completed != exact.Completed || got.Killed != exact.Killed ||
		got.ByPool != exact.ByPool || got.Interruptions != exact.Interruptions ||
		math.Float64bits(got.MaxWait) != math.Float64bits(exact.MaxWait) ||
		math.Float64bits(got.Makespan) != math.Float64bits(exact.Makespan) ||
		math.Float64bits(got.WaitP50) != math.Float64bits(exact.WaitP50) ||
		math.Float64bits(got.WaitP90) != math.Float64bits(exact.WaitP90) ||
		math.Float64bits(got.WaitP99) != math.Float64bits(exact.WaitP99) ||
		math.Float64bits(got.SlowP99) != math.Float64bits(exact.SlowP99) {
		t.Fatalf("completion-order stream diverged on exact fields:\n got %+v\nwant %+v", got, exact)
	}
	for _, pair := range [][2]float64{
		{got.AvgWait, exact.AvgWait}, {got.SlowMean, exact.SlowMean},
		{got.Cost, exact.Cost}, {got.LostWork, exact.LostWork},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9*math.Max(1, math.Abs(pair[1])) {
			t.Fatalf("completion-order sum drifted: %g vs %g", pair[0], pair[1])
		}
	}
}

// TestStreamDigestDeterministic: the streaming digest is a pure
// function of the outcome stream and differs from the submission-order
// Digest domain only by ordering, not stability.
func TestStreamDigestDeterministic(t *testing.T) {
	jobs := genJobs(t, 17, 200, 15, 32)
	cfg := parityConfig(3)
	run := func() string {
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := NewStreamDigest()
		sr, err := f.RunStream(jobs, d.Observe)
		if err != nil {
			t.Fatal(err)
		}
		return d.Sum(sr.Clock, sr.Events)
	}
	if run() != run() {
		t.Fatal("stream digest not reproducible")
	}
}
