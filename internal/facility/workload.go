package facility

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// WorkloadSpec parameterises the synthetic workload generator. The
// generated stream is a pure function of the spec — same spec, same
// jobs, byte for byte.
type WorkloadSpec struct {
	Seed    uint64
	Jobs    int
	Tenants int
	// Slots is the reference HPC capacity the arrival rate is sized
	// against (normally Config.Slots[PoolHPC]).
	Slots int
	// Utilization is the offered load relative to Slots used to derive
	// the arrival horizon (0 = 1.05: a mildly saturated facility, the
	// regime where queue policy actually matters).
	Utilization float64
	// Horizon, when positive, fixes the arrival window in virtual
	// seconds instead of deriving it from Utilization.
	Horizon float64
	// MaxNP caps per-job slot requests (0 = min(64, Slots)).
	MaxNP int
	// Classes is the workload-class universe (nil = CalibratedClasses();
	// explicit lists draw uniformly instead of by the built-in mix).
	Classes []string
}

// Validate rejects malformed specs.
func (s WorkloadSpec) Validate() error {
	if s.Jobs <= 0 || s.Tenants <= 0 || s.Slots <= 0 {
		return fmt.Errorf("facility: workload needs positive Jobs (%d), Tenants (%d), Slots (%d)",
			s.Jobs, s.Tenants, s.Slots)
	}
	if s.Utilization < 0 || s.Horizon < 0 {
		return fmt.Errorf("facility: negative Utilization (%g) or Horizon (%g)", s.Utilization, s.Horizon)
	}
	if s.MaxNP < 0 || s.MaxNP > s.Slots {
		return fmt.Errorf("facility: MaxNP %d outside [0, %d]", s.MaxNP, s.Slots)
	}
	for _, c := range s.Classes {
		if c == "" {
			return fmt.Errorf("facility: empty workload class")
		}
	}
	return nil
}

// classShape holds one workload class's generation parameters, loosely
// calibrated to the paper's codes: NPB kernels are short and wide-ish,
// MetUM is the long production climate job.
type classShape struct {
	weight   float64
	logMean  float64 // LogNormal mu of the reference runtime
	logSigma float64
	npMin    int // np = npMin << k, k uniform in [0, npExp]
	npExp    int
}

func shapeOf(class string) classShape {
	switch class {
	case "ep":
		return classShape{0.30, math.Log(120), 0.8, 1, 5}
	case "cg":
		return classShape{0.20, math.Log(240), 0.7, 1, 5}
	case "mg":
		return classShape{0.15, math.Log(180), 0.7, 1, 5}
	case "ft":
		return classShape{0.10, math.Log(300), 0.6, 1, 5}
	case "is":
		return classShape{0.10, math.Log(60), 0.5, 1, 5}
	case "metum":
		return classShape{0.15, math.Log(1800), 0.5, 8, 3}
	}
	return classShape{0.10, math.Log(300), 0.8, 1, 5}
}

// Generate produces the seeded synthetic job stream: Zipf-weighted
// tenant activity (a few heavy groups, a long tail), Poisson arrivals
// scaled so the offered load hits the spec's utilization target,
// per-class LogNormal runtimes and power-of-two slot requests, and
// occasional underestimated wall limits (the jobs that get killed).
// Jobs are returned in arrival order.
func Generate(spec WorkloadSpec) ([]Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	maxNP := spec.MaxNP
	if maxNP == 0 {
		maxNP = 64
		if spec.Slots < maxNP {
			maxNP = spec.Slots
		}
	}
	classes := spec.Classes
	uniform := classes != nil
	if classes == nil {
		classes = CalibratedClasses()
	}

	root := sim.NewRNG(spec.Seed).Derive(sim.SeedString("facility-workload"))
	tenantR := root.Derive(1)
	classR := root.Derive(2)
	sizeR := root.Derive(3)
	runR := root.Derive(4)
	limitR := root.Derive(5)
	arrR := root.Derive(6)

	// Zipf(0.8) tenant activity, cumulative for binary-search sampling.
	tenantCum := make([]float64, spec.Tenants)
	total := 0.0
	for i := range tenantCum {
		total += 1 / math.Pow(float64(i+1), 0.8)
		tenantCum[i] = total
	}
	classCum := make([]float64, len(classes))
	classTotal := 0.0
	for i, c := range classes {
		w := shapeOf(c).weight
		if uniform {
			w = 1
		}
		classTotal += w
		classCum[i] = classTotal
	}

	jobs := make([]Job, spec.Jobs)
	var demand, at float64
	for i := range jobs {
		at += arrR.Exponential(1)
		tenant := sort.SearchFloat64s(tenantCum, tenantR.Float64()*total)
		class := classes[sort.SearchFloat64s(classCum, classR.Float64()*classTotal)]
		sh := shapeOf(class)

		np := sh.npMin << sizeR.Intn(sh.npExp+1)
		if np > maxNP {
			np = maxNP
		}
		rt := runR.LogNormal(sh.logMean, sh.logSigma)
		if rt < 5 {
			rt = 5
		}
		if rt > 6*3600 {
			rt = 6 * 3600
		}
		// ~5% of users underestimate their wall limit and get killed on
		// the HPC partition; everyone else pads it 1.1-3x.
		lim := rt * (1.1 + 1.9*limitR.Float64())
		if limitR.Float64() < 0.05 {
			lim = rt * (0.5 + 0.45*limitR.Float64())
		}

		jobs[i] = Job{
			Tenant:  fmt.Sprintf("t%04d", tenant),
			Class:   class,
			NP:      np,
			Runtime: rt,
			Limit:   lim,
			Submit:  at,
		}
		demand += float64(np) * rt
	}

	horizon := spec.Horizon
	if horizon == 0 {
		util := spec.Utilization
		if util == 0 {
			util = 1.05
		}
		horizon = demand / (util * float64(spec.Slots))
	}
	// Rescale the unit-rate arrival process onto the horizon;
	// multiplication preserves order, so arrival order is unchanged.
	scale := horizon / at
	for i := range jobs {
		jobs[i].Submit *= scale
	}
	return jobs, nil
}

// FormatTrace renders jobs in the facility trace format: one job per
// line, "tenant class np runtime limit submit", floats exact (round-trip
// through ParseTrace is identity).
func FormatTrace(jobs []Job) []byte {
	var buf bytes.Buffer
	buf.WriteString("# facility trace: tenant class np runtime limit submit\n")
	for _, j := range jobs {
		fmt.Fprintf(&buf, "%s %s %d %s %s %s\n", j.Tenant, j.Class, j.NP,
			ftoa(j.Runtime), ftoa(j.Limit), ftoa(j.Submit))
	}
	return buf.Bytes()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseTrace parses the trace format emitted by FormatTrace (replay
// mode): blank lines and #-comments are skipped; jobs keep file order.
func ParseTrace(data []byte) ([]Job, error) {
	var jobs []Job
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 6 {
			return nil, fmt.Errorf("facility: trace line %d: want 6 fields, got %d", line, len(f))
		}
		np, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("facility: trace line %d: np: %w", line, err)
		}
		var vals [3]float64
		for i, s := range f[3:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("facility: trace line %d: field %d: %w", line, i+4, err)
			}
			vals[i] = v
		}
		jobs = append(jobs, Job{
			Tenant: f[0], Class: f[1], NP: np,
			Runtime: vals[0], Limit: vals[1], Submit: vals[2],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("facility: trace: %w", err)
	}
	return jobs, nil
}
