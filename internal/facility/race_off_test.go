//go:build !race

package facility

// raceEnabled reports whether the race detector instruments this build;
// see race_on_test.go. The stress tests scale their workloads down under
// the detector so the race wall stays fast.
const raceEnabled = false
