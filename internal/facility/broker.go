package facility

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps/metum"
	"repro/internal/arrive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/npb/suite"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Broker is the facility's ARRIVE-F-style placement engine: each
// arriving job is routed to the pool minimising estimated queue wait
// plus projected runtime (and, weighted, dollar cost), using per-class
// runtime factors calibrated from profiled reference runs. A Broker is
// read-only after construction and safe to share across facilities.
type Broker struct {
	// Factors maps a workload class to its projected runtime multiplier
	// on each pool, relative to the HPC reference (Factors[*][PoolHPC]
	// is conventionally 1). Zero entries fall back to DefaultFactors.
	Factors map[string][NumPools]float64
	// DefaultFactors covers classes missing from Factors (zero entries
	// mean "no slowdown": factor 1).
	DefaultFactors [NumPools]float64

	// MaxSlowdown is ARRIVE-F's candidate filter: a job whose projected
	// factor on a cloud pool exceeds it is never offloaded there
	// (0 = 3; the related work's "minimal communications and I/O make
	// the best fit for cloud deployment" threshold family).
	MaxSlowdown float64
	// CostWeight converts dollars to seconds when scoring pools
	// (score += CostWeight * projected $). 0 ranks by time alone.
	CostWeight float64
}

// Validate rejects malformed brokers.
func (b *Broker) Validate() error {
	if b.MaxSlowdown < 0 || b.CostWeight < 0 {
		return fmt.Errorf("facility: broker knobs must be non-negative")
	}
	classes := make([]string, 0, len(b.Factors))
	for c := range b.Factors {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		for p, v := range b.Factors[c] {
			if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return fmt.Errorf("facility: class %s factor %g on %s invalid", c, v, Pool(p))
			}
		}
	}
	for p, v := range b.DefaultFactors {
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("facility: default factor %g on %s invalid", v, Pool(p))
		}
	}
	return nil
}

func (b *Broker) maxSlowdown() float64 {
	if b.MaxSlowdown == 0 {
		return 3
	}
	return b.MaxSlowdown
}

// factor returns the class's projected runtime multiplier on pool,
// always exactly 1 on the HPC reference.
func (b *Broker) factor(class string, pool Pool) float64 {
	if pool == PoolHPC {
		return 1
	}
	fs, ok := b.Factors[class]
	if !ok {
		fs = b.DefaultFactors
	}
	if v := fs[pool]; v > 0 {
		return v
	}
	if v := b.DefaultFactors[pool]; v > 0 {
		return v
	}
	return 1
}

// route scores each feasible pool as estimated-queue-wait + projected
// runtime + CostWeight·dollars and returns the minimum; ties keep the
// lowest pool id, so static HPC placement is the deterministic default.
// If the slowdown filter rejects every pool that could physically hold
// the job, the filter is waived — a job must always land somewhere.
func (b *Broker) route(j Job, f *Facility) Pool {
	if p, ok := b.pick(j, f, true); ok {
		return p
	}
	if p, ok := b.pick(j, f, false); ok {
		return p
	}
	return PoolHPC // unreachable for validated jobs
}

func (b *Broker) pick(j Job, f *Facility, filter bool) (Pool, bool) {
	best := PoolHPC
	bestScore := math.Inf(1)
	found := false
	for p := PoolHPC; p < NumPools; p++ {
		ps := f.pools[p]
		if ps.slots < j.NP {
			continue
		}
		fac := f.factor(j.Class, p)
		if filter && p != PoolHPC && fac > b.maxSlowdown() {
			continue
		}
		run := j.Runtime * fac
		price := f.cfg.Prices[p]
		if p == PoolEC2 && f.cfg.Spot != nil {
			price = f.cfg.Spot.Price
		}
		score := f.estWait(ps) + run + b.CostWeight*float64(j.NP)*run/3600*price
		if score < bestScore {
			best, bestScore, found = p, score, true
		}
	}
	return best, found
}

// CalibrateOpts parameterises broker calibration runs.
type CalibrateOpts struct {
	// NP is the profiling rank count (0 = 4).
	NP int
	// Seed offsets the reference runs' random streams.
	Seed uint64
	// Runtime selects the mpi engine for the reference runs — the
	// facility's job-execution leg. The parity suite regenerates brokers
	// under both engines and requires identical factors.
	Runtime       mpi.Runtime
	EngineWorkers int

	Meter   *sim.Meter
	Metrics *obs.Registry
}

func (o CalibrateOpts) np() int {
	if o.NP == 0 {
		return 4
	}
	return o.NP
}

// CalibratedClasses lists the workload classes CalibrateBroker profiles:
// the paper's NPB kernel set plus the MetUM climate pattern. The
// workload generator draws job classes from this list.
func CalibratedClasses() []string {
	return []string{"cg", "ep", "ft", "is", "mg", "metum"}
}

// CalibrateBroker builds a Broker the ARRIVE-F way: run each reference
// workload once on the simulated Vayu (a real core.Execute simulation —
// this is the execution leg the runtime-parity tests pin), extract its
// IPM profile, and project per-pool slowdown factors from first
// principles via arrive.WorkloadProfile.Slowdown.
func CalibrateBroker(opts CalibrateOpts) (*Broker, error) {
	b := &Broker{
		Factors: make(map[string][NumPools]float64, len(CalibratedClasses())),
		// Uncalibrated classes assume the paper's headline MetUM ratios:
		// mild private-cloud slowdown, ~2x on EC2.
		DefaultFactors: [NumPools]float64{1, 1.3, 2},
	}
	for _, class := range CalibratedClasses() {
		w, err := calibrationProfile(class, opts)
		if err != nil {
			return nil, fmt.Errorf("facility: calibrating %s: %w", class, err)
		}
		var fs [NumPools]float64
		fs[PoolHPC] = 1
		fs[PoolDCC] = clampFactor(w.Slowdown(platform.DCC()))
		fs[PoolEC2] = clampFactor(w.Slowdown(platform.EC2()))
		b.Factors[class] = fs
	}
	return b, b.Validate()
}

// clampFactor sanitises a projected slowdown: infeasible or degenerate
// projections fall back to 0 (= use the broker default), and factors
// below the reference are floored at 1 — the facility's HPC partition
// is by definition the reference machine.
func clampFactor(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v < 1 {
		return 1
	}
	return v
}

// calibrationProfile runs one reference workload on Vayu and extracts
// its ARRIVE-F workload profile.
func calibrationProfile(class string, opts CalibrateOpts) (*arrive.WorkloadProfile, error) {
	np := opts.np()
	vayu := platform.Vayu()
	spec := core.RunSpec{
		Platform: vayu, NP: np, Seed: opts.Seed,
		Runtime: opts.Runtime, EngineWorkers: opts.EngineWorkers,
		Meter: opts.Meter, Metrics: opts.Metrics,
	}
	var body func(c *mpi.Comm) error
	if class == "metum" {
		cfg := metum.Default()
		cfg.Steps = 6
		cfg.HaloSwapsPerStep = 20
		cfg.SolverItersPerStep = 15
		body = func(c *mpi.Comm) error {
			_, err := metum.Run(c, cfg)
			return err
		}
	} else {
		fn, err := suite.Skeleton(class)
		if err != nil {
			return nil, err
		}
		body = func(c *mpi.Comm) error {
			return fn(c, npb.ClassA)
		}
	}
	out, err := core.Execute(spec, body)
	if err != nil {
		return nil, err
	}
	pl, err := cluster.Place(vayu, cluster.Spec{NP: np})
	if err != nil {
		return nil, err
	}
	return arrive.FromProfile(class, out.Profile, vayu, pl.MaxRanksPerNode()), nil
}
