// Package sim provides the deterministic primitives that underpin the
// virtual-time performance models: seeded pseudo-random streams, jitter
// distributions and small statistics helpers.
//
// Every source of modelled randomness in the repository (hypervisor jitter,
// vSwitch latency fluctuation, OS noise) draws from an independent RNG
// stream whose seed is derived from stable identifiers (platform name,
// experiment, rank, sequence number). Runs are therefore bit-reproducible.
package sim

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use NewRNG or Derive for distinct streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new independent stream obtained by hashing the parent
// seed with the given labels. It does not disturb the parent's state.
func (r *RNG) Derive(labels ...uint64) *RNG {
	h := r.state ^ 0x9e3779b97f4a7c15
	for _, l := range labels {
		h ^= mix64(l + 0x9e3779b97f4a7c15)
		h = mix64(h)
	}
	return &RNG{state: h}
}

// SeedString hashes a string into a 64-bit seed (FNV-1a).
func SeedString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a standard normal variate (Box-Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(mu + sigma*N(0,1)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Exponential returns an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded heavy-tailed variate in [min, max] with shape
// alpha; used for rare long scheduling delays (hypervisor preemption).
func (r *RNG) Pareto(min, max, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	// Inverse-CDF of a truncated Pareto.
	la, lb := math.Pow(min, alpha), math.Pow(max, alpha)
	x := math.Pow(-(u*lb-u*la-lb)/(la*lb), -1/alpha)
	if x < min {
		x = min
	}
	if x > max {
		x = max
	}
	return x
}
