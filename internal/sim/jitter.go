package sim

// Jitter models a multiplicative and/or additive perturbation applied to a
// modelled duration. A zero Jitter is the identity (no noise).
//
// The perturbation has three components, all optional:
//
//   - a lognormal multiplicative factor with log-std Sigma centred on 1,
//     modelling steady low-level noise (cache effects, daemon activity);
//   - an additive exponential term with mean AddMean seconds, modelling
//     queueing behind other traffic or threads;
//   - a rare heavy-tail spike: with probability SpikeProb an additional
//     Pareto-distributed delay in [SpikeMin, SpikeMax] seconds, modelling
//     hypervisor preemption or vSwitch stalls.
type Jitter struct {
	Sigma     float64 // lognormal sigma of multiplicative noise (0 = none)
	AddMean   float64 // mean of additive exponential delay, seconds (0 = none)
	SpikeProb float64 // probability of a heavy-tail spike per event
	SpikeMin  float64 // minimum spike duration, seconds
	SpikeMax  float64 // maximum spike duration, seconds
}

// Apply perturbs duration d (seconds) using stream r. A nil receiver or a
// zero Jitter returns d unchanged. The result is never negative.
func (j *Jitter) Apply(r *RNG, d float64) float64 {
	if j == nil || (j.Sigma == 0 && j.AddMean == 0 && j.SpikeProb == 0) {
		return d
	}
	out := d
	if j.Sigma > 0 {
		// mu = -sigma^2/2 keeps the mean multiplier at 1.
		out *= r.LogNormal(-j.Sigma*j.Sigma/2, j.Sigma)
	}
	if j.AddMean > 0 {
		out += r.Exponential(j.AddMean)
	}
	if j.SpikeProb > 0 && r.Float64() < j.SpikeProb {
		out += r.Pareto(j.SpikeMin, j.SpikeMax, 1.2)
	}
	if out < 0 {
		out = 0
	}
	return out
}
