package sim

import (
	"math"
	"sync/atomic"
)

// Meter is a concurrency-safe accumulator of virtual seconds. The
// scheduler gives each artefact job its own meter and core.Execute adds
// every completed run's virtual wall time to the meter attached to its
// RunSpec, so a job's total simulated time can be reported next to the
// real time it took to compute. The zero value is ready to use.
type Meter struct {
	bits atomic.Uint64 // float64 bits, updated by CAS
}

// Add accumulates secs (negative values are ignored).
func (m *Meter) Add(secs float64) {
	if m == nil || secs <= 0 {
		return
	}
	for {
		old := m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + secs)
		if m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Total returns the accumulated virtual seconds.
func (m *Meter) Total() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}
