package sim

import (
	"math"
	"sort"
)

// Series is a collection of float64 samples with summary helpers.
type Series []float64

// Min returns the smallest sample, or 0 for an empty series.
func (s Series) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or 0 for an empty series.
func (s Series) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all samples.
func (s Series) Sum() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Stddev returns the population standard deviation.
func (s Series) Stddev() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using nearest-rank
// on a sorted copy. It returns 0 for an empty series.
func (s Series) Percentile(p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	c := make([]float64, len(s))
	copy(c, s)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(c)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c[idx]
}

// Imbalance returns the load-imbalance fraction (max-mean)/max in [0,1),
// the statistic IPM reports as "%imbal" when scaled by 100. It returns 0
// when the series is empty or max is 0.
func (s Series) Imbalance() float64 {
	mx := s.Max()
	if mx == 0 {
		return 0
	}
	return (mx - s.Mean()) / mx
}
