package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d times in 1000 draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	c1b := parent.Derive(1)
	if c1.Uint64() != c1b.Uint64() {
		t.Fatal("Derive with equal labels should give identical streams")
	}
	if c1b.Uint64() == c2.Uint64() && c1b.Uint64() == c2.Uint64() {
		t.Fatal("Derive with different labels produced matching streams")
	}
	// Derive must not disturb the parent.
	p1, p2 := NewRNG(7), NewRNG(7)
	p1.Derive(99)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Derive mutated the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(seed uint64) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMeanOne(t *testing.T) {
	// With mu = -sigma^2/2 the lognormal mean is 1; Jitter relies on this.
	r := NewRNG(13)
	sigma := 0.4
	var sum float64
	const n = 400000
	for i := 0; i < n; i++ {
		sum += r.LogNormal(-sigma*sigma/2, sigma)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("lognormal mean = %v, want ~1", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(2.5)
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~2.5", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 100000; i++ {
		v := r.Pareto(1e-4, 5e-3, 1.2)
		if v < 1e-4 || v > 5e-3 {
			t.Fatalf("Pareto draw %v outside [1e-4, 5e-3]", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestSeedStringStable(t *testing.T) {
	if SeedString("vayu") != SeedString("vayu") {
		t.Fatal("SeedString not stable")
	}
	if SeedString("vayu") == SeedString("dcc") {
		t.Fatal("SeedString collided on distinct inputs")
	}
}

func TestJitterIdentityWhenZero(t *testing.T) {
	var j Jitter
	r := NewRNG(1)
	if got := j.Apply(r, 3.5); got != 3.5 {
		t.Fatalf("zero jitter changed duration: %v", got)
	}
	var nilJ *Jitter
	if got := nilJ.Apply(r, 3.5); got != 3.5 {
		t.Fatalf("nil jitter changed duration: %v", got)
	}
}

func TestJitterNeverNegative(t *testing.T) {
	j := Jitter{Sigma: 1.0, AddMean: 1e-6, SpikeProb: 0.5, SpikeMin: 1e-5, SpikeMax: 1e-3}
	r := NewRNG(23)
	for i := 0; i < 100000; i++ {
		if d := j.Apply(r, 1e-6); d < 0 {
			t.Fatalf("jitter produced negative duration %v", d)
		}
	}
}

func TestJitterMeanApproxPreserved(t *testing.T) {
	j := Jitter{Sigma: 0.2}
	r := NewRNG(29)
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += j.Apply(r, 1.0)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("multiplicative jitter mean = %v, want ~1", mean)
	}
}

func TestJitterSpikesIncreaseTail(t *testing.T) {
	base := Jitter{Sigma: 0.1}
	spiky := Jitter{Sigma: 0.1, SpikeProb: 0.1, SpikeMin: 1e-3, SpikeMax: 1e-2}
	r1, r2 := NewRNG(31), NewRNG(31)
	var s1, s2 Series
	for i := 0; i < 20000; i++ {
		s1 = append(s1, base.Apply(r1, 1e-5))
		s2 = append(s2, spiky.Apply(r2, 1e-5))
	}
	if s2.Percentile(99) <= s1.Percentile(99) {
		t.Fatalf("spiky p99 %v not above base p99 %v", s2.Percentile(99), s1.Percentile(99))
	}
}

func TestSeriesStats(t *testing.T) {
	s := Series{4, 1, 3, 2}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 10 || s.Mean() != 2.5 {
		t.Fatalf("sum/mean = %v/%v", s.Sum(), s.Mean())
	}
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Stddev() != 0 ||
		s.Percentile(50) != 0 || s.Imbalance() != 0 {
		t.Fatal("empty series should return zeros everywhere")
	}
}

func TestSeriesImbalance(t *testing.T) {
	balanced := Series{2, 2, 2, 2}
	if got := balanced.Imbalance(); got != 0 {
		t.Fatalf("balanced imbalance = %v, want 0", got)
	}
	skewed := Series{1, 1, 1, 5}
	// mean=2, max=5 -> (5-2)/5 = 0.6
	if got := skewed.Imbalance(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("skewed imbalance = %v, want 0.6", got)
	}
}

func TestSeriesImbalanceProperty(t *testing.T) {
	// Imbalance is always in [0, 1) for non-negative samples.
	f := func(raw []float64) bool {
		s := make(Series, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound the samples so the sum cannot overflow to +Inf.
			s = append(s, math.Mod(math.Abs(v), 1e12))
		}
		im := s.Imbalance()
		return im >= 0 && im < 1 || (len(s) == 0 && im == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	s := Series{2, 4, 4, 4, 5, 5, 7, 9}
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}
