package cpumodel

import (
	"math"
	"testing"
	"testing/quick"
)

func testCPU() CPU {
	return CPU{
		Name:           "test",
		ClockHz:        2e9,
		FlopsPerCycle:  4,
		Efficiency:     0.5,
		Sockets:        2,
		CoresPerSocket: 4,
		HyperThreading: true,
		HTBonus:        0.2,
		MemBWPerSocket: 16e9,
		CoreMemBW:      8e9,
		NUMAPenalty:    0.6,
	}
}

func TestValidateOK(t *testing.T) {
	c := testCPU()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []func(*CPU){
		func(c *CPU) { c.ClockHz = 0 },
		func(c *CPU) { c.FlopsPerCycle = -1 },
		func(c *CPU) { c.Efficiency = 0 },
		func(c *CPU) { c.Efficiency = 1.5 },
		func(c *CPU) { c.Sockets = 0 },
		func(c *CPU) { c.CoresPerSocket = 0 },
		func(c *CPU) { c.MemBWPerSocket = 0 },
		func(c *CPU) { c.CoreMemBW = 0 },
		func(c *CPU) { c.NUMAPenalty = 0 },
		func(c *CPU) { c.NUMAPenalty = 1.1 },
	}
	for i, mut := range cases {
		c := testCPU()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid CPU passed validation", i)
		}
	}
}

func TestSlotsAndCores(t *testing.T) {
	c := testCPU()
	if c.PhysicalCores() != 8 {
		t.Fatalf("cores = %d, want 8", c.PhysicalCores())
	}
	if c.Slots() != 16 {
		t.Fatalf("slots = %d, want 16 with HT", c.Slots())
	}
	c.HyperThreading = false
	if c.Slots() != 8 {
		t.Fatalf("slots = %d, want 8 without HT", c.Slots())
	}
}

func TestFlopsRateFullWhenNotOversubscribed(t *testing.T) {
	c := testCPU()
	want := 2e9 * 4 * 0.5
	for _, n := range []int{1, 4, 8} {
		got := c.FlopsRate(Context{RanksOnNode: n})
		if got != want {
			t.Fatalf("FlopsRate(%d ranks) = %v, want %v", n, got, want)
		}
	}
}

func TestFlopsRateOversubscription(t *testing.T) {
	c := testCPU()
	full := c.FlopsRate(Context{RanksOnNode: 8})
	half := c.FlopsRate(Context{RanksOnNode: 16})
	// At 16 ranks on 8 cores with HTBonus 0.2, node throughput is 9.6
	// cores' worth: per-rank 9.6/16 = 0.6 of a core.
	if ratio := half / full; math.Abs(ratio-0.6) > 1e-9 {
		t.Fatalf("per-rank rate ratio at 2x oversubscription = %v, want 0.6", ratio)
	}
	// The paper: "little benefit was gained from hyperthreading" — node
	// throughput must improve by far less than 2x.
	nodeFull := 8 * full
	nodeOver := 16 * half
	if gain := nodeOver / nodeFull; gain > 1.25 {
		t.Fatalf("HT node throughput gain = %v, should be modest", gain)
	}
}

func TestMemRateSharing(t *testing.T) {
	c := testCPU()
	one := c.MemRate(Context{RanksOnNode: 1, NUMAPinned: true})
	if one != c.CoreMemBW {
		t.Fatalf("single-rank mem rate %v should be capped at CoreMemBW %v", one, c.CoreMemBW)
	}
	eight := c.MemRate(Context{RanksOnNode: 8, NUMAPinned: true})
	if want := 32e9 / 8; eight != want {
		t.Fatalf("8-rank mem rate = %v, want %v", eight, want)
	}
}

func TestMemRateNUMAMasking(t *testing.T) {
	c := testCPU()
	pinned := c.MemRate(Context{RanksOnNode: 8, NUMAPinned: true})
	masked := c.MemRate(Context{RanksOnNode: 8, NUMAPinned: false})
	if ratio := masked / pinned; math.Abs(ratio-0.6) > 1e-9 {
		t.Fatalf("NUMA masking ratio = %v, want NUMAPenalty 0.6", ratio)
	}
	// Within one socket no penalty applies even unpinned.
	within := c.MemRate(Context{RanksOnNode: 4, NUMAPinned: false})
	if within != c.MemRate(Context{RanksOnNode: 4, NUMAPinned: true}) {
		t.Fatal("NUMA penalty applied within a single socket")
	}
}

func TestSecondsRoofline(t *testing.T) {
	c := testCPU()
	ctx := Context{RanksOnNode: 1, NUMAPinned: true}
	// Compute-bound: 4e9 flops at 4e9 flops/s = 1 s.
	if got := c.Seconds(Work{Flops: 4e9}, ctx); math.Abs(got-1) > 1e-9 {
		t.Fatalf("compute-bound seconds = %v, want 1", got)
	}
	// Memory-bound: 16e9 bytes at 8e9 B/s = 2 s, dominating tiny flops.
	if got := c.Seconds(Work{Flops: 1e6, Bytes: 16e9}, ctx); math.Abs(got-2) > 1e-9 {
		t.Fatalf("memory-bound seconds = %v, want 2", got)
	}
	// Fixed time adds on top.
	if got := c.Seconds(Work{Fixed: 0.25}, ctx); got != 0.25 {
		t.Fatalf("fixed seconds = %v, want 0.25", got)
	}
}

func TestWorkAddScale(t *testing.T) {
	w := Work{Flops: 1, Bytes: 2, Fixed: 3}.Add(Work{Flops: 10, Bytes: 20, Fixed: 30})
	if w != (Work{Flops: 11, Bytes: 22, Fixed: 33}) {
		t.Fatalf("Add = %+v", w)
	}
	s := w.Scale(2)
	if s != (Work{Flops: 22, Bytes: 44, Fixed: 66}) {
		t.Fatalf("Scale = %+v", s)
	}
}

func TestSecondsMonotoneInWork(t *testing.T) {
	c := testCPU()
	ctx := Context{RanksOnNode: 4, NUMAPinned: false}
	f := func(flops, bytes uint32) bool {
		w1 := Work{Flops: float64(flops), Bytes: float64(bytes)}
		w2 := Work{Flops: float64(flops) * 2, Bytes: float64(bytes) * 2}
		return c.Seconds(w2, ctx) >= c.Seconds(w1, ctx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsNonNegativeProperty(t *testing.T) {
	c := testCPU()
	f := func(flops, bytes uint32, ranks uint8) bool {
		ctx := Context{RanksOnNode: int(ranks%32) + 1}
		return c.Seconds(Work{Flops: float64(flops), Bytes: float64(bytes)}, ctx) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockRatioDrivesComputeRatio(t *testing.T) {
	// The paper's Table III: DCC/Vayu compute ratio tracks the clock ratio
	// 2.93/2.27 ≈ 1.29 for compute-bound sections.
	fast := testCPU()
	fast.ClockHz = 2.93e9
	slow := testCPU()
	slow.ClockHz = 2.27e9
	ctx := Context{RanksOnNode: 1, NUMAPinned: true}
	w := Work{Flops: 1e10}
	ratio := slow.Seconds(w, ctx) / fast.Seconds(w, ctx)
	if math.Abs(ratio-2.93/2.27) > 1e-9 {
		t.Fatalf("compute ratio = %v, want %v", ratio, 2.93/2.27)
	}
}
