package cpumodel

// Throttle is a transient compute-slowdown window (a straggler): between
// virtual times Start and End, every second of modelled computation takes
// Factor wall seconds (Factor >= 1). Windows come from the fault plane;
// the MPI runtime stretches each compute advance through them.
type Throttle struct {
	Start, End float64
	Factor     float64
}

// StretchSeconds returns the virtual wall duration of `secs` seconds of
// unthrottled compute work beginning at time t, with the portions that
// fall inside throttle windows stretched by their factors. Windows must
// be sorted by start and non-overlapping (the fault generator guarantees
// both). With no active windows the result is exactly secs, so fault-free
// runs are bit-identical to runs without the fault plane.
func StretchSeconds(secs, t float64, windows []Throttle) float64 {
	if secs <= 0 || len(windows) == 0 {
		return secs
	}
	wall := 0.0
	now := t
	rem := secs // unthrottled work still to do
	for _, w := range windows {
		if w.End <= now || w.Factor <= 1 {
			continue
		}
		if w.Start > now {
			gap := w.Start - now
			if rem <= gap {
				return wall + rem
			}
			wall += gap
			now = w.Start
			rem -= gap
		}
		span := w.End - now         // wall capacity inside the window
		capacity := span / w.Factor // work that fits inside the window
		if rem <= capacity {
			return wall + rem*w.Factor
		}
		wall += span
		now = w.End
		rem -= capacity
	}
	return wall + rem
}
