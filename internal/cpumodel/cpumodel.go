// Package cpumodel provides a roofline-style model of per-core computation
// cost on the studied platforms.
//
// A unit of work is described by its double-precision operation count and
// the memory traffic it generates. The model converts work to virtual
// seconds given the CPU's clock, issue width and memory bandwidth, and the
// contention context (how many ranks share the node, whether the platform
// masks NUMA from the guest, whether hardware threads are oversubscribed).
package cpumodel

import "fmt"

// Work describes a charge of computation.
type Work struct {
	Flops float64 // floating point operations
	Bytes float64 // memory traffic in bytes (streamed loads+stores)
	Fixed float64 // fixed serial seconds, not scaled by CPU speed
}

// Add returns the element-wise sum of two work charges.
func (w Work) Add(o Work) Work {
	return Work{Flops: w.Flops + o.Flops, Bytes: w.Bytes + o.Bytes, Fixed: w.Fixed + o.Fixed}
}

// Scale returns the work multiplied by k (Fixed included).
func (w Work) Scale(k float64) Work {
	return Work{Flops: w.Flops * k, Bytes: w.Bytes * k, Fixed: w.Fixed * k}
}

// CPU describes one node's processor complex.
type CPU struct {
	Name          string
	ClockHz       float64 // core clock
	FlopsPerCycle float64 // peak DP flops per cycle per core
	Efficiency    float64 // achieved fraction of peak for real codes (0,1]

	Sockets        int
	CoresPerSocket int
	HyperThreading bool    // hardware threads exposed as schedulable slots
	HTBonus        float64 // extra node throughput from using both HW threads (e.g. 0.15)

	MemBWPerSocket float64 // sustained bytes/s per socket (all cores)
	CoreMemBW      float64 // sustained bytes/s achievable by one core

	// NUMAPenalty is the factor (<1) applied to effective memory bandwidth
	// when ranks span sockets and the platform cannot pin memory (the
	// "NUMA masked by the hypervisor" effect from the paper). 1 = no penalty.
	NUMAPenalty float64
}

// PhysicalCores returns the number of physical cores per node.
func (c *CPU) PhysicalCores() int { return c.Sockets * c.CoresPerSocket }

// Slots returns the number of schedulable slots per node (2x cores when
// HyperThreading is exposed).
func (c *CPU) Slots() int {
	if c.HyperThreading {
		return 2 * c.PhysicalCores()
	}
	return c.PhysicalCores()
}

// Validate reports configuration errors.
func (c *CPU) Validate() error {
	switch {
	case c.ClockHz <= 0:
		return fmt.Errorf("cpumodel: %s: ClockHz must be positive", c.Name)
	case c.FlopsPerCycle <= 0:
		return fmt.Errorf("cpumodel: %s: FlopsPerCycle must be positive", c.Name)
	case c.Efficiency <= 0 || c.Efficiency > 1:
		return fmt.Errorf("cpumodel: %s: Efficiency must be in (0,1]", c.Name)
	case c.Sockets <= 0 || c.CoresPerSocket <= 0:
		return fmt.Errorf("cpumodel: %s: need positive sockets and cores", c.Name)
	case c.MemBWPerSocket <= 0 || c.CoreMemBW <= 0:
		return fmt.Errorf("cpumodel: %s: memory bandwidths must be positive", c.Name)
	case c.NUMAPenalty <= 0 || c.NUMAPenalty > 1:
		return fmt.Errorf("cpumodel: %s: NUMAPenalty must be in (0,1]", c.Name)
	}
	return nil
}

// Context describes the contention environment of the rank being charged.
type Context struct {
	RanksOnNode int  // ranks co-located on this rank's node (including it)
	NUMAPinned  bool // true when the MPI runtime enforces NUMA affinity
}

// FlopsRate returns the effective DP flops/s available to one rank under
// the given context, accounting for hardware-thread oversubscription.
func (c *CPU) FlopsRate(ctx Context) float64 {
	rate := c.ClockHz * c.FlopsPerCycle * c.Efficiency
	phys := c.PhysicalCores()
	if ctx.RanksOnNode > phys {
		// Oversubscribed: the node delivers phys*(1+HTBonus) cores worth of
		// throughput, divided evenly among the ranks.
		over := float64(ctx.RanksOnNode-phys) / float64(phys)
		if over > 1 {
			over = 1
		}
		total := float64(phys) * (1 + c.HTBonus*over)
		rate *= total / float64(ctx.RanksOnNode)
	}
	return rate
}

// MemRate returns the effective memory bandwidth (bytes/s) available to one
// rank under the given context, accounting for bandwidth sharing and the
// NUMA-masking penalty.
func (c *CPU) MemRate(ctx Context) float64 {
	nodeBW := float64(c.Sockets) * c.MemBWPerSocket
	n := ctx.RanksOnNode
	if n < 1 {
		n = 1
	}
	per := nodeBW / float64(n)
	if per > c.CoreMemBW {
		per = c.CoreMemBW
	}
	// When ranks span sockets and nothing pins memory, a fraction of
	// accesses cross the interconnect between sockets.
	if !ctx.NUMAPinned && c.Sockets > 1 && n > c.CoresPerSocket {
		per *= c.NUMAPenalty
	}
	return per
}

// Seconds converts a work charge to virtual seconds for one rank under the
// given contention context, using the roofline maximum of compute-bound and
// memory-bound time.
func (c *CPU) Seconds(w Work, ctx Context) float64 {
	var t float64
	if w.Flops > 0 {
		t = w.Flops / c.FlopsRate(ctx)
	}
	if w.Bytes > 0 {
		if mt := w.Bytes / c.MemRate(ctx); mt > t {
			t = mt
		}
	}
	return t + w.Fixed
}
