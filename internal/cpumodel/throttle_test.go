package cpumodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStretchSecondsIdentityWithoutWindows(t *testing.T) {
	// Exact equality matters: fault-free runs must be bit-identical.
	for _, secs := range []float64{0, 0.1, 1.7320508075688772, 3600} {
		if got := StretchSeconds(secs, 12.5, nil); got != secs {
			t.Errorf("StretchSeconds(%v, nil) = %v", secs, got)
		}
	}
}

func TestStretchSecondsInsideWindow(t *testing.T) {
	w := []Throttle{{Start: 0, End: 100, Factor: 3}}
	if got := StretchSeconds(2, 10, w); got != 6 {
		t.Errorf("2s at factor 3 took %v, want 6", got)
	}
}

func TestStretchSecondsPiecewise(t *testing.T) {
	// 1s free, then a 2s-wall window at factor 2 (1s of work), then free.
	w := []Throttle{{Start: 1, End: 3, Factor: 2}}
	// 3s of work starting at t=0: 1s free + 1s work stretched to 2s wall
	// + 1s free after the window = 4s wall.
	if got := StretchSeconds(3, 0, w); got != 4 {
		t.Errorf("piecewise stretch = %v, want 4", got)
	}
	// Work that ends inside the gap before the window is untouched.
	if got := StretchSeconds(0.5, 0, w); got != 0.5 {
		t.Errorf("pre-window work = %v, want 0.5", got)
	}
	// Work starting after the window is untouched.
	if got := StretchSeconds(5, 3, w); got != 5 {
		t.Errorf("post-window work = %v, want 5", got)
	}
}

// TestStretchSecondsProperties: the stretch never shrinks work, is
// monotone in the amount of work, and a factor-1 window is a no-op.
func TestStretchSecondsProperties(t *testing.T) {
	mkWindows := func(a, b, c uint8, f uint8) []Throttle {
		s1 := float64(a) / 8
		w1 := Throttle{Start: s1, End: s1 + 0.5 + float64(b)/32, Factor: 1 + float64(f)/16}
		s2 := w1.End + float64(c)/16
		w2 := Throttle{Start: s2, End: s2 + 1, Factor: 2}
		return []Throttle{w1, w2}
	}
	prop := func(secs16 uint16, t8, a, b, c, f uint8) bool {
		secs := float64(secs16) / 1024
		start := float64(t8) / 4
		ws := mkWindows(a, b, c, f)
		got := StretchSeconds(secs, start, ws)
		if got < secs-1e-12 {
			return false // throttling never speeds work up
		}
		// Monotone: more work never takes less wall time.
		if StretchSeconds(secs+0.5, start, ws) < got-1e-12 {
			return false
		}
		// Factor-1 windows are no-ops.
		unit := []Throttle{{Start: 0, End: 1e9, Factor: 1}}
		return StretchSeconds(secs, start, unit) == secs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStretchSecondsConservesWork(t *testing.T) {
	// The wall time decomposes exactly: free time passes 1:1, windowed
	// time at the factor. Cross-check with a direct numeric integral.
	ws := []Throttle{{Start: 2, End: 5, Factor: 4}, {Start: 7, End: 8, Factor: 2}}
	secs, start := 6.0, 1.0
	wall := StretchSeconds(secs, start, ws)
	// Integrate work done over [start, start+wall).
	const dt = 1e-5
	work := 0.0
	for x := start; x < start+wall; x += dt {
		rate := 1.0
		for _, w := range ws {
			if x >= w.Start && x < w.End {
				rate = 1 / w.Factor
			}
		}
		work += rate * dt
	}
	if math.Abs(work-secs) > 1e-3 {
		t.Errorf("integral of work over stretched wall = %v, want %v", work, secs)
	}
}
