package platform

import (
	"fmt"

	"repro/internal/sim"
)

// Week-scale parameter drift. The paper's comparison is a point-in-time
// snapshot of three platforms; the follow-up literature (Mohammadi &
// Bazhirov, PAPERS.md) shows cloud performance wanders week to week as
// hypervisor load and noisy neighbors come and go. DriftSpec is the
// seeded hook the continuous-evaluation plane uses to replay that
// wander: given a platform and a week index it derives a perturbed copy
// — more or less hypervisor jitter, a contended interconnect, a
// shifted virtualisation tax — deterministically from (spec seed,
// platform name, week). Bare-metal platforms (Vayu) are returned
// unchanged: physical hardware is the flat control line the drifted
// cloud curves are read against, exactly the split the paper found.

// DriftSpec configures seeded week-scale parameter wander for the
// virtualised platforms.
type DriftSpec struct {
	// Seed namespaces the drift streams; week w of platform p is a pure
	// function of (Seed, p.Name, w).
	Seed uint64
	// JitterAmp scales the wander of the hypervisor-noise parameters
	// (ComputeJitter sigma and spike probability): each week multiplies
	// them by a factor in [1-JitterAmp, 1+JitterAmp].
	JitterAmp float64
	// ContentionAmp scales neighbor contention on the interconnect: a
	// weekly contention level c in [0,1) divides inter-node bandwidth by
	// (1 + ContentionAmp·c) and stretches latency by half that factor.
	ContentionAmp float64
	// OverheadAmp scales the wander of the virtualisation tax: the
	// excess over 1 of ComputeOverhead is multiplied by a factor in
	// [1-OverheadAmp, 1+OverheadAmp].
	OverheadAmp float64
}

// DefaultDrift returns the committed drift model: jitter parameters
// wandering ±60%, up to 2x bandwidth loss under full neighbor
// contention, and a virtualisation tax wandering ±40% around its
// calibrated excess — amplitudes chosen so the weekly spread of the E16
// time series reaches the double-digit percentages the continuous-
// benchmarking literature reports for EC2-class platforms.
func DefaultDrift() DriftSpec {
	return DriftSpec{JitterAmp: 0.6, ContentionAmp: 1.0, OverheadAmp: 0.4}
}

// Week returns a copy of p drifted to the given week. Week 0 (and any
// negative week) is the undrifted baseline; non-virtualised platforms
// are copied unchanged at every week. The drifted platform's name gains
// a "-wk<N>" suffix so results never alias the stock platform in caches
// or manifests, and its noise seed is re-derived per week so each week
// also samples a fresh jitter realisation — parameter drift and noise
// drift compound, as they do on real shared infrastructure.
func (d DriftSpec) Week(p *Platform, week int) *Platform {
	s := *p
	if week <= 0 || !p.Virtualised {
		return &s
	}
	rng := sim.NewRNG(d.Seed).Derive(sim.SeedString(p.Name), uint64(week))

	// Weekly neighbor contention on the shared interconnect.
	contention := rng.Float64()
	s.Inter.Bandwidth /= 1 + d.ContentionAmp*contention
	s.Inter.Latency *= 1 + 0.5*d.ContentionAmp*contention

	// Hypervisor noise level wanders multiplicatively around its
	// calibrated value.
	s.ComputeJitter.Sigma *= wander(rng, d.JitterAmp)
	s.ComputeJitter.SpikeProb *= wander(rng, d.JitterAmp)

	// The virtualisation tax wanders around its calibrated excess over 1,
	// never dropping below bare metal.
	s.ComputeOverhead = 1 + (p.ComputeOverhead-1)*wander(rng, d.OverheadAmp)

	s.Seed = rng.Uint64()
	s.Name = fmt.Sprintf("%s-wk%d", p.Name, week)
	return &s
}

// wander draws a multiplicative factor uniform in [1-amp, 1+amp],
// floored at 0.
func wander(r *sim.RNG, amp float64) float64 {
	f := 1 + amp*(2*r.Float64()-1)
	if f < 0 {
		return 0
	}
	return f
}
