// Package platform assembles the CPU, network, I/O and noise models into
// descriptions of the three experimental platforms from Table I of the
// paper: the Vayu supercomputer, the DCC private VMware cloud and an
// Amazon EC2 cc1.4xlarge StarCluster.
package platform

import (
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/iomodel"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Platform describes one compute platform.
type Platform struct {
	Name  string
	Nodes int // nodes available to jobs

	CPU        cpumodel.CPU
	MemPerNode int64 // bytes of RAM per node

	Inter netmodel.Link // inter-node interconnect
	Intra netmodel.Link // intra-node (shared-memory) transport
	FS    iomodel.FS    // shared filesystem

	// Virtualised marks guest-VM platforms (DCC, EC2); it selects the
	// virtualised shared-memory path and enables hypervisor noise.
	Virtualised bool

	// NUMAPinned is true when the MPI runtime can enforce NUMA affinity
	// (possible on Vayu, masked by the hypervisor on DCC/EC2).
	NUMAPinned bool

	// ComputeOverhead is a multiplier (>= 1) on all computation time,
	// modelling the virtualisation tax measured by the paper's Table III
	// computation ratios (EC2-4's rcomp of 1.17 at identical clocks).
	ComputeOverhead float64

	// ComputeJitter perturbs every computation charge (OS noise, HT
	// sibling interference, hypervisor scheduling).
	ComputeJitter sim.Jitter

	// Seed namespaces all random streams drawn on this platform.
	Seed uint64
}

// Validate reports configuration errors in the platform description.
func (p *Platform) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("platform: empty name")
	}
	if p.Nodes <= 0 {
		return fmt.Errorf("platform %s: need at least one node", p.Name)
	}
	if p.MemPerNode <= 0 {
		return fmt.Errorf("platform %s: MemPerNode must be positive", p.Name)
	}
	if p.ComputeOverhead < 1 {
		return fmt.Errorf("platform %s: ComputeOverhead must be >= 1", p.Name)
	}
	if err := p.CPU.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if err := p.Inter.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if err := p.Intra.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	if err := p.FS.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", p.Name, err)
	}
	return nil
}

// SlotsPerNode returns the schedulable slots per node (16 on EC2 where
// HyperThreading is exposed, 8 elsewhere).
func (p *Platform) SlotsPerNode() int { return p.CPU.Slots() }

// MaxRanks returns the total schedulable slots on the platform.
func (p *Platform) MaxRanks() int { return p.Nodes * p.SlotsPerNode() }

// Link returns the transport used between two nodes (intra-node transport
// when they are the same node).
func (p *Platform) Link(nodeA, nodeB int) *netmodel.Link {
	if nodeA == nodeB {
		return &p.Intra
	}
	return &p.Inter
}

const gb = int64(1) << 30

// nehalem returns the common Nehalem-EP CPU description used by all three
// platforms, at the given clock and memory speed. The E5520 (DCC) pairs
// its slower clock with slower DDR3, which is why the paper found the
// DCC/Vayu computation ratio "closely reflects the ratio of clock
// frequencies ... quite uniform across all sections" even for
// memory-bound code.
func nehalem(name string, clockHz, memBWPerSocket, coreMemBW float64, ht bool, numaPenalty float64) cpumodel.CPU {
	return cpumodel.CPU{
		Name:           name,
		ClockHz:        clockHz,
		FlopsPerCycle:  4,
		Efficiency:     0.11, // sustained fraction of peak for these codes
		Sockets:        2,
		CoresPerSocket: 4,
		HyperThreading: ht,
		HTBonus:        0.15,
		MemBWPerSocket: memBWPerSocket,
		CoreMemBW:      coreMemBW,
		NUMAPenalty:    numaPenalty,
	}
}

// Vayu returns the model of the Vayu supercomputer: 1492 Sun X6275 blades
// with dual Xeon X5570 (2.93 GHz), 24 GB/node, QDR InfiniBand and Lustre.
func Vayu() *Platform {
	return &Platform{
		Name:            "vayu",
		Nodes:           1492,
		CPU:             nehalem("Xeon X5570", 2.93e9, 17e9, 8.5e9, false, 1.0),
		MemPerNode:      24 * gb,
		Inter:           netmodel.QDRInfiniBand(),
		Intra:           netmodel.SharedMemory(false),
		FS:              iomodel.Lustre(),
		Virtualised:     false,
		NUMAPinned:      true, // OpenMPI on Vayu enforces NUMA affinity
		ComputeOverhead: 1.0,
		ComputeJitter:   sim.Jitter{Sigma: 0.012},
		Seed:            sim.SeedString("vayu"),
	}
}

// DCC returns the model of the DCC private cloud: 8 Dell M610 blades
// running VMware ESX, one 8-core guest per blade with dual Xeon E5520
// (2.27 GHz), 40 GB/node, an E1000 GigE vNIC behind the vSwitch, and NFS.
// The hypervisor masks NUMA from the guest, so no affinity is possible.
func DCC() *Platform {
	return &Platform{
		Name:            "dcc",
		Nodes:           8,
		CPU:             nehalem("Xeon E5520", 2.27e9, 12.8e9, 6.4e9, false, 0.62),
		MemPerNode:      40 * gb,
		Inter:           netmodel.GigEVSwitch(),
		Intra:           netmodel.SharedMemory(true),
		FS:              iomodel.NFSDCC(),
		Virtualised:     true,
		NUMAPinned:      false,
		ComputeOverhead: 1.06,
		ComputeJitter: sim.Jitter{
			Sigma:     0.035,
			SpikeProb: 0.002,
			SpikeMin:  0.5e-3,
			SpikeMax:  8e-3,
		},
		Seed: sim.SeedString("dcc"),
	}
}

// EC2 returns the model of the Amazon EC2 HPC cluster: 4 cc1.4xlarge
// instances (dual Xeon X5570, HyperThreading exposed as 16 slots),
// 20 GB/node, 10GigE in a cluster placement group under Xen, and NFS.
func EC2() *Platform {
	cpu := nehalem("Xeon X5570 (cc1.4xlarge)", 2.93e9, 17e9, 8.5e9, true, 0.88)
	cpu.HTBonus = 0 // "little benefit was gained from hyperthreading"
	return &Platform{
		Name:            "ec2",
		Nodes:           4,
		CPU:             cpu,
		MemPerNode:      20 * gb,
		Inter:           netmodel.TenGigEXen(),
		Intra:           netmodel.SharedMemory(true),
		FS:              iomodel.NFSEC2(),
		Virtualised:     true,
		NUMAPinned:      false,
		ComputeOverhead: 1.17,
		ComputeJitter: sim.Jitter{
			Sigma:     0.07,
			SpikeProb: 0.004,
			SpikeMin:  0.3e-3,
			SpikeMax:  6e-3,
		},
		Seed: sim.SeedString("ec2"),
	}
}

// Scaled returns a copy of p with enough nodes to host at least np
// ranks, for what-if scaling studies beyond the paper's machines (the
// PDES engine's 10k+ rank worlds need more slots than even Vayu's 1492
// blades offer). Every per-node characteristic — CPU, memory, links,
// filesystem, jitter, seed — is left untouched, so results at np within
// the stock node count are identical to the unscaled platform; the name
// gains a "-s<nodes>" suffix only when the node count actually grows, to
// keep scaled results from aliasing stock ones in caches and manifests.
func Scaled(p *Platform, np int) *Platform {
	s := *p
	nodes := (np + s.SlotsPerNode() - 1) / s.SlotsPerNode()
	if nodes > s.Nodes {
		s.Nodes = nodes
		s.Name = fmt.Sprintf("%s-s%d", p.Name, nodes)
	}
	return &s
}

// All returns the three paper platforms in presentation order (DCC, EC2,
// Vayu — the column order of Table I).
func All() []*Platform {
	return []*Platform{DCC(), EC2(), Vayu()}
}

// ByName returns the named platform (case-sensitive: "vayu", "dcc", "ec2"),
// or an error.
func ByName(name string) (*Platform, error) {
	switch name {
	case "vayu":
		return Vayu(), nil
	case "dcc":
		return DCC(), nil
	case "ec2":
		return EC2(), nil
	}
	return nil, fmt.Errorf("platform: unknown platform %q (want vayu, dcc or ec2)", name)
}
