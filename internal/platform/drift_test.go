package platform

import (
	"reflect"
	"testing"
)

func TestDriftWeekZeroIsIdentity(t *testing.T) {
	d := DefaultDrift()
	for _, p := range All() {
		got := d.Week(p, 0)
		if !reflect.DeepEqual(got, p) {
			t.Errorf("%s: week 0 differs from the baseline", p.Name)
		}
	}
}

func TestDriftLeavesBareMetalFlat(t *testing.T) {
	d := DefaultDrift()
	base := Vayu()
	for week := 1; week <= 8; week++ {
		if got := d.Week(Vayu(), week); !reflect.DeepEqual(got, base) {
			t.Fatalf("vayu drifted at week %d: bare metal must stay flat", week)
		}
	}
}

func TestDriftDeterministic(t *testing.T) {
	d := DefaultDrift()
	for _, p := range []*Platform{DCC(), EC2()} {
		a := d.Week(p, 5)
		b := d.Week(p, 5)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s week 5: two derivations differ", p.Name)
		}
	}
}

func TestDriftActuallyDrifts(t *testing.T) {
	d := DefaultDrift()
	p := EC2()
	w3, w4 := d.Week(p, 3), d.Week(p, 4)
	if w3.Inter.Bandwidth == w4.Inter.Bandwidth &&
		w3.ComputeJitter.Sigma == w4.ComputeJitter.Sigma &&
		w3.ComputeOverhead == w4.ComputeOverhead {
		t.Fatal("weeks 3 and 4 have identical parameters: no drift")
	}
	if w3.Seed == p.Seed {
		t.Fatal("drifted week kept the stock noise seed")
	}
	if w3.Name == p.Name || w3.Name == w4.Name {
		t.Fatalf("drifted names must be distinct: %s vs %s", w3.Name, w4.Name)
	}
}

func TestDriftStaysValidAndDegradesOnly(t *testing.T) {
	d := DefaultDrift()
	for _, base := range []*Platform{DCC(), EC2()} {
		for week := 1; week <= 52; week++ {
			p := d.Week(base, week)
			if err := p.Validate(); err != nil {
				t.Fatalf("%s week %d invalid: %v", base.Name, week, err)
			}
			if p.Inter.Bandwidth > base.Inter.Bandwidth {
				t.Fatalf("%s week %d: contention increased bandwidth", base.Name, week)
			}
			if p.Inter.Latency < base.Inter.Latency {
				t.Fatalf("%s week %d: contention reduced latency", base.Name, week)
			}
			if p.ComputeOverhead < 1 {
				t.Fatalf("%s week %d: overhead %v dropped below bare metal", base.Name, week, p.ComputeOverhead)
			}
		}
	}
}

func TestDriftSeedNamespaces(t *testing.T) {
	a := DriftSpec{Seed: 1, JitterAmp: 0.5, ContentionAmp: 1, OverheadAmp: 0.5}
	b := DriftSpec{Seed: 2, JitterAmp: 0.5, ContentionAmp: 1, OverheadAmp: 0.5}
	if reflect.DeepEqual(a.Week(EC2(), 1), b.Week(EC2(), 1)) {
		t.Fatal("different drift seeds produced identical week-1 platforms")
	}
}
