package platform

import "testing"

func TestAllPlatformsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTableIParameters(t *testing.T) {
	// Cross-check against Table I of the paper.
	d := DCC()
	if d.Nodes != 8 {
		t.Errorf("DCC nodes = %d, want 8", d.Nodes)
	}
	if d.CPU.ClockHz != 2.27e9 {
		t.Errorf("DCC clock = %v, want 2.27 GHz", d.CPU.ClockHz)
	}
	if d.SlotsPerNode() != 8 {
		t.Errorf("DCC slots/node = %d, want 8", d.SlotsPerNode())
	}
	if d.MemPerNode != 40<<30 {
		t.Errorf("DCC mem/node = %d, want 40 GB", d.MemPerNode)
	}

	e := EC2()
	if e.Nodes != 4 {
		t.Errorf("EC2 nodes = %d, want 4", e.Nodes)
	}
	if e.CPU.ClockHz != 2.93e9 {
		t.Errorf("EC2 clock = %v, want 2.93 GHz", e.CPU.ClockHz)
	}
	// "Each EC2 compute instance is assigned two quad core processors ...
	// hyper-threading capabilities in 16 total cores".
	if e.SlotsPerNode() != 16 {
		t.Errorf("EC2 slots/node = %d, want 16 (HT)", e.SlotsPerNode())
	}
	if e.CPU.PhysicalCores() != 8 {
		t.Errorf("EC2 physical cores = %d, want 8", e.CPU.PhysicalCores())
	}
	if e.MemPerNode != 20<<30 {
		t.Errorf("EC2 mem/node = %d, want 20 GB", e.MemPerNode)
	}

	v := Vayu()
	if v.Nodes != 1492 {
		t.Errorf("Vayu nodes = %d, want 1492", v.Nodes)
	}
	if v.CPU.ClockHz != 2.93e9 {
		t.Errorf("Vayu clock = %v, want 2.93 GHz", v.CPU.ClockHz)
	}
	if v.SlotsPerNode() != 8 {
		t.Errorf("Vayu slots/node = %d, want 8", v.SlotsPerNode())
	}
	if v.MemPerNode != 24<<30 {
		t.Errorf("Vayu mem/node = %d, want 24 GB", v.MemPerNode)
	}
}

func TestPlatformCharacter(t *testing.T) {
	if !Vayu().NUMAPinned {
		t.Error("Vayu must enforce NUMA affinity (per the paper)")
	}
	if DCC().NUMAPinned || EC2().NUMAPinned {
		t.Error("virtualised platforms must mask NUMA")
	}
	if Vayu().Virtualised {
		t.Error("Vayu is not virtualised")
	}
	if !DCC().Virtualised || !EC2().Virtualised {
		t.Error("DCC and EC2 are virtualised")
	}
	if Vayu().FS.Name != "lustre" {
		t.Errorf("Vayu FS = %s, want lustre", Vayu().FS.Name)
	}
}

func TestLinkSelection(t *testing.T) {
	p := DCC()
	if got := p.Link(2, 2); got.Name != p.Intra.Name {
		t.Errorf("same-node link = %s, want intra", got.Name)
	}
	if got := p.Link(1, 2); got.Name != p.Inter.Name {
		t.Errorf("cross-node link = %s, want inter", got.Name)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"vayu", "dcc", "ec2"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("bluegene"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

func TestMaxRanks(t *testing.T) {
	if got := DCC().MaxRanks(); got != 64 {
		t.Errorf("DCC max ranks = %d, want 64", got)
	}
	if got := EC2().MaxRanks(); got != 64 {
		t.Errorf("EC2 max ranks = %d, want 64", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := Vayu()
	p.Nodes = 0
	if err := p.Validate(); err == nil {
		t.Error("zero nodes should fail validation")
	}
	p = Vayu()
	p.MemPerNode = -1
	if err := p.Validate(); err == nil {
		t.Error("negative memory should fail validation")
	}
	p = Vayu()
	p.Name = ""
	if err := p.Validate(); err == nil {
		t.Error("empty name should fail validation")
	}
	p = Vayu()
	p.CPU.Efficiency = 0
	if err := p.Validate(); err == nil {
		t.Error("bad CPU should fail validation")
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range All() {
		if prev, ok := seen[p.Seed]; ok {
			t.Fatalf("platforms %s and %s share a seed", prev, p.Name)
		}
		seen[p.Seed] = p.Name
	}
}
