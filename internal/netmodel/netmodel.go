// Package netmodel provides LogGP-style analytic models of the cluster
// interconnects studied in the paper: QDR InfiniBand (Vayu), virtualised
// 10 Gigabit Ethernet (EC2/Xen), Gigabit Ethernet behind a VMware vSwitch
// (DCC), and intra-node shared memory.
//
// A point-to-point transfer of n bytes started at sender virtual time t
// completes at the receiver at
//
//	t + SendOverhead + Latency(+handshake) + n/Bandwidth + jitter
//
// and occupies the sender for SendOverhead + n/Bandwidth (the NIC
// serialises outgoing data), which is what makes windowed bandwidth tests
// saturate at the link rate while ping-pong tests remain latency-bound.
package netmodel

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Link models one interconnect.
type Link struct {
	Name string

	Latency   float64 // one-way wire+stack latency for an eager message, seconds
	Bandwidth float64 // sustained point-to-point bandwidth, bytes/s

	SendOverhead float64 // CPU time charged to the sender per message, seconds
	RecvOverhead float64 // CPU time charged to the receiver per message, seconds

	// EagerLimit is the message size (bytes) above which the transport
	// switches to a rendezvous protocol, adding two extra latencies for the
	// RTS/CTS handshake. Zero disables rendezvous.
	EagerLimit int

	// Jitter perturbs the wire time of each message (vSwitch fluctuation,
	// Xen softirq delays). Applied to the latency+serialisation term.
	Jitter sim.Jitter

	// ShareExponent controls how NIC bandwidth degrades when `share`
	// ranks contend for it: effective bandwidth = Bandwidth/share^exp.
	// 0 or 1 gives fair linear sharing; >1 models software devices whose
	// per-stream throughput collapses under concurrency (the emulated
	// E1000 behind VMware's vSwitch burns hypervisor CPU per packet).
	ShareExponent float64
}

// Validate reports configuration errors.
func (l *Link) Validate() error {
	switch {
	case l.Latency < 0:
		return fmt.Errorf("netmodel: %s: negative latency", l.Name)
	case l.Bandwidth <= 0:
		return fmt.Errorf("netmodel: %s: bandwidth must be positive", l.Name)
	case l.SendOverhead < 0 || l.RecvOverhead < 0:
		return fmt.Errorf("netmodel: %s: negative overhead", l.Name)
	case l.EagerLimit < 0:
		return fmt.Errorf("netmodel: %s: negative eager limit", l.Name)
	}
	return nil
}

// SenderBusy returns the virtual seconds the sender's core is occupied by
// an n-byte send (message injection: overhead plus NIC serialisation).
func (l *Link) SenderBusy(n int) float64 {
	return l.SendOverhead + float64(n)/l.Bandwidth
}

// WireTime returns the modelled seconds between send start and arrival of
// the last byte at the receiver, before jitter.
func (l *Link) WireTime(n int) float64 {
	t := l.Latency + float64(n)/l.Bandwidth
	if l.EagerLimit > 0 && n > l.EagerLimit {
		t += 2 * l.Latency // RTS/CTS handshake
	}
	return t
}

// Transfer returns (senderBusy, arrivalDelay) for an n-byte message using
// jitter stream r: the sender's clock advances by senderBusy and the
// message arrives arrivalDelay seconds after send start. r may be nil for
// a noise-free transfer.
func (l *Link) Transfer(r *sim.RNG, n int) (senderBusy, arrivalDelay float64) {
	return l.TransferShared(r, n, 1)
}

// TransferShared is Transfer with NIC bandwidth sharing: share is the
// number of ranks contending for this link's bandwidth (ranks co-located
// on a node share its NIC). The effective per-rank bandwidth is
// Bandwidth/share; latency is unaffected. share < 1 is treated as 1.
func (l *Link) TransferShared(r *sim.RNG, n int, share float64) (senderBusy, arrivalDelay float64) {
	if share < 1 {
		share = 1
	}
	if l.ShareExponent > 0 && share > 1 {
		share = math.Pow(share, l.ShareExponent)
	}
	ser := float64(n) / (l.Bandwidth / share)
	senderBusy = l.SendOverhead + ser
	wire := l.Latency + ser
	if l.EagerLimit > 0 && n > l.EagerLimit {
		wire += 2 * l.Latency // RTS/CTS handshake
	}
	if r != nil {
		wire = l.Jitter.Apply(r, wire)
	}
	if wire < 0 {
		wire = 0
	}
	return senderBusy, l.SendOverhead + wire
}
