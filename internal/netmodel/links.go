package netmodel

import "repro/internal/sim"

// The concrete link models below are calibrated against the OSU curves in
// Figures 1 and 2 of the paper: peak bandwidths of ~3200 MB/s (Vayu QDR IB),
// ~560 MB/s (EC2 10GigE under Xen) and ~190 MB/s (DCC channel-bonded GigE
// vNIC), with microsecond-scale latency on InfiniBand, tens of microseconds
// on EC2, and strongly fluctuating 50 µs – millisecond latency on DCC
// caused by the VMware software switch.

const mb = 1 << 20

// QDRInfiniBand returns the Vayu fat-tree QDR IB model.
func QDRInfiniBand() Link {
	return Link{
		Name:         "qdr-ib",
		Latency:      1.6e-6,
		Bandwidth:    3200 * mb,
		SendOverhead: 0.4e-6,
		RecvOverhead: 0.4e-6,
		EagerLimit:   12 << 10,
		Jitter:       sim.Jitter{Sigma: 0.03},
	}
}

// TenGigEXen returns the EC2 cluster-placement-group 10GigE model, including
// Xen driver-domain overhead and moderate virtualisation jitter.
func TenGigEXen() Link {
	return Link{
		Name:         "10gige-xen",
		Latency:      52e-6,
		Bandwidth:    560 * mb,
		SendOverhead: 5e-6,
		RecvOverhead: 5e-6,
		EagerLimit:   64 << 10,
		Jitter: sim.Jitter{
			Sigma:     0.12,
			SpikeProb: 0.004,
			SpikeMin:  100e-6,
			SpikeMax:  2e-3,
		},
	}
}

// GigEVSwitch returns the DCC model: an Intel E1000 1GigE vNIC behind a
// VMware virtual switch. The paper observed latencies fluctuating from 1 B
// to 512 KB messages, attributed to hypervisor CPU scheduling of the
// software switch; the heavy-tailed jitter term models that.
func GigEVSwitch() Link {
	return Link{
		Name:          "gige-vswitch",
		Latency:       58e-6,
		Bandwidth:     190 * mb,
		SendOverhead:  8e-6,
		RecvOverhead:  8e-6,
		EagerLimit:    32 << 10,
		ShareExponent: 1.9,
		Jitter: sim.Jitter{
			Sigma:     0.45,
			AddMean:   12e-6,
			SpikeProb: 0.02,
			SpikeMin:  200e-6,
			SpikeMax:  5e-3,
		},
	}
}

// SharedMemory returns the intra-node transport model used when both ranks
// are placed on the same node. virtualised adds a small hypervisor tax on
// latency for guest-VM platforms.
func SharedMemory(virtualised bool) Link {
	l := Link{
		Name:         "shm",
		Latency:      0.6e-6,
		Bandwidth:    4500 * mb,
		SendOverhead: 0.2e-6,
		RecvOverhead: 0.2e-6,
		Jitter:       sim.Jitter{Sigma: 0.02},
	}
	if virtualised {
		l.Name = "shm-virt"
		l.Latency = 1.0e-6
		l.Jitter = sim.Jitter{Sigma: 0.05}
	}
	return l
}
