package netmodel

import "testing"

func TestDegradedScalesLatencyAndBandwidth(t *testing.T) {
	l := GigEVSwitch()
	d := l.Degraded(8, 4)
	if d.Latency != l.Latency*8 {
		t.Errorf("latency %v, want %v", d.Latency, l.Latency*8)
	}
	if d.Bandwidth != l.Bandwidth/4 {
		t.Errorf("bandwidth %v, want %v", d.Bandwidth, l.Bandwidth/4)
	}
	// Overheads and limits are those of the underlying link.
	if d.SendOverhead != l.SendOverhead || d.EagerLimit != l.EagerLimit {
		t.Error("degraded link must keep the base link's other parameters")
	}
	// The original link is untouched (Degraded returns a copy).
	if l.Latency != GigEVSwitch().Latency {
		t.Error("Degraded mutated the receiver")
	}
}

func TestDegradedIdentity(t *testing.T) {
	l := QDRInfiniBand()
	d := l.Degraded(1, 1)
	if d != l {
		t.Errorf("factor-1 degradation must be the identity: %+v vs %+v", d, l)
	}
}

func TestDegradedRejectsSpeedups(t *testing.T) {
	l := GigEVSwitch()
	for _, f := range [][2]float64{{0.5, 1}, {1, 0.5}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Degraded(%g,%g) must panic: a speed-up violates causality", f[0], f[1])
				}
			}()
			l.Degraded(f[0], f[1])
		}()
	}
}
