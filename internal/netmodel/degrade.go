package netmodel

import "fmt"

// Degradation is a transient window of degraded link performance from
// the fault plane: while active, inter-node latency is multiplied by
// LatencyFactor and bandwidth divided by BandwidthFactor. Both factors
// are >= 1 — degradation only ever slows a link down, which preserves
// virtual-time causality (an arrival can be pushed later, never earlier).
type Degradation struct {
	Start, End      float64
	LatencyFactor   float64
	BandwidthFactor float64
}

// Degraded returns a copy of the link with latency multiplied by
// latFactor and bandwidth divided by bwFactor. Factors below 1 panic:
// a "degradation" that speeds the link up would let messages overtake
// the causal order already committed to by earlier sends.
func (l *Link) Degraded(latFactor, bwFactor float64) Link {
	if latFactor < 1 || bwFactor < 1 {
		panic(fmt.Sprintf("netmodel: degradation factors (%g,%g) must be >= 1", latFactor, bwFactor))
	}
	d := *l
	d.Latency *= latFactor
	d.Bandwidth /= bwFactor
	return d
}
