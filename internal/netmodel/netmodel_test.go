package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestValidate(t *testing.T) {
	good := QDRInfiniBand()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Link{
		{Name: "neg-lat", Latency: -1, Bandwidth: 1},
		{Name: "zero-bw", Latency: 0, Bandwidth: 0},
		{Name: "neg-ovh", Latency: 0, Bandwidth: 1, SendOverhead: -1},
		{Name: "neg-eager", Latency: 0, Bandwidth: 1, EagerLimit: -5},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: invalid link passed validation", l.Name)
		}
	}
}

func TestAllStockLinksValid(t *testing.T) {
	for _, l := range []Link{QDRInfiniBand(), TenGigEXen(), GigEVSwitch(), SharedMemory(false), SharedMemory(true)} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestWireTimeSmallMessageIsLatency(t *testing.T) {
	l := QDRInfiniBand()
	if got := l.WireTime(0); got != l.Latency {
		t.Fatalf("WireTime(0) = %v, want latency %v", got, l.Latency)
	}
}

func TestWireTimeRendezvousSurcharge(t *testing.T) {
	l := Link{Name: "t", Latency: 10e-6, Bandwidth: 1e9, EagerLimit: 1024}
	below := l.WireTime(1024)
	above := l.WireTime(1025)
	extra := above - below
	// Crossing the eager limit adds two latencies (minus one byte of
	// serialisation, negligible).
	if math.Abs(extra-2*l.Latency) > 1e-9 {
		t.Fatalf("rendezvous surcharge = %v, want %v", extra, 2*l.Latency)
	}
}

func TestTransferDeterministicPerStream(t *testing.T) {
	l := GigEVSwitch()
	r1 := sim.NewRNG(99)
	r2 := sim.NewRNG(99)
	for i := 0; i < 1000; i++ {
		b1, d1 := l.Transfer(r1, 4096)
		b2, d2 := l.Transfer(r2, 4096)
		if b1 != b2 || d1 != d2 {
			t.Fatalf("transfer not deterministic at iteration %d", i)
		}
	}
}

func TestTransferNilRNGNoiseFree(t *testing.T) {
	l := GigEVSwitch()
	b, d := l.Transfer(nil, 1<<20)
	if b != l.SenderBusy(1<<20) {
		t.Fatalf("sender busy = %v, want %v", b, l.SenderBusy(1<<20))
	}
	if want := l.SendOverhead + l.WireTime(1<<20); math.Abs(d-want) > 1e-15 {
		t.Fatalf("arrival delay = %v, want %v", d, want)
	}
}

func TestBandwidthOrderingMatchesFig1(t *testing.T) {
	// Figure 1: Vayu QDR IB >> EC2 10GigE > DCC GigE at every size.
	ib, xen, ge := QDRInfiniBand(), TenGigEXen(), GigEVSwitch()
	for _, n := range []int{1, 64, 4096, 1 << 18, 1 << 21} {
		bwIB := float64(n) / ib.WireTime(n)
		bwXen := float64(n) / xen.WireTime(n)
		bwGE := float64(n) / ge.WireTime(n)
		if !(bwIB > bwXen && bwXen > bwGE) {
			t.Fatalf("size %d: bandwidth ordering violated: ib=%.3g xen=%.3g ge=%.3g", n, bwIB, bwXen, bwGE)
		}
	}
	// "more than one order of magnitude higher" vs DCC at large sizes.
	n := 1 << 21
	if ratio := (float64(n) / ib.WireTime(n)) / (float64(n) / ge.WireTime(n)); ratio < 10 {
		t.Fatalf("IB/GigE large-message bandwidth ratio = %v, want >= 10", ratio)
	}
}

func TestLatencyOrderingMatchesFig2(t *testing.T) {
	ib, xen, ge := QDRInfiniBand(), TenGigEXen(), GigEVSwitch()
	if !(ib.Latency < xen.Latency && xen.Latency <= ge.Latency) {
		t.Fatalf("latency ordering violated: ib=%v xen=%v ge=%v", ib.Latency, xen.Latency, ge.Latency)
	}
	if ib.Latency > 3e-6 {
		t.Fatalf("QDR IB small-message latency %v too high", ib.Latency)
	}
}

func TestDCCLatencyFluctuates(t *testing.T) {
	// The paper: DCC latencies "fluctuated from 1 byte to 512KB messages".
	ge := GigEVSwitch()
	r := sim.NewRNG(1)
	var s sim.Series
	for i := 0; i < 5000; i++ {
		_, d := ge.Transfer(r, 8)
		s = append(s, d)
	}
	cv := s.Stddev() / s.Mean()
	if cv < 0.3 {
		t.Fatalf("DCC small-message latency CV = %v, want strong fluctuation (>= 0.3)", cv)
	}
	// Vayu must be far steadier.
	ib := QDRInfiniBand()
	var vs sim.Series
	for i := 0; i < 5000; i++ {
		_, d := ib.Transfer(r, 8)
		vs = append(vs, d)
	}
	if vcv := vs.Stddev() / vs.Mean(); vcv > 0.1 {
		t.Fatalf("Vayu latency CV = %v, should be small", vcv)
	}
}

func TestPeakBandwidthCalibration(t *testing.T) {
	// Asymptotic bandwidths should match the paper's observed peaks:
	// ~3200, ~560, ~190 MB/s.
	check := func(l Link, wantMBs float64) {
		n := 64 << 20
		bw := float64(n) / l.WireTime(n) / (1 << 20)
		if math.Abs(bw-wantMBs)/wantMBs > 0.05 {
			t.Errorf("%s peak bandwidth = %.0f MB/s, want ~%.0f", l.Name, bw, wantMBs)
		}
	}
	check(QDRInfiniBand(), 3200)
	check(TenGigEXen(), 560)
	check(GigEVSwitch(), 190)
}

func TestSenderBusyMonotone(t *testing.T) {
	l := TenGigEXen()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return l.SenderBusy(x) <= l.SenderBusy(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireTimeMonotoneWithinProtocol(t *testing.T) {
	l := GigEVSwitch()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		// Compare within the same protocol regime (both eager or both
		// rendezvous); the handshake step is an intentional discontinuity.
		if (x <= l.EagerLimit) != (y <= l.EagerLimit) {
			return true
		}
		return l.WireTime(x) <= l.WireTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedMemoryFasterThanAnyNetwork(t *testing.T) {
	shm := SharedMemory(false)
	for _, l := range []Link{QDRInfiniBand(), TenGigEXen(), GigEVSwitch()} {
		for _, n := range []int{8, 1 << 14, 1 << 20} {
			if shm.WireTime(n) >= l.WireTime(n) {
				t.Fatalf("shm not faster than %s at %d bytes", l.Name, n)
			}
		}
	}
}

func TestShareExponentCollapsesSoftwareNICs(t *testing.T) {
	// DCC's emulated E1000 behind the vSwitch degrades super-linearly
	// under concurrency; hardware NICs share fairly.
	dcc := GigEVSwitch()
	ib := QDRInfiniBand()
	const n = 1 << 20
	_, d1 := dcc.TransferShared(nil, n, 1)
	_, d8 := dcc.TransferShared(nil, n, 8)
	_, i1 := ib.TransferShared(nil, n, 1)
	_, i8 := ib.TransferShared(nil, n, 8)
	dccRatio := d8 / d1
	ibRatio := i8 / i1
	if dccRatio < 20 {
		t.Fatalf("DCC 8-way share slowdown = %.1fx, want super-linear (8^1.9 ~ 52x)", dccRatio)
	}
	if ibRatio > 9 {
		t.Fatalf("IB 8-way share slowdown = %.1fx, want linear (~8x)", ibRatio)
	}
}

func TestShareBelowOneClamped(t *testing.T) {
	l := TenGigEXen()
	_, a := l.TransferShared(nil, 4096, 0.5)
	_, b := l.TransferShared(nil, 4096, 1)
	if a != b {
		t.Fatal("share < 1 must behave as 1")
	}
}
