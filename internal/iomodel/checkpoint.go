package iomodel

// CheckpointSeconds returns the virtual seconds for one rank to write an
// n-byte checkpoint shard while `writers` ranks checkpoint concurrently.
// A checkpoint is a write plus a durability commit: create, fsync and an
// atomic rename, i.e. three extra metadata round-trips on top of the data
// transfer. On NFS the commit serialises through the single server (like
// reads), so checkpoints are disproportionately expensive on the
// DCC/EC2 clouds compared to Lustre — a paper-faithful platform
// difference that the fault experiments (E12) surface directly.
func (f FS) CheckpointSeconds(n int64, writers int) float64 {
	return f.WriteSeconds(n, writers) + f.CommitSeconds(writers)
}

// CommitSeconds returns the durability-commit portion of a checkpoint:
// create, fsync and an atomic rename (three metadata round-trips), which
// serialise across writers on a single-server filesystem. Split out so
// the runtime can meter NFS-vs-Lustre commit stalls separately from the
// data transfer.
func (f FS) CommitSeconds(writers int) float64 {
	if writers < 1 {
		writers = 1
	}
	commit := 3 * f.OpLat
	if !f.ReadScales {
		commit *= float64(writers)
	}
	return commit
}
