// Package iomodel provides simple throughput models of the shared
// filesystems used on the studied platforms: Lustre on Vayu and NFS on the
// DCC and EC2 clusters.
//
// The paper's applications are read-dominated (a 1.6 GB MetUM dump and a
// 1.4 GB Chaste mesh at startup); its measured read times (Vayu 4.5 s,
// DCC 37.8 s, EC2 9.1 s for MetUM) calibrate the read bandwidths here.
package iomodel

import "fmt"

// FS models a shared filesystem mounted on every compute node.
type FS struct {
	Name string

	ReadBW  float64 // aggregate sequential read bandwidth, bytes/s
	WriteBW float64 // aggregate sequential write bandwidth, bytes/s
	OpLat   float64 // per-operation latency (open/metadata), seconds

	// ReadScales indicates reads from distinct ranks proceed in parallel up
	// to the aggregate bandwidth (parallel filesystem). When false, ranks
	// serialise on the single server (NFS).
	ReadScales bool

	// WriteContention is the extra per-writer slowdown factor applied when
	// w ranks write concurrently: effective BW = WriteBW / (1 + c*(w-1)).
	// Models the inverse scaling of collective output the paper saw on the
	// Lustre-backed runs.
	WriteContention float64
}

// Validate reports configuration errors.
func (f *FS) Validate() error {
	if f.ReadBW <= 0 || f.WriteBW <= 0 {
		return fmt.Errorf("iomodel: %s: bandwidths must be positive", f.Name)
	}
	if f.OpLat < 0 || f.WriteContention < 0 {
		return fmt.Errorf("iomodel: %s: negative latency or contention", f.Name)
	}
	return nil
}

// ReadSeconds returns the virtual seconds for one rank to read n bytes when
// `readers` ranks read concurrently. The aggregate bandwidth is shared
// among concurrent readers; on a single-server filesystem (ReadScales
// false) metadata operations additionally serialise across clients.
func (f FS) ReadSeconds(n int64, readers int) float64 {
	if readers < 1 {
		readers = 1
	}
	lat := f.OpLat
	if !f.ReadScales {
		lat *= float64(readers)
	}
	return lat + float64(n)/(f.ReadBW/float64(readers))
}

// WriteSeconds returns the virtual seconds for one rank to write n bytes
// when `writers` ranks write concurrently.
func (f FS) WriteSeconds(n int64, writers int) float64 {
	if writers < 1 {
		writers = 1
	}
	bw := f.WriteBW / (1 + f.WriteContention*float64(writers-1))
	bw /= float64(writers)
	return f.OpLat + float64(n)/bw
}

// Lustre returns the Vayu Lustre model (~355 MB/s observed for the MetUM
// dump read; writes show contention growth with writer count).
func Lustre() FS {
	return FS{
		Name:            "lustre",
		ReadBW:          355 << 20,
		WriteBW:         600 << 20,
		OpLat:           2e-3,
		ReadScales:      true,
		WriteContention: 0.35,
	}
}

// NFSDCC returns the DCC NFS model (~42 MB/s reads via the external storage
// cluster; output performance roughly constant with core count).
func NFSDCC() FS {
	return FS{
		Name:            "nfs-dcc",
		ReadBW:          42 << 20,
		WriteBW:         60 << 20,
		OpLat:           5e-3,
		ReadScales:      false,
		WriteContention: 0,
	}
}

// NFSEC2 returns the EC2 StarCluster NFS model (~175 MB/s reads from the
// master instance's local volume).
func NFSEC2() FS {
	return FS{
		Name:            "nfs-ec2",
		ReadBW:          175 << 20,
		WriteBW:         140 << 20,
		OpLat:           4e-3,
		ReadScales:      false,
		WriteContention: 0.05,
	}
}
