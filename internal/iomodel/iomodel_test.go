package iomodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStockFSValid(t *testing.T) {
	for _, f := range []FS{Lustre(), NFSDCC(), NFSEC2()} {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	bad := []FS{
		{Name: "zero-read", ReadBW: 0, WriteBW: 1},
		{Name: "zero-write", ReadBW: 1, WriteBW: 0},
		{Name: "neg-lat", ReadBW: 1, WriteBW: 1, OpLat: -1},
		{Name: "neg-cont", ReadBW: 1, WriteBW: 1, WriteContention: -0.5},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("%s passed validation", f.Name)
		}
	}
}

func TestReadCalibrationMatchesPaper(t *testing.T) {
	// Table III: reading the 1.6 GB MetUM dump took ~4.5 s on Vayu,
	// ~37.8 s on DCC and ~9.1 s on EC2 (single reader: rank 0 reads).
	gib := float64(int64(1) << 30)
	dump := int64(1.6 * gib)
	cases := []struct {
		fs   FS
		want float64
	}{
		{Lustre(), 4.5},
		{NFSDCC(), 37.8},
		{NFSEC2(), 9.1},
	}
	for _, c := range cases {
		got := c.fs.ReadSeconds(dump, 1)
		if math.Abs(got-c.want)/c.want > 0.10 {
			t.Errorf("%s: read 1.6GB = %.1f s, want ~%.1f s", c.fs.Name, got, c.want)
		}
	}
}

func TestReadOrderingVayuFastest(t *testing.T) {
	const n = int64(1 << 30)
	v, d, e := Lustre().ReadSeconds(n, 1), NFSDCC().ReadSeconds(n, 1), NFSEC2().ReadSeconds(n, 1)
	if !(v < e && e < d) {
		t.Fatalf("read time ordering wrong: lustre=%v nfs-ec2=%v nfs-dcc=%v", v, e, d)
	}
}

func TestConcurrentReadersShareBandwidth(t *testing.T) {
	f := Lustre()
	one := f.ReadSeconds(1<<30, 1)
	eight := f.ReadSeconds(1<<30, 8)
	if eight <= one {
		t.Fatalf("8 concurrent readers (%v) should be slower per rank than 1 (%v)", eight, one)
	}
}

func TestWriteContentionGrowth(t *testing.T) {
	// The paper observed Chaste output scaling inversely on Vayu (more
	// writers -> slower) but staying constant on DCC's NFS.
	lustre := Lustre()
	w1 := lustre.WriteSeconds(100<<20, 1)
	w8 := lustre.WriteSeconds(100<<20, 8)
	if w8 <= w1 {
		t.Fatalf("lustre write with 8 writers (%v) should exceed 1 writer (%v)", w8, w1)
	}
	dcc := NFSDCC()
	// Per-writer time grows linearly with writer count (pure sharing, no
	// extra contention term).
	d1 := dcc.WriteSeconds(100<<20, 1) - dcc.OpLat
	d8 := dcc.WriteSeconds(100<<20, 8) - dcc.OpLat
	if math.Abs(d8/d1-8) > 1e-6 {
		t.Fatalf("dcc write scaling = %v, want exactly 8x (no contention term)", d8/d1)
	}
}

func TestReadSecondsPositiveProperty(t *testing.T) {
	f := NFSEC2()
	prop := func(n uint32, readers uint8) bool {
		return f.ReadSeconds(int64(n), int(readers)) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestReadSecondsMonotoneInSize(t *testing.T) {
	f := NFSDCC()
	prop := func(a, b uint32, readers uint8) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		r := int(readers)
		return f.ReadSeconds(x, r) <= f.ReadSeconds(y, r)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroReadersTreatedAsOne(t *testing.T) {
	f := Lustre()
	if f.ReadSeconds(1<<20, 0) != f.ReadSeconds(1<<20, 1) {
		t.Fatal("0 readers should behave as 1")
	}
	if f.WriteSeconds(1<<20, 0) != f.WriteSeconds(1<<20, 1) {
		t.Fatal("0 writers should behave as 1")
	}
}
