package iomodel

import "testing"

func TestCheckpointCostsMoreThanPlainWrite(t *testing.T) {
	for _, fs := range []FS{Lustre(), NFSDCC(), NFSEC2()} {
		n := int64(64 << 20)
		if ck, wr := fs.CheckpointSeconds(n, 8), fs.WriteSeconds(n, 8); ck <= wr {
			t.Errorf("%s: checkpoint %v not dearer than write %v", fs.Name, ck, wr)
		}
	}
}

func TestCheckpointCommitSerialisesOnNFS(t *testing.T) {
	// The durability commit (create+fsync+rename) serialises through the
	// single NFS server but scales on Lustre: the per-writer commit
	// overhead must grow with writer count on NFS and stay flat on Lustre.
	commit := func(fs FS, writers int) float64 {
		return fs.CheckpointSeconds(1, writers) - fs.WriteSeconds(1, writers)
	}
	nfs := NFSDCC()
	if c1, c32 := commit(nfs, 1), commit(nfs, 32); c32 <= c1 {
		t.Errorf("NFS commit should grow with writers: %v at 1 vs %v at 32", c1, c32)
	}
	lustre := Lustre()
	if c1, c32 := commit(lustre, 1), commit(lustre, 32); c32 != c1 {
		t.Errorf("Lustre commit should not grow with writers: %v at 1 vs %v at 32", c1, c32)
	}
}

func TestCheckpointWriterFloor(t *testing.T) {
	fs := NFSEC2()
	if a, b := fs.CheckpointSeconds(1<<20, 0), fs.CheckpointSeconds(1<<20, 1); a != b {
		t.Errorf("writers<1 should clamp to 1: %v vs %v", a, b)
	}
}
