package pdes

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortedRef returns the events sorted under Event.Less — the queue's
// reference semantics.
func sortedRef(evs []Event) []Event {
	ref := append([]Event(nil), evs...)
	sort.Slice(ref, func(i, j int) bool { return ref[i].Less(ref[j]) })
	return ref
}

// drain pops every event.
func drain(q *Queue) []Event {
	var out []Event
	for q.Len() > 0 {
		out = append(out, q.Pop())
	}
	return out
}

func TestQueueDrainsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var evs []Event
	for i := 0; i < 500; i++ {
		evs = append(evs, Event{
			Time: float64(rng.Intn(8)), // few distinct times: force ties
			Rank: rng.Intn(16),
			Seq:  uint64(i),
		})
	}
	var q Queue
	for _, e := range evs {
		q.Push(e)
	}
	got := drain(&q)
	ref := sortedRef(evs)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("pop %d: got %+v, want %+v", i, got[i], ref[i])
		}
	}
}

func TestQueueTieBreaking(t *testing.T) {
	var q Queue
	// Same time everywhere: order must fall back to (rank, seq).
	q.Push(Event{Time: 1, Rank: 3, Seq: 0})
	q.Push(Event{Time: 1, Rank: 0, Seq: 2})
	q.Push(Event{Time: 1, Rank: 0, Seq: 1})
	q.Push(Event{Time: 1, Rank: 2, Seq: 3})
	want := []Event{{1, 0, 1}, {1, 0, 2}, {1, 2, 3}, {1, 3, 0}}
	got := drain(&q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestQueueMin(t *testing.T) {
	var q Queue
	if _, ok := q.Min(); ok {
		t.Fatal("Min on empty queue reported ok")
	}
	q.Push(Event{Time: 2, Rank: 0, Seq: 0})
	q.Push(Event{Time: 1, Rank: 1, Seq: 1})
	if min, ok := q.Min(); !ok || min != (Event{1, 1, 1}) {
		t.Fatalf("Min = %+v, %v", min, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Min must not remove: len %d", q.Len())
	}
}

// TestQueueQuickProperties drives the queue with generated event sets and
// checks the two properties every engine run depends on: the drain order
// is exactly the sorted order (deterministic tie-breaking included), and
// interleaved push/pop never yields an event out of order.
func TestQueueQuickProperties(t *testing.T) {
	drainIsSorted := func(times []uint8, ranks []uint8) bool {
		n := len(times)
		if len(ranks) < n {
			n = len(ranks)
		}
		evs := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			evs = append(evs, Event{Time: float64(times[i] % 5), Rank: int(ranks[i] % 7), Seq: uint64(i)})
		}
		var q Queue
		for _, e := range evs {
			q.Push(e)
		}
		got := drain(&q)
		ref := sortedRef(evs)
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(drainIsSorted, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}

	interleavedMonotone := func(ops []uint16) bool {
		var q Queue
		var seq uint64
		live := map[Event]bool{}
		var lastPop Event
		popped := false
		for _, op := range ops {
			if op%3 == 0 && q.Len() > 0 {
				e := q.Pop()
				if !live[e] {
					return false // popped an event never pushed (or twice)
				}
				delete(live, e)
				// Among the events present at pop time, e must be minimal.
				if m, ok := q.Min(); ok && m.Less(e) {
					return false
				}
				lastPop, popped = e, true
				_ = lastPop
				_ = popped
			} else {
				e := Event{Time: float64(op % 4), Rank: int(op % 5), Seq: seq}
				seq++
				q.Push(e)
				live[e] = true
			}
		}
		return true
	}
	if err := quick.Check(interleavedMonotone, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
