// Package pdes provides the conservative parallel-discrete-event engine
// behind the mpi package's event-driven runtime. The simulated ranks of a
// world are coroutines multiplexed over a small, bounded set of OS
// threads; a deterministic event queue decides which parked rank resumes
// next, ordered by virtual time with (rank, seq) tie-breaking so the
// resume sequence — and therefore every observable result — is identical
// at any worker count.
//
// The engine is conservative in the Kahn-process-network sense: a rank is
// resumed only when the input it blocked on actually exists (or the world
// is being aborted), so no speculative execution and no rollback ever
// happen. Virtual timestamps are data computed by the rank programs
// themselves; the queue uses them as a scheduling priority, not as a
// global-clock barrier, which is sound because the mpi layer's receives
// block on explicit (source, tag) channels whose contents do not depend
// on execution order.
package pdes

// Event schedules the resumption of one rank. Time is the virtual time
// the rank becomes runnable (the maximum of its clock when it parked and
// the arrival time of the input that woke it); Rank identifies the
// coroutine; Seq is an engine-issued creation stamp that makes the order
// total. All three components are deterministic functions of the
// simulated program, never of wall-clock scheduling.
type Event struct {
	Time float64
	Rank int
	Seq  uint64
}

// Less is the queue's strict total order: virtual time, then rank, then
// creation stamp. Two distinct events never compare equal because Seq is
// unique per queue.
func (e Event) Less(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Rank != o.Rank {
		return e.Rank < o.Rank
	}
	return e.Seq < o.Seq
}

// Queue is a binary min-heap of events under Event.Less. The zero value
// is an empty queue ready for use. It is not synchronised; the Engine
// serialises access under its own mutex.
type Queue struct {
	h []Event
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.h) }

// Push inserts an event.
func (q *Queue) Push(e Event) {
	//lint:allow reprolint/allochot amortised heap growth; the backing array is retained and reused across runs
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].Less(q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// Pop removes and returns the minimum event. It panics on an empty queue
// (an engine invariant violation, not a recoverable condition).
func (q *Queue) Pop() Event {
	min := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Event{}
	q.h = q.h[:last]
	q.siftDown(0)
	return min
}

// Min returns the minimum event without removing it; ok is false when the
// queue is empty.
func (q *Queue) Min() (min Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

func (q *Queue) siftDown(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.h[l].Less(q.h[smallest]) {
			smallest = l
		}
		if r < n && q.h[r].Less(q.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
