package pdes

import (
	"testing"
)

// FuzzEventQueue drives the queue with an arbitrary interleaving of
// pushes and pops decoded from the fuzz input and checks it against a
// model: every pop returns a live event that is minimal (under
// Event.Less) among the events currently queued, and a full drain at the
// end comes out exactly sorted.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{255, 0, 255, 0, 7, 7, 7})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Queue
		var seq uint64
		live := map[Event]int{} // multiset of queued events
		nlive := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op%4 == 0 && nlive > 0 {
				e := q.Pop()
				if live[e] == 0 {
					t.Fatalf("popped %+v which is not queued", e)
				}
				live[e]--
				nlive--
				if m, ok := q.Min(); ok && m.Less(e) {
					t.Fatalf("popped %+v but %+v was queued and smaller", e, m)
				}
			} else {
				// Narrow domains on time and rank so ties are common and
				// the (rank, seq) tie-break carries real weight.
				e := Event{Time: float64(arg % 5), Rank: int(arg % 7), Seq: seq}
				seq++
				q.Push(e)
				live[e]++
				nlive++
			}
		}
		if q.Len() != nlive {
			t.Fatalf("queue length %d, model has %d live events", q.Len(), nlive)
		}
		var prev Event
		for i := 0; q.Len() > 0; i++ {
			e := q.Pop()
			if i > 0 && e.Less(prev) {
				t.Fatalf("drain out of order: %+v after %+v", e, prev)
			}
			if live[e] == 0 {
				t.Fatalf("drained %+v which is not queued", e)
			}
			live[e]--
			prev = e
		}
		for e, n := range live {
			if n != 0 {
				t.Fatalf("event %+v pushed but never popped", e)
			}
		}
	})
}

// decodeScripts turns fuzz bytes into rank scripts for the toy runtime.
// Destinations are decoded mod np and self-sends/self-receives are
// redirected, so every input is a valid (if possibly deadlocking or
// dying) program.
func decodeScripts(data []byte, np int) [][]toyOp {
	scripts := make([][]toyOp, np)
	for i := 0; i+2 < len(data); i += 3 {
		rank := int(data[i]) % np
		kind := toyOpKind(data[i+1] % 4)
		dst := int(data[i+2]) % np
		if dst == rank {
			dst = (dst + 1) % np
		}
		op := toyOp{Kind: kind, Dst: dst, Dt: float64(data[i+2]%8) * 0.25}
		scripts[rank] = append(scripts[rank], op)
	}
	return scripts
}

// FuzzEngine runs arbitrary toy programs — including ones that deadlock
// or kill ranks mid-script — under the engine at one worker and at four,
// and requires that (a) both terminate (stall detection must catch every
// quiescent state, or wg.Wait would hang the fuzzer) and (b) final
// clocks and per-rank progress are identical: the KPN determinism
// promise under adversarial schedules and failures.
func FuzzEngine(f *testing.F) {
	// A clean ring, a deadlock, an early death, and tie-heavy traffic.
	f.Add([]byte{0, 1, 1, 1, 2, 0, 2, 1, 3, 3, 2, 0})
	f.Add([]byte{0, 2, 1, 1, 2, 0})
	f.Add([]byte{0, 3, 0, 1, 2, 0, 2, 1, 3})
	f.Add([]byte{0, 1, 1, 1, 1, 2, 2, 1, 3, 3, 1, 0, 0, 2, 3, 3, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const np = 4
		scripts := decodeScripts(data, np)
		ref := runToy(scripts, 1)
		got := runToy(scripts, 4)
		if !sameResult(ref, got) {
			t.Fatalf("workers=1 vs 4 diverged on %x:\n ref %+v\n got %+v", data, ref, got)
		}
	})
}
