package pdes

import (
	"fmt"
	"sync"
)

// procState tracks where one rank coroutine is in the park/grant cycle.
type procState uint8

const (
	// stateReady: the proc has exactly one resume event in the queue and
	// is waiting for a grant.
	stateReady procState = iota
	// stateRunning: the proc holds a grant and is executing (it may be
	// anywhere in its program, including about to call Park).
	stateRunning
	// stateParked: the proc is suspended in Park with no resume event
	// queued; only a Wake (or WakeAll) can make it ready again.
	stateParked
	// stateDone: the proc's coroutine has finished; it never runs again.
	stateDone
)

// proc is the engine's record of one rank coroutine: the materialised
// "resumable state machine". The coroutine's program counter and pending
// operation live on its (parked) goroutine stack; the engine's view is
// the state tag, the virtual time it parked at, and the one-shot grant
// gate it resumes through.
type proc struct {
	state    procState
	parkTime float64 // rank's virtual clock when it last parked

	// pendingWake absorbs the race between a rank announcing it will
	// park (publishing its receive predicate under the inbox lock) and
	// the Park call itself: a Wake arriving in that window is recorded
	// here and consumed by Park, which then re-enters through the event
	// queue like any other wake. wakeAt carries the wake's virtual time.
	pendingWake bool
	wakeAt      float64

	// gate delivers grants. Buffered: a grant issued before the
	// coroutine reaches its receive (initial dispatch, or the
	// pendingWake path) is held until consumed, so the dispatcher never
	// blocks on a slow coroutine.
	gate chan struct{}
}

// Engine multiplexes n rank coroutines over at most `workers` of them
// running concurrently. Ranks call Enter once, then Park every time they
// block; message deliveries call Wake. The engine resumes parked ranks
// in deterministic event-queue order, so any workers value (including 1)
// produces the same execution.
type Engine struct {
	mu      sync.Mutex
	q       Queue
	procs   []proc
	workers int
	running int    // procs holding a grant
	live    int    // procs not yet Done
	seq     uint64 // next event creation stamp

	// onStall is invoked (on a fresh goroutine, no locks held) when no
	// proc is running or runnable but live procs remain parked — the
	// world is deadlocked or, under fault injection, quiescent. The
	// argument lists the parked ranks in ascending order.
	onStall func(parked []int)
	stalled bool // one stall notification per drain
}

// New creates an engine for n ranks with the given concurrency bound
// (workers <= 0 means unbounded: every runnable proc is granted). Every
// rank starts ready with a resume event at virtual time 0.
func New(n, workers int) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("pdes: engine needs at least one proc, got %d", n))
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	e := &Engine{procs: make([]proc, n), workers: workers, live: n}
	for r := range e.procs {
		e.procs[r].gate = make(chan struct{}, 1)
		e.q.Push(Event{Time: 0, Rank: r, Seq: e.seq})
		e.seq++
	}
	return e
}

// OnStall registers the stall handler. Must be called before Go.
//
//lint:allow reprolint/lockhyg registration precedes Go; no goroutine can observe the write
func (e *Engine) OnStall(fn func(parked []int)) { e.onStall = fn }

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Go starts dispatching: up to `workers` ranks receive their initial
// grants. Rank coroutines may call Enter before or after Go.
func (e *Engine) Go() {
	e.mu.Lock()
	e.dispatchLocked()
	e.mu.Unlock()
}

// Enter blocks the calling rank coroutine until its first grant. Each
// rank must call it exactly once, before doing any work.
func (e *Engine) Enter(rank int) {
	<-e.procs[rank].gate
}

// Park suspends the calling rank at virtual time `now` until a Wake
// schedules it and the dispatcher grants it again. The caller must have
// published its wake condition (e.g. the mpi receive predicate) before
// calling Park; a Wake that raced ahead is absorbed by pendingWake and
// the rank re-enters through the event queue without ever sleeping.
func (e *Engine) Park(rank int, now float64) {
	e.mu.Lock()
	p := &e.procs[rank]
	if p.state != stateRunning {
		e.mu.Unlock()
		panic(fmt.Sprintf("pdes: Park(%d) in state %d", rank, p.state))
	}
	p.parkTime = now
	if p.pendingWake {
		// The wake already happened: yield through the queue so the
		// resume order stays deterministic, but never sleep unwoken.
		p.pendingWake = false
		at := p.wakeAt
		if now > at {
			at = now
		}
		p.state = stateReady
		e.q.Push(Event{Time: at, Rank: rank, Seq: e.seq})
		e.seq++
	} else {
		p.state = stateParked
	}
	e.running--
	e.dispatchLocked()
	e.checkStallLocked()
	e.mu.Unlock()
	<-p.gate
}

// Wake schedules rank to resume, at virtual time no earlier than `at`
// (the arrival time of the input it blocked on). Waking a running proc
// records a pending wake; waking a ready or done proc is a no-op.
func (e *Engine) Wake(rank int, at float64) {
	e.mu.Lock()
	p := &e.procs[rank]
	switch p.state {
	case stateRunning:
		if !p.pendingWake || at > p.wakeAt {
			p.wakeAt = at
		}
		p.pendingWake = true
	case stateParked:
		if p.parkTime > at {
			at = p.parkTime
		}
		p.state = stateReady
		e.q.Push(Event{Time: at, Rank: rank, Seq: e.seq})
		e.seq++
		e.dispatchLocked()
	case stateReady, stateDone:
		// Already scheduled, or finished: nothing to do.
	}
	e.mu.Unlock()
}

// WakeAll schedules every parked proc to resume at its own park time and
// marks running procs with a pending wake, so each live proc re-checks
// its blocking condition at least once more. Used to drain a world being
// aborted.
func (e *Engine) WakeAll() {
	e.mu.Lock()
	for r := range e.procs {
		p := &e.procs[r]
		switch p.state {
		case stateRunning:
			if !p.pendingWake || p.parkTime > p.wakeAt {
				p.wakeAt = p.parkTime
			}
			p.pendingWake = true
		case stateParked:
			p.state = stateReady
			e.q.Push(Event{Time: p.parkTime, Rank: r, Seq: e.seq})
			e.seq++
		}
	}
	e.dispatchLocked()
	e.mu.Unlock()
}

// Done retires the calling rank's proc: its coroutine has returned (or
// is unwinding) and will never park again. Must be called exactly once
// per rank, from the coroutine itself while it holds its grant.
func (e *Engine) Done(rank int) {
	e.mu.Lock()
	p := &e.procs[rank]
	if p.state != stateRunning {
		e.mu.Unlock()
		panic(fmt.Sprintf("pdes: Done(%d) in state %d", rank, p.state))
	}
	p.state = stateDone
	p.pendingWake = false
	e.running--
	e.live--
	e.dispatchLocked()
	e.checkStallLocked()
	e.mu.Unlock()
}

// dispatchLocked grants queued events to their procs while worker slots
// are free. Caller holds e.mu.
func (e *Engine) dispatchLocked() {
	for e.running < e.workers && e.q.Len() > 0 {
		ev := e.q.Pop()
		p := &e.procs[ev.Rank]
		if p.state != stateReady {
			panic(fmt.Sprintf("pdes: queued event for rank %d in state %d", ev.Rank, p.state))
		}
		if ev.Time < p.parkTime {
			// Causality guard: a rank never resumes earlier than the
			// virtual time it parked at (Wake and Park both clamp).
			panic(fmt.Sprintf("pdes: rank %d resumed at t=%g before its park at t=%g",
				ev.Rank, ev.Time, p.parkTime))
		}
		p.state = stateRunning
		e.running++
		e.stalled = false
		p.gate <- struct{}{}
	}
}

// checkStallLocked fires the stall handler when nothing is running or
// runnable but live procs remain: every one of them is parked on an
// input that no longer has a producer. Caller holds e.mu; the handler
// runs on its own goroutine with no engine lock held, so it may call
// back into Wake/WakeAll.
func (e *Engine) checkStallLocked() {
	if e.running > 0 || e.q.Len() > 0 || e.live == 0 || e.stalled {
		return
	}
	e.stalled = true
	if e.onStall == nil {
		return
	}
	var parked []int
	for r := range e.procs {
		if e.procs[r].state == stateParked {
			//lint:allow reprolint/allochot stall diagnosis is a terminal cold path (at most once per run)
			parked = append(parked, r)
		}
	}
	//lint:allow reprolint/allochot stall handler spawns once, after the simulation has wedged
	go e.onStall(parked)
}
