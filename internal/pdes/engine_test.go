package pdes

import (
	"sync"
	"testing"
)

// The toy runtime used by the engine tests and fuzzer: a miniature of the
// mpi package's inbox discipline. Each rank runs a script of ops over
// per-(src, dst) FIFO mailboxes; receives block in the engine exactly the
// way mpi receives do (publish predicate under the mailbox lock, unlock,
// Park), so the pendingWake race window is exercised for real. Because
// mailboxes are per-sender FIFOs and receives name their source, the toy
// is a Kahn process network: its results must be independent of the
// worker count, which is the engine's core promise.

type toyOpKind uint8

const (
	opCompute toyOpKind = iota // advance own clock by Dt
	opSend                     // deposit a token for Dst, arriving Dt after now
	opRecv                     // block for a token from Dst, clock = max(clock, arrival)
	opDie                      // stop executing mid-script (a rank failure)
)

type toyOp struct {
	Kind toyOpKind
	Dst  int
	Dt   float64
}

type toyResult struct {
	Clocks  []float64 // final virtual clock per rank
	OpsDone []int     // script ops completed per rank (maximal progress)
	Stalled bool      // the run drained through the stall handler
}

type toy struct {
	eng     *Engine
	mu      sync.Mutex
	mail    [][][]float64 // mail[dst][src]: FIFO of token arrival times
	waiting []bool
	aborted bool
}

func runToy(scripts [][]toyOp, workers int) toyResult {
	n := len(scripts)
	ty := &toy{
		eng:     New(n, workers),
		mail:    make([][][]float64, n),
		waiting: make([]bool, n),
	}
	for i := range ty.mail {
		ty.mail[i] = make([][]float64, n)
	}
	res := toyResult{Clocks: make([]float64, n), OpsDone: make([]int, n)}
	ty.eng.OnStall(func(parked []int) {
		ty.mu.Lock()
		ty.aborted = true
		ty.mu.Unlock()
		res.Stalled = true
		ty.eng.WakeAll()
	})

	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer ty.eng.Done(rank)
			ty.eng.Enter(rank)
			clock := 0.0
			defer func() { res.Clocks[rank] = clock }()
			for _, op := range scripts[rank] {
				switch op.Kind {
				case opCompute:
					clock += op.Dt
				case opSend:
					ty.send(rank, op.Dst, clock+op.Dt)
				case opRecv:
					at, ok := ty.recv(rank, op.Dst, clock)
					if !ok {
						return // aborted by the stall drain
					}
					if at > clock {
						clock = at
					}
				case opDie:
					return
				}
				res.OpsDone[rank]++
			}
		}(r)
	}
	ty.eng.Go()
	wg.Wait()
	return res
}

// send mirrors inbox.put: deposit and wake under the mailbox lock.
func (ty *toy) send(src, dst int, arrive float64) {
	ty.mu.Lock()
	ty.mail[dst][src] = append(ty.mail[dst][src], arrive)
	if ty.waiting[dst] {
		ty.waiting[dst] = false
		ty.eng.Wake(dst, arrive)
	}
	ty.mu.Unlock()
}

// recv mirrors inbox.match: take, or publish the predicate and park.
func (ty *toy) recv(rank, from int, now float64) (float64, bool) {
	ty.mu.Lock()
	for {
		if q := ty.mail[rank][from]; len(q) > 0 {
			at := q[0]
			ty.mail[rank][from] = q[1:]
			ty.mu.Unlock()
			return at, true
		}
		if ty.aborted {
			ty.mu.Unlock()
			return 0, false
		}
		ty.waiting[rank] = true
		ty.mu.Unlock()
		ty.eng.Park(rank, now)
		ty.mu.Lock()
	}
}

// ring returns scripts for a token ring: rank 0 injects, everyone
// forwards `rounds` times with per-rank compute skew.
func ring(n, rounds int) [][]toyOp {
	scripts := make([][]toyOp, n)
	for r := 0; r < n; r++ {
		var s []toyOp
		for k := 0; k < rounds; k++ {
			s = append(s, toyOp{Kind: opCompute, Dt: float64(r%3) * 0.5})
			if r == 0 {
				s = append(s, toyOp{Kind: opSend, Dst: (r + 1) % n, Dt: 1})
				s = append(s, toyOp{Kind: opRecv, Dst: n - 1})
			} else {
				s = append(s, toyOp{Kind: opRecv, Dst: r - 1})
				s = append(s, toyOp{Kind: opSend, Dst: (r + 1) % n, Dt: 1})
			}
		}
		scripts[r] = s
	}
	return scripts
}

func sameResult(a, b toyResult) bool {
	if a.Stalled != b.Stalled || len(a.Clocks) != len(b.Clocks) {
		return false
	}
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] || a.OpsDone[i] != b.OpsDone[i] {
			return false
		}
	}
	return true
}

func TestEngineRingWorkerIndependence(t *testing.T) {
	scripts := ring(16, 20)
	ref := runToy(scripts, 1)
	if ref.Stalled {
		t.Fatal("ring stalled")
	}
	for _, workers := range []int{2, 3, 8, 16} {
		got := runToy(scripts, workers)
		if !sameResult(ref, got) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

func TestEngineDeadlockStalls(t *testing.T) {
	// Two ranks each waiting for the other: classic deadlock. The engine
	// must detect it instantly and the stall drain must unwind both.
	scripts := [][]toyOp{
		{{Kind: opRecv, Dst: 1}},
		{{Kind: opRecv, Dst: 0}},
	}
	res := runToy(scripts, 4)
	if !res.Stalled {
		t.Fatal("deadlocked world did not stall")
	}
	if res.OpsDone[0] != 0 || res.OpsDone[1] != 0 {
		t.Fatalf("ops done %v, want none", res.OpsDone)
	}
}

func TestEngineFailureDrain(t *testing.T) {
	// Rank 1 dies before sending; ranks 2 and 3 depend on it
	// transitively. The world must make maximal progress (rank 0's send
	// to rank 1 is simply never consumed), then drain via the stall
	// handler identically at every worker count.
	scripts := [][]toyOp{
		{{Kind: opCompute, Dt: 1}, {Kind: opSend, Dst: 1, Dt: 1}},
		{{Kind: opCompute, Dt: 2}, {Kind: opDie}},
		{{Kind: opRecv, Dst: 1}, {Kind: opSend, Dst: 3, Dt: 1}},
		{{Kind: opRecv, Dst: 2}},
	}
	ref := runToy(scripts, 1)
	if !ref.Stalled {
		t.Fatal("run with a dead producer did not stall")
	}
	if ref.OpsDone[0] != 2 {
		t.Fatalf("rank 0 completed %d ops, want 2 (maximal progress)", ref.OpsDone[0])
	}
	if ref.OpsDone[2] != 0 || ref.OpsDone[3] != 0 {
		t.Fatalf("dependents of the dead rank progressed: %v", ref.OpsDone)
	}
	for _, workers := range []int{2, 4} {
		if got := runToy(scripts, workers); !sameResult(ref, got) {
			t.Fatalf("workers=%d drain diverged:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

func TestEngineAllDoneNoStall(t *testing.T) {
	scripts := [][]toyOp{
		{{Kind: opCompute, Dt: 1}},
		{{Kind: opCompute, Dt: 2}},
	}
	res := runToy(scripts, 1)
	if res.Stalled {
		t.Fatal("clean completion reported a stall")
	}
	if res.Clocks[0] != 1 || res.Clocks[1] != 2 {
		t.Fatalf("clocks %v", res.Clocks)
	}
}

// TestEngineGrantOrderDeterministic runs a fan-in workload twice at one
// worker and asserts the exact wake-up schedule repeats, tie-breaking
// included: ranks 1..n all send to rank 0 at the same virtual time, so
// rank 0's receives complete in an order decided purely by the queue.
func TestEngineGrantOrderDeterministic(t *testing.T) {
	n := 9
	scripts := make([][]toyOp, n)
	scripts[0] = nil
	for src := 1; src < n; src++ {
		scripts[0] = append(scripts[0], toyOp{Kind: opRecv, Dst: src})
		scripts[src] = []toyOp{{Kind: opCompute, Dt: 5}, {Kind: opSend, Dst: 0, Dt: 1}}
	}
	a := runToy(scripts, 1)
	b := runToy(scripts, 1)
	if !sameResult(a, b) {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
	if a.Stalled {
		t.Fatal("fan-in stalled")
	}
	if a.Clocks[0] != 6 {
		t.Fatalf("rank 0 clock %g, want 6 (all tokens arrive at t=6)", a.Clocks[0])
	}
}
