package arrive

import (
	"testing"
)

// FuzzSpotRun checks SpotRun's invariants over arbitrary markets and
// bids: never a negative cost or progress, progress bounded by the job
// size, and a checkpointed attempt never slower than restart-from-zero
// by more than one checkpoint quantum.
func FuzzSpotRun(f *testing.F) {
	f.Add(uint64(1), float64(24), uint8(4), float64(0.6), float64(1))
	f.Add(uint64(2), float64(100), uint8(2), float64(0.35), float64(0)) // low bid, no ckpt
	f.Add(uint64(3), float64(5), uint8(16), float64(2.0), float64(8))
	f.Add(uint64(7), float64(60), uint8(1), float64(0.45), float64(3))
	f.Fuzz(func(t *testing.T, seed uint64, hours float64, nodes8 uint8, bid, ckpt float64) {
		// Sanitise into the valid domain; validation has its own tests.
		if hours < 0 {
			hours = -hours
		}
		hours = 0.5 + minf(hours, 168)
		nodes := 1 + int(nodes8%16)
		if bid < 0 {
			bid = -bid
		}
		bid = 0.05 + minf(bid, 3)
		if ckpt < 0 {
			ckpt = -ckpt
		}
		ckpt = minf(ckpt, 12)

		m := NewSpotMarket(seed)
		out, err := m.SpotRun(hours, nodes, bid, ckpt, 0)
		if err != nil {
			t.Fatalf("valid inputs rejected: %v", err)
		}
		if out.Cost < 0 || out.ComputeHours < 0 || out.ProgressHours < 0 {
			t.Fatalf("negative accounting: %+v", out)
		}
		if out.ProgressHours > hours+1e-9 {
			t.Fatalf("progress %g exceeds job size %g", out.ProgressHours, hours)
		}
		if out.Completed != (out.ProgressHours >= hours-1e-9) {
			t.Fatalf("completion flag disagrees with progress: %+v (size %g)", out, hours)
		}
		if out.Completed && out.WallHours < hours {
			t.Fatalf("job of %gh completed in %gh of wall time", hours, out.WallHours)
		}

		// Checkpointing can only help: against the identical price path, a
		// checkpointed attempt finishes no later than restart-from-zero,
		// modulo one checkpoint quantum of unsaved work.
		if ckpt > 0 {
			zero, err := m.SpotRun(hours, nodes, bid, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if zero.Completed && ckpt > 0 {
				ckpted, err := m.SpotRun(hours, nodes, bid, ckpt, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !ckpted.Completed || ckpted.WallHours > zero.WallHours+ckpt+1e-9 {
					t.Fatalf("checkpointing made the run slower: ckpt=%+v zero=%+v", ckpted, zero)
				}
			}
		}

		// Determinism: the outcome is a pure function of its inputs.
		again, err := m.SpotRun(hours, nodes, bid, ckpt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if again != out {
			t.Fatalf("spot run not deterministic:\n%+v\n%+v", out, again)
		}
	})
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func TestSpotRunValidatesNegativeKnobs(t *testing.T) {
	m := NewSpotMarket(1)
	if _, err := m.SpotRun(10, 2, 0.5, -1, 0); err == nil {
		t.Error("negative checkpointHours must be rejected")
	}
	if _, err := m.SpotRun(10, 2, 0.5, 0, -5); err == nil {
		t.Error("negative maxHours must be rejected")
	}
	if _, err := m.SpotRun(10, 2, 0, 0, 0); err == nil {
		t.Error("non-positive bid must be rejected")
	}
	if _, err := m.InterruptionPlan(0, 0); err == nil {
		t.Error("InterruptionPlan must reject bid <= 0")
	}
	if _, err := m.InterruptionPlan(0.5, -1); err == nil {
		t.Error("InterruptionPlan must reject negative maxHours")
	}
}

func TestInterruptionPlanMatchesPricePath(t *testing.T) {
	m := NewSpotMarket(3)
	const bid, horizon = 0.5, 200.0
	plan, err := m.InterruptionPlan(bid, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; float64(h) < horizon; h++ {
		outbid := m.Price(h) > bid
		if got := plan.OutageAt(float64(h)); got != outbid {
			t.Fatalf("hour %d: outage=%v but price %g vs bid %g", h, got, m.Price(h), bid)
		}
	}
	// Every outage window opens with its preemption.
	if len(plan.Outages) == 0 {
		t.Skip("seed produced no outages below this bid")
	}
	if len(plan.Preemptions) != len(plan.Outages) {
		t.Fatalf("%d preemptions for %d outages", len(plan.Preemptions), len(plan.Outages))
	}
	for i, o := range plan.Outages {
		if plan.Preemptions[i].At != o.Start {
			t.Fatalf("outage %d starts at %g but preemption at %g", i, o.Start, plan.Preemptions[i].At)
		}
	}
}
