package arrive

import (
	"testing"
	"testing/quick"
)

func TestSpotPriceDeterministic(t *testing.T) {
	a, b := NewSpotMarket(7), NewSpotMarket(7)
	for h := 0; h < 200; h += 17 {
		if a.Price(h) != b.Price(h) {
			t.Fatalf("price path not deterministic at hour %d", h)
		}
	}
	c := NewSpotMarket(8)
	same := 0
	for h := 0; h < 100; h++ {
		if a.Price(h) == c.Price(h) {
			same++
		}
	}
	if same > 50 {
		t.Fatal("different seeds should give different paths")
	}
}

func TestSpotPriceBounds(t *testing.T) {
	m := NewSpotMarket(3)
	prop := func(hRaw uint16) bool {
		p := m.Price(int(hRaw % 2000))
		return p >= m.Floor && p <= m.OnDemand*m.SpikeMul*1.3+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpotPriceUsuallyBelowOnDemand(t *testing.T) {
	m := NewSpotMarket(11)
	below := 0
	const n = 500
	for h := 0; h < n; h++ {
		if m.Price(h) < m.OnDemand {
			below++
		}
	}
	if frac := float64(below) / n; frac < 0.85 {
		t.Fatalf("spot below on-demand only %.0f%% of hours, want mostly", frac*100)
	}
}

func TestSpotRunHighBidCompletesCheaply(t *testing.T) {
	m := NewSpotMarket(5)
	out, err := m.SpotRun(24, 4, m.OnDemand*1.6, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("bid above all spikes should complete: %+v", out)
	}
	if out.Savings <= 0.3 {
		t.Fatalf("spot savings = %.2f, want substantial (>0.3)", out.Savings)
	}
	if out.Cost >= out.OnDemandCost {
		t.Fatal("spot should cost less than on-demand")
	}
}

func TestSpotRunLowBidInterrupted(t *testing.T) {
	m := NewSpotMarket(5)
	// A bid barely above the floor gets outbid often.
	low, err := m.SpotRun(48, 2, m.Floor+0.02, 1, 24*10)
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.SpotRun(48, 2, m.OnDemand*1.6, 1, 24*10)
	if err != nil {
		t.Fatal(err)
	}
	if low.Interruptions <= high.Interruptions {
		t.Fatalf("low bid should be interrupted more: %d vs %d", low.Interruptions, high.Interruptions)
	}
	if low.Completed && low.WallHours <= high.WallHours {
		t.Fatal("low bid cannot finish sooner than high bid")
	}
}

func TestCheckpointingLimitsLostWork(t *testing.T) {
	m := NewSpotMarket(13)
	bid := m.Mean + 0.05 // interrupted now and then
	with, err := m.SpotRun(40, 1, bid, 1, 24*14)
	if err != nil {
		t.Fatal(err)
	}
	without, err := m.SpotRun(40, 1, bid, 0, 24*14)
	if err != nil {
		t.Fatal(err)
	}
	if with.Interruptions == 0 {
		t.Skip("seed produced no interruptions at this bid")
	}
	// No checkpoints => restarts from zero => at least as many billed
	// hours (usually far more) and no earlier completion.
	if without.ComputeHours < with.ComputeHours {
		t.Fatalf("checkpoint-free run billed fewer hours: %v vs %v", without.ComputeHours, with.ComputeHours)
	}
	if without.Completed && !with.Completed {
		t.Fatal("checkpointing should not hurt completion")
	}
}

func TestSpotRunValidation(t *testing.T) {
	m := NewSpotMarket(1)
	if _, err := m.SpotRun(0, 1, 1, 1, 0); err == nil {
		t.Fatal("zero-hour job should fail")
	}
	if _, err := m.SpotRun(1, 0, 1, 1, 0); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := m.SpotRun(1, 1, 0, 1, 0); err == nil {
		t.Fatal("zero bid should fail")
	}
}

func TestBestBidCompletesAndSaves(t *testing.T) {
	m := NewSpotMarket(21)
	bid, out, err := m.BestBid(24, 4, 1, 24*7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("best bid %v did not complete: %+v", bid, out)
	}
	if bid <= 0 || bid > m.OnDemand*1.05+1e-9 {
		t.Fatalf("bid out of range: %v", bid)
	}
	if out.Savings <= 0 {
		t.Fatalf("best bid should save money: %+v", out)
	}
}
