// Package arrive implements the paper's stated next step (its Section II
// and VI): using ARRIVE-F-style lightweight profiling metrics to predict a
// workload's execution time on each available platform and decide which
// jobs are candidates to burst from the HPC facility onto cloud resources.
//
// A workload profiled once (IPM profile + run metadata) is projected onto
// other platforms from first principles: computation scales with effective
// core speed under the target placement, communication is rebuilt from the
// recorded call mix (counts, bytes, collective round counts) against the
// target interconnect, and I/O scales with filesystem bandwidth.
package arrive

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/ipm"
	"repro/internal/platform"
)

// WorkloadProfile captures what ARRIVE-F's online profiler measures.
type WorkloadProfile struct {
	Name string
	NP   int

	// Per-job totals on the profiled platform (sums over ranks).
	ComputeSeconds float64
	IOSeconds      float64

	// Communication mix: per MPI call name, the event count and bytes.
	Calls map[string]ipm.CallStats

	// AvgMsgBytes summarises the message-size distribution.
	AvgMsgBytes float64

	// Source describes the platform the profile was taken on.
	Source *platform.Platform
	// SourceRanksPerNode is the placement density during profiling.
	SourceRanksPerNode int
}

// FromProfile extracts a workload profile from an IPM snapshot.
func FromProfile(name string, pr *ipm.Profile, src *platform.Platform, ranksPerNode int) *WorkloadProfile {
	calls := make(map[string]ipm.CallStats, len(pr.Calls))
	for k, v := range pr.Calls {
		calls[k] = v
	}
	return &WorkloadProfile{
		Name:               name,
		NP:                 pr.NP,
		ComputeSeconds:     pr.Comp.Sum(),
		IOSeconds:          pr.IO.Sum(),
		Calls:              calls,
		AvgMsgBytes:        pr.AvgMessageBytes(),
		Source:             src,
		SourceRanksPerNode: ranksPerNode,
	}
}

// Class is a coarse workload classification.
type Class string

// Workload classes.
const (
	ComputeBound Class = "compute-bound"
	CommBound    Class = "communication-bound"
	IOBound      Class = "io-bound"
)

// callNames returns the profiled call labels in sorted order, so float
// sums over the call map accumulate in a fixed sequence.
func (w *WorkloadProfile) callNames() []string {
	names := make([]string, 0, len(w.Calls))
	for n := range w.Calls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Classify labels the workload by its dominant resource; the paper's
// related work found "scientific applications with minimal communications
// and I/O make the best fit for cloud deployment".
func (w *WorkloadProfile) Classify() Class {
	var comm float64
	for _, name := range w.callNames() {
		comm += w.Calls[name].Time
	}
	total := w.ComputeSeconds + w.IOSeconds + comm
	if total == 0 {
		return ComputeBound
	}
	switch {
	case w.IOSeconds/total > 0.4:
		return IOBound
	case comm/total > 0.25:
		return CommBound
	default:
		return ComputeBound
	}
}

// Slowdown returns the predicted runtime ratio of running on target vs
// the profiled source platform (+Inf when either is infeasible).
func (w *WorkloadProfile) Slowdown(target *platform.Platform) float64 {
	src := w.Predict(w.Source)
	dst := w.Predict(target)
	if !src.Feasible || !dst.Feasible || src.Total <= 0 {
		return math.Inf(1)
	}
	return dst.Total / src.Total
}

// CloudFriendly reports whether bursting to target is acceptable: the
// predicted slowdown stays within maxSlowdown (ARRIVE-F's candidate
// filter; the related work's finding that "applications with minimal
// communications and I/O make the best fit for cloud deployment").
func (w *WorkloadProfile) CloudFriendly(target *platform.Platform, maxSlowdown float64) bool {
	return w.Slowdown(target) <= maxSlowdown
}

// effectiveRate returns the per-rank flop rate of p at the placement
// density ranksPerNode, including the virtualisation overhead.
func effectiveRate(p *platform.Platform, ranksPerNode int) float64 {
	ctx := cpumodel.Context{RanksOnNode: ranksPerNode, NUMAPinned: p.NUMAPinned}
	return p.CPU.FlopsRate(ctx) / p.ComputeOverhead
}

// rounds estimates the communication rounds of a call type at np ranks.
func rounds(call string, np int) float64 {
	lg := math.Log2(float64(np))
	if lg < 1 {
		lg = 1
	}
	switch call {
	case "Allreduce", "Bcast", "Reduce", "Barrier":
		return math.Ceil(lg)
	case "Allgather", "Alltoall":
		return float64(np - 1)
	case "Gather", "Scatter":
		return 1
	default: // point-to-point
		return 1
	}
}

// Prediction is the projected runtime breakdown on one platform.
type Prediction struct {
	Platform string
	Nodes    int
	Compute  float64 // seconds (per-job wall share)
	Comm     float64
	IO       float64
	Total    float64
	Feasible bool
	Reason   string // why infeasible, when applicable
}

// Predict projects the workload onto target, choosing the default (block,
// minimal-nodes) placement. Times are wall estimates: per-rank means.
func (w *WorkloadProfile) Predict(target *platform.Platform) Prediction {
	pred := Prediction{Platform: target.Name}
	// A competent scheduler avoids oversubscribing hardware threads: ask
	// for enough nodes to give each rank a physical core, falling back to
	// the dense default when the platform is too small.
	phys := target.CPU.PhysicalCores()
	wanted := (w.NP + phys - 1) / phys
	pl, err := cluster.Place(target, cluster.Spec{NP: w.NP, Nodes: wanted, Policy: cluster.Spread})
	if err != nil {
		pl, err = cluster.Place(target, cluster.Spec{NP: w.NP})
	}
	if err != nil {
		pred.Reason = err.Error()
		return pred
	}
	pred.Feasible = true
	pred.Nodes = pl.Nodes
	rpn := pl.MaxRanksPerNode()

	// Compute: scale the profiled per-rank compute by the speed ratio.
	srcRate := effectiveRate(w.Source, w.SourceRanksPerNode)
	dstRate := effectiveRate(target, rpn)
	pred.Compute = w.ComputeSeconds / float64(w.NP) * srcRate / dstRate

	// Communication: rebuild each call class against the target link.
	link := target.Inter
	share := float64(rpn)
	if pl.Nodes == 1 {
		link = target.Intra
		share = 1
	}
	for _, name := range w.callNames() {
		cs := w.Calls[name]
		perRankEvents := float64(cs.Count) / float64(w.NP)
		perRankBytes := float64(cs.Bytes) / float64(w.NP)
		r := rounds(name, w.NP)
		_, delay := link.TransferShared(nil, int(w.AvgMsgBytes), share)
		latencyTerm := perRankEvents * r * delay
		bwTerm := perRankBytes * r / (link.Bandwidth / share)
		pred.Comm += latencyTerm + bwTerm
	}

	// I/O: scale by filesystem read bandwidth (read-dominated workloads).
	if w.IOSeconds > 0 {
		pred.IO = w.IOSeconds / float64(w.NP) * w.Source.FS.ReadBW / target.FS.ReadBW
	}

	pred.Total = pred.Compute + pred.Comm + pred.IO
	return pred
}

// Recommend ranks the candidate platforms by predicted total time,
// infeasible ones last.
func (w *WorkloadProfile) Recommend(targets []*platform.Platform) []Prediction {
	preds := make([]Prediction, 0, len(targets))
	for _, t := range targets {
		preds = append(preds, w.Predict(t))
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Feasible != preds[j].Feasible {
			return preds[i].Feasible
		}
		return preds[i].Total < preds[j].Total
	})
	return preds
}

// String renders a prediction row.
func (p Prediction) String() string {
	if !p.Feasible {
		return fmt.Sprintf("%-8s infeasible: %s", p.Platform, p.Reason)
	}
	return fmt.Sprintf("%-8s total=%8.1fs  compute=%8.1fs comm=%8.1fs io=%6.1fs (%d nodes)",
		p.Platform, p.Total, p.Compute, p.Comm, p.IO, p.Nodes)
}
